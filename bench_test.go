// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs its experiment at a reduced-but-faithful scale
// per iteration and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` doubles as a smoke reproduction. The
// full-scale runs (paper parameters) live in cmd/siot-bench.
package siot_test

import (
	"testing"

	"siot/internal/benchnet"
	"siot/internal/core"
	"siot/internal/experiments"
	"siot/internal/serve"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
	"siot/internal/task"
)

const benchSeed = benchnet.Seed

// benchRounds plays one full delegation round per iteration — a mutuality
// round plus a transitivity search sweep — at the given worker-pool width
// and node count.
func benchRounds(b *testing.B, nodes, workers int) {
	p, setup := benchnet.Population(nodes)
	eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "bench"}
	tk := task.Uniform(1, task.CharCompute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c sim.MutualityCounters
		eng.MutualityRound(i, tk, &c)
		eng.TransitivityRun(setup, core.PolicyAggressive, benchSeed)
	}
}

// BenchmarkRoundsSerial is the single-goroutine baseline of the delegation
// round engine on a 1k-node network.
func BenchmarkRoundsSerial(b *testing.B) { benchRounds(b, 1000, 1) }

// BenchmarkRoundsParallel runs the same rounds with a 4-worker pool. The
// outputs are bit-identical to the serial baseline (see sim.Engine); on a
// machine with >= 4 cores the wall-clock time should drop by >= 2x.
func BenchmarkRoundsParallel(b *testing.B) { benchRounds(b, 1000, 4) }

// benchTransitivity isolates the transitivity portion of a round — one
// frozen-epoch capture, memo pre-pass, and full per-trustor aggressive
// sweep — at the given scale.
func benchTransitivity(b *testing.B, nodes, workers int) {
	p, setup := benchnet.Population(nodes)
	eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "bench"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.TransitivityRun(setup, core.PolicyAggressive, benchSeed)
	}
}

// BenchmarkTransitivitySerial is the transitivity portion of
// BenchmarkRoundsSerial in isolation (1k nodes, aggressive policy).
func BenchmarkTransitivitySerial(b *testing.B) { benchTransitivity(b, 1000, 1) }

// BenchmarkTransitivity10k runs the same sweep on a 10k-node, 80k-edge
// network — a scale the pre-snapshot live-store path made impractical.
// Each op captures a fresh epoch through the arena pool, so steady-state
// bytes/op reflect pooled reuse, not fresh ~23 MB arenas.
func BenchmarkTransitivity10k(b *testing.B) { benchTransitivity(b, 10000, 1) }

// BenchmarkTransitivity100k runs the full 100k-node, 500k-edge sweep end
// to end — the ROADMAP's scale milestone, generated on socialgen's
// streaming path and captured with the parallel two-pass capture.
func BenchmarkTransitivity100k(b *testing.B) {
	p, setup := benchnet.Population100k()
	eng := &sim.Engine{Pop: p, Parallelism: 0, Label: "bench"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.TransitivityRun(setup, core.PolicyAggressive, benchSeed)
	}
}

// BenchmarkRounds100k plays one full mutuality round — snapshot capture,
// lock-free compute phase, ordered merge — on the 100k-node, 500k-edge
// network. The snapshot-round refactor unlocked this scale: the compute
// phase reads a per-round frozen core.RoundView through the engine's epoch
// handle instead of contending on live store shards, so rounds parallelize
// as cleanly as the transitivity sweeps.
func BenchmarkRounds100k(b *testing.B) {
	p, _ := benchnet.Population100k()
	eng := &sim.Engine{Pop: p, Parallelism: 0, Label: "bench"}
	tk := task.Uniform(1, task.CharCompute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c sim.MutualityCounters
		eng.MutualityRound(i, tk, &c)
	}
}

// BenchmarkTransitivity10kPooled measures the warm repeated-sweep loop the
// arena pool exists for: one epoch Reset (pooled re-capture) plus one full
// aggressive run per op. Bytes/op must stay far below the ~22.9 MB/op a
// fresh-arena capture costs at this scale.
func BenchmarkTransitivity10kPooled(b *testing.B) {
	p, setup := benchnet.Population(10000)
	eng := &sim.Engine{Pop: p, Parallelism: 1, Label: "bench"}
	ep := eng.TransitivityEpoch(setup)
	defer ep.Release()
	ep.Run(core.PolicyAggressive, benchSeed) // warm arenas and memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep.Reset()
		ep.Run(core.PolicyAggressive, benchSeed)
	}
}

// BenchmarkSetup100k measures the full 100k-node setup pipeline the sweep
// sits on — sharded population build (roles, behaviors, CSR) plus bulk
// experience seeding over the worker pool — on the pre-generated canonical
// network. The ROADMAP target: below ~1 s per op on 1 CPU (the serial
// path took ~2 s).
func BenchmarkSetup100k(b *testing.B) {
	net := socialgen.Generate(benchnet.Net100k(), benchnet.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchnet.Populate(net)
	}
}

// benchSeedPass isolates the experience-seeding pass at the given scale and
// worker count: each op re-builds a fresh population outside the timer and
// times one SeedParallel over it.
func benchSeedPass(b *testing.B, nodes, workers int) {
	net := socialgen.Generate(benchnet.Profile(nodes), benchnet.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := sim.DefaultPopulationConfig(benchnet.Seed)
		cfg.Parallelism = workers
		p := sim.NewPopulation(net, cfg)
		setup := sim.DefaultTransitivitySetup(5, p.Rand("bench-rounds"))
		setup.MaxDepth = 3
		b.StartTimer()
		p.SeedParallel(setup, benchnet.Seed, workers)
	}
}

// BenchmarkSeed10kSerial is the single-worker baseline of the bulk seeding
// pass on the 10k-node network.
func BenchmarkSeed10kSerial(b *testing.B) { benchSeedPass(b, 10000, 1) }

// BenchmarkSeed10kParallel4 seeds the same network with four workers. The
// stores are byte-identical at every width (TestSeedParallelEquivalence);
// on a multi-core machine the wall-clock time should drop accordingly.
func BenchmarkSeed10kParallel4(b *testing.B) { benchSeedPass(b, 10000, 4) }

// benchCapture measures one pooled trust-view capture (the two-pass
// parallel CaptureTrustView) at the given scale and worker count.
func benchCapture(b *testing.B, nodes, workers int) {
	p, _ := benchnet.Population(nodes)
	pool := core.NewArenaPool()
	v := p.TrustViewParallel(workers, pool) // warm the pool
	v.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := p.TrustViewParallel(workers, pool)
		v.Release()
	}
}

// BenchmarkCapture10kSerial is the one-worker baseline of the 10k-node
// trust-view capture.
func BenchmarkCapture10kSerial(b *testing.B) { benchCapture(b, 10000, 1) }

// BenchmarkCapture10kParallel4 captures the same view with four workers.
// Output is byte-identical at every width (TestCaptureParallelEquivalence);
// on a multi-core machine the wall-clock time should drop accordingly.
func BenchmarkCapture10kParallel4(b *testing.B) { benchCapture(b, 10000, 4) }

// BenchmarkFindAggressive measures one warm aggressive search over a frozen
// epoch. With the pooled dense scratch state and a recycled result this
// must report 0 allocs/op (guarded by sim's TestFindViewZeroAlloc).
func BenchmarkFindAggressive(b *testing.B) {
	p, setup := benchnet.Population(1000)
	s := p.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2)
	view := p.TrustView()
	memo := core.NewEdgeMemo(view, p.Config().Update.Norm, 1)
	tk := setup.Universe.Tasks[0]
	memo.Require(core.PolicyAggressive, []task.Task{tk})
	trustor := p.Trustors[0]
	var res core.SearchResult
	s.FindViewInto(&res, view, memo, trustor, tk, core.PolicyAggressive) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FindViewInto(&res, view, memo, trustor, tk, core.PolicyAggressive)
	}
	b.ReportMetric(float64(res.Inquired), "inquired")
}

// BenchmarkServeQuery1k measures one trust query per op against a live
// serve engine on the canonical 1k-node benchmark network. Read-only
// steady state: the writer goroutine idles and every op is an epoch
// Acquire → frozen-view answer → Release. The engine's own latency
// histogram supplies the p50/p99 metrics mirrored into BENCH.json by
// siot-bench's serve-query-1k workload.
func BenchmarkServeQuery1k(b *testing.B) {
	eng, err := serve.New(serve.Config{
		Nodes: 1000, Seed: benchSeed, Seeded: true, Policy: core.PolicyAggressive,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	n := eng.NumAgents()
	types := len(eng.TaskTypes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trustor := core.AgentID(i % n)
		trustee := core.AgentID((i*31 + 1) % n)
		if trustee == trustor {
			trustee = core.AgentID((int(trustee) + 1) % n)
		}
		eng.Trust(trustor, trustee, i%types)
	}
	b.StopTimer()
	st := eng.Stats()
	b.ReportMetric(float64(st.QueryP50Ns), "p50_ns")
	b.ReportMetric(float64(st.QueryP99Ns), "p99_ns")
}

// BenchmarkServeMixed10k measures the serving system's mixed read/write
// steady state on the 10k-node network: three trust queries and one
// ingested observation per four ops, with the writer goroutine applying
// events and republishing a fresh epoch every 512 of them, so queries
// keep acquiring consistent snapshots across concurrent swaps.
func BenchmarkServeMixed10k(b *testing.B) {
	eng, err := serve.New(serve.Config{
		Nodes: 10000, Seed: benchSeed, Seeded: true, Policy: core.PolicyAggressive,
		EpochEvery: 512,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	n := eng.NumAgents()
	types := len(eng.TaskTypes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trustor := core.AgentID(i % n)
		if i%4 == 3 {
			nbrs := eng.Neighbors(trustor)
			eng.Ingest(serve.Event{
				Op: serve.OpObserve, Trustor: trustor, Trustee: nbrs[i%len(nbrs)],
				Type:    i % types,
				Outcome: core.Outcome{Success: i%3 != 0, Gain: 0.8, Damage: 0.2, Cost: 0.1},
			})
			continue
		}
		trustee := core.AgentID((i*31 + 1) % n)
		if trustee == trustor {
			trustee = core.AgentID((int(trustee) + 1) % n)
		}
		eng.Trust(trustor, trustee, i%types)
	}
	b.StopTimer()
	st := eng.Stats()
	b.ReportMetric(float64(st.QueryP50Ns), "p50_ns")
	b.ReportMetric(float64(st.QueryP99Ns), "p99_ns")
	b.ReportMetric(float64(st.Epochs), "epochs")
}

// BenchmarkTable1Connectivity regenerates Table 1: the connectivity
// characteristics of the three evaluation networks.
func BenchmarkTable1Connectivity(b *testing.B) {
	var clustering float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(benchSeed)
		clustering = res.Rows[0].Got.AvgClustering
	}
	b.ReportMetric(clustering, "fb_clustering")
}

// BenchmarkFig7Mutuality regenerates Fig. 7: success/unavailable/abuse
// rates versus the reverse-evaluation threshold θ.
func BenchmarkFig7Mutuality(b *testing.B) {
	cfg := experiments.DefaultFig7Config(benchSeed)
	cfg.Rounds = 10
	var res experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig7(cfg)
	}
	// Abuse at θ=0 vs θ=0.6 on the first network.
	b.ReportMetric(res.Cells[0].Abuse, "abuse_theta0")
	b.ReportMetric(res.Cells[2].Abuse, "abuse_theta06")
}

// BenchmarkFig8Inference regenerates Fig. 8: percentage of honest trustee
// selections with and without characteristic inference, on the ZigBee
// testbed simulator.
func BenchmarkFig8Inference(b *testing.B) {
	cfg := experiments.DefaultFig8Config(benchSeed)
	cfg.Experiments = 5
	var res experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig8(cfg)
	}
	b.ReportMetric(stats.Mean(res.WithModel.Y), "pct_honest_with")
	b.ReportMetric(stats.Mean(res.WithoutModel.Y), "pct_honest_without")
}

// transitivitySweep runs the shared Figs. 9–11 sweep at bench scale.
func transitivitySweep(b *testing.B) experiments.TransitivityResult {
	b.Helper()
	cfg := experiments.DefaultTransitivityConfig(benchSeed)
	cfg.CharCounts = []int{4, 7}
	cfg.Repeats = 1
	var res experiments.TransitivityResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunTransitivitySweep(cfg)
	}
	return res
}

// cellOf finds one sweep cell.
func cellOf(res experiments.TransitivityResult, network string, pol core.Policy, chars int) experiments.TransitivityCell {
	for _, c := range res.Cells {
		if c.Network == network && c.Policy == pol && c.NumChars == chars {
			return c
		}
	}
	return experiments.TransitivityCell{}
}

// BenchmarkFig9TransitivitySuccess regenerates Fig. 9: success rate versus
// the number of characteristics for the three trust-transfer methods.
func BenchmarkFig9TransitivitySuccess(b *testing.B) {
	res := transitivitySweep(b)
	b.ReportMetric(cellOf(res, "facebook", core.PolicyAggressive, 4).Success, "fb_aggr_success")
	b.ReportMetric(cellOf(res, "facebook", core.PolicyTraditional, 4).Success, "fb_trad_success")
}

// BenchmarkFig10TransitivityUnavailable regenerates Fig. 10: unavailable
// rate for the same sweep.
func BenchmarkFig10TransitivityUnavailable(b *testing.B) {
	res := transitivitySweep(b)
	b.ReportMetric(cellOf(res, "facebook", core.PolicyAggressive, 4).Unavailable, "fb_aggr_unavail")
	b.ReportMetric(cellOf(res, "facebook", core.PolicyTraditional, 4).Unavailable, "fb_trad_unavail")
}

// BenchmarkFig11PotentialTrustees regenerates Fig. 11: the average number
// of potential trustees found per method.
func BenchmarkFig11PotentialTrustees(b *testing.B) {
	res := transitivitySweep(b)
	b.ReportMetric(cellOf(res, "facebook", core.PolicyAggressive, 4).AvgPotential, "fb_aggr_potential")
	b.ReportMetric(cellOf(res, "facebook", core.PolicyTraditional, 4).AvgPotential, "fb_trad_potential")
}

// BenchmarkFig12SearchOverhead regenerates Fig. 12: the per-trustor count
// of inquired nodes under each method.
func BenchmarkFig12SearchOverhead(b *testing.B) {
	cfg := experiments.DefaultFig12Config(benchSeed)
	var res experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig12(cfg)
	}
	total := func(p core.Policy) (sum float64) {
		for _, v := range res.PerPolicy[p] {
			sum += float64(v)
		}
		return sum
	}
	b.ReportMetric(total(core.PolicyAggressive), "aggr_inquired_total")
	b.ReportMetric(total(core.PolicyTraditional), "trad_inquired_total")
}

// BenchmarkTable2RealProperties regenerates Table 2: the transitivity
// comparison with node profile features as task characteristics.
func BenchmarkTable2RealProperties(b *testing.B) {
	cfg := experiments.DefaultTable2Config(benchSeed)
	cfg.Repeats = 1
	var res experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable2(cfg)
	}
	for _, c := range res.Cells {
		if c.Network == "facebook" && c.Policy == core.PolicyAggressive {
			b.ReportMetric(c.Success, "fb_aggr_success")
		}
		if c.Network == "facebook" && c.Policy == core.PolicyTraditional {
			b.ReportMetric(c.Success, "fb_trad_success")
		}
	}
}

// BenchmarkFig13NetProfit regenerates Fig. 13: converged net profit of the
// two delegation strategies.
func BenchmarkFig13NetProfit(b *testing.B) {
	cfg := experiments.DefaultFig13Config(benchSeed)
	cfg.Iterations = 500
	var res experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig13(cfg)
	}
	b.ReportMetric(res.Converged["facebook ("+sim.StrategyNetProfit.String()+")"], "fb_second_profit")
	b.ReportMetric(res.Converged["facebook ("+sim.StrategySuccessRate.String()+")"], "fb_first_profit")
}

// BenchmarkFig14ActiveTime regenerates Fig. 14: trustor active time with
// and without cost-aware evaluation under fragment-stall attackers.
func BenchmarkFig14ActiveTime(b *testing.B) {
	cfg := experiments.DefaultFig14Config(benchSeed)
	cfg.TasksPerTrustor = 20
	var res experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig14(cfg)
	}
	n := len(res.WithModel.Y)
	b.ReportMetric(stats.Mean(res.WithModel.Y[n-5:]), "late_active_ms_with")
	b.ReportMetric(stats.Mean(res.WithoutModel.Y[n-5:]), "late_active_ms_without")
}

// BenchmarkFig15DynamicEnvironment regenerates Fig. 15: environment-step
// tracking of the expected success rate.
func BenchmarkFig15DynamicEnvironment(b *testing.B) {
	cfg := experiments.DefaultFig15Config(benchSeed)
	cfg.Runs = 20
	var res experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig15(cfg)
	}
	b.ReportMetric(stats.Mean(res.Proposed.Y[160:200]), "proposed_phase2")
	b.ReportMetric(stats.Mean(res.Traditional.Y[160:200]), "traditional_phase2")
}

// BenchmarkFig16LightSchedule regenerates Fig. 16: net profit across the
// light/dark/light schedule with and without environment correction.
func BenchmarkFig16LightSchedule(b *testing.B) {
	cfg := experiments.DefaultFig16Config(benchSeed)
	var res experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig16(cfg)
	}
	n := len(res.WithModel.Y)
	b.ReportMetric(stats.Mean(res.WithModel.Y[n*3/4:]), "final_profit_with")
	b.ReportMetric(stats.Mean(res.WithoutModel.Y[n*3/4:]), "final_profit_without")
}

// BenchmarkAblationEq7 quantifies the eq. 7 mistrust term against the plain
// product of eq. 5 (design-choice ablation, DESIGN.md §6).
func BenchmarkAblationEq7(b *testing.B) {
	cfg := experiments.DefaultAblationEq7Config(benchSeed)
	cfg.Pairs = 5000
	var res experiments.AblationEq7Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunAblationEq7(cfg)
	}
	b.ReportMetric(res.RMSEProduct, "product_rmse")
	b.ReportMetric(res.RMSEEq7, "eq7_rmse")
}

// BenchmarkAblationCannikin quantifies min-vs-mean environment combination
// in the removal function r(·).
func BenchmarkAblationCannikin(b *testing.B) {
	cfg := experiments.DefaultAblationCannikinConfig(benchSeed)
	cfg.Runs = 15
	var res experiments.AblationCannikinResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunAblationCannikin(cfg)
	}
	b.ReportMetric(res.TrackErrMin, "bias_min")
	b.ReportMetric(res.TrackErrMean, "bias_mean")
}

// BenchmarkAblationSelfDelegation quantifies the eq. 24 self-delegation
// option.
func BenchmarkAblationSelfDelegation(b *testing.B) {
	cfg := experiments.DefaultAblationSelfDelegationConfig(benchSeed)
	cfg.Iterations = 250
	var res experiments.AblationSelfDelegationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunAblationSelfDelegation(cfg)
	}
	b.ReportMetric(res.WithSelf, "profit_with_self")
	b.ReportMetric(res.WithoutSelf, "profit_without_self")
}
