// Package siot is a Go implementation of the trust model for the Social
// Internet of Things from Lin & Dong, "Clarifying Trust in Social Internet
// of Things" (IEEE TKDE; ICDE 2018 extended abstract).
//
// Trust here is a process, not a number: a trustor evaluates potential
// trustees (eq. 1, mutually — the trustee evaluates back), decides (eq. 23,
// possibly keeping the task, eq. 24), delegates, and folds the observed
// result into its expectations (eqs. 19–22) with optional environment
// correction (eqs. 25–29). Tasks are weighted bags of characteristics, so
// experience transfers between different tasks that share characteristics
// (eqs. 2–4), and trust transits through the social graph under
// policy-controlled restrictions (eqs. 5–17).
//
// The package is a facade over the implementation packages:
//
//   - the trust engine (expectations, updates, selection, transitivity),
//   - the task/characteristic model,
//   - the environment model,
//   - social-network generation calibrated to the paper's Table 1,
//   - a population simulator for the paper's §5 experiments, and
//   - a discrete-event ZigBee testbed simulator standing in for the paper's
//     CC2530 hardware.
//
// # Quickstart
//
//	store := siot.NewStore(1, siot.DefaultUpdateConfig())
//	tk := siot.UniformTask(1, siot.CharGPS, siot.CharImage)
//	store.Observe(2, tk, siot.Outcome{Success: true, Gain: 0.9, Cost: 0.1}, siot.PerfectEnv())
//	tw, _ := store.BestTW(2, tk)
//
// See examples/ for complete programs and cmd/siot-bench for the
// reproduction of every table and figure in the paper's evaluation.
package siot

import (
	"io"

	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/task"
)

// ---- Trust engine (internal/core) ----

// AgentID identifies an agent (an autonomous social IoT object).
type AgentID = core.AgentID

// Outcome is the actual result of one delegation: success plus the
// realized gain, damage, and cost in normalized units.
type Outcome = core.Outcome

// Expectation is a trustor's running estimate (Ŝ, Ĝ, D̂, Ĉ) of a trustee on
// one task (eqs. 19–22).
type Expectation = core.Expectation

// Normalizer is the N[·] operator of eq. 18.
type Normalizer = core.Normalizer

// LinearNormalizer maps a profit interval linearly onto [0, 1].
type LinearNormalizer = core.LinearNormalizer

// Betas holds the per-equation forgetting factors β.
type Betas = core.Betas

// UpdateConfig configures the post-evaluation update.
type UpdateConfig = core.UpdateConfig

// EnvContext carries the instantaneous environments of one delegation.
type EnvContext = core.EnvContext

// Store holds one agent's trust state: experience records about trustees
// and usage logs about trustors.
type Store = core.Store

// Record is accumulated experience about one (trustee, task type) pair.
type Record = core.Record

// SeedRecord is one entry of a bulk seeding batch for Store.SeedSorted:
// the trustee, the task, and the expectation to install. Batches sorted
// ascending by (Trustee, task type) ingest in one pass — the fast path
// behind large-population experiment setup.
type SeedRecord = core.SeedRecord

// UsageLog is the trustee-side record behind the reverse evaluation.
type UsageLog = core.UsageLog

// Candidate pairs a potential trustee with its perceived trustworthiness.
type Candidate = core.Candidate

// ExpCandidate pairs a potential trustee with the full expectation.
type ExpCandidate = core.ExpCandidate

// Searcher performs trust-transitivity discovery over a social network.
type Searcher = core.Searcher

// SearchResult is the outcome of a transitivity search.
type SearchResult = core.SearchResult

// TrustView is a frozen-epoch snapshot of per-edge trust records — the
// lock-free read substrate of Searcher.FindView.
type TrustView = core.TrustView

// EdgeMemo caches per-edge hop trustworthiness over a TrustView for one
// sweep.
type EdgeMemo = core.EdgeMemo

// RoundView extends TrustView to everything a delegation round reads:
// per-edge experience records plus the usage counters behind the reverse
// evaluation (eq. 1). The simulation engine captures one per round
// boundary and swaps it through an RCU-style epoch handle, keeping the
// round's compute phase free of store locks.
type RoundView = core.RoundView

// RoundSource is the store access a RoundView capture needs: the
// trust-view record passes plus per-edge usage lookup.
type RoundSource = core.RoundSource

// CompactRecord is the pointer-free arena form of Record: the task is a
// dense TaskRef into the owning TaskCatalog. The form stores and frozen
// views hold internally at million-record scale.
type CompactRecord = core.CompactRecord

// TaskCatalog interns tasks into dense refs; every store of a population
// shares one (UpdateConfig.Catalog).
type TaskCatalog = task.Catalog

// TaskRef is a dense catalog index standing in for a Task. Refs are only
// meaningful against the catalog that issued them.
type TaskRef = task.Ref

// NewTaskCatalog returns an empty task catalog.
func NewTaskCatalog() *TaskCatalog { return task.NewCatalog() }

// ErrArenaOverflow reports a view capture whose record total exceeds the
// arena offset space (~2.1 G records).
var ErrArenaOverflow = core.ErrArenaOverflow

// CaptureRoundView freezes per-edge records and usage counters over a CSR
// adjacency (rows ascending by target). Arenas come from pool when
// non-nil; release the view exactly once. Captures overflowing the arena
// offset space return ErrArenaOverflow.
func CaptureRoundView(adjOff []int32, adjTo []AgentID, src RoundSource, norm Normalizer, workers int, pool *ArenaPool) (*RoundView, error) {
	return core.CaptureRoundView(adjOff, adjTo, src, norm, workers, pool)
}

// CountStoreLocks runs fn and reports how many trust-store lock
// acquisitions happened meanwhile (process-global, not reentrant) — the
// probe behind lock-free compute-phase assertions.
func CountStoreLocks(fn func()) int64 { return core.CountStoreLocks(fn) }

// ArenaPool recycles TrustView arenas and EdgeMemo hop tables across
// frozen-epoch captures (capacity-keyed, explicit Release).
type ArenaPool = core.ArenaPool

// NewArenaPool returns an empty arena pool.
func NewArenaPool() *ArenaPool { return core.NewArenaPool() }

// Policy selects the trust-transfer method (§4.3).
type Policy = core.Policy

// Trust-transfer policies.
const (
	// PolicyTraditional is the eq. 5 product baseline.
	PolicyTraditional = core.PolicyTraditional
	// PolicyConservative requires every characteristic on one path
	// (eqs. 8–11).
	PolicyConservative = core.PolicyConservative
	// PolicyAggressive assembles characteristics across paths
	// (eqs. 12–17).
	PolicyAggressive = core.PolicyAggressive
)

// TrustModel is one pluggable trust-evaluation method of the model zoo: a
// named single-hop lens plus a combine/threshold descriptor, dispatchable
// through the transitivity search, the frozen-epoch memo, and the serving
// engine. The three Policy constants are registered as adapters under
// their policy names.
type TrustModel = core.TrustModel

// ModelSpec describes how a model's hop values combine along a path.
type ModelSpec = core.ModelSpec

// EdgeScorer is a trained per-edge lens over a frozen TrustView (the
// output of an EpochTrainable model's TrainEpoch).
type EdgeScorer = core.EdgeScorer

// EpochTrainable is a TrustModel fit per frozen epoch (e.g. hellinger-mf).
type EpochTrainable = core.EpochTrainable

// ParseModel resolves a registered trust-model name ("traditional",
// "hellinger-mf", ...). Unknown names error.
func ParseModel(s string) (TrustModel, error) { return core.ParseModel(s) }

// ModelNames lists the registered trust models in sorted order.
func ModelNames() []string { return core.ModelNames() }

// RegisterModel adds a trust model to the process-wide registry; it panics
// on an empty or duplicate name.
func RegisterModel(m TrustModel) { core.RegisterModel(m) }

// NewStore creates an empty trust store for an agent.
func NewStore(owner AgentID, cfg UpdateConfig) *Store { return core.NewStore(owner, cfg) }

// DefaultUpdateConfig returns the configuration the paper's experiments
// use.
func DefaultUpdateConfig() UpdateConfig { return core.DefaultUpdateConfig() }

// UnitNormalizer maps net profits in [−2, 1] onto trustworthiness in
// [0, 1].
func UnitNormalizer() LinearNormalizer { return core.UnitNormalizer() }

// UniformBetas returns one forgetting factor for all four update equations.
func UniformBetas(b float64) Betas { return core.UniformBetas(b) }

// PerfectEnv is the neutral environment context.
func PerfectEnv() EnvContext { return core.PerfectEnv() }

// Update applies the post-evaluation update (eqs. 19–22 / 25–29).
func Update(old Expectation, obs Outcome, ectx EnvContext, cfg UpdateConfig) Expectation {
	return core.Update(old, obs, ectx, cfg)
}

// CombinePair is the two-hop trust transition of eq. 7.
func CombinePair(a, b float64) float64 { return core.CombinePair(a, b) }

// CombineSerial folds eq. 7 along a recommendation chain.
func CombineSerial(vals ...float64) float64 { return core.CombineSerial(vals...) }

// ProductSerial is the traditional transitivity of eq. 5.
func ProductSerial(vals ...float64) float64 { return core.ProductSerial(vals...) }

// TransitSameType evaluates the same-task-type transition of Fig. 4.
func TransitSameType(recTW, trusteeTW, omega1, omega2 float64) (float64, bool) {
	return core.TransitSameType(recTW, trusteeTW, omega1, omega2)
}

// SelectMutual implements the mutual-evaluation selection of eq. 1.
func SelectMutual(cands []Candidate, accept func(AgentID) bool) (Candidate, bool) {
	return core.SelectMutual(cands, accept)
}

// BestByNetProfit implements the rational assignment of eq. 23.
func BestByNetProfit(cands []ExpCandidate) (ExpCandidate, bool) {
	return core.BestByNetProfit(cands)
}

// BestBySuccessRate is the success-rate-only baseline strategy.
func BestBySuccessRate(cands []ExpCandidate) (ExpCandidate, bool) {
	return core.BestBySuccessRate(cands)
}

// ShouldDelegate implements eq. 24: delegate only when the trustee's
// expected net profit strictly beats self-execution.
func ShouldDelegate(self, trustee Expectation) bool { return core.ShouldDelegate(self, trustee) }

// DecideWithSelf runs the full §4.4 decision with self-delegation.
func DecideWithSelf(self Expectation, selfID AgentID, cands []ExpCandidate) (ExpCandidate, bool) {
	return core.DecideWithSelf(self, selfID, cands)
}

// LoadStore restores a trust store from a Store.Save snapshot, attaching
// the given update configuration. Trust state is expensive to re-learn, so
// devices snapshot it across reboots.
func LoadStore(r io.Reader, cfg UpdateConfig) (*Store, error) {
	return core.LoadStore(r, cfg)
}

// ---- Tasks and characteristics (internal/task) ----

// Task is a delegable unit of work: a type plus weighted characteristics.
type Task = task.Task

// Characteristic identifies one capability a task requires.
type Characteristic = task.Characteristic

// TaskType identifies a task type (the task context of the model).
type TaskType = task.Type

// TaskUniverse is a closed set of task types over an alphabet.
type TaskUniverse = task.Universe

// Built-in characteristics used by the examples.
const (
	CharGPS         = task.CharGPS
	CharImage       = task.CharImage
	CharVelocity    = task.CharVelocity
	CharTemperature = task.CharTemperature
	CharHumidity    = task.CharHumidity
	CharAudio       = task.CharAudio
	CharStorage     = task.CharStorage
	CharCompute     = task.CharCompute
)

// NewTask builds a task from characteristic→weight pairs.
func NewTask(typ TaskType, weighted map[Characteristic]float64) (Task, error) {
	return task.New(typ, weighted)
}

// UniformTask builds a task whose characteristics carry equal weight.
func UniformTask(typ TaskType, chars ...Characteristic) Task {
	return task.Uniform(typ, chars...)
}

// CharName returns a human-readable name for built-in characteristics.
func CharName(c Characteristic) string { return task.CharName(c) }

// ---- Environment (internal/env) ----

// Environment is an instantaneous external-condition indicator in (0, 1].
type Environment = env.Environment

// Schedule yields the environment at each iteration.
type Schedule = env.Schedule

// PhaseSchedule plays fixed-length environment phases in order.
type PhaseSchedule = env.PhaseSchedule

// EnvPhase is one segment of a PhaseSchedule.
type EnvPhase = env.Phase

// NewPhaseSchedule validates and builds a phase schedule.
func NewPhaseSchedule(phases ...EnvPhase) (*PhaseSchedule, error) {
	return env.NewPhaseSchedule(phases...)
}

// LightSchedule models the light/dark/light optical experiment.
type LightSchedule = env.LightSchedule

// CombineEnv returns the Cannikin-law (minimum) combined environment.
func CombineEnv(trustor, trustee Environment, intermediates ...Environment) Environment {
	return env.Combine(trustor, trustee, intermediates...)
}

// RemoveEnv is the removal function r(·) of eq. 29.
func RemoveEnv(obs, cap float64, trustor, trustee Environment, intermediates ...Environment) float64 {
	return env.Remove(obs, cap, trustor, trustee, intermediates...)
}
