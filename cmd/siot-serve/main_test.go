package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"siot/internal/serve"
)

// startServer builds a small engine with a journal in a temp dir and mounts
// the HTTP handler on an httptest server.
func startServer(t *testing.T) (*httptest.Server, *serve.Engine, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "trust.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	e, err := serve.New(serve.Config{
		Net: "twitter", Seed: 7, Seeded: true, EpochEvery: 4, Journal: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(e))
	t.Cleanup(srv.Close)
	return srv, e, path
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// TestServeHTTP drives the full API surface end to end — health, ingest
// over both endpoints, a trust query, stats — then shuts the engine down
// and replays the journal it wrote.
func TestServeHTTP(t *testing.T) {
	srv, e, path := startServer(t)

	resp := getJSON(t, srv.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Ingest one observation and one recommendation along a real edge.
	obs := map[string]any{
		"trustor": 0, "trustee": int(firstNeighbor(e)), "type": 0,
		"success": true, "gain": 0.8, "damage": 0.1, "cost": 0.05,
	}
	postJSON(t, srv.URL+"/observe", obs, http.StatusAccepted)
	rec := map[string]any{
		"trustor": 0, "trustee": int(firstNeighbor(e)), "type": 1,
		"s": 0.9, "g": 0.7, "d": 0.1, "c": 0.1,
	}
	postJSON(t, srv.URL+"/recommend", rec, http.StatusAccepted)

	var tr trustResponse
	resp = getJSON(t, srv.URL+"/trust?trustor=0&trustee=5&type=0", &tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trust: %d", resp.StatusCode)
	}
	if len(tr.TWBits) != 16 {
		t.Fatalf("tw_bits %q is not a 16-digit hex float", tr.TWBits)
	}

	// Bad requests: non-integer parameter, out-of-range ids, non-neighbors.
	for _, u := range []string{
		"/trust?trustor=x&trustee=1&type=0",
		"/trust?trustor=-1&trustee=1&type=0",
		"/trust?trustor=0&trustee=1&type=9999",
	} {
		if resp := getJSON(t, srv.URL+u, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
	postJSON(t, srv.URL+"/observe", map[string]any{"trustor": 0, "trustee": 0}, http.StatusBadRequest)

	var st serve.Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Ingested != 2 {
		t.Fatalf("stats ingested = %d, want 2", st.Ingested)
	}
	if st.Queries == 0 {
		t.Fatal("stats queries = 0")
	}

	srv.Close()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rs, err := serve.Replay(f)
	if err != nil {
		t.Fatalf("replay of the served journal: %v", err)
	}
	if rs.Events != 2 || rs.Queries == 0 {
		t.Fatalf("replay stats %+v: want 2 events and some queries", rs)
	}

	// The engine is closed: queries must report ErrClosed, not hang.
	if _, err := e.Trust(0, 5, 0); err != serve.ErrClosed {
		t.Fatalf("Trust after Close: %v, want ErrClosed", err)
	}
}

func firstNeighbor(e *serve.Engine) int32 {
	return int32(e.Neighbors(0)[0])
}

func postJSON(t *testing.T, url string, body any, wantStatus int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
}

// TestTrustParamErrors pins the error body shape.
func TestTrustParamErrors(t *testing.T) {
	srv, e, _ := startServer(t)
	defer e.Close()
	resp, err := http.Get(srv.URL + "/trust?trustor=zero&trustee=1&type=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "trustor") {
		t.Fatalf("error body %q does not name the bad parameter", body["error"])
	}
}
