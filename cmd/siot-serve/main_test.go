package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"siot/internal/faultfs"
	"siot/internal/serve"
)

// startServer builds a small engine with a journal in a temp dir and mounts
// the HTTP handler on an httptest server.
func startServer(t *testing.T) (*httptest.Server, *serve.Engine, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "trust.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	e, err := serve.New(serve.Config{
		Net: "twitter", Seed: 7, Seeded: true, EpochEvery: 4, Journal: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(e, time.Second))
	t.Cleanup(srv.Close)
	return srv, e, path
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// TestServeHTTP drives the full API surface end to end — health, ingest
// over both endpoints, a trust query, stats — then shuts the engine down
// and replays the journal it wrote.
func TestServeHTTP(t *testing.T) {
	srv, e, path := startServer(t)

	resp := getJSON(t, srv.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Ingest one observation and one recommendation along a real edge.
	obs := map[string]any{
		"trustor": 0, "trustee": int(firstNeighbor(e)), "type": 0,
		"success": true, "gain": 0.8, "damage": 0.1, "cost": 0.05,
	}
	postJSON(t, srv.URL+"/observe", obs, http.StatusAccepted)
	rec := map[string]any{
		"trustor": 0, "trustee": int(firstNeighbor(e)), "type": 1,
		"s": 0.9, "g": 0.7, "d": 0.1, "c": 0.1,
	}
	postJSON(t, srv.URL+"/recommend", rec, http.StatusAccepted)

	var tr trustResponse
	resp = getJSON(t, srv.URL+"/trust?trustor=0&trustee=5&type=0", &tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trust: %d", resp.StatusCode)
	}
	if len(tr.TWBits) != 16 {
		t.Fatalf("tw_bits %q is not a 16-digit hex float", tr.TWBits)
	}

	// Bad requests: non-integer parameter, out-of-range ids, non-neighbors.
	for _, u := range []string{
		"/trust?trustor=x&trustee=1&type=0",
		"/trust?trustor=-1&trustee=1&type=0",
		"/trust?trustor=0&trustee=1&type=9999",
	} {
		if resp := getJSON(t, srv.URL+u, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
	postJSON(t, srv.URL+"/observe", map[string]any{"trustor": 0, "trustee": 0}, http.StatusBadRequest)

	var st serve.Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Ingested != 2 {
		t.Fatalf("stats ingested = %d, want 2", st.Ingested)
	}
	if st.Queries == 0 {
		t.Fatal("stats queries = 0")
	}

	srv.Close()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rs, err := serve.Replay(f)
	if err != nil {
		t.Fatalf("replay of the served journal: %v", err)
	}
	if rs.Events != 2 || rs.Queries == 0 {
		t.Fatalf("replay stats %+v: want 2 events and some queries", rs)
	}

	// The engine is closed: queries must report ErrClosed, not hang.
	if _, err := e.Trust(0, 5, 0); err != serve.ErrClosed {
		t.Fatalf("Trust after Close: %v, want ErrClosed", err)
	}
}

func firstNeighbor(e *serve.Engine) int32 {
	return int32(e.Neighbors(0)[0])
}

func postJSON(t *testing.T, url string, body any, wantStatus int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
}

// TestStatusFor pins the engine-error → HTTP status mapping, including the
// Retry-After header that rides along with every 429.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		err        error
		status     int
		retryAfter bool
	}{
		{serve.ErrOverloaded, http.StatusTooManyRequests, true},
		{fmt.Errorf("wrapped: %w", serve.ErrOverloaded), http.StatusTooManyRequests, true},
		{serve.ErrClosed, http.StatusServiceUnavailable, false},
		{serve.ErrDegraded, http.StatusServiceUnavailable, false},
		{fmt.Errorf("%w: fsync: boom", serve.ErrDegraded), http.StatusServiceUnavailable, false},
		{errors.New("trustee 9 is not a neighbor"), http.StatusBadRequest, false},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.status {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.status)
		}
		rec := httptest.NewRecorder()
		httpError(rec, statusFor(tc.err), tc.err)
		if got := rec.Header().Get("Retry-After") != ""; got != tc.retryAfter {
			t.Errorf("%v: Retry-After present = %v, want %v", tc.err, got, tc.retryAfter)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
			t.Errorf("%v: error body %q not a JSON error object (%v)", tc.err, rec.Body.String(), err)
		}
	}
}

// TestStatsKeys pins the /stats JSON contract: every documented counter key
// is present, and the durability counters carry sane values on a live
// engine.
func TestStatsKeys(t *testing.T) {
	srv, e, _ := startServer(t)
	defer e.Close()
	postJSON(t, srv.URL+"/observe", map[string]any{
		"trustor": 0, "trustee": int(firstNeighbor(e)), "type": 0,
		"success": true, "gain": 0.5, "damage": 0.1, "cost": 0.1,
	}, http.StatusAccepted)
	getJSON(t, srv.URL+"/trust?trustor=0&trustee=5&type=0", nil)

	var raw map[string]json.RawMessage
	getJSON(t, srv.URL+"/stats", &raw)
	for _, key := range []string{
		"ingested", "applied", "queries", "epochs",
		"query_p50_ns", "query_p99_ns",
		"queue_depth", "shed_total", "fsync_p99_ns",
		"recovered_events", "epoch_staleness_ms", "degraded",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/stats is missing key %q", key)
		}
	}
	var st serve.Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Degraded {
		t.Error("healthy engine reports degraded")
	}
	if st.ShedTotal != 0 || st.RecoveredEvents != 0 {
		t.Errorf("fresh engine: shed=%d recovered=%d, want 0, 0", st.ShedTotal, st.RecoveredEvents)
	}
	if st.EpochStalenessMs < 0 {
		t.Errorf("epoch_staleness_ms = %d is negative", st.EpochStalenessMs)
	}
	if st.FsyncP99Ns == 0 {
		t.Error("fsync_p99_ns = 0 after a journaled batch in the default batch mode")
	}
}

// TestIngestShedsOver429 drives backpressure end to end through the HTTP
// layer: with a stalled journal disk and a one-slot queue, an ingest
// request that cannot be admitted within the handler's timeout is shed with
// 429 and Retry-After, and the engine recovers once the disk does.
func TestIngestShedsOver429(t *testing.T) {
	jf := faultfs.NewFile(nil)
	e, err := serve.New(serve.Config{
		Net: "twitter", Seed: 7, Seeded: true,
		EpochEvery: 1 << 30, QueueSize: 1, BatchSize: 1, Journal: jf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	release := jf.StallSyncs()
	defer release()
	srv := httptest.NewServer(newHandler(e, 25*time.Millisecond))
	defer srv.Close()

	nb := int(firstNeighbor(e))
	obs := map[string]any{
		"trustor": 0, "trustee": nb, "type": 0,
		"success": true, "gain": 0.5, "damage": 0.1, "cost": 0.1,
	}
	b, _ := json.Marshal(obs)

	// Acks are durability promises, so posts admitted while the disk is
	// stalled block until release: fire fillers in goroutines until one
	// event sits in the writer and another fills the one-slot queue. A
	// filler that loses the admission race sheds with 429 and retries.
	var wg sync.WaitGroup
	for range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(srv.URL+"/observe", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				code := resp.StatusCode
				resp.Body.Close()
				switch code {
				case http.StatusAccepted:
					return
				case http.StatusTooManyRequests:
					continue
				default:
					t.Errorf("filler post: status %d", code)
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().QueueDepth < 1 {
		if time.Now().After(deadline) {
			t.Fatal("ingest queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full and nothing can drain: this post must shed.
	resp, err := http.Post(srv.URL+"/observe", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post against a full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var st serve.Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.ShedTotal == 0 {
		t.Fatal("shed_total = 0 after a 429")
	}
	// Queries are unaffected by ingest backpressure.
	if resp := getJSON(t, srv.URL+"/trust?trustor=0&trustee=5&type=0", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("trust during backpressure: %d", resp.StatusCode)
	}

	release()
	wg.Wait()
	postJSON(t, srv.URL+"/observe", obs, http.StatusAccepted)
}

// TestTrustParamErrors pins the error body shape.
func TestTrustParamErrors(t *testing.T) {
	srv, e, _ := startServer(t)
	defer e.Close()
	resp, err := http.Get(srv.URL + "/trust?trustor=zero&trustee=1&type=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "trustor") {
		t.Fatalf("error body %q does not name the bad parameter", body["error"])
	}
}
