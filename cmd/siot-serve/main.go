// Command siot-serve runs the trust-as-a-service engine over HTTP+JSON: a
// long-lived process that ingests observation/recommendation events into
// the population's trust stores, answers trust(trustor, trustee, type)
// queries lock-free from the current frozen epoch, republishes the epoch on
// a count- or time-triggered cadence, and appends every event and served
// value to a replayable, CRC-protected trust-assertion journal.
//
// Usage:
//
//	siot-serve -addr 127.0.0.1:8476 -net facebook -seeded -journal trust.jsonl
//	siot-serve -nodes 1000 -policy conservative -epoch-every 512 -fsync always
//	siot-serve -net twitter -model hellinger-mf -journal trust.jsonl
//	siot-serve -journal trust.jsonl -resume
//	siot-serve -replay trust.jsonl
//
// Endpoints:
//
//	GET  /trust?trustor=A&trustee=B&type=T  one trust value from the current epoch
//	POST /observe                            {"trustor","trustee","type","success","gain","damage","cost","abusive"}
//	POST /recommend                          {"trustor","trustee","type","s","g","d","c"}
//	GET  /stats                              ingest/query/epoch/durability counters
//	GET  /healthz                            liveness
//
// Ingest acknowledgements are durability promises: a 202 means the event's
// journal line has been fsynced per -fsync (so "batch", the default, groups
// events into one fsync per applied batch). When the ingest queue stays
// full past -ingest-timeout the request is shed with 429 and a Retry-After
// header; when the journal itself fails the engine degrades — ingest
// returns 503 while queries keep answering from the last durable epoch
// (watch epoch_staleness_ms in /stats) until a restart with -resume.
//
// The journal is opened in append mode and never truncated at startup: a
// non-empty journal is refused unless -resume is given, in which case the
// engine is rebuilt from the journal prefix (tolerating one torn final
// line) and continues appending where it left off.
//
// With -replay, siot-serve verifies a journal instead of serving: it
// rebuilds the world from the journal header, re-applies every event,
// re-captures every epoch, and re-answers every query, exiting 0 only if
// each served trust value reproduces bit-for-bit.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"siot/internal/cliutil"
	"siot/internal/core"
	"siot/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8476", "listen address")
		netName       = flag.String("net", "facebook", "network profile: facebook, gplus, twitter (ignored when -nodes > 0)")
		nodes         = flag.Int("nodes", 0, "serve the canonical benchmark network at this node count instead of -net")
		seed          = flag.Uint64("seed", 1, "world seed (network, roles, task universe, seeding)")
		chars         = flag.Int("chars", 5, "task-characteristic alphabet size")
		policyName    = flag.String("policy", "aggressive", "trust-transfer policy: traditional, conservative, aggressive")
		modelName     = flag.String("model", "", "registered trust model for non-direct answers (supersedes -policy)")
		seeded        = flag.Bool("seeded", true, "pre-seed experience records so queries are answerable from the start")
		theta         = flag.Float64("theta", 0.3, "reverse-evaluation threshold installed on trustees")
		epochEvery    = flag.Int("epoch-every", 256, "republish the epoch after this many applied events")
		epochInterval = flag.Duration("epoch-interval", time.Second, "also republish on this interval when events arrived (0 disables)")
		journalPath   = flag.String("journal", "", "append the trust-assertion journal to this file")
		fsyncName     = flag.String("fsync", "batch", "journal durability: always (fsync per event), batch (fsync per applied batch and epoch), off")
		resume        = flag.Bool("resume", false, "recover engine state from the existing -journal (truncating a torn tail) and continue appending")
		ingestTimeout = flag.Duration("ingest-timeout", time.Second, "how long ingest requests wait for a full queue before shedding with 429 (0 = wait indefinitely)")
		replayPath    = flag.String("replay", "", "verify a journal byte-for-byte and exit (no server)")
		parallel      = flag.Int("parallel", 0, "capture worker-pool width (0 = GOMAXPROCS); values are identical at any width")
	)
	flag.Parse()

	for _, err := range []error{
		cliutil.ValidateParallel(*parallel),
		cliutil.ValidatePositive("-chars", *chars),
		cliutil.ValidatePositive("-epoch-every", *epochEvery),
	} {
		if err != nil {
			cliutil.Usage("siot-serve", err)
		}
	}
	fsync, err := serve.ParseFsyncMode(*fsyncName)
	if err != nil {
		cliutil.Usage("siot-serve", err)
	}
	if *resume && *journalPath == "" {
		cliutil.Usage("siot-serve", errors.New("-resume requires -journal"))
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		defer f.Close()
		stats, err := serve.Replay(bufio.NewReader(f))
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		fmt.Printf("replay OK: %d events, %d epochs, %d queries reproduced bit-for-bit\n",
			stats.Events, stats.Epochs, stats.Queries)
		return
	}

	var mdl core.TrustModel
	if *modelName != "" {
		mdl, err = core.ParseModel(*modelName)
	} else {
		var policy core.Policy
		policy, err = core.ParsePolicy(*policyName)
		if err == nil {
			mdl = policy.Model()
		}
	}
	if err != nil {
		cliutil.Usage("siot-serve", err)
	}

	cfg := serve.Config{
		Net: *netName, Nodes: *nodes, Seed: *seed, Chars: *chars,
		Model: mdl, Seeded: *seeded, Theta: *theta,
		EpochEvery: *epochEvery, EpochInterval: *epochInterval,
		Workers: *parallel, Fsync: fsync,
	}
	var journalFile *os.File
	if *journalPath != "" {
		journalFile, err = os.OpenFile(*journalPath, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		info, err := journalFile.Stat()
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		if !*resume && info.Size() > 0 {
			cliutil.Usage("siot-serve", fmt.Errorf(
				"journal %s already holds %d bytes; pass -resume to recover from it (or -replay to verify it)",
				*journalPath, info.Size()))
		}
		cfg.Journal = journalFile
	}

	var engine *serve.Engine
	if *resume {
		var rstats serve.RecoverStats
		engine, rstats, err = serve.Recover(journalFile, cfg)
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		log.Printf("siot-serve: recovered %d events, %d epochs, %d queries from %s (%d torn bytes truncated)",
			rstats.Events, rstats.Epochs, rstats.Queries, *journalPath, rstats.TornBytes)
	} else {
		engine, err = serve.New(cfg)
		if err != nil {
			cliutil.Usage("siot-serve", err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: newHandler(engine, *ingestTimeout)}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("siot-serve: %d agents, %d task types, model %s, fsync %s, listening on %s",
		engine.NumAgents(), len(engine.TaskTypes()), mdl.Name(), fsync, *addr)

	select {
	case <-ctx.Done():
	case err := <-errc:
		engine.Close()
		cliutil.Runtime("siot-serve", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("siot-serve: shutdown: %v", err)
	}
	if err := engine.Close(); err != nil {
		// The drain could not make every acknowledged event durable; the
		// error names the first event seq whose journal line is suspect.
		log.Printf("siot-serve: journal drain failed: %v", err)
		cliutil.Runtime("siot-serve", err)
	}
	if journalFile != nil {
		if err := journalFile.Close(); err != nil {
			cliutil.Runtime("siot-serve", err)
		}
	}
}

// trustResponse is the GET /trust payload. TWBits carries the exact float64
// bit pattern the journal records — the value the replay contract defends.
type trustResponse struct {
	TW     float64 `json:"tw"`
	TWBits string  `json:"tw_bits"`
	Found  bool    `json:"found"`
	Direct bool    `json:"direct"`
	Epoch  uint64  `json:"epoch"`
}

// observeRequest is the POST /observe payload.
type observeRequest struct {
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"`
	Success bool    `json:"success"`
	Gain    float64 `json:"gain"`
	Damage  float64 `json:"damage"`
	Cost    float64 `json:"cost"`
	Abusive bool    `json:"abusive"`
}

// recommendRequest is the POST /recommend payload.
type recommendRequest struct {
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"`
	S       float64 `json:"s"`
	G       float64 `json:"g"`
	D       float64 `json:"d"`
	C       float64 `json:"c"`
}

// newHandler routes the engine's API. Split from main so the tests can
// drive it through httptest without a listener. ingestTimeout bounds how
// long an ingest request may wait on a full queue before shedding (0 waits
// indefinitely).
func newHandler(e *serve.Engine, ingestTimeout time.Duration) http.Handler {
	ingest := func(r *http.Request, ev serve.Event) error {
		ctx := r.Context()
		if ingestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, ingestTimeout)
			defer cancel()
		}
		return e.IngestCtx(ctx, ev)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /trust", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		args := make(map[string]int64, 3)
		for _, name := range []string{"trustor", "trustee", "type"} {
			v, err := strconv.ParseInt(q.Get(name), 10, 32)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("query parameter %q: want an integer, got %q", name, q.Get(name)))
				return
			}
			args[name] = v
		}
		res, err := e.Trust(core.AgentID(args["trustor"]), core.AgentID(args["trustee"]), int(args["type"]))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, trustResponse{
			TW: res.TW, TWBits: fmt.Sprintf("%016x", math.Float64bits(res.TW)),
			Found: res.Found, Direct: res.Direct, Epoch: res.Epoch,
		})
	})
	mux.HandleFunc("POST /observe", func(w http.ResponseWriter, r *http.Request) {
		var req observeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		err := ingest(r, serve.Event{
			Op: serve.OpObserve, Trustor: core.AgentID(req.Trustor), Trustee: core.AgentID(req.Trustee),
			Type:    req.Type,
			Outcome: core.Outcome{Success: req.Success, Gain: req.Gain, Damage: req.Damage, Cost: req.Cost},
			Abusive: req.Abusive,
		})
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("POST /recommend", func(w http.ResponseWriter, r *http.Request) {
		var req recommendRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		err := ingest(r, serve.Event{
			Op: serve.OpRecommend, Trustor: core.AgentID(req.Trustor), Trustee: core.AgentID(req.Trustee),
			Type: req.Type,
			Exp:  core.Expectation{S: req.S, G: req.G, D: req.D, C: req.C},
		})
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// statusFor maps engine errors to HTTP statuses: a full queue is the
// client's cue to back off (429), a closed or degraded engine is a server
// condition (503), anything else is a bad request.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
