// Command siot-serve runs the trust-as-a-service engine over HTTP+JSON: a
// long-lived process that ingests observation/recommendation events into
// the population's trust stores, answers trust(trustor, trustee, type)
// queries lock-free from the current frozen epoch, republishes the epoch on
// a count- or time-triggered cadence, and appends every event and served
// value to a replayable trust-assertion journal.
//
// Usage:
//
//	siot-serve -addr 127.0.0.1:8476 -net facebook -seeded -journal trust.jsonl
//	siot-serve -nodes 1000 -policy conservative -epoch-every 512
//	siot-serve -replay trust.jsonl
//
// Endpoints:
//
//	GET  /trust?trustor=A&trustee=B&type=T  one trust value from the current epoch
//	POST /observe                            {"trustor","trustee","type","success","gain","damage","cost","abusive"}
//	POST /recommend                          {"trustor","trustee","type","s","g","d","c"}
//	GET  /stats                              ingest/query/epoch counters with p50/p99 query latency
//	GET  /healthz                            liveness
//
// With -replay, siot-serve verifies a journal instead of serving: it
// rebuilds the world from the journal header, re-applies every event,
// re-captures every epoch, and re-answers every query, exiting 0 only if
// each served trust value reproduces bit-for-bit.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"siot/internal/cliutil"
	"siot/internal/core"
	"siot/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8476", "listen address")
		netName       = flag.String("net", "facebook", "network profile: facebook, gplus, twitter (ignored when -nodes > 0)")
		nodes         = flag.Int("nodes", 0, "serve the canonical benchmark network at this node count instead of -net")
		seed          = flag.Uint64("seed", 1, "world seed (network, roles, task universe, seeding)")
		chars         = flag.Int("chars", 5, "task-characteristic alphabet size")
		policyName    = flag.String("policy", "aggressive", "trust-transfer policy: traditional, conservative, aggressive")
		seeded        = flag.Bool("seeded", true, "pre-seed experience records so queries are answerable from the start")
		theta         = flag.Float64("theta", 0.3, "reverse-evaluation threshold installed on trustees")
		epochEvery    = flag.Int("epoch-every", 256, "republish the epoch after this many applied events")
		epochInterval = flag.Duration("epoch-interval", time.Second, "also republish on this interval when events arrived (0 disables)")
		journalPath   = flag.String("journal", "", "append the trust-assertion journal to this file")
		replayPath    = flag.String("replay", "", "verify a journal byte-for-byte and exit (no server)")
		parallel      = flag.Int("parallel", 0, "capture worker-pool width (0 = GOMAXPROCS); values are identical at any width")
	)
	flag.Parse()

	for _, err := range []error{
		cliutil.ValidateParallel(*parallel),
		cliutil.ValidatePositive("-chars", *chars),
		cliutil.ValidatePositive("-epoch-every", *epochEvery),
	} {
		if err != nil {
			cliutil.Usage("siot-serve", err)
		}
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		defer f.Close()
		stats, err := serve.Replay(bufio.NewReader(f))
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		fmt.Printf("replay OK: %d events, %d epochs, %d queries reproduced bit-for-bit\n",
			stats.Events, stats.Epochs, stats.Queries)
		return
	}

	policy, err := core.ParsePolicy(*policyName)
	if err != nil {
		cliutil.Usage("siot-serve", err)
	}

	cfg := serve.Config{
		Net: *netName, Nodes: *nodes, Seed: *seed, Chars: *chars,
		Policy: policy, Seeded: *seeded, Theta: *theta,
		EpochEvery: *epochEvery, EpochInterval: *epochInterval,
		Workers: *parallel,
	}
	var journalFile *os.File
	var journalBuf *bufio.Writer
	if *journalPath != "" {
		journalFile, err = os.Create(*journalPath)
		if err != nil {
			cliutil.Runtime("siot-serve", err)
		}
		journalBuf = bufio.NewWriter(journalFile)
		cfg.Journal = journalBuf
	}

	engine, err := serve.New(cfg)
	if err != nil {
		cliutil.Usage("siot-serve", err)
	}

	srv := &http.Server{Addr: *addr, Handler: newHandler(engine)}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("siot-serve: %d agents, %d task types, policy %s, listening on %s",
		engine.NumAgents(), len(engine.TaskTypes()), policy, *addr)

	select {
	case <-ctx.Done():
	case err := <-errc:
		engine.Close()
		cliutil.Runtime("siot-serve", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("siot-serve: shutdown: %v", err)
	}
	if err := engine.Close(); err != nil {
		cliutil.Runtime("siot-serve", err)
	}
	if journalFile != nil {
		if err := journalFile.Close(); err != nil {
			cliutil.Runtime("siot-serve", err)
		}
	}
}

// trustResponse is the GET /trust payload. TWBits carries the exact float64
// bit pattern the journal records — the value the replay contract defends.
type trustResponse struct {
	TW     float64 `json:"tw"`
	TWBits string  `json:"tw_bits"`
	Found  bool    `json:"found"`
	Direct bool    `json:"direct"`
	Epoch  uint64  `json:"epoch"`
}

// observeRequest is the POST /observe payload.
type observeRequest struct {
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"`
	Success bool    `json:"success"`
	Gain    float64 `json:"gain"`
	Damage  float64 `json:"damage"`
	Cost    float64 `json:"cost"`
	Abusive bool    `json:"abusive"`
}

// recommendRequest is the POST /recommend payload.
type recommendRequest struct {
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"`
	S       float64 `json:"s"`
	G       float64 `json:"g"`
	D       float64 `json:"d"`
	C       float64 `json:"c"`
}

// newHandler routes the engine's API. Split from main so the tests can
// drive it through httptest without a listener.
func newHandler(e *serve.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /trust", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		args := make(map[string]int64, 3)
		for _, name := range []string{"trustor", "trustee", "type"} {
			v, err := strconv.ParseInt(q.Get(name), 10, 32)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("query parameter %q: want an integer, got %q", name, q.Get(name)))
				return
			}
			args[name] = v
		}
		res, err := e.Trust(core.AgentID(args["trustor"]), core.AgentID(args["trustee"]), int(args["type"]))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, trustResponse{
			TW: res.TW, TWBits: fmt.Sprintf("%016x", math.Float64bits(res.TW)),
			Found: res.Found, Direct: res.Direct, Epoch: res.Epoch,
		})
	})
	mux.HandleFunc("POST /observe", func(w http.ResponseWriter, r *http.Request) {
		var req observeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		err := e.Ingest(serve.Event{
			Op: serve.OpObserve, Trustor: core.AgentID(req.Trustor), Trustee: core.AgentID(req.Trustee),
			Type:    req.Type,
			Outcome: core.Outcome{Success: req.Success, Gain: req.Gain, Damage: req.Damage, Cost: req.Cost},
			Abusive: req.Abusive,
		})
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("POST /recommend", func(w http.ResponseWriter, r *http.Request) {
		var req recommendRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		err := e.Ingest(serve.Event{
			Op: serve.OpRecommend, Trustor: core.AgentID(req.Trustor), Trustee: core.AgentID(req.Trustee),
			Type: req.Type,
			Exp:  core.Expectation{S: req.S, G: req.G, D: req.D, C: req.C},
		})
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func statusFor(err error) int {
	if errors.Is(err, serve.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
