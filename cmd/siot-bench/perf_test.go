package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// entryOn builds a perfEntry for a machine shape with the given
// name → ns/op measurements.
func entryOn(gomaxprocs, numCPU int, ns map[string]float64) perfEntry {
	e := perfEntry{Label: "test", GoMaxProcs: gomaxprocs, NumCPU: numCPU}
	for name, v := range ns {
		e.Benchmarks = append(e.Benchmarks, perfResult{Name: name, NsPerOp: v})
	}
	return e
}

// TestCompareEntriesFloor pins the enforcement floor: >15% deltas fail only
// when both sides sit at or above minEnforceNs; sub-millisecond workloads
// warn instead (timer jitter dominates there), as do baselines from a
// differently sized machine.
func TestCompareEntriesFloor(t *testing.T) {
	cases := []struct {
		name           string
		base, cur      perfEntry
		wantRegression []string
	}{
		{
			name:           "slow workload regression enforced",
			base:           entryOn(8, 8, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:            entryOn(8, 8, map[string]float64{"rounds": 13 * minEnforceNs}),
			wantRegression: []string{"rounds"},
		},
		{
			name: "fast workload regression demoted to warning",
			base: entryOn(8, 8, map[string]float64{"find": 0.2 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"find": 0.5 * minEnforceNs}),
		},
		{
			name: "baseline below floor demoted even when current is above",
			base: entryOn(8, 8, map[string]float64{"find": 0.9 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"find": 2 * minEnforceNs}),
		},
		{
			name: "within tolerance never flagged",
			base: entryOn(8, 8, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"rounds": 11 * minEnforceNs}),
		},
		{
			name: "improvement never flagged",
			base: entryOn(8, 8, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"rounds": 5 * minEnforceNs}),
		},
		{
			name: "cross-machine baseline demoted",
			base: entryOn(4, 4, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"rounds": 20 * minEnforceNs}),
		},
		{
			name: "new benchmark without baseline skipped",
			base: entryOn(8, 8, map[string]float64{}),
			cur:  entryOn(8, 8, map[string]float64{"serve-query-1k": 10 * minEnforceNs}),
		},
		{
			name: "mixed: only the slow regressed workload fails",
			base: entryOn(8, 8, map[string]float64{
				"rounds": 10 * minEnforceNs, "find": 0.2 * minEnforceNs, "sweep": 10 * minEnforceNs,
			}),
			cur: entryOn(8, 8, map[string]float64{
				"rounds": 13 * minEnforceNs, "find": 0.5 * minEnforceNs, "sweep": 10.1 * minEnforceNs,
			}),
			wantRegression: []string{"rounds"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := compareEntries(tc.base, tc.cur)
			if len(got) != len(tc.wantRegression) {
				t.Fatalf("compareEntries returned %d regression(s) %v, want %d", len(got), got, len(tc.wantRegression))
			}
			for i, name := range tc.wantRegression {
				if !strings.HasPrefix(got[i], name+":") {
					t.Errorf("regression %d = %q, want it to name %q", i, got[i], name)
				}
			}
		})
	}
}

// withHeap stamps heap-peak readings onto an entry's benchmarks.
func withHeap(e perfEntry, heap map[string]uint64) perfEntry {
	for i := range e.Benchmarks {
		e.Benchmarks[i].HeapPeakBytes = heap[e.Benchmarks[i].Name]
	}
	return e
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed (compareEntries reports heap growth as a printed
// warning, not a returned regression).
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCompareEntriesHeapWarning pins the heap-peak comparison's guard: the
// warning fires only when BOTH sides carry a reading and the growth
// exceeds heapTolerance. An entry recorded before heap sampling existed
// (or a workload whose sample is zero) must never produce a warning —
// comparing against an absent baseline would report growth from zero.
// Heap findings are warn-only: they never join the returned regressions.
func TestCompareEntriesHeapWarning(t *testing.T) {
	ns := map[string]float64{"rounds": 10 * minEnforceNs}
	cases := []struct {
		name      string
		base, cur perfEntry
		wantWarn  bool
	}{
		{
			name:     "growth past tolerance warns",
			base:     withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": 1 << 30}),
			cur:      withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": 1 << 31}),
			wantWarn: true,
		},
		{
			name: "growth within tolerance silent",
			base: withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": 1 << 30}),
			cur:  withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": (1 << 30) + (1 << 27)}),
		},
		{
			name: "shrink silent",
			base: withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": 1 << 31}),
			cur:  withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": 1 << 30}),
		},
		{
			name: "baseline without heap reading silent",
			base: entryOn(8, 8, ns),
			cur:  withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": 1 << 31}),
		},
		{
			name: "current without heap reading silent",
			base: withHeap(entryOn(8, 8, ns), map[string]uint64{"rounds": 1 << 31}),
			cur:  entryOn(8, 8, ns),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var regressions []string
			out := captureStdout(t, func() {
				regressions = compareEntries(tc.base, tc.cur)
			})
			if len(regressions) != 0 {
				t.Fatalf("heap delta produced hard regressions %v (must be warn-only)", regressions)
			}
			warned := strings.Contains(out, "heap peak")
			if warned != tc.wantWarn {
				t.Fatalf("heap warning printed = %v, want %v; output:\n%s", warned, tc.wantWarn, out)
			}
		})
	}
}
