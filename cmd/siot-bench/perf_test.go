package main

import (
	"strings"
	"testing"
)

// entryOn builds a perfEntry for a machine shape with the given
// name → ns/op measurements.
func entryOn(gomaxprocs, numCPU int, ns map[string]float64) perfEntry {
	e := perfEntry{Label: "test", GoMaxProcs: gomaxprocs, NumCPU: numCPU}
	for name, v := range ns {
		e.Benchmarks = append(e.Benchmarks, perfResult{Name: name, NsPerOp: v})
	}
	return e
}

// TestCompareEntriesFloor pins the enforcement floor: >15% deltas fail only
// when both sides sit at or above minEnforceNs; sub-millisecond workloads
// warn instead (timer jitter dominates there), as do baselines from a
// differently sized machine.
func TestCompareEntriesFloor(t *testing.T) {
	cases := []struct {
		name           string
		base, cur      perfEntry
		wantRegression []string
	}{
		{
			name:           "slow workload regression enforced",
			base:           entryOn(8, 8, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:            entryOn(8, 8, map[string]float64{"rounds": 13 * minEnforceNs}),
			wantRegression: []string{"rounds"},
		},
		{
			name: "fast workload regression demoted to warning",
			base: entryOn(8, 8, map[string]float64{"find": 0.2 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"find": 0.5 * minEnforceNs}),
		},
		{
			name: "baseline below floor demoted even when current is above",
			base: entryOn(8, 8, map[string]float64{"find": 0.9 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"find": 2 * minEnforceNs}),
		},
		{
			name: "within tolerance never flagged",
			base: entryOn(8, 8, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"rounds": 11 * minEnforceNs}),
		},
		{
			name: "improvement never flagged",
			base: entryOn(8, 8, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"rounds": 5 * minEnforceNs}),
		},
		{
			name: "cross-machine baseline demoted",
			base: entryOn(4, 4, map[string]float64{"rounds": 10 * minEnforceNs}),
			cur:  entryOn(8, 8, map[string]float64{"rounds": 20 * minEnforceNs}),
		},
		{
			name: "new benchmark without baseline skipped",
			base: entryOn(8, 8, map[string]float64{}),
			cur:  entryOn(8, 8, map[string]float64{"serve-query-1k": 10 * minEnforceNs}),
		},
		{
			name: "mixed: only the slow regressed workload fails",
			base: entryOn(8, 8, map[string]float64{
				"rounds": 10 * minEnforceNs, "find": 0.2 * minEnforceNs, "sweep": 10 * minEnforceNs,
			}),
			cur: entryOn(8, 8, map[string]float64{
				"rounds": 13 * minEnforceNs, "find": 0.5 * minEnforceNs, "sweep": 10.1 * minEnforceNs,
			}),
			wantRegression: []string{"rounds"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := compareEntries(tc.base, tc.cur)
			if len(got) != len(tc.wantRegression) {
				t.Fatalf("compareEntries returned %d regression(s) %v, want %d", len(got), got, len(tc.wantRegression))
			}
			for i, name := range tc.wantRegression {
				if !strings.HasPrefix(got[i], name+":") {
					t.Errorf("regression %d = %q, want it to name %q", i, got[i], name)
				}
			}
		})
	}
}
