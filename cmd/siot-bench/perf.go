package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"siot/internal/benchnet"
	"siot/internal/core"
	"siot/internal/serve"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// The -json perf suite: a fixed set of engine workloads timed with
// testing.Benchmark and appended to a JSON history file, so the perf
// trajectory of the hot paths stays machine-readable across PRs. The
// workloads mirror the go test benchmarks (bench_test.go) on the shared
// benchnet networks.

// perfResult is one timed workload.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SpeedupVsSerial compares against the suite's serial rounds baseline
	// (only set for parallel variants).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// SpeedupNote qualifies SpeedupVsSerial when the measurement
	// environment cannot exhibit parallel speedup (GOMAXPROCS=1): a ~1.0x
	// reading there is an artifact of the worker pool's overhead, not a
	// regression signal.
	SpeedupNote string `json:"speedup_note,omitempty"`
	// HeapPeakBytes is the largest live heap (runtime.MemStats.HeapAlloc)
	// a background sampler observed across the workload, setup included —
	// the footprint trajectory of the memory-bound workloads. Sampled at
	// ~50 ms, so sub-sample spikes can slip through; treat it as a floor.
	HeapPeakBytes uint64             `json:"heap_peak_bytes,omitempty"`
	Counters      map[string]float64 `json:"counters,omitempty"`
}

// perfEntry is one suite run (one PR / one CI invocation). GOMAXPROCS and
// NumCPU record the measurement environment: entries from differently
// sized machines are not comparable, and the -compare gate refuses to
// treat them as a regression baseline.
type perfEntry struct {
	Label string `json:"label"`
	Date  string `json:"date"`
	Go    string `json:"go"`
	// Note explains context a reader of the history needs — e.g. a
	// deliberate workload change that moves like-named benchmarks for
	// data rather than code reasons (set with -note).
	Note       string       `json:"note,omitempty"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Benchmarks []perfResult `json:"benchmarks"`
}

// perfFile is the BENCH.json layout: an append-only entry history.
type perfFile struct {
	Entries []perfEntry `json:"entries"`
}

// timed converts a testing.Benchmark result, stamping the heap peak the
// suite's sampler observed across the workload.
func timed(name string, r testing.BenchmarkResult, heapPeak uint64) perfResult {
	return perfResult{
		Name:          name,
		NsPerOp:       float64(r.NsPerOp()),
		BytesPerOp:    r.AllocedBytesPerOp(),
		AllocsPerOp:   r.AllocsPerOp(),
		HeapPeakBytes: heapPeak,
	}
}

// heapSampler polls runtime.ReadMemStats in the background, tracking the
// largest HeapAlloc since the last Peak call. One sampler serves the whole
// suite: each workload's window runs from the previous Peak() to the next.
type heapSampler struct {
	mu   sync.Mutex
	peak uint64
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			s.sample()
			select {
			case <-s.stop:
				return
			case <-ticker.C:
			}
		}
	}()
	return s
}

func (s *heapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	s.mu.Unlock()
}

// Peak takes one final sample, returns the peak observed since the previous
// Peak call, and resets the window.
func (s *heapSampler) Peak() uint64 {
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.peak
	s.peak = 0
	return p
}

func (s *heapSampler) Stop() {
	close(s.stop)
	<-s.done
}

// benchRoundsWorkload times one full delegation round (mutuality +
// aggressive transitivity sweep) per op at the given scale and width.
func benchRoundsWorkload(nodes, workers int) (testing.BenchmarkResult, sim.MutualityCounters) {
	var c sim.MutualityCounters
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		p, setup := benchnet.Population(nodes)
		eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "perf"}
		tk := task.Uniform(1, task.CharCompute)
		c = sim.MutualityCounters{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.MutualityRound(i, tk, &c)
			eng.TransitivityRun(setup, core.PolicyAggressive, benchnet.Seed)
		}
	})
	return res, c
}

// benchTransitivityWorkload times one frozen-epoch aggressive sweep per op.
// The sweep is a pure read of the population, so the (expensive at 10k
// nodes) build happens once, outside the benchmark's sizing rounds.
func benchTransitivityWorkload(nodes, workers int) (testing.BenchmarkResult, sim.TransitivityStats) {
	p, setup := benchnet.Population(nodes)
	eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "perf"}
	var st sim.TransitivityStats
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st = eng.TransitivityRun(setup, core.PolicyAggressive, benchnet.Seed)
		}
	})
	return res, st
}

// benchCaptureWorkload times one pooled two-pass trust-view capture per op
// at the given scale and worker count — the serial bottleneck the parallel
// capture removed at large N. The population (expensive at 10k+) is built
// once, outside the benchmark's sizing rounds.
func benchCaptureWorkload(nodes, workers int) testing.BenchmarkResult {
	p, _ := benchnet.Population(nodes)
	pool := core.NewArenaPool()
	v := p.TrustViewParallel(workers, pool) // warm the pool
	v.Release()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := p.TrustViewParallel(workers, pool)
			v.Release()
		}
	})
}

// benchSetupWorkload times the full setup pipeline (sharded population
// build plus bulk experience seeding, at the default GOMAXPROCS pool
// width) per op on the canonical network for the profile; the network
// itself is generated once, outside the timer.
func benchSetupWorkload(profile socialgen.Profile) testing.BenchmarkResult {
	net := socialgen.Generate(profile, benchnet.Seed)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchnet.Populate(net)
		}
	})
}

// benchSeedWorkload isolates the bulk experience-seeding pass: each op
// re-builds a fresh population outside the timer and times one
// SeedParallel at the given worker count.
func benchSeedWorkload(nodes, workers int) testing.BenchmarkResult {
	net := socialgen.Generate(benchnet.Profile(nodes), benchnet.Seed)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := sim.DefaultPopulationConfig(benchnet.Seed)
			cfg.Parallelism = workers
			p := sim.NewPopulation(net, cfg)
			setup := sim.DefaultTransitivitySetup(5, p.Rand("bench-rounds"))
			setup.MaxDepth = 3
			b.StartTimer()
			p.SeedParallel(setup, benchnet.Seed, workers)
		}
	})
}

// benchTransitivity100kWorkload times the full 100k-node sweep — streaming
// network generation and the seeded population are built once, each op is
// one pooled capture + memo pre-pass + 40k-trustor aggressive sweep.
func benchTransitivity100kWorkload(workers int) (testing.BenchmarkResult, sim.TransitivityStats) {
	p, setup := benchnet.Population100k()
	eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "perf"}
	var st sim.TransitivityStats
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st = eng.TransitivityRun(setup, core.PolicyAggressive, benchnet.Seed)
		}
	})
	return res, st
}

// benchRounds100kWorkload times one full 100k-node mutuality round per op:
// snapshot capture through the epoch handle, lock-free compute phase over
// the worker pool, single-threaded ordered merge. The population is built
// once; counters accumulate across ops and come back for the entry record.
func benchRounds100kWorkload(workers int) (testing.BenchmarkResult, sim.MutualityCounters) {
	p, _ := benchnet.Population100k()
	eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "perf"}
	tk := task.Uniform(1, task.CharCompute)
	var c sim.MutualityCounters
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		c = sim.MutualityCounters{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.MutualityRound(i, tk, &c)
		}
	})
	return res, c
}

// benchFindWorkload times one warm aggressive search over a frozen epoch
// (the 0 allocs/op guard's workload). Pure read: built once.
func benchFindWorkload(nodes int) (testing.BenchmarkResult, int) {
	p, setup := benchnet.Population(nodes)
	s := p.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2)
	view := p.TrustView()
	memo := core.NewEdgeMemo(view, p.Config().Update.Norm, 1)
	tk := setup.Universe.Tasks[0]
	memo.Require(core.PolicyAggressive, []task.Task{tk})
	trustor := p.Trustors[0]
	var out core.SearchResult
	s.FindViewInto(&out, view, memo, trustor, tk, core.PolicyAggressive) // warm the pool
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.FindViewInto(&out, view, memo, trustor, tk, core.PolicyAggressive)
		}
	})
	return res, out.Inquired
}

// benchServeQueryWorkload times one trust query per op against a live
// serve engine on the canonical benchmark network (read-only: the writer
// goroutine idles, every op is an Acquire → answer → Release on the initial
// epoch). The engine's own latency histogram supplies p50/p99 counters.
func benchServeQueryWorkload(nodes int) (testing.BenchmarkResult, serve.Stats) {
	eng, err := serve.New(serve.Config{
		Nodes: nodes, Seed: benchnet.Seed, Seeded: true, Policy: core.PolicyAggressive,
	})
	if err != nil {
		panic(err) // benchmark profiles are always resolvable
	}
	defer eng.Close()
	n := eng.NumAgents()
	types := len(eng.TaskTypes())
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trustor := core.AgentID(i % n)
			trustee := core.AgentID((i*31 + 1) % n)
			if trustee == trustor {
				trustee = core.AgentID((int(trustee) + 1) % n)
			}
			eng.Trust(trustor, trustee, i%types)
		}
	})
	return res, eng.Stats()
}

// benchServeMixedWorkload times the mixed read/write path: each op is three
// trust queries and one ingested observation (applied by the writer
// goroutine, republishing the epoch every 512 events), so queries keep
// acquiring snapshots across concurrent swaps — the serving system's
// steady state.
func benchServeMixedWorkload(nodes int) (testing.BenchmarkResult, serve.Stats) {
	eng, err := serve.New(serve.Config{
		Nodes: nodes, Seed: benchnet.Seed, Seeded: true, Policy: core.PolicyAggressive,
		EpochEvery: 512,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	n := eng.NumAgents()
	types := len(eng.TaskTypes())
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%4 == 3 {
				trustor := core.AgentID(i % n)
				nbrs := eng.Neighbors(trustor)
				eng.Ingest(serve.Event{
					Op: serve.OpObserve, Trustor: trustor, Trustee: nbrs[i%len(nbrs)],
					Type:    i % types,
					Outcome: core.Outcome{Success: i%3 != 0, Gain: 0.8, Damage: 0.2, Cost: 0.1},
				})
				continue
			}
			trustor := core.AgentID(i % n)
			trustee := core.AgentID((i*31 + 1) % n)
			if trustee == trustor {
				trustee = core.AgentID((int(trustee) + 1) % n)
			}
			eng.Trust(trustor, trustee, i%types)
		}
	})
	return res, eng.Stats()
}

// benchServeIngestFsyncWorkload times one durably acknowledged ingest per
// op: the journal lives on a real temp file in batch-fsync mode, so each op
// measures the full group-commit path — enqueue, apply, journal append,
// fsync, ack. Sequential ingests make every batch a batch of one, the worst
// case for group commit (no amortization across concurrent producers), so
// the number is an upper bound on per-event durability cost.
func benchServeIngestFsyncWorkload(nodes int) (testing.BenchmarkResult, serve.Stats, error) {
	f, err := os.CreateTemp("", "siot-bench-journal-*.jsonl")
	if err != nil {
		return testing.BenchmarkResult{}, serve.Stats{}, err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	eng, err := serve.New(serve.Config{
		Nodes: nodes, Seed: benchnet.Seed, Seeded: true, Policy: core.PolicyAggressive,
		EpochEvery: 1 << 30, Journal: f, Fsync: serve.FsyncBatch,
	})
	if err != nil {
		return testing.BenchmarkResult{}, serve.Stats{}, err
	}
	n := eng.NumAgents()
	types := len(eng.TaskTypes())
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trustor := core.AgentID(i % n)
			nbrs := eng.Neighbors(trustor)
			eng.Ingest(serve.Event{
				Op: serve.OpObserve, Trustor: trustor, Trustee: nbrs[i%len(nbrs)],
				Type:    i % types,
				Outcome: core.Outcome{Success: i%3 != 0, Gain: 0.8, Damage: 0.2, Cost: 0.1},
			})
		}
	})
	stats := eng.Stats()
	err = eng.Close()
	return res, stats, err
}

// benchSweep1MWorkload times the full million-node pipeline per op: the
// sharded population build, the bulk experience-seeding pass, and one
// frozen-epoch aggressive transitivity sweep on the streaming sharded path
// (400k trustors through bounded per-shard scratch). The 1M-node / 6M-edge
// network generates once, outside the timer; the per-op rebuild is what the
// scale milestone budgets (populate+seed+sweep), so it stays inside.
func benchSweep1MWorkload() (testing.BenchmarkResult, sim.TransitivityStats) {
	net := socialgen.Generate(benchnet.Net1M(), benchnet.Seed)
	var st sim.TransitivityStats
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, setup := benchnet.Populate(net)
			eng := &sim.Engine{Pop: p, Parallelism: 0, Label: "perf"}
			st = eng.TransitivityRun(setup, core.PolicyAggressive, benchnet.Seed)
		}
	})
	return res, st
}

// runPerfSuite executes the suite and appends the entry to path (creating
// the file when absent). With compare set, the fresh measurements are also
// diffed against the file's previous last entry and any >15% ns/op
// regression fails the run — unless the baseline was recorded on a
// differently sized machine, in which case the diff is reported but not
// enforced (timings across machines are not comparable; see perfEntry).
// With scale1m set, the million-node sweep-1m workload joins the suite
// (several minutes and ~6 GB of heap; gated so the default run stays light).
func runPerfSuite(path, label, note string, compare, scale1m bool) error {
	var out perfFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	entry := perfEntry{
		Label:      label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		Note:       note,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	sampler := startHeapSampler()
	defer sampler.Stop()

	serial, counters := benchRoundsWorkload(1000, 1)
	r := timed("rounds-1k-serial", serial, sampler.Peak())
	r.Counters = map[string]float64{
		"requests":  float64(counters.Requests),
		"successes": float64(counters.Successes),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	parallel, _ := benchRoundsWorkload(1000, 4)
	r = timed("rounds-1k-parallel4", parallel, sampler.Peak())
	r.SpeedupVsSerial = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
	if entry.GoMaxProcs == 1 {
		r.SpeedupNote = "measured at GOMAXPROCS=1; pool overhead only, not a regression signal"
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	transit, st := benchTransitivityWorkload(1000, 1)
	r = timed("transitivity-1k-serial", transit, sampler.Peak())
	r.Counters = map[string]float64{
		"requests":           float64(st.Requests),
		"potential_trustees": float64(st.PotentialTrustees),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	transit10k, st10 := benchTransitivityWorkload(10000, 1)
	r = timed("transitivity-10k-serial", transit10k, sampler.Peak())
	r.Counters = map[string]float64{
		"requests":           float64(st10.Requests),
		"potential_trustees": float64(st10.PotentialTrustees),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	capture := benchCaptureWorkload(10000, 1)
	entry.Benchmarks = append(entry.Benchmarks, timed("capture-10k-serial", capture, sampler.Peak()))

	seedSerial := benchSeedWorkload(10000, 1)
	entry.Benchmarks = append(entry.Benchmarks, timed("seed-10k-serial", seedSerial, sampler.Peak()))

	seedParallel := benchSeedWorkload(10000, 4)
	r = timed("seed-10k-parallel4", seedParallel, sampler.Peak())
	r.SpeedupVsSerial = float64(seedSerial.NsPerOp()) / float64(seedParallel.NsPerOp())
	if entry.GoMaxProcs == 1 {
		r.SpeedupNote = "measured at GOMAXPROCS=1; pool overhead only, not a regression signal"
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	setup100k := benchSetupWorkload(benchnet.Net100k())
	entry.Benchmarks = append(entry.Benchmarks, timed("setup-100k", setup100k, sampler.Peak()))

	transit100k, st100 := benchTransitivity100kWorkload(0)
	r = timed("transitivity-100k", transit100k, sampler.Peak())
	r.Counters = map[string]float64{
		"requests":           float64(st100.Requests),
		"potential_trustees": float64(st100.PotentialTrustees),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	rounds100k, c100 := benchRounds100kWorkload(0)
	r = timed("rounds-100k", rounds100k, sampler.Peak())
	r.Counters = map[string]float64{
		"requests":  float64(c100.Requests),
		"successes": float64(c100.Successes),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	find, inquired := benchFindWorkload(1000)
	r = timed("find-aggressive-1k", find, sampler.Peak())
	r.Counters = map[string]float64{"inquired": float64(inquired)}
	entry.Benchmarks = append(entry.Benchmarks, r)

	serveQ, sq := benchServeQueryWorkload(1000)
	r = timed("serve-query-1k", serveQ, sampler.Peak())
	r.Counters = map[string]float64{
		"queries":      float64(sq.Queries),
		"query_p50_ns": float64(sq.QueryP50Ns),
		"query_p99_ns": float64(sq.QueryP99Ns),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	serveM, sm := benchServeMixedWorkload(10000)
	r = timed("serve-mixed-10k", serveM, sampler.Peak())
	r.Counters = map[string]float64{
		"queries":      float64(sm.Queries),
		"ingested":     float64(sm.Ingested),
		"epochs":       float64(sm.Epochs),
		"query_p50_ns": float64(sm.QueryP50Ns),
		"query_p99_ns": float64(sm.QueryP99Ns),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	serveF, sf, err := benchServeIngestFsyncWorkload(1000)
	if err != nil {
		return fmt.Errorf("serve-ingest-fsync: %w", err)
	}
	r = timed("serve-ingest-fsync", serveF, sampler.Peak())
	r.Counters = map[string]float64{
		"ingested":     float64(sf.Ingested),
		"fsync_p99_ns": float64(sf.FsyncP99Ns),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	if scale1m {
		sweep1m, st1m := benchSweep1MWorkload()
		r = timed("sweep-1m", sweep1m, sampler.Peak())
		r.Counters = map[string]float64{
			"requests":           float64(st1m.Requests),
			"potential_trustees": float64(st1m.PotentialTrustees),
			"successes":          float64(st1m.Successes),
		}
		entry.Benchmarks = append(entry.Benchmarks, r)
	}

	for _, b := range entry.Benchmarks {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}

	var regressions []string
	if compare && len(out.Entries) > 0 {
		regressions = compareEntries(out.Entries[len(out.Entries)-1], entry)
	}

	out.Entries = append(out.Entries, entry)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if len(regressions) > 0 {
		for _, msg := range regressions {
			fmt.Println("PERF FAIL ", msg)
		}
		return fmt.Errorf("%d benchmark(s) regressed more than %d%% vs entry %q", len(regressions), int(regressionTolerance*100), out.Entries[len(out.Entries)-2].Label)
	}
	return nil
}

// regressionTolerance is the fractional ns/op slowdown the -compare gate
// accepts before failing (noise on shared CI runners sits well below it).
const regressionTolerance = 0.15

// heapTolerance is the fractional heap-peak growth past which -compare
// prints a warning. Warn-only: the sampler's 50 ms grid and GC timing put
// real variance on the reading, so a hard gate would flake — but a >25%
// jump on a like-for-like machine is worth a human look.
const heapTolerance = 0.25

// minEnforceNs is the ns/op floor below which the -compare gate only warns:
// on sub-millisecond workloads a >15% delta is routinely timer jitter,
// scheduler noise, or cache alignment, not a code regression, so failing
// the build on it would make the gate cry wolf.
const minEnforceNs = 1e6

// compareEntries diffs cur against base by benchmark name and returns one
// message per enforced regression. Benchmarks present on only one side are
// skipped (the suite may grow); a baseline from a differently sized machine
// demotes every finding to a printed warning, as does a workload whose
// ns/op sits under minEnforceNs on either side (jitter dominates there).
func compareEntries(base, cur perfEntry) []string {
	enforce := base.NumCPU == cur.NumCPU && base.GoMaxProcs == cur.GoMaxProcs
	if !enforce {
		fmt.Printf("compare: baseline %q ran on %d CPUs (GOMAXPROCS %d), this run on %d (GOMAXPROCS %d); reporting deltas without enforcement\n",
			base.Label, base.NumCPU, base.GoMaxProcs, cur.NumCPU, cur.GoMaxProcs)
	}
	prev := make(map[string]perfResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prev[b.Name] = b
	}
	var regressions []string
	for _, b := range cur.Benchmarks {
		p, ok := prev[b.Name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		ratio := b.NsPerOp / p.NsPerOp
		fmt.Printf("compare: %-24s %+7.1f%% vs %q\n", b.Name, 100*(ratio-1), base.Label)
		if p.HeapPeakBytes > 0 && b.HeapPeakBytes > 0 {
			if hr := float64(b.HeapPeakBytes) / float64(p.HeapPeakBytes); hr > 1+heapTolerance {
				fmt.Printf("PERF WARN  %s: heap peak %d B vs %d B (%.1f%% larger, tolerance %d%%; warn-only — see heapTolerance)\n",
					b.Name, b.HeapPeakBytes, p.HeapPeakBytes, 100*(hr-1), int(heapTolerance*100))
			}
		}
		if ratio > 1+regressionTolerance {
			msg := fmt.Sprintf("%s: %.0f ns/op vs %.0f ns/op (%.1f%% slower, tolerance %d%%)",
				b.Name, b.NsPerOp, p.NsPerOp, 100*(ratio-1), int(regressionTolerance*100))
			switch {
			case !enforce:
				fmt.Println("PERF WARN ", msg)
			case b.NsPerOp < minEnforceNs || p.NsPerOp < minEnforceNs:
				fmt.Println("PERF WARN ", msg+" (below enforcement floor; timer jitter dominates sub-millisecond workloads)")
			default:
				regressions = append(regressions, msg)
			}
		}
	}
	return regressions
}
