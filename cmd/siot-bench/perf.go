package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"siot/internal/benchnet"
	"siot/internal/core"
	"siot/internal/sim"
	"siot/internal/task"
)

// The -json perf suite: a fixed set of engine workloads timed with
// testing.Benchmark and appended to a JSON history file, so the perf
// trajectory of the hot paths stays machine-readable across PRs. The
// workloads mirror the go test benchmarks (bench_test.go) on the shared
// benchnet networks.

// perfResult is one timed workload.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SpeedupVsSerial compares against the suite's serial rounds baseline
	// (only set for parallel variants).
	SpeedupVsSerial float64            `json:"speedup_vs_serial,omitempty"`
	Counters        map[string]float64 `json:"counters,omitempty"`
}

// perfEntry is one suite run (one PR / one CI invocation).
type perfEntry struct {
	Label      string       `json:"label"`
	Date       string       `json:"date"`
	Go         string       `json:"go"`
	Benchmarks []perfResult `json:"benchmarks"`
}

// perfFile is the BENCH.json layout: an append-only entry history.
type perfFile struct {
	Entries []perfEntry `json:"entries"`
}

// timed converts a testing.Benchmark result.
func timed(name string, r testing.BenchmarkResult) perfResult {
	return perfResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchRoundsWorkload times one full delegation round (mutuality +
// aggressive transitivity sweep) per op at the given scale and width.
func benchRoundsWorkload(nodes, workers int) (testing.BenchmarkResult, sim.MutualityCounters) {
	var c sim.MutualityCounters
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		p, setup := benchnet.Population(nodes)
		eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "perf"}
		tk := task.Uniform(1, task.CharCompute)
		c = sim.MutualityCounters{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.MutualityRound(i, tk, &c)
			eng.TransitivityRun(setup, core.PolicyAggressive, benchnet.Seed)
		}
	})
	return res, c
}

// benchTransitivityWorkload times one frozen-epoch aggressive sweep per op.
// The sweep is a pure read of the population, so the (expensive at 10k
// nodes) build happens once, outside the benchmark's sizing rounds.
func benchTransitivityWorkload(nodes, workers int) (testing.BenchmarkResult, sim.TransitivityStats) {
	p, setup := benchnet.Population(nodes)
	eng := &sim.Engine{Pop: p, Parallelism: workers, Label: "perf"}
	var st sim.TransitivityStats
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st = eng.TransitivityRun(setup, core.PolicyAggressive, benchnet.Seed)
		}
	})
	return res, st
}

// benchFindWorkload times one warm aggressive search over a frozen epoch
// (the 0 allocs/op guard's workload). Pure read: built once.
func benchFindWorkload(nodes int) (testing.BenchmarkResult, int) {
	p, setup := benchnet.Population(nodes)
	s := p.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2)
	view := p.TrustView()
	memo := core.NewEdgeMemo(view, p.Config().Update.Norm, 1)
	tk := setup.Universe.Tasks[0]
	memo.Require(core.PolicyAggressive, []task.Task{tk})
	trustor := p.Trustors[0]
	var out core.SearchResult
	s.FindViewInto(&out, view, memo, trustor, tk, core.PolicyAggressive) // warm the pool
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.FindViewInto(&out, view, memo, trustor, tk, core.PolicyAggressive)
		}
	})
	return res, out.Inquired
}

// runPerfSuite executes the suite and appends the entry to path (creating
// the file when absent).
func runPerfSuite(path, label string) error {
	var out perfFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	entry := perfEntry{
		Label: label,
		Date:  time.Now().UTC().Format("2006-01-02"),
		Go:    runtime.Version(),
	}

	serial, counters := benchRoundsWorkload(1000, 1)
	r := timed("rounds-1k-serial", serial)
	r.Counters = map[string]float64{
		"requests":  float64(counters.Requests),
		"successes": float64(counters.Successes),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	parallel, _ := benchRoundsWorkload(1000, 4)
	r = timed("rounds-1k-parallel4", parallel)
	r.SpeedupVsSerial = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
	entry.Benchmarks = append(entry.Benchmarks, r)

	transit, st := benchTransitivityWorkload(1000, 1)
	r = timed("transitivity-1k-serial", transit)
	r.Counters = map[string]float64{
		"requests":           float64(st.Requests),
		"potential_trustees": float64(st.PotentialTrustees),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	transit10k, st10 := benchTransitivityWorkload(10000, 1)
	r = timed("transitivity-10k-serial", transit10k)
	r.Counters = map[string]float64{
		"requests":           float64(st10.Requests),
		"potential_trustees": float64(st10.PotentialTrustees),
	}
	entry.Benchmarks = append(entry.Benchmarks, r)

	find, inquired := benchFindWorkload(1000)
	r = timed("find-aggressive-1k", find)
	r.Counters = map[string]float64{"inquired": float64(inquired)}
	entry.Benchmarks = append(entry.Benchmarks, r)

	out.Entries = append(out.Entries, entry)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	for _, b := range entry.Benchmarks {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
