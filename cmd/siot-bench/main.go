// Command siot-bench regenerates the tables and figures of the paper's
// evaluation at full scale: it prints each experiment's summary table,
// renders figure curves as ASCII charts, verifies the paper's qualitative
// claims (shape checks), and optionally exports CSV files for external
// plotting.
//
// Usage:
//
//	siot-bench [-seed N] [-exp table1,fig7,...|all] [-csv DIR] [-charts] [-parallel P]
//	siot-bench -json BENCH.json [-label NAME] [-scale1m]
//	siot-bench -compare BENCH.json [-label NAME] [-scale1m]
//
// With -json, siot-bench runs the machine-readable perf suite instead of
// the experiments: it times the engine's standard workloads (delegation
// rounds at 1k nodes, snapshot mutuality rounds at 100k nodes, frozen-epoch
// transitivity sweeps at 1k, 10k, and 100k nodes, the pooled trust-view
// capture, the bulk experience-seeding pass, the full 100k populate+seed
// setup, a single warm search, and the serve engine's pure-query and mixed
// read/write workloads with p50/p99 query-latency counters) and appends an
// entry to the JSON history file, tracking the perf trajectory across PRs.
// Every workload also records its peak heap footprint (heap_peak_bytes,
// sampled from runtime.ReadMemStats); -scale1m adds the million-node
// sweep-1m workload (1M nodes / 6M edges: populate, seed, sharded sweep).
//
// With -compare, the suite additionally diffs the fresh measurements
// against the file's previous last entry and exits non-zero when any
// benchmark regressed by more than 15% ns/op — BENCH.json becomes a
// guarded perf trajectory. Baselines recorded on a differently sized
// machine (the entries carry gomaxprocs/num_cpu) are reported but not
// enforced.
//
// Exit status follows the shared CLI convention: 2 for usage errors, 1 for
// runtime failures (failed shape checks, perf regressions, I/O errors).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"siot/internal/cliutil"
	"siot/internal/experiments"
	"siot/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or 'all' (known: "+strings.Join(experiments.Names(), ", ")+")")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	charts := flag.Bool("charts", true, "render ASCII charts for figure experiments")
	parallel := flag.Int("parallel", 0, "simulation worker-pool width (0 = GOMAXPROCS, 1 = serial); outputs are identical at any width")
	jsonPath := flag.String("json", "", "run the perf suite and append the results to this JSON history file (skips the experiments)")
	label := flag.String("label", "local", "label recorded with the -json perf entry")
	note := flag.String("note", "", "context note recorded with the -json perf entry (e.g. a deliberate workload change)")
	compare := flag.String("compare", "", "run the perf suite against this JSON history file, appending the new entry and exiting non-zero on any >15% ns/op regression vs the previous last entry (implies -json)")
	scale1m := flag.Bool("scale1m", false, "include the million-node sweep-1m workload in the -json/-compare perf suite (several minutes, ~6 GB of heap)")
	modelName := flag.String("model", "", "restrict the model-matrix experiment to one registered trust model (empty = all)")
	flag.Parse()

	if err := cliutil.ValidateParallel(*parallel); err != nil {
		cliutil.Usage("siot-bench", err)
	}
	if *compare != "" && *jsonPath != "" {
		cliutil.Usage("siot-bench", errors.New("-json and -compare are mutually exclusive (both run the suite and append to their file; pick one history file)"))
	}
	if *compare != "" || *jsonPath != "" {
		path, gate := *jsonPath, false
		if *compare != "" {
			path, gate = *compare, true
		}
		if err := runPerfSuite(path, *label, *note, gate, *scale1m); err != nil {
			cliutil.Runtime("siot-bench", err)
		}
		return
	}
	if *scale1m {
		cliutil.Usage("siot-bench", errors.New("-scale1m only applies to the -json/-compare perf suite"))
	}

	var names []string
	if *expFlag == "all" {
		names = experiments.Names()
	} else {
		names = strings.Split(*expFlag, ",")
	}

	failed := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fmt.Printf("==> %s (seed %d)\n", name, *seed)
		res, err := experiments.RunOpts(name, experiments.Options{Seed: *seed, Parallelism: *parallel, Model: *modelName})
		if err != nil {
			cliutil.Usage("siot-bench", err)
		}
		if err := res.Table().Render(os.Stdout); err != nil {
			cliutil.Runtime("siot-bench", fmt.Errorf("render: %w", err))
		}
		fmt.Println()
		if *charts {
			if c, ok := res.(experiments.Charter); ok {
				for _, chart := range c.Charts() {
					chart := chart
					if err := chart.Render(os.Stdout); err != nil {
						cliutil.Runtime("siot-bench", fmt.Errorf("chart: %w", err))
					}
					fmt.Println()
				}
			}
		}
		if errs := res.ShapeCheck(); len(errs) > 0 {
			failed += len(errs)
			for _, e := range errs {
				fmt.Printf("SHAPE FAIL  %v\n", e)
			}
		} else {
			fmt.Printf("shape OK: the paper's qualitative claims hold for %s\n", name)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, res); err != nil {
				cliutil.Runtime("siot-bench", fmt.Errorf("csv: %w", err))
			}
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Printf("%d shape check(s) failed\n", failed)
		os.Exit(cliutil.ExitRuntime)
	}
}

// writeCSV writes the experiment's table (and series, if any) under dir.
func writeCSV(dir, name string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, name+"_table.csv"))
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := res.Table().WriteCSV(tf); err != nil {
		return err
	}
	if c, ok := res.(experiments.Charter); ok {
		for i, chart := range c.Charts() {
			sf, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s_series%d.csv", name, i)))
			if err != nil {
				return err
			}
			if err := report.SeriesCSV(sf, chart.Series...); err != nil {
				sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
