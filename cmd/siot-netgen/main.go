// Command siot-netgen generates the synthetic social networks used by the
// simulations and prints their connectivity characteristics side by side
// with the paper's Table 1, or characterizes a real SNAP edge list.
//
// Usage:
//
//	siot-netgen [-seed N] [-net facebook|gplus|twitter|all] [-edges FILE]
//	siot-netgen -model all
//
// With -edges, the file is loaded as a whitespace-separated edge list and
// characterized instead of generating a synthetic network. With -model, the
// named registered trust model's descriptor (combine rule, gating, training
// kind) is printed instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"siot/internal/cliutil"
	"siot/internal/core"
	"siot/internal/socialgen"
)

func main() {
	seed := flag.Uint64("seed", 1, "generation seed")
	netName := flag.String("net", "all", "network profile: facebook, gplus, twitter, or all")
	edgeFile := flag.String("edges", "", "characterize a SNAP edge-list file instead of generating")
	modelName := flag.String("model", "", "print a registered trust model's descriptor instead of generating; 'all' lists every model")
	flag.Parse()

	if *modelName != "" {
		names := []string{*modelName}
		if *modelName == "all" {
			names = core.ModelNames()
		}
		for _, n := range names {
			m, err := core.ParseModel(n)
			if err != nil {
				cliutil.Usage("siot-netgen", err)
			}
			spec := m.Spec()
			kind := "closed-form"
			if _, ok := m.(core.EpochTrainable); ok {
				kind = "epoch-trained"
			}
			fmt.Printf("%-18s combine=%-8s omega-gated=%-5v per-characteristic=%-5v %s\n",
				m.Name(), spec.Combine, spec.OmegaGated, spec.PerCharacteristic, kind)
		}
		return
	}

	if *edgeFile != "" {
		if err := characterizeFile(*edgeFile, *seed); err != nil {
			cliutil.Runtime("siot-netgen", err)
		}
		return
	}

	var profiles []socialgen.Profile
	if *netName == "all" {
		profiles = socialgen.Profiles()
	} else {
		p, err := socialgen.ProfileByName(*netName)
		if err != nil {
			cliutil.Usage("siot-netgen", err)
		}
		profiles = []socialgen.Profile{p}
	}

	fmt.Printf("%-22s", "Metric")
	for _, p := range profiles {
		fmt.Printf(" %12s %12s", p.Name, "(paper)")
	}
	fmt.Println()

	stats := make([]socialgen.Stats, len(profiles))
	for i, p := range profiles {
		net := socialgen.Generate(p, *seed)
		stats[i] = socialgen.ComputeStats(net.Graph, *seed)
	}
	rows := []struct {
		name string
		got  func(socialgen.Stats) string
	}{
		{"Number of Nodes", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Nodes) }},
		{"Number of Edges", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Edges) }},
		{"Average Degree", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgDegree) }},
		{"Diameter", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Diameter) }},
		{"Average Path Length", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgPathLength) }},
		{"Avg Clustering Coeff", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgClustering) }},
		{"Modularity", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.Modularity) }},
		{"Number of Communities", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Communities) }},
	}
	paperRows := []func(socialgen.Stats) string{
		func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Nodes) },
		func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Edges) },
		func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgDegree) },
		func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Diameter) },
		func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgPathLength) },
		func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgClustering) },
		func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.Modularity) },
		func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Communities) },
	}
	for ri, row := range rows {
		fmt.Printf("%-22s", row.name)
		for i, p := range profiles {
			fmt.Printf(" %12s %12s", row.got(stats[i]), paperRows[ri](p.Paper))
		}
		fmt.Println()
	}

	// Extended analytics (not in the paper's Table 1, useful for
	// characterizing loaded datasets).
	fmt.Println()
	fmt.Printf("%-22s", "Density")
	for _, p := range profiles {
		net := socialgen.Generate(p, *seed)
		fmt.Printf(" %12.3f %12s", net.Graph.Density(), "")
	}
	fmt.Println()
	fmt.Printf("%-22s", "Degree Assortativity")
	for _, p := range profiles {
		net := socialgen.Generate(p, *seed)
		fmt.Printf(" %12.3f %12s", net.Graph.DegreeAssortativity(), "")
	}
	fmt.Println()
	fmt.Printf("%-22s", "Degeneracy (max core)")
	for _, p := range profiles {
		net := socialgen.Generate(p, *seed)
		fmt.Printf(" %12d %12s", net.Graph.Degeneracy(), "")
	}
	fmt.Println()
	fmt.Printf("%-22s", "Triangles")
	for _, p := range profiles {
		net := socialgen.Generate(p, *seed)
		fmt.Printf(" %12d %12s", net.Graph.TriangleCount(), "")
	}
	fmt.Println()
}

func characterizeFile(path string, seed uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := socialgen.LoadEdgeList(f)
	if err != nil {
		return err
	}
	s := socialgen.ComputeStats(g, seed)
	fmt.Printf("Nodes %d  Edges %d  AvgDegree %.2f  Diameter %d  APL %.2f  Clustering %.2f  Modularity %.2f  Communities %d\n",
		s.Nodes, s.Edges, s.AvgDegree, s.Diameter, s.AvgPathLength, s.AvgClustering, s.Modularity, s.Communities)
	return nil
}
