// Command siot-sim runs ad-hoc social-IoT trust simulations from flags: it
// generates one of the evaluation networks, assigns roles, and plays
// delegation rounds under a selectable combination of model features
// (mutuality threshold, trust-transfer policy, delegation strategy),
// printing the resulting rates.
//
// Usage:
//
//	siot-sim -net facebook -rounds 40 -theta 0.3
//	siot-sim -net twitter -mode transitivity -policy aggressive -chars 5
//	siot-sim -net twitter -mode transitivity -model hellinger-mf
//	siot-sim -experiment model-matrix -model feature-weighted
//	siot-sim -net gplus -mode netprofit -iters 1000 -strategy netprofit
//	siot-sim -rounds 100 -attack onoff -attackers 25
//	siot-sim -experiment attack-collusion -attack badmouth -collude
//
// All modes run on the parallel simulation engine; -parallel sets the
// worker-pool width (0 = GOMAXPROCS) and never changes the printed rates.
//
// -experiment runs a registered table/figure experiment end to end and
// prints its summary table and ASCII charts; the -attack, -attackers, and
// -collude knobs then override the attack-* experiments' adversary model.
// In the default mutuality mode the same knobs inject the attack directly
// into the ad-hoc delegation rounds.
package main

import (
	"flag"
	"fmt"
	"os"

	"siot/internal/adversary"
	"siot/internal/cliutil"
	"siot/internal/core"
	"siot/internal/experiments"
	"siot/internal/rng"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
	"siot/internal/task"
)

func main() {
	var (
		netName    = flag.String("net", "facebook", "network profile: facebook, gplus, twitter")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		mode       = flag.String("mode", "mutuality", "simulation mode: mutuality, transitivity, netprofit")
		experiment = flag.String("experiment", "", "run a registered experiment instead of a mode (see -list)")
		list       = flag.Bool("list", false, "list registered experiments and attack models, then exit")
		rounds     = flag.Int("rounds", 40, "mutuality: delegation rounds")
		theta      = flag.Float64("theta", 0.3, "mutuality: reverse-evaluation threshold")
		policy     = flag.String("policy", "aggressive", "transitivity: traditional, conservative, aggressive")
		modelName  = flag.String("model", "", "transitivity: registered trust model (supersedes -policy; see -list)")
		chars      = flag.Int("chars", 5, "transitivity: number of characteristics in the network")
		iters      = flag.Int("iters", 1000, "netprofit: iterations")
		strategy   = flag.String("strategy", "netprofit", "netprofit: successrate or netprofit")
		parallel   = flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS, 1 = serial); outputs are identical at any width")
		attack     = flag.String("attack", "", "adversary model: badmouth, ballot, selfpromo, onoff, whitewash (empty = none)")
		attackers  = flag.Int("attackers", 0, "attack ring size (trustees turned attackers)")
		collude    = flag.Bool("collude", false, "coordinate the attackers as a collusion ring")
	)
	flag.Parse()

	for _, err := range []error{
		cliutil.ValidateParallel(*parallel),
		cliutil.ValidatePositive("-rounds", *rounds),
		cliutil.ValidatePositive("-chars", *chars),
		cliutil.ValidatePositive("-iters", *iters),
		cliutil.ValidateAttackFlags(*attack, *attackers, *collude, *experiment),
	} {
		if err != nil {
			cliutil.Usage("siot-sim", err)
		}
	}

	if *list {
		fmt.Println("experiments:", experiments.Names())
		fmt.Println("attack models:", adversary.Names())
		fmt.Println("trust models:", core.ModelNames())
		return
	}

	if *experiment != "" {
		res, err := experiments.RunOpts(*experiment, experiments.Options{
			Seed: *seed, Parallelism: *parallel,
			Attack: *attack, Attackers: *attackers, Collude: *collude,
			Model: *modelName,
		})
		if err != nil {
			cliutil.Usage("siot-sim", err)
		}
		if err := res.Table().Render(os.Stdout); err != nil {
			cliutil.Runtime("siot-sim", err)
		}
		if c, ok := res.(experiments.Charter); ok {
			for _, chart := range c.Charts() {
				fmt.Println()
				if err := chart.Render(os.Stdout); err != nil {
					cliutil.Runtime("siot-sim", err)
				}
			}
		}
		for _, e := range res.ShapeCheck() {
			fmt.Fprintln(os.Stderr, "shape check:", e)
		}
		return
	}

	model, err := adversary.Parse(*attack)
	if err != nil {
		cliutil.Usage("siot-sim", err)
	}
	if *collude && model != nil {
		model = adversary.Collusion{Of: model}
	}
	atkCfg := sim.AttackConfig{Model: model, Attackers: *attackers}
	if model != nil && *attackers == 0 {
		atkCfg.Attackers = 25 // a meaningful default ring for ad-hoc runs
	}

	profile, err := socialgen.ProfileByName(*netName)
	if err != nil {
		cliutil.Usage("siot-sim", err)
	}
	net := socialgen.Generate(profile, *seed)
	fmt.Printf("network %s: %d nodes, %d edges\n", profile.Name, net.Graph.NumNodes(), net.Graph.NumEdges())

	switch *mode {
	case "mutuality":
		cfg := sim.DefaultPopulationConfig(*seed)
		cfg.Theta = *theta
		cfg.Parallelism = *parallel
		cfg.Attack = atkCfg
		p := sim.NewPopulation(net, cfg)
		eng := sim.NewEngine(p, "cli-mutuality")
		tk := task.Uniform(1, task.CharCompute)
		var c sim.MutualityCounters
		for i := 0; i < *rounds; i++ {
			eng.MutualityRound(i, tk, &c)
		}
		fmt.Printf("rounds=%d theta=%.2f\n", *rounds, *theta)
		fmt.Printf("success rate     %.3f\n", c.SuccessRate())
		fmt.Printf("unavailable rate %.3f\n", c.UnavailableRate())
		fmt.Printf("abuse rate       %.3f\n", c.AbuseRate())
		if p.AttackEnabled() {
			fmt.Printf("attack=%s attackers=%d\n", atkCfg.Model.Name(), len(p.Attackers))
			fmt.Printf("attacker delegation share %.3f\n",
				float64(c.AttackerDelegations)/float64(max(1, c.Requests-c.Unavailable)))
			honest, atk := eng.PerceivedTrust(*rounds-1, tk)
			fmt.Printf("trust gap (honest − attacker) %.3f\n", honest-atk)
		}

	case "transitivity":
		// -model picks any registered trust model; -policy remains the
		// legacy spelling for the three paper policies (whose adapters are
		// bit-identical to the policy path).
		var mdl core.TrustModel
		if *modelName != "" {
			mdl, err = core.ParseModel(*modelName)
		} else {
			var pol core.Policy
			pol, err = core.ParsePolicy(*policy)
			if err == nil {
				mdl = pol.Model()
			}
		}
		if err != nil {
			cliutil.Usage("siot-sim", err)
		}
		cfg := sim.DefaultPopulationConfig(*seed)
		cfg.Parallelism = *parallel
		p := sim.NewPopulation(net, cfg)
		r := rng.New(*seed, "cli-transitivity")
		setup := sim.DefaultTransitivitySetup(*chars, r)
		sim.SeedExperience(p, setup, *seed)
		st := sim.NewEngine(p, "cli-transitivity").TransitivityRunModel(setup, mdl, *seed)
		fmt.Printf("model=%s chars=%d\n", mdl.Name(), *chars)
		fmt.Printf("success rate       %.3f\n", st.SuccessRate())
		fmt.Printf("unavailable rate   %.3f\n", st.UnavailableRate())
		fmt.Printf("potential trustees %.2f\n", st.AvgPotentialTrustees())
		inq := make([]float64, len(st.InquiredPerTrustor))
		for i, v := range st.InquiredPerTrustor {
			inq[i] = float64(v)
		}
		fmt.Printf("inquired nodes     mean %.1f, p90 %.0f\n", stats.Mean(inq), stats.Quantile(inq, 0.9))

	case "netprofit":
		var strat sim.Strategy
		switch *strategy {
		case "successrate":
			strat = sim.StrategySuccessRate
		case "netprofit":
			strat = sim.StrategyNetProfit
		default:
			cliutil.Usage("siot-sim", fmt.Errorf("unknown strategy %q", *strategy))
		}
		cfg := sim.DefaultPopulationConfig(*seed)
		cfg.Parallelism = *parallel
		p := sim.NewPopulation(net, cfg)
		series := sim.NewEngine(p, "cli-netprofit").NetProfitRun(*iters, strat, *seed)
		fmt.Printf("strategy=%s iters=%d\n", strat, *iters)
		fmt.Printf("initial profit (first 10%%)  %.3f\n", stats.Mean(series[:len(series)/10+1]))
		fmt.Printf("converged profit (last 33%%) %.3f\n", stats.Mean(series[len(series)*2/3:]))

	default:
		cliutil.Usage("siot-sim", fmt.Errorf("unknown mode %q", *mode))
	}
}
