// Command siot-sim runs ad-hoc social-IoT trust simulations from flags: it
// generates one of the evaluation networks, assigns roles, and plays
// delegation rounds under a selectable combination of model features
// (mutuality threshold, trust-transfer policy, delegation strategy),
// printing the resulting rates.
//
// Usage:
//
//	siot-sim -net facebook -rounds 40 -theta 0.3
//	siot-sim -net twitter -mode transitivity -policy aggressive -chars 5
//	siot-sim -net gplus -mode netprofit -iters 1000 -strategy netprofit
//
// All modes run on the parallel simulation engine; -parallel sets the
// worker-pool width (0 = GOMAXPROCS) and never changes the printed rates.
package main

import (
	"flag"
	"fmt"
	"os"

	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
	"siot/internal/task"
)

func main() {
	var (
		netName  = flag.String("net", "facebook", "network profile: facebook, gplus, twitter")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		mode     = flag.String("mode", "mutuality", "simulation mode: mutuality, transitivity, netprofit")
		rounds   = flag.Int("rounds", 40, "mutuality: delegation rounds")
		theta    = flag.Float64("theta", 0.3, "mutuality: reverse-evaluation threshold")
		policy   = flag.String("policy", "aggressive", "transitivity: traditional, conservative, aggressive")
		chars    = flag.Int("chars", 5, "transitivity: number of characteristics in the network")
		iters    = flag.Int("iters", 1000, "netprofit: iterations")
		strategy = flag.String("strategy", "netprofit", "netprofit: successrate or netprofit")
		parallel = flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS, 1 = serial); outputs are identical at any width")
	)
	flag.Parse()

	profile, err := socialgen.ProfileByName(*netName)
	if err != nil {
		fail(err)
	}
	net := socialgen.Generate(profile, *seed)
	fmt.Printf("network %s: %d nodes, %d edges\n", profile.Name, net.Graph.NumNodes(), net.Graph.NumEdges())

	switch *mode {
	case "mutuality":
		cfg := sim.DefaultPopulationConfig(*seed)
		cfg.Theta = *theta
		cfg.Parallelism = *parallel
		p := sim.NewPopulation(net, cfg)
		eng := sim.NewEngine(p, "cli-mutuality")
		tk := task.Uniform(1, task.CharCompute)
		var c sim.MutualityCounters
		for i := 0; i < *rounds; i++ {
			eng.MutualityRound(i, tk, &c)
		}
		fmt.Printf("rounds=%d theta=%.2f\n", *rounds, *theta)
		fmt.Printf("success rate     %.3f\n", c.SuccessRate())
		fmt.Printf("unavailable rate %.3f\n", c.UnavailableRate())
		fmt.Printf("abuse rate       %.3f\n", c.AbuseRate())

	case "transitivity":
		pol, err := parsePolicy(*policy)
		if err != nil {
			fail(err)
		}
		cfg := sim.DefaultPopulationConfig(*seed)
		cfg.Parallelism = *parallel
		p := sim.NewPopulation(net, cfg)
		r := rng.New(*seed, "cli-transitivity")
		setup := sim.DefaultTransitivitySetup(*chars, r)
		sim.SeedExperience(p, setup, r)
		st := sim.NewEngine(p, "cli-transitivity").TransitivityRun(setup, pol, *seed)
		fmt.Printf("policy=%s chars=%d\n", pol, *chars)
		fmt.Printf("success rate       %.3f\n", st.SuccessRate())
		fmt.Printf("unavailable rate   %.3f\n", st.UnavailableRate())
		fmt.Printf("potential trustees %.2f\n", st.AvgPotentialTrustees())
		inq := make([]float64, len(st.InquiredPerTrustor))
		for i, v := range st.InquiredPerTrustor {
			inq[i] = float64(v)
		}
		fmt.Printf("inquired nodes     mean %.1f, p90 %.0f\n", stats.Mean(inq), stats.Quantile(inq, 0.9))

	case "netprofit":
		var strat sim.Strategy
		switch *strategy {
		case "successrate":
			strat = sim.StrategySuccessRate
		case "netprofit":
			strat = sim.StrategyNetProfit
		default:
			fail(fmt.Errorf("unknown strategy %q", *strategy))
		}
		cfg := sim.DefaultPopulationConfig(*seed)
		cfg.Parallelism = *parallel
		p := sim.NewPopulation(net, cfg)
		series := sim.NewEngine(p, "cli-netprofit").NetProfitRun(*iters, strat, *seed)
		fmt.Printf("strategy=%s iters=%d\n", strat, *iters)
		fmt.Printf("initial profit (first 10%%)  %.3f\n", stats.Mean(series[:len(series)/10+1]))
		fmt.Printf("converged profit (last 33%%) %.3f\n", stats.Mean(series[len(series)*2/3:]))

	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func parsePolicy(s string) (core.Policy, error) {
	switch s {
	case "traditional":
		return core.PolicyTraditional, nil
	case "conservative":
		return core.PolicyConservative, nil
	case "aggressive":
		return core.PolicyAggressive, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "siot-sim:", err)
	os.Exit(1)
}
