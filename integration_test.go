package siot_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"siot"
	"siot/internal/experiments"
	"siot/internal/report"
	"siot/internal/rng"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// Integration tests: cross-module pipelines a downstream user would run.

// TestIntegrationEdgeListToExperiment feeds a loaded edge list (the path
// real SNAP data would take) through population building, experience
// seeding, and a transitivity run.
func TestIntegrationEdgeListToExperiment(t *testing.T) {
	// Build a synthetic "dataset file" from a generated graph, round-trip
	// it through the SNAP loader, and verify the loaded graph behaves.
	src := socialgen.Generate(socialgen.Twitter(), 9)
	var buf bytes.Buffer
	for _, e := range src.Graph.EdgeList() {
		fmt.Fprintf(&buf, "%d %d\n", e[0], e[1])
	}
	g, err := socialgen.LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != src.Graph.NumNodes() || g.NumEdges() != src.Graph.NumEdges() {
		t.Fatalf("loader dropped data: %d/%d vs %d/%d",
			g.NumNodes(), g.NumEdges(), src.Graph.NumNodes(), src.Graph.NumEdges())
	}

	// Wrap the loaded graph as a network and run a full transitivity round.
	net := &socialgen.Network{Graph: g, Profile: socialgen.Profile{Name: "loaded"}}
	p := sim.NewPopulation(net, sim.DefaultPopulationConfig(9))
	r := rng.New(9, "integration")
	setup := sim.DefaultTransitivitySetup(5, r)
	sim.SeedExperience(p, setup, 9)
	st := sim.TransitivityRun(p, setup, siot.PolicyAggressive, 9)
	if st.Requests == 0 {
		t.Fatal("no requests over the loaded graph")
	}
	if st.SuccessRate() < 0.2 {
		t.Fatalf("implausible success rate %v on a healthy graph", st.SuccessRate())
	}
}

// TestIntegrationChartsRender renders every charting experiment's curves to
// make sure the full result → chart path holds together.
func TestIntegrationChartsRender(t *testing.T) {
	cfg := experiments.DefaultFig15Config(2)
	cfg.Runs = 10
	res := experiments.RunFig15(cfg)
	charts := res.Charts()
	if len(charts) == 0 {
		t.Fatal("fig15 offers no charts")
	}
	var b strings.Builder
	for _, c := range charts {
		c := c
		if err := c.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	out := b.String()
	if !strings.Contains(out, "proposed method") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

// TestIntegrationCSVExport exercises the CSV path the bench CLI uses.
func TestIntegrationCSVExport(t *testing.T) {
	dir := t.TempDir()
	res := experiments.RunTable1(3)
	f, err := os.Create(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Table().WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Average Degree") {
		t.Fatalf("csv content wrong:\n%s", data)
	}
	// Series CSV for a charting experiment.
	f15 := experiments.DefaultFig15Config(3)
	f15.Runs = 5
	charts := experiments.RunFig15(f15).Charts()
	var sb strings.Builder
	if err := report.SeriesCSV(&sb, charts[0].Series...); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "series,x,y\n") {
		t.Fatal("series csv header missing")
	}
}

// TestIntegrationStorePersistenceAcrossSimulation snapshots mid-simulation
// trust state, restores it, and verifies the restored population continues
// to make the same decisions.
func TestIntegrationStorePersistenceAcrossSimulation(t *testing.T) {
	net := socialgen.Generate(socialgen.Twitter(), 4)
	p := sim.NewPopulation(net, sim.DefaultPopulationConfig(4))
	tk := task.Uniform(1, task.CharCompute)
	var c sim.MutualityCounters
	for round := 0; round < 10; round++ {
		sim.MutualityRound(p, round, tk, &c)
	}
	// Snapshot the first trustor's store and restore it.
	x := p.Trustors[0]
	var buf bytes.Buffer
	if err := p.Agent(x).Store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := siot.LoadStore(&buf, p.Agent(x).Store.Config())
	if err != nil {
		t.Fatal(err)
	}
	// The restored store ranks trustees identically.
	for _, y := range p.TrusteeNeighbors(x) {
		origTW, origOK := p.Agent(x).Store.BestTW(y, tk)
		gotTW, gotOK := restored.BestTW(y, tk)
		if origOK != gotOK || (origOK && origTW != gotTW) {
			t.Fatalf("restored store ranks trustee %d differently: %v/%v vs %v/%v",
				y, gotTW, gotOK, origTW, origOK)
		}
	}
}

// TestIntegrationRegistryTablesRender makes sure every registered
// experiment result can render its table (running only the cheap ones at
// full scale; the expensive ones at a reduced scale are covered in the
// experiments package).
func TestIntegrationRegistryTablesRender(t *testing.T) {
	for _, name := range []string{"table1", "fig15", "ablation-eq7", "ablation-cannikin"} {
		res, err := siot.RunExperiment(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.Table().Render(&b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Len() == 0 {
			t.Fatalf("%s rendered empty table", name)
		}
	}
}
