module siot

go 1.24
