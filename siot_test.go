package siot_test

import (
	"strings"
	"testing"

	"siot"
)

// The facade tests exercise the public API end to end, the way a downstream
// user would.

func TestFacadeQuickstartFlow(t *testing.T) {
	store := siot.NewStore(1, siot.DefaultUpdateConfig())
	tk := siot.UniformTask(1, siot.CharGPS, siot.CharImage)
	store.Observe(2, tk, siot.Outcome{Success: true, Gain: 0.9, Cost: 0.1}, siot.PerfectEnv())
	tw, ok := store.BestTW(2, tk)
	if !ok {
		t.Fatal("no trustworthiness after observation")
	}
	if tw <= 0 || tw > 1 {
		t.Fatalf("tw = %v", tw)
	}
}

func TestFacadeInference(t *testing.T) {
	store := siot.NewStore(1, siot.DefaultUpdateConfig())
	gps := siot.UniformTask(1, siot.CharGPS)
	img := siot.UniformTask(2, siot.CharImage)
	for i := 0; i < 30; i++ {
		store.Observe(7, gps, siot.Outcome{Success: true, Gain: 0.9, Cost: 0.1}, siot.PerfectEnv())
		store.Observe(7, img, siot.Outcome{Success: true, Gain: 0.9, Cost: 0.1}, siot.PerfectEnv())
	}
	traffic := siot.UniformTask(3, siot.CharGPS, siot.CharImage)
	tw, ok := store.InferTW(7, traffic)
	if !ok || tw < 0.5 {
		t.Fatalf("inference failed: %v %v", tw, ok)
	}
}

func TestFacadeCombinators(t *testing.T) {
	if siot.CombinePair(1, 0.7) != 0.7 {
		t.Fatal("CombinePair identity broken")
	}
	if siot.ProductSerial(0.5, 0.5) != 0.25 {
		t.Fatal("ProductSerial broken")
	}
	if got := siot.CombineSerial(0.9, 0.9); got <= 0.8 {
		t.Fatalf("CombineSerial = %v", got)
	}
	if _, ok := siot.TransitSameType(0.9, 0.9, 0.7, 0.7); !ok {
		t.Fatal("TransitSameType blocked a valid transition")
	}
}

func TestFacadeNetworkGeneration(t *testing.T) {
	net := siot.GenerateNetwork(siot.TwitterProfile(), 1)
	if net.Graph.NumNodes() != 244 || net.Graph.NumEdges() != 2478 {
		t.Fatalf("network size %d/%d", net.Graph.NumNodes(), net.Graph.NumEdges())
	}
	st := siot.ComputeNetworkStats(net.Graph, 1)
	if st.AvgDegree < 15 || st.AvgDegree > 25 {
		t.Fatalf("avg degree %v", st.AvgDegree)
	}
	if len(siot.NetworkProfiles()) != 3 {
		t.Fatal("profile count wrong")
	}
}

func TestFacadeLoadEdgeList(t *testing.T) {
	g, err := siot.LoadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("load: %v %v", g, err)
	}
}

func TestFacadePopulation(t *testing.T) {
	net := siot.GenerateNetwork(siot.TwitterProfile(), 2)
	p := siot.NewPopulation(net, siot.DefaultPopulationConfig(2))
	if len(p.Trustors) == 0 || len(p.Trustees) == 0 {
		t.Fatal("roles not assigned")
	}
}

func TestFacadeTestbed(t *testing.T) {
	tb := siot.BuildTestbed(siot.DefaultTestbedConfig(3))
	if len(tb.Trustors) != 10 {
		t.Fatalf("trustors = %d", len(tb.Trustors))
	}
}

func TestFacadeSelection(t *testing.T) {
	cands := []siot.Candidate{{ID: 1, TW: 0.9}, {ID: 2, TW: 0.5}}
	got, ok := siot.SelectMutual(cands, nil)
	if !ok || got.ID != 1 {
		t.Fatalf("selected %v", got)
	}
	self := siot.Expectation{S: 0.5, G: 0.5, D: 0.5, C: 0.1}
	strong := siot.ExpCandidate{ID: 9, Exp: siot.Expectation{S: 0.95, G: 0.95, D: 0.05, C: 0.05}}
	dec, delegated := siot.DecideWithSelf(self, 0, []siot.ExpCandidate{strong})
	if !delegated || dec.ID != 9 {
		t.Fatal("decision broken")
	}
	if siot.ShouldDelegate(self, self) {
		t.Fatal("equal-profit delegation accepted")
	}
	if _, ok := siot.BestBySuccessRate(nil); ok {
		t.Fatal("empty candidates selected")
	}
}

func TestFacadeEnvironment(t *testing.T) {
	if siot.CombineEnv(1, 0.4, 0.9) != 0.4 {
		t.Fatal("CombineEnv broken")
	}
	if got := siot.RemoveEnv(0.32, 1, 1, 0.4); got < 0.8-1e-9 || got > 0.8+1e-9 {
		t.Fatalf("RemoveEnv = %v", got)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	names := siot.ExperimentNames()
	if len(names) != 18 {
		t.Fatalf("experiments = %v", names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"attack-badmouth", "attack-onoff", "attack-whitewash", "attack-collusion", "model-matrix"} {
		if !have[want] {
			t.Fatalf("facade registry missing %q: %v", want, names)
		}
	}
	if _, err := siot.RunExperiment("not-an-experiment", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	res, err := siot.RunExperiment("table1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.ShapeCheck(); len(errs) != 0 {
		t.Fatalf("table1 shape errors: %v", errs)
	}
	var b strings.Builder
	if err := res.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table 1") {
		t.Fatal("table render missing title")
	}
}

func TestFacadeTaskConstruction(t *testing.T) {
	if _, err := siot.NewTask(1, nil); err == nil {
		t.Fatal("empty task accepted")
	}
	tk, err := siot.NewTask(1, map[siot.Characteristic]float64{siot.CharGPS: 1})
	if err != nil || !tk.Has(siot.CharGPS) {
		t.Fatal("task construction broken")
	}
	if siot.CharName(siot.CharGPS) != "gps" {
		t.Fatal("char name broken")
	}
}

func TestFacadeUpdate(t *testing.T) {
	cfg := siot.DefaultUpdateConfig()
	cfg.Betas = siot.UniformBetas(0)
	e := siot.Update(siot.Expectation{}, siot.Outcome{Success: true, Gain: 1}, siot.PerfectEnv(), cfg)
	if e.S != 1 || e.G != 1 {
		t.Fatalf("update = %+v", e)
	}
	if e.NetProfit() != 1 {
		t.Fatalf("profit = %v", e.NetProfit())
	}
	if e.Trustworthiness(siot.UnitNormalizer()) != 1 {
		t.Fatal("trustworthiness wrong")
	}
}

func TestFacadeModelRegistry(t *testing.T) {
	names := siot.ModelNames()
	if len(names) < 5 {
		t.Fatalf("models = %v", names)
	}
	for _, want := range []string{"traditional", "conservative", "aggressive", "hellinger-mf", "feature-weighted"} {
		m, err := siot.ParseModel(want)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", want, err)
		}
		if m.Name() != want {
			t.Fatalf("ParseModel(%q).Name() = %q", want, m.Name())
		}
	}
	if _, err := siot.ParseModel("not-a-model"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if m, err := siot.ParseModel(siot.PolicyAggressive.String()); err != nil || m.Name() != "aggressive" {
		t.Fatal("policy adapter not registered under its policy name")
	}
}
