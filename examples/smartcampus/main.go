// Smart campus: characteristic-based trust inference and transitivity at
// network scale.
//
// A campus deploys a social IoT over the (generated) Facebook-like social
// graph. Devices have experience with single-capability tasks (GPS
// sampling, image capture); a new composite task — real-time traffic
// monitoring, needing both — arrives. The example compares how many
// suitable trustees a requester can discover under the traditional,
// conservative, and aggressive trust-transfer methods, reproducing the
// paper's motivating scenario (§4.2, §4.3).
//
// Run with:
//
//	go run ./examples/smartcampus
package main

import (
	"fmt"

	"siot"
	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/sim"
	"siot/internal/task"
)

func main() {
	const seed = 11
	net := siot.GenerateNetwork(siot.FacebookProfile(), seed)
	fmt.Printf("campus network: %d devices, %d social links\n",
		net.Graph.NumNodes(), net.Graph.NumEdges())

	p := sim.NewPopulation(net, sim.DefaultPopulationConfig(seed))
	r := rng.New(seed, "smartcampus")

	// Seed single-capability experience across the network: every node has
	// accomplished two tasks drawn from a universe over {gps, image,
	// velocity, temperature} characteristics, and its neighbors remember.
	setup := sim.DefaultTransitivitySetup(4, r)
	sim.SeedExperience(p, setup, seed)

	// The composite request: traffic monitoring = GPS + image.
	traffic := task.Uniform(task.Type(len(setup.Universe.Tasks)), task.CharGPS, task.CharImage)

	requester := p.Trustors[0]
	searcher := p.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2)
	for _, policy := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		res := searcher.Find(requester, traffic, policy)
		fmt.Printf("\n%s transfer:\n", policy)
		fmt.Printf("  potential trustees found: %d (interrogated %d nodes)\n",
			len(res.Candidates), res.Inquired)
		if best, ok := res.Best(); ok {
			cap := p.Agent(best.ID).Behavior.TaskCompetence(traffic)
			fmt.Printf("  best candidate: device %d, transferred TW %.3f (true capability %.3f)\n",
				best.ID, best.TW, cap)
		} else {
			fmt.Println("  no candidate — the request would go unserved")
		}
	}

	fmt.Println("\nWhy: the traditional method only transfers trust for the exact")
	fmt.Println("task type, and 'traffic monitoring' is new to everyone. The")
	fmt.Println("characteristic-based methods reuse GPS and image experience; the")
	fmt.Println("aggressive method even assembles the two capabilities over")
	fmt.Println("different recommendation paths (Fig. 5b of the paper).")
}
