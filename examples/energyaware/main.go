// Energy-aware delegation: why trustworthiness must include cost and
// damage, not just the success rate.
//
// Battery-powered sensor nodes serve data requests on the simulated ZigBee
// testbed. One "greedy bait" node delivers excellent results but pads every
// response with fragment packets, draining the requester's radio. A
// success-rate-only trustor keeps choosing it; a net-profit trustor
// (eq. 23) notices the ballooning cost — measured as real radio-active
// time — and routes around it. This is the paper's Fig. 14 scenario as an
// application.
//
// Run with:
//
//	go run ./examples/energyaware
package main

import (
	"fmt"

	"siot"
	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/task"
	"siot/internal/zigbee"
)

func main() {
	cfg := zigbee.DefaultTestbedConfig(21)
	cfg.Groups = 1
	cfg.TrustorsPerGroup = 1
	cfg.HonestPerGroup = 2
	cfg.DishonestPerGroup = 1
	cfg.Malice = agent.MaliceFragmentStall
	// Battery-powered deployment: radio time is precious, so the measured
	// active time weighs heavily in the cost factor Ĉ.
	radio := zigbee.DefaultConfig(cfg.Seed)
	radio.CostPerActiveMs = 1.0 / 220
	cfg.Radio = &radio
	tb := zigbee.BuildTestbed(cfg)
	// The staller baits with top-grade results.
	tb.Dishonest[0].Agent.Behavior.BaseCompetence = 0.97

	trustor := tb.Trustors[0]
	reading := task.Uniform(1, task.CharTemperature)
	fmt.Printf("testbed: %d devices; trustor %04x; staller %04x\n",
		len(tb.Net.Devices()), uint16(trustor.Addr), uint16(tb.Dishonest[0].Addr))

	run := func(name string, pick func([]core.ExpCandidate) (core.ExpCandidate, bool)) {
		// Fresh expectations per strategy.
		trustor.Agent.Store = core.NewStore(core.AgentID(trustor.Addr), core.DefaultUpdateConfig())
		start := trustor.ActiveMs
		startEnergy := trustor.EnergyMJ
		trustees := tb.GroupTrustees(0)
		for i := 0; i < 30; i++ {
			var trustee *zigbee.Device
			if i < len(trustees) {
				trustee = trustees[i] // try everyone once
			} else {
				var cands []core.ExpCandidate
				for _, d := range trustees {
					exp := trustor.Agent.Store.Config().Init
					if rec, ok := trustor.Agent.Store.Record(core.AgentID(d.Addr), reading.Type()); ok {
						exp = rec.Exp
					}
					cands = append(cands, core.ExpCandidate{ID: core.AgentID(d.Addr), Exp: exp})
				}
				best, _ := pick(cands)
				for _, d := range trustees {
					if core.AgentID(d.Addr) == best.ID {
						trustee = d
					}
				}
			}
			res := tb.Net.Delegate(trustor.Addr, trustee.Addr, reading, zigbee.ExchangeConfig{
				Light: 1, Act: agent.DefaultActConfig(),
			})
			trustor.Agent.Store.Observe(core.AgentID(trustee.Addr), reading, res.Outcome, siot.PerfectEnv())
		}
		fmt.Printf("%-22s radio-active %7.1f ms, energy %6.2f mJ over 30 requests\n",
			name+":", trustor.ActiveMs-start, trustor.EnergyMJ-startEnergy)
	}

	run("success-rate only", func(c []core.ExpCandidate) (core.ExpCandidate, bool) {
		// Blind to damage and cost: score by Ŝ·Ĝ.
		for i := range c {
			c[i].Exp.D = 0
			c[i].Exp.C = 0
		}
		return core.BestByNetProfit(c)
	})
	run("net profit (eq. 23)", core.BestByNetProfit)

	fmt.Println("\nThe cost-aware trustor spends a fraction of the radio energy: the")
	fmt.Println("measured active time enters Ĉ, so the fragment-stalling bait loses")
	fmt.Println("the argmax of eq. 23 despite its excellent success rate.")
}
