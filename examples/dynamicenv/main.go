// Dynamic environment: distinguishing honest nodes in hostile conditions
// from malicious nodes in good ones.
//
// A camera node's quality collapses at night. A naive trustor downgrades it
// and, when a fair-weather opportunist appears at dawn, prefers the
// newcomer. An environment-aware trustor divides observations by the
// ambient light level (eq. 29, Cannikin law), keeps the honest node's
// trustworthiness intact through the night, and re-selects it immediately —
// the paper's §4.5/Fig. 15–16 story as a single-pair walk-through.
//
// Run with:
//
//	go run ./examples/dynamicenv
package main

import (
	"fmt"

	"siot"
	"siot/internal/rng"
)

func main() {
	const (
		camera siot.AgentID = 2
		actual              = 0.85 // the camera's true competence
	)
	capture := siot.UniformTask(1, siot.CharImage)

	// Day (E=1) for 50 tasks, night (E=0.3) for 50, day again for 50.
	sched, err := siot.NewPhaseSchedule(
		siot.EnvPhase{Len: 50, Env: 1},
		siot.EnvPhase{Len: 50, Env: 0.3},
		siot.EnvPhase{Len: 50, Env: 1},
	)
	if err != nil {
		panic(err)
	}

	naiveCfg := siot.DefaultUpdateConfig()
	awareCfg := siot.DefaultUpdateConfig()
	awareCfg.EnvCorrection = true

	naive := siot.NewStore(1, naiveCfg)
	aware := siot.NewStore(1, awareCfg)
	r := rng.New(5, "dynamicenv")

	report := func(label string, i int) {
		n, _ := naive.Record(camera, capture.Type())
		a, _ := aware.Record(camera, capture.Type())
		fmt.Printf("%-28s E=%.1f   naive Ŝ=%.2f   env-aware Ŝ=%.2f\n",
			label, float64(sched.At(i)), n.Exp.S, a.Exp.S)
	}

	// Snapshot of both estimates at dawn (end of the night phase), when the
	// opportunistic newcomer shows up.
	var naiveAtDawn, awareAtDawn float64

	for i := 0; i < 150; i++ {
		e := sched.At(i)
		// The environment degrades the camera's success probability.
		success := r.Float64() < actual*float64(e)
		out := siot.Outcome{Success: success, Cost: 0.1}
		if success {
			out.Gain = 0.8
		} else {
			out.Damage = 0.4
		}
		ectx := siot.EnvContext{Trustor: 1, Trustee: e}
		naive.Observe(camera, capture, out, ectx)
		aware.Observe(camera, capture, out, ectx)
		switch i {
		case 49:
			report("end of day 1:", i)
		case 99:
			report("end of night:", i)
			n, _ := naive.Record(camera, capture.Type())
			a, _ := aware.Record(camera, capture.Type())
			naiveAtDawn, awareAtDawn = n.Exp.S, a.Exp.S
		case 149:
			report("end of day 2:", i)
		}
	}

	// At dawn an opportunist with a neutral reputation (Ŝ = 0.5) showed up.
	// The naive trustor, whose camera estimate was dragged down by the
	// night, defects; the env-aware trustor kept the estimate intact.
	fmt.Println()
	newcomer := 0.5
	fmt.Printf("dawn decision vs a newcomer at Ŝ=%.2f:\n", newcomer)
	fmt.Printf("  naive trustor:     camera Ŝ=%.2f → %s\n", naiveAtDawn, choice(naiveAtDawn, newcomer))
	fmt.Printf("  env-aware trustor: camera Ŝ=%.2f → %s\n", awareAtDawn, choice(awareAtDawn, newcomer))
}

func choice(camera, newcomer float64) string {
	if camera >= newcomer {
		return "keeps the proven camera"
	}
	return "defects to the unproven newcomer"
}
