// Quickstart: the trust process end to end on a tiny scenario.
//
// Alice (a social IoT agent) learns which of two camera nodes to trust for
// image capture by delegating, observing outcomes, and updating her
// expectations — then uses mutual evaluation so the chosen trustee can also
// refuse her if she were abusive.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"siot"
	"siot/internal/rng"
)

func main() {
	const (
		alice siot.AgentID = 1
		bob   siot.AgentID = 2 // reliable camera node
		carol siot.AgentID = 3 // flaky camera node
	)
	cfg := siot.DefaultUpdateConfig()
	store := siot.NewStore(alice, cfg)
	capture := siot.UniformTask(1, siot.CharImage)

	// Ground truth the trust model will discover.
	reliability := map[siot.AgentID]float64{bob: 0.9, carol: 0.35}
	r := rng.New(7, "quickstart")

	// Alice delegates image-capture tasks to both nodes for a while and
	// post-evaluates every outcome (eqs. 19–22).
	for i := 0; i < 40; i++ {
		for _, trustee := range []siot.AgentID{bob, carol} {
			success := r.Float64() < reliability[trustee]
			out := siot.Outcome{Success: success, Cost: 0.1}
			if success {
				out.Gain = 0.8
			} else {
				out.Damage = 0.5
			}
			store.Observe(trustee, capture, out, siot.PerfectEnv())
		}
	}

	// Pre-evaluation: rank the candidates by trustworthiness (eq. 18).
	norm := siot.UnitNormalizer()
	var cands []siot.Candidate
	for _, trustee := range []siot.AgentID{bob, carol} {
		rec, _ := store.Record(trustee, capture.Type())
		tw := rec.TW(norm)
		fmt.Printf("agent %d: expectation S=%.2f G=%.2f D=%.2f C=%.2f → trustworthiness %.3f\n",
			trustee, rec.Exp.S, rec.Exp.G, rec.Exp.D, rec.Exp.C, tw)
		cands = append(cands, siot.Candidate{ID: trustee, TW: tw})
	}

	// Mutual evaluation (eq. 1): the candidate reverse-evaluates Alice.
	// Bob's store would normally live on Bob's device; here we just show
	// the acceptance hook.
	bobStore := siot.NewStore(bob, cfg)
	for i := 0; i < 5; i++ {
		bobStore.ObserveUsage(alice, false) // Alice has been responsible
	}
	chosen, ok := siot.SelectMutual(cands, func(y siot.AgentID) bool {
		if y != bob {
			return true
		}
		return bobStore.ReverseTW(alice) >= 0.6
	})
	if !ok {
		fmt.Println("no trustee accepted the delegation")
		return
	}
	fmt.Printf("selected trustee: agent %d (TW %.3f)\n", chosen.ID, chosen.TW)

	// Inferential transfer (eqs. 2–4): trust learned on image capture
	// informs a new traffic-monitoring task that needs image + GPS — once
	// GPS experience exists too.
	gps := siot.UniformTask(2, siot.CharGPS)
	for i := 0; i < 20; i++ {
		store.Observe(bob, gps, siot.Outcome{Success: true, Gain: 0.7, Cost: 0.1}, siot.PerfectEnv())
	}
	traffic := siot.UniformTask(3, siot.CharGPS, siot.CharImage)
	if tw, ok := store.InferTW(bob, traffic); ok {
		fmt.Printf("inferred trustworthiness of agent %d on the new traffic task: %.3f\n", bob, tw)
	}
}
