// Resilience: trust attacks against the delegation rounds, end to end.
//
// A ring of whitewashing attackers sabotages every delegation it serves and
// periodically rejoins the network under a fresh identity to dodge the bad
// reputation it earned. The walkthrough shows the trust model detecting the
// ring (the honest-vs-attacker trust gap opening), the identity churn
// resetting that progress, and the resilience metrics that summarize the
// fight; it closes with a registered attack experiment run through the
// facade.
//
// Run with:
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"os"

	"siot"
)

func main() {
	const seed = 11

	// A population on the paper's Facebook sub-network, with 25 of the
	// trustees running the whitewashing attack: identities churn every 30
	// rounds.
	net := siot.GenerateNetwork(siot.FacebookProfile(), seed)
	cfg := siot.DefaultPopulationConfig(seed)
	cfg.Attack = siot.AttackConfig{
		Model:     siot.WhitewashingAttack{RejoinEvery: 30},
		Attackers: 25,
	}
	pop := siot.NewPopulation(net, cfg)
	eng := siot.NewEngine(pop, "resilience-example")
	tk := siot.UniformTask(1, siot.CharCompute)

	fmt.Printf("network %s: %d nodes, %d trustors, %d trustees (%d attacking)\n\n",
		net.Profile.Name, net.Graph.NumNodes(), len(pop.Trustors), len(pop.Trustees), len(pop.Attackers))

	// Play 90 delegation rounds and watch the trust gap: it opens as
	// trustors learn to distrust the saboteurs, then snaps back every time
	// the ring whitewashes itself.
	var c siot.MutualityCounters
	fmt.Println("round  success  gap(honest−attacker)")
	for round := 0; round < 90; round++ {
		eng.MutualityRound(round, tk, &c)
		if (round+1)%10 == 0 {
			honest, attacker := eng.PerceivedTrust(round, tk)
			fmt.Printf("%5d  %7.3f  %+.3f\n", round+1, c.SuccessRate(), honest-attacker)
		}
	}
	share := float64(c.AttackerDelegations) / float64(c.Requests-c.Unavailable)
	fmt.Printf("\nattackers ended up serving only %.1f%% of delegations — the model routes around them\n\n", 100*share)

	// The registered attack experiments package the same scenario with a
	// like-for-like honest baseline and the full resilience metrics.
	res, err := siot.RunExperimentOpts("attack-whitewash", siot.ExperimentOptions{Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
