package siot_test

import (
	"bytes"
	"fmt"

	"siot"
)

// The trust process in miniature: delegate, observe, post-evaluate, decide.
func Example() {
	store := siot.NewStore(1, siot.DefaultUpdateConfig())
	capture := siot.UniformTask(1, siot.CharImage)

	// 30 clean deliveries from trustee 2.
	for i := 0; i < 30; i++ {
		store.Observe(2, capture, siot.Outcome{Success: true, Gain: 0.9, Cost: 0.1}, siot.PerfectEnv())
	}
	rec, _ := store.Record(2, capture.Type())
	fmt.Printf("net profit %.2f, trustworthiness %.2f\n",
		rec.Exp.NetProfit(), rec.TW(siot.UnitNormalizer()))
	// Output:
	// net profit 0.76, trustworthiness 0.92
}

// Characteristic-based inference (eqs. 2–4): trust learned on GPS and image
// tasks transfers to a traffic-monitoring task that needs both.
func ExampleStore_InferTW() {
	store := siot.NewStore(1, siot.DefaultUpdateConfig())
	gps := siot.UniformTask(1, siot.CharGPS)
	img := siot.UniformTask(2, siot.CharImage)
	perfect := siot.Outcome{Success: true, Gain: 1}
	for i := 0; i < 100; i++ {
		store.Observe(7, gps, perfect, siot.PerfectEnv())
		store.Observe(7, img, perfect, siot.PerfectEnv())
	}
	traffic := siot.UniformTask(3, siot.CharGPS, siot.CharImage)
	tw, ok := store.InferTW(7, traffic)
	fmt.Printf("%.2f %v\n", tw, ok)

	// A task needing an uncovered characteristic cannot be inferred.
	audio := siot.UniformTask(4, siot.CharAudio)
	_, ok = store.InferTW(7, audio)
	fmt.Println(ok)
	// Output:
	// 1.00 true
	// false
}

// Mutual evaluation (eq. 1): the best candidate refuses, the second best
// accepts.
func ExampleSelectMutual() {
	cands := []siot.Candidate{
		{ID: 1, TW: 0.9},
		{ID: 2, TW: 0.8},
	}
	chosen, ok := siot.SelectMutual(cands, func(y siot.AgentID) bool {
		return y != 1 // trustee 1's reverse evaluation rejects this trustor
	})
	fmt.Println(chosen.ID, ok)
	// Output:
	// 2 true
}

// Eq. 7's transition includes the mistrust-product term the plain product
// neglects.
func ExampleCombinePair() {
	fmt.Printf("eq.7: %.2f  product: %.2f\n", siot.CombinePair(0.9, 0.8), 0.9*0.8)
	// Output:
	// eq.7: 0.74  product: 0.72
}

// Environment correction (eq. 29): a success rate observed in a hostile
// environment recovers the agent's true competence.
func ExampleRemoveEnv() {
	observed := 0.32 // measured in environment E = 0.4
	fmt.Printf("%.1f\n", siot.RemoveEnv(observed, 1, 1, 0.4))
	// Output:
	// 0.8
}

// Self-delegation (eq. 24): the trustor keeps the task when no candidate
// beats doing it itself.
func ExampleDecideWithSelf() {
	self := siot.Expectation{S: 0.9, G: 0.9, D: 0.1, C: 0.1}
	weak := siot.ExpCandidate{ID: 5, Exp: siot.Expectation{S: 0.4, G: 0.5, D: 0.6, C: 0.3}}
	decision, delegated := siot.DecideWithSelf(self, 1, []siot.ExpCandidate{weak})
	fmt.Println(decision.ID, delegated)
	// Output:
	// 1 false
}

// Trust state survives device reboots via Save/LoadStore.
func ExampleLoadStore() {
	store := siot.NewStore(1, siot.DefaultUpdateConfig())
	tk := siot.UniformTask(1, siot.CharGPS)
	for i := 0; i < 10; i++ {
		store.Observe(2, tk, siot.Outcome{Success: true, Gain: 0.8, Cost: 0.1}, siot.PerfectEnv())
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		panic(err)
	}
	restored, err := siot.LoadStore(&buf, siot.DefaultUpdateConfig())
	if err != nil {
		panic(err)
	}
	rec, _ := restored.Record(2, tk.Type())
	fmt.Println(rec.Count)
	// Output:
	// 10
}
