package cliutil

import "testing"

func TestValidateParallel(t *testing.T) {
	cases := []struct {
		parallel int
		wantErr  bool
	}{
		{-8, true},
		{-1, true},
		{0, false},
		{1, false},
		{64, false},
	}
	for _, tc := range cases {
		if err := ValidateParallel(tc.parallel); (err != nil) != tc.wantErr {
			t.Errorf("ValidateParallel(%d) = %v, want error %v", tc.parallel, err, tc.wantErr)
		}
	}
}

func TestValidatePositive(t *testing.T) {
	cases := []struct {
		v       int
		wantErr bool
	}{
		{-3, true},
		{0, true},
		{1, false},
		{1000, false},
	}
	for _, tc := range cases {
		if err := ValidatePositive("-rounds", tc.v); (err != nil) != tc.wantErr {
			t.Errorf("ValidatePositive(%d) = %v, want error %v", tc.v, err, tc.wantErr)
		}
	}
}

func TestValidateAttackFlags(t *testing.T) {
	cases := []struct {
		name       string
		attack     string
		attackers  int
		collude    bool
		experiment string
		wantErr    bool
	}{
		{"all defaults", "", 0, false, "", false},
		{"negative attackers", "badmouth", -1, false, "", true},
		{"negative attackers without model", "", -25, false, "", true},
		{"attackers without model", "", 25, false, "", true},
		{"collude without model", "", 0, true, "", true},
		{"collude with model", "badmouth", 0, true, "", false},
		{"attackers with model", "onoff", 25, false, "", false},
		{"attackers with experiment", "", 25, false, "attack-collusion", false},
		{"collude with experiment", "", 0, true, "attack-collusion", false},
		{"everything set", "ballot", 10, true, "attack-impact", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateAttackFlags(tc.attack, tc.attackers, tc.collude, tc.experiment)
			if (err != nil) != tc.wantErr {
				t.Errorf("ValidateAttackFlags(%q, %d, %v, %q) = %v, want error %v",
					tc.attack, tc.attackers, tc.collude, tc.experiment, err, tc.wantErr)
			}
		})
	}
}
