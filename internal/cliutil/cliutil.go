// Package cliutil unifies the command-line conventions of the siot cmds:
// one exit-code contract (2 for usage errors, 1 for runtime failures, as
// flag.Parse itself exits 2 on unknown flags) and shared validation of the
// flags every cmd accepts, so a bad -parallel or -attackers fails at parse
// time with a clear message instead of deep in the engine.
package cliutil

import (
	"fmt"
	"os"
)

// Exit codes. Usage errors — bad flag values, unknown names, conflicting
// flags — exit 2, matching what flag.Parse does for unknown flags; failures
// of otherwise well-formed invocations (I/O errors, failed checks) exit 1.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
)

// Usage prints "cmd: err" to stderr and exits with ExitUsage.
func Usage(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(ExitUsage)
}

// Runtime prints "cmd: err" to stderr and exits with ExitRuntime.
func Runtime(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(ExitRuntime)
}

// ValidateParallel rejects negative -parallel values (0 means GOMAXPROCS,
// 1 means serial).
func ValidateParallel(parallel int) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = GOMAXPROCS, 1 = serial), got %d", parallel)
	}
	return nil
}

// ValidatePositive rejects values below 1 for flags that size a loop or an
// alphabet (-rounds, -iters, -chars), which would otherwise panic or
// silently no-op deep in the engine.
func ValidatePositive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s must be >= 1, got %d", name, v)
	}
	return nil
}

// ValidateAttackFlags cross-checks the adversary knobs: -attackers must be
// non-negative, and -attackers/-collude without an -attack model (or an
// -experiment that supplies one) were previously accepted and silently
// ignored — now a usage error.
func ValidateAttackFlags(attack string, attackers int, collude bool, experiment string) error {
	if attackers < 0 {
		return fmt.Errorf("-attackers must be >= 0, got %d", attackers)
	}
	if attack == "" && experiment == "" {
		if collude {
			return fmt.Errorf("-collude requires an -attack model (or an attack -experiment)")
		}
		if attackers > 0 {
			return fmt.Errorf("-attackers requires an -attack model (or an attack -experiment)")
		}
	}
	return nil
}
