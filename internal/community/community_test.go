package community

import (
	"testing"
	"testing/quick"

	"siot/internal/graph"
	"siot/internal/rng"
)

// twoCliques returns two k-cliques joined by a single bridge edge.
func twoCliques(k int) *graph.Graph {
	g := graph.New(2 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			_ = g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			_ = g.AddEdge(graph.NodeID(k+i), graph.NodeID(k+j))
		}
	}
	_ = g.AddEdge(0, graph.NodeID(k))
	return g
}

func TestModularitySingleCommunity(t *testing.T) {
	g := twoCliques(5)
	p := Partition{Assign: make([]int, g.NumNodes()), NumCommunities: 1}
	if q := Modularity(g, p); q > 1e-12 || q < -1e-12 {
		t.Fatalf("single-community modularity = %v, want 0", q)
	}
}

func TestModularityPlantedSplit(t *testing.T) {
	g := twoCliques(6)
	assign := make([]int, g.NumNodes())
	for i := 6; i < 12; i++ {
		assign[i] = 1
	}
	p := Partition{Assign: assign, NumCommunities: 2}
	q := Modularity(g, p)
	if q < 0.4 {
		t.Fatalf("planted split modularity = %v, want > 0.4", q)
	}
	// A bad split (odd/even interleave) must be worse.
	bad := make([]int, g.NumNodes())
	for i := range bad {
		bad[i] = i % 2
	}
	if qb := Modularity(g, Partition{Assign: bad, NumCommunities: 2}); qb >= q {
		t.Fatalf("interleaved split %v not worse than planted %v", qb, q)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := graph.New(4)
	p := Partition{Assign: make([]int, 4), NumCommunities: 1}
	if q := Modularity(g, p); q != 0 {
		t.Fatalf("edgeless modularity = %v", q)
	}
}

func TestModularityMismatchedPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched partition size")
		}
	}()
	g := twoCliques(3)
	Modularity(g, Partition{Assign: []int{0, 1}, NumCommunities: 2})
}

func TestLouvainFindsCliques(t *testing.T) {
	g := twoCliques(8)
	p, q := Detect(g, 1)
	if p.NumCommunities != 2 {
		t.Fatalf("communities = %d, want 2", p.NumCommunities)
	}
	// All clique members together.
	for i := 1; i < 8; i++ {
		if p.Assign[i] != p.Assign[0] {
			t.Fatalf("clique 1 split: %v", p.Assign)
		}
		if p.Assign[8+i] != p.Assign[8] {
			t.Fatalf("clique 2 split: %v", p.Assign)
		}
	}
	if p.Assign[0] == p.Assign[8] {
		t.Fatal("cliques merged")
	}
	if q < 0.4 {
		t.Fatalf("modularity = %v, want > 0.4", q)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g := twoCliques(6)
	a := Louvain(g, 42)
	b := Louvain(g, 42)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("nondeterministic at node %d", i)
		}
	}
}

func TestLouvainRingOfCliques(t *testing.T) {
	// Classic benchmark: a ring of k cliques, each clique one community.
	const k, size = 6, 5
	g := graph.New(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				_ = g.AddEdge(graph.NodeID(base+i), graph.NodeID(base+j))
			}
		}
		next := ((c + 1) % k) * size
		_ = g.AddEdge(graph.NodeID(base), graph.NodeID(next+1))
	}
	p, q := Detect(g, 7)
	if p.NumCommunities != k {
		t.Fatalf("communities = %d, want %d", p.NumCommunities, k)
	}
	if q < 0.6 {
		t.Fatalf("modularity = %v, want > 0.6", q)
	}
}

func TestLouvainIsolatedNodes(t *testing.T) {
	g := graph.New(5)
	_ = g.AddEdge(0, 1)
	p := Louvain(g, 3)
	if len(p.Assign) != 5 {
		t.Fatalf("assign length %d", len(p.Assign))
	}
	if p.Assign[0] != p.Assign[1] {
		t.Fatal("connected pair not in same community")
	}
}

func TestCommunitiesRoundTrip(t *testing.T) {
	g := twoCliques(4)
	p := Louvain(g, 5)
	total := 0
	for _, c := range p.Communities() {
		total += len(c)
	}
	if total != g.NumNodes() {
		t.Fatalf("communities cover %d of %d nodes", total, g.NumNodes())
	}
}

func TestQuickModularityBounds(t *testing.T) {
	// For any graph and any partition, Q ∈ [-1, 1] (tighter bounds exist but
	// this is the invariant worth guarding).
	f := func(seed uint64, nRaw, cRaw uint8) bool {
		n := int(nRaw%30) + 2
		nc := int(cRaw%uint8(n)) + 1
		r := rng.New(seed, "qmod")
		g := graph.New(n)
		for e := 0; e < 3*n; e++ {
			u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = r.IntN(nc)
		}
		p := Partition{Assign: assign}
		p.normalize()
		q := Modularity(g, p)
		return q >= -1 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickLouvainBeatsSingleton(t *testing.T) {
	// Louvain's result must never have lower modularity than the all-in-one
	// partition (Q=0) on graphs with at least one edge.
	f := func(seed uint64) bool {
		r := rng.New(seed, "qlouvain")
		n := 20
		g := graph.New(n)
		for e := 0; e < 40; e++ {
			u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		if g.NumEdges() == 0 {
			return true
		}
		_, q := Detect(g, seed)
		return q >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
