// Package community implements Newman modularity and the Louvain community
// detection method (Blondel et al., "Fast unfolding of communities in large
// networks", 2008) — the algorithms cited by the paper for the "Modularity"
// and "Number of Communities" rows of Table 1.
package community

import (
	"fmt"

	"siot/internal/graph"
	"siot/internal/rng"
)

// Partition assigns each node to a community. Community IDs are dense in
// [0, NumCommunities).
type Partition struct {
	// Assign maps node ID to community ID.
	Assign []int
	// NumCommunities is the number of distinct communities.
	NumCommunities int
}

// Communities returns the node sets per community, indexed by community ID.
func (p Partition) Communities() [][]graph.NodeID {
	out := make([][]graph.NodeID, p.NumCommunities)
	for n, c := range p.Assign {
		out[c] = append(out[c], graph.NodeID(n))
	}
	return out
}

// normalize relabels communities to dense IDs in first-seen order and fixes
// NumCommunities.
func (p *Partition) normalize() {
	relabel := make(map[int]int)
	for i, c := range p.Assign {
		id, ok := relabel[c]
		if !ok {
			id = len(relabel)
			relabel[c] = id
		}
		p.Assign[i] = id
	}
	p.NumCommunities = len(relabel)
}

// Modularity computes Newman's modularity Q of the partition on g:
//
//	Q = (1/2m) * Σ_ij [A_ij − k_i k_j / 2m] δ(c_i, c_j)
//
// Higher values mean denser intra-community connectivity than expected at
// random. Q is 0 for a single community and can reach ~1 for strongly
// modular graphs.
func Modularity(g *graph.Graph, p Partition) float64 {
	m2 := float64(2 * g.NumEdges())
	if m2 == 0 {
		return 0
	}
	if len(p.Assign) != g.NumNodes() {
		panic(fmt.Sprintf("community: partition over %d nodes, graph has %d", len(p.Assign), g.NumNodes()))
	}
	// Sum of degrees per community and intra-community edge endpoints.
	degSum := make([]float64, p.NumCommunities)
	var intra float64
	for u := 0; u < g.NumNodes(); u++ {
		cu := p.Assign[u]
		degSum[cu] += float64(g.Degree(graph.NodeID(u)))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if p.Assign[v] == cu {
				intra++ // counts each intra edge twice, as the formula wants
			}
		}
	}
	q := intra / m2
	for _, d := range degSum {
		q -= (d / m2) * (d / m2)
	}
	return q
}

// Louvain runs the Louvain method on g with a deterministic node-visit order
// derived from seed, and returns the final partition. The two classic phases
// (local moving, graph aggregation) repeat until modularity stops improving.
func Louvain(g *graph.Graph, seed uint64) Partition {
	// Working representation: weighted multigraph via edge maps, because the
	// aggregation phase introduces weights and self-loops.
	n := g.NumNodes()
	w := make([]map[int]float64, n)
	selfLoop := make([]float64, n)
	for u := 0; u < n; u++ {
		w[u] = make(map[int]float64, g.Degree(graph.NodeID(u)))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			w[u][int(v)] = 1
		}
	}
	// membership[level node] -> community at that level; we compose levels.
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i
	}

	level := 0
	for {
		moved, part := localMove(w, selfLoop, rng.New(seed, "louvain", fmt.Sprint(level)))
		// Compose the level partition into the global assignment.
		for i := range assign {
			assign[i] = part[assign[i]]
		}
		if !moved {
			break
		}
		// Aggregate: build the community graph for the next level.
		w, selfLoop = aggregate(w, selfLoop, part)
		level++
		if len(w) <= 1 {
			break
		}
	}
	p := Partition{Assign: assign}
	p.normalize()
	return p
}

// localMove performs the Louvain local-moving phase on the weighted graph
// (w, selfLoop). It returns whether any node changed community and the dense
// community assignment of this level's nodes.
func localMove(w []map[int]float64, selfLoop []float64, r interface{ Perm(int) []int }) (bool, []int) {
	n := len(w)
	comm := make([]int, n)
	for i := range comm {
		comm[i] = i
	}
	// Total weighted degree (incl. self-loops counted twice) and totals per
	// community.
	deg := make([]float64, n)
	var m2 float64
	for u := 0; u < n; u++ {
		for _, wt := range w[u] {
			deg[u] += wt
		}
		deg[u] += 2 * selfLoop[u]
		m2 += deg[u]
	}
	if m2 == 0 {
		return false, comm
	}
	commTot := append([]float64(nil), deg...)

	anyMoved := false
	for pass := 0; pass < 64; pass++ { // safety bound; converges much sooner
		movedThisPass := false
		for _, u := range r.Perm(n) {
			cu := comm[u]
			// Weights from u to each neighboring community.
			toComm := make(map[int]float64)
			for v, wt := range w[u] {
				toComm[comm[v]] += wt
			}
			// Remove u from its community.
			commTot[cu] -= deg[u]
			bestC, bestGain := cu, 0.0
			for c, wuc := range toComm {
				// ΔQ of moving u into c (constant terms dropped).
				gain := wuc - commTot[c]*deg[u]/m2
				base := toComm[cu] - commTot[cu]*deg[u]/m2
				delta := gain - base
				if delta > bestGain+1e-12 || (delta > bestGain-1e-12 && c < bestC && delta > 1e-12) {
					bestGain = delta
					bestC = c
				}
			}
			commTot[bestC] += deg[u]
			if bestC != cu {
				comm[u] = bestC
				movedThisPass = true
				anyMoved = true
			}
		}
		if !movedThisPass {
			break
		}
	}
	// Densify community IDs.
	relabel := make(map[int]int)
	for i, c := range comm {
		id, ok := relabel[c]
		if !ok {
			id = len(relabel)
			relabel[c] = id
		}
		comm[i] = id
	}
	return anyMoved, comm
}

// aggregate builds the community-level weighted graph after a local-moving
// phase. Edge weights between communities are summed; intra-community
// weights become self-loops.
func aggregate(w []map[int]float64, selfLoop []float64, part []int) ([]map[int]float64, []float64) {
	nc := 0
	for _, c := range part {
		if c+1 > nc {
			nc = c + 1
		}
	}
	nw := make([]map[int]float64, nc)
	nself := make([]float64, nc)
	for i := range nw {
		nw[i] = make(map[int]float64)
	}
	for u := range w {
		cu := part[u]
		nself[cu] += selfLoop[u]
		for v, wt := range w[u] {
			cv := part[v]
			if cu == cv {
				// Each intra edge visited from both endpoints: wt/2 each.
				nself[cu] += wt / 2
			} else {
				nw[cu][cv] += wt
			}
		}
	}
	return nw, nself
}

// Detect is the convenience entry point used by Table 1: it runs Louvain and
// returns the partition together with its modularity.
func Detect(g *graph.Graph, seed uint64) (Partition, float64) {
	p := Louvain(g, seed)
	return p, Modularity(g, p)
}
