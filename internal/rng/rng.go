// Package rng provides deterministic, independently seeded random-number
// streams for simulations.
//
// Every experiment in this repository is reproducible: a run is identified by
// a single uint64 seed, and every component (network generation, agent
// behavior, task arrival, environment noise, ...) derives its own independent
// stream from that seed plus a string label. Derivation uses splitmix64 over
// an FNV-1a hash of the label, a construction with well-distributed outputs
// that guarantees two distinct labels yield decorrelated PCG streams.
package rng

import (
	"hash/fnv"
	"math/rand/v2"
)

// splitmix64 advances the given state and returns a well-mixed 64-bit value.
// It is the standard seeding mixer recommended for PCG/xoshiro generators.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix returns a mixed 64-bit value derived from seed and the labels. It is
// the key-derivation function behind New and can be used directly when a raw
// sub-seed is needed (for example to seed a remote worker).
func Mix(seed uint64, labels ...string) uint64 {
	h := fnv.New64a()
	for _, l := range labels {
		// The write to an FNV hash never fails.
		_, _ = h.Write([]byte(l))
		_, _ = h.Write([]byte{0})
	}
	state := seed ^ h.Sum64()
	return splitmix64(&state)
}

// New returns a deterministic generator derived from seed and an optional
// chain of labels. Calls with the same arguments always return generators
// that produce identical sequences; generators with different labels are
// statistically independent.
func New(seed uint64, labels ...string) *rand.Rand {
	state := Mix(seed, labels...)
	lo := splitmix64(&state)
	hi := splitmix64(&state)
	return rand.New(rand.NewPCG(lo, hi))
}

// Split derives a child generator from a parent seed with an index, for use
// in loops that need one independent stream per iteration (per experiment
// run, per agent, ...). It is the sub-stream behind the parallel setup
// pipeline: sim.NewPopulation and the seeding passes key one stream per
// node on (seed, phase label, node), so work sharded across goroutines
// draws identical randomness regardless of execution order — the same
// recipe Split2 provides for the engine's (round, agent) rounds.
func Split(seed uint64, label string, index int) *rand.Rand {
	state := Mix(seed, label) ^ (uint64(index)+1)*0x9e3779b97f4a7c15
	lo := splitmix64(&state)
	hi := splitmix64(&state)
	return rand.New(rand.NewPCG(lo, hi))
}

// Split2 derives a child generator from a parent seed with two indices — the
// (round, agent) sub-streams of the parallel simulation engine. Each
// (label, i, j) triple yields an independent stream, so work sharded across
// goroutines draws identical randomness regardless of execution order.
func Split2(seed uint64, label string, i, j int) *rand.Rand {
	state := Mix(seed, label) ^ (uint64(i)+1)*0x9e3779b97f4a7c15 ^ (uint64(j)+1)*0xbf58476d1ce4e5b9
	lo := splitmix64(&state)
	hi := splitmix64(&state)
	return rand.New(rand.NewPCG(lo, hi))
}
