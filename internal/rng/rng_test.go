package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42, "net", "facebook")
	b := New(42, "net", "facebook")
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestLabelsChangeStream(t *testing.T) {
	a := New(42, "net", "facebook")
	b := New(42, "net", "twitter")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different labels collided %d/64 times", same)
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1, "x")
	b := New(2, "x")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestLabelChainNotConcatenation(t *testing.T) {
	// ("ab", "c") must differ from ("a", "bc"): labels are length-delimited.
	a := New(7, "ab", "c")
	b := New(7, "a", "bc")
	diff := false
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("label boundaries are not separated in derivation")
	}
}

func TestSplitIndependentPerIndex(t *testing.T) {
	a := Split(9, "runs", 0)
	b := Split(9, "runs", 1)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("Split streams for adjacent indices look identical")
	}
	c := Split(9, "runs", 0)
	r := Split(9, "runs", 0)
	for i := 0; i < 50; i++ {
		if c.Uint64() != r.Uint64() {
			t.Fatalf("Split not deterministic at draw %d", i)
		}
	}
}

func TestMixDeterministic(t *testing.T) {
	if Mix(3, "a", "b") != Mix(3, "a", "b") {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(3, "a") == Mix(4, "a") {
		t.Fatal("Mix ignores seed")
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(11, "bounds")
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish sanity check over 10 buckets.
	r := New(99, "uniform")
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestQuickMixLabelSensitivity(t *testing.T) {
	f := func(seed uint64, a, b string) bool {
		if a == b {
			return true
		}
		return Mix(seed, a) != Mix(seed, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
