package rng

import "testing"

func TestSplit2Deterministic(t *testing.T) {
	a := Split2(7, "round", 3, 41)
	b := Split2(7, "round", 3, 41)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical (seed, label, i, j) produced different streams")
		}
	}
}

func TestSplit2IndependentAcrossIndices(t *testing.T) {
	// Distinct (i, j) pairs — including swapped pairs — must yield distinct
	// streams: the parallel engine keys its sub-streams on (round, agent).
	base := Split2(7, "round", 3, 41).Uint64()
	for _, pair := range [][2]int{{3, 42}, {4, 41}, {41, 3}, {0, 0}} {
		if Split2(7, "round", pair[0], pair[1]).Uint64() == base {
			t.Fatalf("pair %v collided with (3, 41)", pair)
		}
	}
	if Split2(8, "round", 3, 41).Uint64() == base {
		t.Fatal("different seed collided")
	}
	if Split2(7, "other", 3, 41).Uint64() == base {
		t.Fatal("different label collided")
	}
}
