package rng

import "testing"

func TestSplit2Deterministic(t *testing.T) {
	a := Split2(7, "round", 3, 41)
	b := Split2(7, "round", 3, 41)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical (seed, label, i, j) produced different streams")
		}
	}
}

func TestSplit2IndependentAcrossIndices(t *testing.T) {
	// Distinct (i, j) pairs — including swapped pairs — must yield distinct
	// streams: the parallel engine keys its sub-streams on (round, agent).
	base := Split2(7, "round", 3, 41).Uint64()
	for _, pair := range [][2]int{{3, 42}, {4, 41}, {41, 3}, {0, 0}} {
		if Split2(7, "round", pair[0], pair[1]).Uint64() == base {
			t.Fatalf("pair %v collided with (3, 41)", pair)
		}
	}
	if Split2(8, "round", 3, 41).Uint64() == base {
		t.Fatal("different seed collided")
	}
	if Split2(7, "other", 3, 41).Uint64() == base {
		t.Fatal("different label collided")
	}
}

func TestSplitIndependentAcrossNodes(t *testing.T) {
	// The parallel setup pipeline keys one Split stream per node; adjacent
	// node indices (the common case inside one worker chunk) and the same
	// index under other labels or seeds must all yield distinct streams.
	base := Split(7, "seed-experience:facebook", 100).Uint64()
	for _, idx := range []int{0, 99, 101, 1 << 20} {
		if Split(7, "seed-experience:facebook", idx).Uint64() == base {
			t.Fatalf("node %d collided with node 100", idx)
		}
	}
	if Split(8, "seed-experience:facebook", 100).Uint64() == base {
		t.Fatal("different seed collided")
	}
	if Split(7, "population-behavior:facebook", 100).Uint64() == base {
		t.Fatal("different phase label collided")
	}
	// And the stream itself is reproducible.
	a, b := Split(7, "x", 5), Split(7, "x", 5)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical (seed, label, index) produced different streams")
		}
	}
}
