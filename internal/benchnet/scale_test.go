package benchnet

import (
	"os"
	"testing"

	"siot/internal/socialgen"
)

// TestScaleSmoke1M is the CI scale gate for the million-node path: generate
// the canonical 1M-node / 6M-edge network, populate it, and seed transitivity
// experience — the full setup half of the sweep-1m workload — under whatever
// memory budget the environment imposes (CI sets GOMEMLIMIT). It runs only
// when SIOT_SCALE1M is set: at ~6 GB peak it has no place in the default
// test sweep.
func TestScaleSmoke1M(t *testing.T) {
	if os.Getenv("SIOT_SCALE1M") == "" {
		t.Skip("set SIOT_SCALE1M=1 to run the million-node scale smoke")
	}
	profile := Net1M()
	net := socialgen.Generate(profile, Seed)
	if got := net.Graph.NumNodes(); got != profile.Nodes {
		t.Fatalf("generated %d nodes, want %d", got, profile.Nodes)
	}
	if got := net.Graph.NumEdges(); got != profile.Edges {
		t.Fatalf("generated %d edges, want %d", got, profile.Edges)
	}
	p, _ := Populate(net)
	if got := p.Net.Graph.NumNodes(); got != profile.Nodes {
		t.Fatalf("population covers %d nodes, want %d", got, profile.Nodes)
	}
	if len(p.Trustors) == 0 {
		t.Fatal("populated network has no trustors")
	}
}
