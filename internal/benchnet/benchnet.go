// Package benchnet builds the standard benchmark networks shared by the go
// test benchmarks (bench_test.go) and the machine-readable perf suite of
// cmd/siot-bench (-json): one canonical community-structured profile per
// node count, with experience records seeded for the transitivity sweeps.
package benchnet

import (
	"fmt"

	"siot/internal/sim"
	"siot/internal/socialgen"
)

// Seed is the canonical benchmark seed; every benchmark network derives
// from it so numbers are comparable across runs and PRs.
const Seed = 42

// Profile returns the canonical benchmark network profile for a node
// count: average degree 16, community-structured, with the same mixing
// fractions at every scale (the 1k profile is the historical "bench1k"
// network of BenchmarkRoundsSerial, unchanged).
func Profile(nodes int) socialgen.Profile {
	communities := nodes / 80
	if communities < 4 {
		communities = 4
	}
	return socialgen.Profile{
		Name:  fmt.Sprintf("bench%dk", nodes/1000),
		Nodes: nodes, Edges: 8 * nodes,
		Communities: communities, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 6, FeaturesPerNode: 2,
	}
}

// Net100k is the canonical 100k-node benchmark profile: 500k edges
// (average degree 10, the scale-out regime the ROADMAP's 100k milestone
// targets), community-structured like the smaller profiles. It generates
// on socialgen's streaming large-N path.
func Net100k() socialgen.Profile {
	return socialgen.Profile{
		Name:  "bench100k",
		Nodes: 100_000, Edges: 500_000,
		Communities: 1250, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 6, FeaturesPerNode: 2,
	}
}

// Net1M is the canonical million-node benchmark profile: 1M nodes and 6M
// edges (average degree 12, within the ROADMAP's 5–10M-edge frontier band),
// community-structured like every smaller profile. It generates on
// socialgen's streaming path and is the network behind the sweep-1m
// siot-bench workload and the CI scale-smoke job.
func Net1M() socialgen.Profile {
	return socialgen.Profile{
		Name:  "bench1m",
		Nodes: 1_000_000, Edges: 6_000_000,
		Communities: 12_500, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 6, FeaturesPerNode: 2,
	}
}

// Population builds the benchmark population at the given node count with
// transitivity experience seeded (5-characteristic alphabet, depth-3
// chains), ready for delegation rounds and transitivity sweeps.
func Population(nodes int) (*sim.Population, sim.TransitivitySetup) {
	return PopulationFor(Profile(nodes))
}

// Population100k builds the canonical 100k-node benchmark population.
func Population100k() (*sim.Population, sim.TransitivitySetup) {
	return PopulationFor(Net100k())
}

// Population1M builds the canonical million-node benchmark population.
func Population1M() (*sim.Population, sim.TransitivitySetup) {
	return PopulationFor(Net1M())
}

// PopulationFor builds the seeded benchmark population over any profile.
func PopulationFor(profile socialgen.Profile) (*sim.Population, sim.TransitivitySetup) {
	return Populate(socialgen.Generate(profile, Seed))
}

// Populate builds the seeded benchmark population over an already
// generated network — the populate+seed half of PopulationFor, split out
// so the setup benchmarks (BenchmarkSetup100k, the siot-bench setup
// workloads) can time it without re-generating the network every op.
func Populate(net *socialgen.Network) (*sim.Population, sim.TransitivitySetup) {
	p := sim.NewPopulation(net, sim.DefaultPopulationConfig(Seed))
	setup := sim.DefaultTransitivitySetup(5, p.Rand("bench-rounds"))
	setup.MaxDepth = 3
	sim.SeedExperience(p, setup, Seed)
	return p, setup
}
