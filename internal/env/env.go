// Package env models the dynamic environment of §4.5: instantaneous
// environment indicators in (0, 1], schedules that change them over time,
// and the Cannikin-law removal function r(·) (eq. 29) that strips the
// environment's influence from observed delegation results so that normal
// behavior in a hostile environment is not mistaken for malice.
package env

import (
	"fmt"
	"math"
)

// Environment is an instantaneous external-condition indicator in (0, 1]:
// 1 is a perfect (amicable) environment, values near 0 are hostile. In an
// IoT deployment it reflects channel bandwidth, workload, interference,
// lighting, and similar conditions.
type Environment float64

// Clamp returns e forced into (0, 1]; non-positive values become Min.
func (e Environment) Clamp() Environment {
	if e <= 0 {
		return Min
	}
	if e > 1 {
		return 1
	}
	return e
}

// Min is the smallest environment value Clamp produces. It bounds the
// amplification of r(·): an observation can be scaled up by at most 1/Min.
const Min Environment = 0.05

// Perfect is the amicable environment where observations pass through
// unchanged.
const Perfect Environment = 1

// Hostile reports whether the environment is in the hostile half of the
// range.
func (e Environment) Hostile() bool { return e < 0.5 }

// Combine returns the effective environment of an interaction per the
// Cannikin Law (Wooden Bucket Theory) used by the paper: the worst of the
// trustor's, the trustee's, and every intermediate node's environment
// dominates.
func Combine(trustor, trustee Environment, intermediates ...Environment) Environment {
	m := trustor.Clamp()
	if t := trustee.Clamp(); t < m {
		m = t
	}
	for _, e := range intermediates {
		if c := e.Clamp(); c < m {
			m = c
		}
	}
	return m
}

// Remove implements r(E_X, E_Y, {E_i}, obs) of eq. 29: it divides the
// observation by the combined (minimum) environment, crediting agents that
// deliver under hostile conditions. The result is capped at cap to keep the
// update bounded (the paper normalizes trustworthiness into a fixed range;
// the cap plays that role for a single observation).
func Remove(obs float64, cap float64, trustor, trustee Environment, intermediates ...Environment) float64 {
	e := Combine(trustor, trustee, intermediates...)
	v := obs / float64(e)
	if cap > 0 && v > cap {
		return cap
	}
	return v
}

// Schedule yields the environment at a given iteration. Schedules drive the
// dynamic-environment experiments (Fig. 15's step changes, Fig. 16's
// light/dark phases).
type Schedule interface {
	// At returns the environment at iteration i (0-based).
	At(i int) Environment
}

// Constant is a schedule that never changes.
type Constant Environment

// At implements Schedule.
func (c Constant) At(int) Environment { return Environment(c).Clamp() }

// Phase is one segment of a PhaseSchedule.
type Phase struct {
	// Len is the number of iterations the phase lasts.
	Len int
	// Env is the environment during the phase.
	Env Environment
}

// PhaseSchedule plays its phases in order and holds the last phase's value
// forever after. The zero value yields Perfect everywhere.
type PhaseSchedule struct {
	Phases []Phase
}

// NewPhaseSchedule validates and builds a phase schedule.
func NewPhaseSchedule(phases ...Phase) (*PhaseSchedule, error) {
	for i, p := range phases {
		if p.Len <= 0 {
			return nil, fmt.Errorf("env: phase %d has non-positive length %d", i, p.Len)
		}
		if p.Env <= 0 || p.Env > 1 {
			return nil, fmt.Errorf("env: phase %d environment %v outside (0,1]", i, p.Env)
		}
	}
	return &PhaseSchedule{Phases: phases}, nil
}

// Fig15Schedule returns the three-phase schedule of the paper's Fig. 15:
// 100 iterations perfect (E=1), 100 deteriorated (E=0.4), 100 partially
// recovered (E=0.7).
func Fig15Schedule() *PhaseSchedule {
	s, err := NewPhaseSchedule(
		Phase{Len: 100, Env: 1},
		Phase{Len: 100, Env: 0.4},
		Phase{Len: 100, Env: 0.7},
	)
	if err != nil {
		panic(err) // phases above are statically valid
	}
	return s
}

// At implements Schedule.
func (s *PhaseSchedule) At(i int) Environment {
	if len(s.Phases) == 0 {
		return Perfect
	}
	for _, p := range s.Phases {
		if i < p.Len {
			return p.Env
		}
		i -= p.Len
	}
	return s.Phases[len(s.Phases)-1].Env
}

// TotalLen returns the summed length of all phases.
func (s *PhaseSchedule) TotalLen() int {
	n := 0
	for _, p := range s.Phases {
		n += p.Len
	}
	return n
}

// LightSchedule models the optical-sensor experiment of Fig. 16: a light
// period, a dark period, then light again. During dark phases the
// environment drops to DarkEnv, degrading any task that needs illumination.
type LightSchedule struct {
	LightLen, DarkLen, FinalLen int
	LightEnv, DarkEnv           Environment
}

// DefaultLightSchedule mirrors the paper's setup: equal thirds of light,
// dark, and light again over span iterations.
func DefaultLightSchedule(span int) LightSchedule {
	third := span / 3
	if third < 1 {
		third = 1
	}
	return LightSchedule{
		LightLen: third, DarkLen: third, FinalLen: span - 2*third,
		LightEnv: 1, DarkEnv: 0.3,
	}
}

// At implements Schedule.
func (s LightSchedule) At(i int) Environment {
	switch {
	case i < s.LightLen:
		return s.LightEnv.Clamp()
	case i < s.LightLen+s.DarkLen:
		return s.DarkEnv.Clamp()
	default:
		return s.LightEnv.Clamp()
	}
}

// IsDark reports whether iteration i falls in the dark phase.
func (s LightSchedule) IsDark(i int) bool {
	return i >= s.LightLen && i < s.LightLen+s.DarkLen
}

// MeanEnvironment averages a schedule over [0, n) — a helper for reports and
// for the ablation comparing Cannikin (min) combination against mean
// combination.
func MeanEnvironment(s Schedule, n int) Environment {
	if n <= 0 {
		return Perfect
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.At(i))
	}
	return Environment(sum / float64(n)).Clamp()
}

// CombineMean is the ablation counterpart of Combine: it averages instead of
// taking the minimum. Tests demonstrate that the minimum tracks hostile
// bottlenecks that the mean washes out (the reason the paper invokes the
// Cannikin Law).
func CombineMean(trustor, trustee Environment, intermediates ...Environment) Environment {
	sum := float64(trustor.Clamp()) + float64(trustee.Clamp())
	n := 2.0
	for _, e := range intermediates {
		sum += float64(e.Clamp())
		n++
	}
	return Environment(sum / n)
}

// MinOf returns the minimum of a non-empty environment slice (clamped); it
// returns Perfect for an empty slice.
func MinOf(envs []Environment) Environment {
	if len(envs) == 0 {
		return Perfect
	}
	m := envs[0].Clamp()
	for _, e := range envs[1:] {
		if c := e.Clamp(); c < m {
			m = c
		}
	}
	return m
}

// Distance converts an environment to a "hostility" measure in [0, 1):
// 0 for perfect, approaching 1 for maximally hostile. Used by agent models
// whose failure probability grows with hostility.
func (e Environment) Distance() float64 {
	return 1 - float64(e.Clamp())
}

// Validate checks that e lies in (0, 1].
func (e Environment) Validate() error {
	if math.IsNaN(float64(e)) || e <= 0 || e > 1 {
		return fmt.Errorf("env: environment %v outside (0,1]", float64(e))
	}
	return nil
}
