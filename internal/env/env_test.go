package env

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct{ in, want Environment }{
		{0.5, 0.5},
		{0, Min},
		{-3, Min},
		{1.5, 1},
		{1, 1},
	}
	for _, c := range cases {
		if got := c.in.Clamp(); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCombineTakesMinimum(t *testing.T) {
	if got := Combine(1, 0.4, 0.7, 0.9); got != 0.4 {
		t.Fatalf("Combine = %v, want 0.4", got)
	}
	if got := Combine(0.2, 0.8); got != 0.2 {
		t.Fatalf("Combine = %v, want 0.2", got)
	}
	if got := Combine(1, 1); got != 1 {
		t.Fatalf("Combine of perfect = %v", got)
	}
}

func TestRemoveMatchesEq29(t *testing.T) {
	// Paper's example: S = 0.32 observed at min env 0.4 recovers 0.8.
	got := Remove(0.32, 1, 1, 0.4)
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Remove = %v, want 0.8", got)
	}
}

func TestRemoveCaps(t *testing.T) {
	if got := Remove(0.9, 1, 0.1, 0.1); got != 1 {
		t.Fatalf("Remove did not cap: %v", got)
	}
	// cap <= 0 disables capping.
	if got := Remove(0.9, 0, 0.1, 0.1); got <= 1 {
		t.Fatalf("uncapped Remove = %v, want > 1", got)
	}
}

func TestHostile(t *testing.T) {
	if Environment(0.6).Hostile() {
		t.Fatal("0.6 reported hostile")
	}
	if !Environment(0.3).Hostile() {
		t.Fatal("0.3 not reported hostile")
	}
}

func TestConstantSchedule(t *testing.T) {
	s := Constant(0.7)
	for _, i := range []int{0, 5, 1000} {
		if s.At(i) != 0.7 {
			t.Fatalf("Constant.At(%d) = %v", i, s.At(i))
		}
	}
}

func TestPhaseScheduleSequence(t *testing.T) {
	s := Fig15Schedule()
	if s.At(0) != 1 || s.At(99) != 1 {
		t.Fatal("phase 1 wrong")
	}
	if s.At(100) != 0.4 || s.At(199) != 0.4 {
		t.Fatal("phase 2 wrong")
	}
	if s.At(200) != 0.7 || s.At(299) != 0.7 {
		t.Fatal("phase 3 wrong")
	}
	// Past the end, holds the last value.
	if s.At(5000) != 0.7 {
		t.Fatal("schedule does not hold final phase")
	}
	if s.TotalLen() != 300 {
		t.Fatalf("TotalLen = %d", s.TotalLen())
	}
}

func TestNewPhaseScheduleValidates(t *testing.T) {
	if _, err := NewPhaseSchedule(Phase{Len: 0, Env: 1}); err == nil {
		t.Fatal("zero-length phase accepted")
	}
	if _, err := NewPhaseSchedule(Phase{Len: 10, Env: 0}); err == nil {
		t.Fatal("zero environment accepted")
	}
	if _, err := NewPhaseSchedule(Phase{Len: 10, Env: 1.2}); err == nil {
		t.Fatal("super-unit environment accepted")
	}
}

func TestEmptyPhaseSchedule(t *testing.T) {
	var s PhaseSchedule
	if s.At(3) != Perfect {
		t.Fatal("empty schedule not perfect")
	}
}

func TestLightSchedule(t *testing.T) {
	s := DefaultLightSchedule(30)
	if s.At(0) != 1 || s.IsDark(0) {
		t.Fatal("initial light phase wrong")
	}
	if s.At(10) != 0.3 || !s.IsDark(10) {
		t.Fatal("dark phase wrong")
	}
	if s.At(20) != 1 || s.IsDark(20) {
		t.Fatal("final light phase wrong")
	}
}

func TestLightScheduleTinySpan(t *testing.T) {
	s := DefaultLightSchedule(1)
	if s.LightLen < 1 {
		t.Fatal("degenerate schedule")
	}
	_ = s.At(0)
}

func TestMeanEnvironment(t *testing.T) {
	s := Fig15Schedule()
	m := MeanEnvironment(s, 300)
	want := (100*1 + 100*0.4 + 100*0.7) / 300.0
	if math.Abs(float64(m)-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", m, want)
	}
	if MeanEnvironment(s, 0) != Perfect {
		t.Fatal("empty mean not perfect")
	}
}

func TestCannikinVsMeanAblation(t *testing.T) {
	// A single hostile bottleneck (0.1) among perfect intermediates: the
	// Cannikin minimum reflects it, the mean hides it. This is the property
	// the paper's eq. 29 relies on.
	minE := Combine(1, 1, 0.1, 1, 1)
	meanE := CombineMean(1, 1, 0.1, 1, 1)
	if minE != 0.1 {
		t.Fatalf("Cannikin min = %v, want 0.1", minE)
	}
	if meanE < 0.7 {
		t.Fatalf("mean = %v, expected it to wash out the bottleneck", meanE)
	}
}

func TestMinOf(t *testing.T) {
	if MinOf(nil) != Perfect {
		t.Fatal("empty MinOf not perfect")
	}
	if got := MinOf([]Environment{0.9, 0.2, 0.5}); got != 0.2 {
		t.Fatalf("MinOf = %v", got)
	}
}

func TestDistance(t *testing.T) {
	if Environment(1).Distance() != 0 {
		t.Fatal("perfect distance nonzero")
	}
	if d := Environment(0.3).Distance(); math.Abs(d-0.7) > 1e-12 {
		t.Fatalf("distance = %v", d)
	}
}

func TestValidate(t *testing.T) {
	if Environment(0.5).Validate() != nil {
		t.Fatal("valid env rejected")
	}
	for _, e := range []Environment{0, -1, 1.01, Environment(math.NaN())} {
		if e.Validate() == nil {
			t.Fatalf("invalid env %v accepted", e)
		}
	}
}

func TestQuickCombineIsLowerBound(t *testing.T) {
	// Combine never exceeds any participant and stays in (0, 1].
	f := func(a, b, c float64) bool {
		ea := Environment(math.Abs(math.Mod(a, 1.2)))
		eb := Environment(math.Abs(math.Mod(b, 1.2)))
		ec := Environment(math.Abs(math.Mod(c, 1.2)))
		m := Combine(ea, eb, ec)
		if m <= 0 || m > 1 {
			return false
		}
		return m <= ea.Clamp() && m <= eb.Clamp() && m <= ec.Clamp()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRemoveMonotoneInObservation(t *testing.T) {
	// For a fixed environment, a better observation never yields a smaller
	// corrected value.
	f := func(o1, o2, e float64) bool {
		env := Environment(math.Abs(math.Mod(e, 1))).Clamp()
		a := math.Mod(math.Abs(o1), 1)
		b := math.Mod(math.Abs(o2), 1)
		if a > b {
			a, b = b, a
		}
		return Remove(a, 10, env, env) <= Remove(b, 10, env, env)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
