// Package task models tasks as weighted bags of characteristics, the
// representation behind the paper's inferential transfer of trust (§4.2).
//
// A task τ carries characteristics {a_j(τ)} with importance weights
// {w_j(τ)}. Two different tasks that share a characteristic (say, GPS
// sampling appearing in both a navigation task and a traffic-report task)
// let a trustor infer trustworthiness for one from experience with the other
// (eqs. 2–4 of the paper). The Type identifies the task context for the
// context-dependent parts of the model (transitivity restrictions, per-task
// thresholds).
package task

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
)

// Characteristic identifies one capability a task requires (e.g. GPS
// sampling, image capture, velocity estimation).
type Characteristic int

// Type identifies a task type. Tasks of the same type are "the exact same
// task" for the traditional trust-transfer baseline, which cannot look
// inside a task at its characteristics.
type Type int

// Task is a delegable unit of work: a type plus its weighted
// characteristics. Weights are importance factors w_i(τ) and are kept
// normalized to sum to 1.
type Task struct {
	typ     Type
	chars   []Characteristic // sorted
	weights []float64        // parallel to chars, sums to 1
}

// New builds a task of the given type from characteristic→weight pairs.
// Weights must be positive; they are normalized to sum to 1. At least one
// characteristic is required.
func New(typ Type, weighted map[Characteristic]float64) (Task, error) {
	if len(weighted) == 0 {
		return Task{}, fmt.Errorf("task: type %d has no characteristics", typ)
	}
	chars := make([]Characteristic, 0, len(weighted))
	var total float64
	for c, w := range weighted {
		if w <= 0 {
			return Task{}, fmt.Errorf("task: characteristic %d has non-positive weight %v", c, w)
		}
		chars = append(chars, c)
		total += w
	}
	sort.Slice(chars, func(i, j int) bool { return chars[i] < chars[j] })
	weights := make([]float64, len(chars))
	for i, c := range chars {
		weights[i] = weighted[c] / total
	}
	return Task{typ: typ, chars: chars, weights: weights}, nil
}

// MustNew is New, panicking on error. For literals in tests and examples.
func MustNew(typ Type, weighted map[Characteristic]float64) Task {
	t, err := New(typ, weighted)
	if err != nil {
		panic(err)
	}
	return t
}

// Uniform builds a task whose characteristics all carry equal weight.
func Uniform(typ Type, chars ...Characteristic) Task {
	m := make(map[Characteristic]float64, len(chars))
	for _, c := range chars {
		m[c] = 1
	}
	t, err := New(typ, m)
	if err != nil {
		panic(err) // only possible with zero characteristics
	}
	return t
}

// Type returns the task's type identifier.
func (t Task) Type() Type { return t.typ }

// Characteristics returns the sorted characteristic list. The slice is owned
// by the task and must not be modified.
func (t Task) Characteristics() []Characteristic { return t.chars }

// Weights returns the normalized importance weights parallel to
// Characteristics — Weights()[i] is Weight(Characteristics()[i]) without the
// per-call search. The slice is owned by the task and must not be modified.
func (t Task) Weights() []float64 { return t.weights }

// Weight returns the normalized importance w_i(τ) of characteristic c, or 0
// if the task does not include c.
func (t Task) Weight(c Characteristic) float64 {
	i := sort.Search(len(t.chars), func(i int) bool { return t.chars[i] >= c })
	if i < len(t.chars) && t.chars[i] == c {
		return t.weights[i]
	}
	return 0
}

// Has reports whether the task includes characteristic c.
func (t Task) Has(c Characteristic) bool { return t.Weight(c) > 0 }

// Equal reports whether two tasks are identical: same type, same sorted
// characteristic bag, and exactly equal weights. This is the identity the
// Catalog interns by and the sameness test the per-type memo tables use.
func (t Task) Equal(o Task) bool {
	if t.typ != o.typ || len(t.chars) != len(o.chars) {
		return false
	}
	for i := range t.chars {
		if t.chars[i] != o.chars[i] || t.weights[i] != o.weights[i] {
			return false
		}
	}
	return true
}

// NumCharacteristics returns the number of characteristics in the task.
func (t Task) NumCharacteristics() int { return len(t.chars) }

// CoveredBy reports whether every characteristic of t appears in the union
// of the given characteristic sets — the condition {a(τ″)} ⊆ {a(τ)} ∪ {a(τ′)}
// behind conservative (eq. 8) and aggressive (eq. 12) transitivity.
func (t Task) CoveredBy(sets ...[]Characteristic) bool {
	union := make(map[Characteristic]bool)
	for _, s := range sets {
		for _, c := range s {
			union[c] = true
		}
	}
	for _, c := range t.chars {
		if !union[c] {
			return false
		}
	}
	return true
}

// SharedCharacteristics returns the characteristics t has in common with
// other.
func (t Task) SharedCharacteristics(other Task) []Characteristic {
	var out []Characteristic
	i, j := 0, 0
	for i < len(t.chars) && j < len(other.chars) {
		switch {
		case t.chars[i] < other.chars[j]:
			i++
		case t.chars[i] > other.chars[j]:
			j++
		default:
			out = append(out, t.chars[i])
			i++
			j++
		}
	}
	return out
}

// String renders the task as "type#N{c0:w0 c1:w1 ...}".
func (t Task) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "type#%d{", t.typ)
	for i, c := range t.chars {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.2f", c, t.weights[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Universe is a closed set of task types over a characteristic alphabet, as
// used by the transitivity experiments (§5.5): "multiple types of tasks in
// the network. Each task consists of one or two characteristics."
type Universe struct {
	// Tasks lists the task types in the universe, indexed by Type.
	Tasks []Task
	// NumCharacteristics is the size of the characteristic alphabet.
	NumCharacteristics int
}

// NewUniverse draws numTypes distinct task types over an alphabet of
// numChars characteristics; each task gets 1 or 2 characteristics with
// random weights, mirroring the paper's simulation setup.
func NewUniverse(numTypes, numChars int, r *rand.Rand) Universe {
	if numChars < 1 {
		panic("task: universe needs at least one characteristic")
	}
	u := Universe{NumCharacteristics: numChars}
	seen := make(map[string]bool)
	misses := 0
	for len(u.Tasks) < numTypes {
		n := 1 + r.IntN(2)
		if n > numChars {
			n = numChars
		}
		m := make(map[Characteristic]float64, n)
		for len(m) < n {
			m[Characteristic(r.IntN(numChars))] = 0.25 + 0.75*r.Float64()
		}
		t, err := New(Type(len(u.Tasks)), m)
		if err != nil {
			panic(err) // unreachable: m is non-empty with positive weights
		}
		key := t.String()[strings.IndexByte(t.String(), '{'):]
		// Prefer distinct characteristic bags, but give up after a bounded
		// number of consecutive collisions (tiny alphabets cannot supply
		// numTypes distinct bags).
		if seen[key] && misses < 8*numTypes+64 {
			misses++
			continue
		}
		misses = 0
		seen[key] = true
		u.Tasks = append(u.Tasks, t)
	}
	return u
}

// Random returns a uniformly random task type from the universe.
func (u Universe) Random(r *rand.Rand) Task {
	return u.Tasks[r.IntN(len(u.Tasks))]
}

// Named characteristics for the examples and documentation. The IDs are
// arbitrary but stable.
const (
	CharGPS Characteristic = iota
	CharImage
	CharVelocity
	CharTemperature
	CharHumidity
	CharAudio
	CharStorage
	CharCompute
)

// CharName returns a human-readable name for the built-in characteristics,
// or "char#N" for others.
func CharName(c Characteristic) string {
	names := map[Characteristic]string{
		CharGPS:         "gps",
		CharImage:       "image",
		CharVelocity:    "velocity",
		CharTemperature: "temperature",
		CharHumidity:    "humidity",
		CharAudio:       "audio",
		CharStorage:     "storage",
		CharCompute:     "compute",
	}
	if n, ok := names[c]; ok {
		return n
	}
	return fmt.Sprintf("char#%d", c)
}
