package task

import (
	"math"
	"testing"
	"testing/quick"

	"siot/internal/rng"
)

func TestNewNormalizesWeights(t *testing.T) {
	tk, err := New(1, map[Characteristic]float64{CharGPS: 2, CharImage: 6})
	if err != nil {
		t.Fatal(err)
	}
	if w := tk.Weight(CharGPS); math.Abs(w-0.25) > 1e-12 {
		t.Fatalf("gps weight = %v, want 0.25", w)
	}
	if w := tk.Weight(CharImage); math.Abs(w-0.75) > 1e-12 {
		t.Fatalf("image weight = %v, want 0.75", w)
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(1, nil); err == nil {
		t.Fatal("empty task accepted")
	}
}

func TestNewRejectsNonPositiveWeight(t *testing.T) {
	if _, err := New(1, map[Characteristic]float64{CharGPS: 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := New(1, map[Characteristic]float64{CharGPS: -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestUniform(t *testing.T) {
	tk := Uniform(3, CharGPS, CharImage, CharVelocity)
	for _, c := range []Characteristic{CharGPS, CharImage, CharVelocity} {
		if w := tk.Weight(c); math.Abs(w-1.0/3) > 1e-12 {
			t.Fatalf("weight(%v) = %v, want 1/3", c, w)
		}
	}
	if tk.Type() != 3 {
		t.Fatalf("type = %d", tk.Type())
	}
}

func TestWeightAbsent(t *testing.T) {
	tk := Uniform(1, CharGPS)
	if tk.Weight(CharAudio) != 0 {
		t.Fatal("absent characteristic has weight")
	}
	if tk.Has(CharAudio) {
		t.Fatal("absent characteristic reported present")
	}
	if !tk.Has(CharGPS) {
		t.Fatal("present characteristic reported absent")
	}
}

func TestCharacteristicsSorted(t *testing.T) {
	tk := Uniform(1, CharCompute, CharGPS, CharAudio)
	cs := tk.Characteristics()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("characteristics not sorted: %v", cs)
		}
	}
	if tk.NumCharacteristics() != 3 {
		t.Fatalf("count = %d", tk.NumCharacteristics())
	}
}

func TestCoveredBy(t *testing.T) {
	tk := Uniform(1, CharGPS, CharImage)
	if !tk.CoveredBy([]Characteristic{CharGPS}, []Characteristic{CharImage, CharAudio}) {
		t.Fatal("covered union reported uncovered")
	}
	if tk.CoveredBy([]Characteristic{CharGPS}) {
		t.Fatal("partial cover reported covered")
	}
	if !tk.CoveredBy([]Characteristic{CharImage, CharGPS}) {
		t.Fatal("single-set cover failed")
	}
}

func TestSharedCharacteristics(t *testing.T) {
	a := Uniform(1, CharGPS, CharImage, CharAudio)
	b := Uniform(2, CharImage, CharAudio, CharCompute)
	got := a.SharedCharacteristics(b)
	if len(got) != 2 || got[0] != CharImage || got[1] != CharAudio {
		t.Fatalf("shared = %v", got)
	}
	c := Uniform(3, CharStorage)
	if len(a.SharedCharacteristics(c)) != 0 {
		t.Fatal("disjoint tasks share characteristics")
	}
}

func TestString(t *testing.T) {
	tk := Uniform(7, CharGPS)
	if got := tk.String(); got != "type#7{0:1.00}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestNewUniverse(t *testing.T) {
	r := rng.New(1, "universe")
	u := NewUniverse(10, 5, r)
	if len(u.Tasks) != 10 {
		t.Fatalf("universe has %d tasks", len(u.Tasks))
	}
	for i, tk := range u.Tasks {
		if tk.Type() != Type(i) {
			t.Fatalf("task %d has type %d", i, tk.Type())
		}
		n := tk.NumCharacteristics()
		if n < 1 || n > 2 {
			t.Fatalf("task %d has %d characteristics, want 1 or 2", i, n)
		}
		for _, c := range tk.Characteristics() {
			if c < 0 || int(c) >= u.NumCharacteristics {
				t.Fatalf("task %d characteristic %d outside alphabet", i, c)
			}
		}
	}
}

func TestNewUniverseSingleChar(t *testing.T) {
	u := NewUniverse(3, 1, rng.New(2, "u1"))
	for _, tk := range u.Tasks {
		if tk.NumCharacteristics() != 1 {
			t.Fatal("single-char alphabet produced multi-char task")
		}
	}
}

func TestUniverseRandom(t *testing.T) {
	r := rng.New(3, "pick")
	u := NewUniverse(5, 4, r)
	seen := map[Type]bool{}
	for i := 0; i < 200; i++ {
		seen[u.Random(r).Type()] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Random hit %d of 5 types in 200 draws", len(seen))
	}
}

func TestCharName(t *testing.T) {
	if CharName(CharGPS) != "gps" {
		t.Fatal("gps name wrong")
	}
	if CharName(Characteristic(99)) != "char#99" {
		t.Fatal("fallback name wrong")
	}
}

func TestQuickWeightsSumToOne(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		r := rng.New(seed, "wsum")
		m := make(map[Characteristic]float64)
		for len(m) < n {
			m[Characteristic(r.IntN(20))] = 0.01 + r.Float64()
		}
		tk, err := New(1, m)
		if err != nil {
			return false
		}
		var sum float64
		for _, c := range tk.Characteristics() {
			sum += tk.Weight(c)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
