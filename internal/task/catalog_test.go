package task

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func TestCatalogInternDedup(t *testing.T) {
	c := NewCatalog()
	a := MustNew(3, map[Characteristic]float64{CharGPS: 1, CharImage: 2})
	b := MustNew(3, map[Characteristic]float64{CharGPS: 1, CharImage: 2})
	other := MustNew(3, map[Characteristic]float64{CharGPS: 2, CharImage: 1})

	ra := c.Intern(a)
	if rb := c.Intern(b); rb != ra {
		t.Fatalf("equal tasks interned to different refs: %d vs %d", ra, rb)
	}
	ro := c.Intern(other)
	if ro == ra {
		t.Fatalf("same-type tasks with different weights shared ref %d", ra)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if got := c.Task(ra); !got.Equal(a) {
		t.Fatalf("Task(%d) = %v, want %v", ra, got, a)
	}
	if got := c.TypeOf(ro); got != 3 {
		t.Fatalf("TypeOf(%d) = %d, want 3", ro, got)
	}
	if r, ok := c.Lookup(b); !ok || r != ra {
		t.Fatalf("Lookup(b) = %d, %v; want %d, true", r, ok, ra)
	}
	if _, ok := c.Lookup(MustNew(9, map[Characteristic]float64{CharGPS: 1})); ok {
		t.Fatal("Lookup found a task never interned")
	}
}

func TestCatalogTasksSnapshot(t *testing.T) {
	c := NewCatalog()
	r0 := c.Intern(Uniform(0, CharGPS))
	snap := c.Tasks()
	c.Intern(Uniform(1, CharImage))
	if len(snap) != 1 {
		t.Fatalf("snapshot grew after a later Intern: len %d", len(snap))
	}
	if !snap[r0].Equal(Uniform(0, CharGPS)) {
		t.Fatal("snapshot does not resolve a pre-snapshot ref")
	}
	if len(c.Tasks()) != 2 {
		t.Fatalf("fresh snapshot has %d tasks, want 2", len(c.Tasks()))
	}
}

func TestCatalogOfMatchesUniverseIndex(t *testing.T) {
	u := NewUniverse(8, 5, rand.New(rand.NewPCG(1, 2)))
	c := CatalogOf(u)
	if c.Len() != len(u.Tasks) {
		t.Fatalf("catalog has %d tasks, universe %d", c.Len(), len(u.Tasks))
	}
	for i, tk := range u.Tasks {
		if got := c.Task(Ref(i)); !got.Equal(tk) {
			t.Fatalf("ref %d resolves to %v, want universe task %v", i, got, tk)
		}
		if r, ok := c.Lookup(tk); !ok || r != Ref(i) {
			t.Fatalf("universe task %d interned at ref %d (ok=%v)", i, r, ok)
		}
	}
}

// TestCatalogConcurrentIntern hammers Intern from many goroutines over a
// small task set: every goroutine must see one consistent ref per task and
// the catalog must not duplicate entries.
func TestCatalogConcurrentIntern(t *testing.T) {
	c := NewCatalog()
	tasks := make([]Task, 16)
	for i := range tasks {
		tasks[i] = Uniform(Type(i%4), Characteristic(i), Characteristic(i+1))
	}
	const workers = 8
	refs := make([][]Ref, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]Ref, len(tasks))
			for round := 0; round < 100; round++ {
				for i, tk := range tasks {
					out[i] = c.Intern(tk)
				}
			}
			refs[w] = out
		}(w)
	}
	wg.Wait()
	if c.Len() != len(tasks) {
		t.Fatalf("catalog holds %d tasks, want %d", c.Len(), len(tasks))
	}
	for w := 1; w < workers; w++ {
		for i := range tasks {
			if refs[w][i] != refs[0][i] {
				t.Fatalf("worker %d interned task %d at ref %d, worker 0 at %d", w, i, refs[w][i], refs[0][i])
			}
		}
	}
}
