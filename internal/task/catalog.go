package task

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Ref is a dense catalog index standing in for a full Task value. A Ref is
// only meaningful against the Catalog that issued it — refs from different
// catalogs must never mix — and stays valid for the catalog's lifetime
// (catalogs only grow; tasks are never removed or renumbered).
//
// The point of a Ref is memory layout: a Task carries two slice headers the
// GC must scan, while a Ref is four pointer-free bytes. Large record arenas
// keyed by Ref are invisible to the garbage collector.
type Ref uint32

// Catalog interns Task values into dense Refs. Simulations draw their tasks
// from a small fixed per-profile universe, so the catalog stays tiny (tens
// of entries) while the record stores and frozen-view arenas referencing it
// hold millions of records.
//
// All methods are safe for concurrent use. Reads (Task, TypeOf, Tasks,
// Lookup) are lock-free — they load an atomic snapshot — and Intern is a
// copy-on-write append serialized by a mutex, cheap because interning a
// genuinely new task is rare.
type Catalog struct {
	mu   sync.Mutex // serializes Intern's copy-on-write appends
	snap atomic.Pointer[catalogSnap]
}

// catalogSnap is one immutable catalog state. Readers load it once and index
// freely; writers replace it wholesale.
type catalogSnap struct {
	tasks  []Task       // indexed by Ref
	byType map[Type][]Ref // interning buckets; several tasks may share a type
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	c := &Catalog{}
	c.snap.Store(&catalogSnap{byType: map[Type][]Ref{}})
	return c
}

// Len returns the number of interned tasks.
func (c *Catalog) Len() int { return len(c.snap.Load().tasks) }

// Tasks returns the current task list indexed by Ref. The slice is an
// immutable shared snapshot: every Ref issued before the call resolves in
// it, refs interned later do not. Callers on a hot path load it once per
// operation instead of paying an atomic load per record.
func (c *Catalog) Tasks() []Task { return c.snap.Load().tasks }

// Task resolves a Ref to its task. The returned value shares the catalog's
// characteristic and weight slices; resolving allocates nothing.
func (c *Catalog) Task(r Ref) Task { return c.snap.Load().tasks[r] }

// TypeOf returns the task type behind a Ref.
func (c *Catalog) TypeOf(r Ref) Type { return c.snap.Load().tasks[r].Type() }

// Lookup returns the Ref of a task already interned equal to t (same type,
// characteristics, and weights), without interning.
func (c *Catalog) Lookup(t Task) (Ref, bool) {
	return c.snap.Load().lookup(t)
}

func (s *catalogSnap) lookup(t Task) (Ref, bool) {
	for _, r := range s.byType[t.Type()] {
		if s.tasks[r].Equal(t) {
			return r, true
		}
	}
	return 0, false
}

// Intern returns the Ref of t, adding it to the catalog when no equal task
// is present. Tasks of the same type but different characteristic bags or
// weights intern separately.
func (c *Catalog) Intern(t Task) Ref {
	if r, ok := c.snap.Load().lookup(t); ok {
		return r
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.snap.Load()
	if r, ok := old.lookup(t); ok { // raced with another Intern
		return r
	}
	if len(old.tasks) > int(^Ref(0)) {
		panic(fmt.Sprintf("task: catalog overflow at %d tasks", len(old.tasks)))
	}
	r := Ref(len(old.tasks))
	next := &catalogSnap{
		tasks:  append(old.tasks[:len(old.tasks):len(old.tasks)], t),
		byType: make(map[Type][]Ref, len(old.byType)+1),
	}
	for typ, refs := range old.byType {
		next.byType[typ] = refs
	}
	bucket := next.byType[t.Type()]
	next.byType[t.Type()] = append(bucket[:len(bucket):len(bucket)], r)
	c.snap.Store(next)
	return r
}

// CatalogOf interns every task of a universe in order, so the Ref of
// universe task i equals i (universe tasks are indexed by Type). Seeding
// pipelines that address tasks by universe index get ref translation for
// free.
func CatalogOf(u Universe) *Catalog {
	c := NewCatalog()
	for _, t := range u.Tasks {
		c.Intern(t)
	}
	return c
}
