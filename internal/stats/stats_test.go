package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Fatal("single-sample std not 0")
	}
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty minmax not zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	// Out-of-range q clamps.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Fatal("q clamping broken")
	}
	// Input not mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Fatal("input sorted in place")
	}
}

func TestMovingAvg(t *testing.T) {
	got := MovingAvg([]float64{1, 2, 3, 4}, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("moving avg = %v", got)
		}
	}
	// Window 1 copies.
	src := []float64{1, 2}
	cp := MovingAvg(src, 1)
	cp[0] = 99
	if src[0] == 99 {
		t.Fatal("window-1 shares storage")
	}
}

func TestDownsample(t *testing.T) {
	got := Downsample([]float64{0, 1, 2, 3, 4, 5, 6}, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("downsample = %v", got)
	}
	// Last element always kept.
	got = Downsample([]float64{0, 1, 2, 3}, 3)
	if got[len(got)-1] != 3 {
		t.Fatalf("last element dropped: %v", got)
	}
	if len(Downsample(nil, 3)) != 0 {
		t.Fatal("empty downsample not empty")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("a", []float64{1, 2})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.X[1] != 1 {
		t.Fatal("x values not indices")
	}
	bad := Series{Name: "b", X: []float64{0}, Y: []float64{1, 2}}
	if bad.Validate() == nil {
		t.Fatal("length mismatch accepted")
	}
	nan := NewSeries("c", []float64{math.NaN()})
	if nan.Validate() == nil {
		t.Fatal("NaN accepted")
	}
}

func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip non-finite inputs and magnitudes whose sum would
			// overflow float64 — the invariant under test is ordering, not
			// overflow behavior.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		lo, hi := MinMax(xs)
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64, q1, q2 float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
