// Package stats provides the small numeric helpers the experiment runners
// and reports share: means, standard deviations, quantiles, moving
// averages, and (x, y) series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation, or 0 for fewer than two
// samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMax returns the smallest and largest values; both 0 for an empty
// slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation on
// the sorted copy of xs; 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// MovingAvg returns the trailing moving average of window w (w <= 1 returns
// a copy).
func MovingAvg(xs []float64, w int) []float64 {
	out := make([]float64, len(xs))
	if w <= 1 {
		copy(out, xs)
		return out
	}
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= w {
			sum -= xs[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Downsample keeps every k-th element (k >= 1), always including the last.
func Downsample(xs []float64, k int) []float64 {
	if k <= 1 || len(xs) == 0 {
		return append([]float64(nil), xs...)
	}
	var out []float64
	for i := 0; i < len(xs); i += k {
		out = append(out, xs[i])
	}
	if (len(xs)-1)%k != 0 {
		out = append(out, xs[len(xs)-1])
	}
	return out
}

// Series is a named (x, y) sequence — one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries builds a series with X = 0..len(y)-1.
func NewSeries(name string, y []float64) Series {
	x := make([]float64, len(y))
	for i := range x {
		x[i] = float64(i)
	}
	return Series{Name: name, X: x, Y: y}
}

// Validate checks that X and Y have equal nonzero length and are finite.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("stats: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	for i := range s.Y {
		if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
			return fmt.Errorf("stats: series %q has non-finite y[%d]", s.Name, i)
		}
	}
	return nil
}
