package sim

import (
	"bytes"
	"fmt"
	"maps"
	"slices"
	"testing"

	"siot/internal/adversary"
	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// These tests pin the parallel setup pipeline's determinism contract: the
// sharded population build and the sharded seeding pass must produce
// byte-identical roles, behaviors, CSR adjacency, and store contents at
// every worker-pool width.

// setupTestNet returns a randomized community network for the equivalence
// tests (distinct from the calibrated paper profiles).
func setupTestNet(t *testing.T, seed uint64) *socialgen.Network {
	t.Helper()
	profile := socialgen.Profile{
		Name: fmt.Sprintf("setuptest-%d", seed), Nodes: 300, Edges: 2100,
		Communities: 6, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 5, FeaturesPerNode: 2,
	}
	return socialgen.Generate(profile, seed)
}

// assertSamePopulation requires two populations to be byte-identical:
// roles, per-agent behaviors, and the full CSR adjacency.
func assertSamePopulation(t *testing.T, label string, want, got *Population) {
	t.Helper()
	if !slices.Equal(want.Trustors, got.Trustors) || !slices.Equal(want.Trustees, got.Trustees) ||
		!slices.Equal(want.Attackers, got.Attackers) {
		t.Fatalf("%s: role lists differ", label)
	}
	for i, w := range want.Agents {
		g := got.Agents[i]
		if w.Kind != g.Kind || w.Theta != g.Theta || w.Energy != g.Energy {
			t.Fatalf("%s: agent %d differs: %+v vs %+v", label, i, w, g)
		}
		if w.Behavior.BaseCompetence != g.Behavior.BaseCompetence ||
			w.Behavior.Responsibility != g.Behavior.Responsibility ||
			w.Behavior.Malice != g.Behavior.Malice ||
			!maps.Equal(w.Behavior.Competence, g.Behavior.Competence) {
			t.Fatalf("%s: agent %d behavior differs:\nwant %+v\ngot  %+v", label, i, w.Behavior, g.Behavior)
		}
	}
	if !slices.Equal(want.adjOff, got.adjOff) || !slices.Equal(want.adjTo, got.adjTo) ||
		!slices.Equal(want.trusteeOff, got.trusteeOff) || !slices.Equal(want.trusteeTo, got.trusteeTo) ||
		!slices.Equal(want.candMask, got.candMask) {
		t.Fatalf("%s: CSR adjacency differs", label)
	}
}

// storeSnapshot serializes every agent's store — records and usage logs —
// so two populations' trust state can be compared byte for byte.
func storeSnapshot(t *testing.T, p *Population) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, a := range p.Agents {
		if err := a.Store.Save(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestPopulationParallelEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		net := setupTestNet(t, seed)
		build := func(workers int, atk AttackConfig) *Population {
			cfg := DefaultPopulationConfig(seed)
			cfg.Theta = 0.3
			cfg.Parallelism = workers
			cfg.Attack = atk
			return NewPopulation(net, cfg)
		}
		attack := AttackConfig{Model: adversary.BadMouthing{}, Attackers: 15}
		for _, atk := range []AttackConfig{{}, attack} {
			want := build(1, atk)
			for _, workers := range []int{4, 8} {
				label := fmt.Sprintf("seed=%d attack=%v workers=%d", seed, atk.Enabled(), workers)
				assertSamePopulation(t, label, want, build(workers, atk))
			}
		}
	}
}

func TestSeedParallelEquivalence(t *testing.T) {
	type variant struct {
		name string
		run  func(p *Population, setup TransitivitySetup, seed uint64, workers int) [][]task.Task
	}
	variants := []variant{
		{"standard", (*Population).SeedParallel},
		{"features", (*Population).SeedFeaturesParallel},
	}
	for _, seed := range []uint64{5, 23} {
		net := setupTestNet(t, seed)
		attack := AttackConfig{Model: adversary.OnOff{Period: 6, Duty: 0.5}, Attackers: 10}
		for _, atk := range []AttackConfig{{}, attack} {
			for _, v := range variants {
				seedOnce := func(workers int) ([][]task.Task, []byte, *Population) {
					cfg := DefaultPopulationConfig(seed)
					cfg.Attack = atk
					p := NewPopulation(net, cfg)
					setup := DefaultTransitivitySetup(5, p.Rand("setup-equivalence"))
					exp := v.run(p, setup, seed, workers)
					return exp, storeSnapshot(t, p), p
				}
				wantExp, wantStores, wantPop := seedOnce(1)
				if len(wantStores) == 0 {
					t.Fatalf("%s seed=%d: empty store snapshot", v.name, seed)
				}
				for _, workers := range []int{4, 8} {
					label := fmt.Sprintf("%s seed=%d attack=%v workers=%d", v.name, seed, atk.Enabled(), workers)
					gotExp, gotStores, gotPop := seedOnce(workers)
					if len(gotExp) != len(wantExp) {
						t.Fatalf("%s: experienced length differs", label)
					}
					for i := range wantExp {
						if len(gotExp[i]) != len(wantExp[i]) {
							t.Fatalf("%s: node %d experienced %d tasks, want %d", label, i, len(gotExp[i]), len(wantExp[i]))
						}
						for j := range wantExp[i] {
							if gotExp[i][j].Type() != wantExp[i][j].Type() {
								t.Fatalf("%s: node %d task %d differs", label, i, j)
							}
						}
					}
					if !bytes.Equal(wantStores, gotStores) {
						t.Fatalf("%s: store contents differ from the serial pass", label)
					}
					// The seeding pass also draws the ground-truth
					// capabilities; they must match too.
					assertSamePopulation(t, label, wantPop, gotPop)
				}
			}
		}
	}
}

// TestSeedParallelMatchesSeedLoop cross-checks the bulk ingest against the
// per-record reference: replaying the per-node draws through plain
// Store.Seed calls must produce the same stores the SeedSorted pipeline
// built.
func TestSeedParallelMatchesSeedLoop(t *testing.T) {
	const seed = 29
	net := setupTestNet(t, seed)
	build := func() (*Population, TransitivitySetup) {
		p := NewPopulation(net, DefaultPopulationConfig(seed))
		return p, DefaultTransitivitySetup(5, p.Rand("setup-equivalence"))
	}
	bulk, setup := build()
	bulk.SeedParallel(setup, seed, 4)

	loop, _ := build()
	// Reference: identical per-node draws, applied record by record in
	// node order through the legacy Seed path.
	for node := range loop.Agents {
		ctx := agentSeedCtx{p: loop, node: node, r: rng.Split(seed, "seed-experience:"+net.Profile.Name, node)}
		ctx.emit = func(u core.AgentID, ti int, s float64) {
			loop.Agent(u).Store.Seed(core.AgentID(node), setup.Universe.Tasks[ti],
				core.Expectation{S: s, G: s, D: 1 - s, C: 0})
		}
		seedNode(&ctx, setup)
	}
	if !bytes.Equal(storeSnapshot(t, bulk), storeSnapshot(t, loop)) {
		t.Fatal("bulk-seeded stores differ from the per-record Seed reference")
	}
}
