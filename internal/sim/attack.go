package sim

import (
	"siot/internal/adversary"
	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/task"
)

// AttackConfig injects a trust-attack scenario into a population: a subset
// of the trustees runs an adversary.Attack model against the delegation
// rounds.
type AttackConfig struct {
	// Model is the attack every attacker runs; nil disables the adversary
	// subsystem entirely, making the engine's attack hook a guaranteed
	// no-op.
	Model adversary.Attack
	// Attackers is the number of trustees converted into attackers,
	// clamped to the trustee count; 0 disables the subsystem.
	Attackers int
}

// Enabled reports whether the scenario actually injects attackers.
func (c AttackConfig) Enabled() bool { return c.Model != nil && c.Attackers > 0 }

// installAttackers converts a deterministic subset of the trustees into
// attackers. It draws from a dedicated stream so populations built without
// an attack are bit-identical to those built before the adversary subsystem
// existed.
func (p *Population) installAttackers() {
	cfg := p.cfg.Attack
	n := cfg.Attackers
	if n > len(p.Trustees) {
		n = len(p.Trustees)
	}
	r := rng.New(p.cfg.Seed, "adversary", p.Net.Profile.Name)
	perm := r.Perm(len(p.Trustees))
	p.attackers = make(map[core.AgentID]bool, n)
	for _, i := range perm[:n] {
		id := p.Trustees[i]
		p.Agents[id].Kind = agent.KindDishonestTrustee
		p.Attackers = append(p.Attackers, id)
		p.attackers[id] = true
	}
	sortIDs(p.Attackers)
}

// IsAttacker reports whether id belongs to the attack ring.
func (p *Population) IsAttacker(id core.AgentID) bool { return p.attackers[id] }

// AttackEnabled reports whether this population carries an attack scenario.
func (p *Population) AttackEnabled() bool { return p.cfg.Attack.Enabled() && len(p.Attackers) > 0 }

// Forget makes every peer drop its memory of id — experience records and
// usage logs — as if the agent had left the network and a stranger had
// joined in its place. The agent's own store (its knowledge of others) is
// untouched: a whitewashing attacker keeps what it learned.
func (p *Population) Forget(id core.AgentID) {
	for _, a := range p.Agents {
		if a.ID != id {
			a.Store.Forget(id)
		}
	}
}

// attackContext builds the per-round hook context for the population's
// attack model. The label folds in the engine phase (but deliberately NOT
// the model name) so adversary streams never collide with engine or
// population streams while equivalent models stay bit-identical: a
// Collusion ring of size 1 draws exactly what its underlying solo attack
// would, and OnOff with Duty=1 draws exactly what the Honest null model
// would (nothing).
func (e *Engine) attackContext(label string, round int) adversary.Context {
	p := e.Pop
	return adversary.Context{
		Seed:  p.cfg.Seed,
		Label: "attack:" + label,
		Round: round,
		Ring:  p.Attackers,
	}
}

// recommendedTW gathers one-hop recommendations about candidate y on task
// tk from the recommenders in nbrs — the trustor's social neighbors,
// precomputed by Engine.init and including y itself (the self-claim
// channel of service discovery). Each recommender reports what the frozen
// view captured of its store — the z→y edge's records — except that
// attackers may forge their report through the attack model's
// recommendation hook. A recommender without a social edge to y holds no
// records about it (experience lives only along edges), so an EdgeIndex
// miss contributes nothing, exactly like an empty live store. Returns the
// mean report, or ok=false when nobody has anything to say. Reads only the
// view: safe inside the engine's lock-free compute phase.
func (e *Engine) recommendedTW(view *core.RoundView, ctx adversary.Context, nbrs []core.AgentID, y core.AgentID, tk task.Task) (float64, bool) {
	p := e.Pop
	model := p.cfg.Attack.Model
	var sum float64
	n := 0
	for _, z := range nbrs {
		if p.attackers[z] {
			if tw, forged := model.ForgeRecommendation(ctx, z, y); forged {
				sum += tw
				n++
				continue
			}
		}
		if edge, ok := view.EdgeIndex(z, y); ok {
			if tw, ok := view.BestTW(edge, tk); ok {
				sum += tw
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// applyAttack is the engine's pre-merge hook: between the parallel compute
// phase and the single-threaded merge, attackers rewrite the outcomes of
// the delegations they served this round (service sabotage). Each rewrite
// draws from the attacker's private (round, agent) sub-stream, so the pass
// is independent of iteration order and of how many trustors hit the same
// attacker.
func (e *Engine) applyAttack(ctx adversary.Context, acts []mutualityAction) {
	p := e.Pop
	model := p.cfg.Attack.Model
	for i := range acts {
		a := &acts[i]
		if !a.accepted || !p.attackers[a.trustee] {
			continue
		}
		if model.Active(ctx, a.trustee) {
			a.out = model.SabotageOutcome(ctx, a.trustee, a.out)
		}
	}
}

// applyChurn runs the post-merge identity-churn hook: attackers that shed
// their identity this round are forgotten by every peer, in ascending
// attacker order.
func (e *Engine) applyChurn(ctx adversary.Context) {
	p := e.Pop
	model := p.cfg.Attack.Model
	for _, a := range p.Attackers {
		if model.Churn(ctx, a) {
			p.Forget(a)
		}
	}
}

// PerceivedTrust measures how the trustors currently see their candidate
// trustees on task tk — through the same lens the delegation rounds use:
// own experience first, one-hop recommendations (attackers forging theirs)
// for strangers, the neutral prior when nobody knows anything. It returns
// the averages over honest trustee candidates and attacker candidates; the
// difference is the trust gap the resilience metrics track. Read-only: it
// publishes a probe epoch through the Rounds handle, reads the snapshot,
// and retires it (the live stores are untouched, so the snapshot is exact).
func (e *Engine) PerceivedTrust(round int, tk task.Task) (honest, attacker float64) {
	e.init()
	p := e.Pop
	var ctx adversary.Context
	enabled := p.AttackEnabled()
	if enabled {
		ctx = e.attackContext(e.mutualityLabel(), round)
	}
	e.Rounds.Publish(p.RoundView(e.workers(), epochArenas))
	ep := e.Rounds.Acquire()
	view := ep.View()
	var honestSum, attackerSum float64
	honestN, attackerN := 0, 0
	for i := range p.Trustors {
		for k, y := range e.trusteeNbrs[i] {
			tw := e.candidateTW(view, enabled, ctx, i, e.trusteeEdges[i][k], y, tk)
			if p.attackers[y] {
				attackerSum += tw
				attackerN++
			} else {
				honestSum += tw
				honestN++
			}
		}
	}
	ep.Release()
	e.Rounds.Retire()
	if honestN > 0 {
		honest = honestSum / float64(honestN)
	}
	if attackerN > 0 {
		attacker = attackerSum / float64(attackerN)
	}
	return honest, attacker
}

// Perceived is one trust model's probe outcome: the mean perceived trust
// of honest trustee candidates and of attacker candidates (their
// difference is the model's trust gap).
type Perceived struct {
	Honest   float64
	Attacker float64
}

// PerceivedTrustModels is PerceivedTrust evaluated once per model in a
// single probe epoch: one capture, one shared EdgeMemo (trainable models
// fit on it exactly once), and every model scored over the same snapshot.
// Unlike PerceivedTrust — whose own-experience lens is the rounds'
// policy-agnostic RoundView.BestTW — each model here sees direct edges
// and one-hop recommendations through its own single-edge lens
// (EdgeMemo.ModelEdgeTW), so the cross-model resilience matrix compares
// how each model's own arithmetic perceives the attack. Attack forgeries
// are asserted numbers, identical under every model. Read-only, like
// PerceivedTrust.
func (e *Engine) PerceivedTrustModels(round int, tk task.Task, models []core.TrustModel) []Perceived {
	e.init()
	p := e.Pop
	var ctx adversary.Context
	enabled := p.AttackEnabled()
	if enabled {
		ctx = e.attackContext(e.mutualityLabel(), round)
	}
	e.Rounds.Publish(p.RoundView(e.workers(), epochArenas))
	ep := e.Rounds.Acquire()
	view := ep.View()
	memo := core.NewEdgeMemoPooled(view.TrustView, p.cfg.Update.Norm, e.workers(), epochArenas)
	probe := []task.Task{tk}
	out := make([]Perceived, len(models))
	for mi, m := range models {
		memo.RequireModel(m, probe)
		var honestSum, attackerSum float64
		honestN, attackerN := 0, 0
		for i := range p.Trustors {
			for k, y := range e.trusteeNbrs[i] {
				tw := e.candidateModelTW(view, memo, m, enabled, ctx, i, e.trusteeEdges[i][k], y, tk)
				if p.attackers[y] {
					attackerSum += tw
					attackerN++
				} else {
					honestSum += tw
					honestN++
				}
			}
		}
		if honestN > 0 {
			out[mi].Honest = honestSum / float64(honestN)
		}
		if attackerN > 0 {
			out[mi].Attacker = attackerSum / float64(attackerN)
		}
	}
	memo.Release()
	ep.Release()
	e.Rounds.Retire()
	return out
}

// candidateModelTW is candidateTW through a model's single-edge lens:
// direct experience via ModelEdgeTW, the recommendation channel (attackers
// forging) for strangers, the neutral prior last.
func (e *Engine) candidateModelTW(view *core.RoundView, memo *core.EdgeMemo, m core.TrustModel, attacked bool, ctx adversary.Context, i int, edge int32, y core.AgentID, tk task.Task) float64 {
	if tw, ok := memo.ModelEdgeTW(m, edge, tk); ok {
		return tw
	}
	if attacked {
		if rec, ok := e.recommendedModelTW(view, memo, m, ctx, e.socialNbrs[i], y, tk); ok {
			return rec
		}
	}
	return 0.5
}

// recommendedModelTW is recommendedTW with each recommender's z→y report
// read through the model's single-edge lens instead of RoundView.BestTW.
func (e *Engine) recommendedModelTW(view *core.RoundView, memo *core.EdgeMemo, m core.TrustModel, ctx adversary.Context, nbrs []core.AgentID, y core.AgentID, tk task.Task) (float64, bool) {
	p := e.Pop
	model := p.cfg.Attack.Model
	var sum float64
	n := 0
	for _, z := range nbrs {
		if p.attackers[z] {
			if tw, forged := model.ForgeRecommendation(ctx, z, y); forged {
				sum += tw
				n++
				continue
			}
		}
		if edge, ok := view.EdgeIndex(z, y); ok {
			if tw, ok := memo.ModelEdgeTW(m, edge, tk); ok {
				sum += tw
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
