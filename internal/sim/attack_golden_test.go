package sim

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"siot/internal/adversary"
	"siot/internal/task"
)

var updateAttackGolden = flag.Bool("update-attack-golden", false,
	"regenerate testdata/attack_rounds.golden from the current round implementation")

// attackRoundDigest plays the canonical attacked-round scenario (the
// TestAttackParallelismInvariant configuration: twitter profile, seed 11,
// 20 attackers, 12 rounds) at the given parallelism and digests everything
// observable: the counters, the full post-run trust state, and a
// PerceivedTrust probe after the final round.
func attackRoundDigest(t *testing.T, model adversary.Attack, parallelism int) string {
	t.Helper()
	var atk AttackConfig
	if model != nil {
		atk = AttackConfig{Model: model, Attackers: 20}
	}
	p := attackPopulation(t, 11, atk, parallelism)
	eng := NewEngine(p, "attack-test")
	tk := task.Uniform(1, task.CharCompute)
	var c MutualityCounters
	for round := 0; round < 12; round++ {
		eng.MutualityRound(round, tk, &c)
	}
	honest, attacker := eng.PerceivedTrust(11, tk)
	h := sha256.New()
	fmt.Fprintf(h, "counters %+v\nperceived %v %v\n", c, honest, attacker)
	fmt.Fprint(h, fingerprint(p))
	return hex.EncodeToString(h.Sum(nil))
}

// attackGoldenModels is the fixed model set of the round-fingerprint golden
// file: the honest null model, every solo attack, two collusion wrappers,
// and the no-attack baseline (keyed "none") whose hook-free round must also
// stay byte-stable.
func attackGoldenModels() map[string]adversary.Attack {
	models := map[string]adversary.Attack{"none": nil}
	for _, m := range attackModels() {
		models[m.Name()] = m
	}
	return models
}

const attackGoldenPath = "testdata/attack_rounds.golden"

// TestAttackRoundsMatchGolden pins the attacked engine round byte-for-byte
// across refactors: the golden digests were generated on the pre-snapshot
// live-store round implementation, so any change to what a round reads,
// draws, or merges — for any attack model, at P=1 and P=8 — shows up as a
// digest mismatch. Regenerate (deliberately!) with -update-attack-golden.
func TestAttackRoundsMatchGolden(t *testing.T) {
	models := attackGoldenModels()
	if *updateAttackGolden {
		names := make([]string, 0, len(models))
		for name := range models {
			names = append(names, name)
		}
		sort.Strings(names)
		var sb strings.Builder
		sb.WriteString("# sha256 digests of the canonical attacked-round scenario (see attack_golden_test.go)\n")
		for _, name := range names {
			sb.WriteString(fmt.Sprintf("%s %s\n", name, attackRoundDigest(t, models[name], 1)))
		}
		if err := os.MkdirAll(filepath.Dir(attackGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(attackGoldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d digests", attackGoldenPath, len(names))
		return
	}
	f, err := os.Open(attackGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing (generate with -update-attack-golden): %v", err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(models) {
		t.Fatalf("golden file has %d digests, want %d (regenerate with -update-attack-golden)", len(want), len(models))
	}
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			expect, ok := want[name]
			if !ok {
				t.Fatalf("no golden digest for model %q", name)
			}
			for _, parallelism := range []int{1, 8} {
				if got := attackRoundDigest(t, model, parallelism); got != expect {
					t.Errorf("P=%d digest %s differs from pre-refactor golden %s", parallelism, got, expect)
				}
			}
		})
	}
}
