package sim

import (
	"math"
	"testing"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/graph"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// smallNet returns a small generated network for fast tests.
func smallNet(t *testing.T) *socialgen.Network {
	t.Helper()
	p := socialgen.Profile{
		Name: "test", Nodes: 60, Edges: 240,
		Communities: 5, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 4, FeaturesPerNode: 2,
	}
	return socialgen.Generate(p, 1)
}

func TestNewPopulationRoles(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(1))
	n := net.Graph.NumNodes()
	if len(p.Trustors) != int(0.4*float64(n)) {
		t.Fatalf("trustors = %d", len(p.Trustors))
	}
	if len(p.Trustees) != int(0.4*float64(n)) {
		t.Fatalf("trustees = %d", len(p.Trustees))
	}
	// Roles are disjoint.
	seen := map[core.AgentID]bool{}
	for _, id := range p.Trustors {
		seen[id] = true
	}
	for _, id := range p.Trustees {
		if seen[id] {
			t.Fatalf("node %d is both trustor and trustee", id)
		}
	}
	for _, a := range p.Agents {
		if a == nil {
			t.Fatal("nil agent")
		}
	}
}

func TestNewPopulationDeterministic(t *testing.T) {
	net := smallNet(t)
	a := NewPopulation(net, DefaultPopulationConfig(7))
	b := NewPopulation(net, DefaultPopulationConfig(7))
	for i := range a.Trustors {
		if a.Trustors[i] != b.Trustors[i] {
			t.Fatal("role assignment not deterministic")
		}
	}
	if a.Agents[0].Behavior.BaseCompetence != b.Agents[0].Behavior.BaseCompetence {
		t.Fatal("behaviors not deterministic")
	}
}

func TestNewPopulationValidation(t *testing.T) {
	net := smallNet(t)
	cfg := DefaultPopulationConfig(1)
	cfg.TrustorFrac = 0.7
	cfg.TrusteeFrac = 0.7
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on fractions summing above 1")
		}
	}()
	NewPopulation(net, cfg)
}

func TestTrusteeNeighbors(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(2))
	for _, x := range p.Trustors {
		for _, y := range p.TrusteeNeighbors(x) {
			if k := p.Agent(y).Kind; k != agent.KindTrustee && k != agent.KindDishonestTrustee {
				t.Fatalf("non-trustee neighbor %v (%v)", y, k)
			}
			if !net.Graph.HasEdge(graph.NodeID(x), graph.NodeID(y)) {
				t.Fatalf("non-neighbor returned: %v-%v", x, y)
			}
		}
	}
}

func TestMutualityRoundCounters(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(3))
	tk := task.Uniform(1, task.CharGPS)
	var c MutualityCounters
	for round := 0; round < 10; round++ {
		MutualityRound(p, round, tk, &c)
	}
	if c.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if c.Successes+c.Unavailable > c.Requests {
		t.Fatalf("inconsistent counters: %+v", c)
	}
	if c.Uses == 0 {
		t.Fatal("no resource uses logged")
	}
	if c.Abuses > c.Uses {
		t.Fatalf("abuses exceed uses: %+v", c)
	}
	for _, rate := range []float64{c.SuccessRate(), c.UnavailableRate(), c.AbuseRate()} {
		if rate < 0 || rate > 1 {
			t.Fatalf("rate out of range: %v", rate)
		}
	}
}

func TestMutualityThetaReducesAbuse(t *testing.T) {
	// The headline claim of Fig. 7: raising θ lowers the abuse rate and
	// raises the unavailable rate.
	net := smallNet(t)
	run := func(theta float64) MutualityCounters {
		cfg := DefaultPopulationConfig(4)
		cfg.Theta = theta
		p := NewPopulation(net, cfg)
		tk := task.Uniform(1, task.CharGPS)
		var c MutualityCounters
		for round := 0; round < 40; round++ {
			MutualityRound(p, round, tk, &c)
		}
		return c
	}
	open := run(0)
	strict := run(0.6)
	if open.Unavailable != 0 {
		t.Fatalf("theta=0 produced unavailability: %+v", open)
	}
	if strict.AbuseRate() >= open.AbuseRate() {
		t.Fatalf("abuse did not drop: open=%v strict=%v", open.AbuseRate(), strict.AbuseRate())
	}
	if strict.UnavailableRate() <= open.UnavailableRate() {
		t.Fatalf("unavailability did not rise: open=%v strict=%v",
			open.UnavailableRate(), strict.UnavailableRate())
	}
}

func TestSeedExperience(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(5))
	r := p.Rand("seed")
	setup := DefaultTransitivitySetup(5, r)
	experienced := SeedExperience(p, setup, 5)

	holders := 0
	for node, tasks := range experienced {
		if len(tasks) != setup.TasksPerNode {
			t.Fatalf("node %d has %d experienced tasks", node, len(tasks))
		}
		if len(tasks) == 2 && tasks[0].Type() == tasks[1].Type() {
			t.Fatalf("node %d has duplicate experienced tasks", node)
		}
		// Records about this node live only at its social neighbors, and a
		// holder of one experienced task holds both.
		id := core.AgentID(node)
		for _, u := range p.Neighbors(id) {
			n := 0
			for _, tk := range tasks {
				if _, ok := p.Agent(u).Store.Record(id, tk.Type()); ok {
					n++
				}
			}
			if n != 0 && n != len(tasks) {
				t.Fatalf("neighbor %d holds partial records about %d", u, node)
			}
			holders += n
		}
	}
	if holders == 0 {
		t.Fatal("no experience records seeded at all")
	}
	// Capabilities assigned for the full alphabet.
	for c := 0; c < setup.Universe.NumCharacteristics; c++ {
		if _, ok := p.Agents[0].Behavior.Competence[task.Characteristic(c)]; !ok {
			t.Fatalf("characteristic %d has no capability", c)
		}
	}
}

func TestTransitivityPolicyOrdering(t *testing.T) {
	// The paper's central transitivity result: aggressive finds at least as
	// many trustees as conservative, which beats traditional; unavailable
	// rates order the other way.
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(6))
	r := p.Rand("transit")
	setup := DefaultTransitivitySetup(5, r)
	SeedExperience(p, setup, 6)

	trad := TransitivityRun(p, setup, core.PolicyTraditional, 6)
	cons := TransitivityRun(p, setup, core.PolicyConservative, 6)
	aggr := TransitivityRun(p, setup, core.PolicyAggressive, 6)

	if cons.AvgPotentialTrustees() < trad.AvgPotentialTrustees() {
		t.Fatalf("conservative found fewer trustees (%v) than traditional (%v)",
			cons.AvgPotentialTrustees(), trad.AvgPotentialTrustees())
	}
	if aggr.AvgPotentialTrustees() < cons.AvgPotentialTrustees() {
		t.Fatalf("aggressive found fewer trustees (%v) than conservative (%v)",
			aggr.AvgPotentialTrustees(), cons.AvgPotentialTrustees())
	}
	if aggr.UnavailableRate() > trad.UnavailableRate() {
		t.Fatalf("aggressive unavailability %v above traditional %v",
			aggr.UnavailableRate(), trad.UnavailableRate())
	}
	if len(trad.InquiredPerTrustor) != trad.Requests {
		t.Fatal("inquired series length mismatch")
	}
}

func TestTransitivityStatsRates(t *testing.T) {
	s := TransitivityStats{Requests: 10, Successes: 4, Unavailable: 3, PotentialTrustees: 25}
	if s.SuccessRate() != 0.4 || s.UnavailableRate() != 0.3 || s.AvgPotentialTrustees() != 2.5 {
		t.Fatalf("rates wrong: %+v", s)
	}
	var zero TransitivityStats
	if zero.SuccessRate() != 0 {
		t.Fatal("zero requests rate not 0")
	}
}

func TestNetProfitStrategies(t *testing.T) {
	// Fig. 13's claim: the net-profit strategy converges to a higher
	// average profit than the success-rate strategy.
	net := smallNet(t)
	iters := 600
	mean := func(strategy Strategy) float64 {
		p := NewPopulation(net, DefaultPopulationConfig(8))
		series := NetProfitRun(p, iters, strategy, 8)
		var sum float64
		for _, v := range series[iters/2:] { // converged half
			sum += v
		}
		return sum / float64(iters/2)
	}
	first := mean(StrategySuccessRate)
	second := mean(StrategyNetProfit)
	if second <= first {
		t.Fatalf("net-profit strategy (%v) did not beat success-rate strategy (%v)", second, first)
	}
	if math.IsNaN(first) || math.IsNaN(second) {
		t.Fatal("NaN profits")
	}
}

func TestNetProfitSeriesLength(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(9))
	series := NetProfitRun(p, 50, StrategyNetProfit, 9)
	if len(series) != 50 {
		t.Fatalf("series length %d", len(series))
	}
	for _, v := range series {
		if v < -2 || v > 1 {
			t.Fatalf("profit %v outside [-2,1]", v)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategySuccessRate.String() != "first strategy" || StrategyNetProfit.String() != "second strategy" {
		t.Fatal("strategy names wrong")
	}
}
