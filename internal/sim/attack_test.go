package sim

import (
	"fmt"
	"testing"

	"siot/internal/adversary"
	"siot/internal/core"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// attackModels enumerates every concrete adversary model (plus collusion
// wrappers) for the property tests.
func attackModels() []adversary.Attack {
	return []adversary.Attack{
		adversary.Honest{},
		adversary.BadMouthing{},
		adversary.BallotStuffing{},
		adversary.SelfPromotion{},
		adversary.OnOff{Period: 8, Duty: 0.5},
		adversary.Whitewashing{RejoinEvery: 7},
		adversary.Collusion{Of: adversary.BadMouthing{}},
		adversary.Collusion{Of: adversary.OnOff{Period: 8, Duty: 0.25}},
	}
}

// attackPopulation builds a small attacked population on the twitter
// profile (the smallest evaluation network).
func attackPopulation(t *testing.T, seed uint64, atk AttackConfig, parallelism int) *Population {
	t.Helper()
	net := socialgen.Generate(socialgen.Twitter(), seed)
	cfg := DefaultPopulationConfig(seed)
	cfg.Parallelism = parallelism
	cfg.Attack = atk
	return NewPopulation(net, cfg)
}

// runAttackRounds plays rounds and returns the counters.
func runAttackRounds(p *Population, rounds int) MutualityCounters {
	eng := NewEngine(p, "attack-test")
	tk := task.Uniform(1, task.CharCompute)
	var c MutualityCounters
	for round := 0; round < rounds; round++ {
		eng.MutualityRound(round, tk, &c)
	}
	return c
}

// fingerprint serializes every agent's full trust state, so two runs can be
// compared bit for bit.
func fingerprint(p *Population) string {
	out := ""
	for _, a := range p.Agents {
		for _, trustee := range a.Store.Trustees() {
			for _, r := range a.Store.Records(trustee) {
				out += fmt.Sprintf("%d>%d t%d %v %d;", a.ID, trustee, r.Task.Type(), r.Exp, r.Count)
			}
		}
	}
	for _, a := range p.Agents {
		for _, x := range p.Trustors {
			if l := a.Store.Usage(x); l != (core.UsageLog{}) {
				out += fmt.Sprintf("%d<%d %d/%d;", a.ID, x, l.Responsible, l.Abusive)
			}
		}
	}
	return out
}

// TestAttackExpectationsStayBounded is the core safety property: no attack
// model can push any agent's stored trust expectation outside [0, 1].
func TestAttackExpectationsStayBounded(t *testing.T) {
	for _, model := range attackModels() {
		t.Run(model.Name(), func(t *testing.T) {
			p := attackPopulation(t, 9, AttackConfig{Model: model, Attackers: 25}, 1)
			runAttackRounds(p, 30)
			for _, a := range p.Agents {
				for _, trustee := range a.Store.Trustees() {
					for _, r := range a.Store.Records(trustee) {
						for name, v := range map[string]float64{
							"S": r.Exp.S, "G": r.Exp.G, "D": r.Exp.D, "C": r.Exp.C,
						} {
							if v < 0 || v > 1 {
								t.Fatalf("agent %d record about %d: %s = %v outside [0,1]",
									a.ID, trustee, name, v)
							}
						}
						tw := r.TW(a.Store.Config().Norm)
						if tw < 0 || tw > 1 {
							t.Fatalf("agent %d record about %d: TW = %v outside [0,1]", a.ID, trustee, tw)
						}
					}
				}
			}
		})
	}
}

// TestOnOffFullDutyEqualsHonest pins the degeneration property end to end:
// an on-off attacker that never enters its malicious phase is bit-identical
// to the Honest null model — same counters, same trust state everywhere.
func TestOnOffFullDutyEqualsHonest(t *testing.T) {
	run := func(model adversary.Attack) (MutualityCounters, string) {
		p := attackPopulation(t, 5, AttackConfig{Model: model, Attackers: 20}, 1)
		c := runAttackRounds(p, 20)
		return c, fingerprint(p)
	}
	onC, onF := run(adversary.OnOff{Period: 10, Duty: 1})
	hoC, hoF := run(adversary.Honest{})
	if onC != hoC {
		t.Fatalf("counters differ:\nonoff duty=1: %+v\nhonest:       %+v", onC, hoC)
	}
	if onF != hoF {
		t.Fatal("trust state differs between OnOff{Duty:1} and Honest")
	}
}

// TestCollusionOfOneEqualsSolo pins the other degeneration property end to
// end: a collusion ring of size 1 runs bit-identically to the underlying
// solo attack.
func TestCollusionOfOneEqualsSolo(t *testing.T) {
	for _, solo := range []adversary.Attack{
		adversary.BadMouthing{},
		adversary.OnOff{Period: 6, Duty: 0.5},
		adversary.Whitewashing{RejoinEvery: 5},
	} {
		t.Run(solo.Name(), func(t *testing.T) {
			run := func(model adversary.Attack) (MutualityCounters, string) {
				p := attackPopulation(t, 5, AttackConfig{Model: model, Attackers: 1}, 1)
				c := runAttackRounds(p, 18)
				return c, fingerprint(p)
			}
			sC, sF := run(solo)
			wC, wF := run(adversary.Collusion{Of: solo})
			if sC != wC {
				t.Fatalf("counters differ:\nsolo:      %+v\ncollusion: %+v", sC, wC)
			}
			if sF != wF {
				t.Fatal("trust state differs between solo attack and collusion of size 1")
			}
		})
	}
}

// TestAttackParallelismInvariant extends the engine's determinism contract
// to attacked rounds: P=1 and P=8 must produce identical counters and trust
// state for every model.
func TestAttackParallelismInvariant(t *testing.T) {
	for _, model := range attackModels() {
		t.Run(model.Name(), func(t *testing.T) {
			run := func(parallelism int) (MutualityCounters, string) {
				p := attackPopulation(t, 11, AttackConfig{Model: model, Attackers: 20}, parallelism)
				c := runAttackRounds(p, 12)
				return c, fingerprint(p)
			}
			c1, f1 := run(1)
			c8, f8 := run(8)
			if c1 != c8 {
				t.Fatalf("counters differ between P=1 and P=8:\nP=1: %+v\nP=8: %+v", c1, c8)
			}
			if f1 != f8 {
				t.Fatal("trust state differs between P=1 and P=8")
			}
		})
	}
}

// TestWhitewashChurnWipesMemory checks the identity-churn hook end to end:
// right after a rejoin round, no peer holds records or usage logs about any
// attacker, while the attackers keep their own knowledge of others.
func TestWhitewashChurnWipesMemory(t *testing.T) {
	p := attackPopulation(t, 3, AttackConfig{Model: adversary.Whitewashing{RejoinEvery: 10}, Attackers: 15}, 1)
	eng := NewEngine(p, "attack-test")
	tk := task.Uniform(1, task.CharCompute)
	var c MutualityCounters
	for round := 0; round < 10; round++ { // churn fires after round 9
		eng.MutualityRound(round, tk, &c)
	}
	if c.AttackerDelegations == 0 {
		t.Fatal("no delegations landed on attackers; test proves nothing")
	}
	for _, a := range p.Agents {
		for _, atk := range p.Attackers {
			if a.ID == atk {
				continue
			}
			if len(a.Store.Records(atk)) != 0 {
				t.Fatalf("agent %d still has records about churned attacker %d", a.ID, atk)
			}
			if a.Store.Usage(atk) != (core.UsageLog{}) {
				t.Fatalf("agent %d still has usage logs about churned attacker %d", a.ID, atk)
			}
		}
	}
}

// TestAttackerInstallDeterministic pins attacker selection: same seed, same
// ring; and the ring is sorted, trustee-only, dishonest-kind.
func TestAttackerInstallDeterministic(t *testing.T) {
	atk := AttackConfig{Model: adversary.BadMouthing{}, Attackers: 12}
	a := attackPopulation(t, 21, atk, 1)
	b := attackPopulation(t, 21, atk, 8)
	if len(a.Attackers) != 12 || len(b.Attackers) != 12 {
		t.Fatalf("ring sizes %d/%d, want 12", len(a.Attackers), len(b.Attackers))
	}
	for i := range a.Attackers {
		if a.Attackers[i] != b.Attackers[i] {
			t.Fatalf("rings differ at %d: %v vs %v", i, a.Attackers, b.Attackers)
		}
		if i > 0 && a.Attackers[i] <= a.Attackers[i-1] {
			t.Fatalf("ring not sorted: %v", a.Attackers)
		}
		if !a.IsAttacker(a.Attackers[i]) {
			t.Fatalf("IsAttacker(%d) = false", a.Attackers[i])
		}
	}
	// Population without an attack has no ring.
	p := attackPopulation(t, 21, AttackConfig{}, 1)
	if len(p.Attackers) != 0 || p.AttackEnabled() {
		t.Fatal("unattacked population reports attackers")
	}
}
