package sim

import (
	"fmt"
	"math/rand/v2"

	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/task"
)

// Strategy selects the trustee-choice rule of the Fig. 13 experiment.
type Strategy int

const (
	// StrategySuccessRate is the paper's "first strategy": delegate to the
	// trustee with the highest expected success rate.
	StrategySuccessRate Strategy = iota
	// StrategyNetProfit is the "second strategy" (eq. 23): maximize
	// Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ.
	StrategyNetProfit
)

// String names the strategy as in Fig. 13's legend.
func (s Strategy) String() string {
	if s == StrategySuccessRate {
		return "first strategy"
	}
	return "second strategy"
}

// trusteeTruth is the hidden (S*, G*, D*, C*) of one trustee: it succeeds
// with probability S*; success yields gain G* at cost C*, failure damage D*
// at cost C* ("we assign each potential trustee random values of the
// expected success rate, gain, damage, and cost ... in [0, 1]").
type trusteeTruth struct {
	S, G, D, C float64
}

// realizedProfit returns the trustor-side profit of one delegation.
func (t trusteeTruth) realizedProfit(success bool) float64 {
	if success {
		return t.G - t.C
	}
	return -t.D - t.C
}

// outcome converts one delegation into a trust-model observation.
func (t trusteeTruth) outcome(success bool) core.Outcome {
	o := core.Outcome{Success: success, Cost: t.C}
	if success {
		o.Gain = t.G
	} else {
		o.Damage = t.D
	}
	return o
}

// NetProfitRun iterates continuous task delegations under the given
// strategy and returns the average realized net profit of the trustors at
// every iteration — one curve of Fig. 13.
//
// Trustee ground truths are drawn once per run; trustor expectations start
// at the neutral prior and are updated with the store's forgetting factors
// after every delegation, so the curves show the learning dynamics of the
// two strategies.
func NetProfitRun(p *Population, iterations int, strategy Strategy, seed uint64) []float64 {
	r := rng.New(seed, "netprofit", p.Net.Profile.Name, strategy.String())
	truths := drawTruths(p, r)
	tk := task.Uniform(0, task.CharCompute) // one generic task type
	series := make([]float64, iterations)

	for it := 0; it < iterations; it++ {
		var sum float64
		active := 0
		for _, x := range p.Trustors {
			trustor := p.Agent(x)
			nbrs := p.TrusteeNeighbors(x)
			if len(nbrs) == 0 {
				continue
			}
			cands := make([]core.ExpCandidate, 0, len(nbrs))
			for _, y := range nbrs {
				rec, ok := trustor.Store.Record(y, tk.Type())
				exp := trustor.Store.Config().Init
				if ok {
					exp = rec.Exp
				}
				cands = append(cands, core.ExpCandidate{ID: y, Exp: exp})
			}
			var chosen core.ExpCandidate
			var ok bool
			if strategy == StrategySuccessRate {
				chosen, ok = core.BestBySuccessRate(cands)
			} else {
				chosen, ok = core.BestByNetProfit(cands)
			}
			if !ok {
				continue
			}
			truth := truths[chosen.ID]
			success := r.Float64() < truth.S
			sum += truth.realizedProfit(success)
			active++
			trustor.Store.Observe(chosen.ID, tk, truth.outcome(success), core.PerfectEnv())
		}
		if active > 0 {
			series[it] = sum / float64(active)
		}
	}
	return series
}

// NetProfitRunSelf iterates the eq. 23 strategy with, optionally, the
// trustor itself as one of the candidates (eq. 24): "although the agent has
// resource and capability to accomplish the task, he trusts and delegates
// the task to others if there is more net profit." With withSelf false the
// trustor must always delegate. Returns the average realized net profit per
// iteration.
func NetProfitRunSelf(p *Population, iterations int, withSelf bool, seed uint64) []float64 {
	r := rng.New(seed, "netprofit-self", p.Net.Profile.Name, fmt.Sprint(withSelf))
	truths := drawTruths(p, r)
	tk := task.Uniform(0, task.CharCompute)
	series := make([]float64, iterations)

	// The trustor knows its own competence exactly; self-execution has no
	// counterparty damage exposure beyond its own failure and a small cost.
	selfTruth := func(x core.AgentID) trusteeTruth {
		comp := p.Agent(x).Behavior.BaseCompetence
		return trusteeTruth{S: comp, G: comp * 0.9, D: (1 - comp) * 0.5, C: 0.1}
	}

	for it := 0; it < iterations; it++ {
		var sum float64
		active := 0
		for _, x := range p.Trustors {
			trustor := p.Agent(x)
			nbrs := p.TrusteeNeighbors(x)
			cands := make([]core.ExpCandidate, 0, len(nbrs))
			for _, y := range nbrs {
				rec, ok := trustor.Store.Record(y, tk.Type())
				exp := trustor.Store.Config().Init
				if ok {
					exp = rec.Exp
				}
				cands = append(cands, core.ExpCandidate{ID: y, Exp: exp})
			}
			st := selfTruth(x)
			selfExp := core.Expectation{S: st.S, G: st.G, D: st.D, C: st.C}

			var truth trusteeTruth
			var chosenID core.AgentID
			delegated := true
			if withSelf {
				chosen, ok := core.DecideWithSelf(selfExp, x, cands)
				chosenID, delegated = chosen.ID, ok
				if delegated {
					truth = truths[chosenID]
				} else {
					truth = st
				}
			} else {
				chosen, ok := core.BestByNetProfit(cands)
				if !ok {
					// No candidates at all: forced self-execution even in
					// the always-delegate arm.
					truth, delegated = st, false
				} else {
					chosenID, truth = chosen.ID, truths[chosen.ID]
				}
			}
			success := r.Float64() < truth.S
			sum += truth.realizedProfit(success)
			active++
			if delegated {
				trustor.Store.Observe(chosenID, tk, truth.outcome(success), core.PerfectEnv())
			}
		}
		if active > 0 {
			series[it] = sum / float64(active)
		}
	}
	return series
}

// drawTruths assigns hidden behavior parameters to every trustee.
func drawTruths(p *Population, r *rand.Rand) map[core.AgentID]trusteeTruth {
	truths := make(map[core.AgentID]trusteeTruth, len(p.Trustees))
	for _, y := range p.Trustees {
		truths[y] = trusteeTruth{
			S: r.Float64(), G: r.Float64(), D: r.Float64(), C: r.Float64(),
		}
	}
	return truths
}
