package sim

import (
	"cmp"
	"fmt"
	"math/rand/v2"
	"slices"

	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/task"
)

// This file implements the parallel experience-seeding pipeline — the setup
// half of the transitivity experiments. Seeding follows the engine's
// determinism recipe: every node draws its capabilities, experienced tasks,
// and record holders from a private rng sub-stream keyed on (seed, label,
// node), workers accumulate the resulting records locally, and the records
// merge in ascending (holder, trustee, task) order before a bulk per-holder
// Store.SeedSorted ingest. No draw and no write depends on goroutine
// scheduling, so the seeded stores are bit-identical at every worker count
// (TestSeedParallelEquivalence).

// seedEntry is one experience record in the compact wire format of the
// merge phase: the universe task index stands in for the task (the
// universe lists tasks indexed by type) and the drawn record value s for
// the expectation {S: s, G: s, D: 1-s, C: 0}. Keeping the struct small and
// pointer-free matters — a 100k-node pass accumulates and sorts ~1M of
// these, and carrying full task.Task values here made the GC scan the
// buffers continuously.
type seedEntry struct {
	holder  core.AgentID
	trustee core.AgentID
	taskIdx int32
	s       float64
}

// seedEmit collects one experience record during the per-node compute
// phase: holder u remembers the node on universe task ti with record
// value s.
type seedEmit func(u core.AgentID, ti int, s float64)

// SeedExperience prepares the ground truth and experience records:
//
//   - every node gets a per-characteristic capability drawn uniformly from
//     [0, 1] (stored in its agent behavior);
//   - every node is assigned TasksPerNode experienced task types;
//   - every social neighbor receives an experience record about the node
//     for those tasks, with expectation tracking the node's true capability
//     up to RecordNoise.
//
// All randomness derives from seed through per-node sub-streams, sharded
// over the population's configured worker pool; the result is bit-identical
// at every parallelism. It returns the per-node experienced task list for
// tests and reports.
func SeedExperience(p *Population, setup TransitivitySetup, seed uint64) [][]task.Task {
	return p.SeedParallel(setup, seed, p.setupWorkers())
}

// SeedExperienceFromFeatures is the Table 2 variant of SeedExperience:
// "some real-world node properties of the three social networks ...
// represent task characteristics". The node's profile features (from the
// network generator or loader) play the role of characteristics — a node is
// genuinely capable on featured characteristics and weak elsewhere, and its
// experienced tasks are drawn among universe tasks touching its features.
func SeedExperienceFromFeatures(p *Population, setup TransitivitySetup, seed uint64) [][]task.Task {
	return p.SeedFeaturesParallel(setup, seed, p.setupWorkers())
}

// SeedParallel is SeedExperience at an explicit worker-pool width (<= 1
// runs serially). Results are bit-identical for every value.
func (p *Population) SeedParallel(setup TransitivitySetup, seed uint64, workers int) [][]task.Task {
	return p.seedParallel(setup, seed, workers, "seed-experience", func(a *agentSeedCtx) []task.Task {
		return seedNode(a, setup)
	})
}

// SeedFeaturesParallel is SeedExperienceFromFeatures at an explicit
// worker-pool width (<= 1 runs serially). Results are bit-identical for
// every value.
func (p *Population) SeedFeaturesParallel(setup TransitivitySetup, seed uint64, workers int) [][]task.Task {
	feats := p.Net.Features
	return p.seedParallel(setup, seed, workers, "seed-features", func(a *agentSeedCtx) []task.Task {
		return seedNodeFromFeatures(a, setup, feats)
	})
}

// agentSeedCtx is the per-node state a seeding function works with: the
// population (read-only: neighbors), the node, its private rng sub-stream,
// and the record sink.
type agentSeedCtx struct {
	p    *Population
	node int
	r    *rand.Rand
	emit seedEmit
}

// seedParallel runs the compute → merge seeding pipeline: perNode for every
// node on the worker pool (per-node sub-streams from seed and label,
// per-worker record buffers), then one globally ordered bulk ingest.
func (p *Population) seedParallel(setup TransitivitySetup, seed uint64, workers int, label string, perNode func(*agentSeedCtx) []task.Task) [][]task.Task {
	n := len(p.Agents)
	if workers <= 0 {
		workers = p.setupWorkers()
	}
	if workers > n {
		workers = n
	}
	experienced := make([][]task.Task, n)
	streamLabel := label + ":" + p.Net.Profile.Name
	// Compute phase: disjoint node chunks, worker-local record buffers.
	bufs := make([][]seedEntry, workers)
	forNodes(n, workers, func(w, lo, hi int) {
		buf := bufs[w]
		ctx := agentSeedCtx{p: p}
		ctx.emit = func(u core.AgentID, ti int, s float64) {
			buf = append(buf, seedEntry{holder: u, trustee: core.AgentID(ctx.node), taskIdx: int32(ti), s: s})
		}
		for node := lo; node < hi; node++ {
			ctx.node = node
			ctx.r = rng.Split(seed, streamLabel, node)
			experienced[node] = perNode(&ctx)
		}
		bufs[w] = buf
	})
	// Merge phase: one global ascending (holder, trustee, task) order. The
	// keys are unique — a node's experienced types are distinct and its
	// holders are distinct neighbors — so the order is total and the result
	// is independent of which worker produced which record. Universe tasks
	// are indexed by type, so ordering by task index is ordering by task
	// type, as SeedSorted requires.
	//
	// Holders are dense node IDs, so a counting sort replaces a global
	// comparison sort: count records per holder, prefix-sum into per-holder
	// spans, scatter, then sort each span (a handful of records) by
	// (trustee, task) in parallel.
	counts := make([]int32, n+1)
	for _, b := range bufs {
		for i := range b {
			counts[b[i].holder+1]++
		}
	}
	for u := 0; u < n; u++ {
		counts[u+1] += counts[u]
	}
	total := int(counts[n])
	all := make([]seedEntry, total)
	cursor := make([]int32, n)
	copy(cursor, counts[:n])
	for _, b := range bufs {
		for i := range b {
			c := &cursor[b[i].holder]
			all[*c] = b[i]
			*c++
		}
	}
	forNodes(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			span := all[counts[u]:counts[u+1]]
			if len(span) > 1 {
				slices.SortFunc(span, func(a, b seedEntry) int {
					if c := cmp.Compare(a.trustee, b.trustee); c != 0 {
						return c
					}
					return cmp.Compare(a.taskIdx, b.taskIdx)
				})
			}
		}
	})
	p.ingestSorted(all, counts, setup, workers)
	return experienced
}

// ingestSorted bulk-loads the globally sorted entries, one SeedSorted
// batch per holder span (all[counts[u]:counts[u+1]]), holders sharded over
// the worker pool (distinct holders own distinct stores, so the ingest is
// contention- and order-free). The full task values and expectations are
// materialized into a per-worker scratch batch just before hand-off —
// SeedSorted copies, so one buffer serves every holder in the chunk.
func (p *Population) ingestSorted(all []seedEntry, counts []int32, setup TransitivitySetup, workers int) {
	n := len(counts) - 1
	forNodes(n, workers, func(_, lo, hi int) {
		var batch []core.SeedRecord
		for u := lo; u < hi; u++ {
			span := all[counts[u]:counts[u+1]]
			if len(span) == 0 {
				continue
			}
			batch = batch[:0]
			for _, e := range span {
				batch = append(batch, core.SeedRecord{
					Trustee: e.trustee,
					Task:    setup.Universe.Tasks[e.taskIdx],
					Exp:     core.Expectation{S: e.s, G: e.s, D: 1 - e.s, C: 0},
				})
			}
			if err := p.Agents[u].Store.SeedSorted(batch); err != nil {
				// The merge phase sorted and deduplicated by construction;
				// a rejection here is a seeding-pipeline bug.
				panic(fmt.Sprintf("sim: bulk seed batch for holder %d rejected: %v", u, err))
			}
		}
	})
}

// holdersOf draws the record holders for one node: newcomers (UnknownFrac)
// have none, otherwise a RecordDensity fraction of the node's social
// neighbors carries direct experience with it.
func holdersOf(a *agentSeedCtx, setup TransitivitySetup) []core.AgentID {
	density := setup.RecordDensity
	if density <= 0 {
		density = 1
	}
	var holders []core.AgentID
	if a.r.Float64() >= setup.UnknownFrac {
		for _, u := range a.p.Neighbors(core.AgentID(a.node)) {
			if a.r.Float64() < density {
				holders = append(holders, u)
			}
		}
	}
	return holders
}

// emitExperience runs the shared tail of both seeding variants over the
// node's chosen task indices: having accomplished a task implies
// competence on its characteristics ("potential trustees who have
// accomplished tasks that contain ... the characteristics"), and each
// holder's record approaches the node's true capability up to RecordNoise.
func emitExperience(a *agentSeedCtx, setup TransitivitySetup, types []int, holders []core.AgentID) []task.Task {
	ag := a.p.Agents[a.node]
	experienced := make([]task.Task, 0, len(types))
	for _, ti := range types {
		tk := setup.Universe.Tasks[ti]
		experienced = append(experienced, tk)
		for _, ch := range tk.Characteristics() {
			if ag.Behavior.Competence[ch] < 0.55 {
				ag.Behavior.Competence[ch] = 0.55 + 0.4*a.r.Float64()
			}
		}
		cap := ag.Behavior.TaskCompetence(tk)
		for _, u := range holders {
			a.emit(u, ti, clamp01(cap+setup.RecordNoise*(2*a.r.Float64()-1)))
		}
	}
	return experienced
}

// seedNode draws one node's ground truth and records (the standard
// variant): uniform per-characteristic capabilities, TasksPerNode
// experienced types, one record per (holder, experienced task).
func seedNode(a *agentSeedCtx, setup TransitivitySetup) []task.Task {
	ag := a.p.Agents[a.node]
	for c := 0; c < setup.Universe.NumCharacteristics; c++ {
		ag.Behavior.Competence[task.Characteristic(c)] = a.r.Float64()
	}
	types := a.r.Perm(len(setup.Universe.Tasks))[:setup.TasksPerNode]
	return emitExperience(a, setup, types, holdersOf(a, setup))
}

// seedNodeFromFeatures draws one node's ground truth and records for the
// Table 2 variant: featured characteristics are genuinely capable, the
// rest weak, and experienced tasks prefer types touching the features.
func seedNodeFromFeatures(a *agentSeedCtx, setup TransitivitySetup, feats [][]int) []task.Task {
	ag := a.p.Agents[a.node]
	have := map[task.Characteristic]bool{}
	if a.node < len(feats) {
		for _, f := range feats[a.node] {
			have[task.Characteristic(f)] = true
		}
	}
	for c := 0; c < setup.Universe.NumCharacteristics; c++ {
		ch := task.Characteristic(c)
		if have[ch] {
			ag.Behavior.Competence[ch] = 0.6 + 0.35*a.r.Float64()
		} else {
			ag.Behavior.Competence[ch] = 0.3 * a.r.Float64()
		}
	}
	// Prefer experienced tasks that touch the node's features.
	var preferred, rest []int
	for ti, tk := range setup.Universe.Tasks {
		touches := false
		for _, c := range tk.Characteristics() {
			if have[c] {
				touches = true
				break
			}
		}
		if touches {
			preferred = append(preferred, ti)
		} else {
			rest = append(rest, ti)
		}
	}
	a.r.Shuffle(len(preferred), func(i, j int) { preferred[i], preferred[j] = preferred[j], preferred[i] })
	a.r.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	pick := append(append([]int(nil), preferred...), rest...)[:setup.TasksPerNode]
	return emitExperience(a, setup, pick, holdersOf(a, setup))
}
