package sim

import (
	"fmt"
	"reflect"
	"testing"

	"siot/internal/core"
	"siot/internal/task"
)

// assertSameView requires two captures to be byte-identical: same edge
// count and, for every directed CSR edge, the exact same record sequence.
func assertSameView(t *testing.T, label string, want, got *core.TrustView) {
	t.Helper()
	if got.NumEdges() != want.NumEdges() || got.NumAgents() != want.NumAgents() {
		t.Fatalf("%s: view shape %d agents/%d edges, want %d/%d",
			label, got.NumAgents(), got.NumEdges(), want.NumAgents(), want.NumEdges())
	}
	for e := int32(0); e < int32(want.NumEdges()); e++ {
		w, g := want.EdgeRecords(e), got.EdgeRecords(e)
		if len(w) != len(g) {
			t.Fatalf("%s: edge %d holds %d records, want %d", label, e, len(g), len(w))
		}
		for i := range w {
			wt, gt := want.Tasks()[w[i].Ref], got.Tasks()[g[i].Ref]
			if w[i].Count != g[i].Count || w[i].Exp != g[i].Exp ||
				wt.Type() != gt.Type() ||
				!reflect.DeepEqual(wt.Characteristics(), gt.Characteristics()) ||
				!reflect.DeepEqual(wt.Weights(), gt.Weights()) {
				t.Fatalf("%s: edge %d record %d = %+v, want %+v", label, e, i, g[i], w[i])
			}
		}
	}
}

// TestCaptureParallelEquivalence pins the tentpole contract: the parallel
// two-pass capture is byte-identical to the serial reference capture at
// every worker count, pooled or not.
func TestCaptureParallelEquivalence(t *testing.T) {
	for _, seed := range []uint64{5, 21} {
		p, _ := viewTestPopulation(t, seed, 5)
		want := p.TrustView() // serial reference
		pool := core.NewArenaPool()
		for _, workers := range []int{1, 4, 8} {
			label := fmt.Sprintf("seed=%d workers=%d", seed, workers)
			assertSameView(t, label+" unpooled", want, p.TrustViewParallel(workers, nil))
			got := p.TrustViewParallel(workers, pool)
			assertSameView(t, label+" pooled", want, got)
			got.Release() // next worker count re-draws the same arenas
		}
	}
}

// mutateStores perturbs the population's live trust records so a stale
// arena is distinguishable from a fresh capture: every trustor observes a
// new outcome about each trustee neighbor (new record values and, for
// unseen task types, new record counts).
func mutateStores(p *Population, tk task.Task) {
	for _, x := range p.Trustors {
		for _, y := range p.TrusteeNeighbors(x) {
			p.Agent(x).Store.Observe(y, tk, core.Outcome{Success: true, Gain: 1}, core.PerfectEnv())
		}
	}
}

// TestArenaPoolNoStaleRecords is the pool correctness guard: capture →
// release → capture on a mutated population must match a fresh unpooled
// capture exactly — reused arenas may not leak records from the released
// epoch.
func TestArenaPoolNoStaleRecords(t *testing.T) {
	p, setup := viewTestPopulation(t, 13, 5)
	pool := core.NewArenaPool()
	first := p.TrustViewParallel(4, pool)
	if first.NumEdges() == 0 {
		t.Fatal("empty capture")
	}
	first.Release()
	mutateStores(p, setup.Universe.Tasks[0])
	got := p.TrustViewParallel(4, pool)
	assertSameView(t, "post-mutation pooled capture", p.TrustView(), got)
}

// TestEpochResetMatchesFreshEpoch asserts that Reset — the arena-keeping
// re-capture path — serves exactly the stats of a newly built epoch after
// the stores mutated, and that the memo's stale tables are not consulted.
func TestEpochResetMatchesFreshEpoch(t *testing.T) {
	p, setup := viewTestPopulation(t, 17, 5)
	ep := newTransitivityEpoch(p, setup, 2)
	ep.Run(core.PolicyAggressive, 7) // fill memo tables pre-mutation
	mutateStores(p, setup.Universe.Tasks[1])
	ep.Reset()
	defer ep.Release()
	for _, pol := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		want := TransitivityRun(p, setup, pol, 7)
		got := ep.Run(pol, 7)
		if want.Requests != got.Requests || want.Successes != got.Successes ||
			want.Unavailable != got.Unavailable || want.PotentialTrustees != got.PotentialTrustees {
			t.Fatalf("%s: reset epoch stats %+v, want %+v", pol, got, want)
		}
	}
}

// TestEpochArenaReuse pins the pooling payoff: after warmup, a
// capture–release cycle re-draws the same record arena instead of
// allocating a new one. The alloc-count guard self-skips under -race like
// TestFindViewZeroAlloc (the race runtime changes allocation behavior).
func TestEpochArenaReuse(t *testing.T) {
	p, _ := viewTestPopulation(t, 29, 5)
	pool := core.NewArenaPool()
	v := p.TrustViewParallel(1, pool)
	firstArena := &v.EdgeRecords(firstNonEmptyEdge(t, v))[0]
	v.Release()
	v2 := p.TrustViewParallel(1, pool)
	secondArena := &v2.EdgeRecords(firstNonEmptyEdge(t, v2))[0]
	if firstArena != secondArena {
		t.Error("second pooled capture did not reuse the released record arena")
	}
	v2.Release()
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	allocs := testing.AllocsPerRun(20, func() {
		v := p.TrustViewParallel(1, pool)
		v.Release()
	})
	// The view struct, capture-source closures, and pool bookkeeping still
	// allocate; the point is that the ~E-record arena does not.
	if allocs > 16 {
		t.Errorf("warm pooled capture made %.0f allocs/op, want <= 16 (arena not reused?)", allocs)
	}
}

func firstNonEmptyEdge(t *testing.T, v *core.TrustView) int32 {
	t.Helper()
	for e := int32(0); e < int32(v.NumEdges()); e++ {
		if len(v.EdgeRecords(e)) > 0 {
			return e
		}
	}
	t.Fatal("no edge holds records")
	return 0
}
