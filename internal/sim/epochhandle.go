package sim

import (
	"sync/atomic"

	"siot/internal/core"
)

// EpochHandle makes the frozen-epoch swap explicit: an RCU-style atomic
// pointer to the current round view plus a refcount that ties every
// outstanding reader to the view's arenas in the core.ArenaPool.
//
// The life cycle is Publish → Acquire*/Release* → Retire. Publish installs
// a freshly captured view as the current epoch (retiring any previous one);
// readers Acquire the current epoch, read the immutable view at will, and
// Release when done; Retire drops the publisher's reference once the epoch
// is stale (the merge phase wrote the stores). The view's arenas return to
// the pool only when the last reference — publisher or reader — goes away,
// so a reader that outlives the swap (an experiment probe mid-churn, a
// server request straddling an epoch boundary) keeps a consistent snapshot
// and can never dangle; conversely, a reference released twice panics
// instead of silently freeing arenas a live reader still uses
// (TestEpochHandleDoubleReleasePanics). This is the seam a serving layer
// mounts on: writers swap epochs at their own cadence, readers never block
// and never see a torn view.
//
// All methods are safe for concurrent use. The zero EpochHandle is valid
// and empty.
type EpochHandle struct {
	cur atomic.Pointer[epochRec]
}

// EpochAttachment is optional per-epoch payload published alongside a view
// and released with it: derived read-only state whose lifetime must match
// the view's exactly (a serving layer's per-epoch memo tables, an epoch id).
// ReleaseEpoch runs once, when the last reference — publisher or reader —
// goes away, immediately before the view's arenas return to their pool.
type EpochAttachment interface {
	ReleaseEpoch()
}

// epochRec pairs one published view (and its optional attachment) with its
// reference count: 1 for the publisher while the epoch is current, plus 1
// per outstanding Acquire.
type epochRec struct {
	view   *core.RoundView
	attach EpochAttachment
	refs   atomic.Int32
}

// releaseRec drops one reference, returning the view's arenas to their pool
// when the last one goes. A drop below zero means a reference was released
// twice — someone may be reading freed arenas — so it panics loudly.
func releaseRec(rec *epochRec) {
	switch n := rec.refs.Add(-1); {
	case n == 0:
		if rec.attach != nil {
			rec.attach.ReleaseEpoch()
		}
		rec.view.Release()
	case n < 0:
		panic("sim: epoch reference released twice")
	}
}

// Publish installs view as the current epoch and retires the previous one,
// if any. The handle takes ownership of the view: it is released back to
// its arena pool when the epoch is retired and the last reader is gone.
func (h *EpochHandle) Publish(view *core.RoundView) {
	h.PublishWith(view, nil)
}

// PublishWith is Publish with an attachment riding the epoch: the payload
// stays readable through Epoch.Attachment for exactly as long as the view
// itself, and its ReleaseEpoch runs when the last reference goes away. This
// is how a serving layer keeps per-epoch derived state (memo tables, epoch
// ids) consistent with the snapshot across swaps: one refcount covers both.
func (h *EpochHandle) PublishWith(view *core.RoundView, attach EpochAttachment) {
	rec := &epochRec{view: view, attach: attach}
	rec.refs.Store(1)
	if old := h.cur.Swap(rec); old != nil {
		releaseRec(old)
	}
}

// Retire drops the current epoch, releasing the publisher's reference.
// Outstanding readers keep their snapshot alive until they Release. A
// retired (or never-published) handle is empty: Acquire returns nil.
func (h *EpochHandle) Retire() {
	if old := h.cur.Swap(nil); old != nil {
		releaseRec(old)
	}
}

// Current reports whether the handle holds a published epoch.
func (h *EpochHandle) Current() bool { return h.cur.Load() != nil }

// Acquire takes a reference on the current epoch, or returns nil when none
// is published. The caller must Release the returned epoch exactly once;
// the view it serves stays valid — arenas pinned, contents frozen — until
// then, even across a Publish/Retire of the handle.
func (h *EpochHandle) Acquire() *Epoch {
	for {
		rec := h.cur.Load()
		if rec == nil {
			return nil
		}
		for {
			n := rec.refs.Load()
			if n <= 0 {
				break // torn down between Load and here; re-read the pointer
			}
			if rec.refs.CompareAndSwap(n, n+1) {
				return &Epoch{rec: rec}
			}
		}
	}
}

// Epoch is one acquired reference to a published round view.
type Epoch struct {
	rec      *epochRec
	released atomic.Bool
}

// View returns the epoch's frozen round view. Valid until Release; a call
// after Release panics — the view's arenas may already be recycled into a
// newer capture, so handing it out would silently serve torn data
// (TestEpochViewAfterReleasePanics).
func (ep *Epoch) View() *core.RoundView {
	if ep.released.Load() {
		panic("sim: View on a released epoch reference")
	}
	return ep.rec.view
}

// Attachment returns the payload published with the epoch via PublishWith
// (nil for plain Publish). Same validity as View: panics after Release.
func (ep *Epoch) Attachment() EpochAttachment {
	if ep.released.Load() {
		panic("sim: Attachment on a released epoch reference")
	}
	return ep.rec.attach
}

// Release drops the reference. Exactly once; a second call panics.
func (ep *Epoch) Release() {
	if ep.released.Swap(true) {
		panic("sim: epoch reference released twice")
	}
	releaseRec(ep.rec)
}
