package sim

import (
	"fmt"
	"testing"

	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// viewTestPopulation builds a small randomized population with seeded
// transitivity experience.
func viewTestPopulation(t *testing.T, seed uint64, numChars int) (*Population, TransitivitySetup) {
	t.Helper()
	profile := socialgen.Profile{
		Name: fmt.Sprintf("viewtest-%d", seed), Nodes: 200, Edges: 1400,
		Communities: 5, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 4, FeaturesPerNode: 2,
	}
	net := socialgen.Generate(profile, seed)
	p := NewPopulation(net, DefaultPopulationConfig(seed))
	r := p.Rand("view-test")
	setup := DefaultTransitivitySetup(numChars, r)
	setup.MaxDepth = 3
	SeedExperience(p, setup, seed)
	return p, setup
}

// assertSameResult requires bit-identical SearchResults (exact float64
// equality, same candidate order, same inquired count).
func assertSameResult(t *testing.T, label string, want, got core.SearchResult) {
	t.Helper()
	if got.Inquired != want.Inquired {
		t.Fatalf("%s: inquired %d, want %d", label, got.Inquired, want.Inquired)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%s: %d candidates, want %d", label, len(got.Candidates), len(want.Candidates))
	}
	for i := range want.Candidates {
		if got.Candidates[i] != want.Candidates[i] {
			t.Fatalf("%s: candidate %d = %+v, want %+v", label, i, got.Candidates[i], want.Candidates[i])
		}
	}
}

// TestFindViewEquivalence asserts that the frozen-epoch search — with and
// without the edge memo — returns byte-identical SearchResults to the
// legacy live-store path, for every policy, on randomized populations.
func TestFindViewEquivalence(t *testing.T) {
	policies := []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive}
	for _, seed := range []uint64{1, 7, 42} {
		for _, numChars := range []int{4, 6} {
			p, setup := viewTestPopulation(t, seed, numChars)
			s := p.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2)
			view := p.TrustView()
			memo := core.NewEdgeMemo(view, p.Config().Update.Norm, 2)
			taskRng := rng.New(seed, "view-test-tasks")
			for _, pol := range policies {
				tasks := make([]task.Task, len(p.Trustors))
				for i := range tasks {
					tasks[i] = setup.Universe.Random(taskRng)
				}
				memo.Require(pol, tasks)
				for i, x := range p.Trustors {
					want := s.Find(x, tasks[i], pol)
					label := fmt.Sprintf("seed=%d chars=%d policy=%s trustor=%d", seed, numChars, pol, x)
					assertSameResult(t, label+" (memo)", want, s.FindView(view, memo, x, tasks[i], pol))
					assertSameResult(t, label+" (no memo)", want, s.FindView(view, nil, x, tasks[i], pol))
				}
			}
		}
	}
}

// TestTransitivityEpochReuseMatchesFreshCapture asserts that a shared
// epoch reused across policies produces exactly the stats of per-call
// captures (the searches are pure, so the snapshot cannot go stale between
// runs). Per-search live-path equivalence is TestFindViewEquivalence's
// job; stats-level continuity with the pre-snapshot engine is pinned by
// the golden-figure snapshots, which were generated on the old path.
func TestTransitivityEpochReuseMatchesFreshCapture(t *testing.T) {
	p, setup := viewTestPopulation(t, 11, 5)
	eng := NewEngine(p, "epoch-test")
	ep := eng.TransitivityEpoch(setup)
	for _, pol := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		want := TransitivityRun(p, setup, pol, 99)
		got := ep.Run(pol, 99)
		if want.Requests != got.Requests || want.Successes != got.Successes ||
			want.Unavailable != got.Unavailable || want.PotentialTrustees != got.PotentialTrustees {
			t.Fatalf("%s: epoch stats %+v, want %+v", pol, got, want)
		}
		for i := range want.InquiredPerTrustor {
			if want.InquiredPerTrustor[i] != got.InquiredPerTrustor[i] {
				t.Fatalf("%s: inquired[%d] = %d, want %d", pol, i, got.InquiredPerTrustor[i], want.InquiredPerTrustor[i])
			}
		}
	}
}

// TestFindViewZeroAlloc guards the pooled dense scratch state: a warm
// FindViewInto with a recycled result must not allocate.
func TestFindViewZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool fakes misses under -race; allocation counts are meaningless")
	}
	p, setup := viewTestPopulation(t, 3, 5)
	s := p.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2)
	view := p.TrustView()
	memo := core.NewEdgeMemo(view, p.Config().Update.Norm, 1)
	tk := setup.Universe.Tasks[0]
	trustor := p.Trustors[0]
	for _, pol := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		memo.Require(pol, []task.Task{tk})
		var res core.SearchResult
		s.FindViewInto(&res, view, memo, trustor, tk, pol) // warm pool and result
		allocs := testing.AllocsPerRun(50, func() {
			s.FindViewInto(&res, view, memo, trustor, tk, pol)
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs/op after warmup, want 0", pol, allocs)
		}
	}
}
