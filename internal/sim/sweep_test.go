package sim

import (
	"fmt"
	"testing"

	"siot/internal/core"
)

// assertSameStats requires two transitivity runs to be bit-identical:
// every counter and the full per-trustor inquiry trace.
func assertSameStats(t *testing.T, label string, want, got TransitivityStats) {
	t.Helper()
	if want.Requests != got.Requests || want.Successes != got.Successes ||
		want.Unavailable != got.Unavailable || want.PotentialTrustees != got.PotentialTrustees {
		t.Fatalf("%s: stats %+v, want %+v", label, got, want)
	}
	if len(want.InquiredPerTrustor) != len(got.InquiredPerTrustor) {
		t.Fatalf("%s: %d inquiry entries, want %d", label, len(got.InquiredPerTrustor), len(want.InquiredPerTrustor))
	}
	for i := range want.InquiredPerTrustor {
		if want.InquiredPerTrustor[i] != got.InquiredPerTrustor[i] {
			t.Fatalf("%s: inquired[%d] = %d, want %d", label, i, got.InquiredPerTrustor[i], want.InquiredPerTrustor[i])
		}
	}
}

// TestSweepShardedEquivalence pins the streaming-sweep contract: the sharded
// sweep is bit-identical to the monolithic run at every shard width (one
// trustor per shard, a width that does not divide the trustor count, one
// giant shard) crossed with every worker count — the determinism recipe the
// million-node path rests on.
func TestSweepShardedEquivalence(t *testing.T) {
	p, setup := viewTestPopulation(t, 23, 5)
	if len(p.Trustors) < 10 {
		t.Fatalf("fixture too small: %d trustors", len(p.Trustors))
	}
	for _, pol := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		// Reference: one shard, serial.
		want := SweepSharded(p, setup, pol, 77, 1, 0)
		for _, shard := range []int{1, 7, 64, len(p.Trustors) + 1} {
			for _, workers := range []int{1, 8} {
				got := SweepSharded(p, setup, pol, 77, workers, shard)
				assertSameStats(t, fmt.Sprintf("%s shard=%d workers=%d", pol, shard, workers), want, got)
			}
		}
		// The epoch entry points route through the same sharded
		// implementation: Run (default width) and a reused epoch must match.
		eng := NewEngine(p, "sweep-test")
		eng.Parallelism = 4
		ep := eng.TransitivityEpoch(setup)
		assertSameStats(t, fmt.Sprintf("%s epoch default-shard", pol), want, ep.Run(pol, 77))
		assertSameStats(t, fmt.Sprintf("%s epoch shard=13", pol), want, ep.SweepSharded(pol, 77, 13))
		ep.Release()
	}
}
