package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"siot/internal/adversary"
	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/rng"
	"siot/internal/task"
)

// Engine is the parallel delegation-round runner: it shards the trustors of
// a population across a worker pool and plays rounds with deterministic
// results.
//
// # Determinism contract
//
// Every engine round runs in two phases. The compute phase fans the
// trustors out over Parallelism goroutines; each trustor draws its
// randomness from a private sub-stream derived from the population seed,
// the engine label, the round index, and its own agent ID (rng.Split2), and
// only reads shared state. The merge phase then applies every trustor's
// buffered effects (store updates, usage logs, counters, energy drains)
// single-threaded in ascending trustor-ID order. Because no draw and no
// write depends on goroutine scheduling, the results are bit-identical for
// every Parallelism value, including 1 — P=1 and P=8 with the same seed
// produce the same bytes.
//
// The price is round semantics: within one round every trustor decides
// against the state left by the previous round (simultaneous requests) —
// which is precisely what lets the compute phase read a frozen snapshot.
// Each round publishes a core.RoundView of the previous round's state
// through the Rounds handle; the compute phase reads only that view (zero
// store locks — TestMutualityComputePhaseLockFree) and the merge phase is
// the only store writer.
type Engine struct {
	Pop *Population
	// Parallelism is the worker-pool width. 0 falls back to the population
	// config's Parallelism, then to GOMAXPROCS; 1 runs serially.
	Parallelism int
	// Label separates the engine's random streams from other phases run on
	// the same population (e.g. one label per figure).
	Label string
	// Rounds is the epoch seam of the mutuality rounds: every round
	// publishes its frozen snapshot here before the compute phase and
	// retires it after the merge. External readers (a serving layer, an
	// experiment probe) may Acquire the current epoch at any time and keep
	// reading it safely across the swap.
	Rounds EpochHandle

	initOnce     sync.Once
	trusteeNbrs  [][]core.AgentID // trustee-kind neighbors per trustor position
	trusteeEdges [][]int32        // CSR edge index per trustee neighbor, same shape as trusteeNbrs
	socialNbrs   [][]core.AgentID // all neighbors per trustor position (attack scenarios only)
}

// NewEngine returns an engine over the population using its configured
// parallelism.
func NewEngine(p *Population, label string) *Engine {
	return &Engine{Pop: p, Label: label}
}

// workers resolves the effective worker-pool width.
func (e *Engine) workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	if e.Pop.cfg.Parallelism > 0 {
		return e.Pop.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// init precomputes the per-trustor neighbor lists so rounds do not
// re-derive (and re-allocate) them every time, plus the CSR edge index of
// every trustee neighbor — round views index records and usage by directed
// edge, and the graph is frozen, so the trustor→candidate edge of every
// candidate lookup is known once and for all. The full social-neighbor
// lists feed the recommendation channel, which only attack scenarios use.
func (e *Engine) init() {
	e.initOnce.Do(func() {
		p := e.Pop
		e.trusteeNbrs = make([][]core.AgentID, len(p.Trustors))
		e.trusteeEdges = make([][]int32, len(p.Trustors))
		for i, x := range p.Trustors {
			e.trusteeNbrs[i] = p.TrusteeNeighbors(x)
			edges := make([]int32, 0, len(e.trusteeNbrs[i]))
			for k, v := range p.adjTo[p.adjOff[x]:p.adjOff[x+1]] {
				if p.candMask[v] {
					edges = append(edges, p.adjOff[x]+int32(k))
				}
			}
			e.trusteeEdges[i] = edges
		}
		if p.AttackEnabled() {
			e.socialNbrs = make([][]core.AgentID, len(p.Trustors))
			for i, x := range p.Trustors {
				e.socialNbrs[i] = p.Neighbors(x)
			}
		}
	})
}

// mutualityLabel is the random-stream label of the engine's mutuality
// rounds; PerceivedTrust must derive the very same label so its attack
// context keys the same adversary sub-streams as the rounds themselves.
func (e *Engine) mutualityLabel() string {
	return "engine-mutuality:" + e.Label + ":" + e.Pop.Net.Profile.Name
}

// candidateTW scores candidate trustee y for the trustor at position i the
// way a mutuality round does: direct experience first (edge is the
// trustor→y edge in the view), the one-hop recommendation channel (attack
// scenarios only, with attackers forging) for strangers, the neutral prior
// when nobody knows anything. Reads only the frozen view.
func (e *Engine) candidateTW(view *core.RoundView, attacked bool, ctx adversary.Context, i int, edge int32, y core.AgentID, tk task.Task) float64 {
	tw, ok := view.BestTW(edge, tk)
	if ok {
		return tw
	}
	if attacked {
		if rec, ok := e.recommendedTW(view, ctx, e.socialNbrs[i], y, tk); ok {
			return rec
		}
	}
	return 0.5 // neutral prior before any experience
}

// acceptsDelegation is the reverse evaluation (eq. 1) of candidate trustee
// y against requesting trustor x on the frozen view: y compares the
// reverse trustworthiness implied by its captured usage log about x with
// its threshold θ. The agent.AcceptsDelegation live-store equivalent, for
// the compute phase. An absent y→x edge means an empty log (records and
// logs live only along social edges), which scores the optimistic 1.
func (e *Engine) acceptsDelegation(view *core.RoundView, y, x core.AgentID) bool {
	theta := e.Pop.Agent(y).Theta
	if theta <= 0 {
		return true
	}
	if edge, ok := view.EdgeIndex(y, x); ok {
		return view.ReverseTW(edge) >= theta
	}
	return (core.UsageLog{}).TW() >= theta
}

// mapTrustors computes fn for every trustor on a pool of workers and
// returns the results indexed by trustor position. fn must not mutate
// shared state; it may read it freely.
func mapTrustors[T any](ids []core.AgentID, workers int, fn func(i int, x core.AgentID) T) []T {
	return mapTrustorsInto[T](nil, ids, workers, fn)
}

// mapTrustorsInto is mapTrustors writing into a caller-provided result
// buffer (grown only when too small, so a shard loop reuses one allocation
// across shards). Indices passed to fn are positions within ids.
func mapTrustorsInto[T any](out []T, ids []core.AgentID, workers int, fn func(i int, x core.AgentID) T) []T {
	if cap(out) < len(ids) {
		out = make([]T, len(ids))
	}
	out = out[:len(ids)]
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i, x := range ids {
			out[i] = fn(i, x)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				out[i] = fn(i, ids[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// mutualityAction is one trustor's buffered decision of a mutuality round.
type mutualityAction struct {
	requested bool
	accepted  bool
	trustee   core.AgentID
	out       core.Outcome
	abusive   bool
}

// MutualityRound plays one parallel round of the Fig. 7 experiment: every
// trustor simultaneously requests task tk from its best-trusted trustee
// neighbor, candidates reverse-evaluate the trustor against θ (eq. 1) on
// the state of the previous round, and all effects merge in ascending
// trustor-ID order. round indexes the random sub-streams and must advance
// every call.
//
// The round is the canonical epoch cycle: a core.RoundView of the previous
// round's state is captured and published through the Rounds handle, the
// compute phase fans out reading only that snapshot (no store locks), the
// single-threaded merge writes the stores, and the epoch retires — stale
// by construction once the merge ran. Readers holding an Acquire across
// the swap keep their snapshot alive; the arenas recycle through the
// shared epoch pool.
//
// When the population carries an attack scenario (PopulationConfig.Attack),
// three adversary hooks fire: trustors without direct experience of a
// candidate gather one-hop recommendations that attackers may forge (off
// the snapshot, inside the compute phase); a pre-merge pass lets active
// attackers sabotage the outcomes of the delegations they serve; and a
// post-merge pass lets whitewashing attackers shed their identity. With no
// attack configured every hook is skipped and the round is bit-identical
// to the pre-adversary engine.
func (e *Engine) MutualityRound(round int, tk task.Task, c *MutualityCounters) {
	e.init()
	p := e.Pop
	attacked := p.AttackEnabled()
	var actx adversary.Context
	if attacked {
		actx = e.attackContext(e.mutualityLabel(), round)
	}
	e.Rounds.Publish(p.RoundView(e.workers(), epochArenas))
	ep := e.Rounds.Acquire()
	acts := e.computeMutualityActs(ep.View(), attacked, actx, round, tk)
	ep.Release()
	if attacked {
		// Pre-merge hook: active attackers rewrite their buffered outcomes.
		e.applyAttack(actx, acts)
	}
	e.mergeMutualityActs(attacked, tk, acts, c)
	e.Rounds.Retire() // the merge wrote the stores; the epoch is stale
	if attacked {
		// Post-merge hook: whitewashing attackers shed their identity.
		e.applyChurn(actx)
	}
}

// computeMutualityActs is the round's parallel compute phase: every trustor
// decides against the frozen view — candidate scoring, reverse evaluation,
// outcome and abuse draws — and buffers its action. It reads no live store
// (TestMutualityComputePhaseLockFree pins this at zero lock acquisitions)
// and writes nothing shared, so any worker count produces identical bytes.
func (e *Engine) computeMutualityActs(view *core.RoundView, attacked bool, actx adversary.Context, round int, tk task.Task) []mutualityAction {
	p := e.Pop
	label := e.mutualityLabel()
	actCfg := agent.DefaultActConfig()
	return mapTrustors(p.Trustors, e.workers(), func(i int, x core.AgentID) mutualityAction {
		nbrs := e.trusteeNbrs[i]
		if len(nbrs) == 0 {
			return mutualityAction{} // socially isolated from trustees: not a request
		}
		r := rng.Split2(p.cfg.Seed, label, round, int(x))
		trustor := p.Agent(x)
		cands := make([]core.Candidate, 0, len(nbrs))
		for k, y := range nbrs {
			// Strangers are judged by one-hop recommendations, which
			// attackers may forge (candidateTW).
			cands = append(cands, core.Candidate{ID: y, TW: e.candidateTW(view, attacked, actx, i, e.trusteeEdges[i][k], y, tk)})
		}
		chosen, ok := core.SelectMutual(cands, func(y core.AgentID) bool {
			return e.acceptsDelegation(view, y, x)
		})
		if !ok {
			return mutualityAction{requested: true}
		}
		act := mutualityAction{requested: true, accepted: true, trustee: chosen.ID}
		act.out = p.Agent(chosen.ID).ActOutcome(tk, env.Perfect, actCfg, r)
		act.abusive = trustor.Behavior.UsesAbusively(r)
		return act
	})
}

// mergeMutualityActs is the round's single-threaded merge phase — the only
// store writer: buffered actions apply in ascending trustor-ID order
// (counters, trust updates, energy drains, usage logs).
func (e *Engine) mergeMutualityActs(attacked bool, tk task.Task, acts []mutualityAction, c *MutualityCounters) {
	p := e.Pop
	for i, x := range p.Trustors {
		a := acts[i]
		if !a.requested {
			continue
		}
		c.Requests++
		if !a.accepted {
			c.Unavailable++
			continue
		}
		if a.out.Success {
			c.Successes++
		}
		if attacked && p.attackers[a.trustee] {
			c.AttackerDelegations++
		}
		trustee := p.Agent(a.trustee)
		p.Agent(x).Store.Observe(a.trustee, tk, a.out, core.PerfectEnv())
		trustee.DrainEnergy(a.out.Cost)
		// The trustor now uses the granted resource; the trustee logs how.
		trustee.Store.ObserveUsage(x, a.abusive)
		c.Uses++
		if a.abusive {
			c.Abuses++
		}
	}
}

// netProfitAction is one trustor's buffered decision of a net-profit
// iteration.
type netProfitAction struct {
	active  bool
	trustee core.AgentID
	out     core.Outcome
	profit  float64
}

// NetProfitRun is the engine counterpart of the package-level NetProfitRun:
// iterations of continuous task delegations under the given strategy, with
// each iteration's trustors sharded over the worker pool. Trustee ground
// truths are drawn once, serially, exactly as in the legacy path; the
// per-delegation success draws come from per-(iteration, trustor)
// sub-streams. Returns the average realized net profit per iteration.
func (e *Engine) NetProfitRun(iterations int, strategy Strategy, seed uint64) []float64 {
	e.init()
	p := e.Pop
	truths := drawTruths(p, rng.New(seed, "engine-netprofit", p.Net.Profile.Name, strategy.String()))
	label := "engine-netprofit:" + e.Label + ":" + p.Net.Profile.Name + ":" + strategy.String()
	tk := task.Uniform(0, task.CharCompute) // one generic task type
	series := make([]float64, iterations)
	workers := e.workers()

	for it := 0; it < iterations; it++ {
		acts := mapTrustors(p.Trustors, workers, func(i int, x core.AgentID) netProfitAction {
			nbrs := e.trusteeNbrs[i]
			if len(nbrs) == 0 {
				return netProfitAction{}
			}
			trustor := p.Agent(x)
			cands := make([]core.ExpCandidate, 0, len(nbrs))
			for _, y := range nbrs {
				rec, ok := trustor.Store.Record(y, tk.Type())
				exp := trustor.Store.Config().Init
				if ok {
					exp = rec.Exp
				}
				cands = append(cands, core.ExpCandidate{ID: y, Exp: exp})
			}
			var chosen core.ExpCandidate
			var ok bool
			if strategy == StrategySuccessRate {
				chosen, ok = core.BestBySuccessRate(cands)
			} else {
				chosen, ok = core.BestByNetProfit(cands)
			}
			if !ok {
				return netProfitAction{}
			}
			r := rng.Split2(seed, label, it, int(x))
			truth := truths[chosen.ID]
			success := r.Float64() < truth.S
			return netProfitAction{
				active: true, trustee: chosen.ID,
				out: truth.outcome(success), profit: truth.realizedProfit(success),
			}
		})
		var sum float64
		active := 0
		for i, x := range p.Trustors {
			a := acts[i]
			if !a.active {
				continue
			}
			sum += a.profit
			active++
			p.Agent(x).Store.Observe(a.trustee, tk, a.out, core.PerfectEnv())
		}
		if active > 0 {
			series[it] = sum / float64(active)
		}
	}
	return series
}

// TransitivityRun is the engine counterpart of the package-level
// TransitivityRun, sharding the per-trustor transitivity searches — the
// dominant cost of the §5.5 experiments — over the worker pool. Unlike the
// mutuality and net-profit rounds, the search phase is pure, so this path
// is bit-identical to the legacy serial implementation for every
// Parallelism value. Each call captures a fresh frozen-epoch snapshot
// (TransitivityEpoch); callers running several policies over unchanged
// stores should capture one epoch and Run it repeatedly.
func (e *Engine) TransitivityRun(setup TransitivitySetup, policy core.Policy, seed uint64) TransitivityStats {
	return transitivityRun(e.Pop, setup, policy, seed, e.workers())
}

// TransitivityRunModel is TransitivityRun dispatching through a TrustModel:
// policy adapters reproduce TransitivityRun byte for byte, and registered
// non-policy models (hellinger-mf, feature-weighted, ...) run the same
// captured-epoch sweep through their own hop evaluation.
func (e *Engine) TransitivityRunModel(setup TransitivitySetup, m core.TrustModel, seed uint64) TransitivityStats {
	ep := e.TransitivityEpoch(setup)
	defer ep.Release()
	return ep.RunModel(m, seed)
}

// transitivityRun captures a frozen epoch and plays one run on it: the
// per-trustor task sequence is pre-drawn from the shared stream (matching
// the legacy serial order), the searches fan out over the pool against the
// snapshot, and counters and outcome draws merge in ascending trustor
// order.
func transitivityRun(p *Population, setup TransitivitySetup, policy core.Policy, seed uint64, workers int) TransitivityStats {
	ep := newTransitivityEpoch(p, setup, workers)
	defer ep.Release()
	return ep.Run(policy, seed)
}
