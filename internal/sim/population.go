// Package sim animates the trust model over a social network: it assigns
// roles and ground-truth behaviors to the nodes of a generated (or loaded)
// social graph and drives the delegation rounds behind the paper's
// simulation experiments — mutuality (Fig. 7), transitivity (Figs. 9–12 and
// Table 2), and net-profit learning (Fig. 13).
package sim

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/graph"
	"siot/internal/rng"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// PopulationConfig controls role assignment and agent behavior generation.
type PopulationConfig struct {
	// Seed drives every random choice of the population build.
	Seed uint64
	// TrustorFrac and TrusteeFrac are the role fractions; the paper uses
	// "about 40% of the nodes as trustors and about 40% of the nodes as
	// trustees". Remaining nodes are bystanders (they relay recommendations
	// but neither request nor serve).
	TrustorFrac, TrusteeFrac float64
	// Theta is the reverse-evaluation threshold θ_y(τ) installed on every
	// trustee (Fig. 7 sweeps it).
	Theta float64
	// Update configures every agent's trust store.
	Update core.UpdateConfig
	// Parallelism is the default worker-pool width of Engine rounds run
	// over this population: 0 uses GOMAXPROCS, 1 runs serially. Results are
	// bit-identical across all values (see Engine).
	Parallelism int
	// Attack injects a trust-attack scenario: Attack.Attackers trustees run
	// Attack.Model against the delegation rounds. The zero value disables
	// the adversary subsystem, leaving every round bit-identical to a build
	// without it.
	Attack AttackConfig
}

// DefaultPopulationConfig mirrors the paper's simulation setup.
func DefaultPopulationConfig(seed uint64) PopulationConfig {
	return PopulationConfig{
		Seed:        seed,
		TrustorFrac: 0.4,
		TrusteeFrac: 0.4,
		Update:      core.DefaultUpdateConfig(),
	}
}

// Population is a social network whose nodes are live agents.
type Population struct {
	Net    *socialgen.Network
	Agents []*agent.Agent // indexed by node ID
	// Trustors and Trustees list the role members in ascending ID order.
	Trustors []core.AgentID
	Trustees []core.AgentID
	// Attackers lists the trustees running the configured attack model, in
	// ascending ID order (empty when no attack is configured).
	Attackers []core.AgentID
	attackers map[core.AgentID]bool
	cfg       PopulationConfig

	// CSR adjacency over agent IDs, built once at population construction
	// (the social graph is frozen from then on): adjOff/adjTo mirror the
	// graph, trusteeOff/trusteeTo keep only trustee-kind targets, and
	// candMask flags trustee-kind agents by dense slot. Neighbor queries
	// hand out shared subslices with zero per-call allocation.
	adjOff     []int32
	adjTo      []core.AgentID
	trusteeOff []int32
	trusteeTo  []core.AgentID
	candMask   []bool
}

// NewPopulation assigns roles and behaviors over the given social network.
// Trustor responsibility is drawn uniformly from [0, 1] ("we assign each
// trustor a trustworthiness value which is a random number in [0, 1]") and
// trustee competence per characteristic is uniform in [0, 1] as in §5.5.
//
// The build is sharded over the population's worker pool
// (PopulationConfig.Parallelism) with the engine's determinism recipe: the
// role permutation is computed once, each node's behavior is drawn from a
// private per-node rng sub-stream, and the Agents array and CSR adjacency
// fill disjoint spans — so the result is bit-identical at every worker
// count (TestPopulationParallelEquivalence).
func NewPopulation(net *socialgen.Network, cfg PopulationConfig) *Population {
	n := net.Graph.NumNodes()
	if n == 0 {
		panic("sim: empty network")
	}
	if cfg.TrustorFrac < 0 || cfg.TrusteeFrac < 0 || cfg.TrustorFrac+cfg.TrusteeFrac > 1 {
		panic(fmt.Sprintf("sim: invalid role fractions %v/%v", cfg.TrustorFrac, cfg.TrusteeFrac))
	}
	// The role permutation keeps the serial builder's derivation (it was
	// the "population" stream's first draw), so role assignment is stable;
	// only the behavior draws moved to per-node sub-streams.
	perm := rng.New(cfg.Seed, "population", net.Profile.Name).Perm(n)
	numTrustors := int(cfg.TrustorFrac * float64(n))
	numTrustees := int(cfg.TrusteeFrac * float64(n))
	kinds := make([]agent.Kind, n)
	for i, node := range perm {
		switch {
		case i < numTrustors:
			kinds[node] = agent.KindTrustor
		case i < numTrustors+numTrustees:
			kinds[node] = agent.KindTrustee
		default:
			kinds[node] = agent.KindBystander
		}
	}

	if cfg.Update.Catalog == nil {
		// One catalog per population: every agent's store interns into it, so
		// compact records from any store resolve against one ref namespace
		// and view captures need no translation.
		cfg.Update.Catalog = task.NewCatalog()
	}
	p := &Population{Net: net, Agents: make([]*agent.Agent, n), cfg: cfg}
	workers := p.setupWorkers()
	behaviorLabel := "population-behavior:" + net.Profile.Name
	forNodes(n, workers, func(_, lo, hi int) {
		for node := lo; node < hi; node++ {
			r := rng.Split(cfg.Seed, behaviorLabel, node)
			b := agent.Behavior{
				BaseCompetence: r.Float64(),
				Responsibility: r.Float64(),
				Competence:     map[task.Characteristic]float64{},
			}
			a := agent.New(core.AgentID(node), kinds[node], b, cfg.Update)
			a.Theta = cfg.Theta
			p.Agents[node] = a
		}
	})
	p.Trustors = make([]core.AgentID, 0, numTrustors)
	p.Trustees = make([]core.AgentID, 0, numTrustees)
	for node, k := range kinds {
		switch k {
		case agent.KindTrustor:
			p.Trustors = append(p.Trustors, core.AgentID(node))
		case agent.KindTrustee:
			p.Trustees = append(p.Trustees, core.AgentID(node))
		}
	}
	if cfg.Attack.Enabled() {
		p.installAttackers()
	}
	p.buildCSR(workers)
	return p
}

func sortIDs(ids []core.AgentID) {
	slices.Sort(ids)
}

// setupWorkers resolves the worker-pool width of the population build and
// seeding passes — the same rule as Engine.workers: the config's
// Parallelism, falling back to GOMAXPROCS.
func (p *Population) setupWorkers() int {
	if p.cfg.Parallelism > 0 {
		return p.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forNodes runs fn over contiguous chunks of [0, n) on a pool of workers
// and waits for completion. Chunks are disjoint, so fn may write per-node
// state freely; each call is a barrier (later passes may read what earlier
// ones wrote). fn also receives its worker index for per-worker
// accumulation. Determinism is the caller's job: per-node rng sub-streams,
// no reads of another chunk's in-flight writes.
func forNodes(n, workers int, fn func(worker, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(w, lo, hi)
		}()
	}
	wg.Wait()
}

// buildCSR flattens the graph adjacency into shared CSR arrays and derives
// the trustee-filtered variant plus the dense candidate mask. It runs after
// role assignment (and attacker installation — both trustee kinds count as
// candidates, so the mask is stable under the attack subsystem's kind
// flip). Every pass either prefix-sums serially or fills disjoint spans in
// parallel, so the arrays are identical at every worker count.
func (p *Population) buildCSR(workers int) {
	g := p.Net.Graph
	n := g.NumNodes()
	p.adjOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		p.adjOff[u+1] = p.adjOff[u] + int32(len(g.Neighbors(graph.NodeID(u))))
	}
	p.adjTo = make([]core.AgentID, p.adjOff[n])
	p.candMask = make([]bool, n)
	forNodes(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			span := p.adjTo[p.adjOff[u]:p.adjOff[u+1]]
			for i, v := range g.Neighbors(graph.NodeID(u)) {
				span[i] = core.AgentID(v)
			}
			k := p.Agents[u].Kind
			p.candMask[u] = k == agent.KindTrustee || k == agent.KindDishonestTrustee
		}
	})
	// Trustee-filtered CSR: per-node counts (reading the completed mask),
	// serial prefix sum, then disjoint span fill.
	trusteeCnt := make([]int32, n)
	forNodes(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			c := int32(0)
			for _, v := range p.adjTo[p.adjOff[u]:p.adjOff[u+1]] {
				if p.candMask[v] {
					c++
				}
			}
			trusteeCnt[u] = c
		}
	})
	p.trusteeOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		p.trusteeOff[u+1] = p.trusteeOff[u] + trusteeCnt[u]
	}
	p.trusteeTo = make([]core.AgentID, p.trusteeOff[n])
	forNodes(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			out := p.trusteeTo[p.trusteeOff[u]:p.trusteeOff[u+1]]
			i := 0
			for _, v := range p.adjTo[p.adjOff[u]:p.adjOff[u+1]] {
				if p.candMask[v] {
					out[i] = v
					i++
				}
			}
		}
	})
}

// Agent returns the agent at a node.
func (p *Population) Agent(id core.AgentID) *agent.Agent { return p.Agents[id] }

// Config returns the population configuration.
func (p *Population) Config() PopulationConfig { return p.cfg }

// Rand derives a deterministic stream for one experiment phase.
func (p *Population) Rand(label string) *rand.Rand {
	return rng.New(p.cfg.Seed, "sim", p.Net.Profile.Name, label)
}

// Neighbors returns the social neighbors of an agent. The slice is a shared
// view into the population's CSR adjacency and must not be modified.
func (p *Population) Neighbors(id core.AgentID) []core.AgentID {
	return p.adjTo[p.adjOff[id]:p.adjOff[id+1]]
}

// TrusteeNeighbors returns the trustee-kind neighbors of an agent — the
// direct candidate set used by the mutuality and net-profit experiments.
// The slice is a shared view into the trustee-filtered CSR adjacency and
// must not be modified.
func (p *Population) TrusteeNeighbors(id core.AgentID) []core.AgentID {
	return p.trusteeTo[p.trusteeOff[id]:p.trusteeOff[id+1]]
}

// Searcher builds a transitivity searcher over the population's live trust
// stores. Any node may relay recommendations, but only trustee-role agents
// may become potential trustees, matching the paper's role split.
func (p *Population) Searcher(maxDepth int, omega1, omega2 float64) *core.Searcher {
	return &core.Searcher{
		Neighbors: p.Neighbors,
		Records: func(holder, about core.AgentID) []core.Record {
			return p.Agents[holder].Store.Records(about)
		},
		RecordsAppend: func(holder, about core.AgentID, buf []core.Record) []core.Record {
			return p.Agents[holder].Store.AppendRecords(about, buf)
		},
		Norm:          p.cfg.Update.Norm,
		MaxDepth:      maxDepth,
		Omega1:        omega1,
		Omega2:        omega2,
		CandidateMask: p.candMask,
		CandidateFilter: func(id core.AgentID) bool {
			k := p.Agents[id].Kind
			return k == agent.KindTrustee || k == agent.KindDishonestTrustee
		},
	}
}

// Catalog returns the task catalog shared by every store of the population.
func (p *Population) Catalog() *task.Catalog { return p.cfg.Update.Catalog }

// TrustView captures a frozen-epoch snapshot of every agent's store along
// the social edges — the read substrate of the transitivity sweeps. The
// snapshot shares the population's CSR adjacency and copies the current
// per-edge records into a contiguous compact arena; it stays valid until the
// next store mutation (delegation round, seeding pass, or identity churn).
func (p *Population) TrustView() *core.TrustView {
	return p.TrustViewParallel(1, nil)
}

// CaptureSource exposes the population's stores to the trust-view capture
// (core.CaptureTrustView): the shared catalog, per-edge record counts for
// the sizing pass, and in-place compact appends for the fill pass.
func (p *Population) CaptureSource() core.CaptureSource {
	cat := p.Catalog()
	return core.CaptureSource{
		Catalog: cat,
		Count: func(holder, about core.AgentID) int {
			return p.Agents[holder].Store.RecordCount(about)
		},
		Append: func(holder, about core.AgentID, buf []core.CompactRecord) []core.CompactRecord {
			return p.Agents[holder].Store.AppendCompact(about, cat, buf)
		},
	}
}

// TrustViewParallel is TrustView captured over a worker pool, drawing
// arenas from pool (either may be degraded: workers <= 1 captures
// serially, a nil pool allocates fresh). The result is byte-identical to
// TrustView at every worker count. A population large enough to overflow
// the arena offset space (~2.1 G records) panics with ErrArenaOverflow —
// callers that want the error handle core.CaptureTrustView directly.
func (p *Population) TrustViewParallel(workers int, pool *core.ArenaPool) *core.TrustView {
	v, err := core.CaptureTrustView(p.adjOff, p.adjTo, p.CaptureSource(), workers, pool)
	if err != nil {
		panic(err)
	}
	return v
}

// RoundSource exposes the population's stores to a round-view capture: the
// trust-view record passes plus the per-edge usage logs behind the reverse
// evaluation.
func (p *Population) RoundSource() core.RoundSource {
	return core.RoundSource{
		CaptureSource: p.CaptureSource(),
		Usage: func(holder, about core.AgentID) core.UsageLog {
			return p.Agents[holder].Store.Usage(about)
		},
	}
}

// RoundView captures a frozen snapshot of everything a delegation round
// reads — per-edge experience records and usage counters — over a worker
// pool, drawing arenas from pool (workers <= 1 captures serially, a nil
// pool allocates fresh). Byte-identical at every worker count. The engine
// publishes one per round boundary through its EpochHandle.
func (p *Population) RoundView(workers int, pool *core.ArenaPool) *core.RoundView {
	v, err := core.CaptureRoundView(p.adjOff, p.adjTo, p.RoundSource(), p.cfg.Update.Norm, workers, pool)
	if err != nil {
		panic(err)
	}
	return v
}
