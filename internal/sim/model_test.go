package sim

import (
	"fmt"
	"testing"

	"siot/internal/adversary"
	"siot/internal/core"
	"siot/internal/task"
)

// newModels resolves the two non-adapter registered models — the zoo's
// additions beyond the paper's three policies.
func newModels(t *testing.T) []core.TrustModel {
	t.Helper()
	out := make([]core.TrustModel, 0, 2)
	for _, name := range []string{"hellinger-mf", "feature-weighted"} {
		m, err := core.ParseModel(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

// TestSweepShardedModelDeterminism extends the sharded-sweep determinism
// contract to the non-adapter models: for hellinger-mf (epoch-trained) and
// feature-weighted, the sweep is bit-identical at every worker count and
// shard width — the property the model-matrix golden's P=1 ≡ P=8 pin
// rests on.
func TestSweepShardedModelDeterminism(t *testing.T) {
	p, setup := viewTestPopulation(t, 23, 5)
	for _, m := range newModels(t) {
		want := SweepShardedModel(p, setup, m, 77, 1, 0)
		if want.Requests == 0 {
			t.Fatalf("%s: sweep made no requests — fixture too small to test", m.Name())
		}
		for _, shard := range []int{7, 64, len(p.Trustors) + 1} {
			for _, workers := range []int{1, 4, 8} {
				got := SweepShardedModel(p, setup, m, 77, workers, shard)
				assertSameStats(t, fmt.Sprintf("%s shard=%d workers=%d", m.Name(), shard, workers), want, got)
			}
		}
	}
}

// TestHellingerTrainWorkerDeterminism pins EpochTrainable's contract for
// the factorization model directly: scorers trained on the same frozen
// view at 1, 4, and 8 workers return bit-identical edge scores — and an
// edge with no experience records stays blocked (the factorization
// interpolates strength of evidence, never existence, which is what keeps
// an honest ring equivalent to no attack).
func TestHellingerTrainWorkerDeterminism(t *testing.T) {
	p, setup := viewTestPopulation(t, 23, 5)
	m, err := core.ParseModel("hellinger-mf")
	if err != nil {
		t.Fatal(err)
	}
	trainable := m.(core.EpochTrainable)
	norm := p.Config().Update.Norm
	view := p.TrustView()
	probes := []task.Task{
		setup.Universe.Tasks[0],
		task.Uniform(99, task.CharGPS, task.CharCompute),
	}
	ref := trainable.TrainEpoch(view, norm, 1)
	blocked, scored := 0, 0
	for _, workers := range []int{4, 8} {
		got := trainable.TrainEpoch(view, norm, workers)
		for e := int32(0); e < int32(view.NumEdges()); e++ {
			for _, tk := range probes {
				wantV, wantOK := ref.EdgeTW(view, e, tk)
				gotV, gotOK := got.EdgeTW(view, e, tk)
				if gotV != wantV || gotOK != wantOK {
					t.Fatalf("workers=%d edge %d task %d: EdgeTW = (%v, %v), serial (%v, %v)",
						workers, e, tk.Type(), gotV, gotOK, wantV, wantOK)
				}
			}
		}
	}
	for e := int32(0); e < int32(view.NumEdges()); e++ {
		v, ok := ref.EdgeTW(view, e, probes[0])
		if len(view.EdgeRecords(e)) == 0 {
			if ok {
				t.Fatalf("edge %d has no records but scored %v", e, v)
			}
			blocked++
			continue
		}
		if ok {
			if v < 0 || v > 1 {
				t.Fatalf("edge %d: trained score %v outside [0, 1]", e, v)
			}
			scored++
		}
	}
	if scored == 0 {
		t.Fatal("trained scorer admitted no edges — fixture too small to test")
	}
	if blocked == 0 {
		t.Fatal("fixture has no evidence-less edges — blocking property untested")
	}
}

// TestModelProbeHonestRingIsNull extends the engine-level null-attack
// property to the cross-model probe: a ring running the Honest null model
// and a ring running OnOff{Duty: 1} (an attacker that never enters its
// malicious phase) must produce bit-identical PerceivedTrustModels values
// for every registered model — the like-for-like baseline the resilience
// matrix subtracts is exactly "the same machinery, minus the attack".
func TestModelProbeHonestRingIsNull(t *testing.T) {
	models := make([]core.TrustModel, 0, len(core.ModelNames()))
	for _, name := range core.ModelNames() {
		m, err := core.ParseModel(name)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	tk := task.Uniform(1, task.CharCompute)
	probe := func(model adversary.Attack) []Perceived {
		p := attackPopulation(t, 5, AttackConfig{Model: model, Attackers: 20}, 1)
		eng := NewEngine(p, "attack-test")
		var c MutualityCounters
		for round := 0; round < 20; round++ {
			eng.MutualityRound(round, tk, &c)
		}
		return eng.PerceivedTrustModels(20, tk, models)
	}
	honest := probe(adversary.Honest{})
	neverOn := probe(adversary.OnOff{Period: 10, Duty: 1})
	for mi, m := range models {
		if honest[mi] != neverOn[mi] {
			t.Fatalf("model %s: honest ring %+v != never-malicious ring %+v",
				m.Name(), honest[mi], neverOn[mi])
		}
		if honest[mi].Honest <= 0 || honest[mi].Attacker <= 0 {
			t.Fatalf("model %s: degenerate probe %+v (no candidates scored)", m.Name(), honest[mi])
		}
	}
}
