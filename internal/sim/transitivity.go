package sim

import (
	"math/rand/v2"

	"siot/internal/core"
	"siot/internal/task"
)

// TransitivitySetup configures the transitivity experiments of §5.5.
type TransitivitySetup struct {
	// Universe is the closed set of task types circulating in the network.
	Universe task.Universe
	// TasksPerNode is how many experienced task types each node carries
	// ("Every network node keeps the trustworthiness records of two
	// different tasks").
	TasksPerNode int
	// MaxDepth bounds the recommendation chains.
	MaxDepth int
	// Omega1, Omega2 are the ω thresholds of eqs. 7 and 11.
	Omega1, Omega2 float64
	// RecordNoise perturbs seeded expectations around the node's actual
	// capability ("neighboring nodes ... establish the trustworthiness of
	// this node that approaches its actual capability").
	RecordNoise float64
	// RecordDensity is the probability that a given social neighbor holds
	// direct experience records about a node. Real networks are sparse in
	// experience — only "neighboring nodes that have direct experiences"
	// carry records — and this density reproduces the paper's unavailable
	// rates and potential-trustee counts.
	RecordDensity float64
	// UnknownFrac is the fraction of nodes nobody has experience with yet
	// (newcomers). Zero-inflating experience reproduces the paper's lumpy
	// availability: many trustors find no candidate while the others find
	// several good ones.
	UnknownFrac float64
}

// DefaultTransitivitySetup mirrors the paper's parameters for a given
// characteristic-alphabet size. The ω thresholds are 0: §5.5 describes the
// delegation operationally — requests are relayed through any node with
// relevant experience and the trustor picks the candidate with the highest
// transferred trustworthiness — so selection, not gating, does the work.
// (With ω1 = 0 the aggressive candidate set provably contains the
// conservative one, which is the containment behind Fig. 11.)
func DefaultTransitivitySetup(numChars int, r *rand.Rand) TransitivitySetup {
	return TransitivitySetup{
		Universe:      task.NewUniverse(2*numChars, numChars, r),
		TasksPerNode:  2,
		MaxDepth:      2,
		Omega1:        0,
		Omega2:        0,
		RecordNoise:   0.08,
		RecordDensity: 0.55,
		UnknownFrac:   0.3,
	}
}

// SeedExperience prepares the ground truth and experience records:
//
//   - every node gets a per-characteristic capability drawn uniformly from
//     [0, 1] (stored in its agent behavior);
//   - every node is assigned TasksPerNode experienced task types;
//   - every social neighbor receives an experience record about the node
//     for those tasks, with expectation tracking the node's true capability
//     up to RecordNoise.
//
// It returns the per-node experienced task list for tests and reports.
func SeedExperience(p *Population, setup TransitivitySetup, r *rand.Rand) [][]task.Task {
	n := len(p.Agents)
	experienced := make([][]task.Task, n)
	// Ground-truth capabilities per characteristic.
	for _, a := range p.Agents {
		for c := 0; c < setup.Universe.NumCharacteristics; c++ {
			a.Behavior.Competence[task.Characteristic(c)] = r.Float64()
		}
	}
	// Experienced tasks and neighbor records. Newcomers (UnknownFrac) have
	// no holders; otherwise a RecordDensity fraction of neighbors carries
	// direct experience with the node.
	density := setup.RecordDensity
	if density <= 0 {
		density = 1
	}
	for node, a := range p.Agents {
		types := r.Perm(len(setup.Universe.Tasks))[:setup.TasksPerNode]
		var holders []core.AgentID
		if r.Float64() >= setup.UnknownFrac {
			for _, u := range p.Neighbors(a.ID) {
				if r.Float64() < density {
					holders = append(holders, u)
				}
			}
		}
		for _, ti := range types {
			tk := setup.Universe.Tasks[ti]
			experienced[node] = append(experienced[node], tk)
			// Having accomplished a task implies competence on its
			// characteristics ("potential trustees who have accomplished
			// tasks that contain ... the characteristics").
			for _, ch := range tk.Characteristics() {
				if a.Behavior.Competence[ch] < 0.55 {
					a.Behavior.Competence[ch] = 0.55 + 0.4*r.Float64()
				}
			}
			cap := a.Behavior.TaskCompetence(tk)
			for _, u := range holders {
				// The neighbor's record approaches the true capability.
				s := clamp01(cap + setup.RecordNoise*(2*r.Float64()-1))
				exp := core.Expectation{S: s, G: s, D: 1 - s, C: 0}
				p.Agent(u).Store.Seed(a.ID, tk, exp)
			}
		}
	}
	return experienced
}

// SeedExperienceFromFeatures is the Table 2 variant of SeedExperience:
// "some real-world node properties of the three social networks ...
// represent task characteristics". The node's profile features (from the
// network generator or loader) play the role of characteristics — a node is
// genuinely capable on featured characteristics and weak elsewhere, and its
// experienced tasks are drawn among universe tasks touching its features.
func SeedExperienceFromFeatures(p *Population, setup TransitivitySetup, r *rand.Rand) [][]task.Task {
	n := len(p.Agents)
	experienced := make([][]task.Task, n)
	feats := p.Net.Features
	for node, a := range p.Agents {
		have := map[task.Characteristic]bool{}
		if node < len(feats) {
			for _, f := range feats[node] {
				have[task.Characteristic(f)] = true
			}
		}
		for c := 0; c < setup.Universe.NumCharacteristics; c++ {
			ch := task.Characteristic(c)
			if have[ch] {
				a.Behavior.Competence[ch] = 0.6 + 0.35*r.Float64()
			} else {
				a.Behavior.Competence[ch] = 0.3 * r.Float64()
			}
		}
		// Prefer experienced tasks that touch the node's features.
		var preferred, rest []int
		for ti, tk := range setup.Universe.Tasks {
			touches := false
			for _, c := range tk.Characteristics() {
				if have[c] {
					touches = true
					break
				}
			}
			if touches {
				preferred = append(preferred, ti)
			} else {
				rest = append(rest, ti)
			}
		}
		r.Shuffle(len(preferred), func(i, j int) { preferred[i], preferred[j] = preferred[j], preferred[i] })
		r.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		pick := append(append([]int(nil), preferred...), rest...)[:setup.TasksPerNode]
		density := setup.RecordDensity
		if density <= 0 {
			density = 1
		}
		var holders []core.AgentID
		if r.Float64() >= setup.UnknownFrac {
			for _, u := range p.Neighbors(a.ID) {
				if r.Float64() < density {
					holders = append(holders, u)
				}
			}
		}
		for _, ti := range pick {
			tk := setup.Universe.Tasks[ti]
			experienced[node] = append(experienced[node], tk)
			// Accomplished tasks imply competence on their characteristics.
			for _, ch := range tk.Characteristics() {
				if a.Behavior.Competence[ch] < 0.55 {
					a.Behavior.Competence[ch] = 0.55 + 0.4*r.Float64()
				}
			}
			cap := a.Behavior.TaskCompetence(tk)
			for _, u := range holders {
				s := clamp01(cap + setup.RecordNoise*(2*r.Float64()-1))
				p.Agent(u).Store.Seed(a.ID, tk, core.Expectation{S: s, G: s, D: 1 - s, C: 0})
			}
		}
	}
	return experienced
}

// TransitivityStats aggregates the per-trustor results of one transitivity
// run — the metrics of Figs. 9–12 and Table 2.
type TransitivityStats struct {
	Requests    int
	Successes   int
	Unavailable int
	// PotentialTrustees sums the candidate counts (Fig. 11 divides by
	// Requests).
	PotentialTrustees int
	// InquiredPerTrustor records each trustor's search overhead (Fig. 12).
	InquiredPerTrustor []int
}

// SuccessRate is successes over requests.
func (s TransitivityStats) SuccessRate() float64 { return ratio(s.Successes, s.Requests) }

// UnavailableRate is unanswered requests over requests.
func (s TransitivityStats) UnavailableRate() float64 { return ratio(s.Unavailable, s.Requests) }

// AvgPotentialTrustees is the mean candidate count per request.
func (s TransitivityStats) AvgPotentialTrustees() float64 {
	return ratio(s.PotentialTrustees, s.Requests)
}

// TransitivityRun has every trustor issue one random task request resolved
// through the given trust-transfer policy. The trustor delegates to the
// candidate with the highest transferred trustworthiness; the delegation
// succeeds with probability equal to the trustee's true task capability.
// Only unilateral evaluation is used, matching the paper ("we only consider
// unilateral evaluation ... in order not to mix the performances of
// different features").
//
// The per-trustor task sequence is derived from seed independently of the
// policy, so runs with the same seed compare the three methods on the same
// workload, as the paper's figures do.
//
// TransitivityRun is the serial entry point; it shares its implementation
// with Engine.TransitivityRun, whose worker pool produces bit-identical
// results at any parallelism.
func TransitivityRun(p *Population, setup TransitivitySetup, policy core.Policy, seed uint64) TransitivityStats {
	return transitivityRun(p, setup, policy, seed, 1)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
