package sim

import (
	"math/rand/v2"

	"siot/internal/core"
	"siot/internal/task"
)

// TransitivitySetup configures the transitivity experiments of §5.5.
type TransitivitySetup struct {
	// Universe is the closed set of task types circulating in the network.
	Universe task.Universe
	// TasksPerNode is how many experienced task types each node carries
	// ("Every network node keeps the trustworthiness records of two
	// different tasks").
	TasksPerNode int
	// MaxDepth bounds the recommendation chains.
	MaxDepth int
	// Omega1, Omega2 are the ω thresholds of eqs. 7 and 11.
	Omega1, Omega2 float64
	// RecordNoise perturbs seeded expectations around the node's actual
	// capability ("neighboring nodes ... establish the trustworthiness of
	// this node that approaches its actual capability").
	RecordNoise float64
	// RecordDensity is the probability that a given social neighbor holds
	// direct experience records about a node. Real networks are sparse in
	// experience — only "neighboring nodes that have direct experiences"
	// carry records — and this density reproduces the paper's unavailable
	// rates and potential-trustee counts.
	RecordDensity float64
	// UnknownFrac is the fraction of nodes nobody has experience with yet
	// (newcomers). Zero-inflating experience reproduces the paper's lumpy
	// availability: many trustors find no candidate while the others find
	// several good ones.
	UnknownFrac float64
}

// DefaultTransitivitySetup mirrors the paper's parameters for a given
// characteristic-alphabet size. The ω thresholds are 0: §5.5 describes the
// delegation operationally — requests are relayed through any node with
// relevant experience and the trustor picks the candidate with the highest
// transferred trustworthiness — so selection, not gating, does the work.
// (With ω1 = 0 the aggressive candidate set provably contains the
// conservative one, which is the containment behind Fig. 11.)
func DefaultTransitivitySetup(numChars int, r *rand.Rand) TransitivitySetup {
	return TransitivitySetup{
		Universe:      task.NewUniverse(2*numChars, numChars, r),
		TasksPerNode:  2,
		MaxDepth:      2,
		Omega1:        0,
		Omega2:        0,
		RecordNoise:   0.08,
		RecordDensity: 0.55,
		UnknownFrac:   0.3,
	}
}

// TransitivityStats aggregates the per-trustor results of one transitivity
// run — the metrics of Figs. 9–12 and Table 2.
type TransitivityStats struct {
	Requests    int
	Successes   int
	Unavailable int
	// PotentialTrustees sums the candidate counts (Fig. 11 divides by
	// Requests).
	PotentialTrustees int
	// InquiredPerTrustor records each trustor's search overhead (Fig. 12).
	InquiredPerTrustor []int
}

// SuccessRate is successes over requests.
func (s TransitivityStats) SuccessRate() float64 { return ratio(s.Successes, s.Requests) }

// UnavailableRate is unanswered requests over requests.
func (s TransitivityStats) UnavailableRate() float64 { return ratio(s.Unavailable, s.Requests) }

// AvgPotentialTrustees is the mean candidate count per request.
func (s TransitivityStats) AvgPotentialTrustees() float64 {
	return ratio(s.PotentialTrustees, s.Requests)
}

// TransitivityRun has every trustor issue one random task request resolved
// through the given trust-transfer policy. The trustor delegates to the
// candidate with the highest transferred trustworthiness; the delegation
// succeeds with probability equal to the trustee's true task capability.
// Only unilateral evaluation is used, matching the paper ("we only consider
// unilateral evaluation ... in order not to mix the performances of
// different features").
//
// The per-trustor task sequence is derived from seed independently of the
// policy, so runs with the same seed compare the three methods on the same
// workload, as the paper's figures do.
//
// TransitivityRun is the serial entry point; it shares its implementation
// with Engine.TransitivityRun, whose worker pool produces bit-identical
// results at any parallelism.
func TransitivityRun(p *Population, setup TransitivitySetup, policy core.Policy, seed uint64) TransitivityStats {
	return transitivityRun(p, setup, policy, seed, 1)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
