package sim

import (
	"math/rand/v2"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/task"
)

// MutualityCounters aggregates the Fig. 7 metrics.
type MutualityCounters struct {
	// Requests counts delegation requests issued by trustors.
	Requests int
	// Successes counts delegations whose task was accomplished.
	Successes int
	// Unavailable counts requests no trustee accepted ("some trustors may
	// not find any trustee to accept task τ because of the low
	// trustworthiness values in the reverse evaluations").
	Unavailable int
	// Uses counts granted uses of trustee resources; Abuses the abusive
	// subset.
	Uses   int
	Abuses int
	// AttackerDelegations counts accepted delegations that landed on an
	// attacking trustee (always 0 without an attack scenario).
	AttackerDelegations int
}

// SuccessRate is successes over requests.
func (c MutualityCounters) SuccessRate() float64 { return ratio(c.Successes, c.Requests) }

// UnavailableRate is unanswered requests over requests.
func (c MutualityCounters) UnavailableRate() float64 { return ratio(c.Unavailable, c.Requests) }

// AbuseRate is abusive uses over all uses of trustees' resources.
func (c MutualityCounters) AbuseRate() float64 { return ratio(c.Abuses, c.Uses) }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// MutualityRound plays one round of the Fig. 7 experiment: every trustor
// requests task tk from its best-trusted trustee neighbor; each candidate
// reverse-evaluates the trustor against θ (eq. 1); accepted delegations
// execute, the trustor possibly abuses the granted resource, and the trustee
// logs the usage for future reverse evaluations.
func MutualityRound(p *Population, tk task.Task, r *rand.Rand, c *MutualityCounters) {
	order := r.Perm(len(p.Trustors))
	for _, ti := range order {
		x := p.Trustors[ti]
		trustor := p.Agent(x)
		nbrs := p.TrusteeNeighbors(x)
		if len(nbrs) == 0 {
			continue // socially isolated from trustees: not a request
		}
		c.Requests++
		cands := make([]core.Candidate, 0, len(nbrs))
		for _, y := range nbrs {
			tw, ok := trustor.Store.BestTW(y, tk)
			if !ok {
				tw = 0.5 // neutral prior before any experience
			}
			cands = append(cands, core.Candidate{ID: y, TW: tw})
		}
		chosen, ok := core.SelectMutual(cands, func(y core.AgentID) bool {
			return p.Agent(y).AcceptsDelegation(x)
		})
		if !ok {
			c.Unavailable++
			continue
		}
		trustee := p.Agent(chosen.ID)
		out := trustee.Act(tk, env.Perfect, agent.DefaultActConfig(), r)
		if out.Success {
			c.Successes++
		}
		trustor.Store.Observe(chosen.ID, tk, out, core.PerfectEnv())

		// The trustor now uses the granted resource; the trustee logs how.
		abusive := trustor.Behavior.UsesAbusively(r)
		trustee.Store.ObserveUsage(x, abusive)
		c.Uses++
		if abusive {
			c.Abuses++
		}
	}
}
