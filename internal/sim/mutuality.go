package sim

import (
	"siot/internal/task"
)

// MutualityCounters aggregates the Fig. 7 metrics.
type MutualityCounters struct {
	// Requests counts delegation requests issued by trustors.
	Requests int
	// Successes counts delegations whose task was accomplished.
	Successes int
	// Unavailable counts requests no trustee accepted ("some trustors may
	// not find any trustee to accept task τ because of the low
	// trustworthiness values in the reverse evaluations").
	Unavailable int
	// Uses counts granted uses of trustee resources; Abuses the abusive
	// subset.
	Uses   int
	Abuses int
	// AttackerDelegations counts accepted delegations that landed on an
	// attacking trustee (always 0 without an attack scenario).
	AttackerDelegations int
}

// SuccessRate is successes over requests.
func (c MutualityCounters) SuccessRate() float64 { return ratio(c.Successes, c.Requests) }

// UnavailableRate is unanswered requests over requests.
func (c MutualityCounters) UnavailableRate() float64 { return ratio(c.Unavailable, c.Requests) }

// AbuseRate is abusive uses over all uses of trustees' resources.
func (c MutualityCounters) AbuseRate() float64 { return ratio(c.Abuses, c.Uses) }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// mutualityRoundLabel is the engine label the package-level MutualityRound
// helper runs under; tests pinning helper ≡ engine equivalence construct
// their reference engine with the same label.
const mutualityRoundLabel = "serial"

// MutualityRound plays one round of the Fig. 7 experiment: every trustor
// requests task tk from its best-trusted trustee neighbor; each candidate
// reverse-evaluates the trustor against θ (eq. 1); accepted delegations
// execute, the trustor possibly abuses the granted resource, and the
// trustee logs the usage for future reverse evaluations.
//
// This is a convenience wrapper over the engine round at parallelism 1 —
// the former hand-rolled serial loop (sequential within-round visibility,
// caller-supplied shared rand.Rand) is retired, so the helper now carries
// the engine's simultaneous-request semantics and determinism contract:
// round indexes the per-trustor random sub-streams and must advance every
// call, and the result is bit-identical to an Engine at any parallelism
// with label "serial" (TestMutualityRoundMatchesEngine). Callers that play
// many rounds should hold an Engine instead and skip the per-call
// neighbor-list precompute.
func MutualityRound(p *Population, round int, tk task.Task, c *MutualityCounters) {
	eng := Engine{Pop: p, Parallelism: 1, Label: mutualityRoundLabel}
	eng.MutualityRound(round, tk, c)
}
