package sim

import (
	"sync"
	"sync/atomic"
	"testing"

	"siot/internal/adversary"
	"siot/internal/core"
	"siot/internal/task"
)

// TestEpochHandleLifecycle walks the publish → acquire → swap → retire
// cycle: readers always see the epoch that was current at Acquire time,
// and a reader that straddles a swap keeps its snapshot.
func TestEpochHandleLifecycle(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(17))
	var h EpochHandle
	if h.Current() || h.Acquire() != nil {
		t.Fatal("empty handle claims a current epoch")
	}
	v1 := p.RoundView(1, nil)
	h.Publish(v1)
	if !h.Current() {
		t.Fatal("published epoch not current")
	}
	ref := h.Acquire()
	if ref == nil || ref.View() != v1 {
		t.Fatal("acquire did not hand out the published view")
	}
	// Swap to a fresh epoch: the outstanding reader keeps v1 alive.
	v2 := p.RoundView(1, nil)
	h.Publish(v2)
	if ref.View() != v1 {
		t.Fatal("outstanding reader lost its snapshot across a swap")
	}
	ref2 := h.Acquire()
	if ref2.View() != v2 {
		t.Fatal("new reader did not get the new epoch")
	}
	ref.Release()
	ref2.Release()
	h.Retire()
	if h.Current() || h.Acquire() != nil {
		t.Fatal("retired handle still serves an epoch")
	}
	h.Retire() // idempotent on an empty handle
}

// TestEpochHandleDoubleReleasePanics: releasing one acquired reference
// twice is a bug that could free arenas under a live reader, so it must
// panic instead of silently double-decrementing.
func TestEpochHandleDoubleReleasePanics(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(18))
	var h EpochHandle
	h.Publish(p.RoundView(1, nil))
	ref := h.Acquire()
	ref.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
		h.Retire()
	}()
	ref.Release()
}

// TestEpochViewAfterReleasePanics: a released reference must not hand out
// its view — the arenas may already be recycled into a newer capture, so a
// silent return would serve torn data. View (and Attachment) must panic the
// way a double Release does.
func TestEpochViewAfterReleasePanics(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(19))
	var h EpochHandle
	h.Publish(p.RoundView(1, nil))
	defer h.Retire()
	ref := h.Acquire()
	if ref.View() == nil {
		t.Fatal("live reference has no view")
	}
	ref.Release()
	for name, use := range map[string]func(){
		"View":       func() { ref.View() },
		"Attachment": func() { ref.Attachment() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a released epoch reference did not panic", name)
				}
			}()
			use()
		}()
	}
}

// epochProbe is a test EpochAttachment counting its releases.
type epochProbe struct{ released atomic.Int32 }

func (a *epochProbe) ReleaseEpoch() { a.released.Add(1) }

// TestEpochAttachmentLifecycle: a payload published with PublishWith stays
// readable through every outstanding reference and is released exactly once,
// when the last reference goes — the contract a serving layer's per-epoch
// memo tables rely on.
func TestEpochAttachmentLifecycle(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(20))
	var h EpochHandle
	a1 := &epochProbe{}
	h.PublishWith(p.RoundView(1, nil), a1)
	ref := h.Acquire()
	if ref.Attachment() != a1 {
		t.Fatal("acquire did not hand out the published attachment")
	}
	// Swap: the straddling reader keeps the old payload alive.
	a2 := &epochProbe{}
	h.PublishWith(p.RoundView(1, nil), a2)
	if ref.Attachment() != a1 {
		t.Fatal("straddling reader lost its attachment across a swap")
	}
	if n := a1.released.Load(); n != 0 {
		t.Fatalf("attachment released %d times with a reader outstanding", n)
	}
	ref.Release()
	if n := a1.released.Load(); n != 1 {
		t.Fatalf("old attachment released %d times after last reference, want 1", n)
	}
	h.Retire()
	if n := a2.released.Load(); n != 1 {
		t.Fatalf("current attachment released %d times after retire, want 1", n)
	}
}

// TestEpochHandleConcurrentSoak hammers the handle the way a serving layer
// does: reader goroutines acquire/read/release in a loop while the writer
// keeps publishing fresh pooled captures through the same handle. Under
// -race this covers the acquire-vs-swap and release-vs-retire windows; the
// per-epoch attachment asserts every epoch is released exactly once.
func TestEpochHandleConcurrentSoak(t *testing.T) {
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(21))
	pool := core.NewArenaPool()
	var h EpochHandle

	const (
		readers   = 4
		publishes = 60
	)
	probes := make([]*epochProbe, 0, publishes)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ref := h.Acquire()
				if ref == nil {
					continue
				}
				view := ref.View()
				// Touch the snapshot: a recycled arena under our feet would
				// trip the race detector here.
				for e := int32(0); e < int32(view.NumEdges()); e += 7 {
					_ = view.EdgeRecords(e)
					_ = view.Usage(e)
				}
				if ref.Attachment() == nil {
					t.Error("live epoch lost its attachment")
					ref.Release()
					return
				}
				ref.Release()
			}
		}()
	}
	for i := 0; i < publishes; i++ {
		probe := &epochProbe{}
		probes = append(probes, probe)
		h.PublishWith(p.RoundView(2, pool), probe)
	}
	stop.Store(true)
	wg.Wait()
	h.Retire()
	for i, probe := range probes {
		if n := probe.released.Load(); n != 1 {
			t.Fatalf("epoch %d released %d times, want exactly 1", i, n)
		}
	}
}

// TestEpochHandleChurnKeepsViewAlive pins the live-read window of identity
// churn closed: a reader acquires an epoch, whitewashing churn then makes
// every peer Forget an attacker mid-flight (Population.Forget rewriting
// the stores while rounds keep swapping epochs through the same handle),
// and the outstanding view must keep serving the pre-churn records — no
// dangling arenas, no leak-through. After the reader releases, a fresh
// pooled capture must match the live post-churn stores exactly (the
// TestArenaPoolNoStaleRecords property at the round-view level).
func TestEpochHandleChurnKeepsViewAlive(t *testing.T) {
	p := attackPopulation(t, 11, AttackConfig{Model: adversary.Whitewashing{RejoinEvery: 3}, Attackers: 20}, 2)
	eng := NewEngine(p, "churn-epoch")
	tk := task.Uniform(1, task.CharCompute)
	var c MutualityCounters
	// Rounds 0–1 accumulate records about the attackers; churn first fires
	// after round 2, which has not run yet.
	for round := 0; round < 2; round++ {
		eng.MutualityRound(round, tk, &c)
	}
	// Find an edge holder→attacker that carries records.
	var holder, attacker core.AgentID
	found := false
	for _, a := range p.Attackers {
		for _, u := range p.Neighbors(a) {
			if p.Agent(u).Store.RecordCount(a) > 0 {
				holder, attacker, found = u, a, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no records about any attacker after two rounds")
	}
	// Acquire an epoch through the engine's own handle — the reader a
	// serving layer would be.
	eng.Rounds.Publish(p.RoundView(2, epochArenas))
	ref := eng.Rounds.Acquire()
	view := ref.View()
	edge, ok := view.EdgeIndex(holder, attacker)
	if !ok {
		t.Fatal("holder→attacker edge missing from view")
	}
	nRecs := len(view.EdgeRecords(edge))
	if nRecs == 0 {
		t.Fatal("captured view lost the holder's records")
	}
	usage := view.Usage(edge)
	// Round 2 runs with our reference outstanding: its own epoch swap drops
	// the publisher ref of our epoch, and its churn pass makes every peer
	// forget the whitewashing attackers.
	eng.MutualityRound(2, tk, &c)
	if got := p.Agent(holder).Store.RecordCount(attacker); got != 0 {
		t.Fatalf("churn did not fire: holder still has %d live records", got)
	}
	if got := len(view.EdgeRecords(edge)); got != nRecs {
		t.Fatalf("outstanding view changed under churn: %d records, had %d", got, nRecs)
	}
	if got := view.Usage(edge); got != usage {
		t.Fatalf("outstanding view usage changed under churn: %+v, had %+v", got, usage)
	}
	ref.Release() // last reference: arenas return to the pool only now
	// A fresh pooled capture (reusing those arenas) must match the live
	// post-churn stores — nothing stale left behind.
	fresh := p.RoundView(2, epochArenas)
	edge2, ok := fresh.EdgeIndex(holder, attacker)
	if !ok {
		t.Fatal("edge missing from fresh view")
	}
	if got := len(fresh.EdgeRecords(edge2)); got != 0 {
		t.Fatalf("fresh capture serves %d stale records about the forgotten attacker", got)
	}
	if got, want := fresh.Usage(edge2), p.Agent(holder).Store.Usage(attacker); got != want {
		t.Fatalf("fresh capture usage %+v, live store says %+v", got, want)
	}
	fresh.Release()
}

// TestMutualityRoundMatchesEngine is the retirement gate of the legacy
// serial helper: the package-level MutualityRound must be bit-identical to
// an Engine with the same label at any parallelism — counters and full
// trust state.
func TestMutualityRoundMatchesEngine(t *testing.T) {
	net := smallNet(t)
	tk := task.Uniform(2, task.CharGPS)
	pa := NewPopulation(net, DefaultPopulationConfig(13))
	var ca MutualityCounters
	for round := 0; round < 8; round++ {
		MutualityRound(pa, round, tk, &ca)
	}
	pb := NewPopulation(net, DefaultPopulationConfig(13))
	eng := &Engine{Pop: pb, Parallelism: 8, Label: mutualityRoundLabel}
	var cb MutualityCounters
	for round := 0; round < 8; round++ {
		eng.MutualityRound(round, tk, &cb)
	}
	if ca != cb {
		t.Fatalf("counters diverge: serial %+v, engine %+v", ca, cb)
	}
	if populationDigest(pa) != populationDigest(pb) {
		t.Fatal("trust state diverges between serial helper and engine")
	}
}

// TestMutualityComputePhaseLockFree is the mutex-contention guard of the
// snapshot-round refactor: with the view captured, the entire compute
// phase — candidate scoring, recommendation gathering with forgery,
// reverse evaluation, outcome draws — takes zero store-shard or usage
// locks, for honest and attacked populations alike.
func TestMutualityComputePhaseLockFree(t *testing.T) {
	scenarios := map[string]AttackConfig{
		"honest":   {},
		"attacked": {Model: adversary.BadMouthing{}, Attackers: 15},
	}
	for name, atk := range scenarios {
		t.Run(name, func(t *testing.T) {
			p := attackPopulation(t, 21, atk, 4)
			eng := NewEngine(p, "lockfree")
			tk := task.Uniform(1, task.CharCompute)
			var c MutualityCounters
			eng.MutualityRound(0, tk, &c) // init + some store state
			attacked := p.AttackEnabled()
			var actx adversary.Context
			if attacked {
				actx = eng.attackContext(eng.mutualityLabel(), 1)
			}
			view := p.RoundView(4, nil)
			defer view.Release()
			var acts []mutualityAction
			locks := core.CountStoreLocks(func() {
				acts = eng.computeMutualityActs(view, attacked, actx, 1, tk)
			})
			if locks != 0 {
				t.Errorf("compute phase took %d store locks, want 0", locks)
			}
			if len(acts) != len(p.Trustors) {
				t.Fatalf("compute phase returned %d actions for %d trustors", len(acts), len(p.Trustors))
			}
		})
	}
}
