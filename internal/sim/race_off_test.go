//go:build !race

package sim

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
