//go:build race

package sim

// raceEnabled reports that the race detector is active: sync.Pool fakes
// misses under -race, so allocation-count guards cannot hold.
const raceEnabled = true
