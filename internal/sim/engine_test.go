package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"
	"time"

	"siot/internal/core"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// populationDigest hashes every agent's full trust state (records, usage
// logs, energy), so two populations compare bit-for-bit.
func populationDigest(p *Population) string {
	h := sha256.New()
	for _, a := range p.Agents {
		fmt.Fprintf(h, "agent %d energy %v\n", a.ID, a.Energy)
		for _, y := range a.Store.Trustees() {
			for _, r := range a.Store.Records(y) {
				fmt.Fprintf(h, "rec %d %d %v %v %v %v %d\n",
					y, r.Task.Type(), r.Exp.S, r.Exp.G, r.Exp.D, r.Exp.C, r.Count)
			}
		}
		for _, x := range p.Trustors {
			if l := a.Store.Usage(x); l != (core.UsageLog{}) {
				fmt.Fprintf(h, "use %d %d %d\n", x, l.Responsible, l.Abusive)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runMutuality plays rounds on a fresh population at the given parallelism
// and returns the counters plus the end-state digest.
func runMutuality(t *testing.T, parallelism int) (MutualityCounters, string) {
	t.Helper()
	net := smallNet(t)
	cfg := DefaultPopulationConfig(11)
	cfg.Theta = 0.3
	cfg.Parallelism = parallelism
	p := NewPopulation(net, cfg)
	eng := NewEngine(p, "determinism")
	tk := task.Uniform(1, task.CharGPS)
	var c MutualityCounters
	for round := 0; round < 25; round++ {
		eng.MutualityRound(round, tk, &c)
	}
	return c, populationDigest(p)
}

func TestEngineMutualityDeterministicAcrossParallelism(t *testing.T) {
	c1, d1 := runMutuality(t, 1)
	c8, d8 := runMutuality(t, 8)
	if c1 != c8 {
		t.Fatalf("counters differ between P=1 and P=8:\nP=1: %+v\nP=8: %+v", c1, c8)
	}
	if d1 != d8 {
		t.Fatal("population end state differs between P=1 and P=8")
	}
	if c1.Requests == 0 || c1.Uses == 0 {
		t.Fatalf("engine round did no work: %+v", c1)
	}
}

func TestEngineMutualityThetaReducesAbuse(t *testing.T) {
	// The engine must preserve the Fig. 7 dynamics: raising θ lowers the
	// abuse rate and raises the unavailable rate.
	net := smallNet(t)
	run := func(theta float64) MutualityCounters {
		cfg := DefaultPopulationConfig(4)
		cfg.Theta = theta
		cfg.Parallelism = 4
		p := NewPopulation(net, cfg)
		eng := NewEngine(p, "theta")
		tk := task.Uniform(1, task.CharGPS)
		var c MutualityCounters
		for round := 0; round < 40; round++ {
			eng.MutualityRound(round, tk, &c)
		}
		return c
	}
	open := run(0)
	strict := run(0.6)
	if open.Unavailable != 0 {
		t.Fatalf("theta=0 produced unavailability: %+v", open)
	}
	if strict.AbuseRate() >= open.AbuseRate() {
		t.Fatalf("abuse did not drop: open=%v strict=%v", open.AbuseRate(), strict.AbuseRate())
	}
	if strict.UnavailableRate() <= open.UnavailableRate() {
		t.Fatalf("unavailability did not rise: open=%v strict=%v",
			open.UnavailableRate(), strict.UnavailableRate())
	}
}

func TestEngineNetProfitDeterministicAcrossParallelism(t *testing.T) {
	net := smallNet(t)
	run := func(parallelism int) []float64 {
		cfg := DefaultPopulationConfig(13)
		cfg.Parallelism = parallelism
		p := NewPopulation(net, cfg)
		return NewEngine(p, "determinism").NetProfitRun(120, StrategyNetProfit, 13)
	}
	s1, s8 := run(1), run(8)
	for i := range s1 {
		if s1[i] != s8[i] {
			t.Fatalf("iteration %d differs: P=1 %v, P=8 %v", i, s1[i], s8[i])
		}
	}
}

// statsEqual compares two transitivity results exactly.
func statsEqual(a, b TransitivityStats) bool {
	if a.Requests != b.Requests || a.Successes != b.Successes ||
		a.Unavailable != b.Unavailable || a.PotentialTrustees != b.PotentialTrustees ||
		len(a.InquiredPerTrustor) != len(b.InquiredPerTrustor) {
		return false
	}
	for i := range a.InquiredPerTrustor {
		if a.InquiredPerTrustor[i] != b.InquiredPerTrustor[i] {
			return false
		}
	}
	return true
}

func TestEngineTransitivityMatchesSerialPath(t *testing.T) {
	// The engine's search fan-out must be bit-identical to the legacy
	// serial TransitivityRun for every policy and parallelism.
	net := smallNet(t)
	p := NewPopulation(net, DefaultPopulationConfig(6))
	r := p.Rand("transit")
	setup := DefaultTransitivitySetup(5, r)
	SeedExperience(p, setup, 6)
	for _, pol := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		serial := TransitivityRun(p, setup, pol, 6)
		for _, workers := range []int{1, 4, 8} {
			eng := &Engine{Pop: p, Parallelism: workers}
			got := eng.TransitivityRun(setup, pol, 6)
			if !statsEqual(serial, got) {
				t.Fatalf("%v at P=%d diverged from the serial path:\nserial: %+v\nP=%d:  %+v",
					pol, workers, serial, workers, got)
			}
		}
	}
}

// benchProfile returns a 1k-node network profile for speedup measurements.
func benchProfile() socialgen.Profile {
	return socialgen.Profile{
		Name: "bench1k", Nodes: 1000, Edges: 8000,
		Communities: 12, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 6, FeaturesPerNode: 2,
	}
}

func TestEngineParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	net := socialgen.Generate(benchProfile(), 1)
	p := NewPopulation(net, DefaultPopulationConfig(1))
	r := p.Rand("speedup")
	setup := DefaultTransitivitySetup(5, r)
	setup.MaxDepth = 3
	SeedExperience(p, setup, 6)
	measure := func(workers int) time.Duration {
		eng := &Engine{Pop: p, Parallelism: workers}
		eng.TransitivityRun(setup, core.PolicyAggressive, 1) // warm the pools
		start := time.Now()
		eng.TransitivityRun(setup, core.PolicyAggressive, 1)
		return time.Since(start)
	}
	serial := measure(1)
	parallel := measure(4)
	t.Logf("serial %v, parallel(4) %v, speedup %.2fx", serial, parallel, float64(serial)/float64(parallel))
	// The benchmarks document the ≥2x target; the test bound is looser to
	// stay robust on loaded CI machines.
	if float64(parallel) > 0.75*float64(serial) {
		t.Fatalf("parallel run not faster: serial %v, parallel %v", serial, parallel)
	}
}
