package sim

import (
	"sync"

	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/task"
)

// TransitivityEpoch is one frozen-epoch read context for transitivity
// sweeps: a round view captured from the population's live stores plus an
// EdgeMemo of per-edge hop values, shared by every search run against it.
// The snapshot is published through an EpochHandle — the same seam the
// engine's mutuality rounds swap through — so every frozen read path in
// the package goes through one refcounted epoch mechanism.
//
// The search phase of a transitivity run is pure — no store is written — so
// a single capture serves any number of Run calls across policies and
// seeds, and the per-characteristic memo tables built for one policy are
// reused by the next. The epoch goes stale as soon as the stores mutate
// (a mutuality round, a seeding pass, identity churn); Reset it after any
// such phase.
type TransitivityEpoch struct {
	p       *Population
	setup   TransitivitySetup
	s       *core.Searcher
	handle  EpochHandle
	memo    *core.EdgeMemo
	workers int
}

// epochArenas recycles trust-view arenas and memo tables across every
// epoch in the process: repeated sweeps (benchmark repetitions, experiment
// repeats, per-call Engine.TransitivityRun captures) reuse the same backing
// memory instead of re-allocating ~2.3 MB per epoch at 1k nodes (~23 MB at
// 10k, 10x that at 100k).
var epochArenas = core.NewArenaPool()

// TransitivityEpoch captures the engine population's stores for a sweep
// under the given setup.
func (e *Engine) TransitivityEpoch(setup TransitivitySetup) *TransitivityEpoch {
	return newTransitivityEpoch(e.Pop, setup, e.workers())
}

func newTransitivityEpoch(p *Population, setup TransitivitySetup, workers int) *TransitivityEpoch {
	ep := &TransitivityEpoch{
		p:       p,
		setup:   setup,
		s:       p.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2),
		workers: workers,
	}
	view := p.RoundView(workers, epochArenas)
	ep.handle.Publish(view)
	ep.memo = core.NewEdgeMemoPooled(view.TrustView, p.cfg.Update.Norm, workers, epochArenas)
	return ep
}

// Handle exposes the epoch's publish seam: external readers may Acquire
// the current snapshot and keep it alive across a Reset.
func (ep *TransitivityEpoch) Handle() *EpochHandle { return &ep.handle }

// Reset re-captures the epoch from the population's current stores: the
// stale snapshot retires through the handle (readers still holding it keep
// it alive; otherwise its arenas go back to the pool), a fresh capture is
// published, and the memo rebinds to it — so a repeated capture–sweep loop
// allocates nothing new at steady state. Use after the stores mutated (a
// mutuality round, a seeding pass); the memo refills lazily on the next
// Run.
func (ep *TransitivityEpoch) Reset() {
	view := ep.p.RoundView(ep.workers, epochArenas)
	ep.handle.Publish(view) // retires the stale epoch
	ep.memo.Reset(view.TrustView)
}

// Release retires the epoch and returns the memo tables to the shared
// pool. The epoch is dead afterwards — Run on a released epoch panics —
// and only the epoch's owner may call it, exactly once (the handle's
// refcount turns a second release into a panic, not a silent arena
// corruption). Callers that let an epoch go out of scope without Release
// merely forgo reuse; correctness is unaffected.
func (ep *TransitivityEpoch) Release() {
	ep.memo.Release()
	ep.handle.Retire()
}

// findSummary is the per-trustor digest a transitivity run keeps: the full
// candidate list dies with the pooled SearchResult, so the sweep allocates
// nothing per search after warmup.
type findSummary struct {
	candidates int
	inquired   int
	best       core.Candidate
	found      bool
}

var resultPool = sync.Pool{New: func() any { return new(core.SearchResult) }}

// defaultSweepShard is the trustor-shard width of Run: large enough that
// the per-shard Require and merge overheads vanish, small enough that the
// per-trustor scratch alive at any instant (task slice, result summaries,
// pooled search states) stays bounded no matter how many trustors the
// population has. At 1M nodes a monolithic sweep materializes ~400k task
// values and summaries at once; a 32k shard keeps the working set at a few
// MB without touching the output.
const defaultSweepShard = 32 * 1024

// Run plays one transitivity run over the frozen epoch: identical semantics
// and bit-identical statistics to the live-store path, with hop values
// served from the memo tables. Safe to call repeatedly (the memo fills
// lazily per policy and task set); not safe concurrently with itself.
func (ep *TransitivityEpoch) Run(policy core.Policy, seed uint64) TransitivityStats {
	return ep.SweepSharded(policy, seed, defaultSweepShard)
}

// RunModel is Run dispatching through a TrustModel: the three policy
// adapters reproduce Run byte for byte (their names equal the policy
// strings, so even the outcome stream keys identically), and registered
// non-policy models ride the same sharded sweep with their hop tables
// built by RequireModel.
func (ep *TransitivityEpoch) RunModel(m core.TrustModel, seed uint64) TransitivityStats {
	return ep.SweepShardedModel(m, seed, defaultSweepShard)
}

// SweepSharded is Run processing the trustors in consecutive shards of the
// given width (<= 0 means one shard): per shard it draws the trustors'
// tasks, tops up the memo, fans the searches out over the worker pool, and
// merges the shard's stats — so only one shard's scratch is ever
// materialized, streaming a million-trustor sweep through a bounded working
// set.
//
// Sharding is invisible in the output — bit-identical statistics at every
// shard width and worker count. The recipe: tasks are drawn from one
// continuing stream in ascending trustor order regardless of shard cuts;
// per-shard memo top-ups only add tables (memoized hops are bit-identical
// to arena fallbacks, so table timing cannot show through); and the merge
// consumes the outcome stream in the same ascending trustor order as the
// monolithic loop (TestSweepShardedEquivalence pins all of this).
func (ep *TransitivityEpoch) SweepSharded(policy core.Policy, seed uint64, shard int) TransitivityStats {
	return ep.SweepShardedModel(policy.Model(), seed, shard)
}

// SweepShardedModel is SweepSharded dispatching through a TrustModel. The
// outcome stream is keyed by the model's name — for policy adapters that
// name IS the historical policy string, so the pre-interface draw sequence
// (and every golden byte) is preserved; a new model gets its own
// independent stream by construction.
func (ep *TransitivityEpoch) SweepShardedModel(m core.TrustModel, seed uint64, shard int) TransitivityStats {
	p := ep.p
	if shard <= 0 {
		shard = len(p.Trustors)
	}
	taskRng := rng.New(seed, "transitivity-tasks", p.Net.Profile.Name)
	outcomeRng := rng.New(seed, "transitivity-outcomes", p.Net.Profile.Name, m.Name())
	ref := ep.handle.Acquire()
	if ref == nil {
		panic("sim: Run on a released TransitivityEpoch")
	}
	defer ref.Release()
	view := ref.View().TrustView
	var st TransitivityStats
	st.InquiredPerTrustor = make([]int, 0, len(p.Trustors))
	var tasks []task.Task
	var results []findSummary
	for lo := 0; lo < len(p.Trustors); lo += shard {
		hi := min(lo+shard, len(p.Trustors))
		ids := p.Trustors[lo:hi]
		if cap(tasks) < len(ids) {
			tasks = make([]task.Task, len(ids))
		}
		tasks = tasks[:len(ids)]
		for i := range tasks {
			tasks[i] = ep.setup.Universe.Random(taskRng)
		}
		// Pre-pass: memoize every per-edge hop value this shard's searches
		// will read, in parallel over the CSR edge array, before the
		// read-only fan-out. Tables built for earlier shards are reused
		// (and trainable models train once, on the first shard).
		ep.memo.RequireModel(m, tasks)
		results = mapTrustorsInto(results, ids, ep.workers, func(i int, x core.AgentID) findSummary {
			res := resultPool.Get().(*core.SearchResult)
			ep.s.FindViewModelInto(res, view, ep.memo, x, tasks[i], m)
			sum := findSummary{candidates: len(res.Candidates), inquired: res.Inquired}
			sum.best, sum.found = res.Best()
			resultPool.Put(res)
			return sum
		})
		for i := range ids {
			res := results[i]
			st.Requests++
			st.PotentialTrustees += res.candidates
			st.InquiredPerTrustor = append(st.InquiredPerTrustor, res.inquired)
			if !res.found {
				st.Unavailable++
				continue
			}
			capability := p.Agent(res.best.ID).Behavior.TaskCompetence(tasks[i])
			if outcomeRng.Float64() < capability {
				st.Successes++
			}
		}
	}
	return st
}

// SweepSharded captures a frozen epoch over the population and plays one
// sharded transitivity run on it — the streaming entry point for one-shot
// sweeps at scales where per-trustor scratch must stay bounded. Equivalent
// to TransitivityRun for every shard width.
func SweepSharded(p *Population, setup TransitivitySetup, policy core.Policy, seed uint64, workers, shard int) TransitivityStats {
	return SweepShardedModel(p, setup, policy.Model(), seed, workers, shard)
}

// SweepShardedModel is SweepSharded dispatching through a TrustModel: the
// one-shot streaming entry point for any registered model.
func SweepShardedModel(p *Population, setup TransitivitySetup, m core.TrustModel, seed uint64, workers, shard int) TransitivityStats {
	ep := newTransitivityEpoch(p, setup, workers)
	defer ep.Release()
	return ep.SweepShardedModel(m, seed, shard)
}
