// Package adversary models the standard family of trust attacks the SIoT
// literature expects a resilient trust model to withstand: bad-mouthing,
// ballot-stuffing, self-promotion, on-off (oscillating) behavior,
// whitewashing (identity churn), and collusion rings that coordinate any of
// them.
//
// An Attack plugs into the simulation engine at three hook points:
//
//   - recommendation forging: when a trustor gathers one-hop
//     recommendations about a candidate trustee, an attacking recommender
//     may replace what its trust store would honestly serve;
//   - service sabotage: an attacking trustee may rewrite the outcome of a
//     delegation it serves, in the engine's pre-merge pass over the round's
//     buffered actions;
//   - identity churn: after a round merges, an attacker may shed its
//     identity, making every peer forget its records and usage logs.
//
// # Determinism contract
//
// Hooks are called from the engine's parallel compute phase, possibly many
// times per round for the same attacker, in an order that depends on
// goroutine scheduling. Implementations must therefore be pure: the result
// may depend only on the hook's arguments, and any randomness must come
// from Context.Rand, which derives a fresh, identical sub-stream — keyed by
// (seed, label, hook, round, attacker) via rng.Split2 discipline — on every
// call. Under that contract, engine runs stay bit-identical at every
// parallelism level.
package adversary

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"

	"siot/internal/core"
	"siot/internal/rng"
)

// Context is the per-round view an attack hook receives from the engine.
type Context struct {
	// Seed is the population seed; Label separates this engine phase's
	// attack streams from every other random stream of the run.
	Seed  uint64
	Label string
	// Round is the current delegation round.
	Round int
	// Ring holds the coordinated attacker IDs in ascending order.
	Ring []core.AgentID
}

// Rand derives the attacker's private random stream for one hook of this
// round. Every call with the same arguments returns a generator producing
// the identical sequence, so hook results cannot depend on how many times
// or in which order the engine invokes them.
func (c Context) Rand(hook string, attacker core.AgentID) *rand.Rand {
	return rng.Split2(c.Seed, c.Label+":"+hook, c.Round, int(attacker))
}

// InRing reports whether id is one of the coordinated attackers.
func (c Context) InRing(id core.AgentID) bool {
	i := sort.Search(len(c.Ring), func(i int) bool { return c.Ring[i] >= id })
	return i < len(c.Ring) && c.Ring[i] == id
}

// Attack is one trust-attack model. The zero value of every concrete model
// in this package is usable and applies the listed defaults.
type Attack interface {
	// Name identifies the model in labels, tables, and CLI flags.
	Name() string
	// Active reports whether the attacker misbehaves as a trustee in this
	// round — the service-behavior-over-time hook (on-off attackers
	// oscillate it, pure-recommendation attackers never raise it).
	Active(ctx Context, attacker core.AgentID) bool
	// ForgeRecommendation lets the attacker replace the recommendation its
	// trust store would serve about subject. It returns the forged
	// trustworthiness and whether a forgery happened at all; (_, false)
	// serves the honest store content.
	ForgeRecommendation(ctx Context, attacker, subject core.AgentID) (tw float64, forged bool)
	// SabotageOutcome rewrites the outcome of a delegation the attacker
	// served. The engine calls it only in rounds where Active is true.
	SabotageOutcome(ctx Context, attacker core.AgentID, out core.Outcome) core.Outcome
	// Churn reports whether the attacker sheds its identity after this
	// round, making every peer forget it (whitewashing).
	Churn(ctx Context, attacker core.AgentID) bool
}

// passive is embedded by models that leave some hooks honest.
type passive struct{}

func (passive) Active(Context, core.AgentID) bool { return false }
func (passive) ForgeRecommendation(Context, core.AgentID, core.AgentID) (float64, bool) {
	return 0, false
}
func (passive) SabotageOutcome(_ Context, _ core.AgentID, out core.Outcome) core.Outcome { return out }
func (passive) Churn(Context, core.AgentID) bool                                         { return false }

// sabotage turns any outcome into a deliberate failure: the task is not
// accomplished and the trustor suffers damage drawn from the attacker's
// private stream (matching the shape of honest failures so the attack is
// not trivially fingerprintable from the damage distribution).
func sabotage(ctx Context, attacker core.AgentID, out core.Outcome) core.Outcome {
	r := ctx.Rand("sabotage", attacker)
	out.Success = false
	out.Gain = 0
	out.Damage = 0.5 + 0.5*r.Float64()
	return out
}

// Honest is the null attack: a ring that runs the full scenario machinery
// (one-hop recommendations included) but never forges, sabotages, or
// churns. Attack experiments use it as the like-for-like baseline — the
// difference between a run under Honest and a run under a real model is
// exactly the attack's effect.
type Honest struct{ passive }

// Name implements Attack.
func (Honest) Name() string { return "honest" }

// BadMouthing forges minimal-trust recommendations about every subject
// outside the attacker's ring, steering trustors away from honest trustees.
// Service stays honest — the attack lives entirely in the recommendation
// channel.
type BadMouthing struct {
	passive
	// TW is the forged trustworthiness (default 0.05).
	TW float64
}

// Name implements Attack.
func (BadMouthing) Name() string { return "bad-mouthing" }

// ForgeRecommendation implements Attack.
func (a BadMouthing) ForgeRecommendation(ctx Context, _, subject core.AgentID) (float64, bool) {
	if ctx.InRing(subject) {
		return 0, false
	}
	return defaultTW(a.TW, 0.05), true
}

// BallotStuffing forges maximal-trust recommendations about every ring
// member, the attacker itself included — stuffing the ballot for accomplices
// regardless of how they actually perform.
type BallotStuffing struct {
	passive
	// TW is the forged trustworthiness (default 0.95).
	TW float64
}

// Name implements Attack.
func (BallotStuffing) Name() string { return "ballot-stuffing" }

// ForgeRecommendation implements Attack.
func (a BallotStuffing) ForgeRecommendation(ctx Context, _, subject core.AgentID) (float64, bool) {
	if !ctx.InRing(subject) {
		return 0, false
	}
	return defaultTW(a.TW, 0.95), true
}

// SelfPromotion forges maximal-trust claims about the attacker itself only —
// the narrow, uncoordinated special case of ballot-stuffing an agent can run
// alone through the self-claim channel of service discovery.
type SelfPromotion struct {
	passive
	// TW is the forged self-claim (default 0.95).
	TW float64
}

// Name implements Attack.
func (SelfPromotion) Name() string { return "self-promotion" }

// ForgeRecommendation implements Attack.
func (a SelfPromotion) ForgeRecommendation(_ Context, attacker, subject core.AgentID) (float64, bool) {
	if subject != attacker {
		return 0, false
	}
	return defaultTW(a.TW, 0.95), true
}

// OnOff alternates honest and malicious service phases: the attacker builds
// trust while "on its best behavior", then spends it sabotaging delegations,
// oscillating faster than slow-forgetting trust updates can track.
type OnOff struct {
	passive
	// Period is the full cycle length in rounds (default 20).
	Period int
	// Duty is the fraction of each cycle served honestly, in [0, 1]. The
	// cycle starts with the honest phase; Duty=1 never attacks (and is
	// bit-identical to a ring running the Honest null model), Duty=0
	// always attacks.
	Duty float64
}

// Name implements Attack.
func (OnOff) Name() string { return "on-off" }

func (a OnOff) period() int {
	if a.Period <= 0 {
		return 20
	}
	return a.Period
}

// Active implements Attack: the honest phase occupies the first
// round(Duty·Period) rounds of every cycle.
func (a OnOff) Active(ctx Context, _ core.AgentID) bool {
	p := a.period()
	honest := int(math.Round(a.Duty * float64(p)))
	if honest >= p {
		return false
	}
	return ctx.Round%p >= honest
}

// SabotageOutcome implements Attack.
func (a OnOff) SabotageOutcome(ctx Context, attacker core.AgentID, out core.Outcome) core.Outcome {
	return sabotage(ctx, attacker, out)
}

// Whitewashing sabotages every delegation it serves and periodically
// re-registers under a fresh identity, wiping the bad reputation it earned:
// every peer forgets its experience records and usage logs about the
// attacker, resetting it to the newcomer prior.
type Whitewashing struct {
	passive
	// RejoinEvery is the identity lifetime in rounds (default 25): the
	// attacker churns after rounds RejoinEvery−1, 2·RejoinEvery−1, ….
	RejoinEvery int
}

// Name implements Attack.
func (Whitewashing) Name() string { return "whitewashing" }

func (a Whitewashing) rejoinEvery() int {
	if a.RejoinEvery <= 0 {
		return 25
	}
	return a.RejoinEvery
}

// Active implements Attack.
func (Whitewashing) Active(Context, core.AgentID) bool { return true }

// SabotageOutcome implements Attack.
func (a Whitewashing) SabotageOutcome(ctx Context, attacker core.AgentID, out core.Outcome) core.Outcome {
	return sabotage(ctx, attacker, out)
}

// Churn implements Attack.
func (a Whitewashing) Churn(ctx Context, _ core.AgentID) bool {
	return (ctx.Round+1)%a.rejoinEvery() == 0
}

// Collusion coordinates a ring of attackers running the same underlying
// attack: on top of the wrapped model's behavior, every member forges
// maximal-trust recommendations about the other members (mutual promotion).
// A ring of size 1 has nobody to promote and degenerates exactly to the
// underlying solo attack.
type Collusion struct {
	// Of is the attack every ring member runs (required).
	Of Attack
	// TW is the forged mutual-promotion trustworthiness (default 0.95).
	TW float64
}

// Name implements Attack.
func (a Collusion) Name() string { return "collusion(" + a.Of.Name() + ")" }

// Active implements Attack.
func (a Collusion) Active(ctx Context, attacker core.AgentID) bool {
	return a.Of.Active(ctx, attacker)
}

// ForgeRecommendation implements Attack: promote fellow ring members,
// otherwise defer to the underlying attack.
func (a Collusion) ForgeRecommendation(ctx Context, attacker, subject core.AgentID) (float64, bool) {
	if subject != attacker && ctx.InRing(subject) {
		return defaultTW(a.TW, 0.95), true
	}
	return a.Of.ForgeRecommendation(ctx, attacker, subject)
}

// SabotageOutcome implements Attack.
func (a Collusion) SabotageOutcome(ctx Context, attacker core.AgentID, out core.Outcome) core.Outcome {
	return a.Of.SabotageOutcome(ctx, attacker, out)
}

// Churn implements Attack.
func (a Collusion) Churn(ctx Context, attacker core.AgentID) bool {
	return a.Of.Churn(ctx, attacker)
}

// Names lists the attack-model names Parse accepts, in canonical form.
func Names() []string {
	return []string{"badmouth", "ballot", "selfpromo", "onoff", "whitewash"}
}

// Parse maps a CLI-friendly model name to a default-parameter Attack.
// Recognized (with aliases): "badmouth"/"bad-mouthing", "ballot"/
// "ballot-stuffing", "selfpromo"/"self-promotion", "onoff"/"on-off",
// "whitewash"/"whitewashing". "" and "none" return nil (no attack).
func Parse(name string) (Attack, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return nil, nil
	case "badmouth", "bad-mouthing", "badmouthing":
		return BadMouthing{}, nil
	case "ballot", "ballot-stuffing", "ballotstuffing":
		return BallotStuffing{}, nil
	case "selfpromo", "self-promotion", "selfpromotion":
		return SelfPromotion{}, nil
	case "onoff", "on-off":
		return OnOff{Period: 20, Duty: 0.5}, nil
	case "whitewash", "whitewashing":
		return Whitewashing{}, nil
	}
	return nil, fmt.Errorf("adversary: unknown attack model %q (known: %s)", name, strings.Join(Names(), ", "))
}

// defaultTW substitutes def for an unset forged trustworthiness and clamps
// into [0, 1].
func defaultTW(v, def float64) float64 {
	if v <= 0 {
		v = def
	}
	if v > 1 {
		v = 1
	}
	return v
}
