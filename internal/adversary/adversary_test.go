package adversary

import (
	"testing"

	"siot/internal/core"
)

func ctxWithRing(round int, ring ...core.AgentID) Context {
	return Context{Seed: 7, Label: "test", Round: round, Ring: ring}
}

func TestContextInRing(t *testing.T) {
	ctx := ctxWithRing(0, 2, 5, 9)
	for _, id := range []core.AgentID{2, 5, 9} {
		if !ctx.InRing(id) {
			t.Errorf("InRing(%d) = false", id)
		}
	}
	for _, id := range []core.AgentID{0, 1, 3, 8, 10} {
		if ctx.InRing(id) {
			t.Errorf("InRing(%d) = true", id)
		}
	}
	if (Context{}).InRing(1) {
		t.Error("empty ring contains 1")
	}
}

// TestContextRandPure pins the hook determinism contract: every call with
// the same arguments yields the identical stream, and distinct hooks,
// rounds, and attackers yield distinct streams.
func TestContextRandPure(t *testing.T) {
	ctx := ctxWithRing(3, 4)
	a, b := ctx.Rand("sabotage", 4), ctx.Rand("sabotage", 4)
	for i := 0; i < 10; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d differs: %v vs %v", i, av, bv)
		}
	}
	if ctx.Rand("sabotage", 4).Float64() == ctx.Rand("forge", 4).Float64() {
		t.Error("hooks share a stream")
	}
	if ctx.Rand("sabotage", 4).Float64() == ctx.Rand("sabotage", 5).Float64() {
		t.Error("attackers share a stream")
	}
	other := ctxWithRing(4, 4)
	if ctx.Rand("sabotage", 4).Float64() == other.Rand("sabotage", 4).Float64() {
		t.Error("rounds share a stream")
	}
}

func TestBadMouthingForgesOnlyOutsideRing(t *testing.T) {
	ctx := ctxWithRing(0, 2, 5)
	a := BadMouthing{}
	if tw, forged := a.ForgeRecommendation(ctx, 2, 7); !forged || tw > 0.1 {
		t.Errorf("outside ring: tw=%v forged=%v", tw, forged)
	}
	if _, forged := a.ForgeRecommendation(ctx, 2, 5); forged {
		t.Error("forged about a ring member")
	}
	if a.Active(ctx, 2) {
		t.Error("bad-mouthing should serve honestly")
	}
}

func TestBallotStuffingForgesOnlyRing(t *testing.T) {
	ctx := ctxWithRing(0, 2, 5)
	a := BallotStuffing{}
	if tw, forged := a.ForgeRecommendation(ctx, 2, 5); !forged || tw < 0.9 {
		t.Errorf("ring member: tw=%v forged=%v", tw, forged)
	}
	if tw, forged := a.ForgeRecommendation(ctx, 2, 2); !forged || tw < 0.9 {
		t.Errorf("self: tw=%v forged=%v", tw, forged)
	}
	if _, forged := a.ForgeRecommendation(ctx, 2, 7); forged {
		t.Error("forged about an outsider")
	}
}

func TestSelfPromotionForgesOnlySelf(t *testing.T) {
	ctx := ctxWithRing(0, 2, 5)
	a := SelfPromotion{}
	if tw, forged := a.ForgeRecommendation(ctx, 2, 2); !forged || tw < 0.9 {
		t.Errorf("self: tw=%v forged=%v", tw, forged)
	}
	if _, forged := a.ForgeRecommendation(ctx, 2, 5); forged {
		t.Error("promoted a fellow ring member")
	}
}

// TestOnOffDutyCycle checks the phase arithmetic across a whole period at
// several duties, including both degenerate ends.
func TestOnOffDutyCycle(t *testing.T) {
	cases := []struct {
		duty         float64
		activeRounds int // per 20-round period
	}{
		{0, 20}, {0.25, 15}, {0.5, 10}, {0.75, 5}, {1, 0},
	}
	for _, tc := range cases {
		a := OnOff{Period: 20, Duty: tc.duty}
		active := 0
		for round := 0; round < 40; round++ {
			if a.Active(ctxWithRing(round, 1), 1) {
				active++
			}
		}
		if active != 2*tc.activeRounds {
			t.Errorf("duty %.2f: active %d rounds of 40, want %d", tc.duty, active, 2*tc.activeRounds)
		}
		// Each cycle starts honest: round 0 is active only at duty 0.
		if got := a.Active(ctxWithRing(0, 1), 1); got != (tc.duty == 0) {
			t.Errorf("duty %.2f: round 0 active = %v", tc.duty, got)
		}
	}
}

func TestWhitewashingChurnSchedule(t *testing.T) {
	a := Whitewashing{RejoinEvery: 10}
	var churns []int
	for round := 0; round < 35; round++ {
		if a.Churn(ctxWithRing(round, 1), 1) {
			churns = append(churns, round)
		}
	}
	want := []int{9, 19, 29}
	if len(churns) != len(want) {
		t.Fatalf("churn rounds %v, want %v", churns, want)
	}
	for i := range want {
		if churns[i] != want[i] {
			t.Fatalf("churn rounds %v, want %v", churns, want)
		}
	}
	if !a.Active(ctxWithRing(0, 1), 1) {
		t.Error("whitewashing should always sabotage")
	}
}

func TestSabotageForcesFailure(t *testing.T) {
	ctx := ctxWithRing(0, 1)
	out := core.Outcome{Success: true, Gain: 0.8, Cost: 0.1}
	for _, a := range []Attack{OnOff{Duty: 0}, Whitewashing{}} {
		got := a.SabotageOutcome(ctx, 1, out)
		if got.Success || got.Gain != 0 {
			t.Errorf("%s: sabotaged outcome %+v still succeeds", a.Name(), got)
		}
		if got.Damage < 0.5 || got.Damage > 1 {
			t.Errorf("%s: damage %v outside [0.5, 1]", a.Name(), got.Damage)
		}
		if got.Cost != out.Cost {
			t.Errorf("%s: sabotage changed the cost", a.Name())
		}
	}
}

// TestCollusionSizeOneEqualsSolo pins the degeneration property at the
// hook level: with a ring of one, every Collusion hook returns exactly what
// the underlying attack returns, for every subject relation.
func TestCollusionSizeOneEqualsSolo(t *testing.T) {
	solos := []Attack{BadMouthing{}, BallotStuffing{}, SelfPromotion{}, OnOff{Period: 4, Duty: 0.5}, Whitewashing{RejoinEvery: 3}}
	for _, solo := range solos {
		wrapped := Collusion{Of: solo}
		for round := 0; round < 8; round++ {
			ctx := ctxWithRing(round, 2)
			if wrapped.Active(ctx, 2) != solo.Active(ctx, 2) {
				t.Errorf("%s round %d: Active differs", solo.Name(), round)
			}
			if wrapped.Churn(ctx, 2) != solo.Churn(ctx, 2) {
				t.Errorf("%s round %d: Churn differs", solo.Name(), round)
			}
			for _, subject := range []core.AgentID{2, 7} {
				wtw, wok := wrapped.ForgeRecommendation(ctx, 2, subject)
				stw, sok := solo.ForgeRecommendation(ctx, 2, subject)
				if wtw != stw || wok != sok {
					t.Errorf("%s round %d subject %d: forge (%v,%v) vs solo (%v,%v)",
						solo.Name(), round, subject, wtw, wok, stw, sok)
				}
			}
			out := core.Outcome{Success: true, Gain: 0.5, Cost: 0.2}
			if wrapped.SabotageOutcome(ctx, 2, out) != solo.SabotageOutcome(ctx, 2, out) {
				t.Errorf("%s round %d: sabotage differs", solo.Name(), round)
			}
		}
	}
}

func TestCollusionPromotesRing(t *testing.T) {
	ctx := ctxWithRing(0, 2, 5)
	a := Collusion{Of: BadMouthing{}}
	if tw, forged := a.ForgeRecommendation(ctx, 2, 5); !forged || tw < 0.9 {
		t.Errorf("ring member not promoted: tw=%v forged=%v", tw, forged)
	}
	if tw, forged := a.ForgeRecommendation(ctx, 2, 7); !forged || tw > 0.1 {
		t.Errorf("outsider not bad-mouthed: tw=%v forged=%v", tw, forged)
	}
	if a.Name() != "collusion(bad-mouthing)" {
		t.Errorf("name = %q", a.Name())
	}
}

func TestHonestIsNull(t *testing.T) {
	ctx := ctxWithRing(0, 1)
	a := Honest{}
	out := core.Outcome{Success: true, Gain: 0.5}
	if a.Active(ctx, 1) || a.Churn(ctx, 1) {
		t.Error("honest model misbehaves")
	}
	if _, forged := a.ForgeRecommendation(ctx, 1, 2); forged {
		t.Error("honest model forges")
	}
	if a.SabotageOutcome(ctx, 1, out) != out {
		t.Error("honest model rewrites outcomes")
	}
}

func TestParse(t *testing.T) {
	for name, want := range map[string]string{
		"badmouth":  "bad-mouthing",
		"ballot":    "ballot-stuffing",
		"selfpromo": "self-promotion",
		"onoff":     "on-off",
		"whitewash": "whitewashing",
	} {
		a, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if a.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", name, a.Name(), want)
		}
	}
	for _, name := range []string{"", "none"} {
		if a, err := Parse(name); err != nil || a != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", name, a, err)
		}
	}
	if _, err := Parse("sybil"); err == nil {
		t.Error("Parse of unknown model did not error")
	}
	// Every advertised name parses.
	for _, name := range Names() {
		if a, err := Parse(name); err != nil || a == nil {
			t.Errorf("advertised name %q does not parse: %v", name, err)
		}
	}
}
