// Package core implements the paper's trust model for the social IoT: the
// six-ingredient trust process (trustor, trustee, goal, trustworthiness
// evaluation, decision/action/result, context) and its five clarified
// mechanisms —
//
//  1. mutuality of trustor and trustee (eq. 1),
//  2. inferential transfer of trust across tasks sharing characteristics
//     (eqs. 2–4),
//  3. restricted transitivity of trust: traditional product baseline
//     (eq. 5), same-type combination with the mistrust-product term (eq. 7),
//     conservative (eqs. 8–11) and aggressive (eqs. 12–17) methods,
//  4. trustworthiness updated from delegation results via expected success
//     rate, gain, damage, and cost with exponential forgetting
//     (eqs. 18–24), and
//  5. environment-corrected updates using the Cannikin-law removal function
//     (eqs. 25–29).
//
// The package is deliberately free of simulation concerns: it holds per-agent
// trust state and pure decision functions. Packages agent, sim, and zigbee
// animate it.
package core

import (
	"fmt"
	"math"

	"siot/internal/env"
	"siot/internal/task"
)

// AgentID identifies an agent (an autonomous social IoT object). The
// simulation layers map these 1:1 onto social-graph node IDs.
type AgentID int32

// Outcome is the actual result of one delegation (§3.4): whether the trustee
// accomplished the task, and the gain, damage, and cost the trustor actually
// experienced, each expressed in normalized QoS units in [0, 1].
//
// On success the trustor obtains Gain and pays Cost; on failure it suffers
// Damage and pays Cost. The updates below nevertheless track all four
// quantities on every delegation, as the paper's eqs. 19–22 do.
type Outcome struct {
	Success bool
	Gain    float64
	Damage  float64
	Cost    float64
}

// successValue returns the 0/1 observation of the success rate.
func (o Outcome) successValue() float64 {
	if o.Success {
		return 1
	}
	return 0
}

// Expectation is the trustor's current estimate of a trustee on one task:
// the expected success rate Ŝ, gain Ĝ, damage D̂, and cost Ĉ of eqs. 19–22.
type Expectation struct {
	S, G, D, C float64
}

// NetProfit returns the expected net profit Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ, the
// bracketed quantity of eq. 18 and the objective of eq. 23.
func (e Expectation) NetProfit() float64 {
	return e.S*e.G - (1-e.S)*e.D - e.C
}

// Trustworthiness returns the normalized post-evaluation trustworthiness of
// eq. 18: N[Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ].
func (e Expectation) Trustworthiness(n Normalizer) float64 {
	return n.Normalize(e.NetProfit())
}

// Validate rejects NaN or infinite components.
func (e Expectation) Validate() error {
	for _, v := range [...]float64{e.S, e.G, e.D, e.C} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: expectation component %v is not finite", v)
		}
	}
	return nil
}

// Normalizer implements the N[·] operator of eq. 18, mapping a net profit to
// a trustworthiness value in a fixed range.
type Normalizer interface {
	Normalize(profit float64) float64
}

// LinearNormalizer maps [ProfitLo, ProfitHi] linearly onto [0, 1], clamping
// outside values.
type LinearNormalizer struct {
	ProfitLo, ProfitHi float64
}

// UnitNormalizer returns the default normalizer for S, G, D, C ∈ [0, 1]:
// net profits lie in [−2, 1] and map onto trustworthiness in [0, 1].
func UnitNormalizer() LinearNormalizer {
	return LinearNormalizer{ProfitLo: -2, ProfitHi: 1}
}

// Normalize implements Normalizer.
func (l LinearNormalizer) Normalize(profit float64) float64 {
	if l.ProfitHi <= l.ProfitLo {
		return 0
	}
	v := (profit - l.ProfitLo) / (l.ProfitHi - l.ProfitLo)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Betas holds the forgetting factors β of eqs. 19–22. The paper notes that
// β may be set to different values in the four updating equations, so each
// field gets its own factor. β weights the *historical* value: β = 0.9
// adapts slowly, β = 0.1 adapts fast.
//
// A note on the paper's "β = 0.1": eqs. 19–22 read Ŝ = β·Ŝ′ + (1−β)·S, under
// which β = 0.1 is nearly memoryless — yet Figs. 13 and 15 show convergence
// over tens to hundreds of iterations, which requires a history weight near
// 0.9. The figures evidently use β as the *observation* weight. This package
// keeps the equations exactly as printed and the experiments set the history
// weight to 0.9, reproducing the figures' dynamics.
type Betas struct {
	S, G, D, C float64
}

// UniformBetas returns the common case of one forgetting factor for all
// four update equations.
func UniformBetas(b float64) Betas { return Betas{S: b, G: b, D: b, C: b} }

// Validate checks every factor lies in [0, 1).
func (b Betas) Validate() error {
	for _, v := range [...]float64{b.S, b.G, b.D, b.C} {
		if math.IsNaN(v) || v < 0 || v >= 1 {
			return fmt.Errorf("core: forgetting factor %v outside [0,1)", v)
		}
	}
	return nil
}

// EnvContext carries the instantaneous environments relevant to one
// delegation: the trustor's E_X, the trustee's E_Y, and the intermediate
// nodes' {E_i} (§4.5).
type EnvContext struct {
	Trustor, Trustee env.Environment
	Intermediates    []env.Environment
}

// PerfectEnv is the neutral context in which correction is a no-op.
func PerfectEnv() EnvContext {
	return EnvContext{Trustor: env.Perfect, Trustee: env.Perfect}
}

// Min returns the Cannikin-law combined environment of the context.
func (c EnvContext) Min() env.Environment {
	return env.Combine(c.Trustor, c.Trustee, c.Intermediates...)
}

// UpdateConfig configures the post-evaluation update.
type UpdateConfig struct {
	// Betas are the forgetting factors of eqs. 19–22 / 25–28.
	Betas Betas
	// EnvCorrection selects eqs. 25–28 (true: observations pass through the
	// removal function r(·) of eq. 29 before the forgetting update) over
	// eqs. 19–22 (false: raw observations — the "traditional method" curve
	// of Fig. 15).
	EnvCorrection bool
	// Init is the expectation used as the historical value for the first
	// observation of a (trustee, task) pair. The paper suggests seeding it
	// from social-relationship metrics; the simulations use a neutral
	// prior.
	Init Expectation
	// Norm is the N[·] operator of eq. 18.
	Norm Normalizer
	// Catalog interns the tasks of this store's records. Stores sharing a
	// population must share one catalog so their compact arenas can be
	// captured into a single view without ref translation; NewStore supplies
	// a private catalog when nil.
	Catalog *task.Catalog
}

// DefaultUpdateConfig returns the configuration used throughout the paper's
// experiments: history weight 0.9 in all four equations (the paper's
// "forgetting factor 0.1" applied to the observation — see Betas), no
// environment correction, a neutral prior, and the unit normalizer.
func DefaultUpdateConfig() UpdateConfig {
	return UpdateConfig{
		Betas: UniformBetas(0.9),
		Init:  Expectation{S: 0.5, G: 0.5, D: 0.5, C: 0.25},
		Norm:  UnitNormalizer(),
	}
}

// forget applies one exponential-forgetting step: β·hist + (1−β)·obs.
func forget(beta, hist, obs float64) float64 {
	return beta*hist + (1-beta)*obs
}

// Update applies the post-evaluation update to an expectation given the
// actual outcome of a delegation. Without environment correction this is
// eqs. 19–22; with it, each observation first passes through the removal
// function r(·) of eqs. 25–29 before the forgetting update.
//
// The paper specifies r(·) explicitly only for the success rate (divide by
// the Cannikin minimum environment, eq. 29) and notes that "it is
// relatively hard to construct the function r(·)" in general. This
// implementation applies the direction that removes the environment's
// influence from each factor: positive factors (success, gain) are divided
// by the combined environment — delivery under hostile conditions earns
// extra credit — while negative factors (damage, cost) are multiplied by
// it, because a hostile environment inflates them and removing its
// influence must shrink them back.
//
// Corrected positive observations may exceed 1 transiently (by at most
// 1/E_min); their long-run mean equals the environment-free quantity, which
// is the tracking property Fig. 15 demonstrates.
func Update(old Expectation, obs Outcome, ectx EnvContext, cfg UpdateConfig) Expectation {
	s, g, d, c := obs.successValue(), obs.Gain, obs.Damage, obs.Cost
	if cfg.EnvCorrection {
		// cap 0 disables per-observation capping: the corrected series must
		// stay unbiased so its mean recovers the environment-free value.
		e := float64(ectx.Min())
		s = env.Remove(s, 0, ectx.Trustor, ectx.Trustee, ectx.Intermediates...)
		g = env.Remove(g, 0, ectx.Trustor, ectx.Trustee, ectx.Intermediates...)
		d *= e
		c *= e
	}
	return Expectation{
		S: forget(cfg.Betas.S, old.S, s),
		G: forget(cfg.Betas.G, old.G, g),
		D: forget(cfg.Betas.D, old.D, d),
		C: forget(cfg.Betas.C, old.C, c),
	}
}
