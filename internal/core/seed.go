package core

import (
	"cmp"
	"fmt"

	"siot/internal/task"
)

// This file implements bulk experience seeding. The experiment setup phase
// installs hundreds of thousands of seed records (one per (holder, trustee,
// task) triple along the social edges), and the per-record Seed path — one
// lock acquisition, one map lookup, one binary search, one slices.Insert
// shift per record — is the dominant cost of building a 100k-node
// population. SeedSorted ingests a pre-sorted batch in a single pass
// instead: one lock per trustee group, exact-size record slices carved from
// one contiguous arena, no per-record searching or shifting.

// SeedRecord is one pre-computed experience record of a bulk seeding batch:
// the trustee it concerns, the task, and the expectation to install.
// Semantically it is one deferred Store.Seed call.
type SeedRecord struct {
	Trustee AgentID
	Task    task.Task
	Exp     Expectation
}

// compareSeedRecords orders batch entries by (trustee, task type) — the
// key order SeedSorted requires.
func compareSeedRecords(a, b SeedRecord) int {
	if c := cmp.Compare(a.Trustee, b.Trustee); c != 0 {
		return c
	}
	return cmp.Compare(a.Task.Type(), b.Task.Type())
}

// SeedSorted installs a batch of seed records in one pass. The result is
// exactly that of calling Seed for every entry in order: seeded records
// carry a zero delegation count and replace any existing record for the
// same (trustee, task type).
//
// The batch must be sorted strictly ascending by (Trustee, Task.Type()) —
// no duplicate keys. Violations are rejected with an error before anything
// is applied, so a failed call leaves the store untouched. The batch is
// copied into a fresh record arena; the caller keeps ownership of the
// slice and may reuse it for the next batch.
func (s *Store) SeedSorted(batch []SeedRecord) error {
	for i := 1; i < len(batch); i++ {
		if compareSeedRecords(batch[i-1], batch[i]) >= 0 {
			return fmt.Errorf("core: seed batch entry %d (trustee %d, task %d) not strictly after (trustee %d, task %d)",
				i, batch[i].Trustee, batch[i].Task.Type(), batch[i-1].Trustee, batch[i-1].Task.Type())
		}
	}
	// One contiguous compact arena for the whole batch — 40 pointer-free
	// bytes per record, invisible to the GC. Per-trustee groups become
	// full-capacity-capped subslices, so a later Observe insert reallocates
	// instead of clobbering the neighboring group. Interning is a bucket
	// scan over a tiny per-profile catalog; the batch's tasks come from the
	// universe, so after the first few records every Intern is a hit.
	recs := make([]CompactRecord, len(batch))
	for i := range batch {
		recs[i] = CompactRecord{Ref: s.cat.Intern(batch[i].Task), Exp: batch[i].Exp}
	}
	for lo := 0; lo < len(batch); {
		hi := lo + 1
		for hi < len(batch) && batch[hi].Trustee == batch[lo].Trustee {
			hi++
		}
		s.seedGroup(batch[lo].Trustee, recs[lo:hi:hi])
		lo = hi
	}
	return nil
}

// seedGroup installs one trustee's sorted record group. An empty store
// entry adopts the group slice directly (the bulk fast path); otherwise the
// group is merged with the existing records, seeded entries replacing
// same-type ones exactly as Seed would.
func (s *Store) seedGroup(trustee AgentID, group []CompactRecord) {
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	existing := sh.records[trustee]
	if len(existing) == 0 {
		if sh.records == nil {
			sh.records = make(map[AgentID][]CompactRecord)
		}
		sh.records[trustee] = group
		return
	}
	tasks := s.cat.Tasks()
	merged := make([]CompactRecord, 0, len(existing)+len(group))
	i, j := 0, 0
	for i < len(existing) && j < len(group) {
		switch c := cmp.Compare(tasks[existing[i].Ref].Type(), tasks[group[j].Ref].Type()); {
		case c < 0:
			merged = append(merged, existing[i])
			i++
		case c > 0:
			merged = append(merged, group[j])
			j++
		default: // seeded record replaces, like Seed
			merged = append(merged, group[j])
			i++
			j++
		}
	}
	merged = append(merged, existing[i:]...)
	merged = append(merged, group[j:]...)
	sh.records[trustee] = merged
}
