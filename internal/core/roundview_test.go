package core

import (
	"math/rand/v2"
	"testing"

	"siot/internal/task"
)

// roundFixture builds a random population of live stores plus the CSR
// adjacency of a random simple graph, the substrate for round-view capture
// tests: stores hold records only along edges (as the simulation guarantees)
// and usage logs for arbitrary neighbor pairs.
type roundFixture struct {
	n      int
	adjOff []int32
	adjTo  []AgentID
	stores []*Store
	tasks  []task.Task
}

func buildRoundFixture(t *testing.T, seed uint64) *roundFixture {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, 0xf1))
	const n = 24
	adj := make(map[AgentID][]AgentID)
	addEdge := func(a, b AgentID) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	seen := map[[2]AgentID]bool{}
	for k := 0; k < 3*n; k++ {
		a, b := AgentID(r.IntN(n)), AgentID(r.IntN(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]AgentID{a, b}] {
			continue
		}
		seen[[2]AgentID{a, b}] = true
		addEdge(a, b)
	}
	f := &roundFixture{n: n, adjOff: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		row := adj[AgentID(u)]
		sortAgentIDs(row)
		f.adjOff[u+1] = f.adjOff[u] + int32(len(row))
		f.adjTo = append(f.adjTo, row...)
	}
	f.tasks = []task.Task{
		task.Uniform(1, task.CharGPS),
		task.Uniform(2, task.CharImage),
		task.Uniform(3, task.CharGPS, task.CharCompute),
		task.Uniform(4, task.CharCompute, task.CharStorage),
	}
	cfg := DefaultUpdateConfig()
	cfg.Catalog = task.NewCatalog() // shared across the fixture's stores
	f.stores = make([]*Store, n)
	for u := range f.stores {
		f.stores[u] = NewStore(AgentID(u), cfg)
	}
	// Records along edges only; usage logs for a random subset of neighbors.
	for u := 0; u < n; u++ {
		for _, w := range adj[AgentID(u)] {
			for _, tk := range f.tasks {
				if r.Float64() < 0.4 {
					s := r.Float64()
					f.stores[u].Seed(w, tk, Expectation{S: s, G: s, D: 1 - s, C: 0.1 * r.Float64()})
				}
			}
			for k := r.IntN(4); k > 0; k-- {
				f.stores[u].ObserveUsage(w, r.Float64() < 0.3)
			}
		}
	}
	return f
}

func sortAgentIDs(s []AgentID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (f *roundFixture) source() RoundSource {
	cat := f.stores[0].Catalog()
	return RoundSource{
		CaptureSource: CaptureSource{
			Catalog: cat,
			Count: func(holder, about AgentID) int {
				return f.stores[holder].RecordCount(about)
			},
			Append: func(holder, about AgentID, buf []CompactRecord) []CompactRecord {
				return f.stores[holder].AppendCompact(about, cat, buf)
			},
		},
		Usage: func(holder, about AgentID) UsageLog {
			return f.stores[holder].Usage(about)
		},
	}
}

// mustRoundView is CaptureRoundView failing the test on error.
func mustRoundView(t *testing.T, f *roundFixture, workers int, pool *ArenaPool) *RoundView {
	t.Helper()
	v, err := CaptureRoundView(f.adjOff, f.adjTo, f.source(), UnitNormalizer(), workers, pool)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRoundViewMatchesLiveStores pins the round view's read API bit-for-bit
// against the live stores it was captured from, for every directed edge,
// every task (direct hit, inferable, and uncovered), and every usage log —
// the equivalence the engine's snapshot round rests on.
func TestRoundViewMatchesLiveStores(t *testing.T) {
	for _, workers := range []int{1, 4} {
		f := buildRoundFixture(t, 7)
		v := mustRoundView(t, f, workers, nil)
		probe := append(f.tasks, task.Uniform(9, task.CharAudio)) // uncovered type
		for u := 0; u < f.n; u++ {
			holder := AgentID(u)
			for _, w := range f.adjTo[f.adjOff[u]:f.adjOff[u+1]] {
				e, ok := v.EdgeIndex(holder, w)
				if !ok {
					t.Fatalf("edge %d->%d not found", holder, w)
				}
				for _, tk := range probe {
					gotTW, gotOK := v.BestTW(e, tk)
					wantTW, wantOK := f.stores[u].BestTW(w, tk)
					if gotTW != wantTW || gotOK != wantOK {
						t.Fatalf("BestTW(%d->%d, task %d) = (%v, %v), store says (%v, %v)",
							holder, w, tk.Type(), gotTW, gotOK, wantTW, wantOK)
					}
				}
				if got, want := v.Usage(e), f.stores[u].Usage(w); got != want {
					t.Fatalf("Usage(%d->%d) = %+v, store says %+v", holder, w, got, want)
				}
				if got, want := v.ReverseTW(e), f.stores[u].ReverseTW(w); got != want {
					t.Fatalf("ReverseTW(%d->%d) = %v, store says %v", holder, w, got, want)
				}
			}
		}
	}
}

// TestRoundViewFrozenAcrossMutation: the view is a snapshot — store writes
// after capture must not show through it.
func TestRoundViewFrozenAcrossMutation(t *testing.T) {
	f := buildRoundFixture(t, 8)
	v := mustRoundView(t, f, 2, nil)
	u := 0
	for f.adjOff[u] == f.adjOff[u+1] {
		u++
	}
	w := f.adjTo[f.adjOff[u]]
	e, _ := v.EdgeIndex(AgentID(u), w)
	beforeTW, beforeOK := v.BestTW(e, f.tasks[0])
	beforeUsage := v.Usage(e)
	f.stores[u].Observe(w, f.tasks[0], Outcome{Success: true, Gain: 1}, EnvContext{})
	f.stores[u].ObserveUsage(w, true)
	if tw, ok := v.BestTW(e, f.tasks[0]); tw != beforeTW || ok != beforeOK {
		t.Fatalf("view leaked a post-capture record write: (%v, %v) != (%v, %v)", tw, ok, beforeTW, beforeOK)
	}
	if got := v.Usage(e); got != beforeUsage {
		t.Fatalf("view leaked a post-capture usage write: %+v != %+v", got, beforeUsage)
	}
	v.Release()
}

// TestRoundViewEdgeIndexMisses: EdgeIndex reports ok=false for non-edges
// (including self-loops), never a bogus hit.
func TestRoundViewEdgeIndexMisses(t *testing.T) {
	f := buildRoundFixture(t, 9)
	v := mustRoundView(t, f, 1, nil)
	defer v.Release()
	neighbors := make(map[[2]AgentID]bool)
	for u := 0; u < f.n; u++ {
		for _, w := range f.adjTo[f.adjOff[u]:f.adjOff[u+1]] {
			neighbors[[2]AgentID{AgentID(u), w}] = true
		}
	}
	for u := 0; u < f.n; u++ {
		for w := 0; w < f.n; w++ {
			e, ok := v.EdgeIndex(AgentID(u), AgentID(w))
			if ok != neighbors[[2]AgentID{AgentID(u), AgentID(w)}] {
				t.Fatalf("EdgeIndex(%d, %d) ok=%v, adjacency says %v", u, w, ok, !ok)
			}
			if ok && v.adjTo[e] != AgentID(w) {
				t.Fatalf("EdgeIndex(%d, %d) points at edge to %d", u, w, v.adjTo[e])
			}
		}
	}
}

// TestRoundViewPooledRelease: a released round view returns its usage
// arenas (not just the trust-view arenas) to the pool, and a fresh capture
// of the same population reuses them without stale data.
func TestRoundViewPooledRelease(t *testing.T) {
	f := buildRoundFixture(t, 10)
	pool := NewArenaPool()
	v1 := mustRoundView(t, f, 2, pool)
	resp1 := &v1.resp[0]
	v1.Release()
	// Mutate usage, recapture: must reuse the arena and show the new counts.
	u := 0
	for f.adjOff[u] == f.adjOff[u+1] {
		u++
	}
	w := f.adjTo[f.adjOff[u]]
	f.stores[u].ObserveUsage(w, true)
	v2 := mustRoundView(t, f, 2, pool)
	defer v2.Release()
	if &v2.resp[0] != resp1 {
		t.Fatal("pooled usage arena was not reused")
	}
	e, _ := v2.EdgeIndex(AgentID(u), w)
	if got, want := v2.Usage(e), f.stores[u].Usage(w); got != want {
		t.Fatalf("recaptured usage %+v, store says %+v (stale arena?)", got, want)
	}
}

// TestCountStoreLocks: the profiler sees live-store traffic and is silent
// for pure view reads — the primitive behind the engine's zero-lock
// compute-phase assertion.
func TestCountStoreLocks(t *testing.T) {
	f := buildRoundFixture(t, 11)
	v := mustRoundView(t, f, 1, nil)
	defer v.Release()
	u := 0
	for f.adjOff[u] == f.adjOff[u+1] {
		u++
	}
	w := f.adjTo[f.adjOff[u]]
	e, _ := v.EdgeIndex(AgentID(u), w)
	if n := CountStoreLocks(func() { f.stores[u].BestTW(w, f.tasks[0]) }); n == 0 {
		t.Fatal("live-store read took no counted locks")
	}
	if n := CountStoreLocks(func() {
		for _, tk := range f.tasks {
			v.BestTW(e, tk)
		}
		v.ReverseTW(e)
	}); n != 0 {
		t.Fatalf("view reads took %d store locks, want 0", n)
	}
}
