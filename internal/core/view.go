package core

import (
	"math"
	"sync"

	"siot/internal/task"
)

// TrustView is a frozen-epoch snapshot of the trust state the transitivity
// search reads: a CSR adjacency shared with the population plus a flat
// []Record arena holding, for every directed social edge (u, v), the records
// u keeps about v at capture time.
//
// The search hot loop is pure — it only ever reads (holder, neighbor) record
// slices — so capturing them once per sweep lets every BFS run over
// contiguous memory with zero locks and zero per-hop copies, where the live
// path takes an RWMutex RLock and copies records into a scratch buffer on
// every hop.
//
// A view is valid for as long as the underlying stores are not mutated: the
// pure compute phases (TransitivityRun sweeps) qualify; mutuality rounds,
// which interleave reads with store updates, do not and keep reading live
// stores. Concurrent readers are safe; the view is never written after
// capture.
type TrustView struct {
	adjOff []int32    // CSR row offsets, len NumAgents+1 (shared, not owned)
	adjTo  []AgentID  // CSR edge targets (shared, not owned)
	recOff []int32    // per-edge spans into recs, len len(adjTo)+1
	recs   []Record   // record arena, grouped by directed edge
	pool   *ArenaPool // arena source, nil when the arenas were allocated fresh
}

// CaptureTrustView freezes the per-edge records of a population into a view.
// adjOff/adjTo describe the CSR adjacency over dense agent IDs in
// [0, len(adjOff)-1); appendRecords must append holder's records about a
// neighbor to buf and return the extended slice (Store.AppendRecords). The
// adjacency slices are borrowed, not copied: they must stay immutable for
// the lifetime of the view.
func CaptureTrustView(adjOff []int32, adjTo []AgentID, appendRecords func(holder, about AgentID, buf []Record) []Record) *TrustView {
	v := &TrustView{
		adjOff: adjOff,
		adjTo:  adjTo,
		recOff: make([]int32, len(adjTo)+1),
		recs:   make([]Record, 0, len(adjTo)),
	}
	n := len(adjOff) - 1
	e := 0
	for u := 0; u < n; u++ {
		for _, w := range adjTo[adjOff[u]:adjOff[u+1]] {
			v.recs = appendRecords(AgentID(u), w, v.recs)
			e++
			v.recOff[e] = int32(len(v.recs))
		}
	}
	return v
}

// CaptureSource is the record access a capture needs from the live stores:
// Count reports how many records holder keeps about about, and Append
// appends exactly those records to buf, returning the extended slice
// (Store.RecordCount / Store.AppendRecords). Both must be safe for
// concurrent use across distinct holders and observe a quiescent store —
// capture runs two passes, and a store mutated between them is detected and
// rejected (panic), not silently misrecorded.
type CaptureSource struct {
	Count  func(holder, about AgentID) int
	Append func(holder, about AgentID, buf []Record) []Record
}

// CaptureTrustViewParallel is CaptureTrustView sharded over a worker pool,
// byte-identical to the serial capture at every worker count: a first pass
// computes per-edge record counts concurrently (prefix-summed into recOff),
// then workers fill disjoint recs spans in place. Arenas are drawn from
// pool when non-nil (release them with TrustView.Release); workers <= 1
// runs the two passes serially over the same code path.
//
// The capture panics if a store's record count changes between the two
// passes: the frozen-epoch contract requires quiescent stores for the whole
// capture, and a mismatched span would otherwise leak stale or short data
// into the arena.
func CaptureTrustViewParallel(adjOff []int32, adjTo []AgentID, src CaptureSource, workers int, pool *ArenaPool) *TrustView {
	ne := len(adjTo)
	v := &TrustView{
		adjOff: adjOff,
		adjTo:  adjTo,
		recOff: pool.GetOffsets(ne + 1),
		pool:   pool,
	}
	// Pass 1: per-edge record counts, written one slot right so the prefix
	// sum lands directly in recOff.
	parallelRows(adjOff, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			base := adjOff[u]
			for k, w := range adjTo[base:adjOff[u+1]] {
				v.recOff[int(base)+k+1] = int32(src.Count(AgentID(u), w))
			}
		}
	})
	v.recOff[0] = 0
	for e := 0; e < ne; e++ {
		v.recOff[e+1] += v.recOff[e]
	}
	// Pass 2: fill disjoint spans in place. Appending into a zero-length,
	// exact-capacity subslice writes directly into the arena; a span that
	// comes back with a different length (or a reallocated base) means the
	// store mutated between the passes.
	v.recs = pool.GetRecords(int(v.recOff[ne]))
	parallelRows(adjOff, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			base := adjOff[u]
			for k, w := range adjTo[base:adjOff[u+1]] {
				e := int(base) + k
				span, want := v.recOff[e], v.recOff[e+1]-v.recOff[e]
				got := src.Append(AgentID(u), w, v.recs[span:span:span+want])
				if int32(len(got)) != want {
					panic("core: store mutated during CaptureTrustViewParallel")
				}
			}
		}
	})
	return v
}

// parallelRows splits the CSR rows into one contiguous chunk per worker,
// balanced by edge count, and runs fn over each chunk concurrently.
func parallelRows(adjOff []int32, workers int, fn func(lo, hi int)) {
	n := len(adjOff) - 1
	ne := int(adjOff[n])
	if workers > ne/1024 {
		// Below ~1k edges per worker the goroutine overhead dominates.
		workers = ne / 1024
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	target := (ne + workers - 1) / workers
	lo := 0
	for lo < n {
		hi := lo
		limit := int(adjOff[lo]) + target
		for hi < n && int(adjOff[hi+1]) <= limit {
			hi++
		}
		if hi == lo {
			hi++ // a single row larger than the target still advances
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// Release returns the view's arenas to the pool it was captured from and
// invalidates the view: after Release the view (and anything aliasing its
// arenas, like EdgeRecords results) must not be used. Views captured
// without a pool release nothing. Only the owner of the capture may call
// Release, exactly once.
func (v *TrustView) Release() {
	v.pool.putOffsets(v.recOff)
	v.pool.putRecords(v.recs)
	v.recOff, v.recs = nil, nil
}

// NumAgents returns the number of dense agent slots.
func (v *TrustView) NumAgents() int { return len(v.adjOff) - 1 }

// NumEdges returns the number of directed edges.
func (v *TrustView) NumEdges() int { return len(v.adjTo) }

// Neighbors returns the frozen neighbor list of u. The slice is shared and
// must not be modified.
func (v *TrustView) Neighbors(u AgentID) []AgentID {
	return v.adjTo[v.adjOff[u]:v.adjOff[u+1]]
}

// EdgeRecords returns the captured records of directed edge e (an index into
// the CSR edge array). The slice aliases the arena and must not be modified.
func (v *TrustView) EdgeRecords(e int32) []Record {
	return v.recs[v.recOff[e]:v.recOff[e+1]]
}

// blocked is the sentinel for "hop not admissible" in memo tables. Record
// trustworthiness is always finite (Expectation.Validate rejects NaN), so
// NaN is free to carry the ok=false case.
var blocked = math.NaN()

// EdgeMemo caches per-edge hop trustworthiness over a TrustView for one
// sweep. A transitivity sweep fires one independent BFS per trustor over the
// same frozen stores, so the hop value of edge (u, v) — which depends only
// on the edge's records and the (task, policy) pair — is recomputed up to
// N-trustors times on the live path. The memo computes each needed table
// once, in a parallel pre-pass over the CSR edges, turning the BFS inner
// loop into a single array lookup.
//
// Tables are keyed by task type (traditional, conservative) or by
// characteristic (aggressive; per-characteristic values are shared by every
// task containing the characteristic). Require must be called before the
// parallel search phase; afterwards all lookups are pure reads and safe for
// concurrent use.
type EdgeMemo struct {
	view    *TrustView
	norm    Normalizer
	workers int
	pool    *ArenaPool // table source, nil when tables are allocated fresh
	// tradVal[t][e] is the exact-type record trustworthiness of edge e
	// (eq. 5's per-hop value); blocked when the edge has no record of t.
	// The traditional hop depends on the task only through its type, so
	// the type alone is a sound key.
	tradVal map[task.Type][]float64
	// consVal[t][e] is the conservative inferred hop value of edge e
	// (eqs. 8–10); blocked when the edge's records do not cover the task.
	// The inferred value depends on the task's full characteristic/weight
	// set, not just its type, so consTask remembers which task each table
	// was built for and typeTable declines to serve a same-type task with
	// different contents (the search then computes hops from the arena —
	// slower but correct).
	consVal  map[task.Type][]float64
	consTask map[task.Type]task.Task
	// charVal[c][e] is CharTW of edge e for one characteristic (the inner
	// fraction of eq. 4); blocked when no record covers the characteristic.
	charVal map[task.Characteristic][]float64
}

// NewEdgeMemo creates an empty memo over a view. workers bounds the
// pre-pass parallelism (values below 1 run serially).
func NewEdgeMemo(view *TrustView, norm Normalizer, workers int) *EdgeMemo {
	return NewEdgeMemoPooled(view, norm, workers, nil)
}

// NewEdgeMemoPooled is NewEdgeMemo drawing its hop tables from pool (nil
// falls back to fresh allocation). Release the tables with Release when the
// memo goes stale.
func NewEdgeMemoPooled(view *TrustView, norm Normalizer, workers int, pool *ArenaPool) *EdgeMemo {
	return &EdgeMemo{
		view:     view,
		norm:     norm,
		workers:  workers,
		pool:     pool,
		tradVal:  make(map[task.Type][]float64),
		consVal:  make(map[task.Type][]float64),
		consTask: make(map[task.Type]task.Task),
		charVal:  make(map[task.Characteristic][]float64),
	}
}

// Release returns every built hop table to the memo's pool and empties the
// memo. It must not run concurrently with searches; after Release the memo
// is reusable (Require rebuilds tables on demand) but any table slice
// previously handed out is invalid.
func (m *EdgeMemo) Release() {
	for t, vals := range m.tradVal {
		m.pool.putTable(vals)
		delete(m.tradVal, t)
	}
	for t, vals := range m.consVal {
		m.pool.putTable(vals)
		delete(m.consVal, t)
		delete(m.consTask, t)
	}
	for c, vals := range m.charVal {
		m.pool.putTable(vals)
		delete(m.charVal, c)
	}
}

// Reset empties the memo and retargets it at a freshly captured view: every
// table is released to the pool (so the next Require recomputes into the
// same arenas) and subsequent lookups read the new view. Use after the
// underlying stores mutated and the epoch re-captured.
func (m *EdgeMemo) Reset(view *TrustView) {
	m.Release()
	m.view = view
}

// Require precomputes every table the given policy needs to search for the
// given tasks: per-type tables for traditional and conservative, per-
// characteristic tables for aggressive. It must not run concurrently with
// searches; tables already present are reused (an epoch can Require for
// several policies in turn and share the work where semantics overlap).
func (m *EdgeMemo) Require(p Policy, tasks []task.Task) {
	switch p {
	case PolicyTraditional:
		for _, t := range tasks {
			if _, ok := m.tradVal[t.Type()]; ok {
				continue
			}
			typ := t.Type()
			m.tradVal[typ] = m.table(func(recs []Record) (float64, bool) {
				for _, r := range recs {
					if r.Task.Type() == typ {
						return r.TW(m.norm), true
					}
				}
				return 0, false
			})
		}
	case PolicyConservative:
		for _, t := range tasks {
			if prev, ok := m.consTask[t.Type()]; ok && sameTask(prev, t) {
				continue
			}
			t := t
			m.consVal[t.Type()] = m.table(func(recs []Record) (float64, bool) {
				return InferFromRecords(recs, t, m.norm)
			})
			m.consTask[t.Type()] = t
		}
	case PolicyAggressive:
		for _, t := range tasks {
			for _, c := range t.Characteristics() {
				if _, ok := m.charVal[c]; ok {
					continue
				}
				c := c
				m.charVal[c] = m.table(func(recs []Record) (float64, bool) {
					return CharTW(recs, c, m.norm)
				})
			}
		}
	}
}

// typeTable returns the per-edge hop table for (t, p), or nil when Require
// has not built it (the search then falls back to computing hops from the
// arena records, which is still lock-free and bit-identical).
func (m *EdgeMemo) typeTable(p Policy, t task.Task) []float64 {
	if m == nil {
		return nil
	}
	if p == PolicyTraditional {
		return m.tradVal[t.Type()]
	}
	if prev, ok := m.consTask[t.Type()]; !ok || !sameTask(prev, t) {
		return nil
	}
	return m.consVal[t.Type()]
}

// sameTask reports whether two tasks carry the same characteristic bag and
// weights (types already match by construction of the lookup).
func sameTask(a, b task.Task) bool {
	ac, bc := a.Characteristics(), b.Characteristics()
	if len(ac) != len(bc) {
		return false
	}
	aw, bw := a.Weights(), b.Weights()
	for i := range ac {
		if ac[i] != bc[i] || aw[i] != bw[i] {
			return false
		}
	}
	return true
}

// charTable returns the per-edge CharTW table for c, or nil when absent.
func (m *EdgeMemo) charTable(c task.Characteristic) []float64 {
	if m == nil {
		return nil
	}
	return m.charVal[c]
}

// table evaluates compute over every edge's records in parallel chunks.
func (m *EdgeMemo) table(compute func(recs []Record) (float64, bool)) []float64 {
	ne := m.view.NumEdges()
	vals := m.pool.GetTable(ne)
	fill := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			val, ok := compute(m.view.EdgeRecords(int32(e)))
			if !ok {
				val = blocked
			}
			vals[e] = val
		}
	}
	workers := m.workers
	if workers > ne/1024 {
		// Below ~1k edges per worker the goroutine overhead dominates.
		workers = ne / 1024
	}
	if workers <= 1 {
		fill(0, ne)
		return vals
	}
	var wg sync.WaitGroup
	chunk := (ne + workers - 1) / workers
	for lo := 0; lo < ne; lo += chunk {
		hi := lo + chunk
		if hi > ne {
			hi = ne
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return vals
}
