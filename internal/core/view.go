package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"siot/internal/task"
)

// TrustView is a frozen-epoch snapshot of the trust state the transitivity
// search reads: a CSR adjacency shared with the population plus a flat
// compact-record arena holding, for every directed social edge (u, v), the
// records u keeps about v at capture time, with a catalog snapshot resolving
// their task refs.
//
// The search hot loop is pure — it only ever reads (holder, neighbor) record
// slices — so capturing them once per sweep lets every BFS run over
// contiguous memory with zero locks and zero per-hop copies, where the live
// path takes an RWMutex RLock and copies records into a scratch buffer on
// every hop. The arena is pointer-free (CompactRecord), so a multi-GB
// million-node capture is a single GC-transparent allocation.
//
// A view is valid for as long as the underlying stores are not mutated: the
// pure compute phases (TransitivityRun sweeps) qualify; mutuality rounds,
// which interleave reads with store updates, do not and keep reading live
// stores. Concurrent readers are safe; the view is never written after
// capture.
type TrustView struct {
	adjOff []int32         // CSR row offsets, len NumAgents+1 (shared, not owned)
	adjTo  []AgentID       // CSR edge targets (shared, not owned)
	recOff []int32         // per-edge spans into recs, len len(adjTo)+1
	recs   []CompactRecord // record arena, grouped by directed edge
	tasks  []task.Task     // catalog snapshot resolving recs' refs (shared, immutable)
	pool   *ArenaPool      // arena source, nil when the arenas were allocated fresh
}

// ErrArenaOverflow reports a capture whose total record count exceeds the
// int32 offset space of the view arena (~2.1 G records). Before the typed
// error the prefix sum wrapped silently, corrupting every span after the
// overflow point.
var ErrArenaOverflow = errors.New("core: capture arena exceeds int32 offset space")

// checkedArenaLen validates a prefix-summed total against the int32 offset
// space — the single chokepoint every capture funnels through.
func checkedArenaLen(total int64) (int32, error) {
	if total > math.MaxInt32 {
		return 0, fmt.Errorf("%w: %d records", ErrArenaOverflow, total)
	}
	return int32(total), nil
}

// CaptureSource is the record access a capture needs from the live stores:
// Count reports how many records holder keeps about about, Append appends
// exactly those records (compact, refs interned into Catalog) to buf, and
// Catalog is the shared catalog those refs resolve against
// (Store.RecordCount / Store.AppendCompact / the population catalog). Count
// and Append must be safe for concurrent use across distinct holders and
// observe a quiescent store — capture runs two passes, and a store mutated
// between them is detected and rejected (panic), not silently misrecorded.
type CaptureSource struct {
	Catalog *task.Catalog
	Count   func(holder, about AgentID) int
	Append  func(holder, about AgentID, buf []CompactRecord) []CompactRecord
}

// CaptureTrustView freezes the per-edge records of a population into a view.
// adjOff/adjTo describe the CSR adjacency over dense agent IDs in
// [0, len(adjOff)-1); the adjacency slices are borrowed, not copied, and
// must stay immutable for the lifetime of the view. A first pass computes
// per-edge record counts concurrently (prefix-summed into recOff), then
// workers fill disjoint recs spans in place — byte-identical to a serial
// capture at every worker count (workers <= 1 runs the same two passes
// serially). Arenas are drawn from pool when non-nil (release them with
// TrustView.Release).
//
// Captures whose total record count overflows the int32 offset space return
// ErrArenaOverflow before any arena is filled. The capture panics if a
// store's record count changes between the two passes: the frozen-epoch
// contract requires quiescent stores for the whole capture, and a mismatched
// span would otherwise leak stale or short data into the arena.
func CaptureTrustView(adjOff []int32, adjTo []AgentID, src CaptureSource, workers int, pool *ArenaPool) (*TrustView, error) {
	ne := len(adjTo)
	v := &TrustView{
		adjOff: adjOff,
		adjTo:  adjTo,
		recOff: pool.GetOffsets(ne + 1),
		tasks:  src.Catalog.Tasks(),
		pool:   pool,
	}
	// Pass 1: per-edge record counts, written one slot right so the prefix
	// sum lands directly in recOff.
	parallelRows(adjOff, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			base := adjOff[u]
			for k, w := range adjTo[base:adjOff[u+1]] {
				v.recOff[int(base)+k+1] = int32(src.Count(AgentID(u), w))
			}
		}
	})
	// Serial prefix sum in int64: per-edge counts are individually small but
	// their total can overflow int32 at the million-node scale, and a
	// wrapped offset corrupts every later span.
	v.recOff[0] = 0
	total := int64(0)
	for e := 0; e < ne; e++ {
		total += int64(v.recOff[e+1])
		checked, err := checkedArenaLen(total)
		if err != nil {
			v.recOff, v.recs = nil, nil
			return nil, err
		}
		v.recOff[e+1] = checked
	}
	// Pass 2: fill disjoint spans in place. Appending into a zero-length,
	// exact-capacity subslice writes directly into the arena; a span that
	// comes back with a different length (or a reallocated base) means the
	// store mutated between the passes.
	v.recs = pool.GetRecords(int(v.recOff[ne]))
	parallelRows(adjOff, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			base := adjOff[u]
			for k, w := range adjTo[base:adjOff[u+1]] {
				e := int(base) + k
				span, want := v.recOff[e], v.recOff[e+1]-v.recOff[e]
				got := src.Append(AgentID(u), w, v.recs[span:span:span+want])
				if int32(len(got)) != want {
					panic("core: store mutated during CaptureTrustView")
				}
			}
		}
	})
	return v, nil
}

// parallelRows splits the CSR rows into one contiguous chunk per worker,
// balanced by edge count, and runs fn over each chunk concurrently.
func parallelRows(adjOff []int32, workers int, fn func(lo, hi int)) {
	n := len(adjOff) - 1
	ne := int(adjOff[n])
	if workers > ne/1024 {
		// Below ~1k edges per worker the goroutine overhead dominates.
		workers = ne / 1024
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	target := (ne + workers - 1) / workers
	lo := 0
	for lo < n {
		hi := lo
		limit := int(adjOff[lo]) + target
		for hi < n && int(adjOff[hi+1]) <= limit {
			hi++
		}
		if hi == lo {
			hi++ // a single row larger than the target still advances
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// Release returns the view's arenas to the pool it was captured from and
// invalidates the view: after Release the view (and anything aliasing its
// arenas, like EdgeRecords results) must not be used. Views captured
// without a pool release nothing. Only the owner of the capture may call
// Release, exactly once.
func (v *TrustView) Release() {
	v.pool.putOffsets(v.recOff)
	v.pool.putRecords(v.recs)
	v.recOff, v.recs = nil, nil
}

// NumAgents returns the number of dense agent slots.
func (v *TrustView) NumAgents() int { return len(v.adjOff) - 1 }

// NumEdges returns the number of directed edges.
func (v *TrustView) NumEdges() int { return len(v.adjTo) }

// Neighbors returns the frozen neighbor list of u. The slice is shared and
// must not be modified.
func (v *TrustView) Neighbors(u AgentID) []AgentID {
	return v.adjTo[v.adjOff[u]:v.adjOff[u+1]]
}

// EdgeRecords returns the captured compact records of directed edge e (an
// index into the CSR edge array). The slice aliases the arena and must not
// be modified; resolve task refs through Tasks.
func (v *TrustView) EdgeRecords(e int32) []CompactRecord {
	return v.recs[v.recOff[e]:v.recOff[e+1]]
}

// Tasks returns the catalog snapshot resolving the view's record refs,
// indexed by task.Ref. The slice is immutable and shared.
func (v *TrustView) Tasks() []task.Task { return v.tasks }

// blocked is the sentinel for "hop not admissible" in memo tables. Record
// trustworthiness is always finite (Expectation.Validate rejects NaN), so
// NaN is free to carry the ok=false case.
var blocked = math.NaN()

// EdgeMemo caches per-edge hop trustworthiness over a TrustView for one
// sweep. A transitivity sweep fires one independent BFS per trustor over the
// same frozen stores, so the hop value of edge (u, v) — which depends only
// on the edge's records and the (task, policy) pair — is recomputed up to
// N-trustors times on the live path. The memo computes each needed table
// once, in a parallel pre-pass over the CSR edges, turning the BFS inner
// loop into a single array lookup.
//
// Tables are keyed by task type (traditional, conservative) or by
// characteristic (aggressive; per-characteristic values are shared by every
// task containing the characteristic). Require must be called before the
// parallel search phase; afterwards all lookups are pure reads and safe for
// concurrent use.
type EdgeMemo struct {
	view    *TrustView
	norm    Normalizer
	workers int
	pool    *ArenaPool // table source, nil when tables are allocated fresh
	// tradVal[t][e] is the exact-type record trustworthiness of edge e
	// (eq. 5's per-hop value); blocked when the edge has no record of t.
	// The traditional hop depends on the task only through its type, so
	// the type alone is a sound key.
	tradVal map[task.Type][]float64
	// consVal[t][e] is the conservative inferred hop value of edge e
	// (eqs. 8–10); blocked when the edge's records do not cover the task.
	// The inferred value depends on the task's full characteristic/weight
	// set, not just its type, so consTask remembers which task each table
	// was built for and typeTable declines to serve a same-type task with
	// different contents (the search then computes hops from the arena —
	// slower but correct).
	consVal  map[task.Type][]float64
	consTask map[task.Type]task.Task
	// charVal[c][e] is CharTW of edge e for one characteristic (the inner
	// fraction of eq. 4); blocked when no record covers the characteristic.
	charVal map[task.Characteristic][]float64
	// modelVal[name][t][e] is the hop value of edge e under a registered
	// non-policy TrustModel, keyed like consVal by the full task each table
	// was built for (modelTask); policy adapters use the legacy tables
	// above. Lazily allocated — a policy-only sweep never creates them.
	modelVal  map[string]map[task.Type][]float64
	modelTask map[string]map[task.Type]task.Task
	// modelScorer caches the per-epoch trained state of EpochTrainable
	// models, keyed by model name: training runs once per (epoch, model)
	// in RequireModel, and the scorer dies with the memo.
	modelScorer map[string]EdgeScorer
}

// NewEdgeMemo creates an empty memo over a view. workers bounds the
// pre-pass parallelism (values below 1 run serially).
func NewEdgeMemo(view *TrustView, norm Normalizer, workers int) *EdgeMemo {
	return NewEdgeMemoPooled(view, norm, workers, nil)
}

// NewEdgeMemoPooled is NewEdgeMemo drawing its hop tables from pool (nil
// falls back to fresh allocation). Release the tables with Release when the
// memo goes stale.
func NewEdgeMemoPooled(view *TrustView, norm Normalizer, workers int, pool *ArenaPool) *EdgeMemo {
	return &EdgeMemo{
		view:     view,
		norm:     norm,
		workers:  workers,
		pool:     pool,
		tradVal:  make(map[task.Type][]float64),
		consVal:  make(map[task.Type][]float64),
		consTask: make(map[task.Type]task.Task),
		charVal:  make(map[task.Characteristic][]float64),
	}
}

// Release returns every built hop table to the memo's pool and empties the
// memo. It must not run concurrently with searches; after Release the memo
// is reusable (Require rebuilds tables on demand) but any table slice
// previously handed out is invalid.
func (m *EdgeMemo) Release() {
	for t, vals := range m.tradVal {
		m.pool.putTable(vals)
		delete(m.tradVal, t)
	}
	for t, vals := range m.consVal {
		m.pool.putTable(vals)
		delete(m.consVal, t)
		delete(m.consTask, t)
	}
	for c, vals := range m.charVal {
		m.pool.putTable(vals)
		delete(m.charVal, c)
	}
	for name, byType := range m.modelVal {
		for t, vals := range byType {
			m.pool.putTable(vals)
			delete(byType, t)
		}
		delete(m.modelVal, name)
		delete(m.modelTask, name)
	}
	for name := range m.modelScorer {
		delete(m.modelScorer, name)
	}
}

// Reset empties the memo and retargets it at a freshly captured view: every
// table is released to the pool (so the next Require recomputes into the
// same arenas) and subsequent lookups read the new view. Use after the
// underlying stores mutated and the epoch re-captured.
func (m *EdgeMemo) Reset(view *TrustView) {
	m.Release()
	m.view = view
}

// Require precomputes every table the given policy needs to search for the
// given tasks: per-type tables for traditional and conservative, per-
// characteristic tables for aggressive. It must not run concurrently with
// searches; tables already present are reused (an epoch can Require for
// several policies in turn and share the work where semantics overlap).
// Requiring a task already covered is free, so a sharded sweep can Require
// per shard without rebuilding.
func (m *EdgeMemo) Require(p Policy, tasks []task.Task) {
	cat := m.view.tasks
	switch p {
	case PolicyTraditional:
		for _, t := range tasks {
			if _, ok := m.tradVal[t.Type()]; ok {
				continue
			}
			typ := t.Type()
			m.tradVal[typ] = m.table(func(recs []CompactRecord) (float64, bool) {
				for _, r := range recs {
					if cat[r.Ref].Type() == typ {
						return r.TW(m.norm), true
					}
				}
				return 0, false
			})
		}
	case PolicyConservative:
		for _, t := range tasks {
			if prev, ok := m.consTask[t.Type()]; ok && prev.Equal(t) {
				continue
			}
			t := t
			m.consVal[t.Type()] = m.table(func(recs []CompactRecord) (float64, bool) {
				return InferFromCompact(cat, recs, t, m.norm)
			})
			m.consTask[t.Type()] = t
		}
	case PolicyAggressive:
		for _, t := range tasks {
			for _, c := range t.Characteristics() {
				if _, ok := m.charVal[c]; ok {
					continue
				}
				c := c
				m.charVal[c] = m.table(func(recs []CompactRecord) (float64, bool) {
					return CharTWCompact(cat, recs, c, m.norm)
				})
			}
		}
	}
}

// RequireModel is Require dispatching through a TrustModel: policy
// adapters route to the legacy per-policy tables (bit-identical to the
// pre-interface path), every other model gets per-type hop tables built
// from its HopTW — or, for EpochTrainable models, from a scorer trained
// once per epoch and cached on the memo. Like Require it must not run
// concurrently with searches, and requiring covered tasks is free.
func (m *EdgeMemo) RequireModel(mdl TrustModel, tasks []task.Task) {
	if p, ok := modelPolicy(mdl); ok {
		m.Require(p, tasks)
		return
	}
	name := mdl.Name()
	scorer := m.trainModel(mdl)
	if m.modelVal == nil {
		m.modelVal = make(map[string]map[task.Type][]float64)
		m.modelTask = make(map[string]map[task.Type]task.Task)
	}
	byType := m.modelVal[name]
	taskOf := m.modelTask[name]
	if byType == nil {
		byType = make(map[task.Type][]float64)
		taskOf = make(map[task.Type]task.Task)
		m.modelVal[name] = byType
		m.modelTask[name] = taskOf
	}
	ctx := HopContext{Tasks: m.view.tasks, Norm: m.norm}
	for _, t := range tasks {
		if prev, ok := taskOf[t.Type()]; ok && prev.Equal(t) {
			continue
		}
		t := t
		if old, ok := byType[t.Type()]; ok {
			m.pool.putTable(old)
		}
		if scorer != nil {
			byType[t.Type()] = m.tableEdge(func(e int32) (float64, bool) {
				return scorer.EdgeTW(m.view, e, t)
			})
		} else {
			byType[t.Type()] = m.tableEdge(func(e int32) (float64, bool) {
				return mdl.HopTW(ctx, m.view.EdgeRecords(e), t)
			})
		}
		taskOf[t.Type()] = t
	}
}

// trainModel returns the per-epoch scorer of an EpochTrainable model,
// training it on first use; nil for plain models. Not concurrent-safe —
// callers go through RequireModel before the parallel search phase.
func (m *EdgeMemo) trainModel(mdl TrustModel) EdgeScorer {
	tr, ok := mdl.(EpochTrainable)
	if !ok {
		return nil
	}
	if sc := m.modelScorer[mdl.Name()]; sc != nil {
		return sc
	}
	sc := tr.TrainEpoch(m.view, m.norm, m.workers)
	if m.modelScorer == nil {
		m.modelScorer = make(map[string]EdgeScorer)
	}
	m.modelScorer[mdl.Name()] = sc
	return sc
}

// modelTable returns the per-edge hop table RequireModel built for
// (mdl, t), or nil when absent or built for a same-type task with
// different contents (the search then computes hops per edge — slower but
// identical).
func (m *EdgeMemo) modelTable(mdl TrustModel, t task.Task) []float64 {
	if m == nil {
		return nil
	}
	byType := m.modelVal[mdl.Name()]
	if byType == nil {
		return nil
	}
	if prev, ok := m.modelTask[mdl.Name()][t.Type()]; !ok || !prev.Equal(t) {
		return nil
	}
	return byType[t.Type()]
}

// ModelEdgeTW scores one directed view edge through a model — the
// single-edge lens probes and direct-edge queries use. It reads the memo
// table when RequireModel built one for this exact task, else the trained
// scorer, else the model's evidence-local HopTW over the edge's records.
// An untrained EpochTrainable model panics: silently falling back to the
// untrained lens would let two code paths disagree about the same edge.
func (m *EdgeMemo) ModelEdgeTW(mdl TrustModel, e int32, t task.Task) (float64, bool) {
	if vals := m.modelTable(mdl, t); vals != nil {
		v := vals[e]
		return v, !math.IsNaN(v)
	}
	if _, trainable := mdl.(EpochTrainable); trainable {
		if sc := m.modelScorer[mdl.Name()]; sc != nil {
			return sc.EdgeTW(m.view, e, t)
		}
		panic(fmt.Sprintf("core: ModelEdgeTW on untrained model %q (call RequireModel first)", mdl.Name()))
	}
	return mdl.HopTW(HopContext{Tasks: m.view.tasks, Norm: m.norm}, m.view.EdgeRecords(e), t)
}

// typeTable returns the per-edge hop table for (t, p), or nil when Require
// has not built it (the search then falls back to computing hops from the
// arena records, which is still lock-free and bit-identical).
func (m *EdgeMemo) typeTable(p Policy, t task.Task) []float64 {
	if m == nil {
		return nil
	}
	if p == PolicyTraditional {
		return m.tradVal[t.Type()]
	}
	if prev, ok := m.consTask[t.Type()]; !ok || !prev.Equal(t) {
		return nil
	}
	return m.consVal[t.Type()]
}

// charTable returns the per-edge CharTW table for c, or nil when absent.
func (m *EdgeMemo) charTable(c task.Characteristic) []float64 {
	if m == nil {
		return nil
	}
	return m.charVal[c]
}

// table evaluates compute over every edge's records in parallel chunks.
func (m *EdgeMemo) table(compute func(recs []CompactRecord) (float64, bool)) []float64 {
	return m.tableEdge(func(e int32) (float64, bool) {
		return compute(m.view.EdgeRecords(e))
	})
}

// tableEdge is table for computations that need the edge index itself
// (trained scorers) rather than just the edge's records.
func (m *EdgeMemo) tableEdge(compute func(e int32) (float64, bool)) []float64 {
	ne := m.view.NumEdges()
	vals := m.pool.GetTable(ne)
	fill := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			val, ok := compute(int32(e))
			if !ok {
				val = blocked
			}
			vals[e] = val
		}
	}
	workers := m.workers
	if workers > ne/1024 {
		// Below ~1k edges per worker the goroutine overhead dominates.
		workers = ne / 1024
	}
	if workers <= 1 {
		fill(0, ne)
		return vals
	}
	var wg sync.WaitGroup
	chunk := (ne + workers - 1) / workers
	for lo := 0; lo < ne; lo += chunk {
		hi := lo + chunk
		if hi > ne {
			hi = ne
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return vals
}
