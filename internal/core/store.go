package core

import (
	"sort"

	"siot/internal/task"
)

// Record is one trustor's accumulated experience of delegating a particular
// task type to a particular trustee: the task (with its characteristics and
// weights), the current expectation, and the number of delegations behind
// it.
type Record struct {
	Task  task.Task
	Exp   Expectation
	Count int
}

// TW returns the record's trustworthiness under eq. 18.
func (r Record) TW(n Normalizer) float64 { return r.Exp.Trustworthiness(n) }

// Store holds the trust state one agent (as trustor) keeps about its
// trustees: per-(trustee, task type) experience records, plus the usage
// statistics it keeps about agents that delegated to it (for the reverse
// evaluation of eq. 1). Store is not safe for concurrent use; the
// simulation layers keep one per agent and drive them sequentially.
type Store struct {
	owner   AgentID
	records map[AgentID]map[task.Type]*Record
	usage   map[AgentID]*UsageLog
	cfg     UpdateConfig
}

// NewStore creates an empty store for the given agent using cfg for all
// updates.
func NewStore(owner AgentID, cfg UpdateConfig) *Store {
	if cfg.Norm == nil {
		cfg.Norm = UnitNormalizer()
	}
	return &Store{
		owner:   owner,
		records: make(map[AgentID]map[task.Type]*Record),
		usage:   make(map[AgentID]*UsageLog),
		cfg:     cfg,
	}
}

// Owner returns the agent this store belongs to.
func (s *Store) Owner() AgentID { return s.owner }

// Config returns the store's update configuration.
func (s *Store) Config() UpdateConfig { return s.cfg }

// Record returns the experience record for (trustee, task type), if any.
func (s *Store) Record(trustee AgentID, typ task.Type) (Record, bool) {
	if m, ok := s.records[trustee]; ok {
		if r, ok := m[typ]; ok {
			return *r, true
		}
	}
	return Record{}, false
}

// Records returns all experience records the store holds about trustee,
// ordered by task type.
func (s *Store) Records(trustee AgentID) []Record {
	m := s.records[trustee]
	if len(m) == 0 {
		return nil
	}
	out := make([]Record, 0, len(m))
	for _, r := range m {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task.Type() < out[j].Task.Type() })
	return out
}

// Trustees returns the sorted IDs of all agents the store has experience
// with.
func (s *Store) Trustees() []AgentID {
	out := make([]AgentID, 0, len(s.records))
	for id := range s.records {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Observe folds the outcome of delegating t to trustee into the store
// (post-evaluation, eqs. 19–22 / 25–28) and returns the updated record.
func (s *Store) Observe(trustee AgentID, t task.Task, o Outcome, ectx EnvContext) Record {
	m, ok := s.records[trustee]
	if !ok {
		m = make(map[task.Type]*Record)
		s.records[trustee] = m
	}
	r, ok := m[t.Type()]
	if !ok {
		r = &Record{Task: t, Exp: s.cfg.Init}
		m[t.Type()] = r
	}
	r.Exp = Update(r.Exp, o, ectx, s.cfg)
	r.Count++
	return *r
}

// Seed installs an expectation for (trustee, task) without counting a
// delegation — used to initialize trust from social-relationship metrics or
// experiment setup, as §4.4 suggests.
func (s *Store) Seed(trustee AgentID, t task.Task, exp Expectation) {
	m, ok := s.records[trustee]
	if !ok {
		m = make(map[task.Type]*Record)
		s.records[trustee] = m
	}
	m[t.Type()] = &Record{Task: t, Exp: exp}
}

// DirectTW returns the trustworthiness of trustee on the exact task type,
// if the store has a record for it (the conventional, pre-inference lookup).
func (s *Store) DirectTW(trustee AgentID, typ task.Type) (float64, bool) {
	r, ok := s.Record(trustee, typ)
	if !ok {
		return 0, false
	}
	return r.TW(s.cfg.Norm), true
}

// InferTW implements the inferential transfer of trust (eqs. 2–4): the
// trustworthiness of trustee on a task the trustor never delegated to it,
// inferred from experienced tasks that share characteristics.
//
// For each characteristic a_i of t it computes the weighted average of the
// trustworthiness of every experienced task containing a_i (weights are the
// characteristic's importance within those tasks), then combines the
// per-characteristic estimates with t's own weights w_i(τ′). Inference
// requires every characteristic of t to be covered by experience (the ∀i ∃j
// condition); otherwise ok is false.
//
// A direct record for t's exact type, when present, participates like any
// other experienced task.
func (s *Store) InferTW(trustee AgentID, t task.Task) (tw float64, ok bool) {
	recs := s.records[trustee]
	if len(recs) == 0 {
		return 0, false
	}
	total := 0.0
	for _, c := range t.Characteristics() {
		num, den := 0.0, 0.0
		for _, r := range recs {
			if w := r.Task.Weight(c); w > 0 {
				num += w * r.TW(s.cfg.Norm)
				den += w
			}
		}
		if den == 0 {
			return 0, false // characteristic not covered by any experience
		}
		total += t.Weight(c) * (num / den)
	}
	return total, true
}

// BestTW returns the best available trustworthiness estimate for trustee on
// t: the direct record if one exists, otherwise characteristic inference.
func (s *Store) BestTW(trustee AgentID, t task.Task) (float64, bool) {
	if tw, ok := s.DirectTW(trustee, t.Type()); ok {
		return tw, true
	}
	return s.InferTW(trustee, t)
}

// UsageLog is the trustee-side record of how a particular trustor used its
// resources — the basis of the reverse evaluation (§4.1): "the trustee can
// use its log files or usage pattern records to recognize how the trustor
// has used its resources."
type UsageLog struct {
	Responsible int
	Abusive     int
}

// TW returns the reverse trustworthiness TW̃_{y←X} implied by the log: the
// fraction of responsible uses smoothed with one optimistic pseudo-count.
// An empty log scores 1 — strangers are innocent until proven guilty, which
// is what keeps the service loop alive under high θ thresholds: a trustor
// must actually abuse resources before trustees start refusing it, exactly
// the dynamic behind Fig. 7's abuse-rate decline.
func (l UsageLog) TW() float64 {
	return (float64(l.Responsible) + 1) / (float64(l.Responsible+l.Abusive) + 1)
}

// Usage returns the usage log the store keeps about a trustor.
func (s *Store) Usage(trustor AgentID) UsageLog {
	if l, ok := s.usage[trustor]; ok {
		return *l
	}
	return UsageLog{}
}

// ObserveUsage records one use of this agent's resources by trustor.
func (s *Store) ObserveUsage(trustor AgentID, abusive bool) {
	l, ok := s.usage[trustor]
	if !ok {
		l = &UsageLog{}
		s.usage[trustor] = l
	}
	if abusive {
		l.Abusive++
	} else {
		l.Responsible++
	}
}

// ReverseTW returns the reverse-evaluation trustworthiness this agent (as
// potential trustee) assigns to the requesting trustor (eq. 1's
// TW̃_{y←X}(τ)).
func (s *Store) ReverseTW(trustor AgentID) float64 {
	return s.Usage(trustor).TW()
}
