package core

import (
	"cmp"
	"slices"
	"sync"

	"siot/internal/task"
)

// Record is one trustor's accumulated experience of delegating a particular
// task type to a particular trustee: the task (with its characteristics and
// weights), the current expectation, and the number of delegations behind
// it.
//
// Record is the fat public form — stores keep CompactRecord internally and
// materialize on the way out, sharing the catalog's task slices so the
// widening allocates nothing.
type Record struct {
	Task  task.Task
	Exp   Expectation
	Count int
}

// TW returns the record's trustworthiness under eq. 18.
func (r Record) TW(n Normalizer) float64 { return r.Exp.Trustworthiness(n) }

// storeShards stripes the record map across independently locked shards so
// concurrent readers of different trustees (the parallel transitivity search
// fanning out over a hub agent's store) do not contend on one lock.
const storeShards = 8

// storeShard is one lock stripe: the experience records about the trustees
// whose IDs hash into it. Records per trustee are kept sorted by task type,
// so reads hand out ordered data without sorting or allocating. The map is
// allocated lazily on first write — a 100k-node population creates 800k
// shard maps, most of which never see a record — and every read path
// tolerates it being nil.
type storeShard struct {
	mu      sync.RWMutex
	records map[AgentID][]CompactRecord
}

// Store holds the trust state one agent (as trustor) keeps about its
// trustees: per-(trustee, task type) experience records, plus the usage
// statistics it keeps about agents that delegated to it (for the reverse
// evaluation of eq. 1).
//
// Records are held compact — tasks interned into the store's catalog, each
// record 40 pointer-free bytes — so the aggregate record state of a
// million-node population is GC-transparent. The catalog is shared by every
// store of a population (UpdateConfig.Catalog); refs therefore carry across
// stores into captured views without translation.
//
// Store is safe for concurrent use: records are striped over sharded
// RWMutexes keyed by trustee ID, and usage logs carry their own lock. The
// parallel simulation engine relies on this — many trustor goroutines read
// hub agents' stores simultaneously during a delegation round.
type Store struct {
	owner   AgentID
	cfg     UpdateConfig
	cat     *task.Catalog
	shards  [storeShards]storeShard
	usageMu sync.RWMutex
	usage   map[AgentID]*UsageLog
}

// NewStore creates an empty store for the given agent using cfg for all
// updates. Shard and usage maps are allocated lazily on first write, so an
// empty store costs one allocation — population builds create one store per
// node, and at 100k nodes eager maps dominated the build time. A nil
// cfg.Catalog gets a private catalog; populations share one across all
// stores.
func NewStore(owner AgentID, cfg UpdateConfig) *Store {
	if cfg.Norm == nil {
		cfg.Norm = UnitNormalizer()
	}
	if cfg.Catalog == nil {
		cfg.Catalog = task.NewCatalog()
	}
	return &Store{owner: owner, cfg: cfg, cat: cfg.Catalog}
}

// shard returns the lock stripe responsible for a trustee.
func (s *Store) shard(trustee AgentID) *storeShard {
	return &s.shards[uint32(trustee)%storeShards]
}

// searchRecord locates the record for typ in a sorted-by-type record slice.
func searchRecord(recs []Record, typ task.Type) (int, bool) {
	return slices.BinarySearchFunc(recs, typ, func(r Record, t task.Type) int {
		return cmp.Compare(r.Task.Type(), t)
	})
}

// Owner returns the agent this store belongs to.
func (s *Store) Owner() AgentID { return s.owner }

// Config returns the store's update configuration.
func (s *Store) Config() UpdateConfig { return s.cfg }

// Catalog returns the catalog the store's records are interned into.
func (s *Store) Catalog() *task.Catalog { return s.cat }

// Record returns the experience record for (trustee, task type), if any.
func (s *Store) Record(trustee AgentID, typ task.Type) (Record, bool) {
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	// Snapshot loaded under the lock: every ref in the shard was interned
	// before the writer that stored it released this lock, so the snapshot
	// resolves them all (the catalog only grows).
	tasks := s.cat.Tasks()
	recs := sh.records[trustee]
	if i, ok := searchCompact(tasks, recs, typ); ok {
		return materialize(tasks, recs[i]), true
	}
	return Record{}, false
}

// Records returns all experience records the store holds about trustee,
// ordered by task type.
func (s *Store) Records(trustee AgentID) []Record {
	return s.AppendRecords(trustee, nil)
}

// AppendRecords appends the experience records about trustee (ordered by
// task type) to buf and returns the extended slice. Reusing buf across calls
// keeps the hot read path of the transitivity search allocation-free: the
// materialized Task values share the catalog's slices.
func (s *Store) AppendRecords(trustee AgentID, buf []Record) []Record {
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	recs := sh.records[trustee]
	if len(recs) == 0 {
		return buf
	}
	tasks := s.cat.Tasks()
	for _, r := range recs {
		buf = append(buf, materialize(tasks, r))
	}
	return buf
}

// AppendCompact appends the compact records about trustee (ordered by task
// type) to buf and returns the extended slice — the zero-widening bulk read
// behind view captures. cat must be the store's own catalog: the caller is
// building an arena resolved against it, and mixing catalogs would alias
// refs across namespaces.
func (s *Store) AppendCompact(trustee AgentID, cat *task.Catalog, buf []CompactRecord) []CompactRecord {
	if cat != s.cat {
		panic("core: AppendCompact with a foreign catalog")
	}
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	recs := sh.records[trustee]
	if len(recs) == 0 {
		return buf
	}
	return append(buf, recs...)
}

// RecordCount returns how many records the store holds about trustee. It
// is the counting pass of the parallel trust-view capture: together with
// AppendCompact it lets CaptureTrustViewParallel size every arena span
// before filling it.
func (s *Store) RecordCount(trustee AgentID) int {
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.records[trustee])
}

// NumRecords returns the number of (trustee, task type) records held.
func (s *Store) NumRecords() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		storeLockTick()
		sh.mu.RLock()
		for _, recs := range sh.records {
			n += len(recs)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Trustees returns the sorted IDs of all agents the store has experience
// with.
func (s *Store) Trustees() []AgentID {
	var out []AgentID
	for i := range s.shards {
		sh := &s.shards[i]
		storeLockTick()
		sh.mu.RLock()
		for id := range sh.records {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	slices.Sort(out)
	return out
}

// Observe folds the outcome of delegating t to trustee into the store
// (post-evaluation, eqs. 19–22 / 25–28) and returns the updated record.
func (s *Store) Observe(trustee AgentID, t task.Task, o Outcome, ectx EnvContext) Record {
	ref := s.cat.Intern(t)
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tasks := s.cat.Tasks() // after Intern: resolves ref
	recs := sh.records[trustee]
	i, ok := searchCompact(tasks, recs, t.Type())
	if !ok {
		if sh.records == nil {
			sh.records = make(map[AgentID][]CompactRecord)
		}
		recs = slices.Insert(recs, i, CompactRecord{Ref: ref, Exp: s.cfg.Init})
		sh.records[trustee] = recs
	}
	r := &recs[i]
	r.Exp = Update(r.Exp, o, ectx, s.cfg)
	r.Count++
	return materialize(tasks, *r)
}

// Seed installs an expectation for (trustee, task) without counting a
// delegation — used to initialize trust from social-relationship metrics or
// experiment setup, as §4.4 suggests.
func (s *Store) Seed(trustee AgentID, t task.Task, exp Expectation) {
	s.setRecord(trustee, Record{Task: t, Exp: exp})
}

// setRecord installs or replaces the record for the task type of r.Task.
func (s *Store) setRecord(trustee AgentID, r Record) {
	ref := s.cat.Intern(r.Task)
	cr := CompactRecord{Ref: ref, Exp: r.Exp, Count: uint32(r.Count)}
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tasks := s.cat.Tasks()
	recs := sh.records[trustee]
	if i, ok := searchCompact(tasks, recs, r.Task.Type()); ok {
		recs[i] = cr
	} else {
		if sh.records == nil {
			sh.records = make(map[AgentID][]CompactRecord)
		}
		sh.records[trustee] = slices.Insert(recs, i, cr)
	}
}

// DirectTW returns the trustworthiness of trustee on the exact task type,
// if the store has a record for it (the conventional, pre-inference lookup).
func (s *Store) DirectTW(trustee AgentID, typ task.Type) (float64, bool) {
	r, ok := s.Record(trustee, typ)
	if !ok {
		return 0, false
	}
	return r.TW(s.cfg.Norm), true
}

// InferTW implements the inferential transfer of trust (eqs. 2–4): the
// trustworthiness of trustee on a task the trustor never delegated to it,
// inferred from experienced tasks that share characteristics.
//
// For each characteristic a_i of t it computes the weighted average of the
// trustworthiness of every experienced task containing a_i (weights are the
// characteristic's importance within those tasks), then combines the
// per-characteristic estimates with t's own weights w_i(τ′). Inference
// requires every characteristic of t to be covered by experience (the ∀i ∃j
// condition); otherwise ok is false.
//
// A direct record for t's exact type, when present, participates like any
// other experienced task.
func (s *Store) InferTW(trustee AgentID, t task.Task) (tw float64, ok bool) {
	sh := s.shard(trustee)
	storeLockTick()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	recs := sh.records[trustee]
	if len(recs) == 0 {
		return 0, false
	}
	return InferFromCompact(s.cat.Tasks(), recs, t, s.cfg.Norm)
}

// BestTW returns the best available trustworthiness estimate for trustee on
// t: the direct record if one exists, otherwise characteristic inference.
func (s *Store) BestTW(trustee AgentID, t task.Task) (float64, bool) {
	if tw, ok := s.DirectTW(trustee, t.Type()); ok {
		return tw, true
	}
	return s.InferTW(trustee, t)
}

// UsageLog is the trustee-side record of how a particular trustor used its
// resources — the basis of the reverse evaluation (§4.1): "the trustee can
// use its log files or usage pattern records to recognize how the trustor
// has used its resources."
type UsageLog struct {
	Responsible int
	Abusive     int
}

// TW returns the reverse trustworthiness TW̃_{y←X} implied by the log: the
// fraction of responsible uses smoothed with one optimistic pseudo-count.
// An empty log scores 1 — strangers are innocent until proven guilty, which
// is what keeps the service loop alive under high θ thresholds: a trustor
// must actually abuse resources before trustees start refusing it, exactly
// the dynamic behind Fig. 7's abuse-rate decline.
func (l UsageLog) TW() float64 {
	return (float64(l.Responsible) + 1) / (float64(l.Responsible+l.Abusive) + 1)
}

// Usage returns the usage log the store keeps about a trustor.
func (s *Store) Usage(trustor AgentID) UsageLog {
	storeLockTick()
	s.usageMu.RLock()
	defer s.usageMu.RUnlock()
	if l, ok := s.usage[trustor]; ok {
		return *l
	}
	return UsageLog{}
}

// usageSorted returns all usage logs ordered by trustor ID (for snapshots).
func (s *Store) usageSorted() []usageSnapshot {
	storeLockTick()
	s.usageMu.RLock()
	defer s.usageMu.RUnlock()
	out := make([]usageSnapshot, 0, len(s.usage))
	for id, l := range s.usage {
		out = append(out, usageSnapshot{Trustor: id, Responsible: l.Responsible, Abusive: l.Abusive})
	}
	slices.SortFunc(out, func(a, b usageSnapshot) int { return cmp.Compare(a.Trustor, b.Trustor) })
	return out
}

// ObserveUsage records one use of this agent's resources by trustor.
func (s *Store) ObserveUsage(trustor AgentID, abusive bool) {
	storeLockTick()
	s.usageMu.Lock()
	defer s.usageMu.Unlock()
	if s.usage == nil {
		s.usage = make(map[AgentID]*UsageLog)
	}
	l, ok := s.usage[trustor]
	if !ok {
		l = &UsageLog{}
		s.usage[trustor] = l
	}
	if abusive {
		l.Abusive++
	} else {
		l.Responsible++
	}
}

// Forget erases everything the store knows about one agent: the experience
// records accumulated about it as trustee and the usage log kept about it as
// trustor. This is the memory half of identity churn — a whitewashing
// attacker that rejoins under a fresh identity is, to every peer, an agent
// nobody remembers.
func (s *Store) Forget(about AgentID) {
	sh := s.shard(about)
	storeLockTick()
	sh.mu.Lock()
	delete(sh.records, about)
	sh.mu.Unlock()
	storeLockTick()
	s.usageMu.Lock()
	delete(s.usage, about)
	s.usageMu.Unlock()
}

// ReverseTW returns the reverse-evaluation trustworthiness this agent (as
// potential trustee) assigns to the requesting trustor (eq. 1's
// TW̃_{y←X}(τ)).
func (s *Store) ReverseTW(trustor AgentID) float64 {
	return s.Usage(trustor).TW()
}
