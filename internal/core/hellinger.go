package core

import (
	"math"

	"siot/internal/rng"
	"siot/internal/task"
)

// hellinger-mf is a low-rank matrix-factorization trust model in the style
// of Aalibagi et al. (arXiv:1909.12432): the sparse trustor×trustee
// experience matrix — each observed directed edge rated by the mean
// trustworthiness of its records — is factored into rank-k latent vectors,
// and the reconstruction is blended with a Hellinger-distance similarity
// between the two endpoints' outgoing-rating distributions (the paper's
// remedy for sparse/cold-start cells: agents who rate alike trust alike).
//
// The model is epoch-trainable: TrainEpoch fits the factors against a
// frozen TrustView with deterministic rng.Split2 sub-streams for the
// initialization and double-buffered Jacobi gradient sweeps whose per-row
// sums run in fixed CSR order — so the trained scorer is bit-identical at
// every worker count. An edge with no experience records stays blocked
// (ok=false): factorization interpolates strength, not existence, of
// evidence, which keeps the honest-ring ≡ no-attack property exact.
const (
	hmfRank    = 4
	hmfSweeps  = 4
	hmfRate    = 0.10
	hmfReg     = 0.05
	hmfBuckets = 8
	// hmfMFWeight blends the factorization term against the Hellinger
	// similarity term.
	hmfMFWeight = 0.7
	// hmfSeed keys the deterministic parameter initialization. It is a
	// fixed constant, not the experiment seed: the model's parameters are
	// part of the model, so two runs over the same view train identically.
	hmfSeed = 0x48656c6c696e6765
)

type hellingerMF struct{}

func (hellingerMF) Name() string { return "hellinger-mf" }

func (hellingerMF) Spec() ModelSpec {
	return ModelSpec{Combine: CombineMistrust, OmegaGated: true}
}

// HopTW is the untrained evidence-local lens: the mean trustworthiness of
// the edge's records. Live-path probes that have no epoch to train on (and
// the generic search, before RequireModel fits the epoch) read this.
func (hellingerMF) HopTW(ctx HopContext, recs []CompactRecord, t task.Task) (float64, bool) {
	if len(recs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, r := range recs {
		sum += r.TW(ctx.Norm)
	}
	return sum / float64(len(recs)), true
}

// hellingerScorer is the trained state: latent factors, per-node sqrt
// rating histograms, and the per-edge rating/holder arrays. Immutable
// after training.
type hellingerScorer struct {
	uFac     []float64 // n×hmfRank trustor factors
	vFac     []float64 // n×hmfRank trustee factors
	histSqrt []float64 // n×hmfBuckets, sqrt of outgoing-rating histogram
	hasHist  []bool    // node has at least one rated outgoing edge
	rated    []bool    // edge had ≥1 record at capture
	holder   []AgentID // CSR row (trustor) of each directed edge
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EdgeTW scores a directed edge from the trained state. The value is
// task-agnostic — the factorization models latent trustor/trustee
// dispositions, not per-task competence — and the blend of two [0, 1]
// terms is clamped, so outputs stay in [0, 1].
func (s *hellingerScorer) EdgeTW(view *TrustView, e int32, t task.Task) (float64, bool) {
	if !s.rated[e] {
		return 0, false
	}
	u, v := s.holder[e], view.adjTo[e]
	dot := 0.0
	for k := 0; k < hmfRank; k++ {
		dot += s.uFac[int(u)*hmfRank+k] * s.vFac[int(v)*hmfRank+k]
	}
	sim := 0.5 // neutral prior when either endpoint has no rating history
	if s.hasHist[u] && s.hasHist[v] {
		d2 := 0.0
		for b := 0; b < hmfBuckets; b++ {
			diff := s.histSqrt[int(u)*hmfBuckets+b] - s.histSqrt[int(v)*hmfBuckets+b]
			d2 += diff * diff
		}
		// Hellinger distance H = (1/√2)·‖√p−√q‖₂ ∈ [0, 1]; similarity 1−H.
		sim = 1 - math.Sqrt(d2/2)
	}
	return clamp01(hmfMFWeight*clamp01(dot) + (1-hmfMFWeight)*sim), true
}

// TrainEpoch fits the factorization against the frozen view. Determinism
// recipe: parameter init from per-(node, side) rng.Split2 sub-streams;
// each Jacobi sweep computes the new factors of every row from the OLD
// factor arrays only (double buffering), with per-row gradient sums
// accumulated in fixed CSR edge order — workers own disjoint rows, so the
// schedule cannot reorder any floating-point sum.
func (hellingerMF) TrainEpoch(view *TrustView, norm Normalizer, workers int) EdgeScorer {
	n, ne := view.NumAgents(), view.NumEdges()
	adjOff, adjTo := view.adjOff, view.adjTo
	s := &hellingerScorer{
		uFac:     make([]float64, n*hmfRank),
		vFac:     make([]float64, n*hmfRank),
		histSqrt: make([]float64, n*hmfBuckets),
		hasHist:  make([]bool, n),
		rated:    make([]bool, ne),
		holder:   make([]AgentID, ne),
	}
	// Per-edge ratings: mean record trustworthiness, in parallel over
	// disjoint CSR rows.
	rating := make([]float64, ne)
	parallelRows(adjOff, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for e := adjOff[u]; e < adjOff[u+1]; e++ {
				s.holder[e] = AgentID(u)
				recs := view.EdgeRecords(e)
				if len(recs) == 0 {
					continue
				}
				sum := 0.0
				for _, r := range recs {
					sum += r.TW(norm)
				}
				rating[e] = sum / float64(len(recs))
				s.rated[e] = true
			}
		}
	})
	// Incoming CSR (per-trustee edge lists) for the V update, built
	// serially in ascending edge order so every in-list is deterministic.
	inOff := make([]int32, n+1)
	for _, v := range adjTo {
		inOff[v+1]++
	}
	for i := 0; i < n; i++ {
		inOff[i+1] += inOff[i]
	}
	inEdge := make([]int32, ne)
	cursor := make([]int32, n)
	copy(cursor, inOff[:n])
	for e, v := range adjTo {
		inEdge[cursor[v]] = int32(e)
		cursor[v]++
	}
	// Deterministic initialization in (0.3, 0.7): one sub-stream per
	// (node, side), independent of worker count and experiment seed.
	for i := 0; i < n; i++ {
		ur := rng.Split2(hmfSeed, "hellinger-mf-init", i, 0)
		vr := rng.Split2(hmfSeed, "hellinger-mf-init", i, 1)
		for k := 0; k < hmfRank; k++ {
			s.uFac[i*hmfRank+k] = 0.3 + 0.4*ur.Float64()
			s.vFac[i*hmfRank+k] = 0.3 + 0.4*vr.Float64()
		}
	}
	// Double-buffered Jacobi gradient sweeps: newU/newV are computed from
	// uFac/vFac only, then swapped in.
	newU := make([]float64, n*hmfRank)
	newV := make([]float64, n*hmfRank)
	for sweep := 0; sweep < hmfSweeps; sweep++ {
		parallelRows(adjOff, workers, func(lo, hi int) {
			var g [hmfRank]float64
			for u := lo; u < hi; u++ {
				for k := range g {
					g[k] = 0
				}
				for e := adjOff[u]; e < adjOff[u+1]; e++ {
					if !s.rated[e] {
						continue
					}
					v := int(adjTo[e])
					pred := 0.0
					for k := 0; k < hmfRank; k++ {
						pred += s.uFac[u*hmfRank+k] * s.vFac[v*hmfRank+k]
					}
					err := rating[e] - pred
					for k := 0; k < hmfRank; k++ {
						g[k] += err * s.vFac[v*hmfRank+k]
					}
				}
				for k := 0; k < hmfRank; k++ {
					newU[u*hmfRank+k] = s.uFac[u*hmfRank+k] + hmfRate*(g[k]-hmfReg*s.uFac[u*hmfRank+k])
				}
			}
		})
		parallelRows(inOff, workers, func(lo, hi int) {
			var g [hmfRank]float64
			for v := lo; v < hi; v++ {
				for k := range g {
					g[k] = 0
				}
				for ie := inOff[v]; ie < inOff[v+1]; ie++ {
					e := inEdge[ie]
					if !s.rated[e] {
						continue
					}
					u := int(s.holder[e])
					pred := 0.0
					for k := 0; k < hmfRank; k++ {
						pred += s.uFac[u*hmfRank+k] * s.vFac[v*hmfRank+k]
					}
					err := rating[e] - pred
					for k := 0; k < hmfRank; k++ {
						g[k] += err * s.uFac[u*hmfRank+k]
					}
				}
				for k := 0; k < hmfRank; k++ {
					newV[v*hmfRank+k] = s.vFac[v*hmfRank+k] + hmfRate*(g[k]-hmfReg*s.vFac[v*hmfRank+k])
				}
			}
		})
		s.uFac, newU = newU, s.uFac
		s.vFac, newV = newV, s.vFac
	}
	// Outgoing-rating histograms (serial, O(ne)): the Hellinger term
	// compares how two agents distribute their trust.
	counts := make([]float64, n*hmfBuckets)
	totals := make([]float64, n)
	for e := 0; e < ne; e++ {
		if !s.rated[e] {
			continue
		}
		u := int(s.holder[e])
		b := int(rating[e] * hmfBuckets)
		if b >= hmfBuckets {
			b = hmfBuckets - 1
		}
		counts[u*hmfBuckets+b]++
		totals[u]++
	}
	for i := 0; i < n; i++ {
		if totals[i] == 0 {
			continue
		}
		s.hasHist[i] = true
		for b := 0; b < hmfBuckets; b++ {
			s.histSqrt[i*hmfBuckets+b] = math.Sqrt(counts[i*hmfBuckets+b] / totals[i])
		}
	}
	return s
}

func init() { RegisterModel(hellingerMF{}) }
