package core

import (
	"cmp"
	"slices"
)

// Candidate pairs a potential trustee with the trustworthiness the trustor
// perceives for the task at hand.
type Candidate struct {
	ID AgentID
	TW float64
}

// SortCandidates orders candidates by decreasing trustworthiness, breaking
// ties by ascending ID for determinism. It allocates nothing, keeping the
// search hot path pool-warm clean.
func SortCandidates(cands []Candidate) {
	slices.SortFunc(cands, func(a, b Candidate) int {
		if c := cmp.Compare(b.TW, a.TW); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// SelectMutual implements the mutual-evaluation selection of eq. 1 and
// Fig. 2: the trustor walks its candidates in decreasing trustworthiness
// order; each candidate performs a reverse evaluation of the trustor
// (accept), and the first candidate that accepts becomes the trustee. The
// second return value is false when every candidate refuses — the
// "unavailable" outcome of Fig. 7.
//
// A nil accept reproduces unilateral evaluation (θ_y(τ) = 0): the top
// candidate is always chosen.
func SelectMutual(cands []Candidate, accept func(AgentID) bool) (Candidate, bool) {
	ordered := append([]Candidate(nil), cands...)
	SortCandidates(ordered)
	for _, c := range ordered {
		if accept == nil || accept(c.ID) {
			return c, true
		}
	}
	return Candidate{}, false
}

// ExpCandidate pairs a potential trustee with the trustor's full expectation
// for the task, for the decision stage of §4.4.
type ExpCandidate struct {
	ID  AgentID
	Exp Expectation
}

// BestByNetProfit implements eq. 23: the rational assignment maximizing
// Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ (the paper's "second strategy"). Ties break toward the
// lower ID.
func BestByNetProfit(cands []ExpCandidate) (ExpCandidate, bool) {
	return bestBy(cands, func(e Expectation) float64 { return e.NetProfit() })
}

// BestBySuccessRate is the "first strategy" baseline of Fig. 13: choose the
// candidate with the highest expected success rate, ignoring gain, damage,
// and cost.
func BestBySuccessRate(cands []ExpCandidate) (ExpCandidate, bool) {
	return bestBy(cands, func(e Expectation) float64 { return e.S })
}

func bestBy(cands []ExpCandidate, score func(Expectation) float64) (ExpCandidate, bool) {
	if len(cands) == 0 {
		return ExpCandidate{}, false
	}
	best := cands[0]
	bestScore := score(best.Exp)
	for _, c := range cands[1:] {
		s := score(c.Exp)
		if s > bestScore || (s == bestScore && c.ID < best.ID) {
			best, bestScore = c, s
		}
	}
	return best, true
}

// ShouldDelegate implements eq. 24: the trustor delegates to the trustee
// rather than doing the task itself only if the trustee's expected net
// profit strictly exceeds its own.
func ShouldDelegate(self, trustee Expectation) bool {
	return trustee.NetProfit() > self.NetProfit()
}

// DecideWithSelf runs the full decision of §4.4 with the trustor itself as
// one of the candidates (eq. 24): it returns the best external candidate if
// delegation beats self-execution, otherwise (selfID, false) meaning the
// trustor keeps the task.
func DecideWithSelf(self Expectation, selfID AgentID, cands []ExpCandidate) (ExpCandidate, bool) {
	best, ok := BestByNetProfit(cands)
	if !ok || !ShouldDelegate(self, best.Exp) {
		return ExpCandidate{ID: selfID, Exp: self}, false
	}
	return best, true
}
