package core

import (
	"fmt"
	"slices"
	"sync"

	"siot/internal/task"
)

// CombinePair implements the two-hop trust transition of eq. 7:
//
//	TW_{A←C} = TW_{A←B}·TW_{B←C} + (1 − TW_{A←B})·(1 − TW_{B←C})
//
// The second term — mistrust toward the intermediate multiplied by the
// intermediate's incorrect judgment — is the correction the paper adds over
// the plain product of eq. 5.
func CombinePair(a, b float64) float64 {
	return a*b + (1-a)*(1-b)
}

// CombineSerial folds CombinePair left to right along a chain of hop
// trustworthiness values; an empty chain yields 1 (the identity of
// CombinePair: CombinePair(1, x) = x). The paper defines the two-hop case;
// folding is the natural extension for longer recommendation chains.
func CombineSerial(vals ...float64) float64 {
	acc := 1.0
	for _, v := range vals {
		acc = CombinePair(acc, v)
	}
	return acc
}

// ProductSerial is the traditional transitivity of eq. 5: the plain product
// of the hop trustworthiness values along the path.
func ProductSerial(vals ...float64) float64 {
	acc := 1.0
	for _, v := range vals {
		acc *= v
	}
	return acc
}

// TransitSameType evaluates the same-task-type transition of Fig. 4 and
// eq. 7: trust transits only when the recommender hop clears ω1 and the
// trustee hop clears ω2. ok is false when the transition is blocked.
func TransitSameType(recTW, trusteeTW, omega1, omega2 float64) (tw float64, ok bool) {
	if recTW < omega1 || trusteeTW < omega2 {
		return 0, false
	}
	return CombinePair(recTW, trusteeTW), true
}

// Policy selects the trust-transfer method of §4.3.
type Policy int

const (
	// PolicyTraditional is the baseline of eq. 5: trustworthiness transfers
	// only through records of the exact same task type, combined by product.
	PolicyTraditional Policy = iota
	// PolicyConservative (eqs. 8–11) transfers through a single path on
	// which every hop's experience covers all characteristics of the task,
	// combined by eq. 7.
	PolicyConservative
	// PolicyAggressive (eqs. 12–17) assesses each characteristic along its
	// own path and combines the per-characteristic estimates with the
	// task's weights (eq. 17).
	PolicyAggressive
)

// String returns the method name used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case PolicyTraditional:
		return "traditional"
	case PolicyConservative:
		return "conservative"
	case PolicyAggressive:
		return "aggressive"
	default:
		return "unknown"
	}
}

// ParsePolicy is the inverse of Policy.String: it resolves the method name
// used in the paper's figures (and in every CLI -policy flag and journal
// header) back to the Policy constant.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "traditional":
		return PolicyTraditional, nil
	case "conservative":
		return PolicyConservative, nil
	case "aggressive":
		return PolicyAggressive, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q (want traditional, conservative, or aggressive)", s)
	}
}

// CharTW computes the weighted-average trustworthiness of one
// characteristic over a set of experience records — the inner fraction of
// eq. 4: Σ_k w_j(τ_k)·TW(τ_k) / Σ_k w_j(τ_k) over records whose task
// contains the characteristic. ok is false when no record covers it.
func CharTW(recs []Record, c task.Characteristic, n Normalizer) (float64, bool) {
	num, den := 0.0, 0.0
	for _, r := range recs {
		if w := r.Task.Weight(c); w > 0 {
			num += w * r.TW(n)
			den += w
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// InferFromRecords is eq. 4 over an explicit record set: the inferred
// trustworthiness of a task from experienced tasks sharing its
// characteristics. Every characteristic must be covered, else ok is false.
func InferFromRecords(recs []Record, t task.Task, n Normalizer) (float64, bool) {
	total := 0.0
	for _, c := range t.Characteristics() {
		est, ok := CharTW(recs, c, n)
		if !ok {
			return 0, false
		}
		total += t.Weight(c) * est
	}
	return total, true
}

// Searcher performs trust-transitivity discovery over a social network. It
// is configured with accessor functions so it can run over any substrate
// (the in-memory simulation, the ZigBee testbed model, a fake in tests).
type Searcher struct {
	// Neighbors returns the social neighbors of an agent.
	Neighbors func(AgentID) []AgentID
	// Records returns the experience records holder keeps about a neighbor.
	Records func(holder, about AgentID) []Record
	// RecordsAppend, when non-nil, replaces Records on the hot path: it
	// appends holder's records about a neighbor to buf and returns the
	// extended slice. Wiring it to Store.AppendRecords lets the BFS reuse one
	// pooled buffer instead of allocating a fresh slice per hop.
	RecordsAppend func(holder, about AgentID, buf []Record) []Record
	// Norm is the normalizer for record trustworthiness.
	Norm Normalizer
	// MaxDepth bounds the recommendation-chain length (number of hops).
	MaxDepth int
	// Omega1 is the recommender threshold ω1: an intermediate node's hop
	// trustworthiness must reach it for the chain to continue.
	Omega1 float64
	// Omega2 is the trustee threshold ω2: the final hop's trustworthiness
	// must reach it for the node to count as a potential trustee.
	Omega2 float64
	// CandidateFilter, when non-nil, restricts which nodes may become
	// potential trustees (any node may still relay recommendations). The
	// simulations use it to limit candidacy to trustee-role agents, as in
	// the paper's 40%/40% role split.
	CandidateFilter func(AgentID) bool
	// CandidateMask is the dense equivalent of CandidateFilter, indexed by
	// agent slot; when non-nil it takes precedence, saving an indirect call
	// per hop on both search paths.
	CandidateMask []bool
}

// isCandidate applies the mask or filter.
func (s *Searcher) isCandidate(id AgentID) bool {
	if s.CandidateMask != nil {
		return s.CandidateMask[id]
	}
	return s.CandidateFilter == nil || s.CandidateFilter(id)
}

// SearchResult is the outcome of a transitivity search.
type SearchResult struct {
	// Candidates lists the potential trustees found, with the inferred
	// trustworthiness of each, sorted by decreasing trustworthiness.
	Candidates []Candidate
	// Inquired is the number of distinct nodes interrogated during the
	// search — the search-overhead measure of Fig. 12.
	Inquired int
}

// Best returns the top candidate.
func (r SearchResult) Best() (Candidate, bool) {
	if len(r.Candidates) == 0 {
		return Candidate{}, false
	}
	return r.Candidates[0], true
}

// searchState holds the scratch buffers of one Find call: the visited set,
// the per-depth frontiers, the candidate map, and a record buffer. States
// are pooled and reused across calls, so the BFS over neighbors stops
// allocating once the pool is warm.
type searchState struct {
	inquired map[AgentID]bool
	best     map[AgentID]float64
	frontier map[AgentID]float64
	next     map[AgentID]float64
	order    []AgentID
	recbuf   []Record
	perChar  []map[AgentID]float64
}

var searchPool = sync.Pool{New: func() any {
	return &searchState{
		inquired: make(map[AgentID]bool),
		best:     make(map[AgentID]float64),
		frontier: make(map[AgentID]float64),
		next:     make(map[AgentID]float64),
	}
}}

// acquireState returns a cleared search state from the pool.
func acquireState() *searchState {
	st := searchPool.Get().(*searchState)
	clear(st.inquired)
	clear(st.best)
	clear(st.frontier)
	clear(st.next)
	for _, m := range st.perChar {
		clear(m)
	}
	return st
}

// Pooled-retention bounds for searchState: recbuf holds fat Record values
// (embedded Task with two GC-scanned slice headers), so a state parked in
// the pool with a populated recbuf pins the last call's records — and
// perChar grows monotonically with the widest task ever searched. scrub
// zeroes what the pool may retain and drops outsized buffers entirely.
const (
	// maxPooledRecbuf caps the record-buffer capacity a pooled state keeps.
	maxPooledRecbuf = 4096
	// maxPooledChars caps how many per-characteristic maps a pooled state
	// keeps (tasks have a handful of characteristics).
	maxPooledChars = 8
)

// scrub clears everything a pooled state must not retain: record values
// are zeroed (the capacity survives, the pointers do not), an outsized
// recbuf is released to the GC, and perChar is emptied and bounded.
func (st *searchState) scrub() {
	clear(st.recbuf[:cap(st.recbuf)])
	st.recbuf = st.recbuf[:0]
	if cap(st.recbuf) > maxPooledRecbuf {
		st.recbuf = nil
	}
	if len(st.perChar) > maxPooledChars {
		st.perChar = st.perChar[:maxPooledChars:maxPooledChars]
	}
	for _, m := range st.perChar {
		clear(m)
	}
}

// releaseState scrubs and pools a search state.
func releaseState(st *searchState) {
	st.scrub()
	searchPool.Put(st)
}

// Find discovers potential trustees for the trustor's task under the given
// policy. Each social hop (u → v) is admissible only if u's experience
// records about v satisfy the policy for the task; admissible hops below
// ω1 stop relaying and hops below ω2 do not mint candidates. Path values
// propagate best-first per depth (exact for hop values ≥ 0.5, where eq. 7
// is monotone; a safe approximation below).
//
// Find is safe for concurrent use from multiple goroutines provided the
// Neighbors, Records/RecordsAppend, and CandidateFilter callbacks are; each
// call draws its own scratch state from a shared pool.
func (s *Searcher) Find(trustor AgentID, t task.Task, p Policy) SearchResult {
	st := acquireState()
	var res SearchResult
	switch p {
	case PolicyAggressive:
		res = s.findAggressive(trustor, t, st)
	default:
		res = s.findSerial(trustor, t, p, st)
	}
	releaseState(st)
	return res
}

// records fetches holder's experience about a neighbor, through the
// allocation-free path when available. The returned slice is valid only
// until the next call on the same state.
func (s *Searcher) records(holder, about AgentID, st *searchState) []Record {
	if s.RecordsAppend != nil {
		st.recbuf = s.RecordsAppend(holder, about, st.recbuf[:0])
		return st.recbuf
	}
	return s.Records(holder, about)
}

// hopTW evaluates one hop under traditional or conservative rules.
func (s *Searcher) hopTW(recs []Record, t task.Task, p Policy) (float64, bool) {
	if len(recs) == 0 {
		return 0, false
	}
	if p == PolicyTraditional {
		for _, r := range recs {
			if r.Task.Type() == t.Type() {
				return r.TW(s.Norm), true
			}
		}
		return 0, false
	}
	// Conservative: all characteristics must be covered by this hop's
	// records (eq. 8 with the inference of eqs. 9–10).
	return InferFromRecords(recs, t, s.Norm)
}

// findSerial runs the single-path policies (traditional, conservative).
func (s *Searcher) findSerial(trustor AgentID, t task.Task, p Policy, st *searchState) SearchResult {
	combine := CombinePair
	if p == PolicyTraditional {
		combine = func(a, b float64) float64 { return a * b }
	}
	frontier, next := st.frontier, st.next
	frontier[trustor] = 1
	for depth := 1; depth <= s.MaxDepth && len(frontier) > 0; depth++ {
		st.order = appendSortedIDs(st.order[:0], frontier)
		for _, u := range st.order {
			uval := frontier[u]
			for _, v := range s.Neighbors(u) {
				if v == trustor {
					continue
				}
				hop, ok := s.hopTW(s.records(u, v, st), t, p)
				if !ok {
					continue
				}
				st.inquired[v] = true
				val := combine(uval, hop)
				if s.passTrustee(p, hop) && s.isCandidate(v) {
					if cur, seen := st.best[v]; !seen || val > cur {
						st.best[v] = val
					}
				}
				if depth < s.MaxDepth && s.passRecommender(p, hop) {
					if cur, seen := next[v]; !seen || val > cur {
						next[v] = val
					}
				}
			}
		}
		frontier, next = next, frontier
		clear(next)
	}
	return result(st.best, st.inquired)
}

// findAggressive runs one per-characteristic propagation (eqs. 12–17):
// characteristic a_i may travel path B←C←E while a_j travels B←D←E, and a
// node becomes a candidate only when every characteristic of the task
// reaches it.
func (s *Searcher) findAggressive(trustor AgentID, t task.Task, st *searchState) SearchResult {
	chars := t.Characteristics()
	for len(st.perChar) < len(chars) {
		st.perChar = append(st.perChar, make(map[AgentID]float64))
	}
	for ci, c := range chars {
		best := st.perChar[ci]
		frontier, next := st.frontier, st.next
		clear(frontier)
		clear(next)
		frontier[trustor] = 1
		for depth := 1; depth <= s.MaxDepth && len(frontier) > 0; depth++ {
			st.order = appendSortedIDs(st.order[:0], frontier)
			for _, u := range st.order {
				uval := frontier[u]
				for _, v := range s.Neighbors(u) {
					if v == trustor {
						continue
					}
					hop, ok := CharTW(s.records(u, v, st), c, s.Norm)
					if !ok {
						continue
					}
					st.inquired[v] = true
					val := CombinePair(uval, hop)
					if s.isCandidate(v) {
						if cur, seen := best[v]; !seen || val > cur {
							best[v] = val
						}
					}
					if depth < s.MaxDepth && hop >= s.Omega1 {
						if cur, seen := next[v]; !seen || val > cur {
							next[v] = val
						}
					}
				}
			}
			frontier, next = next, frontier
			clear(next)
		}
	}
	// Combine per-characteristic estimates with the task weights (eq. 17),
	// requiring full coverage (eq. 12). As in eq. 11, the ω2 threshold
	// applies to the task-level trustworthiness, not to each characteristic
	// in isolation.
	totals := st.best
	clear(totals)
	for v := range st.perChar[0] {
		tw, ok := 0.0, true
		for ci, c := range chars {
			val, seen := st.perChar[ci][v]
			if !seen {
				ok = false
				break
			}
			tw += t.Weight(c) * val
		}
		if ok && tw >= s.Omega2 {
			totals[v] = tw
		}
	}
	return result(totals, st.inquired)
}

// passRecommender applies ω1 per policy; the traditional baseline transfers
// through any positive trustworthiness, "without any restriction".
func (s *Searcher) passRecommender(p Policy, hop float64) bool {
	if p == PolicyTraditional {
		return hop > 0
	}
	return hop >= s.Omega1
}

// passTrustee applies ω2 per policy.
func (s *Searcher) passTrustee(p Policy, hop float64) bool {
	if p == PolicyTraditional {
		return hop > 0
	}
	return hop >= s.Omega2
}

// appendSortedIDs appends the map's keys to ids in ascending order, reusing
// the slice's capacity.
func appendSortedIDs(ids []AgentID, m map[AgentID]float64) []AgentID {
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

func result(best map[AgentID]float64, inquired map[AgentID]bool) SearchResult {
	cands := make([]Candidate, 0, len(best))
	for id, tw := range best {
		cands = append(cands, Candidate{ID: id, TW: tw})
	}
	SortCandidates(cands)
	return SearchResult{Candidates: cands, Inquired: len(inquired)}
}
