package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"siot/internal/rng"
	"siot/internal/task"
)

// seedTestTask builds a small deterministic task for a (trustee, type)
// key: one or two characteristics derived from the type.
func seedTestTask(typ int) task.Task {
	c1 := task.Characteristic(typ % 8)
	if typ%3 == 0 {
		return task.Uniform(task.Type(typ), c1)
	}
	return task.Uniform(task.Type(typ), c1, task.Characteristic((typ+3)%8))
}

// randomSeedBatch draws a strictly (Trustee, Task.Type())-sorted batch of
// random size and content.
func randomSeedBatch(r *rand.Rand) []SeedRecord {
	var batch []SeedRecord
	trustee := AgentID(0)
	for len(batch) < 2+r.IntN(60) {
		trustee += AgentID(1 + r.IntN(4))
		typ := 0
		for range 1 + r.IntN(3) {
			typ += 1 + r.IntN(5)
			s := r.Float64()
			batch = append(batch, SeedRecord{
				Trustee: trustee,
				Task:    seedTestTask(typ),
				Exp:     Expectation{S: s, G: s, D: 1 - s, C: r.Float64() * 0.2},
			})
		}
	}
	return batch
}

// saveBytes snapshots a store for byte-level comparison.
func saveBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeedSortedMatchesSeedLoop is the bulk path's equivalence property:
// on random sorted batches, SeedSorted produces byte-identical store state
// to a per-record Seed loop — into an empty store and into one already
// holding records (the merge path, where seeded entries must replace
// same-key records exactly as Seed does).
func TestSeedSortedMatchesSeedLoop(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := rng.Split(99, "seed-sorted-prop", trial)
		batch := randomSeedBatch(r)
		prefill := func(s *Store) {
			if trial%2 == 0 {
				return // empty-store fast path
			}
			// Overlap some keys with the batch and add some fresh ones.
			for i := 0; i < len(batch); i += 2 {
				s.Observe(batch[i].Trustee, batch[i].Task, Outcome{Success: true, Gain: 0.5, Cost: 0.1}, PerfectEnv())
			}
			s.Observe(batch[0].Trustee+1000, seedTestTask(3), Outcome{Damage: 0.2, Cost: 0.1}, PerfectEnv())
		}
		bulk := NewStore(1, DefaultUpdateConfig())
		prefill(bulk)
		if err := bulk.SeedSorted(batch); err != nil {
			t.Fatalf("trial %d: sorted batch rejected: %v", trial, err)
		}
		loop := NewStore(1, DefaultUpdateConfig())
		prefill(loop)
		for _, rec := range batch {
			loop.Seed(rec.Trustee, rec.Task, rec.Exp)
		}
		if got, want := saveBytes(t, bulk), saveBytes(t, loop); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: bulk store differs from Seed loop\nbulk:\n%s\nloop:\n%s", trial, got, want)
		}
	}
}

// TestSeedSortedRejectsBadOrder pins the validation: unsorted batches and
// duplicate (trustee, type) keys are rejected before anything is applied.
func TestSeedSortedRejectsBadOrder(t *testing.T) {
	rec := func(trustee AgentID, typ int) SeedRecord {
		return SeedRecord{Trustee: trustee, Task: seedTestTask(typ), Exp: Expectation{S: 0.5, G: 0.5, D: 0.5}}
	}
	cases := map[string][]SeedRecord{
		"trustee out of order":  {rec(5, 1), rec(3, 1)},
		"type out of order":     {rec(3, 4), rec(3, 2)},
		"duplicate key":         {rec(3, 2), rec(3, 2)},
		"duplicate after valid": {rec(1, 1), rec(2, 1), rec(2, 1)},
	}
	for name, batch := range cases {
		s := NewStore(1, DefaultUpdateConfig())
		s.Seed(9, seedTestTask(1), Expectation{S: 0.9, G: 0.9, D: 0.1})
		before := saveBytes(t, s)
		if err := s.SeedSorted(batch); err == nil {
			t.Errorf("%s: batch accepted", name)
		}
		if !bytes.Equal(before, saveBytes(t, s)) {
			t.Errorf("%s: rejected batch mutated the store", name)
		}
	}
	// Boundary cases: empty and singleton batches are trivially sorted.
	s := NewStore(1, DefaultUpdateConfig())
	if err := s.SeedSorted(nil); err != nil {
		t.Errorf("empty batch rejected: %v", err)
	}
	if err := s.SeedSorted([]SeedRecord{rec(2, 2)}); err != nil {
		t.Errorf("singleton batch rejected: %v", err)
	}
	if n := s.NumRecords(); n != 1 {
		t.Errorf("singleton batch installed %d records", n)
	}
}

// TestSeedSortedObserveAfter guards the arena hand-off: the per-trustee
// record groups share one backing array, so growing one group through
// Observe must not clobber its neighbor.
func TestSeedSortedObserveAfter(t *testing.T) {
	s := NewStore(1, DefaultUpdateConfig())
	batch := []SeedRecord{
		{Trustee: 1, Task: seedTestTask(1), Exp: Expectation{S: 0.4, G: 0.4, D: 0.6}},
		{Trustee: 2, Task: seedTestTask(2), Exp: Expectation{S: 0.8, G: 0.8, D: 0.2}},
	}
	if err := s.SeedSorted(batch); err != nil {
		t.Fatal(err)
	}
	// Insert a record with a smaller type for trustee 1: forces an insert
	// into the full-capacity group slice.
	s.Observe(1, seedTestTask(0), Outcome{Success: true, Gain: 1}, PerfectEnv())
	if got, ok := s.Record(2, batch[1].Task.Type()); !ok || got.Exp != batch[1].Exp {
		t.Fatalf("trustee 2's seeded record corrupted: %+v ok=%v", got, ok)
	}
}

// FuzzSeedSorted feeds adversarial batches to SeedSorted: arbitrary
// (trustee, type, value) triples decoded from raw bytes, unsorted as often
// as not. The invariants: acceptance iff the batch is strictly sorted,
// accepted batches match a per-record Seed loop byte for byte, and
// rejected batches leave the store untouched.
func FuzzSeedSorted(f *testing.F) {
	f.Add([]byte{1, 1, 100, 2, 2, 200})
	f.Add([]byte{5, 4, 10, 3, 1, 10})        // trustee out of order
	f.Add([]byte{2, 2, 0, 2, 2, 255})        // duplicate key
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 1, 3}) // mixed
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var batch []SeedRecord
		for i := 0; i+2 < len(data); i += 3 {
			s := float64(data[i+2]) / 255
			batch = append(batch, SeedRecord{
				Trustee: AgentID(data[i]),
				Task:    seedTestTask(int(data[i+1])),
				Exp:     Expectation{S: s, G: s, D: 1 - s},
			})
		}
		sorted := true
		for i := 1; i < len(batch); i++ {
			if compareSeedRecords(batch[i-1], batch[i]) >= 0 {
				sorted = false
				break
			}
		}
		bulk := NewStore(7, DefaultUpdateConfig())
		err := bulk.SeedSorted(batch)
		if (err == nil) != sorted {
			t.Fatalf("sorted=%v but err=%v", sorted, err)
		}
		if err != nil {
			if bulk.NumRecords() != 0 {
				t.Fatalf("rejected batch installed %d records", bulk.NumRecords())
			}
			return
		}
		loop := NewStore(7, DefaultUpdateConfig())
		for _, rec := range batch {
			loop.Seed(rec.Trustee, rec.Task, rec.Exp)
		}
		if got, want := saveBytes(t, bulk), saveBytes(t, loop); !bytes.Equal(got, want) {
			t.Fatalf("bulk store differs from Seed loop\nbulk:\n%s\nloop:\n%s", got, want)
		}
	})
}
