package core

import (
	"math"
	"testing"
	"testing/quick"

	"siot/internal/task"
)

// identityNorm maps profits in [0,1] straight to trustworthiness, so test
// fixtures can dial in exact TW values via Expectation{S: 1, G: tw}.
var identityNorm = LinearNormalizer{ProfitLo: 0, ProfitHi: 1}

// expFor returns an expectation whose TW under identityNorm equals tw.
func expFor(tw float64) Expectation { return Expectation{S: 1, G: tw} }

func TestCombinePairEq7(t *testing.T) {
	a, b := 0.9, 0.8
	want := a*b + (1-a)*(1-b)
	if got := CombinePair(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CombinePair = %v, want %v", got, want)
	}
}

func TestCombinePairIdentityAndSymmetry(t *testing.T) {
	if CombinePair(1, 0.3) != 0.3 {
		t.Fatal("1 is not the identity")
	}
	if CombinePair(0.2, 0.7) != CombinePair(0.7, 0.2) {
		t.Fatal("not symmetric")
	}
	// The mistrust-product effect the paper highlights: two distrusted hops
	// yield high combined trust (both "probably wrong" cancel).
	if got := CombinePair(0.1, 0.1); math.Abs(got-0.82) > 1e-12 {
		t.Fatalf("CombinePair(0.1,0.1) = %v, want 0.82", got)
	}
}

func TestCombineSerial(t *testing.T) {
	if CombineSerial() != 1 {
		t.Fatal("empty chain != 1")
	}
	if CombineSerial(0.7) != 0.7 {
		t.Fatal("single hop wrong")
	}
	want := CombinePair(CombinePair(0.9, 0.8), 0.7)
	if got := CombineSerial(0.9, 0.8, 0.7); math.Abs(got-want) > 1e-12 {
		t.Fatalf("serial = %v, want %v", got, want)
	}
}

func TestProductSerial(t *testing.T) {
	if ProductSerial() != 1 {
		t.Fatal("empty product != 1")
	}
	if got := ProductSerial(0.5, 0.5); got != 0.25 {
		t.Fatalf("product = %v", got)
	}
}

func TestEq7DominatesEq5AboveHalf(t *testing.T) {
	// For hops above 0.5 the eq. 7 combination always exceeds the plain
	// product — the neglected term is strictly positive.
	for _, pair := range [][2]float64{{0.9, 0.9}, {0.6, 0.8}, {0.51, 0.99}} {
		e7 := CombinePair(pair[0], pair[1])
		e5 := pair[0] * pair[1]
		if e7 <= e5 {
			t.Fatalf("eq7(%v,%v)=%v not above product %v", pair[0], pair[1], e7, e5)
		}
	}
}

func TestTransitSameType(t *testing.T) {
	if _, ok := TransitSameType(0.6, 0.9, 0.7, 0.7); ok {
		t.Fatal("recommender below ω1 transited")
	}
	if _, ok := TransitSameType(0.9, 0.6, 0.7, 0.7); ok {
		t.Fatal("trustee below ω2 transited")
	}
	tw, ok := TransitSameType(0.9, 0.8, 0.7, 0.7)
	if !ok || math.Abs(tw-CombinePair(0.9, 0.8)) > 1e-12 {
		t.Fatalf("transit = %v, %v", tw, ok)
	}
}

func TestCharTW(t *testing.T) {
	recs := []Record{
		{Task: task.Uniform(1, task.CharGPS), Exp: expFor(1)},                 // weight 1
		{Task: task.Uniform(2, task.CharGPS, task.CharImage), Exp: expFor(0)}, // weight 0.5
	}
	got, ok := CharTW(recs, task.CharGPS, identityNorm)
	if !ok {
		t.Fatal("CharTW failed")
	}
	want := (1.0*1 + 0.5*0) / 1.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CharTW = %v, want %v", got, want)
	}
	if _, ok := CharTW(recs, task.CharAudio, identityNorm); ok {
		t.Fatal("uncovered characteristic inferred")
	}
}

func TestInferFromRecordsCoverage(t *testing.T) {
	recs := []Record{{Task: task.Uniform(1, task.CharGPS), Exp: expFor(0.8)}}
	if _, ok := InferFromRecords(recs, task.Uniform(9, task.CharGPS, task.CharImage), identityNorm); ok {
		t.Fatal("partial coverage inferred")
	}
	tw, ok := InferFromRecords(recs, task.Uniform(9, task.CharGPS), identityNorm)
	if !ok || math.Abs(tw-0.8) > 1e-12 {
		t.Fatalf("inference = %v, %v", tw, ok)
	}
}

// fakeNet is an in-memory trust network for searcher tests.
type fakeNet struct {
	adj  map[AgentID][]AgentID
	recs map[[2]AgentID][]Record
}

func newFakeNet() *fakeNet {
	return &fakeNet{adj: map[AgentID][]AgentID{}, recs: map[[2]AgentID][]Record{}}
}

// edge adds an undirected social edge.
func (f *fakeNet) edge(u, v AgentID) {
	f.adj[u] = append(f.adj[u], v)
	f.adj[v] = append(f.adj[v], u)
}

// record notes that holder has experience of task tk with trustee at tw.
func (f *fakeNet) record(holder, about AgentID, tk task.Task, tw float64) {
	key := [2]AgentID{holder, about}
	f.recs[key] = append(f.recs[key], Record{Task: tk, Exp: expFor(tw), Count: 1})
}

func (f *fakeNet) searcher(depth int, w1, w2 float64) *Searcher {
	return &Searcher{
		Neighbors: func(a AgentID) []AgentID { return f.adj[a] },
		Records:   func(h, a AgentID) []Record { return f.recs[[2]AgentID{h, a}] },
		Norm:      identityNorm,
		MaxDepth:  depth,
		Omega1:    w1,
		Omega2:    w2,
	}
}

const (
	nodeA AgentID = iota
	nodeB
	nodeC
	nodeD
	nodeE
)

func TestTraditionalChain(t *testing.T) {
	// A-B-C, records of type 1 all along: C found at product TW.
	f := newFakeNet()
	f.edge(nodeA, nodeB)
	f.edge(nodeB, nodeC)
	t1 := task.Uniform(1, task.CharGPS)
	f.record(nodeA, nodeB, t1, 0.9)
	f.record(nodeB, nodeC, t1, 0.8)

	res := f.searcher(3, 0.7, 0.7).Find(nodeA, t1, PolicyTraditional)
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %v", res.Candidates)
	}
	twByID := map[AgentID]float64{}
	for _, c := range res.Candidates {
		twByID[c.ID] = c.TW
	}
	if math.Abs(twByID[nodeB]-0.9) > 1e-12 {
		t.Fatalf("TW(B) = %v", twByID[nodeB])
	}
	if math.Abs(twByID[nodeC]-0.72) > 1e-12 {
		t.Fatalf("TW(C) = %v, want 0.9*0.8", twByID[nodeC])
	}
}

func TestTraditionalRequiresExactType(t *testing.T) {
	// B's record about C is a different task type: transfer blocked even
	// though the characteristics match.
	f := newFakeNet()
	f.edge(nodeA, nodeB)
	f.edge(nodeB, nodeC)
	t1 := task.Uniform(1, task.CharGPS)
	t2 := task.Uniform(2, task.CharGPS)
	f.record(nodeA, nodeB, t1, 0.9)
	f.record(nodeB, nodeC, t2, 0.9)

	res := f.searcher(3, 0, 0).Find(nodeA, t1, PolicyTraditional)
	for _, c := range res.Candidates {
		if c.ID == nodeC {
			t.Fatal("traditional transfer crossed task types")
		}
	}
	// Conservative inference crosses it, because the characteristics match.
	res = f.searcher(3, 0.5, 0.5).Find(nodeA, t1, PolicyConservative)
	found := false
	for _, c := range res.Candidates {
		if c.ID == nodeC {
			found = true
			want := CombinePair(0.9, 0.9)
			if math.Abs(c.TW-want) > 1e-12 {
				t.Fatalf("TW(C) = %v, want %v", c.TW, want)
			}
		}
	}
	if !found {
		t.Fatal("conservative inference failed to reach C")
	}
}

func TestConservativeRequiresAllCharacteristics(t *testing.T) {
	// Hop records cover only GPS; a GPS+image task must not transfer.
	f := newFakeNet()
	f.edge(nodeA, nodeB)
	f.record(nodeA, nodeB, task.Uniform(1, task.CharGPS), 0.9)
	probe := task.Uniform(5, task.CharGPS, task.CharImage)

	res := f.searcher(2, 0.5, 0.5).Find(nodeA, probe, PolicyConservative)
	if len(res.Candidates) != 0 {
		t.Fatalf("conservative found %v without coverage", res.Candidates)
	}
}

func TestConservativeThresholdBlocksWeakRecommender(t *testing.T) {
	f := newFakeNet()
	f.edge(nodeA, nodeB)
	f.edge(nodeB, nodeC)
	t1 := task.Uniform(1, task.CharGPS)
	f.record(nodeA, nodeB, t1, 0.6) // below ω1 = 0.7
	f.record(nodeB, nodeC, t1, 0.95)

	res := f.searcher(3, 0.7, 0.7).Find(nodeA, t1, PolicyConservative)
	for _, c := range res.Candidates {
		if c.ID == nodeC {
			t.Fatal("weak recommender relayed trust")
		}
	}
	// B itself is also below ω2=0.7, so no candidates at all.
	if len(res.Candidates) != 0 {
		t.Fatalf("candidates = %v", res.Candidates)
	}
}

// diamond builds Fig. 5(b): B trusts C and C trusts E on task τ (char a1);
// B trusts D and D trusts E on task τ′ (char a2). The probe task τ″ needs
// both characteristics.
func diamond() (*fakeNet, task.Task) {
	f := newFakeNet()
	f.edge(nodeB, nodeC)
	f.edge(nodeB, nodeD)
	f.edge(nodeC, nodeE)
	f.edge(nodeD, nodeE)
	tau := task.Uniform(1, task.CharGPS)    // characteristic a1
	tauP := task.Uniform(2, task.CharImage) // characteristic a2
	f.record(nodeB, nodeC, tau, 0.9)
	f.record(nodeC, nodeE, tau, 0.8)
	f.record(nodeB, nodeD, tauP, 0.85)
	f.record(nodeD, nodeE, tauP, 0.75)
	probe := task.Uniform(3, task.CharGPS, task.CharImage) // τ″
	return f, probe
}

func TestAggressiveAssemblesAcrossPaths(t *testing.T) {
	f, probe := diamond()
	s := f.searcher(3, 0.7, 0.7)

	// Conservative cannot reach E: no single path covers both characteristics.
	res := s.Find(nodeB, probe, PolicyConservative)
	for _, c := range res.Candidates {
		if c.ID == nodeE {
			t.Fatal("conservative crossed the diamond")
		}
	}

	// Aggressive assembles a1 via C and a2 via D (eq. 17).
	res = s.Find(nodeB, probe, PolicyAggressive)
	var got *Candidate
	for i := range res.Candidates {
		if res.Candidates[i].ID == nodeE {
			got = &res.Candidates[i]
		}
	}
	if got == nil {
		t.Fatalf("aggressive did not find E: %v", res.Candidates)
	}
	want := 0.5*CombinePair(0.9, 0.8) + 0.5*CombinePair(0.85, 0.75)
	if math.Abs(got.TW-want) > 1e-12 {
		t.Fatalf("TW(E) = %v, want %v", got.TW, want)
	}
}

func TestAggressiveRequiresFullCoverage(t *testing.T) {
	f, probe := diamond()
	// Remove the a2 leg: D has no record about E anymore.
	delete(f.recs, [2]AgentID{nodeD, nodeE})
	res := f.searcher(3, 0.7, 0.7).Find(nodeB, probe, PolicyAggressive)
	for _, c := range res.Candidates {
		if c.ID == nodeE {
			t.Fatal("aggressive minted candidate with uncovered characteristic")
		}
	}
}

func TestInquiredCounts(t *testing.T) {
	f, probe := diamond()
	res := f.searcher(3, 0.7, 0.7).Find(nodeB, probe, PolicyAggressive)
	// C, D (relays with relevant records) and E are interrogated.
	if res.Inquired != 3 {
		t.Fatalf("inquired = %d, want 3", res.Inquired)
	}
	// Traditional only contacts nodes with exact-type records: none for
	// the probe type.
	res = f.searcher(3, 0, 0).Find(nodeB, probe, PolicyTraditional)
	if res.Inquired != 0 {
		t.Fatalf("traditional inquired = %d, want 0", res.Inquired)
	}
}

func TestMaxDepthLimits(t *testing.T) {
	f := newFakeNet()
	f.edge(nodeA, nodeB)
	f.edge(nodeB, nodeC)
	t1 := task.Uniform(1, task.CharGPS)
	f.record(nodeA, nodeB, t1, 0.9)
	f.record(nodeB, nodeC, t1, 0.9)

	res := f.searcher(1, 0, 0).Find(nodeA, t1, PolicyTraditional)
	if len(res.Candidates) != 1 || res.Candidates[0].ID != nodeB {
		t.Fatalf("depth-1 candidates = %v", res.Candidates)
	}
}

func TestSearchResultBest(t *testing.T) {
	r := SearchResult{}
	if _, ok := r.Best(); ok {
		t.Fatal("Best of empty result")
	}
	r = SearchResult{Candidates: []Candidate{{ID: 1, TW: 0.9}, {ID: 2, TW: 0.5}}}
	best, ok := r.Best()
	if !ok || best.ID != 1 {
		t.Fatalf("Best = %v", best)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyTraditional.String() != "traditional" ||
		PolicyConservative.String() != "conservative" ||
		PolicyAggressive.String() != "aggressive" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestCycleDoesNotLoopForever(t *testing.T) {
	// A triangle with records everywhere must terminate and not revisit the
	// trustor.
	f := newFakeNet()
	f.edge(nodeA, nodeB)
	f.edge(nodeB, nodeC)
	f.edge(nodeC, nodeA)
	t1 := task.Uniform(1, task.CharGPS)
	for _, pair := range [][2]AgentID{{nodeA, nodeB}, {nodeB, nodeC}, {nodeC, nodeA}, {nodeB, nodeA}, {nodeC, nodeB}, {nodeA, nodeC}} {
		f.record(pair[0], pair[1], t1, 0.9)
	}
	res := f.searcher(6, 0.5, 0.5).Find(nodeA, t1, PolicyConservative)
	for _, c := range res.Candidates {
		if c.ID == nodeA {
			t.Fatal("trustor is its own candidate")
		}
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %v", res.Candidates)
	}
}

func TestQuickCombinePairBounds(t *testing.T) {
	// CombinePair maps [0,1]² into [0,1].
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 1)
		y := math.Mod(math.Abs(b), 1)
		v := CombinePair(x, y)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCombinePairMonotoneAboveHalf(t *testing.T) {
	// For b > 0.5 fixed, CombinePair(·, b) is increasing — the property the
	// best-first propagation relies on when ω ≥ 0.5.
	f := func(a1, a2, b float64) bool {
		x1 := math.Mod(math.Abs(a1), 1)
		x2 := math.Mod(math.Abs(a2), 1)
		y := 0.5 + math.Mod(math.Abs(b), 0.5)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return CombinePair(x1, y) <= CombinePair(x2, y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
