package core

import "sync/atomic"

// Store-lock accounting for the lock-free compute-phase contract: the
// engine's round compute phase must read only frozen snapshots, never live
// stores. Every Store lock acquisition (record shards, usage lock, bulk
// seeding) ticks a counter when profiling is armed, so a test can assert a
// code path takes zero store locks. When disarmed — always, outside such a
// test — the tick is a single relaxed atomic load and a predicted-not-taken
// branch, cheap enough to leave in production paths.
var (
	storeLockCounting atomic.Bool
	storeLockCount    atomic.Int64
)

// storeLockTick is called immediately before every Store mutex acquisition.
func storeLockTick() {
	if storeLockCounting.Load() {
		storeLockCount.Add(1)
	}
}

// CountStoreLocks runs fn and reports how many Store lock acquisitions
// (shard read or write locks and usage locks, across all stores) happened
// while it ran. Profiling is process-global and not reentrant: concurrent
// store use outside fn is counted too, so callers must quiesce unrelated
// store traffic first. Intended for tests pinning lock-free phases.
func CountStoreLocks(fn func()) int64 {
	storeLockCount.Store(0)
	storeLockCounting.Store(true)
	defer storeLockCounting.Store(false)
	fn()
	return storeLockCount.Load()
}
