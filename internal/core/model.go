package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"siot/internal/task"
)

// This file is the trust-model zoo: the paper's three §4.3 policies are one
// point in the design space the related work maps out (Hellinger-based
// matrix-factorization trust, feature-weighted trust quantification, ...).
// TrustModel abstracts the per-hop evaluation those policies share, so an
// alternative model plugs into the same frozen-view search, EdgeMemo
// pre-pass, sharded sweeps, serving layer, and attack suite — with the three
// Policy constants implemented as adapters whose behavior is bit-identical
// to the pre-interface dispatch.

// CombineRule selects how path values accumulate along a recommendation
// chain in the generic model search.
type CombineRule uint8

const (
	// CombineProduct is the plain product of eq. 5 (the traditional
	// baseline's accumulation).
	CombineProduct CombineRule = iota
	// CombineMistrust is eq. 7's CombinePair: a·b + (1−a)·(1−b), crediting
	// the case where a distrusted intermediate misjudges.
	CombineMistrust
)

// String names the rule for descriptors and diagnostics.
func (r CombineRule) String() string {
	if r == CombineProduct {
		return "product"
	}
	return "mistrust"
}

// ModelSpec is a model's combine/threshold descriptor: everything the
// generic search needs to drive the model besides its per-hop value.
type ModelSpec struct {
	// Combine selects the path-accumulation rule.
	Combine CombineRule
	// OmegaGated applies the searcher's ω1/ω2 thresholds to hop values
	// (relay requires hop ≥ ω1, candidacy hop ≥ ω2). When false any
	// positive hop relays and mints — the traditional baseline's
	// "without any restriction" rule.
	OmegaGated bool
	// PerCharacteristic marks models evaluated one characteristic at a
	// time along independent paths (the aggressive policy, eqs. 12–17).
	// Only the aggressive adapter sets it; the generic single-path search
	// does not support it.
	PerCharacteristic bool
}

// HopContext carries the frozen-epoch resolution state a hop evaluation
// needs: the catalog snapshot the records' task refs resolve against and
// the trustworthiness normalizer.
type HopContext struct {
	Tasks []task.Task
	Norm  Normalizer
}

// TrustModel scores one hop of trust evidence: given the compact experience
// records a holder keeps about a neighbor, produce the hop trustworthiness
// for a task, or ok=false when the evidence does not admit the hop. A model
// must be pure and safe for concurrent use; HopTW values must stay in
// [0, 1]. Implementations that also satisfy EpochTrainable are fitted once
// per frozen epoch and scored through the trained EdgeScorer instead.
type TrustModel interface {
	// Name is the model's registry key, stable across releases — it feeds
	// CLI flags, journal headers, and the deterministic outcome-stream
	// labels of the sweeps, so renaming a model re-keys its draws.
	Name() string
	// Spec describes how the search drives the model.
	Spec() ModelSpec
	// HopTW evaluates one hop from the edge's records.
	HopTW(ctx HopContext, recs []CompactRecord, t task.Task) (float64, bool)
}

// EdgeScorer scores directed view edges for a trained model. Scorers are
// immutable after training and safe for concurrent use.
type EdgeScorer interface {
	// EdgeTW scores directed edge e (an index into the view's CSR edge
	// array) for task t; ok=false blocks the hop.
	EdgeTW(view *TrustView, e int32, t task.Task) (float64, bool)
}

// EpochTrainable marks models that fit parameters against a frozen epoch
// (matrix factorizations, learned weightings). TrainEpoch must be
// deterministic for a given view at every worker count — the trained
// scorer's outputs must be bit-identical whether training ran on 1 or 8
// goroutines. EdgeMemo.RequireModel trains once per epoch and caches the
// scorer; the model's plain HopTW remains the untrained evidence-local
// fallback for paths with no epoch to train on.
type EpochTrainable interface {
	TrustModel
	TrainEpoch(view *TrustView, norm Normalizer, workers int) EdgeScorer
}

// policyModel adapts one of the paper's §4.3 policies to the TrustModel
// interface. The adapters exist so every dispatch site (sweeps, serving,
// experiments) can speak TrustModel while the three policies keep their
// exact legacy search paths: FindViewModelInto routes adapters back to
// FindViewInto, and EdgeMemo.RequireModel routes them to Require, so the
// refactor is invisible in every golden byte.
type policyModel struct{ p Policy }

func (pm policyModel) Name() string { return pm.p.String() }

func (pm policyModel) Spec() ModelSpec {
	switch pm.p {
	case PolicyTraditional:
		return ModelSpec{Combine: CombineProduct}
	case PolicyConservative:
		return ModelSpec{Combine: CombineMistrust, OmegaGated: true}
	default:
		return ModelSpec{Combine: CombineMistrust, OmegaGated: true, PerCharacteristic: true}
	}
}

// HopTW mirrors Searcher.hopTWCompact for the single-path policies. The
// aggressive policy is searched per characteristic, not through this
// single-hop lens; as a hop value it uses the full-coverage inference of
// eq. 4 (the task-weighted combination of its per-characteristic values
// over one edge's records).
func (pm policyModel) HopTW(ctx HopContext, recs []CompactRecord, t task.Task) (float64, bool) {
	if len(recs) == 0 {
		return 0, false
	}
	if pm.p == PolicyTraditional {
		typ := t.Type()
		for _, r := range recs {
			if ctx.Tasks[r.Ref].Type() == typ {
				return r.TW(ctx.Norm), true
			}
		}
		return 0, false
	}
	return InferFromCompact(ctx.Tasks, recs, t, ctx.Norm)
}

// policyModels holds the three adapters as pre-allocated interface values,
// so Policy.Model never allocates on a hot path.
var policyModels = [3]TrustModel{
	policyModel{PolicyTraditional},
	policyModel{PolicyConservative},
	policyModel{PolicyAggressive},
}

// Model returns the TrustModel adapter for the policy. Adapter names equal
// Policy.String, so model-keyed rng labels and registry lookups coincide
// with the historical policy-keyed ones.
func (p Policy) Model() TrustModel {
	return policyModels[p]
}

// modelPolicy recovers the Policy behind an adapter, false for every other
// model. Dispatch sites use it to route adapters onto the legacy
// policy-specific paths.
func modelPolicy(m TrustModel) (Policy, bool) {
	if pm, ok := m.(policyModel); ok {
		return pm.p, true
	}
	return 0, false
}

// modelRegistry maps registered model names to instances. Registration
// happens in init functions; lookups after init are read-only.
var modelRegistry = struct {
	mu     sync.RWMutex
	byName map[string]TrustModel
}{byName: make(map[string]TrustModel)}

// RegisterModel adds a model to the registry under m.Name. It panics on an
// empty or duplicate name: the name keys journal headers and deterministic
// rng labels, so a collision would silently cross-wire two models.
func RegisterModel(m TrustModel) {
	name := m.Name()
	if name == "" {
		panic("core: RegisterModel with an empty name")
	}
	modelRegistry.mu.Lock()
	defer modelRegistry.mu.Unlock()
	if _, dup := modelRegistry.byName[name]; dup {
		panic(fmt.Sprintf("core: RegisterModel duplicate name %q", name))
	}
	modelRegistry.byName[name] = m
}

// ParseModel resolves a registered model name — the superset of ParsePolicy:
// the three policy names resolve to their adapters, and every additional
// registered model resolves by its name.
func ParseModel(s string) (TrustModel, error) {
	modelRegistry.mu.RLock()
	m, ok := modelRegistry.byName[s]
	modelRegistry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown trust model %q (want one of %v)", s, ModelNames())
	}
	return m, nil
}

// ModelNames returns the sorted names of every registered model.
func ModelNames() []string {
	modelRegistry.mu.RLock()
	defer modelRegistry.mu.RUnlock()
	names := make([]string, 0, len(modelRegistry.byName))
	for name := range modelRegistry.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsPolicyModel reports whether m is one of the three paper-policy
// adapters (callers that must persist a Policy-compatible header or follow
// a legacy code path key off this).
func IsPolicyModel(m TrustModel) bool {
	_, ok := modelPolicy(m)
	return ok
}

func init() {
	for _, pm := range policyModels {
		RegisterModel(pm)
	}
}

// FindModel is Find dispatching through a TrustModel. The three policy
// adapters run the legacy map-based live-store search; every other model
// reads trained or evidence-local state that only exists on a frozen view,
// so non-adapter models must be searched with FindViewModel and panic here.
func (s *Searcher) FindModel(trustor AgentID, t task.Task, m TrustModel) SearchResult {
	if p, ok := modelPolicy(m); ok {
		return s.Find(trustor, t, p)
	}
	panic(fmt.Sprintf("core: model %q requires a frozen view (use FindViewModel)", m.Name()))
}

// FindViewModel is FindView dispatching through a TrustModel.
func (s *Searcher) FindViewModel(view *TrustView, memo *EdgeMemo, trustor AgentID, t task.Task, m TrustModel) SearchResult {
	var res SearchResult
	s.FindViewModelInto(&res, view, memo, trustor, t, m)
	return res
}

// FindViewModelInto is FindViewModel writing into res, reusing its
// capacity. Policy adapters take the exact legacy FindViewInto path
// (bit-identical to pre-interface dispatch); other models run the generic
// single-path search driven by their ModelSpec. A PerCharacteristic model
// other than the aggressive adapter is not supported by the generic search
// and panics.
func (s *Searcher) FindViewModelInto(res *SearchResult, view *TrustView, memo *EdgeMemo, trustor AgentID, t task.Task, m TrustModel) {
	if p, ok := modelPolicy(m); ok {
		s.FindViewInto(res, view, memo, trustor, t, p)
		return
	}
	spec := m.Spec()
	if spec.PerCharacteristic {
		panic(fmt.Sprintf("core: per-characteristic model %q is not supported by the generic search", m.Name()))
	}
	st := acquireDense(view.NumAgents())
	s.findModelView(res, view, memo, trustor, t, m, spec, st)
	densePool.Put(st)
}

// modelHopSource resolves, once per search, how hops are evaluated for a
// model over a view: the memoized per-edge table when RequireModel built
// one for this exact task, else the trained scorer for EpochTrainable
// models, else the model's evidence-local HopTW.
type modelHopSource struct {
	vals   []float64
	scorer EdgeScorer
	model  TrustModel
	ctx    HopContext
}

func resolveModelHops(view *TrustView, memo *EdgeMemo, m TrustModel, t task.Task, norm Normalizer) modelHopSource {
	src := modelHopSource{model: m, ctx: HopContext{Tasks: view.tasks, Norm: norm}}
	if memo != nil {
		src.vals = memo.modelTable(m, t)
		if src.vals != nil {
			return src
		}
		src.scorer = memo.modelScorer[m.Name()]
	}
	if src.scorer == nil {
		if _, trainable := m.(EpochTrainable); trainable {
			panic(fmt.Sprintf("core: model %q is epoch-trainable but untrained (call EdgeMemo.RequireModel first)", m.Name()))
		}
	}
	return src
}

func (src *modelHopSource) hop(view *TrustView, e int32, t task.Task) (float64, bool) {
	if src.vals != nil {
		v := src.vals[e]
		return v, !math.IsNaN(v)
	}
	if src.scorer != nil {
		return src.scorer.EdgeTW(view, e, t)
	}
	return src.model.HopTW(src.ctx, view.EdgeRecords(e), t)
}

// findModelView is findSerialView generalized over a ModelSpec: the same
// dense BFS, with the combine rule and ω gating read from the model's
// descriptor instead of the Policy switch.
func (s *Searcher) findModelView(res *SearchResult, view *TrustView, memo *EdgeMemo, trustor AgentID, t task.Task, m TrustModel, spec ModelSpec, st *denseState) {
	src := resolveModelHops(view, memo, m, t, s.Norm)
	st.inqCur = st.nextStamp()
	st.inqCount = 0
	st.bestCur = st.nextStamp()
	st.candIDs = st.candIDs[:0]
	adjOff, adjTo := view.adjOff, view.adjTo
	cur, nxt := &st.fr[0], &st.fr[1]
	cur.reset(st.nextStamp())
	cur.add(trustor, 1)
	for depth := 1; depth <= s.MaxDepth && len(cur.ids) > 0; depth++ {
		nxt.reset(st.nextStamp())
		relay := depth < s.MaxDepth
		for _, u := range cur.ids {
			uval := cur.val[u]
			base := adjOff[u]
			for k, v := range adjTo[base:adjOff[u+1]] {
				if v == trustor {
					continue
				}
				hop, ok := src.hop(view, base+int32(k), t)
				if !ok {
					continue
				}
				st.markInquired(v)
				var val float64
				if spec.Combine == CombineProduct {
					val = uval * hop
				} else {
					val = CombinePair(uval, hop)
				}
				passTrustee := hop > 0
				passRecommender := hop > 0
				if spec.OmegaGated {
					passTrustee = hop >= s.Omega2
					passRecommender = hop >= s.Omega1
				}
				if passTrustee && s.isCandidate(v) {
					if st.bestStamp[v] != st.bestCur {
						st.bestStamp[v] = st.bestCur
						st.bestVal[v] = val
						st.candIDs = append(st.candIDs, v)
					} else if val > st.bestVal[v] {
						st.bestVal[v] = val
					}
				}
				if relay && passRecommender {
					nxt.add(v, val)
				}
			}
		}
		cur, nxt = nxt, cur
		slices.Sort(cur.ids)
	}
	res.Candidates = res.Candidates[:0]
	for _, v := range st.candIDs {
		res.Candidates = append(res.Candidates, Candidate{ID: v, TW: st.bestVal[v]})
	}
	SortCandidates(res.Candidates)
	res.Inquired = st.inqCount
}
