package core

import (
	"testing"

	"siot/internal/task"
)

// edgeIndexView builds a TrustView over an explicit CSR adjacency with no
// records — EdgeIndex only reads the adjacency, so an empty capture source
// suffices.
func edgeIndexView(t *testing.T, adjOff []int32, adjTo []AgentID) *TrustView {
	t.Helper()
	v, err := CaptureTrustView(adjOff, adjTo, CaptureSource{
		Catalog: task.NewCatalog(),
		Count:   func(holder, about AgentID) int { return 0 },
		Append: func(holder, about AgentID, buf []CompactRecord) []CompactRecord {
			return buf
		},
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEdgeIndexRowBoundaries: the binary search behind the serve path must
// hit the first and last edge of a row exactly and miss targets just outside
// the row's range — the off-by-one class a row-local search can get wrong.
func TestEdgeIndexRowBoundaries(t *testing.T) {
	// Agent 1 has neighbors {0, 3, 5, 9}; agents 0 and 2 have one each.
	adjOff := []int32{0, 1, 5, 6}
	adjTo := []AgentID{1, 0, 3, 5, 9, 1}
	v := edgeIndexView(t, adjOff, adjTo)

	if e, ok := v.EdgeIndex(1, 0); !ok || e != 1 {
		t.Fatalf("first edge of row: EdgeIndex(1, 0) = (%d, %v), want (1, true)", e, ok)
	}
	if e, ok := v.EdgeIndex(1, 9); !ok || e != 4 {
		t.Fatalf("last edge of row: EdgeIndex(1, 9) = (%d, %v), want (4, true)", e, ok)
	}
	if e, ok := v.EdgeIndex(1, 5); !ok || e != 3 {
		t.Fatalf("middle edge: EdgeIndex(1, 5) = (%d, %v), want (3, true)", e, ok)
	}
	// Absent targets: below the row's first, between entries, above the last.
	// A miss must not bleed into a neighboring row's edges.
	for _, w := range []AgentID{2, 4, 6, 10} {
		if e, ok := v.EdgeIndex(1, w); ok {
			t.Fatalf("EdgeIndex(1, %d) = (%d, true), want a miss", w, e)
		}
	}
	// Row of size one: its single edge is both first and last.
	if e, ok := v.EdgeIndex(2, 1); !ok || e != 5 {
		t.Fatalf("singleton row: EdgeIndex(2, 1) = (%d, %v), want (5, true)", e, ok)
	}
	if _, ok := v.EdgeIndex(2, 0); ok {
		t.Fatal("singleton row: EdgeIndex(2, 0) hit, want a miss")
	}
}

// TestEdgeIndexEmptyRow: an isolated agent's row is the empty span — every
// lookup must miss without touching adjacent rows.
func TestEdgeIndexEmptyRow(t *testing.T) {
	// Agent 1 is isolated; 0 and 2 are mutual neighbors.
	adjOff := []int32{0, 1, 1, 2}
	adjTo := []AgentID{2, 0}
	v := edgeIndexView(t, adjOff, adjTo)
	for w := AgentID(0); w < 3; w++ {
		if e, ok := v.EdgeIndex(1, w); ok {
			t.Fatalf("isolated agent: EdgeIndex(1, %d) = (%d, true), want a miss", w, e)
		}
	}
	if e, ok := v.EdgeIndex(0, 2); !ok || e != 0 {
		t.Fatalf("EdgeIndex(0, 2) = (%d, %v), want (0, true)", e, ok)
	}
}

// TestEdgeIndexSingleNodeGraph: a one-node graph has one empty row and no
// edges; any lookup (including the self-loop) must miss.
func TestEdgeIndexSingleNodeGraph(t *testing.T) {
	v := edgeIndexView(t, []int32{0, 0}, nil)
	if v.NumAgents() != 1 || v.NumEdges() != 0 {
		t.Fatalf("view shape %d agents/%d edges, want 1/0", v.NumAgents(), v.NumEdges())
	}
	if e, ok := v.EdgeIndex(0, 0); ok {
		t.Fatalf("EdgeIndex(0, 0) = (%d, true) on a single-node graph, want a miss", e)
	}
}
