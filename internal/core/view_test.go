package core

import (
	"testing"

	"siot/internal/task"
)

// tinyView builds a 3-agent path graph 0—1—2 where agent 0 holds one record
// about agent 1 for the given task.
func tinyView(t *testing.T, tk task.Task) *TrustView {
	t.Helper()
	adjOff := []int32{0, 1, 3, 4}
	adjTo := []AgentID{1, 0, 2, 1}
	cat := task.NewCatalog()
	store := map[[2]AgentID][]CompactRecord{
		{0, 1}: {{Ref: cat.Intern(tk), Exp: Expectation{S: 0.9, G: 0.9, D: 0.1}, Count: 1}},
	}
	v, err := CaptureTrustView(adjOff, adjTo, CaptureSource{
		Catalog: cat,
		Count: func(holder, about AgentID) int {
			return len(store[[2]AgentID{holder, about}])
		},
		Append: func(holder, about AgentID, buf []CompactRecord) []CompactRecord {
			return append(buf, store[[2]AgentID{holder, about}]...)
		},
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEdgeMemoConservativeTaskGuard: the conservative table is only valid
// for the exact task it was built from. A same-type task with different
// characteristics must not be served a stale table (typeTable returns nil
// and the search falls back to arena records), and Require for the new
// task must rebuild the table.
func TestEdgeMemoConservativeTaskGuard(t *testing.T) {
	taskA := task.Uniform(3, task.CharGPS)
	taskB := task.Uniform(3, task.CharImage) // same type, different bag
	view := tinyView(t, taskA)
	memo := NewEdgeMemo(view, UnitNormalizer(), 1)

	memo.Require(PolicyConservative, []task.Task{taskA})
	if memo.typeTable(PolicyConservative, taskA) == nil {
		t.Fatal("table for the required task missing")
	}
	if got := memo.typeTable(PolicyConservative, taskB); got != nil {
		t.Fatalf("same-type different-content task served a stale table: %v", got)
	}

	memo.Require(PolicyConservative, []task.Task{taskB})
	if memo.typeTable(PolicyConservative, taskB) == nil {
		t.Fatal("table not rebuilt for the new task contents")
	}
	// The rebuilt table must block edge (0,1): the record covers GPS, not
	// Image.
	vals := memo.typeTable(PolicyConservative, taskB)
	if _, ok := InferFromCompact(view.Tasks(), view.EdgeRecords(0), taskB, UnitNormalizer()); ok {
		t.Fatal("fixture broken: taskB should not be inferable from a GPS record")
	}
	if !isBlocked(vals[0]) {
		t.Fatalf("edge (0,1) should be blocked for taskB, got %v", vals[0])
	}
}

func isBlocked(v float64) bool { return v != v }

// TestEdgeMemoTraditionalTypeKey: the traditional hop depends on the task
// only through its type, so same-type tasks legitimately share a table.
func TestEdgeMemoTraditionalTypeKey(t *testing.T) {
	taskA := task.Uniform(3, task.CharGPS)
	taskB := task.Uniform(3, task.CharImage)
	view := tinyView(t, taskA)
	memo := NewEdgeMemo(view, UnitNormalizer(), 1)
	memo.Require(PolicyTraditional, []task.Task{taskA})
	got := memo.typeTable(PolicyTraditional, taskB)
	if got == nil {
		t.Fatal("traditional table should be shared across same-type tasks")
	}
	want := (Record{Task: taskA, Exp: Expectation{S: 0.9, G: 0.9, D: 0.1}}).TW(UnitNormalizer())
	if got[0] != want {
		t.Fatalf("edge (0,1) traditional value = %v, want %v", got[0], want)
	}
}
