package core

import (
	"math"
	"testing"
	"testing/quick"

	"siot/internal/rng"
	"siot/internal/task"
)

// Property tests on the trust-model invariants.

func TestPropertyUpdateIsContraction(t *testing.T) {
	// Two different histories fed the same observation stream converge:
	// |e1 − e2| shrinks by the factor β per step, so initial disagreement
	// is forgotten geometrically. This is the property that makes the
	// trustworthiness update self-stabilizing.
	f := func(seed uint64, s1, s2 float64) bool {
		cfg := DefaultUpdateConfig()
		r := rng.New(seed, "contraction")
		e1 := Expectation{S: math.Mod(math.Abs(s1), 1)}
		e2 := Expectation{S: math.Mod(math.Abs(s2), 1)}
		gap0 := math.Abs(e1.S - e2.S)
		for i := 0; i < 50; i++ {
			obs := Outcome{Success: r.Float64() < 0.5, Gain: r.Float64(), Damage: r.Float64(), Cost: r.Float64()}
			e1 = Update(e1, obs, PerfectEnv(), cfg)
			e2 = Update(e2, obs, PerfectEnv(), cfg)
		}
		gap := math.Abs(e1.S - e2.S)
		want := gap0 * math.Pow(cfg.Betas.S, 50)
		return gap <= want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInferenceWithinRecordBounds(t *testing.T) {
	// The inferred trustworthiness of any task lies within the min/max
	// trustworthiness of the records it draws on — inference interpolates,
	// never extrapolates.
	f := func(seed uint64, nRecs uint8) bool {
		r := rng.New(seed, "infer-bounds")
		n := int(nRecs%5) + 1
		s := NewStore(1, DefaultUpdateConfig())
		lo, hi := 1.0, 0.0
		for i := 0; i < n; i++ {
			tw := r.Float64()
			// Expectation with TW == normalize(profit): pick S=1, G, C to
			// hit profit 3*tw-2 under the unit normalizer.
			profit := 3*tw - 2
			exp := Expectation{S: 1, G: math.Max(profit, 0), C: math.Max(-profit, 0)}
			chars := []task.Characteristic{task.Characteristic(r.IntN(4))}
			if r.IntN(2) == 0 {
				c2 := task.Characteristic(r.IntN(4))
				if c2 != chars[0] {
					chars = append(chars, c2)
				}
			}
			s.Seed(7, task.Uniform(task.Type(i), chars...), exp)
			got := exp.Trustworthiness(UnitNormalizer())
			if got < lo {
				lo = got
			}
			if got > hi {
				hi = got
			}
		}
		probe := task.Uniform(99, 0, 1, 2, 3)
		tw, ok := s.InferTW(7, probe)
		if !ok {
			return true // not all characteristics covered: nothing to check
		}
		return tw >= lo-1e-9 && tw <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertySearcherDeterministic(t *testing.T) {
	// Identical searches return identical results, including candidate
	// order: required for reproducibility and for fair method comparisons.
	f := newFakeNet()
	r := rng.New(3, "searcher-det")
	const n = 30
	for i := 0; i < 80; i++ {
		u, v := AgentID(r.IntN(n)), AgentID(r.IntN(n))
		if u != v {
			f.edge(u, v)
			f.record(u, v, task.Uniform(task.Type(r.IntN(4)), task.Characteristic(r.IntN(3))), r.Float64())
		}
	}
	s := f.searcher(3, 0.3, 0.3)
	probe := task.Uniform(9, 0, 1)
	for _, pol := range []Policy{PolicyTraditional, PolicyConservative, PolicyAggressive} {
		a := s.Find(0, probe, pol)
		b := s.Find(0, probe, pol)
		if a.Inquired != b.Inquired || len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("%v: nondeterministic result shape", pol)
		}
		for i := range a.Candidates {
			if a.Candidates[i] != b.Candidates[i] {
				t.Fatalf("%v: candidate %d differs", pol, i)
			}
		}
	}
}

func TestPropertyAggressiveContainsConservative(t *testing.T) {
	// With ω1 = ω2 = 0, every conservative candidate is an aggressive
	// candidate (the containment behind Fig. 11), on random networks.
	f := func(seed uint64) bool {
		net := newFakeNet()
		r := rng.New(seed, "containment")
		const n = 25
		for i := 0; i < 70; i++ {
			u, v := AgentID(r.IntN(n)), AgentID(r.IntN(n))
			if u == v {
				continue
			}
			net.edge(u, v)
			chars := []task.Characteristic{task.Characteristic(r.IntN(3))}
			if r.IntN(2) == 0 {
				chars = append(chars, task.Characteristic(3))
			}
			net.record(u, v, task.Uniform(task.Type(r.IntN(5)), chars...), r.Float64())
		}
		s := net.searcher(3, 0, 0)
		probe := task.Uniform(9, 0, 3)
		cons := s.Find(0, probe, PolicyConservative)
		aggr := s.Find(0, probe, PolicyAggressive)
		aggrSet := map[AgentID]bool{}
		for _, c := range aggr.Candidates {
			aggrSet[c.ID] = true
		}
		for _, c := range cons.Candidates {
			if !aggrSet[c.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertySelectMutualNeverInventsCandidates(t *testing.T) {
	f := func(tws []float64) bool {
		if len(tws) > 12 {
			tws = tws[:12]
		}
		cands := make([]Candidate, len(tws))
		valid := map[AgentID]bool{}
		for i, tw := range tws {
			cands[i] = Candidate{ID: AgentID(i), TW: tw}
			valid[AgentID(i)] = true
		}
		got, ok := SelectMutual(cands, nil)
		if !ok {
			return len(cands) == 0
		}
		return valid[got.ID]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
