package core

import (
	"siot/internal/task"
)

// feature-weighted is an evidence-feature trust model in the style of
// Sagar et al. (arXiv:2310.19173): instead of the paper's all-or-nothing
// characteristic coverage rule (eq. 8), each hop extracts a small feature
// vector from the edge's records — per-characteristic competence, coverage
// fraction, and interaction-count saturation — and combines it with a
// fixed learned weighting. The model tolerates partial coverage (a hop
// with one matching characteristic still scores, discounted by the
// coverage feature), so it explores where the conservative policy blocks.
//
// The model is stateless and evidence-local: every term is a weighted
// average or a saturating ratio of [0, 1] quantities, so outputs stay in
// [0, 1] with no clamp ever active in practice (clamped anyway for
// robustness against pathological normalizers).
const (
	// fwWeightCompetence/Coverage/Count are the fixed combination weights
	// (they sum to 1).
	fwWeightCompetence = 0.62
	fwWeightCoverage   = 0.20
	fwWeightCount      = 0.18
	// fwCountPrior is the pseudo-count of the saturation feature
	// n/(n+prior): ~3 interactions reach half confidence.
	fwCountPrior = 3.0
)

type featureWeighted struct{}

func (featureWeighted) Name() string { return "feature-weighted" }

func (featureWeighted) Spec() ModelSpec {
	return ModelSpec{Combine: CombineMistrust, OmegaGated: true}
}

// HopTW extracts the hop's features and applies the fixed weighting. The
// hop is admissible when at least one characteristic of the task is
// covered by the records (full coverage raises the coverage feature to 1).
func (featureWeighted) HopTW(ctx HopContext, recs []CompactRecord, t task.Task) (float64, bool) {
	if len(recs) == 0 {
		return 0, false
	}
	coveredW, weighted := 0.0, 0.0
	for _, c := range t.Characteristics() {
		est, ok := CharTWCompact(ctx.Tasks, recs, c, ctx.Norm)
		if !ok {
			continue
		}
		w := t.Weight(c)
		coveredW += w
		weighted += w * est
	}
	if coveredW == 0 {
		return 0, false
	}
	count := 0.0
	for _, r := range recs {
		count += float64(r.Count)
	}
	competence := weighted / coveredW
	coverage := clamp01(coveredW) // task weights sum to 1, so this is the covered fraction
	saturation := count / (count + fwCountPrior)
	return clamp01(fwWeightCompetence*competence + fwWeightCoverage*coverage + fwWeightCount*saturation), true
}

func init() { RegisterModel(featureWeighted{}) }
