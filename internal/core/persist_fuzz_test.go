package core

import (
	"bytes"
	"testing"

	"siot/internal/task"
)

// FuzzPersistRoundTrip fuzzes the store snapshot codec with two
// guarantees: arbitrary input never panics the decoder, and any input the
// decoder accepts reaches a canonical fixed point — saving the loaded
// store and loading it again reproduces the same bytes and the same state
// (decode(encode(store)) == store).
func FuzzPersistRoundTrip(f *testing.F) {
	// Seed corpus: a realistic snapshot plus boundary documents.
	seedStore := NewStore(1, DefaultUpdateConfig())
	tk := task.Uniform(3, task.CharGPS, task.CharImage)
	seedStore.Observe(2, tk, Outcome{Success: true, Gain: 0.8, Cost: 0.1}, PerfectEnv())
	seedStore.Observe(2, task.Uniform(1, task.CharCompute), Outcome{Damage: 0.4, Cost: 0.2}, PerfectEnv())
	seedStore.ObserveUsage(9, true)
	seedStore.ObserveUsage(9, false)
	var seed bytes.Buffer
	if err := seedStore.Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// A bulk-seeded store: snapshots produced through the SeedSorted batch
	// path must round-trip exactly like per-record Seed/Observe state.
	bulkStore := NewStore(4, DefaultUpdateConfig())
	if err := bulkStore.SeedSorted([]SeedRecord{
		{Trustee: 2, Task: task.Uniform(1, task.CharCompute), Exp: Expectation{S: 0.7, G: 0.7, D: 0.3}},
		{Trustee: 2, Task: tk, Exp: Expectation{S: 0.4, G: 0.4, D: 0.6, C: 0.1}},
		{Trustee: 9, Task: tk, Exp: Expectation{S: 1, G: 1}},
	}); err != nil {
		f.Fatal(err)
	}
	var bulk bytes.Buffer
	if err := bulkStore.Save(&bulk); err != nil {
		f.Fatal(err)
	}
	f.Add(bulk.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"owner":5,"records":[],"usage":[]}`))
	f.Add([]byte(`{"version":1,"owner":0,"records":[{"trustee":3,"task":{"type":7,"chars":[2],"weights":[1]},"s":0.5,"g":0.5,"d":0.5,"c":0.5,"count":4}],"usage":[{"trustor":8,"responsible":3,"abusive":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultUpdateConfig()
		s, err := LoadStore(bytes.NewReader(data), cfg) // must never panic
		if err != nil {
			return // rejected input is fine
		}
		var first bytes.Buffer
		if err := s.Save(&first); err != nil {
			t.Fatalf("saving accepted store: %v", err)
		}
		s2, err := LoadStore(bytes.NewReader(first.Bytes()), cfg)
		if err != nil {
			t.Fatalf("re-loading own snapshot: %v\nsnapshot:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := s2.Save(&second); err != nil {
			t.Fatalf("re-saving: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("snapshot is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		if s2.Owner() != s.Owner() {
			t.Errorf("owner drifted: %d → %d", s.Owner(), s2.Owner())
		}
		if s2.NumRecords() != s.NumRecords() {
			t.Errorf("record count drifted: %d → %d", s.NumRecords(), s2.NumRecords())
		}
	})
}
