package core

import (
	"math"
	"slices"
	"sync"

	"siot/internal/task"
)

// This file is the frozen-epoch counterpart of the map-based search in
// transit.go: the same BFS, rewritten over dense generation-stamped arrays
// indexed by agent slot and fed by a TrustView (and optionally an EdgeMemo).
// transit.go's map path remains the reference implementation — the
// equivalence tests in sim assert byte-identical SearchResults between the
// two on randomized populations.

// frontSet is one BFS frontier as a dense value array plus the ordered ID
// list that replaces sorting map keys: IDs are appended on first discovery
// and sorted once per depth, so iteration order matches the legacy
// appendSortedIDs order exactly.
type frontSet struct {
	stamp []uint32
	val   []float64
	ids   []AgentID
	cur   uint32
}

func (f *frontSet) ensure(n int) {
	if len(f.stamp) < n {
		f.stamp = append(f.stamp, make([]uint32, n-len(f.stamp))...)
		f.val = append(f.val, make([]float64, n-len(f.val))...)
	}
}

func (f *frontSet) reset(stamp uint32) {
	f.cur = stamp
	f.ids = f.ids[:0]
}

// add inserts or max-merges (v, val), mirroring the map path's
// "if cur, seen := m[v]; !seen || val > cur" update.
func (f *frontSet) add(v AgentID, val float64) {
	if f.stamp[v] != f.cur {
		f.stamp[v] = f.cur
		f.val[v] = val
		f.ids = append(f.ids, v)
	} else if val > f.val[v] {
		f.val[v] = val
	}
}

// denseState is the pooled scratch state of one FindView call. Membership of
// every set (inquired, best, frontiers, per-characteristic bests) is encoded
// as a generation stamp, so "clearing" a set is a counter increment instead
// of an O(n) wipe, and a warmed pool entry serves any number of searches
// without allocating.
type denseState struct {
	stamp    uint32
	inqStamp []uint32
	inqCur   uint32
	inqCount int

	bestStamp []uint32
	bestVal   []float64
	bestCur   uint32
	candIDs   []AgentID

	fr [2]frontSet

	// Aggressive policy: one best-value layer per task characteristic, plus
	// the discovery list of characteristic 0 (a node unreached by the first
	// characteristic can never satisfy the full-coverage rule of eq. 12).
	charStamp [][]uint32
	charVal   [][]float64
	charCur   []uint32
	char0IDs  []AgentID

	n int
}

var densePool = sync.Pool{New: func() any { return &denseState{} }}

// stampHeadroom bounds the stamps one FindView call can consume: two
// singleton sets plus, per characteristic layer, a best set and one frontier
// set per depth. 1<<16 covers any plausible depth × alphabet product.
const stampHeadroom = 1 << 16

// acquireDense returns a pooled state sized for n agent slots with enough
// stamp headroom that the counter cannot wrap mid-search.
func acquireDense(n int) *denseState {
	st := densePool.Get().(*denseState)
	if st.n < n {
		st.inqStamp = append(st.inqStamp, make([]uint32, n-st.n)...)
		st.bestStamp = append(st.bestStamp, make([]uint32, n-st.n)...)
		st.bestVal = append(st.bestVal, make([]float64, n-st.n)...)
		st.fr[0].ensure(n)
		st.fr[1].ensure(n)
		for i := range st.charStamp {
			st.charStamp[i] = append(st.charStamp[i], make([]uint32, n-st.n)...)
			st.charVal[i] = append(st.charVal[i], make([]float64, n-st.n)...)
		}
		st.n = n
	}
	if st.stamp > math.MaxUint32-stampHeadroom {
		clear(st.inqStamp)
		clear(st.bestStamp)
		clear(st.fr[0].stamp)
		clear(st.fr[1].stamp)
		for i := range st.charStamp {
			clear(st.charStamp[i])
		}
		st.stamp = 0
	}
	return st
}

// nextStamp mints a fresh set identity (never 0: zeroed arrays mean "in no
// set").
func (st *denseState) nextStamp() uint32 {
	st.stamp++
	return st.stamp
}

// ensureChars grows the per-characteristic layers to hold k characteristics.
func (st *denseState) ensureChars(k int) {
	for len(st.charStamp) < k {
		st.charStamp = append(st.charStamp, make([]uint32, st.n))
		st.charVal = append(st.charVal, make([]float64, st.n))
	}
	if len(st.charCur) < k {
		st.charCur = append(st.charCur, make([]uint32, k-len(st.charCur))...)
	}
}

// markInquired counts v once per search.
func (st *denseState) markInquired(v AgentID) {
	if st.inqStamp[v] != st.inqCur {
		st.inqStamp[v] = st.inqCur
		st.inqCount++
	}
}

// FindView is Find over a frozen TrustView: the same search semantics and
// bit-identical results, reading captured CSR memory instead of live locked
// stores. memo may be nil, in which case hop values are computed from the
// view's record arena per hop (lock-free but unmemoized); with a Required
// EdgeMemo every hop is a single array lookup.
//
// FindView is safe for concurrent use: the view and memo are read-only and
// each call draws its scratch state from a pool.
func (s *Searcher) FindView(view *TrustView, memo *EdgeMemo, trustor AgentID, t task.Task, p Policy) SearchResult {
	var res SearchResult
	s.FindViewInto(&res, view, memo, trustor, t, p)
	return res
}

// FindViewInto is FindView writing into res, reusing res.Candidates'
// capacity so a caller that recycles results allocates nothing after
// warmup.
func (s *Searcher) FindViewInto(res *SearchResult, view *TrustView, memo *EdgeMemo, trustor AgentID, t task.Task, p Policy) {
	st := acquireDense(view.NumAgents())
	switch p {
	case PolicyAggressive:
		s.findAggressiveView(res, view, memo, trustor, t, st)
	default:
		s.findSerialView(res, view, memo.typeTable(p, t), trustor, t, p, st)
	}
	densePool.Put(st)
}

// findSerialView runs the single-path policies (traditional, conservative)
// over the view. vals, when non-nil, is the memoized per-edge hop table.
func (s *Searcher) findSerialView(res *SearchResult, view *TrustView, vals []float64, trustor AgentID, t task.Task, p Policy, st *denseState) {
	traditional := p == PolicyTraditional
	st.inqCur = st.nextStamp()
	st.inqCount = 0
	st.bestCur = st.nextStamp()
	st.candIDs = st.candIDs[:0]
	adjOff, adjTo := view.adjOff, view.adjTo
	cur, nxt := &st.fr[0], &st.fr[1]
	cur.reset(st.nextStamp())
	cur.add(trustor, 1)
	for depth := 1; depth <= s.MaxDepth && len(cur.ids) > 0; depth++ {
		nxt.reset(st.nextStamp())
		relay := depth < s.MaxDepth
		for _, u := range cur.ids {
			uval := cur.val[u]
			base := adjOff[u]
			for k, v := range adjTo[base:adjOff[u+1]] {
				if v == trustor {
					continue
				}
				var hop float64
				var ok bool
				if vals != nil {
					hop = vals[int(base)+k]
					ok = !math.IsNaN(hop)
				} else {
					hop, ok = s.hopTWCompact(view.tasks, view.EdgeRecords(base+int32(k)), t, p)
				}
				if !ok {
					continue
				}
				st.markInquired(v)
				var val float64
				if traditional {
					val = uval * hop
				} else {
					val = CombinePair(uval, hop)
				}
				if s.passTrustee(p, hop) && s.isCandidate(v) {
					if st.bestStamp[v] != st.bestCur {
						st.bestStamp[v] = st.bestCur
						st.bestVal[v] = val
						st.candIDs = append(st.candIDs, v)
					} else if val > st.bestVal[v] {
						st.bestVal[v] = val
					}
				}
				if relay && s.passRecommender(p, hop) {
					nxt.add(v, val)
				}
			}
		}
		cur, nxt = nxt, cur
		slices.Sort(cur.ids)
	}
	res.Candidates = res.Candidates[:0]
	for _, v := range st.candIDs {
		res.Candidates = append(res.Candidates, Candidate{ID: v, TW: st.bestVal[v]})
	}
	SortCandidates(res.Candidates)
	res.Inquired = st.inqCount
}

// findAggressiveView runs the per-characteristic propagation (eqs. 12–17)
// over the view, one stamped best-value layer per characteristic.
func (s *Searcher) findAggressiveView(res *SearchResult, view *TrustView, memo *EdgeMemo, trustor AgentID, t task.Task, st *denseState) {
	chars := t.Characteristics()
	st.ensureChars(len(chars))
	st.inqCur = st.nextStamp()
	st.inqCount = 0
	st.char0IDs = st.char0IDs[:0]
	adjOff, adjTo := view.adjOff, view.adjTo
	for ci, c := range chars {
		vals := memo.charTable(c)
		bStamp, bVal := st.charStamp[ci], st.charVal[ci]
		bCur := st.nextStamp()
		st.charCur[ci] = bCur
		cur, nxt := &st.fr[0], &st.fr[1]
		cur.reset(st.nextStamp())
		cur.add(trustor, 1)
		for depth := 1; depth <= s.MaxDepth && len(cur.ids) > 0; depth++ {
			nxt.reset(st.nextStamp())
			relay := depth < s.MaxDepth
			for _, u := range cur.ids {
				uval := cur.val[u]
				base := adjOff[u]
				for k, v := range adjTo[base:adjOff[u+1]] {
					if v == trustor {
						continue
					}
					var hop float64
					var ok bool
					if vals != nil {
						hop = vals[int(base)+k]
						ok = !math.IsNaN(hop)
					} else {
						hop, ok = CharTWCompact(view.tasks, view.EdgeRecords(base+int32(k)), c, s.Norm)
					}
					if !ok {
						continue
					}
					st.markInquired(v)
					val := CombinePair(uval, hop)
					if s.isCandidate(v) {
						if bStamp[v] != bCur {
							bStamp[v] = bCur
							bVal[v] = val
							if ci == 0 {
								st.char0IDs = append(st.char0IDs, v)
							}
						} else if val > bVal[v] {
							bVal[v] = val
						}
					}
					if relay && hop >= s.Omega1 {
						nxt.add(v, val)
					}
				}
			}
			cur, nxt = nxt, cur
			slices.Sort(cur.ids)
		}
	}
	// Combine per-characteristic estimates with the task weights (eq. 17),
	// requiring full coverage (eq. 12); ω2 applies to the task-level value
	// (eq. 11). Iterating characteristic 0's discovery list visits exactly
	// the keys the legacy path's perChar[0] map holds.
	weights := t.Weights()
	res.Candidates = res.Candidates[:0]
	for _, v := range st.char0IDs {
		tw, ok := 0.0, true
		for ci := range chars {
			if st.charStamp[ci][v] != st.charCur[ci] {
				ok = false
				break
			}
			tw += weights[ci] * st.charVal[ci][v]
		}
		if ok && tw >= s.Omega2 {
			res.Candidates = append(res.Candidates, Candidate{ID: v, TW: tw})
		}
	}
	SortCandidates(res.Candidates)
	res.Inquired = st.inqCount
}
