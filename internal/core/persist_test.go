package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"siot/internal/task"
)

func populatedStore() *Store {
	s := NewStore(7, DefaultUpdateConfig())
	gps := task.Uniform(1, task.CharGPS)
	mixed := task.MustNew(2, map[task.Characteristic]float64{
		task.CharGPS:   3,
		task.CharImage: 1,
	})
	for i := 0; i < 12; i++ {
		s.Observe(2, gps, Outcome{Success: true, Gain: 0.8, Cost: 0.1}, PerfectEnv())
		s.Observe(3, mixed, Outcome{Success: i%3 != 0, Gain: 0.6, Damage: 0.4, Cost: 0.2}, PerfectEnv())
	}
	s.ObserveUsage(9, false)
	s.ObserveUsage(9, true)
	s.ObserveUsage(11, false)
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := populatedStore()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStore(&buf, DefaultUpdateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Owner() != orig.Owner() {
		t.Fatal("owner lost")
	}
	// Records survive with expectations, counts, and task weights.
	for _, trustee := range orig.Trustees() {
		origRecs := orig.Records(trustee)
		gotRecs := restored.Records(trustee)
		if len(gotRecs) != len(origRecs) {
			t.Fatalf("trustee %d: %d records, want %d", trustee, len(gotRecs), len(origRecs))
		}
		for i := range origRecs {
			o, g := origRecs[i], gotRecs[i]
			if o.Count != g.Count {
				t.Fatalf("count %d != %d", g.Count, o.Count)
			}
			if math.Abs(o.Exp.S-g.Exp.S) > 1e-12 || math.Abs(o.Exp.C-g.Exp.C) > 1e-12 {
				t.Fatalf("expectation drifted: %+v vs %+v", g.Exp, o.Exp)
			}
			for _, c := range o.Task.Characteristics() {
				if math.Abs(o.Task.Weight(c)-g.Task.Weight(c)) > 1e-12 {
					t.Fatalf("task weight drifted for characteristic %d", c)
				}
			}
		}
	}
	// Usage logs survive.
	if restored.ReverseTW(9) != orig.ReverseTW(9) {
		t.Fatal("usage log drifted")
	}
	if restored.ReverseTW(11) != orig.ReverseTW(11) {
		t.Fatal("usage log drifted")
	}
	// The restored store keeps learning.
	tk := task.Uniform(1, task.CharGPS)
	restored.Observe(2, tk, Outcome{Success: true, Gain: 1}, PerfectEnv())
	r, _ := restored.Record(2, 1)
	if r.Count != 13 {
		t.Fatalf("restored store count = %d, want 13", r.Count)
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	a, b := populatedStore(), populatedStore()
	var ba, bb bytes.Buffer
	if err := a.Save(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("identical stores serialized differently")
	}
}

func TestLoadStoreRejectsGarbage(t *testing.T) {
	if _, err := LoadStore(strings.NewReader("not json"), DefaultUpdateConfig()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadStoreRejectsWrongVersion(t *testing.T) {
	src := `{"version": 99, "owner": 1, "records": [], "usage": []}`
	if _, err := LoadStore(strings.NewReader(src), DefaultUpdateConfig()); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestLoadStoreRejectsMalformedTask(t *testing.T) {
	src := `{"version": 1, "owner": 1, "records": [
		{"trustee": 2, "task": {"type": 1, "chars": [0], "weights": []},
		 "s": 0.5, "g": 0.5, "d": 0.5, "c": 0.5, "count": 1}
	], "usage": []}`
	if _, err := LoadStore(strings.NewReader(src), DefaultUpdateConfig()); err == nil {
		t.Fatal("mismatched chars/weights accepted")
	}
	src = `{"version": 1, "owner": 1, "records": [
		{"trustee": 2, "task": {"type": 1, "chars": [0], "weights": [-1]},
		 "s": 0.5, "g": 0.5, "d": 0.5, "c": 0.5, "count": 1}
	], "usage": []}`
	if _, err := LoadStore(strings.NewReader(src), DefaultUpdateConfig()); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestLoadStoreRejectsNegativeUsage(t *testing.T) {
	src := `{"version": 1, "owner": 1, "records": [],
		"usage": [{"trustor": 3, "responsible": -1, "abusive": 0}]}`
	if _, err := LoadStore(strings.NewReader(src), DefaultUpdateConfig()); err == nil {
		t.Fatal("negative usage counts accepted")
	}
}

func TestSaveEmptyStore(t *testing.T) {
	s := NewStore(1, DefaultUpdateConfig())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStore(&buf, DefaultUpdateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Trustees()) != 0 {
		t.Fatal("empty store restored with trustees")
	}
}
