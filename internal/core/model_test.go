package core

import (
	"reflect"
	"testing"

	"siot/internal/task"
)

// TestPolicyAdapterMatchesLegacyHop pins the adapter half of the TrustModel
// refactor: each policy's adapter evaluates HopTW bit-identical to the
// legacy dispatch it wraps — hopTWCompact for the single-path policies and
// the eq. 4 full-coverage inference for the aggressive policy — over the
// same randomized fixtures as TestCompactMatchesFatReference.
func TestPolicyAdapterMatchesLegacyHop(t *testing.T) {
	probes := []task.Task{
		task.Uniform(1, task.CharGPS),
		task.Uniform(7, task.CharGPS, task.CharCompute),
		task.MustNew(8, map[task.Characteristic]float64{task.CharImage: 0.9, task.CharStorage: 0.1}),
		task.Uniform(9, task.CharAudio), // uncovered
	}
	norm := UnitNormalizer()
	s := &Searcher{Norm: norm}
	for seed := uint64(1); seed <= 8; seed++ {
		for size := 0; size <= 5; size++ {
			f := buildCompactFixture(seed, size)
			ctx := HopContext{Tasks: f.tasks, Norm: norm}
			for _, tk := range probes {
				for _, p := range []Policy{PolicyTraditional, PolicyConservative} {
					legacyV, legacyOK := s.hopTWCompact(f.tasks, f.compact, tk, p)
					gotV, gotOK := p.Model().HopTW(ctx, f.compact, tk)
					if gotV != legacyV || gotOK != legacyOK {
						t.Fatalf("seed %d size %d: %s adapter HopTW(task %d) = (%v, %v), legacy (%v, %v)",
							seed, size, p, tk.Type(), gotV, gotOK, legacyV, legacyOK)
					}
				}
				legacyV, legacyOK := InferFromCompact(f.tasks, f.compact, tk, norm)
				if size == 0 {
					legacyOK = false // empty evidence never admits a hop
					legacyV = 0
				}
				gotV, gotOK := PolicyAggressive.Model().HopTW(ctx, f.compact, tk)
				if gotV != legacyV || gotOK != legacyOK {
					t.Fatalf("seed %d size %d: aggressive adapter HopTW(task %d) = (%v, %v), InferFromCompact (%v, %v)",
						seed, size, tk.Type(), gotV, gotOK, legacyV, legacyOK)
				}
			}
		}
	}
}

// TestModelHopTWRange: every registered model's HopTW stays in [0, 1] and
// blocks empty evidence, across randomized record sets — the interface
// contract the search and the serving layer rely on without re-clamping.
func TestModelHopTWRange(t *testing.T) {
	probes := []task.Task{
		task.Uniform(1, task.CharGPS),
		task.Uniform(7, task.CharGPS, task.CharCompute),
		task.MustNew(8, map[task.Characteristic]float64{task.CharImage: 0.9, task.CharStorage: 0.1}),
		task.Uniform(9, task.CharAudio),
	}
	norm := UnitNormalizer()
	for _, name := range ModelNames() {
		m, err := ParseModel(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.HopTW(HopContext{Norm: norm}, nil, probes[0]); ok {
			t.Fatalf("model %s admits a hop with no records", name)
		}
		for seed := uint64(1); seed <= 20; seed++ {
			for size := 1; size <= 5; size++ {
				f := buildCompactFixture(seed, size)
				ctx := HopContext{Tasks: f.tasks, Norm: norm}
				for _, tk := range probes {
					v, ok := m.HopTW(ctx, f.compact, tk)
					if !ok {
						continue
					}
					if v < 0 || v > 1 {
						t.Fatalf("model %s: HopTW(seed %d, size %d, task %d) = %v outside [0, 1]",
							name, seed, size, tk.Type(), v)
					}
				}
			}
		}
	}
}

// TestModelSpecs pins each registered model's search descriptor: a silent
// spec change would re-route the generic search (gating, combine rule)
// without failing any golden that happens not to exercise the edge.
func TestModelSpecs(t *testing.T) {
	want := map[string]ModelSpec{
		"traditional":      {Combine: CombineProduct},
		"conservative":     {Combine: CombineMistrust, OmegaGated: true},
		"aggressive":       {Combine: CombineMistrust, OmegaGated: true, PerCharacteristic: true},
		"hellinger-mf":     {Combine: CombineMistrust, OmegaGated: true},
		"feature-weighted": {Combine: CombineMistrust, OmegaGated: true},
	}
	for name, spec := range want {
		m, err := ParseModel(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Spec() != spec {
			t.Fatalf("model %s spec = %+v, want %+v", name, m.Spec(), spec)
		}
	}
	if !IsPolicyModel(PolicyConservative.Model()) {
		t.Fatal("conservative adapter not recognized as a policy model")
	}
	for _, name := range []string{"hellinger-mf", "feature-weighted"} {
		m, _ := ParseModel(name)
		if IsPolicyModel(m) {
			t.Fatalf("model %s wrongly recognized as a policy adapter", name)
		}
	}
	if _, ok := mustParseModel(t, "hellinger-mf").(EpochTrainable); !ok {
		t.Fatal("hellinger-mf is not epoch-trainable")
	}
	if _, ok := mustParseModel(t, "feature-weighted").(EpochTrainable); ok {
		t.Fatal("feature-weighted unexpectedly epoch-trainable")
	}
}

func mustParseModel(t *testing.T, name string) TrustModel {
	t.Helper()
	m, err := ParseModel(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// FuzzParseModel: ParseModel accepts exactly the registered names, and an
// accepted model round-trips its registry key.
func FuzzParseModel(f *testing.F) {
	for _, name := range ModelNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("Traditional")
	f.Add("hellinger-mf ")
	f.Add("not-a-model")
	registered := map[string]bool{}
	for _, name := range ModelNames() {
		registered[name] = true
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseModel(s)
		if registered[s] {
			if err != nil {
				t.Fatalf("registered name %q rejected: %v", s, err)
			}
			if m.Name() != s {
				t.Fatalf("ParseModel(%q).Name() = %q", s, m.Name())
			}
		} else if err == nil {
			t.Fatalf("unregistered name %q accepted as %q", s, m.Name())
		}
	})
}

// TestSearchStateScrub pins the pool-retention fix: a state returned to
// searchPool must not pin the last call's record values (each fat Record
// embeds a Task with two live slice headers), must drop an outsized record
// buffer entirely, and must bound how many per-characteristic maps it
// keeps — with the retained maps emptied.
func TestSearchStateScrub(t *testing.T) {
	// populate builds a pool-valid state (all maps allocated, as
	// searchPool.New does — releaseState may park it for later Finds)
	// carrying everything scrub must clear.
	populate := func(recCap, nChars int) *searchState {
		st := &searchState{
			inquired: make(map[AgentID]bool),
			best:     make(map[AgentID]float64),
			frontier: make(map[AgentID]float64),
			next:     make(map[AgentID]float64),
			recbuf:   make([]Record, 0, recCap),
		}
		tk := task.Uniform(1, task.CharGPS, task.CharImage)
		st.recbuf = st.recbuf[:recCap/2]
		for i := range st.recbuf {
			st.recbuf[i] = Record{Task: tk, Exp: Expectation{S: 0.9}, Count: i + 1}
		}
		for i := 0; i < nChars; i++ {
			st.perChar = append(st.perChar, map[AgentID]float64{AgentID(i): 0.5})
		}
		return st
	}

	t.Run("in-bounds keeps capacity, zeroes values", func(t *testing.T) {
		st := populate(64, 3)
		st.scrub()
		if len(st.recbuf) != 0 || cap(st.recbuf) != 64 {
			t.Fatalf("recbuf len/cap = %d/%d, want 0/64", len(st.recbuf), cap(st.recbuf))
		}
		full := st.recbuf[:cap(st.recbuf)]
		for i, r := range full {
			if !reflect.DeepEqual(r, Record{}) {
				t.Fatalf("recbuf[%d] retains %+v after scrub", i, r)
			}
		}
		if len(st.perChar) != 3 {
			t.Fatalf("perChar len = %d, want 3", len(st.perChar))
		}
		for i, m := range st.perChar {
			if len(m) != 0 {
				t.Fatalf("perChar[%d] retains %d entries after scrub", i, len(m))
			}
		}
	})

	t.Run("oversized recbuf released", func(t *testing.T) {
		st := populate(maxPooledRecbuf+1, 0)
		st.scrub()
		if st.recbuf != nil {
			t.Fatalf("recbuf cap %d survived scrub (limit %d)", cap(st.recbuf), maxPooledRecbuf)
		}
	})

	t.Run("perChar bounded", func(t *testing.T) {
		st := populate(8, maxPooledChars+5)
		st.scrub()
		if len(st.perChar) != maxPooledChars || cap(st.perChar) != maxPooledChars {
			t.Fatalf("perChar len/cap = %d/%d, want %d/%d",
				len(st.perChar), cap(st.perChar), maxPooledChars, maxPooledChars)
		}
		for i, m := range st.perChar {
			if len(m) != 0 {
				t.Fatalf("retained perChar[%d] not emptied", i)
			}
		}
	})

	t.Run("releaseState scrubs", func(t *testing.T) {
		st := populate(32, 2)
		releaseState(st) // must not panic; st now pooled
		if len(st.recbuf) != 0 {
			t.Fatal("releaseState pooled an unscrubbed state")
		}
	})
}
