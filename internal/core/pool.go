package core

import "sync"

// ArenaPool recycles the large backing arenas of frozen-epoch snapshots —
// TrustView record arenas and offsets, EdgeMemo hop tables — across
// captures. A repeated sweep at 10k nodes otherwise allocates a fresh
// ~23 MB arena per epoch (10x that at 100k); with a pool, a population of
// fixed size reaches steady state after the first capture and every
// subsequent epoch reuses the same memory.
//
// The pool is capacity-keyed: Get hands out the smallest retained slice
// whose capacity covers the request, so one pool can serve epochs of mixed
// sizes without unbounded growth (each kind keeps at most a small shelf of
// released slices; when the shelf is full, the smallest slice is evicted in
// favor of a larger release). A nil *ArenaPool is valid and degrades to
// plain allocation, which keeps unpooled call sites (tests, one-shot
// captures) free of conditionals.
//
// All methods are safe for concurrent use. Ownership is strict: a slice
// obtained from a Get is owned by the caller until it is released exactly
// once, after which the caller must not touch it again (the next capture
// will overwrite it). TrustView.Release and EdgeMemo.Release enforce this
// for the epoch path.
type ArenaPool struct {
	mu     sync.Mutex
	offs   shelf[int32]
	recs   shelf[CompactRecord]
	tables shelf[float64]
}

// arenaShelfSize bounds how many released slices of each kind a pool
// retains. Epoch workloads cycle at most a couple of sizes, so a small
// shelf captures all reuse while bounding retained memory.
const arenaShelfSize = 8

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

// shelf is one bounded free list of released slices of a single kind.
type shelf[E any] struct {
	items [][]E
}

// get removes and returns the smallest retained slice with capacity >= n,
// resliced to length n, or nil when none fits.
func (s *shelf[E]) get(n int) []E {
	best := -1
	for i, it := range s.items {
		if cap(it) < n {
			continue
		}
		if best < 0 || cap(it) < cap(s.items[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	it := s.items[best]
	last := len(s.items) - 1
	s.items[best] = s.items[last]
	s.items[last] = nil
	s.items = s.items[:last]
	return it[:n]
}

// put retains a released slice, evicting the smallest retained one when the
// shelf is full and the newcomer is larger.
func (s *shelf[E]) put(it []E) {
	if cap(it) == 0 {
		return
	}
	if len(s.items) < arenaShelfSize {
		s.items = append(s.items, it)
		return
	}
	small := 0
	for i := 1; i < len(s.items); i++ {
		if cap(s.items[i]) < cap(s.items[small]) {
			small = i
		}
	}
	if cap(s.items[small]) < cap(it) {
		s.items[small] = it
	}
}

// GetOffsets returns an int32 slice of length n, reusing a released arena
// when one is large enough. Contents are unspecified; the capture passes
// overwrite every element.
func (p *ArenaPool) GetOffsets(n int) []int32 {
	if p != nil {
		p.mu.Lock()
		s := p.offs.get(n)
		p.mu.Unlock()
		if s != nil {
			return s
		}
	}
	return make([]int32, n)
}

// GetRecords returns a CompactRecord slice of length n, reusing a released
// arena when one is large enough. Contents are unspecified; captures
// overwrite every element (CaptureTrustView panics if a span stays short).
func (p *ArenaPool) GetRecords(n int) []CompactRecord {
	if p != nil {
		p.mu.Lock()
		s := p.recs.get(n)
		p.mu.Unlock()
		if s != nil {
			return s
		}
	}
	return make([]CompactRecord, n)
}

// GetTable returns a float64 slice of length n for an EdgeMemo hop table,
// reusing a released one when large enough. Contents are unspecified; the
// memo pre-pass overwrites every element.
func (p *ArenaPool) GetTable(n int) []float64 {
	if p != nil {
		p.mu.Lock()
		s := p.tables.get(n)
		p.mu.Unlock()
		if s != nil {
			return s
		}
	}
	return make([]float64, n)
}

// putOffsets releases an offsets arena back to the pool.
func (p *ArenaPool) putOffsets(s []int32) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.offs.put(s)
	p.mu.Unlock()
}

// putRecords releases a record arena back to the pool.
func (p *ArenaPool) putRecords(s []CompactRecord) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.recs.put(s)
	p.mu.Unlock()
}

// putTable releases a hop table back to the pool.
func (p *ArenaPool) putTable(s []float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.tables.put(s)
	p.mu.Unlock()
}
