package core

import (
	"slices"

	"siot/internal/task"
)

// RoundView is the frozen-epoch snapshot of everything a delegation round's
// compute phase reads: the per-edge experience records of a TrustView plus,
// for every directed social edge (u, v), the usage log u keeps about v — the
// substrate of the reverse evaluation (eq. 1). Where the TrustView serves
// the pure transitivity sweeps, the RoundView serves the mutuality rounds:
// direct-experience lookup (BestTW), one-hop recommendation gathering
// (EdgeIndex + BestTW per recommender), and the usage counters (ReverseTW)
// all come from contiguous captured arenas, so the compute phase of a round
// takes zero store locks (pinned by TestMutualityComputePhaseLockFree).
//
// Like the TrustView it embeds, a RoundView is immutable after capture and
// safe for concurrent readers. It freezes the state left by the previous
// round's merge; the engine captures one per round boundary and the merge
// phase (the only store writer) invalidates it. The records a round reads
// always live along social edges — experience is only ever seeded at or
// observed by social neighbors — which is what lets a per-edge arena stand
// in for the live stores.
type RoundView struct {
	*TrustView
	norm Normalizer
	// resp[e]/abus[e] are the responsible/abusive usage counts the source
	// agent of directed edge e keeps about the target agent.
	resp, abus []int32
}

// RoundSource is the store access a round-view capture needs: the record
// counting and filling pass of a trust-view capture, plus the usage log one
// agent keeps about another (Store.Usage). Usage must observe the same
// quiescent stores as the record passes.
type RoundSource struct {
	CaptureSource
	Usage func(holder, about AgentID) UsageLog
}

// CaptureRoundView freezes a population's full round-read state: the
// per-edge records via CaptureTrustView (two passes, byte-identical at
// every worker count) and the per-edge usage counters in one more parallel
// pass over the CSR rows. Arenas are drawn from pool when non-nil; release
// them with Release. The adjacency rows must be in ascending target order
// (the population CSR is; EdgeIndex relies on it). A capture whose record
// total overflows the arena offset space returns ErrArenaOverflow.
func CaptureRoundView(adjOff []int32, adjTo []AgentID, src RoundSource, norm Normalizer, workers int, pool *ArenaPool) (*RoundView, error) {
	ne := len(adjTo)
	tv, err := CaptureTrustView(adjOff, adjTo, src.CaptureSource, workers, pool)
	if err != nil {
		return nil, err
	}
	v := &RoundView{
		TrustView: tv,
		norm:      norm,
		resp:      pool.GetOffsets(ne),
		abus:      pool.GetOffsets(ne),
	}
	parallelRows(adjOff, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			base := adjOff[u]
			for k, w := range adjTo[base:adjOff[u+1]] {
				l := src.Usage(AgentID(u), w)
				e := int(base) + k
				v.resp[e], v.abus[e] = int32(l.Responsible), int32(l.Abusive)
			}
		}
	})
	return v, nil
}

// Release returns the view's arenas — the embedded trust view's and the
// usage arrays — to the pool they were captured from and invalidates the
// view. Only the capture's owner may call it, exactly once; the EpochHandle
// refcount in the sim layer enforces this for the round path.
func (v *RoundView) Release() {
	pool := v.TrustView.pool
	pool.putOffsets(v.resp)
	pool.putOffsets(v.abus)
	v.resp, v.abus = nil, nil
	v.TrustView.Release()
}

// EdgeIndex locates the directed edge u → w in the CSR edge array, or
// ok=false when w is not a neighbor of u. Rows are in ascending target
// order, so the lookup is a binary search within u's row.
func (v *TrustView) EdgeIndex(u, w AgentID) (int32, bool) {
	lo, hi := v.adjOff[u], v.adjOff[u+1]
	i, ok := slices.BinarySearch(v.adjTo[lo:hi], w)
	if !ok {
		return 0, false
	}
	return lo + int32(i), true
}

// BestTW returns the best trustworthiness estimate the source agent of
// directed edge e holds about the edge's target on task t: the direct
// record for t's exact type when present, otherwise characteristic
// inference — bit-identical to Store.BestTW over the captured records
// (TestRoundViewMatchesLiveStores).
func (v *RoundView) BestTW(e int32, t task.Task) (float64, bool) {
	recs := v.EdgeRecords(e)
	if i, ok := searchCompact(v.tasks, recs, t.Type()); ok {
		return recs[i].TW(v.norm), true
	}
	if len(recs) == 0 {
		return 0, false
	}
	return InferFromCompact(v.tasks, recs, t, v.norm)
}

// Usage returns the captured usage log of directed edge e: how the edge's
// target has used the source agent's resources up to the capture.
func (v *RoundView) Usage(e int32) UsageLog {
	return UsageLog{Responsible: int(v.resp[e]), Abusive: int(v.abus[e])}
}

// ReverseTW returns the reverse-evaluation trustworthiness of directed edge
// e (eq. 1's TW̃ from the captured usage log) — bit-identical to
// Store.ReverseTW at capture time.
func (v *RoundView) ReverseTW(e int32) float64 {
	return v.Usage(e).TW()
}
