package core

import (
	"math"
	"testing"

	"siot/internal/task"
)

func newTestStore() *Store {
	return NewStore(0, DefaultUpdateConfig())
}

func TestStoreObserveCreatesRecord(t *testing.T) {
	s := newTestStore()
	tk := task.Uniform(1, task.CharGPS)
	r := s.Observe(7, tk, Outcome{Success: true, Gain: 1}, PerfectEnv())
	if r.Count != 1 {
		t.Fatalf("count = %d", r.Count)
	}
	got, ok := s.Record(7, 1)
	if !ok || got.Count != 1 {
		t.Fatal("record not stored")
	}
	if got.Task.Type() != 1 {
		t.Fatal("task not retained")
	}
}

func TestStoreObserveAccumulates(t *testing.T) {
	s := newTestStore()
	tk := task.Uniform(1, task.CharGPS)
	for i := 0; i < 50; i++ {
		s.Observe(7, tk, Outcome{Success: true, Gain: 0.9, Damage: 0.1, Cost: 0.1}, PerfectEnv())
	}
	r, _ := s.Record(7, 1)
	if r.Count != 50 {
		t.Fatalf("count = %d", r.Count)
	}
	if math.Abs(r.Exp.S-1) > 0.01 {
		t.Fatalf("S = %v after 50 successes", r.Exp.S)
	}
}

func TestStoreRecordsSorted(t *testing.T) {
	s := newTestStore()
	s.Observe(7, task.Uniform(3, task.CharGPS), Outcome{}, PerfectEnv())
	s.Observe(7, task.Uniform(1, task.CharImage), Outcome{}, PerfectEnv())
	recs := s.Records(7)
	if len(recs) != 2 || recs[0].Task.Type() != 1 || recs[1].Task.Type() != 3 {
		t.Fatalf("records unordered: %v", recs)
	}
	if s.Records(99) != nil {
		t.Fatal("unknown trustee has records")
	}
}

func TestStoreTrustees(t *testing.T) {
	s := newTestStore()
	s.Observe(9, task.Uniform(1, task.CharGPS), Outcome{}, PerfectEnv())
	s.Observe(3, task.Uniform(1, task.CharGPS), Outcome{}, PerfectEnv())
	got := s.Trustees()
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("trustees = %v", got)
	}
}

func TestStoreSeed(t *testing.T) {
	s := newTestStore()
	tk := task.Uniform(2, task.CharImage)
	s.Seed(5, tk, Expectation{S: 0.9, G: 0.9, D: 0.1, C: 0.1})
	tw, ok := s.DirectTW(5, 2)
	if !ok {
		t.Fatal("seeded record not found")
	}
	if tw < 0.5 {
		t.Fatalf("seeded TW = %v, want high", tw)
	}
	r, _ := s.Record(5, 2)
	if r.Count != 0 {
		t.Fatal("seed counted as delegation")
	}
}

func TestDirectTWUnknown(t *testing.T) {
	s := newTestStore()
	if _, ok := s.DirectTW(1, 1); ok {
		t.Fatal("unknown pair has direct TW")
	}
}

func TestInferTWSingleSharedCharacteristic(t *testing.T) {
	// Paper's example: GPS+image experience lets the trustor judge a
	// traffic-monitoring task needing exactly those characteristics.
	s := newTestStore()
	gps := task.Uniform(1, task.CharGPS)
	img := task.Uniform(2, task.CharImage)
	good := Expectation{S: 0.95, G: 0.9, D: 0.05, C: 0.05}
	s.Seed(7, gps, good)
	s.Seed(7, img, good)

	traffic := task.Uniform(3, task.CharGPS, task.CharImage)
	tw, ok := s.InferTW(7, traffic)
	if !ok {
		t.Fatal("inference failed despite full coverage")
	}
	wantTW := good.Trustworthiness(UnitNormalizer())
	if math.Abs(tw-wantTW) > 1e-9 {
		t.Fatalf("inferred TW = %v, want %v", tw, wantTW)
	}
}

func TestInferTWRequiresFullCoverage(t *testing.T) {
	s := newTestStore()
	s.Seed(7, task.Uniform(1, task.CharGPS), Expectation{S: 1, G: 1})
	traffic := task.Uniform(3, task.CharGPS, task.CharImage)
	if _, ok := s.InferTW(7, traffic); ok {
		t.Fatal("inference succeeded with uncovered characteristic")
	}
}

func TestInferTWWeightedCombination(t *testing.T) {
	// The new task weights GPS 3x image; per-characteristic estimates come
	// from different records.
	s := newTestStore()
	n := UnitNormalizer()
	gpsExp := Expectation{S: 1, G: 1, D: 0, C: 0}    // profit 1 → TW 1
	imgExp := Expectation{S: 0, G: 0, D: 1, C: 1}    // profit -2 → TW 0
	s.Seed(7, task.Uniform(1, task.CharGPS), gpsExp) // TW 1 on gps
	s.Seed(7, task.Uniform(2, task.CharImage), imgExp)

	mixed := task.MustNew(3, map[task.Characteristic]float64{
		task.CharGPS:   3,
		task.CharImage: 1,
	})
	tw, ok := s.InferTW(7, mixed)
	if !ok {
		t.Fatal("inference failed")
	}
	want := 0.75*gpsExp.Trustworthiness(n) + 0.25*imgExp.Trustworthiness(n)
	if math.Abs(tw-want) > 1e-9 {
		t.Fatalf("TW = %v, want %v", tw, want)
	}
}

func TestInferTWMultiRecordCharacteristic(t *testing.T) {
	// Two experienced tasks both contain the characteristic with different
	// weights: eq. 4's inner fraction is the weight-weighted average.
	s := newTestStore()
	n := UnitNormalizer()
	// Task A: gps weight 1.0, TW 1.
	s.Seed(7, task.Uniform(1, task.CharGPS), Expectation{S: 1, G: 1})
	// Task B: gps weight 0.5 (uniform over two chars), TW 0.
	s.Seed(7, task.Uniform(2, task.CharGPS, task.CharAudio), Expectation{S: 0, D: 1, C: 1})

	probe := task.Uniform(3, task.CharGPS)
	tw, ok := s.InferTW(7, probe)
	if !ok {
		t.Fatal("inference failed")
	}
	// Weighted average: (1.0*1 + 0.5*0) / 1.5.
	want := (1.0*1 + 0.5*0) / 1.5
	_ = n
	if math.Abs(tw-want) > 1e-9 {
		t.Fatalf("TW = %v, want %v", tw, want)
	}
}

func TestInferTWNoRecords(t *testing.T) {
	s := newTestStore()
	if _, ok := s.InferTW(1, task.Uniform(1, task.CharGPS)); ok {
		t.Fatal("inference from empty store succeeded")
	}
}

func TestBestTWPrefersDirect(t *testing.T) {
	s := newTestStore()
	tk := task.Uniform(1, task.CharGPS)
	s.Seed(7, tk, Expectation{S: 1, G: 1}) // direct: TW 1
	// An unrelated bad gps record would drag inference down; direct must win.
	s.Seed(7, task.Uniform(2, task.CharGPS, task.CharImage), Expectation{S: 0, D: 1, C: 1})
	tw, ok := s.BestTW(7, tk)
	if !ok || tw != 1 {
		t.Fatalf("BestTW = %v, %v; want direct 1", tw, ok)
	}
	// For an unseen type it falls back to inference.
	probe := task.Uniform(9, task.CharImage)
	if _, ok := s.BestTW(7, probe); !ok {
		t.Fatal("BestTW fallback failed")
	}
}

func TestUsageLogTW(t *testing.T) {
	if got := (UsageLog{}).TW(); got != 1 {
		t.Fatalf("empty log TW = %v, want 1 (innocent until proven guilty)", got)
	}
	if got := (UsageLog{Responsible: 8, Abusive: 0}).TW(); got != 1 {
		t.Fatalf("TW = %v, want 1", got)
	}
	if got := (UsageLog{Responsible: 0, Abusive: 8}).TW(); got != 1.0/9 {
		t.Fatalf("TW = %v, want 1/9", got)
	}
	if got := (UsageLog{Responsible: 0, Abusive: 1}).TW(); got != 0.5 {
		t.Fatalf("TW = %v, want 0.5 after one abuse", got)
	}
}

func TestObserveUsageAndReverseTW(t *testing.T) {
	s := newTestStore()
	for i := 0; i < 9; i++ {
		s.ObserveUsage(4, false)
	}
	s.ObserveUsage(4, true)
	got := s.ReverseTW(4)
	want := (9.0 + 1) / (10.0 + 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ReverseTW = %v, want %v", got, want)
	}
	if s.ReverseTW(99) != 1 {
		t.Fatal("unknown trustor not optimistic")
	}
}

func TestStoreOwnerAndConfig(t *testing.T) {
	s := NewStore(42, DefaultUpdateConfig())
	if s.Owner() != 42 {
		t.Fatal("owner wrong")
	}
	if s.Config().Norm == nil {
		t.Fatal("config norm nil")
	}
	// Nil norm is defaulted.
	s2 := NewStore(1, UpdateConfig{Betas: UniformBetas(0.1)})
	if s2.Config().Norm == nil {
		t.Fatal("nil normalizer not defaulted")
	}
}
