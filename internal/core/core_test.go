package core

import (
	"math"
	"testing"
	"testing/quick"

	"siot/internal/env"
	"siot/internal/rng"
)

func TestNetProfit(t *testing.T) {
	e := Expectation{S: 0.8, G: 1, D: 0.5, C: 0.1}
	want := 0.8*1 - 0.2*0.5 - 0.1
	if got := e.NetProfit(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NetProfit = %v, want %v", got, want)
	}
}

func TestNetProfitExtremes(t *testing.T) {
	worst := Expectation{S: 0, G: 0, D: 1, C: 1}
	if worst.NetProfit() != -2 {
		t.Fatalf("worst profit = %v, want -2", worst.NetProfit())
	}
	best := Expectation{S: 1, G: 1, D: 1, C: 0}
	if best.NetProfit() != 1 {
		t.Fatalf("best profit = %v, want 1", best.NetProfit())
	}
}

func TestUnitNormalizer(t *testing.T) {
	n := UnitNormalizer()
	if got := n.Normalize(-2); got != 0 {
		t.Fatalf("Normalize(-2) = %v", got)
	}
	if got := n.Normalize(1); got != 1 {
		t.Fatalf("Normalize(1) = %v", got)
	}
	if got := n.Normalize(-0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Normalize(-0.5) = %v, want 0.5", got)
	}
	// Clamping.
	if n.Normalize(-5) != 0 || n.Normalize(5) != 1 {
		t.Fatal("normalizer does not clamp")
	}
}

func TestDegenerateNormalizer(t *testing.T) {
	n := LinearNormalizer{ProfitLo: 1, ProfitHi: 1}
	if n.Normalize(0.5) != 0 {
		t.Fatal("degenerate normalizer did not return 0")
	}
}

func TestTrustworthinessMonotoneInSuccess(t *testing.T) {
	n := UnitNormalizer()
	lo := Expectation{S: 0.2, G: 0.8, D: 0.5, C: 0.1}
	hi := Expectation{S: 0.9, G: 0.8, D: 0.5, C: 0.1}
	if lo.Trustworthiness(n) >= hi.Trustworthiness(n) {
		t.Fatal("higher success rate did not raise trustworthiness")
	}
}

func TestBetasValidate(t *testing.T) {
	if UniformBetas(0.1).Validate() != nil {
		t.Fatal("valid betas rejected")
	}
	if UniformBetas(1).Validate() == nil {
		t.Fatal("beta = 1 accepted (history would never fade)")
	}
	if UniformBetas(-0.1).Validate() == nil {
		t.Fatal("negative beta accepted")
	}
	if (Betas{S: 0.1, G: 0.2, D: math.NaN(), C: 0.3}).Validate() == nil {
		t.Fatal("NaN beta accepted")
	}
}

func TestExpectationValidate(t *testing.T) {
	if (Expectation{S: 0.5, G: 0.5, D: 0.5, C: 0.5}).Validate() != nil {
		t.Fatal("valid expectation rejected")
	}
	if (Expectation{S: math.NaN()}).Validate() == nil {
		t.Fatal("NaN expectation accepted")
	}
	if (Expectation{G: math.Inf(1)}).Validate() == nil {
		t.Fatal("infinite expectation accepted")
	}
}

func TestUpdateMatchesEq19to22(t *testing.T) {
	cfg := DefaultUpdateConfig()
	cfg.Betas = UniformBetas(0.6)
	old := Expectation{S: 1, G: 0.5, D: 0.5, C: 0.5}
	obs := Outcome{Success: false, Gain: 0, Damage: 0.8, Cost: 0.2}
	got := Update(old, obs, PerfectEnv(), cfg)
	want := Expectation{
		S: 0.6*1 + 0.4*0,
		G: 0.6*0.5 + 0.4*0,
		D: 0.6*0.5 + 0.4*0.8,
		C: 0.6*0.5 + 0.4*0.2,
	}
	for name, pair := range map[string][2]float64{
		"S": {got.S, want.S}, "G": {got.G, want.G},
		"D": {got.D, want.D}, "C": {got.C, want.C},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, pair[0], pair[1])
		}
	}
}

func TestUpdateConvergesToObservedRate(t *testing.T) {
	// Repeated identical observations converge the expectation to the
	// observation, at rate governed by beta.
	cfg := DefaultUpdateConfig()
	e := cfg.Init
	obs := Outcome{Success: true, Gain: 0.9, Damage: 0.1, Cost: 0.2}
	for i := 0; i < 400; i++ {
		e = Update(e, obs, PerfectEnv(), cfg)
	}
	if math.Abs(e.S-1) > 1e-9 || math.Abs(e.G-0.9) > 1e-9 ||
		math.Abs(e.D-0.1) > 1e-9 || math.Abs(e.C-0.2) > 1e-9 {
		t.Fatalf("did not converge: %+v", e)
	}
}

func TestUpdateEnvCorrectionRecoversTrueRate(t *testing.T) {
	// In environment 0.4 a success observation is corrected to 1/0.4 = 2.5,
	// so a success observed with probability S·E has corrected mean S.
	cfg := DefaultUpdateConfig()
	cfg.EnvCorrection = true
	ectx := EnvContext{Trustor: 1, Trustee: 0.4}
	e := Expectation{S: 0, G: 0, D: 0, C: 0}
	// Stochastic successes with P(success) = 0.32 = 0.8 * 0.4. The corrected
	// series has mean 0.8; we check the time-average of the tracked S.
	r := rng.New(1, "envcorr")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		obs := Outcome{Success: r.Float64() < 0.32}
		e = Update(e, obs, ectx, cfg)
		if i >= n/2 {
			sum += e.S
		}
	}
	avg := sum / (n / 2)
	if avg < 0.7 || avg > 0.9 {
		t.Fatalf("corrected S time-average = %v, want near 0.8", avg)
	}
}

func TestUpdateWithoutCorrectionTracksDegradedRate(t *testing.T) {
	cfg := DefaultUpdateConfig()
	ectx := EnvContext{Trustor: 1, Trustee: 0.4}
	e := Expectation{S: 1}
	r := rng.New(2, "noenvcorr")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		obs := Outcome{Success: r.Float64() < 0.32} // P = S_actual * E
		e = Update(e, obs, ectx, cfg)
		if i >= n/2 {
			sum += e.S
		}
	}
	avg := sum / (n / 2)
	if avg < 0.25 || avg > 0.4 {
		t.Fatalf("uncorrected S time-average = %v, want near 0.32", avg)
	}
}

func TestUpdateEnvCorrectionDirections(t *testing.T) {
	// Positive factors are divided by the environment (credit under
	// hostility); negative factors are multiplied (a hostile environment
	// inflated them, so removal shrinks them).
	cfg := DefaultUpdateConfig()
	cfg.EnvCorrection = true
	cfg.Betas = UniformBetas(0) // memoryless: the update shows the corrected obs
	ectx := EnvContext{Trustor: 1, Trustee: 0.5}
	e := Update(Expectation{}, Outcome{Success: true, Gain: 0.4, Damage: 0.6, Cost: 0.2}, ectx, cfg)
	if math.Abs(e.S-2.0) > 1e-12 {
		t.Fatalf("corrected S = %v, want 2.0", e.S)
	}
	if math.Abs(e.G-0.8) > 1e-12 {
		t.Fatalf("corrected G = %v, want 0.8", e.G)
	}
	if math.Abs(e.D-0.3) > 1e-12 {
		t.Fatalf("corrected D = %v, want 0.3 (shrunk)", e.D)
	}
	if math.Abs(e.C-0.1) > 1e-12 {
		t.Fatalf("corrected C = %v, want 0.1 (shrunk)", e.C)
	}
}

func TestUpdateBetaZeroIsMemoryless(t *testing.T) {
	cfg := DefaultUpdateConfig()
	cfg.Betas = UniformBetas(0)
	e := Update(Expectation{S: 0.1, G: 0.1, D: 0.1, C: 0.1},
		Outcome{Success: true, Gain: 1, Damage: 0, Cost: 0.3}, PerfectEnv(), cfg)
	if e.S != 1 || e.G != 1 || e.D != 0 || e.C != 0.3 {
		t.Fatalf("beta=0 did not replace history: %+v", e)
	}
}

func TestUpdatePerFieldBetas(t *testing.T) {
	cfg := DefaultUpdateConfig()
	cfg.Betas = Betas{S: 0, G: 0.9, D: 0.5, C: 0.9}
	old := Expectation{S: 0.5, G: 1, D: 1, C: 1}
	obs := Outcome{Success: true, Gain: 0, Damage: 0, Cost: 0}
	e := Update(old, obs, PerfectEnv(), cfg)
	if e.S != 1 {
		t.Fatalf("S beta ignored: %v", e.S)
	}
	if math.Abs(e.G-0.9) > 1e-12 || math.Abs(e.D-0.5) > 1e-12 || math.Abs(e.C-0.9) > 1e-12 {
		t.Fatalf("per-field betas wrong: %+v", e)
	}
}

func TestEnvContextMin(t *testing.T) {
	c := EnvContext{Trustor: 0.9, Trustee: 0.8, Intermediates: []env.Environment{0.3, 0.95}}
	if c.Min() != 0.3 {
		t.Fatalf("Min = %v, want 0.3", c.Min())
	}
	if PerfectEnv().Min() != 1 {
		t.Fatal("perfect context min != 1")
	}
}

func TestQuickUpdateBoundsWithoutCorrection(t *testing.T) {
	// Without env correction, if history and observation are in [0,1], the
	// update stays in [0,1].
	cfg := DefaultUpdateConfig()
	f := func(s, g, d, c float64, success bool, beta float64) bool {
		clamp := func(x float64) float64 { return math.Mod(math.Abs(x), 1) }
		cfg.Betas = UniformBetas(clamp(beta) * 0.999)
		old := Expectation{S: clamp(s), G: clamp(g), D: clamp(d), C: clamp(c)}
		obs := Outcome{Success: success, Gain: clamp(g * 7), Damage: clamp(d * 3), Cost: clamp(c * 11)}
		e := Update(old, obs, PerfectEnv(), cfg)
		for _, v := range [...]float64{e.S, e.G, e.D, e.C} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizerInUnitRange(t *testing.T) {
	n := UnitNormalizer()
	f := func(p float64) bool {
		v := n.Normalize(p)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
