package core

import (
	"cmp"
	"slices"

	"siot/internal/task"
)

// CompactRecord is the pointer-free arena form of Record: the task is a
// dense task.Ref into the owning catalog instead of an embedded Task value.
// A Record costs ~96 B with two GC-scanned slice headers; a CompactRecord is
// 40 B with no pointers at all, so the multi-million-record stores and
// frozen-view arenas of a 1M-node population are invisible to the garbage
// collector and roughly half the size.
//
// A CompactRecord is only meaningful alongside the catalog (or a catalog
// Tasks() snapshot) its Ref was interned into — the store that owns it, or
// the TrustView that captured it, carries that resolution table.
type CompactRecord struct {
	Exp   Expectation
	Ref   task.Ref
	Count uint32
}

// TW returns the record's trustworthiness under eq. 18 — identical to
// Record.TW, which depends only on the expectation.
func (r CompactRecord) TW(n Normalizer) float64 { return r.Exp.Trustworthiness(n) }

// materialize widens a compact record back to the fat Record form. The Task
// value shares the catalog-owned characteristic and weight slices, so
// materializing allocates nothing.
func materialize(tasks []task.Task, r CompactRecord) Record {
	return Record{Task: tasks[r.Ref], Exp: r.Exp, Count: int(r.Count)}
}

// searchCompact locates the record for typ in a sorted-by-type compact
// record slice — the CompactRecord counterpart of searchRecord. tasks is the
// catalog snapshot resolving the records' refs.
func searchCompact(tasks []task.Task, recs []CompactRecord, typ task.Type) (int, bool) {
	return slices.BinarySearchFunc(recs, typ, func(r CompactRecord, t task.Type) int {
		return cmp.Compare(tasks[r.Ref].Type(), t)
	})
}

// CharTWCompact is CharTW over compact records: the weighted-average
// trustworthiness of one characteristic (the inner fraction of eq. 4),
// bit-identical to the fat path — the floats come from the same Expectation
// and the same task weights, resolved through tasks instead of an embedded
// Task.
func CharTWCompact(tasks []task.Task, recs []CompactRecord, c task.Characteristic, n Normalizer) (float64, bool) {
	num, den := 0.0, 0.0
	for _, r := range recs {
		if w := tasks[r.Ref].Weight(c); w > 0 {
			num += w * r.TW(n)
			den += w
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// InferFromCompact is InferFromRecords over compact records (eq. 4):
// inferred trustworthiness of t from experienced tasks sharing its
// characteristics, every characteristic covered or ok=false.
func InferFromCompact(tasks []task.Task, recs []CompactRecord, t task.Task, n Normalizer) (float64, bool) {
	total := 0.0
	for _, c := range t.Characteristics() {
		est, ok := CharTWCompact(tasks, recs, c, n)
		if !ok {
			return 0, false
		}
		total += t.Weight(c) * est
	}
	return total, true
}

// hopTWCompact is Searcher.hopTW over compact records: one hop under
// traditional or conservative rules, reading the frozen arena.
func (s *Searcher) hopTWCompact(tasks []task.Task, recs []CompactRecord, t task.Task, p Policy) (float64, bool) {
	if len(recs) == 0 {
		return 0, false
	}
	if p == PolicyTraditional {
		typ := t.Type()
		for _, r := range recs {
			if tasks[r.Ref].Type() == typ {
				return r.TW(s.Norm), true
			}
		}
		return 0, false
	}
	return InferFromCompact(tasks, recs, t, s.Norm)
}
