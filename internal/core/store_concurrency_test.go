package core

import (
	"sync"
	"testing"

	"siot/internal/task"
)

// TestStoreConcurrentAccess hammers one store from concurrent readers and
// writers; run under -race it proves the sharded-mutex layer holds.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(1, DefaultUpdateConfig())
	tasks := []task.Task{
		task.Uniform(0, task.CharGPS),
		task.Uniform(1, task.CharGPS, task.CharImage),
		task.Uniform(2, task.CharImage, task.CharCompute),
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				trustee := AgentID(i % 17)
				s.Observe(trustee, tasks[i%len(tasks)], Outcome{Success: i%2 == 0, Gain: 0.5, Cost: 0.1}, PerfectEnv())
				s.ObserveUsage(AgentID(w), i%3 == 0)
			}
		}(w)
		go func() {
			defer wg.Done()
			var buf []Record
			for i := 0; i < 200; i++ {
				trustee := AgentID(i % 17)
				buf = s.AppendRecords(trustee, buf[:0])
				s.InferTW(trustee, tasks[1])
				s.BestTW(trustee, tasks[2])
				s.ReverseTW(AgentID(i % 4))
				s.Trustees()
			}
		}()
	}
	wg.Wait()
	if s.NumRecords() == 0 {
		t.Fatal("no records written")
	}
	for _, trustee := range s.Trustees() {
		recs := s.Records(trustee)
		for i := 1; i < len(recs); i++ {
			if recs[i-1].Task.Type() >= recs[i].Task.Type() {
				t.Fatalf("records about %d not sorted by task type", trustee)
			}
		}
	}
}

// TestStoreAppendRecordsReuse verifies the allocation-free read path reuses
// the caller's buffer and returns the same ordered data as Records.
func TestStoreAppendRecordsReuse(t *testing.T) {
	s := NewStore(1, DefaultUpdateConfig())
	tk0 := task.Uniform(4, task.CharGPS)
	tk1 := task.Uniform(2, task.CharImage)
	s.Seed(7, tk0, Expectation{S: 0.8, G: 0.8, D: 0.2})
	s.Seed(7, tk1, Expectation{S: 0.6, G: 0.5, D: 0.4})

	buf := make([]Record, 0, 8)
	got := s.AppendRecords(7, buf)
	want := s.Records(7)
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("lengths differ: append %d, records %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Task.Type() != want[i].Task.Type() || got[i].Exp != want[i].Exp {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if got[0].Task.Type() != 2 || got[1].Task.Type() != 4 {
		t.Fatalf("records not ordered by task type: %v, %v", got[0].Task.Type(), got[1].Task.Type())
	}
	if &buf[:1][0] != &got[:1][0] {
		t.Fatal("AppendRecords did not reuse the caller's buffer")
	}
	if extra := s.AppendRecords(99, got); len(extra) != len(got) {
		t.Fatal("unknown trustee extended the buffer")
	}
}
