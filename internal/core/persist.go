package core

import (
	"encoding/json"
	"fmt"
	"io"

	"siot/internal/task"
)

// This file implements store persistence. IoT devices reboot, lose power,
// and migrate; the trust state an agent has accumulated (its experience
// records and usage logs) is expensive to re-learn, so stores snapshot to a
// stable JSON format and restore from it. The update configuration is NOT
// part of the snapshot — it is code/configuration, not state — and is
// supplied again at restore time.

// snapshot is the serialized form of a Store.
type snapshot struct {
	Version int             `json:"version"`
	Owner   AgentID         `json:"owner"`
	Records []recordSnap    `json:"records"`
	Usage   []usageSnapshot `json:"usage"`
}

// recordSnap is one (trustee, task) experience record.
type recordSnap struct {
	Trustee AgentID      `json:"trustee"`
	Task    taskSnapshot `json:"task"`
	S       float64      `json:"s"`
	G       float64      `json:"g"`
	D       float64      `json:"d"`
	C       float64      `json:"c"`
	Count   int          `json:"count"`
}

// taskSnapshot serializes a task's type and weighted characteristics.
type taskSnapshot struct {
	Type    task.Type `json:"type"`
	Chars   []int     `json:"chars"`
	Weights []float64 `json:"weights"`
}

// usageSnapshot is one trustor's usage log.
type usageSnapshot struct {
	Trustor     AgentID `json:"trustor"`
	Responsible int     `json:"responsible"`
	Abusive     int     `json:"abusive"`
}

// snapshotVersion is bumped on breaking format changes.
const snapshotVersion = 1

// Save writes the store's trust state as JSON.
func (s *Store) Save(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion, Owner: s.owner}
	for _, trustee := range s.Trustees() {
		for _, r := range s.Records(trustee) {
			ts := taskSnapshot{Type: r.Task.Type()}
			for _, c := range r.Task.Characteristics() {
				ts.Chars = append(ts.Chars, int(c))
				ts.Weights = append(ts.Weights, r.Task.Weight(c))
			}
			snap.Records = append(snap.Records, recordSnap{
				Trustee: trustee, Task: ts,
				S: r.Exp.S, G: r.Exp.G, D: r.Exp.D, C: r.Exp.C,
				Count: r.Count,
			})
		}
	}
	snap.Usage = append(snap.Usage, s.usageSorted()...)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// LoadStore restores a store from a Save snapshot, attaching the given
// update configuration.
func LoadStore(r io.Reader, cfg UpdateConfig) (*Store, error) {
	var snap snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding store snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	s := NewStore(snap.Owner, cfg)
	for _, rs := range snap.Records {
		if len(rs.Task.Chars) == 0 || len(rs.Task.Chars) != len(rs.Task.Weights) {
			return nil, fmt.Errorf("core: snapshot record for trustee %d has malformed task", rs.Trustee)
		}
		weighted := make(map[task.Characteristic]float64, len(rs.Task.Chars))
		for i, c := range rs.Task.Chars {
			if rs.Task.Weights[i] <= 0 {
				return nil, fmt.Errorf("core: snapshot record for trustee %d has non-positive weight", rs.Trustee)
			}
			weighted[task.Characteristic(c)] = rs.Task.Weights[i]
		}
		tk, err := task.New(rs.Task.Type, weighted)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot record for trustee %d: %w", rs.Trustee, err)
		}
		s.setRecord(rs.Trustee, Record{
			Task:  tk,
			Exp:   Expectation{S: rs.S, G: rs.G, D: rs.D, C: rs.C},
			Count: rs.Count,
		})
	}
	for _, us := range snap.Usage {
		if us.Responsible < 0 || us.Abusive < 0 {
			return nil, fmt.Errorf("core: snapshot usage log for trustor %d has negative counts", us.Trustor)
		}
		if s.usage == nil {
			s.usage = make(map[AgentID]*UsageLog, len(snap.Usage))
		}
		s.usage[us.Trustor] = &UsageLog{Responsible: us.Responsible, Abusive: us.Abusive}
	}
	return s, nil
}
