package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"siot/internal/task"
)

// compactFixture is one random record set in both forms: the fat reference
// records and their compact twins interned into one catalog.
type compactFixture struct {
	cat     *task.Catalog
	fat     []Record
	compact []CompactRecord
	tasks   []task.Task // catalog snapshot
}

func buildCompactFixture(seed uint64, nRecs int) *compactFixture {
	r := rand.New(rand.NewPCG(seed, 0x7a))
	universe := []task.Task{
		task.Uniform(1, task.CharGPS),
		task.Uniform(2, task.CharImage),
		task.MustNew(3, map[task.Characteristic]float64{task.CharGPS: 0.3, task.CharCompute: 0.7}),
		task.MustNew(4, map[task.Characteristic]float64{task.CharCompute: 0.5, task.CharStorage: 0.5}),
		task.Uniform(5, task.CharImage, task.CharVelocity),
	}
	f := &compactFixture{cat: task.NewCatalog()}
	for i := 0; i < nRecs && i < len(universe); i++ {
		tk := universe[i] // distinct types, ascending — keeps the set sorted
		s := r.Float64()
		exp := Expectation{S: s, G: r.Float64(), D: r.Float64(), C: 0.2 * r.Float64()}
		f.fat = append(f.fat, Record{Task: tk, Exp: exp, Count: i})
		f.compact = append(f.compact, CompactRecord{Ref: f.cat.Intern(tk), Exp: exp, Count: uint32(i)})
	}
	f.tasks = f.cat.Tasks()
	return f
}

// TestCompactMatchesFatReference pins the acceptance contract of the compact
// arena form: every trust computation over CompactRecord slices —
// per-characteristic averaging (eq. 4's inner fraction), full inference
// (eqs. 2–4), the per-hop search value, and the binary search — returns
// results bit-identical to the fat-Record reference implementation it
// replaced. The floats flow through the same expressions; only the task
// resolution differs.
func TestCompactMatchesFatReference(t *testing.T) {
	probes := []task.Task{
		task.Uniform(1, task.CharGPS),
		task.Uniform(7, task.CharGPS, task.CharCompute),
		task.MustNew(8, map[task.Characteristic]float64{task.CharImage: 0.9, task.CharStorage: 0.1}),
		task.Uniform(9, task.CharAudio), // uncovered
	}
	chars := []task.Characteristic{
		task.CharGPS, task.CharImage, task.CharCompute, task.CharStorage, task.CharAudio,
	}
	norm := UnitNormalizer()
	s := &Searcher{Norm: norm}
	for seed := uint64(1); seed <= 8; seed++ {
		for size := 0; size <= 5; size++ {
			f := buildCompactFixture(seed, size)
			for _, c := range chars {
				fatV, fatOK := CharTW(f.fat, c, norm)
				cmpV, cmpOK := CharTWCompact(f.tasks, f.compact, c, norm)
				if fatV != cmpV || fatOK != cmpOK {
					t.Fatalf("seed %d size %d: CharTW(%d) compact (%v, %v) != fat (%v, %v)",
						seed, size, c, cmpV, cmpOK, fatV, fatOK)
				}
			}
			for _, tk := range probes {
				fatV, fatOK := InferFromRecords(f.fat, tk, norm)
				cmpV, cmpOK := InferFromCompact(f.tasks, f.compact, tk, norm)
				if fatV != cmpV || fatOK != cmpOK {
					t.Fatalf("seed %d size %d: InferTW(task %d) compact (%v, %v) != fat (%v, %v)",
						seed, size, tk.Type(), cmpV, cmpOK, fatV, fatOK)
				}
				for _, p := range []Policy{PolicyTraditional, PolicyConservative} {
					fatV, fatOK := s.hopTW(f.fat, tk, p)
					cmpV, cmpOK := s.hopTWCompact(f.tasks, f.compact, tk, p)
					if fatV != cmpV || fatOK != cmpOK {
						t.Fatalf("seed %d size %d: hopTW(task %d, %s) compact (%v, %v) != fat (%v, %v)",
							seed, size, tk.Type(), p, cmpV, cmpOK, fatV, fatOK)
					}
				}
				fatI, fatOK := searchRecord(f.fat, tk.Type())
				cmpI, cmpOK := searchCompact(f.tasks, f.compact, tk.Type())
				if fatI != cmpI || fatOK != cmpOK {
					t.Fatalf("seed %d size %d: search(type %d) compact (%d, %v) != fat (%d, %v)",
						seed, size, tk.Type(), cmpI, cmpOK, fatI, fatOK)
				}
			}
		}
	}
}

// TestMaterializeRoundTrip: widening a compact record recovers the exact fat
// record, sharing the catalog's task slices.
func TestMaterializeRoundTrip(t *testing.T) {
	f := buildCompactFixture(3, 5)
	for i := range f.fat {
		got := materialize(f.tasks, f.compact[i])
		if got.Exp != f.fat[i].Exp || got.Count != f.fat[i].Count || !got.Task.Equal(f.fat[i].Task) {
			t.Fatalf("record %d materialized to %+v, want %+v", i, got, f.fat[i])
		}
	}
}

// overflowSource is a synthetic CaptureSource whose per-edge record counts
// sum past the int32 arena offset space without ever allocating records.
func overflowSource(perEdge int) CaptureSource {
	return CaptureSource{
		Catalog: task.NewCatalog(),
		Count:   func(holder, about AgentID) int { return perEdge },
		Append: func(holder, about AgentID, buf []CompactRecord) []CompactRecord {
			panic("fill pass must not run after an overflow")
		},
	}
}

// TestCaptureArenaOverflow: a capture whose record total exceeds the int32
// offset space reports ErrArenaOverflow instead of wrapping the prefix sum —
// the fix for the silent-truncation class. The error surfaces before the
// fill pass, so no multi-GB arena is ever allocated.
func TestCaptureArenaOverflow(t *testing.T) {
	// 3 agents in a directed triangle, 6 edges; 400M records per edge puts
	// the total at 2.4e9 > MaxInt32.
	adjOff := []int32{0, 2, 4, 6}
	adjTo := []AgentID{1, 2, 0, 2, 0, 1}
	v, err := CaptureTrustView(adjOff, adjTo, overflowSource(400_000_000), 1, nil)
	if !errors.Is(err, ErrArenaOverflow) {
		t.Fatalf("CaptureTrustView error = %v, want ErrArenaOverflow", err)
	}
	if v != nil {
		t.Fatal("overflowing capture returned a non-nil view")
	}
	rv, err := CaptureRoundView(adjOff, adjTo, RoundSource{
		CaptureSource: overflowSource(400_000_000),
		Usage:         func(holder, about AgentID) UsageLog { panic("usage pass must not run") },
	}, UnitNormalizer(), 1, nil)
	if !errors.Is(err, ErrArenaOverflow) {
		t.Fatalf("CaptureRoundView error = %v, want ErrArenaOverflow", err)
	}
	if rv != nil {
		t.Fatal("overflowing round capture returned a non-nil view")
	}
}

// TestCaptureBelowOverflowSucceeds: the guard triggers on genuine overflow
// only — a large-but-legal capture still goes through the checked path.
func TestCaptureBelowOverflowSucceeds(t *testing.T) {
	cat := task.NewCatalog()
	tk := task.Uniform(1, task.CharGPS)
	ref := cat.Intern(tk)
	adjOff := []int32{0, 1, 2}
	adjTo := []AgentID{1, 0}
	src := CaptureSource{
		Catalog: cat,
		Count:   func(holder, about AgentID) int { return 2 },
		Append: func(holder, about AgentID, buf []CompactRecord) []CompactRecord {
			return append(buf, CompactRecord{Ref: ref}, CompactRecord{Ref: ref, Count: 1})
		},
	}
	v, err := CaptureTrustView(adjOff, adjTo, src, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.EdgeRecords(0)); got != 2 {
		t.Fatalf("edge 0 holds %d records, want 2", got)
	}
}
