package core

import (
	"testing"
	"testing/quick"
)

func TestSortCandidates(t *testing.T) {
	c := []Candidate{{ID: 3, TW: 0.5}, {ID: 1, TW: 0.9}, {ID: 2, TW: 0.5}}
	SortCandidates(c)
	if c[0].ID != 1 || c[1].ID != 2 || c[2].ID != 3 {
		t.Fatalf("sorted = %v", c)
	}
}

func TestSelectMutualPicksBestAccepted(t *testing.T) {
	cands := []Candidate{{ID: 1, TW: 0.9}, {ID: 2, TW: 0.8}, {ID: 3, TW: 0.7}}
	// Trustee 1 refuses (reverse evaluation fails), 2 accepts: the paper's
	// Fig. 2 walk-through.
	got, ok := SelectMutual(cands, func(id AgentID) bool { return id != 1 })
	if !ok || got.ID != 2 {
		t.Fatalf("selected %v, want 2", got.ID)
	}
}

func TestSelectMutualAllRefuse(t *testing.T) {
	cands := []Candidate{{ID: 1, TW: 0.9}}
	if _, ok := SelectMutual(cands, func(AgentID) bool { return false }); ok {
		t.Fatal("selection succeeded with universal refusal")
	}
}

func TestSelectMutualNilAcceptIsUnilateral(t *testing.T) {
	cands := []Candidate{{ID: 2, TW: 0.8}, {ID: 1, TW: 0.9}}
	got, ok := SelectMutual(cands, nil)
	if !ok || got.ID != 1 {
		t.Fatalf("unilateral selection = %v", got.ID)
	}
}

func TestSelectMutualEmpty(t *testing.T) {
	if _, ok := SelectMutual(nil, nil); ok {
		t.Fatal("selection from no candidates succeeded")
	}
}

func TestSelectMutualDoesNotMutateInput(t *testing.T) {
	cands := []Candidate{{ID: 2, TW: 0.8}, {ID: 1, TW: 0.9}}
	SelectMutual(cands, nil)
	if cands[0].ID != 2 {
		t.Fatal("input slice reordered")
	}
}

func TestBestByNetProfit(t *testing.T) {
	cands := []ExpCandidate{
		{ID: 1, Exp: Expectation{S: 0.9, G: 0.1, D: 0.9, C: 0.5}}, // high S, bad profit
		{ID: 2, Exp: Expectation{S: 0.6, G: 0.9, D: 0.1, C: 0.1}}, // better profit
	}
	got, ok := BestByNetProfit(cands)
	if !ok || got.ID != 2 {
		t.Fatalf("BestByNetProfit picked %v", got.ID)
	}
}

func TestBestBySuccessRate(t *testing.T) {
	cands := []ExpCandidate{
		{ID: 1, Exp: Expectation{S: 0.9, G: 0.1, D: 0.9, C: 0.5}},
		{ID: 2, Exp: Expectation{S: 0.6, G: 0.9, D: 0.1, C: 0.1}},
	}
	got, ok := BestBySuccessRate(cands)
	if !ok || got.ID != 1 {
		t.Fatalf("BestBySuccessRate picked %v", got.ID)
	}
}

func TestBestEmpty(t *testing.T) {
	if _, ok := BestByNetProfit(nil); ok {
		t.Fatal("best of none succeeded")
	}
	if _, ok := BestBySuccessRate(nil); ok {
		t.Fatal("best of none succeeded")
	}
}

func TestBestTieBreaksByID(t *testing.T) {
	e := Expectation{S: 0.5, G: 0.5, D: 0.5, C: 0.5}
	cands := []ExpCandidate{{ID: 9, Exp: e}, {ID: 2, Exp: e}}
	got, _ := BestByNetProfit(cands)
	if got.ID != 2 {
		t.Fatalf("tie broke to %v, want 2", got.ID)
	}
}

func TestShouldDelegateEq24(t *testing.T) {
	self := Expectation{S: 0.7, G: 0.5, D: 0.2, C: 0.1}
	better := Expectation{S: 0.9, G: 0.8, D: 0.1, C: 0.1}
	worse := Expectation{S: 0.2, G: 0.3, D: 0.8, C: 0.5}
	if !ShouldDelegate(self, better) {
		t.Fatal("profitable delegation rejected")
	}
	if ShouldDelegate(self, worse) {
		t.Fatal("unprofitable delegation accepted")
	}
	// Strict inequality: equal profit means do it yourself.
	if ShouldDelegate(self, self) {
		t.Fatal("equal profit delegated")
	}
}

func TestDecideWithSelf(t *testing.T) {
	self := Expectation{S: 0.5, G: 0.5, D: 0.5, C: 0.2}
	strong := ExpCandidate{ID: 3, Exp: Expectation{S: 0.95, G: 0.9, D: 0.05, C: 0.05}}
	weak := ExpCandidate{ID: 4, Exp: Expectation{S: 0.1, G: 0.1, D: 0.9, C: 0.5}}

	got, delegated := DecideWithSelf(self, 0, []ExpCandidate{weak, strong})
	if !delegated || got.ID != 3 {
		t.Fatalf("decide = %v delegated=%v", got.ID, delegated)
	}
	got, delegated = DecideWithSelf(self, 0, []ExpCandidate{weak})
	if delegated || got.ID != 0 {
		t.Fatalf("expected self-execution, got %v", got.ID)
	}
	got, delegated = DecideWithSelf(self, 0, nil)
	if delegated || got.ID != 0 {
		t.Fatal("no candidates must mean self-execution")
	}
}

func TestQuickSelectMutualReturnsMaxAccepted(t *testing.T) {
	// Whatever the acceptance pattern, the selected candidate has the
	// maximum TW among accepted candidates.
	f := func(tws []float64, mask uint16) bool {
		if len(tws) == 0 {
			return true
		}
		if len(tws) > 16 {
			tws = tws[:16]
		}
		cands := make([]Candidate, len(tws))
		accepted := make(map[AgentID]bool)
		for i, tw := range tws {
			cands[i] = Candidate{ID: AgentID(i), TW: tw}
			accepted[AgentID(i)] = mask&(1<<i) != 0
		}
		got, ok := SelectMutual(cands, func(id AgentID) bool { return accepted[id] })
		var bestTW float64
		found := false
		for _, c := range cands {
			if accepted[c.ID] && (!found || c.TW > bestTW) {
				bestTW, found = c.TW, true
			}
		}
		if !found {
			return !ok
		}
		return ok && got.TW == bestTW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
