package zigbee

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/rng"
	"siot/internal/task"
)

// Config holds the radio and protocol parameters of the simulated testbed.
// Defaults follow the CC2530 datasheet ballpark: 250 kbit/s over-the-air
// rate, ~29 mA RX / ~34 mA TX at 3 V, 250 m reliable range.
type Config struct {
	Seed        uint64
	BitrateKbps float64
	RangeM      float64
	TxPowerMw   float64
	RxPowerMw   float64
	// CSMA backoff drawn uniformly from [CsmaMinMs, CsmaMaxMs] per attempt.
	CsmaMinMs, CsmaMaxMs Ms
	// AckTimeoutMs is the retransmission timeout; MaxRetries bounds MAC
	// retries for acknowledged frames.
	AckTimeoutMs Ms
	MaxRetries   int
	// LossProb is the per-frame loss probability within range.
	LossProb float64
	// FragSize is the APS fragment payload for honest responders.
	FragSize int
	// ProcessMs is the trustee-side compute time per task.
	ProcessMs Ms
	// RequestBytes/ResponseBytes size the task request and result payloads.
	RequestBytes  int
	ResponseBytes int
	// CostPerActiveMs converts the trustor's measured radio-active time
	// into the normalized cost factor of the trust model (eq. 18's Ĉ).
	CostPerActiveMs float64
}

// DefaultConfig returns the testbed parameters used by the experiments.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		BitrateKbps:     250,
		RangeM:          250,
		TxPowerMw:       102, // ~34 mA * 3 V
		RxPowerMw:       87,  // ~29 mA * 3 V
		CsmaMinMs:       0.3,
		CsmaMaxMs:       2.0,
		AckTimeoutMs:    5,
		MaxRetries:      3,
		LossProb:        0.02,
		FragSize:        64,
		ProcessMs:       12,
		RequestBytes:    24,
		ResponseBytes:   512,
		CostPerActiveMs: 1.0 / 700,
	}
}

// Network is the simulated PAN: a coordinator plus node devices.
type Network struct {
	Sim      *Simulator
	cfg      Config
	r        *rand.Rand
	coord    *Device
	devices  map[DeviceAddr]*Device
	order    []DeviceAddr
	nextAddr DeviceAddr
	msgID    uint32
	// onMessage is the APS delivery hook used by Delegate.
	handlers map[Cluster]func(dst *Device, src DeviceAddr, totalBytes int)
}

// NewNetwork creates a network containing only the coordinator, which
// "scans the RF environment, chooses a channel and a network identifier,
// and starts the network".
func NewNetwork(cfg Config) *Network {
	n := &Network{
		Sim:      NewSimulator(),
		cfg:      cfg,
		r:        rng.New(cfg.Seed, "zigbee"),
		devices:  make(map[DeviceAddr]*Device),
		handlers: make(map[Cluster]func(*Device, DeviceAddr, int)),
		nextAddr: 1,
	}
	n.coord = &Device{Addr: CoordAddr, Role: RoleCoordinator, Associated: true,
		reassembly: map[reasmKey]*reasmState{}}
	n.devices[CoordAddr] = n.coord
	n.order = append(n.order, CoordAddr)
	// Channel scan + network start cost a little coordinator airtime.
	n.coord.ActiveMs += 96 // 802.15.4 scan of a few channels
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Coordinator returns the coordinator device.
func (n *Network) Coordinator() *Device { return n.coord }

// AddDevice joins a new node device (not yet associated) at pos with the
// given agent. The returned device's address is stable and unique.
func (n *Network) AddDevice(role Role, pos Position, ag *agent.Agent) *Device {
	if role == RoleCoordinator {
		panic("zigbee: network already has a coordinator")
	}
	d := &Device{
		Addr: n.nextAddr, Role: role, Pos: pos, Agent: ag,
		Sensor:     &OpticalSensor{DarkFloor: 0.1},
		reassembly: map[reasmKey]*reasmState{},
	}
	n.nextAddr++
	n.devices[d.Addr] = d
	n.order = append(n.order, d.Addr)
	return d
}

// Device returns the device with the given address.
func (n *Network) Device(addr DeviceAddr) (*Device, bool) {
	d, ok := n.devices[addr]
	return d, ok
}

// Devices returns all devices in join order (coordinator first).
func (n *Network) Devices() []*Device {
	out := make([]*Device, 0, len(n.order))
	for _, a := range n.order {
		out = append(out, n.devices[a])
	}
	return out
}

// inRange reports whether two devices can hear each other.
func (n *Network) inRange(a, b *Device) bool {
	return dist2(a.Pos, b.Pos) <= n.cfg.RangeM*n.cfg.RangeM
}

// airMs returns the on-air duration of a frame.
func (n *Network) airMs(f Frame) Ms {
	return float64(f.AirBytes()) * 8 / n.cfg.BitrateKbps
}

// backoff draws one CSMA backoff.
func (n *Network) backoff() Ms {
	return n.cfg.CsmaMinMs + (n.cfg.CsmaMaxMs-n.cfg.CsmaMinMs)*n.r.Float64()
}

// transmit sends one MAC frame with CSMA backoff, loss, acknowledgment, and
// bounded retransmission. done(ok) fires when the frame is acknowledged or
// abandoned.
func (n *Network) transmit(f Frame, done func(ok bool)) {
	n.attemptTransmit(f, 0, done)
}

func (n *Network) attemptTransmit(f Frame, attempt int, done func(ok bool)) {
	src, ok := n.devices[f.Src]
	if !ok {
		panic(fmt.Sprintf("zigbee: transmit from unknown device %04x", uint16(f.Src)))
	}
	dst, ok := n.devices[f.Dst]
	if !ok {
		panic(fmt.Sprintf("zigbee: transmit to unknown device %04x", uint16(f.Dst)))
	}
	wait := n.backoff()
	air := n.airMs(f)
	n.Sim.Schedule(wait, func() {
		src.accountTx(air, n.cfg.TxPowerMw)
		delivered := n.inRange(src, dst) && n.r.Float64() >= n.cfg.LossProb
		n.Sim.Schedule(air, func() {
			if delivered {
				dst.accountRx(air, n.cfg.RxPowerMw)
				// MAC ack (11 bytes on air) for unicast data-ish frames.
				if f.Kind != FrameAck {
					ackAir := 11 * 8 / n.cfg.BitrateKbps
					dst.accountTx(ackAir, n.cfg.TxPowerMw)
					src.accountRx(ackAir, n.cfg.RxPowerMw)
				}
				n.deliver(dst, f)
				if done != nil {
					done(true)
				}
				return
			}
			// Lost: retry after the ack timeout.
			if attempt+1 <= n.cfg.MaxRetries {
				n.Sim.Schedule(n.cfg.AckTimeoutMs, func() {
					n.attemptTransmit(f, attempt+1, done)
				})
				return
			}
			if done != nil {
				done(false)
			}
		})
	})
}

// deliver hands a received frame to the APS/application layer.
func (n *Network) deliver(dst *Device, f Frame) {
	switch f.Kind {
	case FrameData:
		key := reasmKey{src: f.Src, id: f.MsgID}
		st, ok := dst.reassembly[key]
		if !ok {
			st = &reasmState{total: f.FragTotal, firstAtMs: n.Sim.Now()}
			dst.reassembly[key] = st
		}
		st.received++
		st.bytes += f.PayloadLen
		if st.received >= st.total {
			delete(dst.reassembly, key)
			if h, ok := n.handlers[f.Cluster]; ok {
				h(dst, f.Src, st.bytes)
			}
		}
	case FrameReport:
		// Reports only make sense at the coordinator.
		if dst.Role == RoleCoordinator {
			// Payload decoding is out of scope; the report itself is
			// attached by SendReport via closure.
		}
	}
}

// Handle registers the application handler for a cluster.
func (n *Network) Handle(c Cluster, h func(dst *Device, src DeviceAddr, totalBytes int)) {
	n.handlers[c] = h
}

// MessageOpts tunes one APS message transfer.
type MessageOpts struct {
	// FragSize is the per-fragment payload; <= 0 uses the config default.
	FragSize int
	// InterFragDelayMs is the sender-side pause between fragments. Honest
	// devices use ~0; fragment-stall attackers use large values to prolong
	// the interaction (§5.6).
	InterFragDelayMs Ms
}

// SendMessage transfers totalBytes from src to dst on cluster c using APS
// fragmentation. onComplete(ok, at) fires when the last fragment is
// acknowledged (ok) or any fragment is abandoned (!ok).
func (n *Network) SendMessage(src, dst DeviceAddr, c Cluster, totalBytes int, opts MessageOpts, onComplete func(ok bool)) {
	fragSize := opts.FragSize
	if fragSize <= 0 {
		fragSize = n.cfg.FragSize
	}
	total := (totalBytes + fragSize - 1) / fragSize
	if total < 1 {
		total = 1
	}
	n.msgID++
	id := n.msgID
	srcDev := n.devices[src]

	var sendFrag func(i int)
	sendFrag = func(i int) {
		size := fragSize
		if i == total-1 {
			size = totalBytes - fragSize*(total-1)
			if size <= 0 {
				size = minInt(totalBytes, fragSize)
			}
		}
		f := Frame{
			Kind: FrameData, Src: src, Dst: dst, Seq: srcDev.nextSeq(),
			Cluster: c, PayloadLen: size, MsgID: id, FragIndex: i, FragTotal: total,
		}
		n.transmit(f, func(ok bool) {
			if !ok {
				if onComplete != nil {
					onComplete(false)
				}
				return
			}
			if i+1 < total {
				n.Sim.Schedule(opts.InterFragDelayMs, func() { sendFrag(i + 1) })
				return
			}
			if onComplete != nil {
				onComplete(true)
			}
		})
	}
	sendFrag(0)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FormPAN associates every unassociated device with the coordinator using
// the beacon-request / beacon / association handshake, then runs the
// simulator until the joins settle. It returns the number of devices that
// joined.
func (n *Network) FormPAN() int {
	joined := 0
	for _, addr := range n.order {
		d := n.devices[addr]
		if d.Role == RoleCoordinator || d.Associated {
			continue
		}
		dev := d
		// beacon-req (broadcast, modeled as a frame to the coordinator) →
		// beacon → assoc-req → assoc-resp.
		seqFrames := []Frame{
			{Kind: FrameBeaconReq, Src: dev.Addr, Dst: CoordAddr, PayloadLen: 8},
			{Kind: FrameBeacon, Src: CoordAddr, Dst: dev.Addr, PayloadLen: 26},
			{Kind: FrameAssocReq, Src: dev.Addr, Dst: CoordAddr, PayloadLen: 16},
			{Kind: FrameAssocResp, Src: CoordAddr, Dst: dev.Addr, PayloadLen: 27},
		}
		var step func(i int)
		step = func(i int) {
			if i >= len(seqFrames) {
				dev.Associated = true
				return
			}
			f := seqFrames[i]
			f.Seq = n.devices[f.Src].nextSeq()
			n.transmit(f, func(ok bool) {
				if ok {
					step(i + 1)
				}
				// A failed join leaves the device unassociated; the caller
				// may re-run FormPAN (the hardware's "automatic
				// reconnection").
			})
		}
		step(0)
	}
	n.Sim.Run()
	for _, d := range n.devices {
		if d.Role != RoleCoordinator && d.Associated {
			joined++
		}
	}
	return joined
}

// ExchangeConfig parameterizes one task delegation over the air.
type ExchangeConfig struct {
	// Light is the ambient light / environment at the trustee.
	Light env.Environment
	// UseOptical routes the task through the trustee's optical sensor, so
	// quality is gated by Light (the Fig. 16 setup).
	UseOptical bool
	// Act tunes the behavioral outcome model.
	Act agent.ActConfig
}

// ExchangeResult is the outcome of a Delegate call.
type ExchangeResult struct {
	// Outcome is the trust-model outcome: success/gain/damage from the
	// trustee's behavior, cost from the measured radio-active time.
	Outcome core.Outcome
	// Delivered is false when the request or response was abandoned by the
	// MAC layer.
	Delivered bool
	// TrustorActiveMs is the trustor's radio-active time consumed by the
	// exchange — the quantity Fig. 14 plots.
	TrustorActiveMs Ms
	// DurationMs is the wall-clock span of the exchange.
	DurationMs Ms
}

// Delegate performs one over-the-air task delegation from trustor to
// trustee and runs the simulator until the exchange completes. Dishonest
// fragment-stall trustees reply in tiny fragments with long pauses,
// inflating the trustor's active time; the measured active time becomes the
// outcome's cost via CostPerActiveMs.
func (n *Network) Delegate(trustor, trustee DeviceAddr, tk task.Task, xc ExchangeConfig) ExchangeResult {
	tDev, ok := n.devices[trustor]
	if !ok {
		panic(fmt.Sprintf("zigbee: unknown trustor %04x", uint16(trustor)))
	}
	eDev, ok := n.devices[trustee]
	if !ok {
		panic(fmt.Sprintf("zigbee: unknown trustee %04x", uint16(trustee)))
	}
	if eDev.Agent == nil {
		panic("zigbee: trustee has no agent")
	}
	activeBefore := tDev.ActiveMs
	startMs := n.Sim.Now()
	var res ExchangeResult

	// Request (single message), then processing, then response.
	n.SendMessage(trustor, trustee, ClusterTaskRequest, n.cfg.RequestBytes, MessageOpts{}, func(ok bool) {
		if !ok {
			return // res.Delivered stays false
		}
		n.Sim.Schedule(n.cfg.ProcessMs, func() {
			effEnv := xc.Light
			if xc.UseOptical && eDev.Sensor != nil {
				effEnv = env.Environment(eDev.Sensor.Quality(xc.Light)).Clamp()
			}
			actRng := rng.Split(n.cfg.Seed, "act", int(trustor)<<16|int(trustee)+int(n.Sim.Processed))
			out := eDev.Agent.Act(tk, effEnv, xc.Act, actRng)
			opts := MessageOpts{}
			if eDev.Agent.Behavior.Malice == agent.MaliceFragmentStall {
				// Fragment packets: tiny payloads, long pauses.
				opts.FragSize = 8
				opts.InterFragDelayMs = 9
			}
			n.SendMessage(trustee, trustor, ClusterTaskResult, n.cfg.ResponseBytes, opts, func(ok bool) {
				if !ok {
					return
				}
				res.Delivered = true
				res.Outcome = out
			})
		})
	})
	n.Sim.Run()

	res.TrustorActiveMs = tDev.ActiveMs - activeBefore
	res.DurationMs = n.Sim.Now() - startMs
	if !res.Delivered {
		res.Outcome = core.Outcome{Success: false, Damage: 0.5}
	}
	// The trustor's real cost is the radio time the exchange consumed.
	res.Outcome.Cost = clamp01(res.TrustorActiveMs * n.cfg.CostPerActiveMs)
	return res
}

// SendReport transmits an application report to the coordinator and stores
// it in the coordinator's host-side buffer on delivery.
func (n *Network) SendReport(from DeviceAddr, p ReportPayload) {
	f := Frame{Kind: FrameReport, Src: from, Dst: CoordAddr,
		Seq: n.devices[from].nextSeq(), Cluster: ClusterReport, PayloadLen: 32}
	n.transmit(f, func(ok bool) {
		if ok {
			n.coord.Reports = append(n.coord.Reports, Report{
				From: from, AtMs: n.Sim.Now(), Payload: p,
			})
		}
	})
	n.Sim.Run()
}

// CollectReports drains the coordinator's report buffer, sorted by arrival
// time (the host computer pulling data through the CP2102 serial link).
func (n *Network) CollectReports() []Report {
	out := n.coord.Reports
	n.coord.Reports = nil
	sort.Slice(out, func(i, j int) bool { return out[i].AtMs < out[j].AtMs })
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
