package zigbee

import (
	"math"
	"testing"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/task"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator()
	var got []int
	s.Schedule(5, func() { got = append(got, 2) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(5, func() { got = append(got, 3) }) // same time: FIFO by seq
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 5 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var at Ms
	s.Schedule(2, func() {
		s.Schedule(3, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Fatalf("nested event at %v, want 5", at)
	}
}

func TestSimulatorRunUntil(t *testing.T) {
	s := NewSimulator()
	ran := 0
	s.Schedule(1, func() { ran++ })
	s.Schedule(10, func() { ran++ })
	s.RunUntil(5)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 5 {
		t.Fatalf("now = %v, want 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSimulatorNegativeDelay(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.Schedule(-5, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Fatal("negative delay mishandled")
	}
}

func TestFrameAirBytesAndString(t *testing.T) {
	f := Frame{Kind: FrameData, Src: 1, Dst: 2, PayloadLen: 64, FragTotal: 1}
	if f.AirBytes() != 64+macHeaderBytes {
		t.Fatalf("air bytes = %d", f.AirBytes())
	}
	if f.String() == "" || FrameKind(99).String() != "unknown" {
		t.Fatal("frame strings wrong")
	}
}

func TestOpticalSensorQuality(t *testing.T) {
	s := &OpticalSensor{DarkFloor: 0.1}
	if q := s.Quality(1); q != 1 {
		t.Fatalf("full light quality = %v", q)
	}
	dark := s.Quality(0.05)
	if dark < 0.1 || dark > 0.2 {
		t.Fatalf("dark quality = %v", dark)
	}
	if s.Quality(1) <= s.Quality(0.3) {
		t.Fatal("quality not increasing with light")
	}
}

func newTestAgent(id core.AgentID, comp float64) *agent.Agent {
	return agent.New(id, agent.KindTrustee, agent.Behavior{BaseCompetence: comp}, core.DefaultUpdateConfig())
}

func TestFormPANAssociatesAll(t *testing.T) {
	n := NewNetwork(DefaultConfig(1))
	for i := 0; i < 6; i++ {
		n.AddDevice(RoleEndDevice, Position{X: float64(5 * i), Y: 3}, newTestAgent(core.AgentID(i+1), 0.8))
	}
	joined := 0
	for attempt := 0; attempt < 8 && joined < 6; attempt++ {
		joined = n.FormPAN()
	}
	if joined != 6 {
		t.Fatalf("joined = %d, want 6", joined)
	}
	for _, d := range n.Devices()[1:] {
		if !d.Associated {
			t.Fatalf("device %04x not associated", uint16(d.Addr))
		}
		if d.ActiveMs <= 0 {
			t.Fatal("association consumed no radio time")
		}
	}
}

func TestOutOfRangeDeviceCannotJoin(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.RangeM = 50
	n := NewNetwork(cfg)
	n.AddDevice(RoleEndDevice, Position{X: 500, Y: 500}, newTestAgent(1, 0.8))
	if joined := n.FormPAN(); joined != 0 {
		t.Fatalf("out-of-range device joined (%d)", joined)
	}
}

func TestSendMessageFragmentation(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.LossProb = 0 // deterministic delivery
	n := NewNetwork(cfg)
	a := n.AddDevice(RoleRouter, Position{X: 1}, newTestAgent(1, 0.8))
	b := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.8))
	n.FormPAN()

	gotBytes := -1
	n.Handle(ClusterTaskResult, func(dst *Device, src DeviceAddr, total int) {
		if dst.Addr != b.Addr || src != a.Addr {
			t.Errorf("delivery to %04x from %04x", uint16(dst.Addr), uint16(src))
		}
		gotBytes = total
	})
	completed := false
	n.SendMessage(a.Addr, b.Addr, ClusterTaskResult, 200, MessageOpts{FragSize: 64}, func(ok bool) {
		completed = ok
	})
	n.Sim.Run()
	if !completed {
		t.Fatal("message not completed")
	}
	if gotBytes != 200 {
		t.Fatalf("reassembled %d bytes, want 200", gotBytes)
	}
	// 200 bytes at frag 64 → 4 fragments (+ association traffic).
	if a.TxFrames < 4 {
		t.Fatalf("tx frames = %d, want >= 4", a.TxFrames)
	}
}

func TestSmallFragmentsCostMoreAirtime(t *testing.T) {
	run := func(fragSize int, delay Ms) Ms {
		cfg := DefaultConfig(4)
		cfg.LossProb = 0
		n := NewNetwork(cfg)
		a := n.AddDevice(RoleRouter, Position{X: 1}, newTestAgent(1, 0.8))
		b := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.8))
		n.FormPAN()
		before := a.ActiveMs
		n.SendMessage(a.Addr, b.Addr, ClusterTaskResult, 512, MessageOpts{FragSize: fragSize, InterFragDelayMs: delay}, nil)
		n.Sim.Run()
		return a.ActiveMs - before
	}
	honest := run(64, 0)
	stall := run(8, 9)
	if stall <= honest*1.5 {
		t.Fatalf("stall airtime %v not clearly above honest %v", stall, honest)
	}
}

func TestDelegateHonestExchange(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.LossProb = 0
	n := NewNetwork(cfg)
	tr := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.4))
	te := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.95))
	n.FormPAN()

	tk := task.Uniform(1, task.CharGPS)
	res := n.Delegate(tr.Addr, te.Addr, tk, ExchangeConfig{Light: 1, Act: agent.DefaultActConfig()})
	if !res.Delivered {
		t.Fatal("exchange not delivered")
	}
	if res.TrustorActiveMs <= 0 || res.DurationMs <= 0 {
		t.Fatalf("timing: active=%v duration=%v", res.TrustorActiveMs, res.DurationMs)
	}
	if res.Outcome.Cost <= 0 || res.Outcome.Cost > 1 {
		t.Fatalf("cost = %v", res.Outcome.Cost)
	}
}

func TestDelegateStallerInflatesActiveTime(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.LossProb = 0
	n := NewNetwork(cfg)
	tr := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.4))
	honest := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.9))
	stallAgent := agent.New(3, agent.KindDishonestTrustee, agent.Behavior{
		BaseCompetence: 0.9,
		Malice:         agent.MaliceFragmentStall,
	}, core.DefaultUpdateConfig())
	staller := n.AddDevice(RoleRouter, Position{X: 3}, stallAgent)
	n.FormPAN()

	tk := task.Uniform(1, task.CharGPS)
	xc := ExchangeConfig{Light: 1, Act: agent.DefaultActConfig()}
	h := n.Delegate(tr.Addr, honest.Addr, tk, xc)
	s := n.Delegate(tr.Addr, staller.Addr, tk, xc)
	if s.TrustorActiveMs <= 1.5*h.TrustorActiveMs {
		t.Fatalf("staller active %v not clearly above honest %v", s.TrustorActiveMs, h.TrustorActiveMs)
	}
	if s.Outcome.Cost <= h.Outcome.Cost {
		t.Fatalf("staller cost %v not above honest %v", s.Outcome.Cost, h.Outcome.Cost)
	}
}

func TestDelegateOpticalDarkDegrades(t *testing.T) {
	count := func(light float64) int {
		cfg := DefaultConfig(7)
		cfg.LossProb = 0
		n := NewNetwork(cfg)
		tr := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.4))
		te := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.95))
		n.FormPAN()
		tk := task.Uniform(1, task.CharImage)
		succ := 0
		for i := 0; i < 60; i++ {
			res := n.Delegate(tr.Addr, te.Addr, tk, ExchangeConfig{
				Light: env.Environment(light), UseOptical: true, Act: agent.DefaultActConfig(),
			})
			if res.Outcome.Success {
				succ++
			}
		}
		return succ
	}
	bright := count(1.0)
	dark := count(0.05)
	if dark >= bright {
		t.Fatalf("dark successes %d not below bright %d", dark, bright)
	}
}

func TestReportsCollected(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.LossProb = 0
	n := NewNetwork(cfg)
	d := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.5))
	n.FormPAN()
	n.SendReport(d.Addr, ReportPayload{TrusteeAddr: 7, Honest: true, Success: true})
	got := n.CollectReports()
	if len(got) != 1 || got[0].From != d.Addr || !got[0].Payload.Honest {
		t.Fatalf("reports = %+v", got)
	}
	if len(n.CollectReports()) != 0 {
		t.Fatal("reports not drained")
	}
}

func TestBuildTestbedShape(t *testing.T) {
	tb := BuildTestbed(DefaultTestbedConfig(9))
	if len(tb.Trustors) != 10 || len(tb.Honest) != 10 || len(tb.Dishonest) != 10 {
		t.Fatalf("testbed sizes: %d/%d/%d", len(tb.Trustors), len(tb.Honest), len(tb.Dishonest))
	}
	// 30 devices + coordinator.
	if len(tb.Net.Devices()) != 31 {
		t.Fatalf("devices = %d", len(tb.Net.Devices()))
	}
	for _, d := range tb.Net.Devices()[1:] {
		if !d.Associated {
			t.Fatalf("device %04x failed to join", uint16(d.Addr))
		}
	}
	if !tb.IsHonest(tb.Honest[0].Addr) || tb.IsHonest(tb.Dishonest[0].Addr) {
		t.Fatal("IsHonest misclassifies")
	}
	if len(tb.Trustees()) != 20 {
		t.Fatalf("trustees = %d", len(tb.Trustees()))
	}
}

func TestTestbedDeterministic(t *testing.T) {
	a := BuildTestbed(DefaultTestbedConfig(11))
	b := BuildTestbed(DefaultTestbedConfig(11))
	if math.Abs(a.Honest[0].Agent.Behavior.BaseCompetence-b.Honest[0].Agent.Behavior.BaseCompetence) > 1e-15 {
		t.Fatal("testbed not deterministic across identical seeds")
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.LossProb = 0
	n := NewNetwork(cfg)
	a := n.AddDevice(RoleRouter, Position{X: 1}, newTestAgent(1, 0.8))
	b := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.8))
	n.FormPAN()
	beforeA, beforeB := a.EnergyMJ, b.EnergyMJ
	n.SendMessage(a.Addr, b.Addr, ClusterTaskResult, 256, MessageOpts{}, nil)
	n.Sim.Run()
	if a.EnergyMJ <= beforeA || b.EnergyMJ <= beforeB {
		t.Fatal("transfer consumed no energy")
	}
}
