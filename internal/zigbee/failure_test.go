package zigbee

import (
	"testing"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/task"
)

// Failure-injection tests: the protocol layer under loss, partition, and
// runaway conditions.

func TestDelegateUnderHeavyLoss(t *testing.T) {
	cfg := DefaultConfig(31)
	cfg.LossProb = 0.35 // well beyond normal interference
	n := NewNetwork(cfg)
	tr := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.5))
	te := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.9))
	for i := 0; i < 8; i++ {
		if n.FormPAN() == 2 {
			break
		}
	}
	tk := task.Uniform(1, task.CharGPS)
	delivered, failed := 0, 0
	for i := 0; i < 40; i++ {
		res := n.Delegate(tr.Addr, te.Addr, tk, ExchangeConfig{Light: 1, Act: agent.DefaultActConfig()})
		if res.Delivered {
			delivered++
		} else {
			failed++
			// An abandoned exchange is a failure with damage, never a
			// phantom success.
			if res.Outcome.Success {
				t.Fatal("abandoned exchange reported success")
			}
			if res.Outcome.Damage <= 0 {
				t.Fatal("abandoned exchange carries no damage")
			}
		}
		// The cost accounting must remain sane either way.
		if res.Outcome.Cost < 0 || res.Outcome.Cost > 1 {
			t.Fatalf("cost out of range: %v", res.Outcome.Cost)
		}
	}
	if delivered == 0 {
		t.Fatal("no exchange survived 35% loss with retries")
	}
	if failed == 0 {
		t.Fatal("35% loss never abandoned an exchange (retry model too forgiving)")
	}
}

func TestTotalLossPartitionsNetwork(t *testing.T) {
	cfg := DefaultConfig(32)
	cfg.LossProb = 1
	n := NewNetwork(cfg)
	n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.5))
	if joined := n.FormPAN(); joined != 0 {
		t.Fatalf("device joined through a fully lossy channel (%d)", joined)
	}
}

func TestDelegateFailureStillChargesRadioTime(t *testing.T) {
	cfg := DefaultConfig(33)
	cfg.LossProb = 1 // after association we cut the link entirely
	n := NewNetwork(cfg)
	n.cfg.LossProb = 0
	tr := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.5))
	te := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.9))
	n.FormPAN()
	n.cfg.LossProb = 1

	before := tr.ActiveMs
	res := n.Delegate(tr.Addr, te.Addr, task.Uniform(1, task.CharGPS),
		ExchangeConfig{Light: 1, Act: agent.DefaultActConfig()})
	if res.Delivered {
		t.Fatal("exchange delivered through a dead link")
	}
	if tr.ActiveMs <= before {
		t.Fatal("failed exchange consumed no radio time (retries must cost)")
	}
}

func TestSimulatorRunawayGuard(t *testing.T) {
	s := NewSimulator()
	s.MaxEvents = 100
	var loop func()
	loop = func() { s.Schedule(1, loop) }
	s.Schedule(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway event loop not caught")
		}
	}()
	s.Run()
}

func TestTransmitUnknownDevicePanics(t *testing.T) {
	n := NewNetwork(DefaultConfig(34))
	defer func() {
		if recover() == nil {
			t.Fatal("transmit to unknown device did not panic")
		}
	}()
	n.transmit(Frame{Src: CoordAddr, Dst: 0x99}, nil)
}

func TestDelegateUnknownTrusteePanics(t *testing.T) {
	n := NewNetwork(DefaultConfig(35))
	tr := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.5))
	n.FormPAN()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown trustee did not panic")
		}
	}()
	n.Delegate(tr.Addr, 0x77, task.Uniform(1, task.CharGPS), ExchangeConfig{})
}

func TestInterleavedMessagesReassembleIndependently(t *testing.T) {
	cfg := DefaultConfig(36)
	cfg.LossProb = 0
	n := NewNetwork(cfg)
	a := n.AddDevice(RoleRouter, Position{X: 1}, newTestAgent(1, 0.8))
	b := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.8))
	c := n.AddDevice(RoleRouter, Position{X: 3}, newTestAgent(3, 0.8))
	n.FormPAN()

	var got []int
	n.Handle(ClusterTaskResult, func(dst *Device, src DeviceAddr, total int) {
		got = append(got, total)
	})
	// Two senders fragment toward the same receiver concurrently; the
	// (src, msgID) reassembly keys must keep them apart.
	n.SendMessage(a.Addr, c.Addr, ClusterTaskResult, 200, MessageOpts{FragSize: 32}, nil)
	n.SendMessage(b.Addr, c.Addr, ClusterTaskResult, 100, MessageOpts{FragSize: 32}, nil)
	n.Sim.Run()
	if len(got) != 2 {
		t.Fatalf("reassembled %d messages, want 2", len(got))
	}
	sum := got[0] + got[1]
	if sum != 300 {
		t.Fatalf("byte totals %v", got)
	}
}

func TestFig14StallerDetectionSurvivesLoss(t *testing.T) {
	// The cost signal must remain usable under realistic loss: a staller's
	// active time stays above an honest trustee's.
	cfg := DefaultConfig(37)
	cfg.LossProb = 0.1
	n := NewNetwork(cfg)
	tr := n.AddDevice(RoleEndDevice, Position{X: 1}, newTestAgent(1, 0.5))
	honest := n.AddDevice(RoleRouter, Position{X: 2}, newTestAgent(2, 0.9))
	st := agent.New(3, agent.KindDishonestTrustee, agent.Behavior{
		BaseCompetence: 0.9, Malice: agent.MaliceFragmentStall,
	}, core.DefaultUpdateConfig())
	staller := n.AddDevice(RoleRouter, Position{X: 3}, st)
	for i := 0; i < 8; i++ {
		n.FormPAN()
	}
	tk := task.Uniform(1, task.CharGPS)
	xc := ExchangeConfig{Light: 1, Act: agent.DefaultActConfig()}
	var honestMs, stallMs Ms
	for i := 0; i < 10; i++ {
		honestMs += n.Delegate(tr.Addr, honest.Addr, tk, xc).TrustorActiveMs
		stallMs += n.Delegate(tr.Addr, staller.Addr, tk, xc).TrustorActiveMs
	}
	if stallMs <= honestMs {
		t.Fatalf("loss washed out the stall signal: %v <= %v", stallMs, honestMs)
	}
}
