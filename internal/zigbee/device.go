package zigbee

import (
	"siot/internal/agent"
	"siot/internal/env"
)

// Role is a device's network role.
type Role uint8

// Device roles mirror the ZigBee device types.
const (
	RoleCoordinator Role = iota
	RoleRouter
	RoleEndDevice
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleCoordinator:
		return "coordinator"
	case RoleRouter:
		return "router"
	case RoleEndDevice:
		return "end-device"
	default:
		return "unknown"
	}
}

// RadioState models the CC2530 power states the active-time accounting
// distinguishes.
type RadioState uint8

// Radio states.
const (
	RadioSleep RadioState = iota
	RadioRx
	RadioTx
)

// Position is a 2-D device location in meters, used for the range check.
type Position struct{ X, Y float64 }

// dist2 returns the squared distance between two positions.
func dist2(a, b Position) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Device is one node of the experimental network.
type Device struct {
	Addr DeviceAddr
	Role Role
	Pos  Position
	// Agent carries the device's behavior and trust state; nil for the
	// coordinator.
	Agent *agent.Agent
	// Associated reports whether the device has joined the PAN.
	Associated bool

	// Sensor is the attached optical sensor, if any (§5.7's devices carry
	// one on the 2.54 mm pin interface).
	Sensor *OpticalSensor

	// Accounting.
	ActiveMs Ms      // cumulative radio-active time (TX + RX of own frames)
	EnergyMJ float64 // cumulative radio energy in millijoules
	TxFrames int
	RxFrames int
	seq      uint8

	// reassembly holds partially received APS messages keyed by
	// (src, msgID).
	reassembly map[reasmKey]*reasmState

	// Reports collected by the coordinator (host-side buffer behind the
	// CP2102 link).
	Reports []Report
}

type reasmKey struct {
	src DeviceAddr
	id  uint32
}

type reasmState struct {
	received  int
	total     int
	bytes     int
	firstAtMs Ms
}

// Report is one application report a device sends to the coordinator for
// host collection.
type Report struct {
	From    DeviceAddr
	AtMs    Ms
	Payload ReportPayload
}

// ReportPayload is the experiment-defined content of a report.
type ReportPayload struct {
	// TrusteeAddr is the trustee the reporting trustor selected.
	TrusteeAddr DeviceAddr
	// Honest marks whether that trustee was an honest device (ground truth
	// carried for the coordinator's statistics, as in §5.4's experiments).
	Honest bool
	// Success is the task outcome.
	Success bool
	// ActiveMs is the trustor's radio-active time for the exchange.
	ActiveMs Ms
	// NetProfit is the trustor-side realized net profit.
	NetProfit float64
}

// nextSeq returns the next MAC sequence number.
func (d *Device) nextSeq() uint8 {
	d.seq++
	return d.seq
}

// accountTx charges a transmission of durMs to the device.
func (d *Device) accountTx(durMs Ms, powerMw float64) {
	d.ActiveMs += durMs
	d.EnergyMJ += durMs * powerMw / 1000
	d.TxFrames++
}

// accountRx charges a reception of durMs to the device.
func (d *Device) accountRx(durMs Ms, powerMw float64) {
	d.ActiveMs += durMs
	d.EnergyMJ += durMs * powerMw / 1000
	d.RxFrames++
}

// OpticalSensor converts ambient light (modeled as an environment value in
// (0,1]) into a reading quality. The paper's Fig. 16 experiment attaches
// these to every trustee: "with the optical sensors, the performance of the
// trustee node is affected by the lighting condition."
type OpticalSensor struct {
	// DarkFloor is the quality produced in total darkness.
	DarkFloor float64
}

// Quality returns the sensing quality under the given light level.
func (s *OpticalSensor) Quality(light env.Environment) float64 {
	q := s.DarkFloor + (1-s.DarkFloor)*float64(light.Clamp())
	if q > 1 {
		return 1
	}
	return q
}
