package zigbee

import (
	"math"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/task"
)

// TestbedConfig describes the paper's experimental network (§5.2): five node
// groups, each with two trustors, two honest trustees, and two dishonest
// trustees, plus the coordinator.
type TestbedConfig struct {
	Seed              uint64
	Groups            int
	TrustorsPerGroup  int
	HonestPerGroup    int
	DishonestPerGroup int
	// Malice is the dishonest trustees' behavior.
	Malice agent.Malice
	// MaliceChars marks the characteristics targeted by
	// MaliceCharacteristic.
	MaliceChars map[task.Characteristic]bool
	// Update configures every agent's trust store.
	Update core.UpdateConfig
	// Radio overrides the radio/protocol parameters; zero value uses
	// DefaultConfig(Seed).
	Radio *Config
}

// DefaultTestbedConfig mirrors the paper's setup.
func DefaultTestbedConfig(seed uint64) TestbedConfig {
	return TestbedConfig{
		Seed:              seed,
		Groups:            5,
		TrustorsPerGroup:  2,
		HonestPerGroup:    2,
		DishonestPerGroup: 2,
		Malice:            agent.MaliceCharacteristic,
		MaliceChars:       map[task.Characteristic]bool{task.CharImage: true},
		Update:            core.DefaultUpdateConfig(),
	}
}

// Testbed is a formed experimental network with its devices grouped by role.
type Testbed struct {
	Net       *Network
	Trustors  []*Device
	Honest    []*Device
	Dishonest []*Device
	// Group maps each device address to its node-group index; the paper's
	// trustors interact with the trustees of their own group.
	Group map[DeviceAddr]int
}

// GroupTrustees returns the trustees (honest and dishonest) in the given
// group, in address order.
func (tb *Testbed) GroupTrustees(group int) []*Device {
	var out []*Device
	for _, d := range tb.Trustees() {
		if tb.Group[d.Addr] == group {
			out = append(out, d)
		}
	}
	return out
}

// Trustees returns honest and dishonest trustees interleaved in a stable
// order.
func (tb *Testbed) Trustees() []*Device {
	out := make([]*Device, 0, len(tb.Honest)+len(tb.Dishonest))
	out = append(out, tb.Honest...)
	out = append(out, tb.Dishonest...)
	return out
}

// IsHonest reports whether addr belongs to an honest trustee.
func (tb *Testbed) IsHonest(addr DeviceAddr) bool {
	for _, d := range tb.Honest {
		if d.Addr == addr {
			return true
		}
	}
	return false
}

// BuildTestbed creates the experimental network, positions the groups in a
// circle around the coordinator (well within the 250 m reliable range), and
// forms the PAN. It panics if any device fails to associate after the
// automatic reconnection attempts, mirroring the hardware's retry loop.
func BuildTestbed(cfg TestbedConfig) *Testbed {
	radio := DefaultConfig(cfg.Seed)
	if cfg.Radio != nil {
		radio = *cfg.Radio
	}
	n := NewNetwork(radio)
	tb := &Testbed{Net: n, Group: map[DeviceAddr]int{}}
	r := rng.New(cfg.Seed, "testbed")

	for g := 0; g < cfg.Groups; g++ {
		angle := 2 * math.Pi * float64(g) / float64(maxInt(cfg.Groups, 1))
		base := Position{X: 60 * math.Cos(angle), Y: 60 * math.Sin(angle)}
		place := func(i int) Position {
			return Position{X: base.X + 3*float64(i), Y: base.Y + 2*float64(i%3)}
		}
		slot := 0
		for i := 0; i < cfg.TrustorsPerGroup; i++ {
			b := agent.Behavior{
				BaseCompetence: 0.3 + 0.2*r.Float64(),
				Responsibility: 0.8 + 0.2*r.Float64(),
			}
			ag := agent.New(0, agent.KindTrustor, b, cfg.Update)
			d := n.AddDevice(RoleEndDevice, place(slot), ag)
			ag.ID = core.AgentID(d.Addr)
			tb.Group[d.Addr] = g
			tb.Trustors = append(tb.Trustors, d)
			slot++
		}
		for i := 0; i < cfg.HonestPerGroup; i++ {
			b := agent.Behavior{BaseCompetence: 0.75 + 0.2*r.Float64()}
			ag := agent.New(0, agent.KindTrustee, b, cfg.Update)
			d := n.AddDevice(RoleRouter, place(slot), ag)
			ag.ID = core.AgentID(d.Addr)
			tb.Group[d.Addr] = g
			tb.Honest = append(tb.Honest, d)
			slot++
		}
		for i := 0; i < cfg.DishonestPerGroup; i++ {
			b := agent.Behavior{
				BaseCompetence: 0.75 + 0.2*r.Float64(),
				Malice:         cfg.Malice,
				MaliceChars:    cfg.MaliceChars,
				StallCost:      0.6,
			}
			ag := agent.New(0, agent.KindDishonestTrustee, b, cfg.Update)
			d := n.AddDevice(RoleRouter, place(slot), ag)
			ag.ID = core.AgentID(d.Addr)
			tb.Group[d.Addr] = g
			tb.Dishonest = append(tb.Dishonest, d)
			slot++
		}
	}

	// Form the PAN with the hardware's automatic-reconnection semantics:
	// re-run the join handshake for stragglers a few times.
	for attempt := 0; attempt < 8; attempt++ {
		if joined := n.FormPAN(); joined == len(n.Devices())-1 {
			return tb
		}
	}
	panic("zigbee: testbed failed to associate all devices")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
