// Package zigbee is a discrete-event simulator of the paper's experimental
// IoT network: CC2530-class node devices running a Z-Stack-like profile
// (coordinator-formed PAN, association, acknowledged MAC data frames, APS
// fragmentation, report collection), with radio active-time and energy
// accounting and optical sensing driven by a light schedule.
//
// The paper's testbed is physical hardware (TI Z-Stack 2.5.0 on CC2530,
// 2.4 GHz, coordinator + CP2102 host link). This simulator substitutes for
// it: the experiments of Figs. 8, 14, and 16 measure protocol-level and
// timing-ratio quantities (honest-selection percentages, active time with
// and without the trust model, net profit across light phases), which depend
// on frame exchanges and timing, not on RF silicon.
package zigbee

import (
	"container/heap"
	"fmt"
)

// Ms is simulated time in milliseconds.
type Ms = float64

// event is one scheduled callback.
type event struct {
	at  Ms
	seq uint64 // tie-breaker to keep simultaneous events FIFO
	run func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event executor.
type Simulator struct {
	now    Ms
	seq    uint64
	events eventHeap
	// Processed counts executed events, for tests and runaway guards.
	Processed uint64
	// MaxEvents aborts Run with a panic beyond this many events
	// (a runaway-feedback guard; 0 means no limit).
	MaxEvents uint64
}

// NewSimulator returns an empty simulator at time 0.
func NewSimulator() *Simulator {
	return &Simulator{MaxEvents: 50_000_000}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Ms { return s.now }

// Schedule runs fn after delay milliseconds of simulated time. Negative
// delays are treated as zero.
func (s *Simulator) Schedule(delay Ms, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now + delay, seq: s.seq, run: fn})
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for len(s.events) > 0 {
		s.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t.
func (s *Simulator) RunUntil(t Ms) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if t > s.now {
		s.now = t
	}
}

func (s *Simulator) step() {
	e := heap.Pop(&s.events).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	s.Processed++
	if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
		panic(fmt.Sprintf("zigbee: event budget exceeded (%d events) — runaway feedback loop?", s.MaxEvents))
	}
	e.run()
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
