package zigbee

import "fmt"

// DeviceAddr is a 16-bit network short address. The coordinator always owns
// CoordAddr.
type DeviceAddr uint16

// CoordAddr is the coordinator's short address (0x0000 in ZigBee).
const CoordAddr DeviceAddr = 0x0000

// BroadcastAddr is the all-devices broadcast address (0xFFFF in ZigBee).
const BroadcastAddr DeviceAddr = 0xFFFF

// FrameKind is the MAC/APS frame type.
type FrameKind uint8

// Frame kinds. Beacon/association mirror the IEEE 802.15.4 join sequence;
// Data carries APS payloads (possibly fragments); Ack is the MAC
// acknowledgment; Report is the application frame devices send to the
// coordinator for host collection.
const (
	FrameBeaconReq FrameKind = iota
	FrameBeacon
	FrameAssocReq
	FrameAssocResp
	FrameData
	FrameAck
	FrameReport
)

// String names the frame kind.
func (k FrameKind) String() string {
	switch k {
	case FrameBeaconReq:
		return "beacon-req"
	case FrameBeacon:
		return "beacon"
	case FrameAssocReq:
		return "assoc-req"
	case FrameAssocResp:
		return "assoc-resp"
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameReport:
		return "report"
	default:
		return "unknown"
	}
}

// Cluster identifies the application-level message type carried by a data
// frame (the AF cluster ID in Z-Stack terms).
type Cluster uint16

// Application clusters used by the experiments.
const (
	ClusterTaskRequest Cluster = 0x0001
	ClusterTaskResult  Cluster = 0x0002
	ClusterReport      Cluster = 0x0010
)

// Frame is one over-the-air MAC frame.
type Frame struct {
	Kind    FrameKind
	Src     DeviceAddr
	Dst     DeviceAddr
	Seq     uint8
	Cluster Cluster
	// PayloadLen is the APS payload size in bytes (contents are not
	// simulated, only their cost).
	PayloadLen int
	// MsgID correlates the fragments of one APS message.
	MsgID uint32
	// FragIndex/FragTotal implement APS fragmentation; FragTotal == 1 means
	// an unfragmented message.
	FragIndex int
	FragTotal int
}

// macHeaderBytes approximates the 802.15.4 MHR + NWK + APS header overhead.
const macHeaderBytes = 23

// AirBytes returns the frame's on-air size.
func (f Frame) AirBytes() int { return macHeaderBytes + f.PayloadLen }

// String renders a compact trace line.
func (f Frame) String() string {
	return fmt.Sprintf("%s %04x->%04x seq=%d frag=%d/%d len=%d",
		f.Kind, uint16(f.Src), uint16(f.Dst), f.Seq, f.FragIndex+1, f.FragTotal, f.PayloadLen)
}
