package serve

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"siot/internal/core"
	"siot/internal/faultfs"
)

// serveSession runs a mixed ingest/query session under cfg and returns the
// journal bytes plus the engine's final stats. It fails the test unless at
// least one query found a value (a session that serves nothing exercises
// nothing).
func serveSession(t *testing.T, cfg Config, events int) ([]byte, Stats) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Journal = &buf
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(11, cfg.Seed))
	served := 0
	for i := 0; i < events; i++ {
		if err := e.Ingest(randomEvent(e, r)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		for q := 0; q < 3; q++ {
			trustor := core.AgentID(r.IntN(e.NumAgents()))
			trustee := core.AgentID(r.IntN(e.NumAgents()))
			if trustor == trustee {
				continue
			}
			res, err := e.Trust(trustor, trustee, r.IntN(len(e.TaskTypes())))
			if err != nil {
				t.Fatalf("trust: %v", err)
			}
			if res.Found {
				served++
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if served == 0 {
		t.Fatal("no query found a trust value; test exercises nothing")
	}
	return buf.Bytes(), e.Stats()
}

// TestJournalReplayModels extends the replay contract to the non-policy
// models of the zoo: a session served under each registered model replays
// byte-for-byte, including the trainable hellinger-mf (whose scorer is
// refit per epoch from the journaled events alone).
func TestJournalReplayModels(t *testing.T) {
	for _, name := range core.ModelNames() {
		if core.IsPolicyModel(mustModel(t, name)) {
			continue // the adapters are TestJournalReplay's policies
		}
		t.Run(name, func(t *testing.T) {
			journal, stats := serveSession(t, Config{
				Net: "twitter", Seed: 7, Model: mustModel(t, name), Seeded: true,
				EpochEvery: 8,
			}, 120)
			rs, err := Replay(bytes.NewReader(journal))
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if rs.Events != stats.Applied || rs.Queries != stats.Queries || rs.Epochs != stats.Epochs {
				t.Fatalf("replay stats %+v do not match engine stats %+v", rs, stats)
			}
		})
	}
}

func mustModel(t *testing.T, name string) core.TrustModel {
	t.Helper()
	m, err := core.ParseModel(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// rewriteHeader decodes a journal's first physical line, mutates the header
// through f, and re-encodes it (fresh CRC) over the untouched remainder.
func rewriteHeader(t *testing.T, journal []byte, f func(*headerLine)) []byte {
	t.Helper()
	nl := bytes.IndexByte(journal, '\n')
	if nl < 0 {
		t.Fatal("journal has no first line")
	}
	line, err := decodeJournalLine(journal[:nl])
	if err != nil {
		t.Fatalf("decoding header line: %v", err)
	}
	if line.Header == nil {
		t.Fatal("journal does not start with a header")
	}
	f(line.Header)
	phys, err := encodeJournalLine(line)
	if err != nil {
		t.Fatalf("re-encoding header line: %v", err)
	}
	return append(phys, journal[nl+1:]...)
}

// downgradeHeader rewrites a version-3 policy-adapter header to its exact
// version-2 form: bare policy field, no model.
func downgradeHeader(t *testing.T, journal []byte) []byte {
	t.Helper()
	return rewriteHeader(t, journal, func(h *headerLine) {
		h.Version = prevJournalVersion
		h.Policy = h.Model
		h.Model = ""
	})
}

// TestReplayV2Header is the forward-compatibility contract of the header
// schema bump: a version-2 journal — bare policy header, as every pre-zoo
// engine wrote — still replays bit-for-bit.
func TestReplayV2Header(t *testing.T) {
	journal, stats := serveSession(t, Config{
		Net: "twitter", Seed: 7, Policy: core.PolicyConservative, Seeded: true,
		EpochEvery: 8,
	}, 120)
	rs, err := Replay(bytes.NewReader(downgradeHeader(t, journal)))
	if err != nil {
		t.Fatalf("replay of v2-header journal: %v", err)
	}
	if rs.Events != stats.Applied || rs.Queries != stats.Queries || rs.Epochs != stats.Epochs {
		t.Fatalf("replay stats %+v do not match engine stats %+v", rs, stats)
	}
}

// TestRecoverV2Header resumes an engine from a version-2 journal: the
// header's policy pins the model, recovery re-applies the prefix, and the
// continued journal replays end to end.
func TestRecoverV2Header(t *testing.T) {
	journal, stats := serveSession(t, Config{
		Net: "twitter", Seed: 7, Policy: core.PolicyConservative, Seeded: true,
		EpochEvery: 8,
	}, 40)
	f := faultfs.NewFile(downgradeHeader(t, journal))
	e, rstats, err := Recover(f, Config{EpochEvery: 8})
	if err != nil {
		t.Fatalf("recover from v2-header journal: %v", err)
	}
	if rstats.Events != stats.Applied {
		t.Fatalf("recover re-applied %d events, journal has %d", rstats.Events, stats.Applied)
	}
	if got := e.cfg.Model.Name(); got != core.PolicyConservative.String() {
		t.Fatalf("recovered model %q, want %q", got, core.PolicyConservative)
	}
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 20; i++ {
		if err := e.Ingest(randomEvent(e, r)); err != nil {
			t.Fatalf("post-recovery ingest %d: %v", i, err)
		}
	}
	if _, err := e.Trust(0, 1, 0); err != nil {
		t.Fatalf("post-recovery trust: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(f.Bytes())); err != nil {
		t.Fatalf("replay of recovered journal: %v", err)
	}
}

// TestReplayHeaderRejections pins the typed-error contract: an unknown
// model name, an unknown version-2 policy, and an unrecognized header
// version are each rejected up front with the matching sentinel — never
// silently defaulted to some model.
func TestReplayHeaderRejections(t *testing.T) {
	journal, _ := serveSession(t, Config{
		Net: "twitter", Seed: 7, Seeded: true, EpochEvery: 8,
	}, 20)
	cases := []struct {
		name     string
		mutate   func(*headerLine)
		sentinel error
	}{
		{"unknown model", func(h *headerLine) { h.Model = "galactic-consensus" }, ErrJournalModel},
		{"unknown v2 policy", func(h *headerLine) {
			h.Version = prevJournalVersion
			h.Model = ""
			h.Policy = "galactic-consensus"
		}, ErrJournalModel},
		{"future version", func(h *headerLine) { h.Version = journalVersion + 1 }, ErrJournalVersion},
		{"prehistoric version", func(h *headerLine) { h.Version = 1 }, ErrJournalVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tampered := rewriteHeader(t, journal, tc.mutate)
			if _, err := Replay(bytes.NewReader(tampered)); !errors.Is(err, tc.sentinel) {
				t.Fatalf("replay error %v, want %v", err, tc.sentinel)
			}
			f := faultfs.NewFile(tampered)
			if _, _, err := Recover(f, Config{}); !errors.Is(err, tc.sentinel) {
				t.Fatalf("recover error %v, want %v", err, tc.sentinel)
			}
		})
	}
}
