package serve

import (
	"bufio"
	"fmt"
	"io"
)

// corruptError marks a physical journal line that cannot be trusted: it is
// missing its trailing newline (a torn tail after a crash), is not a valid
// CRC envelope, or fails its checksum. Off is the byte offset where the
// damaged line starts — the truncation point the torn-tail rule uses.
type corruptError struct {
	Ln  int   // 1-based physical line number
	Off int64 // byte offset of the start of the damaged line
	Err error
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("line %d (byte offset %d) is corrupt: %v", e.Ln, e.Off, e.Err)
}

func (e *corruptError) Unwrap() error { return e.Err }

// journalScanner reads physical journal lines, verifying each envelope and
// CRC, and classifies damage as *corruptError so Recover can apply the
// torn-tail rule (tolerate exactly one damaged final line) while Replay
// treats any damage as fatal.
type journalScanner struct {
	r   *bufio.Reader
	ln  int   // lines returned so far
	off int64 // byte offset of the next unread line
}

func newJournalScanner(r io.Reader) *journalScanner {
	return &journalScanner{r: bufio.NewReader(r)}
}

// Ln reports the 1-based line number of the most recently returned line.
func (s *journalScanner) Ln() int { return s.ln }

// Off reports the byte offset of the first unconsumed line — after a clean
// scan, the journal's verified length.
func (s *journalScanner) Off() int64 { return s.off }

// next returns the next verified journal line, io.EOF at a clean end, or a
// *corruptError for a damaged line. After a corruptError the scanner is
// positioned past the damaged line, so the caller can probe whether more
// lines follow (damage mid-journal) or not (a tolerable torn tail).
func (s *journalScanner) next() (journalLine, error) {
	raw, err := s.r.ReadBytes('\n')
	start := s.off
	s.off += int64(len(raw))
	if err == io.EOF {
		if len(raw) == 0 {
			return journalLine{}, io.EOF
		}
		s.ln++
		return journalLine{}, &corruptError{Ln: s.ln, Off: start, Err: fmt.Errorf("torn line: no trailing newline")}
	}
	if err != nil {
		return journalLine{}, err
	}
	s.ln++
	line, err := decodeJournalLine(raw[:len(raw)-1])
	if err != nil {
		return journalLine{}, &corruptError{Ln: s.ln, Off: start, Err: err}
	}
	return line, nil
}
