package serve

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"

	"siot/internal/core"
)

// randomEvent draws a valid event along a real social edge.
func randomEvent(e *Engine, r *rand.Rand) Event {
	pop := e.world.pop
	for {
		trustor := core.AgentID(r.IntN(e.NumAgents()))
		nbrs := pop.Neighbors(trustor)
		if len(nbrs) == 0 {
			continue
		}
		ev := Event{
			Trustor: trustor,
			Trustee: nbrs[r.IntN(len(nbrs))],
			Type:    r.IntN(len(e.TaskTypes())),
		}
		if r.Float64() < 0.5 {
			ev.Op = OpObserve
			ev.Outcome = core.Outcome{
				Success: r.Float64() < 0.7,
				Gain:    r.Float64(), Damage: r.Float64(), Cost: 0.2 * r.Float64(),
			}
			ev.Abusive = r.Float64() < 0.1
		} else {
			ev.Op = OpRecommend
			ev.Exp = core.Expectation{S: r.Float64(), G: r.Float64(), D: r.Float64(), C: 0.2 * r.Float64()}
		}
		return ev
	}
}

// TestJournalReplay is the replay contract: a mixed ingest/query session's
// journal, replayed from scratch, reproduces every served trust value
// byte-for-byte.
func TestJournalReplay(t *testing.T) {
	for _, policy := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		t.Run(policy.String(), func(t *testing.T) {
			var buf bytes.Buffer
			e, err := New(Config{
				Net: "twitter", Seed: 7, Policy: policy, Seeded: true,
				EpochEvery: 8, Journal: &buf,
			})
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewPCG(11, uint64(policy)))
			served := 0
			for i := 0; i < 120; i++ {
				if err := e.Ingest(randomEvent(e, r)); err != nil {
					t.Fatalf("ingest %d: %v", i, err)
				}
				for q := 0; q < 3; q++ {
					trustor := core.AgentID(r.IntN(e.NumAgents()))
					trustee := core.AgentID(r.IntN(e.NumAgents()))
					if trustor == trustee {
						continue
					}
					res, err := e.Trust(trustor, trustee, r.IntN(len(e.TaskTypes())))
					if err != nil {
						t.Fatalf("trust: %v", err)
					}
					if res.Found {
						served++
					}
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if served == 0 {
				t.Fatal("no query found a trust value; test exercises nothing")
			}
			stats := e.Stats()
			if stats.Applied != stats.Ingested {
				t.Fatalf("close dropped events: ingested %d, applied %d", stats.Ingested, stats.Applied)
			}

			rs, err := Replay(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if rs.Events != stats.Applied || rs.Queries != stats.Queries || rs.Epochs != stats.Epochs {
				t.Fatalf("replay stats %+v do not match engine stats %+v", rs, stats)
			}
		})
	}
}

// TestReplayDetectsTampering flips one recorded trust value and expects
// replay to reject the journal.
func TestReplayDetectsTampering(t *testing.T) {
	var buf bytes.Buffer
	e, err := New(Config{Net: "twitter", Seed: 7, Seeded: true, EpochEvery: 4, Journal: &buf})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(3, 4))
	tampered := false
	for i := 0; i < 40; i++ {
		if err := e.Ingest(randomEvent(e, r)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Trust(core.AgentID(r.IntN(e.NumAgents())), core.AgentID(r.IntN(e.NumAgents()-1)+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	for i, ln := range lines {
		l, err := decodeJournalLine([]byte(ln))
		if err != nil {
			t.Fatal(err)
		}
		if l.Kind == "query" {
			// Flip the low bit of the recorded value, re-wrapping with a
			// fresh CRC so the value divergence — not the checksum — is
			// what replay must catch.
			b := []byte(l.Query.TWBits)
			if b[15] == '0' {
				b[15] = '1'
			} else {
				b[15] = '0'
			}
			l.Query.TWBits = string(b)
			mod, err := encodeJournalLine(l)
			if err != nil {
				t.Fatal(err)
			}
			lines[i] = strings.TrimSuffix(string(mod), "\n")
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("journal holds no query line to tamper with")
	}
	if _, err := Replay(strings.NewReader(strings.Join(lines, "\n") + "\n")); err == nil {
		t.Fatal("replay accepted a tampered journal")
	}
}

// TestReplayDetectsBitRot flips one raw byte inside a journal line without
// fixing up the CRC: replay must reject the line on its checksum, naming
// the damaged line.
func TestReplayDetectsBitRot(t *testing.T) {
	var buf bytes.Buffer
	e, err := New(Config{Net: "twitter", Seed: 7, Seeded: true, EpochEvery: 4, Journal: &buf})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 12; i++ {
		if err := e.Ingest(randomEvent(e, r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte in the middle of the second line (inside the payload, so
	// the envelope still parses but the CRC cannot match).
	firstNL := bytes.IndexByte(raw, '\n')
	target := firstNL + (bytes.IndexByte(raw[firstNL+1:], '\n') / 2)
	if raw[target] == '1' {
		raw[target] = '2'
	} else {
		raw[target] = '1'
	}
	_, err = Replay(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("replay accepted a bit-rotted journal")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %v does not report corruption", err)
	}
}

// TestServeQueryDuringSwap is the query-during-swap soak: with an epoch
// republished after every single event, concurrent queries keep acquiring
// and releasing snapshots across swaps. Run under -race; afterwards the
// journal must still replay cleanly.
func TestServeQueryDuringSwap(t *testing.T) {
	var buf bytes.Buffer
	e, err := New(Config{
		Net: "twitter", Seed: 9, Policy: core.PolicyConservative, Seeded: true,
		EpochEvery: 1, BatchSize: 1, Journal: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	const queryWorkers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 99))
			// Cap per-worker queries: every served value is journaled and
			// re-answered by the Replay below, so an unbounded loop would
			// turn the soak into a replay benchmark.
			for i := 0; i < 2000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				trustor := core.AgentID(r.IntN(e.NumAgents()))
				trustee := core.AgentID(r.IntN(e.NumAgents()))
				if trustor == trustee {
					continue
				}
				if _, err := e.Trust(trustor, trustee, r.IntN(len(e.TaskTypes()))); err != nil {
					t.Errorf("trust: %v", err)
					return
				}
			}
		}(w)
	}
	const events = 60
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < events; i++ {
		if err := e.Ingest(randomEvent(e, r)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	// Let the writer chew through the queue so many swaps happen while the
	// query workers are live.
	for e.Stats().Applied < events {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	stats := e.Stats()
	if stats.Epochs < events/2 {
		t.Fatalf("expected ~%d epoch swaps, got %d", events, stats.Epochs)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries served during the soak")
	}
	if stats.QueryP99Ns < stats.QueryP50Ns {
		t.Fatalf("latency quantiles inverted: p50 %d > p99 %d", stats.QueryP50Ns, stats.QueryP99Ns)
	}
	if _, err := Replay(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("replay after soak: %v", err)
	}
}

// TestIngestValidation rejects events the frozen-epoch contract cannot
// serve.
func TestIngestValidation(t *testing.T) {
	e, err := New(Config{Net: "twitter", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	nbr := e.world.pop.Neighbors(0)[0]
	var notNeighbor core.AgentID = -1
	for id := core.AgentID(1); int(id) < e.NumAgents(); id++ {
		nbrs := e.world.pop.Neighbors(0)
		found := false
		for _, v := range nbrs {
			if v == id {
				found = true
				break
			}
		}
		if !found {
			notNeighbor = id
			break
		}
	}
	cases := []struct {
		name string
		ev   Event
	}{
		{"trustor out of range", Event{Trustor: -1, Trustee: nbr}},
		{"trustee out of range", Event{Trustor: 0, Trustee: core.AgentID(e.NumAgents())}},
		{"self event", Event{Trustor: 0, Trustee: 0}},
		{"task type out of range", Event{Trustor: 0, Trustee: nbr, Type: len(e.TaskTypes())}},
		{"not neighbors", Event{Trustor: 0, Trustee: notNeighbor}},
		{"non-finite outcome", Event{Trustor: 0, Trustee: nbr, Op: OpObserve,
			Outcome: core.Outcome{Gain: -1}}},
		{"non-finite expectation", Event{Trustor: 0, Trustee: nbr, Op: OpRecommend,
			Exp: core.Expectation{S: nan()}}},
		{"unknown op", Event{Trustor: 0, Trustee: nbr, Op: EventOp(99)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := e.Ingest(tc.ev); err == nil {
				t.Fatalf("Ingest accepted %+v", tc.ev)
			}
		})
	}
	if _, err := e.Trust(-1, 1, 0); err == nil {
		t.Fatal("Trust accepted out-of-range trustor")
	}
	if _, err := e.Trust(0, 1, -1); err == nil {
		t.Fatal("Trust accepted out-of-range task type")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestEngineClosed pins the post-Close error surface.
func TestEngineClosed(t *testing.T) {
	e, err := New(Config{Net: "twitter", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nbr := e.world.pop.Neighbors(0)[0]
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := e.Ingest(Event{Trustor: 0, Trustee: nbr}); err != ErrClosed {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	if _, err := e.Trust(0, nbr, 0); err != ErrClosed {
		t.Fatalf("Trust after Close: %v, want ErrClosed", err)
	}
}

// TestLatencyHistQuantile pins the histogram's bucket math.
func TestLatencyHistQuantile(t *testing.T) {
	var h latencyHist
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	for i := 0; i < 99; i++ {
		h.observe(1000) // bucket 10: [512, 1024)
	}
	h.observe(1 << 40)
	if got := h.quantile(0.5); got != 1<<10 {
		t.Fatalf("p50 = %d, want %d", got, 1<<10)
	}
	if got := h.quantile(0.99); got != 1<<41 {
		t.Fatalf("p99 = %d, want %d", got, int64(1)<<41)
	}
	h.observe(-5)
	if got := h.quantile(0); got != 0 {
		t.Fatalf("p0 after negative sample = %d, want 0", got)
	}
}
