package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"siot/internal/core"
	"siot/internal/faultfs"
)

// crashCfg is the shared recovery-test world: small, seeded, frequent
// epochs so every test crosses several capture boundaries.
func crashCfg(j *faultfs.File) Config {
	cfg := Config{
		Net: "twitter", Seed: 7, Policy: core.PolicyConservative, Seeded: true,
		EpochEvery: 8, BatchSize: 4,
	}
	if j != nil {
		cfg.Journal = j
	}
	return cfg
}

// mustIngestN pushes n random events through the engine, failing the test
// on any error, and returns how many were durably acknowledged.
func mustIngestN(t *testing.T, e *Engine, r *rand.Rand, n int) int {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Ingest(randomEvent(e, r)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	return n
}

// TestRecoverTornTail is the torn-tail rule end to end: a journal chopped
// mid-line recovers, keeps serving, accepts new events, and the continued
// journal replays clean — while the same journal chopped mid-line refuses
// strict Replay.
func TestRecoverTornTail(t *testing.T) {
	f := faultfs.NewFile(nil)
	e, err := New(crashCfg(f))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(21, 22))
	acked := mustIngestN(t, e, r, 30)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	whole := f.Bytes()

	// Chop the final line at several interior byte positions.
	lastNL := bytes.LastIndexByte(whole[:len(whole)-1], '\n')
	for _, cut := range []int{lastNL + 1, lastNL + 2, len(whole) - 2} {
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			torn := append([]byte(nil), whole[:cut]...)
			if _, err := Replay(bytes.NewReader(torn)); err == nil && cut > lastNL+1 {
				t.Fatal("strict replay accepted a torn journal")
			}
			img := faultfs.NewFile(torn)
			e2, rstats, err := Recover(img, crashCfg(img))
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if cut > lastNL+1 && rstats.TornBytes == 0 {
				t.Fatalf("recover reported no torn bytes for a cut at %d", cut)
			}
			if int(rstats.Events) > acked {
				t.Fatalf("recover found %d events, engine only applied %d", rstats.Events, acked)
			}
			if got := e2.Stats().RecoveredEvents; got != rstats.Events {
				t.Fatalf("stats recovered_events = %d, recover stats = %d", got, rstats.Events)
			}
			// The resumed engine serves and ingests, and its continuation
			// replays bit-for-bit from the very first header.
			if _, err := e2.Trust(0, 5, 0); err != nil {
				t.Fatalf("trust after recover: %v", err)
			}
			mustIngestN(t, e2, r, 10)
			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}
			rs, err := Replay(bytes.NewReader(img.Bytes()))
			if err != nil {
				t.Fatalf("replay of recovered+continued journal: %v", err)
			}
			if rs.Events != rstats.Events+10 {
				t.Fatalf("continued journal has %d events, want %d", rs.Events, rstats.Events+10)
			}
		})
	}
}

// TestRecoverRejectsMidJournalCorruption pins the hard-error half of the
// torn-tail rule: damage that is NOT the final line — an acknowledged
// prefix that cannot be read back — must refuse recovery, not silently
// skip.
func TestRecoverRejectsMidJournalCorruption(t *testing.T) {
	f := faultfs.NewFile(nil)
	e, err := New(crashCfg(f))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(31, 32))
	mustIngestN(t, e, r, 20)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	raw := f.Bytes()

	// Corrupt a middle line (flip one payload byte; its CRC now fails).
	corrupted := bytes.SplitAfter(append([]byte(nil), raw...), []byte("\n"))
	mid := len(corrupted) / 2
	corrupted[mid][len(corrupted[mid])/2] ^= 0x04
	img := faultfs.NewFile(bytes.Join(corrupted, nil))
	if _, _, err := Recover(img, crashCfg(img)); err == nil {
		t.Fatal("recover accepted mid-journal corruption")
	} else if !strings.Contains(err.Error(), "continues past it") {
		t.Fatalf("error %v does not name the not-at-tail rule", err)
	}

	// A sequence gap (a deleted event line) is equally fatal even though
	// every surviving line is intact.
	lines := bytes.SplitAfter(append([]byte(nil), raw...), []byte("\n"))
	i := 0
	for ; i < len(lines); i++ {
		if bytes.Contains(lines[i], []byte(`"kind":"event"`)) {
			break
		}
	}
	if i == len(lines) {
		t.Fatal("journal holds no event line to delete")
	}
	gapped := bytes.Join(append(lines[:i:i], lines[i+1:]...), nil)
	img2 := faultfs.NewFile(gapped)
	if _, _, err := Recover(img2, crashCfg(img2)); err == nil {
		t.Fatal("recover accepted a journal with a sequence gap")
	}
}

// TestRecoverEmptyAndTornHeader pins the fresh-start edge: a zero-byte
// journal and a journal holding only a torn header both recover to a brand
// new engine that writes a clean journal.
func TestRecoverEmptyAndTornHeader(t *testing.T) {
	for _, tc := range []struct {
		name     string
		contents []byte
	}{
		{"empty", nil},
		{"torn header", []byte(`{"crc":"12345678","line":{"kind":"head`)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img := faultfs.NewFile(tc.contents)
			e, rstats, err := Recover(img, crashCfg(img))
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if rstats.Events != 0 {
				t.Fatalf("fresh start recovered %d events", rstats.Events)
			}
			r := rand.New(rand.NewPCG(41, 42))
			mustIngestN(t, e, r, 5)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if rs, err := Replay(bytes.NewReader(img.Bytes())); err != nil {
				t.Fatalf("replay: %v", err)
			} else if rs.Events != 5 {
				t.Fatalf("replay found %d events, want 5", rs.Events)
			}
		})
	}
}

// TestKillLoopRecovery is the crash-safety acceptance test: a server is
// "SIGKILLed" (its unsynced journal tail discarded at fault-injected byte
// offsets) more than 20 times mid-ingest; every surviving prefix must
// recover, keep serving, and extend the journal so that the final file
// replays bit-for-bit — and across all crashes, zero durably acknowledged
// events are lost. Runs under -race in CI.
func TestKillLoopRecovery(t *testing.T) {
	const kills = 24
	r := rand.New(rand.NewPCG(77, 78))
	var (
		surviving []byte // crash image carried across iterations
		ackedEver uint64 // durably acknowledged events across all sessions
	)
	for i := 0; i < kills; i++ {
		f := faultfs.NewFile(surviving)
		e, rstats, err := Recover(f, crashCfg(f))
		if err != nil {
			t.Fatalf("kill %d: recover: %v", i, err)
		}
		if rstats.Events < ackedEver {
			t.Fatalf("kill %d: recovery lost acknowledged events: recovered %d, acknowledged %d", i, rstats.Events, ackedEver)
		}
		// Unacknowledged events that happened to survive the crash are
		// fine (they were journaled, just never promised); they now count
		// as the resumed baseline.
		ackedEver = rstats.Events

		// The resumed engine must serve immediately.
		if _, err := e.Trust(0, 5, 0); err != nil {
			t.Fatalf("kill %d: trust after recover: %v", i, err)
		}

		// Ingest a burst; each nil return is a durability promise.
		burst := 3 + r.IntN(8)
		for b := 0; b < burst; b++ {
			if err := e.Ingest(randomEvent(e, r)); err != nil {
				t.Fatalf("kill %d: ingest: %v", i, err)
			}
			ackedEver++
		}

		// SIGKILL at a fault-injected offset: keep the durable prefix plus
		// an arbitrary slice of the unsynced tail — 0 bytes, a few torn
		// bytes, or everything, sweeping the space of real crash states.
		unsynced := int(f.Size() - f.DurableSize())
		var extra int
		switch i % 4 {
		case 0:
			extra = 0
		case 1:
			extra = min(1+r.IntN(40), unsynced)
		case 2:
			extra = unsynced / 2
		default:
			extra = unsynced
		}
		surviving = f.Crash(extra)
		// The engine object is abandoned without Close — that is the
		// SIGKILL. Its goroutine dies with the test process scope; release
		// the epoch so -race's leak surface stays quiet.
		e.Close()
	}

	// Final session closes cleanly; the whole journal — every recovery
	// seam included — must replay bit-for-bit.
	f := faultfs.NewFile(surviving)
	e, rstats, err := Recover(f, crashCfg(f))
	if err != nil {
		t.Fatalf("final recover: %v", err)
	}
	if rstats.Events < ackedEver {
		t.Fatalf("final recovery lost acknowledged events: recovered %d, acknowledged %d", rstats.Events, ackedEver)
	}
	mustIngestN(t, e, r, 5)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := Replay(bytes.NewReader(f.Bytes()))
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	if rs.Events != rstats.Events+5 {
		t.Fatalf("final journal has %d events, want %d", rs.Events, rstats.Events+5)
	}
}

// TestIngestAckIsDurable pins the drain contract satellite: every Ingest
// that returns nil — even one racing Close — corresponds to an event in
// the journal. Events refused with ErrClosed must not be counted on, but
// acknowledged ones can never be dropped.
func TestIngestAckIsDurable(t *testing.T) {
	f := faultfs.NewFile(nil)
	cfg := crashCfg(f)
	cfg.QueueSize = 4 // small queue: the Close race window stays hot
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var (
		wg    sync.WaitGroup
		acked atomic.Uint64
	)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 55))
			<-start
			for {
				err := e.Ingest(randomEvent(e, r))
				if err == nil {
					acked.Add(1)
					continue
				}
				if errors.Is(err, ErrClosed) {
					return
				}
				t.Errorf("worker %d: unexpected ingest error: %v", w, err)
				return
			}
		}(w)
	}
	close(start)
	time.Sleep(10 * time.Millisecond) // let the race build a queue
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	rs, err := Replay(bytes.NewReader(f.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rs.Events < acked.Load() {
		t.Fatalf("journal holds %d events but %d were acknowledged", rs.Events, acked.Load())
	}
}

// TestDegradedMode pins graceful degradation: when fsync starts failing,
// in-flight ingests are refused with ErrDegraded, later ingests fail fast,
// queries keep answering from the last good epoch, the epoch counter
// freezes, and staleness grows.
func TestDegradedMode(t *testing.T) {
	f := faultfs.NewFile(nil)
	cfg := crashCfg(f)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(61, 62))
	mustIngestN(t, e, r, 10)
	goodEpochs := e.Stats().Epochs

	f.FailSyncAt(f.Syncs()+1, nil) // every sync from here on fails
	var degradedErr error
	for i := 0; i < 50; i++ {
		if degradedErr = e.Ingest(randomEvent(e, r)); degradedErr != nil {
			break
		}
	}
	if !errors.Is(degradedErr, ErrDegraded) {
		t.Fatalf("ingest against a failing disk returned %v, want ErrDegraded", degradedErr)
	}
	// Fail-fast path: refused before touching the queue.
	if err := e.Ingest(randomEvent(e, r)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest in degraded mode returned %v, want ErrDegraded", err)
	}
	st := e.Stats()
	if !st.Degraded {
		t.Fatal("stats do not report degraded")
	}
	if st.Epochs != goodEpochs {
		// One epoch may have published between the last good ingest and
		// the sync failure, but none after degradation; re-reading must
		// show a frozen counter.
		goodEpochs = st.Epochs
	}
	// Queries still answer, pinned to the last good epoch.
	res, err := e.Trust(0, 5, 0)
	if err != nil {
		t.Fatalf("trust in degraded mode: %v", err)
	}
	if res.Epoch != goodEpochs-1 {
		t.Fatalf("degraded query served epoch %d, last good is %d", res.Epoch, goodEpochs-1)
	}
	time.Sleep(5 * time.Millisecond)
	st2 := e.Stats()
	if st2.Epochs != goodEpochs {
		t.Fatalf("epochs advanced in degraded mode: %d -> %d", goodEpochs, st2.Epochs)
	}
	if st2.EpochStalenessMs < st.EpochStalenessMs {
		t.Fatalf("staleness shrank in degraded mode: %d -> %d", st.EpochStalenessMs, st2.EpochStalenessMs)
	}
	// Close surfaces the journal failure instead of swallowing it.
	if err := e.Close(); err == nil {
		t.Fatal("close of a degraded engine returned nil")
	}
}

// TestBackpressureSheds pins the shed policy: with the writer stalled on a
// hung fsync and the queue full, IngestCtx gives up at its deadline with
// ErrOverloaded, the shed counter and queue depth show up in stats, and
// queries remain unaffected throughout.
func TestBackpressureSheds(t *testing.T) {
	f := faultfs.NewFile(nil)
	cfg := crashCfg(f)
	cfg.QueueSize = 2
	cfg.BatchSize = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(71, 72))
	release := f.StallSyncs()
	defer release()

	// Fill the pipeline: the writer blocks inside the stalled group commit,
	// then the queue backs up. Run the fillers in goroutines — each blocks
	// awaiting its durable ack until the disk unsticks.
	var fillers sync.WaitGroup
	for i := 0; i < cfg.QueueSize+2; i++ {
		ev := randomEvent(e, r)
		fillers.Add(1)
		go func() {
			defer fillers.Done()
			e.Ingest(ev) // durable acks arrive after release()
		}()
	}
	// Wait until the queue is actually full.
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().QueueDepth < cfg.QueueSize {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", e.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.IngestCtx(ctx, randomEvent(e, r)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("IngestCtx against a full queue returned %v, want ErrOverloaded", err)
	}
	st := e.Stats()
	if st.ShedTotal == 0 {
		t.Fatal("shed_total is 0 after a shed")
	}
	if st.QueueDepth == 0 {
		t.Fatal("queue_depth is 0 while the writer is stalled")
	}
	// Queries are untouched by a stalled journal writer.
	if _, err := e.Trust(0, 5, 0); err != nil {
		t.Fatalf("trust while stalled: %v", err)
	}
	release()
	fillers.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(f.Bytes())); err != nil {
		t.Fatalf("replay after stall: %v", err)
	}
}

// TestFsyncModes exercises all three -fsync modes over a syncable journal
// and pins their sync-call cadence ordering: always >= batch >= off (== 0).
func TestFsyncModes(t *testing.T) {
	counts := map[FsyncMode]int{}
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncOff} {
		f := faultfs.NewFile(nil)
		cfg := crashCfg(f)
		cfg.Fsync = mode
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewPCG(81, 82))
		mustIngestN(t, e, r, 20)
		if _, err := e.Trust(0, 5, 0); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		counts[mode] = f.Syncs()
		if _, err := Replay(bytes.NewReader(f.Bytes())); err != nil {
			t.Fatalf("%v: replay: %v", mode, err)
		}
		if mode != FsyncOff {
			if got := e.Stats().FsyncP99Ns; got == 0 {
				t.Fatalf("%v: fsync_p99_ns is 0 after %d syncs", mode, f.Syncs())
			}
		}
	}
	if counts[FsyncOff] != 0 {
		t.Fatalf("FsyncOff synced %d times", counts[FsyncOff])
	}
	if counts[FsyncAlways] < counts[FsyncBatch] || counts[FsyncBatch] == 0 {
		t.Fatalf("sync cadence out of order: always %d, batch %d", counts[FsyncAlways], counts[FsyncBatch])
	}
}

// TestParseFsyncMode pins the flag spellings.
func TestParseFsyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncMode
		ok   bool
	}{
		{"batch", FsyncBatch, true},
		{"always", FsyncAlways, true},
		{"off", FsyncOff, true},
		{"fsync", 0, false},
		{"", 0, false},
	} {
		got, err := ParseFsyncMode(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseFsyncMode(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("FsyncMode round trip: %q -> %q", tc.in, got.String())
		}
	}
}
