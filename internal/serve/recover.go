package serve

import (
	"errors"
	"fmt"
	"io"
)

// RecoverFile is the journal backing store Recover needs: sequential reads
// of the existing prefix, truncation of a torn tail, and appends for the
// resumed engine's continuation. *os.File (opened O_RDWR|O_APPEND) and
// faultfs.Image satisfy it; when it also implements Sync() error the
// resumed journal keeps its durability guarantees.
type RecoverFile interface {
	io.Reader
	io.Writer
	Truncate(size int64) error
}

// RecoverStats summarizes a recovery: how much journaled state was
// re-applied and how many torn-tail bytes were truncated away.
type RecoverStats struct {
	Events    uint64 `json:"events"`
	Epochs    uint64 `json:"epochs"`
	Queries   uint64 `json:"queries"`
	TornBytes int64  `json:"torn_bytes"`
}

// Recover rebuilds a serving engine from a crashed journal and keeps the
// journal as its continuation: the world is rebuilt from the header's
// recipe, every event is re-applied in sequence (queries are counted, not
// re-verified — Replay is the auditor), the event and epoch counters resume
// where the journal left off, and a fresh epoch is captured, journaled
// under the next id, and published before the engine starts serving — so
// the continued journal stays a single contiguous stream that Replay
// verifies end to end.
//
// The torn-tail rule: exactly one damaged final line (torn by a crash
// mid-write, or failing its CRC) is tolerated — it is truncated away,
// because group-commit ordering means a torn final line was never
// acknowledged. Damage anywhere earlier is a hard error: an acknowledged
// prefix that cannot be read back is data loss, and silently skipping it
// would serve wrong state.
//
// A journal that is empty (or holds only a torn header line) recovers to a
// fresh engine: the tail is truncated and New takes over, writing a new
// header. Recover overrides cfg's world-construction fields with the
// header's; only cfg's operational fields (cadence, queue, batch, workers,
// fsync) apply. cfg.Journal is ignored — f is the journal.
func Recover(f RecoverFile, cfg Config) (*Engine, RecoverStats, error) {
	var stats RecoverStats
	cfg = cfg.withDefaults()
	cfg.Journal = f

	s := newJournalScanner(f)
	hcfg, err := replayHeader(s)
	var corrupt *corruptError
	switch {
	case errors.Is(err, io.EOF):
		// Zero-byte journal: fresh start.
		e, nerr := New(cfg)
		return e, stats, nerr
	case errors.As(err, &corrupt) && corrupt.Ln == 1:
		// The header line itself is the torn tail: nothing durable ever
		// made it to disk, so truncate to empty and start fresh.
		if _, err := s.next(); !errors.Is(err, io.EOF) {
			return nil, stats, fmt.Errorf("serve: recover: header %w, but the journal continues past it", corrupt)
		}
		stats.TornBytes = s.Off() - corrupt.Off
		if err := f.Truncate(0); err != nil {
			return nil, stats, fmt.Errorf("serve: recover: truncating torn header: %w", err)
		}
		e, nerr := New(cfg)
		return e, stats, nerr
	case err != nil:
		return nil, stats, fmt.Errorf("serve: recover: %w", err)
	}
	// World recipe comes from the header; scheduling and durability knobs
	// from the caller.
	cfg.Net, cfg.Nodes, cfg.Seed, cfg.Chars = hcfg.Net, hcfg.Nodes, hcfg.Seed, hcfg.Chars
	cfg.Model, cfg.Seeded, cfg.Theta = hcfg.Model, hcfg.Seeded, hcfg.Theta
	w, err := buildWorld(cfg)
	if err != nil {
		return nil, stats, fmt.Errorf("serve: recover: %w", err)
	}

	var (
		truncateAt int64 = -1
		nextEpoch  uint64
	)
scan:
	for {
		line, err := s.next()
		switch {
		case errors.Is(err, io.EOF):
			break scan
		case errors.As(err, &corrupt):
			// Tolerable only as the very last line: probe for a successor.
			if _, err := s.next(); !errors.Is(err, io.EOF) {
				return nil, stats, fmt.Errorf("serve: recover: %w, but the journal continues past it — corruption before the tail is unrecoverable", corrupt)
			}
			truncateAt = corrupt.Off
			break scan
		case err != nil:
			return nil, stats, fmt.Errorf("serve: recover: %w", err)
		}
		ln := s.Ln()
		switch line.Kind {
		case "event":
			if err := applyEventLine(w, line.Event, stats.Events); err != nil {
				return nil, stats, fmt.Errorf("serve: recover: line %d: %w", ln, err)
			}
			stats.Events++
		case "epoch":
			ep := line.Epoch
			if ep == nil {
				return nil, stats, fmt.Errorf("serve: recover: line %d: epoch line without payload", ln)
			}
			if ep.Events != stats.Events {
				return nil, stats, fmt.Errorf("serve: recover: line %d: epoch %d captured at %d events, journal has applied %d", ln, ep.ID, ep.Events, stats.Events)
			}
			if ep.ID < nextEpoch {
				return nil, stats, fmt.Errorf("serve: recover: line %d: epoch id %d is not increasing (last was %d)", ln, ep.ID, nextEpoch-1)
			}
			nextEpoch = ep.ID + 1
			stats.Epochs++
		case "query":
			stats.Queries++
		case "header":
			return nil, stats, fmt.Errorf("serve: recover: line %d: duplicate header", ln)
		default:
			return nil, stats, fmt.Errorf("serve: recover: line %d: unknown line kind %q", ln, line.Kind)
		}
	}
	if truncateAt >= 0 {
		stats.TornBytes = s.Off() - truncateAt
		if err := f.Truncate(truncateAt); err != nil {
			return nil, stats, fmt.Errorf("serve: recover: truncating torn tail: %w", err)
		}
	}

	// Resume the engine on the journal's seam: counters continue exactly
	// where the prefix left off, and the recovery epoch is journaled (and
	// synced) under the next id before anything is served or ingested.
	e := newEngine(cfg, w)
	e.applied.Store(stats.Events)
	e.ingested.Store(stats.Events)
	e.recovered = stats.Events
	e.epochs.Store(nextEpoch)
	if !e.captureAndPublish() {
		return nil, stats, fmt.Errorf("serve: recover: journaling the recovery epoch: %w", e.journal.lastErr())
	}
	go e.run()
	return e, stats, nil
}
