package serve

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"

	"siot/internal/core"
)

// ReplayStats summarizes a verified journal.
type ReplayStats struct {
	Events  uint64 `json:"events"`
	Epochs  uint64 `json:"epochs"`
	Queries uint64 `json:"queries"`
}

// replayEpoch is one re-captured epoch kept alive for the rest of the
// replay: served queries may reference any past epoch (a query can straddle
// a swap, and journal lines from concurrent queries interleave), so epochs
// are only released when the journal ends.
type replayEpoch struct {
	view *core.RoundView
	memo *core.EdgeMemo
}

// ErrJournalVersion is returned (wrapped) by Replay and Recover when the
// journal header carries a version this build does not speak. Match with
// errors.Is.
var ErrJournalVersion = errors.New("unsupported journal header version")

// ErrJournalModel is returned (wrapped) by Replay and Recover when the
// journal header names a trust model — or, in version-2 headers, a policy —
// that is not registered in this build. Replaying under a silently
// substituted model would diverge on the first non-direct query, so the
// header is rejected up front instead. Match with errors.Is.
var ErrJournalModel = errors.New("unknown trust model in journal header")

// replayHeader reads and validates the journal's first line, which must be
// an intact header of a supported version, and returns the fully defaulted
// config it pins. Shared by Replay and Recover. Version 2 headers (bare
// policy, pre-zoo) resolve to the policy's adapter model and replay
// byte-for-byte; version 3 headers name any registered model.
func replayHeader(s *journalScanner) (Config, error) {
	line, err := s.next()
	if err != nil {
		return Config{}, fmt.Errorf("reading header: %w", err)
	}
	if line.Kind != "header" || line.Header == nil {
		return Config{}, fmt.Errorf("journal starts with %q, want header", line.Kind)
	}
	h := *line.Header
	var mdl core.TrustModel
	switch h.Version {
	case prevJournalVersion:
		policy, err := core.ParsePolicy(h.Policy)
		if err != nil {
			return Config{}, fmt.Errorf("%w: %v", ErrJournalModel, err)
		}
		mdl = policy.Model()
	case journalVersion:
		mdl, err = core.ParseModel(h.Model)
		if err != nil {
			return Config{}, fmt.Errorf("%w: %v", ErrJournalModel, err)
		}
	default:
		return Config{}, fmt.Errorf("%w: %d (want %d or %d)",
			ErrJournalVersion, h.Version, prevJournalVersion, journalVersion)
	}
	return Config{
		Net: h.Net, Nodes: h.Nodes, Seed: h.Seed, Chars: h.Chars,
		Model: mdl, Seeded: h.Seeded, Theta: h.Theta,
	}.withDefaults(), nil
}

// applyEventLine re-applies one journaled event to a world, enforcing the
// dense-sequence contract. applied is the count of events already applied.
func applyEventLine(w *world, ev *eventLine, applied uint64) error {
	if ev == nil {
		return errors.New("event line without payload")
	}
	if ev.Seq != applied+1 {
		return fmt.Errorf("event seq %d, want %d", ev.Seq, applied+1)
	}
	if ev.Type < 0 || ev.Type >= len(w.setup.Universe.Tasks) {
		return fmt.Errorf("task type %d out of range", ev.Type)
	}
	tk := w.setup.Universe.Tasks[ev.Type]
	switch ev.Op {
	case "observe":
		out := core.Outcome{Success: ev.Success, Gain: ev.Gain, Damage: ev.Damage, Cost: ev.Cost}
		w.pop.Agent(core.AgentID(ev.Trustor)).Store.Observe(core.AgentID(ev.Trustee), tk, out, core.PerfectEnv())
		w.pop.Agent(core.AgentID(ev.Trustee)).Store.ObserveUsage(core.AgentID(ev.Trustor), ev.Abusive)
	case "recommend":
		exp := core.Expectation{S: ev.S, G: ev.G, D: ev.D, C: ev.C}
		w.pop.Agent(core.AgentID(ev.Trustor)).Store.Seed(core.AgentID(ev.Trustee), tk, exp)
	default:
		return fmt.Errorf("unknown event op %q", ev.Op)
	}
	return nil
}

// Replay re-executes a trust-assertion journal and verifies it: the world
// is rebuilt from the header's recipe, events are re-applied in journal
// order, each epoch marker re-captures a frozen view, and every query line
// is re-answered from its recorded epoch and compared bit-for-bit against
// the journaled TW. Any mismatch — a CRC-failing or torn line, sequence
// gap, event-count drift at an epoch, unknown epoch id, or a single
// differing bit — fails with a descriptive error. A nil error is the replay
// contract: every value the engine ever served is reproducible from the
// journal alone. (Replay is strict: it rejects even a torn final line; run
// Recover first to truncate a crashed journal's tail.)
func Replay(r io.Reader) (ReplayStats, error) {
	var stats ReplayStats
	s := newJournalScanner(r)
	cfg, err := replayHeader(s)
	if err != nil {
		return stats, fmt.Errorf("serve: replay: %w", err)
	}
	w, err := buildWorld(cfg)
	if err != nil {
		return stats, fmt.Errorf("serve: replay: %w", err)
	}

	workers := runtime.GOMAXPROCS(0)
	pool := core.NewArenaPool()
	epochs := make(map[uint64]*replayEpoch)
	defer func() {
		for _, ep := range epochs {
			ep.memo.Release()
			ep.view.Release()
		}
	}()
	norm := w.pop.Config().Update.Norm
	var sr core.SearchResult
	for {
		line, err := s.next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return stats, nil
			}
			return stats, fmt.Errorf("serve: replay: %w", err)
		}
		ln := s.Ln()
		switch line.Kind {
		case "event":
			if err := applyEventLine(w, line.Event, stats.Events); err != nil {
				return stats, fmt.Errorf("serve: replay: line %d: %w", ln, err)
			}
			stats.Events++
		case "epoch":
			ep := line.Epoch
			if ep == nil {
				return stats, fmt.Errorf("serve: replay: line %d: epoch line without payload", ln)
			}
			if ep.Events != stats.Events {
				return stats, fmt.Errorf("serve: replay: line %d: epoch %d captured at %d events, journal has applied %d", ln, ep.ID, ep.Events, stats.Events)
			}
			if _, dup := epochs[ep.ID]; dup {
				return stats, fmt.Errorf("serve: replay: line %d: duplicate epoch id %d", ln, ep.ID)
			}
			view := w.pop.RoundView(workers, pool)
			memo := core.NewEdgeMemoPooled(view.TrustView, norm, workers, pool)
			memo.RequireModel(cfg.Model, w.setup.Universe.Tasks)
			epochs[ep.ID] = &replayEpoch{view: view, memo: memo}
			stats.Epochs++
		case "query":
			q := line.Query
			if q == nil {
				return stats, fmt.Errorf("serve: replay: line %d: query line without payload", ln)
			}
			ep, ok := epochs[q.Epoch]
			if !ok {
				return stats, fmt.Errorf("serve: replay: line %d: query references unknown epoch %d", ln, q.Epoch)
			}
			if q.Type < 0 || q.Type >= len(w.setup.Universe.Tasks) {
				return stats, fmt.Errorf("serve: replay: line %d: task type %d out of range", ln, q.Type)
			}
			res := answer(w.searcher, ep.view, ep.memo, &sr,
				core.AgentID(q.Trustor), core.AgentID(q.Trustee), w.setup.Universe.Tasks[q.Type], cfg.Model)
			bits := fmt.Sprintf("%016x", math.Float64bits(res.TW))
			if bits != q.TWBits || res.Found != q.Found || res.Direct != q.Direct {
				return stats, fmt.Errorf(
					"serve: replay: line %d: trust(%d, %d, type %d) @ epoch %d diverged: got tw=%v bits=%s found=%v direct=%v, journal has tw=%v bits=%s found=%v direct=%v",
					ln, q.Trustor, q.Trustee, q.Type, q.Epoch,
					res.TW, bits, res.Found, res.Direct, q.TW, q.TWBits, q.Found, q.Direct)
			}
			stats.Queries++
		case "header":
			return stats, fmt.Errorf("serve: replay: line %d: duplicate header", ln)
		default:
			return stats, fmt.Errorf("serve: replay: line %d: unknown line kind %q", ln, line.Kind)
		}
	}
}
