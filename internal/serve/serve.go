// Package serve is the trust-as-a-service engine: a long-lived online query
// layer mounted on the frozen-epoch seam the simulation built. It ingests
// observation/recommendation events concurrently into the sharded stores
// through one batching writer goroutine, answers trust(trustor, trustee,
// task) queries lock-free from the current sim.EpochHandle epoch (RoundView
// + EdgeMemo, one Acquire/Release per request, so a query straddling a swap
// keeps a consistent snapshot), re-captures and atomically publishes a fresh
// epoch on a count- or time-triggered cadence, and appends every ingested
// event and served value to an append-only trust-assertion journal that
// Replay reproduces byte-for-byte.
//
// The serving seam is crash-safe: Ingest acknowledges an event only after
// the group-commit fsync covering its journal line returns (FsyncBatch), so
// an acknowledged event is on disk; Recover rebuilds the engine from a
// journal prefix after a crash, tolerating one torn final line; a full
// queue sheds with ErrOverloaded instead of blocking forever; and a failing
// disk flips the engine into a degraded mode that keeps answering queries
// from the last good epoch.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"siot/internal/benchnet"
	"siot/internal/core"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// Config parameterizes an Engine. The world-construction fields (Net, Nodes,
// Seed, Chars, Model, Seeded, Theta) are recorded in the journal header —
// they fully determine the initial state, so Replay rebuilds the identical
// world from the header alone. The operational fields (cadence, queue and
// batch sizes, workers, fsync mode) affect only scheduling and durability,
// never values.
type Config struct {
	// Net names a calibrated socialgen profile ("facebook", "gplus",
	// "twitter"); Nodes > 0 instead selects the canonical benchmark profile
	// at that node count (benchnet.Profile). Defaults to "facebook".
	Net   string
	Nodes int
	// Seed drives every random choice: network generation, role assignment,
	// task universe, and experience seeding.
	Seed uint64
	// Chars is the task-characteristic alphabet size (default 5; the
	// universe holds 2*Chars task types).
	Chars int
	// Policy is the legacy spelling of the trust-transfer method; it is
	// consulted only when Model is nil (the zero config serves the
	// traditional policy, exactly as before the trust-model zoo).
	Policy core.Policy
	// Model is the trust model used for non-direct answers — any registered
	// core.TrustModel, including the three policy adapters. Takes precedence
	// over Policy; the journal header records its name.
	Model core.TrustModel
	// Seeded pre-populates experience records (sim.SeedExperience), so the
	// engine starts with answerable queries instead of a cold store.
	Seeded bool
	// Theta is the reverse-evaluation threshold installed on every trustee.
	Theta float64
	// EpochEvery re-captures after that many applied events (default 256);
	// EpochInterval, when positive, also re-captures on a timer if events
	// were applied since the last capture.
	EpochEvery    int
	EpochInterval time.Duration
	// BatchSize bounds how many queued events the writer applies per wakeup
	// between capture checks (default 128); one fsync acknowledges the whole
	// batch. QueueSize is the ingest buffer (default 1024); IngestCtx sheds
	// with ErrOverloaded when it stays full past the context deadline.
	BatchSize int
	QueueSize int
	// Workers bounds capture/memo parallelism (default GOMAXPROCS). Results
	// are bit-identical at every worker count.
	Workers int
	// Journal, when non-nil, receives the trust-assertion journal. When it
	// implements Sync() error (an *os.File, a faultfs.File), Fsync governs
	// when the journal syncs it; otherwise sync degrades to a flush.
	Journal io.Writer
	// Fsync selects the journal durability mode (default FsyncBatch: one
	// sync per applied batch and per epoch line).
	Fsync FsyncMode
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Net == "" && c.Nodes <= 0 {
		c.Net = "facebook"
	}
	if c.Chars <= 0 {
		c.Chars = 5
	}
	if c.EpochEvery <= 0 {
		c.EpochEvery = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Model == nil {
		c.Model = c.Policy.Model()
	}
	return c
}

// world is the deterministic state a Config builds: the population, its
// task universe, and a searcher over it. The engine, Replay, and Recover
// all construct worlds through this one path, which is what makes the
// replay and recovery contracts hold.
type world struct {
	pop      *sim.Population
	setup    sim.TransitivitySetup
	searcher *core.Searcher
}

// buildWorld constructs the world of a (defaulted) config.
func buildWorld(cfg Config) (*world, error) {
	var profile socialgen.Profile
	if cfg.Nodes > 0 {
		profile = benchnet.Profile(cfg.Nodes)
	} else {
		var err error
		profile, err = socialgen.ProfileByName(cfg.Net)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	net := socialgen.Generate(profile, cfg.Seed)
	pcfg := sim.DefaultPopulationConfig(cfg.Seed)
	pcfg.Theta = cfg.Theta
	pcfg.Parallelism = cfg.Workers
	pop := sim.NewPopulation(net, pcfg)
	setup := sim.DefaultTransitivitySetup(cfg.Chars, pop.Rand("serve-setup"))
	if cfg.Seeded {
		sim.SeedExperience(pop, setup, cfg.Seed)
	}
	return &world{
		pop:      pop,
		setup:    setup,
		searcher: pop.Searcher(setup.MaxDepth, setup.Omega1, setup.Omega2),
	}, nil
}

// EventOp selects what an ingested event does to the stores.
type EventOp int

const (
	// OpObserve records a delegation outcome: the trustor observes the
	// trustee on a task, and the trustee logs how the trustor used its
	// resources (the reverse-evaluation counter).
	OpObserve EventOp = iota
	// OpRecommend seeds the trustor's expectation about the trustee on a
	// task — third-party experience arriving over the social edge.
	OpRecommend
)

// Event is one ingestable store mutation. Tasks are referenced by index
// into the engine's task universe (TaskTypes), which the journal header
// pins, so an event is fully described by plain numbers.
type Event struct {
	Op      EventOp
	Trustor core.AgentID
	Trustee core.AgentID
	Type    int // task-type index into the universe
	// OpObserve payload.
	Outcome core.Outcome
	Abusive bool
	// OpRecommend payload.
	Exp core.Expectation
}

// TrustResult is one served trust value. Epoch identifies the snapshot it
// was computed from; Direct reports whether the trustor's own experience
// answered (otherwise the value came from the policy's transitive search).
type TrustResult struct {
	TW     float64
	Found  bool
	Direct bool
	Epoch  uint64
}

// ErrClosed is returned by Ingest and Trust after Close.
var ErrClosed = errors.New("serve: engine closed")

// ErrOverloaded is returned by IngestCtx when the ingest queue stays full
// past the context's deadline — the shed policy. Callers map it to HTTP 429
// with a Retry-After.
var ErrOverloaded = errors.New("serve: ingest queue full")

// ErrDegraded is returned by Ingest once a journal write or sync has failed:
// the engine stops accepting events (their durability could not be
// promised) but keeps answering queries from the last good epoch. The
// condition is terminal for the process — restart with Recover.
var ErrDegraded = errors.New("serve: journal failed; serving degraded from last good epoch")

// queued is one in-flight ingest: the event plus the channel its durable
// acknowledgement travels back on (buffered, so the writer never blocks on
// a departed waiter).
type queued struct {
	ev   Event
	done chan error
}

// epochPayload rides each published epoch through the EpochHandle: the
// epoch's id and its Required memo, released with the view by the handle's
// refcount — one count covers view and memo, so a query straddling a swap
// reads a consistent (view, memo) pair to the end.
type epochPayload struct {
	id   uint64
	memo *core.EdgeMemo
}

// ReleaseEpoch implements sim.EpochAttachment.
func (p *epochPayload) ReleaseEpoch() { p.memo.Release() }

// Engine is the long-lived trust server. All methods are safe for
// concurrent use; store writes are serialized through one writer goroutine
// (the frozen-epoch capture requires quiescent stores), queries never touch
// the stores at all.
type Engine struct {
	cfg   Config
	world *world
	pool  *core.ArenaPool

	handle sim.EpochHandle
	queue  chan queued
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	journal *journal
	results sync.Pool // *core.SearchResult

	ingested    atomic.Uint64
	applied     atomic.Uint64
	queries     atomic.Uint64
	epochs      atomic.Uint64 // published epochs; ids are epochs-1
	shed        atomic.Uint64
	recovered   uint64 // events re-applied by Recover, fixed at build time
	degraded    atomic.Bool
	lastEpochNs atomic.Int64 // wall-clock ns of the last publish (staleness)
	lat         latencyHist  // query latency
	fsyncLat    latencyHist  // journal fsync latency
}

// newEngine assembles an Engine around an already-built world without
// writing anything or starting the writer — New and Recover share it and
// differ only in how they seed the journal and the counters.
func newEngine(cfg Config, w *world) *Engine {
	e := &Engine{
		cfg:     cfg,
		world:   w,
		pool:    core.NewArenaPool(),
		queue:   make(chan queued, cfg.QueueSize),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		results: sync.Pool{New: func() any { return new(core.SearchResult) }},
	}
	e.journal = newJournal(cfg.Journal, cfg.Fsync, &e.fsyncLat)
	return e
}

// New builds the world, writes the journal header, publishes epoch 0, and
// starts the writer goroutine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	w, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	e := newEngine(cfg, w)
	e.journal.header(headerLine{
		Version: journalVersion,
		Net:     cfg.Net, Nodes: cfg.Nodes, Seed: cfg.Seed, Chars: cfg.Chars,
		Model: cfg.Model.Name(), Seeded: cfg.Seeded, Theta: cfg.Theta,
	})
	if !e.captureAndPublish() {
		return nil, e.journal.lastErr()
	}
	go e.run()
	return e, nil
}

// NumAgents returns the number of agents in the served population.
func (e *Engine) NumAgents() int { return len(e.world.pop.Agents) }

// Neighbors returns the social neighbors of an agent, in ascending ID
// order — the only trustees events about this agent may reference. The
// slice is shared and must not be modified.
func (e *Engine) Neighbors(id core.AgentID) []core.AgentID { return e.world.pop.Neighbors(id) }

// TaskTypes returns the closed task universe queries and events index into.
// The slice is shared and must not be modified.
func (e *Engine) TaskTypes() []task.Task { return e.world.setup.Universe.Tasks }

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	var staleness int64
	if last := e.lastEpochNs.Load(); last > 0 {
		staleness = (time.Now().UnixNano() - last) / int64(time.Millisecond)
		if staleness < 0 {
			staleness = 0
		}
	}
	return Stats{
		Ingested:         e.ingested.Load(),
		Applied:          e.applied.Load(),
		Queries:          e.queries.Load(),
		Epochs:           e.epochs.Load(),
		QueryP50Ns:       e.lat.quantile(0.50),
		QueryP99Ns:       e.lat.quantile(0.99),
		QueueDepth:       len(e.queue),
		ShedTotal:        e.shed.Load(),
		FsyncP99Ns:       e.fsyncLat.quantile(0.99),
		RecoveredEvents:  e.recovered,
		EpochStalenessMs: staleness,
		Degraded:         e.degraded.Load(),
	}
}

// validate rejects events the frozen-epoch contract cannot serve: records
// live only along social edges (the capture arenas are per-edge), so both
// event kinds require trustor and trustee to be social neighbors.
func (e *Engine) validate(ev Event) error {
	n := core.AgentID(e.NumAgents())
	if ev.Trustor < 0 || ev.Trustor >= n || ev.Trustee < 0 || ev.Trustee >= n {
		return fmt.Errorf("serve: agent id out of range [0, %d): trustor %d, trustee %d", n, ev.Trustor, ev.Trustee)
	}
	if ev.Trustor == ev.Trustee {
		return fmt.Errorf("serve: trustor and trustee are both %d", ev.Trustor)
	}
	if ev.Type < 0 || ev.Type >= len(e.TaskTypes()) {
		return fmt.Errorf("serve: task type %d out of range [0, %d)", ev.Type, len(e.TaskTypes()))
	}
	if _, ok := slices.BinarySearch(e.world.pop.Neighbors(ev.Trustor), ev.Trustee); !ok {
		return fmt.Errorf("serve: %d and %d are not social neighbors", ev.Trustor, ev.Trustee)
	}
	switch ev.Op {
	case OpObserve:
		for _, v := range [...]float64{ev.Outcome.Gain, ev.Outcome.Damage, ev.Outcome.Cost} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("serve: outcome component %v is not a finite non-negative value", v)
			}
		}
	case OpRecommend:
		if err := ev.Exp.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("serve: unknown event op %d", ev.Op)
	}
	return nil
}

// Ingest validates, enqueues, and durably acknowledges one event: it
// returns nil only after the writer goroutine has applied the event and the
// group-commit sync covering its journal line returned. It blocks without
// bound while the queue is full; use IngestCtx to shed under overload.
func (e *Engine) Ingest(ev Event) error { return e.IngestCtx(context.Background(), ev) }

// IngestCtx is Ingest with backpressure: when the queue is full it waits
// only until ctx is done, then sheds the event with ErrOverloaded (counted
// in Stats.ShedTotal) instead of blocking the caller forever. A nil return
// is a durability promise — the event is applied, journaled, and (in
// FsyncBatch/FsyncAlways modes on a syncable journal) fsynced, so a crash
// cannot lose it. Any error return means the event was not acknowledged;
// it may still reach the journal if it was already queued when the engine
// closed, but the caller must assume it did not.
func (e *Engine) IngestCtx(ctx context.Context, ev Event) error {
	if err := e.validate(ev); err != nil {
		return err
	}
	if e.closed.Load() {
		return ErrClosed
	}
	if e.degraded.Load() {
		return ErrDegraded
	}
	q := queued{ev: ev, done: make(chan error, 1)}
	select {
	case e.queue <- q:
	default:
		// Queue full: wait bounded by the caller's deadline, then shed.
		select {
		case e.queue <- q:
		case <-ctx.Done():
			e.shed.Add(1)
			return ErrOverloaded
		case <-e.stop:
			return ErrClosed
		}
	}
	e.ingested.Add(1)
	select {
	case err := <-q.done:
		return err
	case <-e.done:
		// The writer exited. Its shutdown drain acknowledges everything it
		// found queued, so check for a buffered ack before giving up — an
		// event the drain missed is unacknowledged, never half-promised.
		select {
		case err := <-q.done:
			return err
		default:
			return ErrClosed
		}
	}
}

// Trust answers trust(trustor, trustee, type) from the current epoch:
// direct experience of the trustor when it exists, otherwise the policy's
// transitive search over the frozen view. The whole answer is computed
// under one epoch reference — no locks, no store access — and journaled
// with the epoch id and exact result bits. In degraded mode the current
// epoch is the last one the journal durably recorded; Stats exposes its
// staleness.
func (e *Engine) Trust(trustor, trustee core.AgentID, typeIdx int) (TrustResult, error) {
	n := core.AgentID(e.NumAgents())
	if trustor < 0 || trustor >= n || trustee < 0 || trustee >= n {
		return TrustResult{}, fmt.Errorf("serve: agent id out of range [0, %d): trustor %d, trustee %d", n, trustor, trustee)
	}
	if typeIdx < 0 || typeIdx >= len(e.TaskTypes()) {
		return TrustResult{}, fmt.Errorf("serve: task type %d out of range [0, %d)", typeIdx, len(e.TaskTypes()))
	}
	start := time.Now()
	ref := e.handle.Acquire()
	if ref == nil {
		return TrustResult{}, ErrClosed
	}
	pay := ref.Attachment().(*epochPayload)
	sr := e.results.Get().(*core.SearchResult)
	res := answer(e.world.searcher, ref.View(), pay.memo, sr, trustor, trustee, e.TaskTypes()[typeIdx], e.cfg.Model)
	e.results.Put(sr)
	res.Epoch = pay.id
	ref.Release()
	e.lat.observe(time.Since(start).Nanoseconds())
	e.queries.Add(1)
	e.journal.query(queryLine{
		Epoch: res.Epoch, Trustor: int32(trustor), Trustee: int32(trustee), Type: typeIdx,
		TW: res.TW, TWBits: fmt.Sprintf("%016x", math.Float64bits(res.TW)),
		Found: res.Found, Direct: res.Direct,
	})
	return res, nil
}

// answer computes one trust value from a frozen (view, memo) pair. It is
// shared verbatim by Engine.Trust and Replay — the replay contract is that
// this function over the re-captured epoch reproduces the journaled bits.
// The direct-experience channel reads the view's model-independent BestTW
// (own experience needs no transfer method, and version-2 journals replay
// byte-for-byte because the policy adapters route the transitive search
// through the unchanged FindViewInto path); only non-direct answers go
// through the model.
func answer(s *core.Searcher, view *core.RoundView, memo *core.EdgeMemo, sr *core.SearchResult, trustor, trustee core.AgentID, t task.Task, m core.TrustModel) TrustResult {
	if edge, ok := view.EdgeIndex(trustor, trustee); ok {
		if tw, ok := view.BestTW(edge, t); ok {
			return TrustResult{TW: tw, Found: true, Direct: true}
		}
	}
	s.FindViewModelInto(sr, view.TrustView, memo, trustor, t, m)
	for _, c := range sr.Candidates {
		if c.ID == trustee {
			return TrustResult{TW: c.TW, Found: true}
		}
	}
	return TrustResult{}
}

// Close stops ingestion, drains and acknowledges the queue, retires the
// current epoch, and syncs the journal. A journal that lost data surfaces
// here (with the failing event seq), so the SIGTERM drain path can turn a
// partial write into a non-zero exit. Idempotent; concurrent Trust calls
// that already hold an epoch reference finish normally.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		<-e.done
		return e.journal.lastErr()
	}
	close(e.stop)
	<-e.done
	return e.journal.close()
}

// run is the writer goroutine: the only store mutator. It applies queued
// events in batches, syncs the journal once per batch (the group commit
// that acknowledges the whole batch), and re-captures the epoch on the
// configured cadence. Serializing writes here is what upholds the capture
// contract — the parallel capture panics if stores mutate mid-pass, so
// capture and apply must never overlap.
func (e *Engine) run() {
	defer close(e.done)
	var tick <-chan time.Time
	if e.cfg.EpochInterval > 0 {
		t := time.NewTicker(e.cfg.EpochInterval)
		defer t.Stop()
		tick = t.C
	}
	batch := make([]queued, 0, e.cfg.BatchSize)
	since := 0
	for {
		select {
		case q := <-e.queue:
			since += e.applyBatch(q, &batch)
			if since >= e.cfg.EpochEvery {
				e.captureAndPublish()
				since = 0
			}
		case <-tick:
			if since > 0 {
				e.captureAndPublish()
				since = 0
			}
		case <-e.stop:
			// Drain what is already queued so every waiter is acknowledged
			// one way or the other, publish, then retire. An event enqueued
			// after this drain's final empty check is never acknowledged
			// (its waiter sees the done channel close), so the drain
			// contract holds: acknowledged implies journaled.
			for {
				select {
				case q := <-e.queue:
					since += e.applyBatch(q, &batch)
					continue
				default:
				}
				break
			}
			if since > 0 {
				e.captureAndPublish()
			}
			e.handle.Retire()
			return
		}
	}
}

// applyBatch collects first plus up to BatchSize-1 more already-queued
// events, applies and journals them, group-commits, and acknowledges every
// waiter with the commit result. In degraded mode nothing is applied — the
// stores must not drift further from the journal — and every waiter is
// refused with ErrDegraded. Returns how many events were applied.
func (e *Engine) applyBatch(first queued, scratch *[]queued) int {
	batch := append((*scratch)[:0], first)
	for len(batch) < e.cfg.BatchSize {
		select {
		case q := <-e.queue:
			batch = append(batch, q)
		default:
			goto collected
		}
	}
collected:
	*scratch = batch[:0]
	if e.degraded.Load() {
		for _, q := range batch {
			q.done <- ErrDegraded
		}
		return 0
	}
	for _, q := range batch {
		e.apply(q.ev)
	}
	ack := e.journal.syncNow()
	if ack != nil {
		// The events are in the stores but their durability could not be
		// promised: refuse the acks, stop accepting events, and keep
		// serving queries from the last good epoch. The applied-but-
		// unpublished events never reach a captured epoch, so queries
		// cannot observe state the journal does not durably hold.
		e.degraded.Store(true)
		ack = fmt.Errorf("%w: %w", ErrDegraded, ack)
	}
	for _, q := range batch {
		q.done <- ack
	}
	if ack != nil {
		return 0
	}
	return len(batch)
}

// apply mutates the stores with one event and journals it, in apply order.
func (e *Engine) apply(ev Event) {
	seq := e.applied.Add(1)
	tk := e.TaskTypes()[ev.Type]
	line := eventLine{
		Seq: seq, Trustor: int32(ev.Trustor), Trustee: int32(ev.Trustee), Type: ev.Type,
	}
	switch ev.Op {
	case OpObserve:
		e.world.pop.Agent(ev.Trustor).Store.Observe(ev.Trustee, tk, ev.Outcome, core.PerfectEnv())
		e.world.pop.Agent(ev.Trustee).Store.ObserveUsage(ev.Trustor, ev.Abusive)
		line.Op = "observe"
		line.Success = ev.Outcome.Success
		line.Gain, line.Damage, line.Cost = ev.Outcome.Gain, ev.Outcome.Damage, ev.Outcome.Cost
		line.Abusive = ev.Abusive
	case OpRecommend:
		e.world.pop.Agent(ev.Trustor).Store.Seed(ev.Trustee, tk, ev.Exp)
		line.Op = "recommend"
		line.S, line.G, line.D, line.C = ev.Exp.S, ev.Exp.G, ev.Exp.D, ev.Exp.C
	}
	e.journal.event(line)
}

// captureAndPublish freezes the stores into a new epoch — round view plus a
// Required memo — journals and durably syncs the epoch marker, and
// atomically swaps it in. The synced journal line precedes the publish, so
// no query can ever reference an epoch id the disk has not seen; if the
// sync fails the epoch is discarded, the engine degrades, and queries keep
// answering from the previous epoch. Reports whether the epoch published.
func (e *Engine) captureAndPublish() bool {
	if e.degraded.Load() {
		return false
	}
	id := e.epochs.Load()
	view := e.world.pop.RoundView(e.cfg.Workers, e.pool)
	memo := core.NewEdgeMemoPooled(view.TrustView, e.world.pop.Config().Update.Norm, e.cfg.Workers, e.pool)
	memo.RequireModel(e.cfg.Model, e.TaskTypes())
	e.journal.epoch(epochLine{ID: id, Events: e.applied.Load()})
	if err := e.journal.syncNow(); err != nil {
		memo.Release()
		view.Release()
		e.degraded.Store(true)
		return false
	}
	e.handle.PublishWith(view, &epochPayload{id: id, memo: memo})
	e.epochs.Store(id + 1)
	e.lastEpochNs.Store(time.Now().UnixNano())
	return true
}
