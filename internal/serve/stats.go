package serve

import (
	"math/bits"
	"sync/atomic"
)

// latencyHist is a lock-free exponential-bucket latency histogram: bucket i
// counts observations whose nanosecond value has bit length i (i.e. values
// in [2^(i-1), 2^i)). Powers of two double per bucket, which resolves p50
// and p99 to within a factor of two across the ns-to-seconds range — enough
// for the serve workload counters without any per-query allocation or lock.
type latencyHist struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
}

// observe records one latency sample.
func (h *latencyHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
}

// quantile returns an upper bound of the q-quantile (q in [0, 1]) of the
// observed samples, or 0 when the histogram is empty. The bound is the top
// of the bucket holding the q-th sample, so it overestimates by at most 2x.
func (h *latencyHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return int64(1) << i
		}
	}
	return int64(1) << 62
}

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	// Ingested counts events accepted by Ingest; Applied counts events the
	// writer has applied to the stores (and journaled). Applied trails
	// Ingested by at most the queue depth.
	Ingested uint64 `json:"ingested"`
	Applied  uint64 `json:"applied"`
	// Queries counts served Trust calls; Epochs counts published epochs
	// (the initial capture is epoch 0).
	Queries uint64 `json:"queries"`
	Epochs  uint64 `json:"epochs"`
	// QueryP50Ns and QueryP99Ns bound the query latency quantiles
	// (exponential buckets: within 2x).
	QueryP50Ns int64 `json:"query_p50_ns"`
	QueryP99Ns int64 `json:"query_p99_ns"`
	// QueueDepth is the instantaneous ingest-queue occupancy; ShedTotal
	// counts events IngestCtx refused with ErrOverloaded because the queue
	// stayed full past the caller's deadline.
	QueueDepth int    `json:"queue_depth"`
	ShedTotal  uint64 `json:"shed_total"`
	// FsyncP99Ns bounds the journal fsync latency (group commits plus epoch
	// and always-mode syncs; exponential buckets: within 2x).
	FsyncP99Ns int64 `json:"fsync_p99_ns"`
	// RecoveredEvents is how many journaled events Recover re-applied when
	// this engine resumed from a crashed journal (0 for a fresh engine).
	RecoveredEvents uint64 `json:"recovered_events"`
	// EpochStalenessMs is the wall-clock age of the served epoch. It grows
	// without bound in degraded mode, where the engine keeps answering from
	// the last epoch the journal durably recorded.
	EpochStalenessMs int64 `json:"epoch_staleness_ms"`
	// Degraded reports that a journal write or fsync failed: ingest is
	// refused with ErrDegraded, queries still answer from the last good
	// epoch, and the process should be restarted with -resume.
	Degraded bool `json:"degraded"`
}
