package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

// The trust-assertion journal is the engine's audit trail AND its system of
// record: an append-only JSONL stream recording everything needed to
// reproduce every served trust value byte-for-byte, and everything needed to
// rebuild the live engine state after a crash (Recover). The first line is a
// header carrying the full deterministic construction recipe (network
// profile, seed, characteristic alphabet, policy, seeding); after that the
// single writer goroutine appends one line per applied event (in apply
// order, with a sequence number) and one line per published epoch (with the
// cumulative applied-event count), while query goroutines append one line
// per served value (epoch id, inputs, and the answer's exact float64 bits).
//
// Since version 2 every physical line is a CRC-wrapped envelope
//
//	{"crc":"xxxxxxxx","line":{"kind":...}}
//
// where crc is the IEEE CRC32 of the exact bytes of the inner "line" value.
// The checksum makes corruption — a torn tail after a crash, a flipped bit
// on disk — detectable instead of silently replayable: Replay fails on any
// damaged line, Recover tolerates exactly one damaged *final* line (the
// torn-tail rule) and truncates it away.
//
// Durability is group-commit: appends go to an internal buffer, and the
// writer goroutine calls sync() once per applied batch and once per epoch
// line (FsyncBatch, the default), flushing the buffer and fsyncing the
// underlying file when it can. Ingest acknowledges an event only after the
// sync covering its line returned, so an acknowledged event is on disk.
// Because the epoch line is synced before the epoch is published, the
// "epoch journaled before published" ordering is a durability invariant:
// no served query can reference an epoch the disk has not seen.

// journalVersion is bumped on breaking format changes. Version 2 introduced
// the per-line CRC envelope; version 3 superseded the header's policy field
// with the registered trust-model name (Replay and Recover still speak
// version 2 bit-for-bit — see replayHeader).
const journalVersion = 3

// prevJournalVersion is the oldest header version Replay and Recover still
// accept: version-2 journals (bare policy header) replay byte-for-byte.
const prevJournalVersion = 2

// FsyncMode selects when the journal fsyncs the underlying file.
type FsyncMode int

const (
	// FsyncBatch (the default) syncs once per applied event batch and once
	// per epoch line — group commit: one fsync covers every event the batch
	// acknowledged.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs after every appended line, including query lines.
	FsyncAlways
	// FsyncOff never syncs; the buffer is still flushed per batch and on
	// close. A crash can lose acknowledged events in this mode.
	FsyncOff
)

// String renders the flag spelling.
func (m FsyncMode) String() string {
	switch m {
	case FsyncBatch:
		return "batch"
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// ParseFsyncMode parses the -fsync flag spelling.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync mode %q (want always, batch, or off)", s)
}

// Syncer is the optional fsync capability of a journal writer. *os.File and
// faultfs.File implement it; a bytes.Buffer does not, and then sync degrades
// to a buffer flush.
type Syncer interface{ Sync() error }

// journalLine is the tagged union of journal entries: exactly one of the
// payload fields is set, selected by Kind.
type journalLine struct {
	Kind   string      `json:"kind"`
	Header *headerLine `json:"header,omitempty"`
	Event  *eventLine  `json:"event,omitempty"`
	Epoch  *epochLine  `json:"epoch,omitempty"`
	Query  *queryLine  `json:"query,omitempty"`
}

// headerLine records the deterministic construction recipe of the served
// world. Replay and Recover rebuild the identical population, task universe,
// and searcher from these fields alone.
type headerLine struct {
	Version int    `json:"version"`
	Net     string `json:"net"`
	Nodes   int    `json:"nodes"`
	Seed    uint64 `json:"seed"`
	Chars   int    `json:"chars"`
	// Policy pins the trust policy of version-2 headers. Version 3
	// supersedes it with Model and omits it.
	Policy string `json:"policy,omitempty"`
	// Model names the registered trust model (version 3 and later). An
	// unregistered name is a hard replay error, never a silent default.
	Model  string  `json:"model,omitempty"`
	Seeded bool    `json:"seeded"`
	Theta  float64 `json:"theta"`
}

// eventLine is one ingested event, journaled at apply time by the writer
// goroutine, so line order is apply order. Seq is 1-based and dense.
type eventLine struct {
	Seq     uint64  `json:"seq"`
	Op      string  `json:"op"` // "observe" or "recommend"
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"` // task-type index into the universe
	Success bool    `json:"success,omitempty"`
	Gain    float64 `json:"gain,omitempty"`
	Damage  float64 `json:"damage,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
	Abusive bool    `json:"abusive,omitempty"`
	S       float64 `json:"s,omitempty"`
	G       float64 `json:"g,omitempty"`
	D       float64 `json:"d,omitempty"`
	C       float64 `json:"c,omitempty"`
}

// epochLine marks an epoch publish. Events is the cumulative applied-event
// count at capture time — Replay cross-checks it against its own counter.
type epochLine struct {
	ID     uint64 `json:"id"`
	Events uint64 `json:"events"`
}

// queryLine is one served trust value. TWBits is the exact float64 bit
// pattern (%016x) — the byte-for-byte replay contract compares these, not
// the human-readable TW rendering.
type queryLine struct {
	Epoch   uint64  `json:"epoch"`
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"`
	TW      float64 `json:"tw"`
	TWBits  string  `json:"tw_bits"`
	Found   bool    `json:"found"`
	Direct  bool    `json:"direct"`
}

// crcEnvelope is the physical line layout since version 2. Line holds the
// exact bytes of the inner journalLine value; CRC is their IEEE CRC32,
// rendered %08x.
type crcEnvelope struct {
	CRC  string          `json:"crc"`
	Line json.RawMessage `json:"line"`
}

// encodeJournalLine renders one physical journal line (CRC envelope plus
// trailing newline).
func encodeJournalLine(line journalLine) ([]byte, error) {
	inner, err := json.Marshal(line)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(inner)+24)
	out = fmt.Appendf(out, `{"crc":"%08x","line":`, crc32.ChecksumIEEE(inner))
	out = append(out, inner...)
	out = append(out, '}', '\n')
	return out, nil
}

// decodeJournalLine verifies one physical line's envelope and CRC and
// returns the inner line. phys must not include the trailing newline (it is
// tolerated if present).
func decodeJournalLine(phys []byte) (journalLine, error) {
	var env crcEnvelope
	if err := json.Unmarshal(phys, &env); err != nil {
		return journalLine{}, fmt.Errorf("malformed envelope: %w", err)
	}
	var want uint32
	if _, err := fmt.Sscanf(env.CRC, "%08x", &want); err != nil {
		return journalLine{}, fmt.Errorf("malformed crc %q", env.CRC)
	}
	if got := crc32.ChecksumIEEE(env.Line); got != want {
		return journalLine{}, fmt.Errorf("crc mismatch: line hashes to %08x, envelope says %08x", got, want)
	}
	var line journalLine
	if err := json.Unmarshal(env.Line, &line); err != nil {
		return journalLine{}, fmt.Errorf("malformed line payload: %w", err)
	}
	return line, nil
}

// journal serializes concurrent appenders (the writer goroutine for events
// and epochs, query goroutines for served values) onto one JSONL stream,
// buffering internally and syncing per the configured FsyncMode. A nil
// *journal is valid and discards everything.
type journal struct {
	mu   sync.Mutex
	buf  *bufio.Writer
	sync Syncer  // nil when the underlying writer cannot fsync
	fl   flusher // caller-side buffer to push through when there is no Syncer
	mode FsyncMode
	lat  *latencyHist // fsync latency, surfaced as fsync_p99_ns

	err    error
	errSeq uint64 // Seq of the event append that first failed, 0 otherwise
}

type flusher interface{ Flush() error }

// newJournal wraps w, or returns nil (a discarding journal) when w is nil.
// lat, when non-nil, receives one sample per fsync.
func newJournal(w io.Writer, mode FsyncMode, lat *latencyHist) *journal {
	if w == nil {
		return nil
	}
	j := &journal{buf: bufio.NewWriter(w), mode: mode, lat: lat}
	if s, ok := w.(Syncer); ok {
		j.sync = s
	} else if f, ok := w.(flusher); ok {
		j.fl = f
	}
	return j
}

// append encodes one line, keeping the first error (and, for event lines,
// the sequence number it lost). In FsyncAlways mode the line is flushed and
// synced before append returns.
func (j *journal) append(line journalLine) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.err != nil {
		j.mu.Unlock()
		return
	}
	phys, err := encodeJournalLine(line)
	if err == nil {
		_, err = j.buf.Write(phys)
	}
	if err != nil {
		j.err = err
		if line.Event != nil {
			j.errSeq = line.Event.Seq
		}
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	if j.mode == FsyncAlways {
		j.syncNow()
	}
}

func (j *journal) header(h headerLine) { j.append(journalLine{Kind: "header", Header: &h}) }
func (j *journal) event(e eventLine)   { j.append(journalLine{Kind: "event", Event: &e}) }
func (j *journal) epoch(e epochLine)   { j.append(journalLine{Kind: "epoch", Epoch: &e}) }
func (j *journal) query(q queryLine)   { j.append(journalLine{Kind: "query", Query: &q}) }

// syncNow is the group commit point: it flushes the buffer and, unless the
// mode is FsyncOff, fsyncs the underlying file. The fsync itself runs
// outside the mutex — Sync concurrent with Write is safe and covers at
// least every byte flushed before the call — so a slow or stalled disk
// blocks only the syncing goroutine, never concurrent query appends.
// Returns the journal's sticky error state.
func (j *journal) syncNow() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.err != nil {
		defer j.mu.Unlock()
		return j.errLocked()
	}
	if err := j.buf.Flush(); err != nil {
		j.err = err
		defer j.mu.Unlock()
		return j.errLocked()
	}
	s, fl := j.sync, j.fl
	j.mu.Unlock()

	var err error
	switch {
	case j.mode == FsyncOff:
	case s != nil:
		start := time.Now()
		err = s.Sync()
		if j.lat != nil {
			j.lat.observe(time.Since(start).Nanoseconds())
		}
	case fl != nil:
		err = fl.Flush()
	}
	if err == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = err
	}
	return j.errLocked()
}

// lastErr reports the sticky error (nil journals are healthy).
func (j *journal) lastErr() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errLocked()
}

// errLocked wraps the sticky error, naming the lost event sequence when the
// failure happened on an event append — the SIGTERM drain path surfaces
// this through the exit code, so a partial write is never silent.
func (j *journal) errLocked() error {
	if j.err == nil {
		return nil
	}
	if j.errSeq > 0 {
		return fmt.Errorf("serve: journal: event seq %d: %w", j.errSeq, j.err)
	}
	return fmt.Errorf("serve: journal: %w", j.err)
}

// close flushes, syncs, and returns the first error seen on the stream.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	return j.syncNow()
}
