package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// The trust-assertion journal is the engine's audit trail: an append-only
// JSONL stream recording everything needed to reproduce every served trust
// value byte-for-byte. The first line is a header carrying the full
// deterministic construction recipe (network profile, seed, characteristic
// alphabet, policy, seeding); after that the single writer goroutine appends
// one line per applied event (in apply order, with a sequence number) and
// one line per published epoch (with the cumulative applied-event count),
// while query goroutines append one line per served value (epoch id, inputs,
// and the answer's exact float64 bits). Because stores mutate only through
// journaled events and queries read only published epochs, Replay can
// rebuild the world, re-apply the events, re-capture each epoch, and
// re-answer each query — and must get bit-identical trust values
// (TestJournalReplay).

// journalVersion is bumped on breaking format changes.
const journalVersion = 1

// journalLine is the tagged union of journal entries: exactly one of the
// payload fields is set, selected by Kind.
type journalLine struct {
	Kind   string      `json:"kind"`
	Header *headerLine `json:"header,omitempty"`
	Event  *eventLine  `json:"event,omitempty"`
	Epoch  *epochLine  `json:"epoch,omitempty"`
	Query  *queryLine  `json:"query,omitempty"`
}

// headerLine records the deterministic construction recipe of the served
// world. Replay rebuilds the identical population, task universe, and
// searcher from these fields alone.
type headerLine struct {
	Version int     `json:"version"`
	Net     string  `json:"net"`
	Nodes   int     `json:"nodes"`
	Seed    uint64  `json:"seed"`
	Chars   int     `json:"chars"`
	Policy  string  `json:"policy"`
	Seeded  bool    `json:"seeded"`
	Theta   float64 `json:"theta"`
}

// eventLine is one ingested event, journaled at apply time by the writer
// goroutine, so line order is apply order. Seq is 1-based and dense.
type eventLine struct {
	Seq     uint64  `json:"seq"`
	Op      string  `json:"op"` // "observe" or "recommend"
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"` // task-type index into the universe
	Success bool    `json:"success,omitempty"`
	Gain    float64 `json:"gain,omitempty"`
	Damage  float64 `json:"damage,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
	Abusive bool    `json:"abusive,omitempty"`
	S       float64 `json:"s,omitempty"`
	G       float64 `json:"g,omitempty"`
	D       float64 `json:"d,omitempty"`
	C       float64 `json:"c,omitempty"`
}

// epochLine marks an epoch publish. Events is the cumulative applied-event
// count at capture time — Replay cross-checks it against its own counter.
type epochLine struct {
	ID     uint64 `json:"id"`
	Events uint64 `json:"events"`
}

// queryLine is one served trust value. TWBits is the exact float64 bit
// pattern (%016x) — the byte-for-byte replay contract compares these, not
// the human-readable TW rendering.
type queryLine struct {
	Epoch   uint64  `json:"epoch"`
	Trustor int32   `json:"trustor"`
	Trustee int32   `json:"trustee"`
	Type    int     `json:"type"`
	TW      float64 `json:"tw"`
	TWBits  string  `json:"tw_bits"`
	Found   bool    `json:"found"`
	Direct  bool    `json:"direct"`
}

// journal serializes concurrent appenders (the writer goroutine for events
// and epochs, query goroutines for served values) onto one JSONL stream.
// A nil *journal is valid and discards everything.
type journal struct {
	mu  sync.Mutex
	enc *json.Encoder
	fl  flusher
	err error
}

type flusher interface{ Flush() error }

// newJournal wraps w, or returns nil (a discarding journal) when w is nil.
// When w is buffered by the caller, pass it as fl too so Close can flush.
func newJournal(w io.Writer) *journal {
	if w == nil {
		return nil
	}
	j := &journal{enc: json.NewEncoder(w)}
	if f, ok := w.(flusher); ok {
		j.fl = f
	}
	return j
}

// append encodes one line, keeping the first error.
func (j *journal) append(line journalLine) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(line)
}

func (j *journal) header(h headerLine) { j.append(journalLine{Kind: "header", Header: &h}) }
func (j *journal) event(e eventLine)   { j.append(journalLine{Kind: "event", Event: &e}) }
func (j *journal) epoch(e epochLine)   { j.append(journalLine{Kind: "epoch", Epoch: &e}) }
func (j *journal) query(q queryLine)   { j.append(journalLine{Kind: "query", Query: &q}) }

// close flushes (when the underlying writer is buffered) and returns the
// first error seen on the stream.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil && j.fl != nil {
		j.err = j.fl.Flush()
	}
	if j.err != nil {
		return fmt.Errorf("serve: journal: %w", j.err)
	}
	return nil
}
