package socialgen

import (
	"math"
	"strings"
	"testing"

	"siot/internal/graph"
)

func TestGenerateExactCounts(t *testing.T) {
	for _, p := range Profiles() {
		net := Generate(p, 1)
		if net.Graph.NumNodes() != p.Nodes {
			t.Errorf("%s: nodes = %d, want %d", p.Name, net.Graph.NumNodes(), p.Nodes)
		}
		if net.Graph.NumEdges() != p.Edges {
			t.Errorf("%s: edges = %d, want %d", p.Name, net.Graph.NumEdges(), p.Edges)
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	for _, p := range Profiles() {
		net := Generate(p, 2)
		comps := net.Graph.ConnectedComponents()
		if len(comps) != 1 {
			t.Errorf("%s: %d components, want 1", p.Name, len(comps))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Facebook(), 42)
	b := Generate(Facebook(), 42)
	ea, eb := a.Graph.EdgeList(), b.Graph.EdgeList()
	if len(ea) != len(eb) {
		t.Fatal("different edge counts across identical seeds")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Twitter(), 1)
	b := Generate(Twitter(), 2)
	same := 0
	for _, e := range a.Graph.EdgeList() {
		if b.Graph.HasEdge(e[0], e[1]) {
			same++
		}
	}
	if same == a.Graph.NumEdges() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateValidGraph(t *testing.T) {
	for _, p := range Profiles() {
		if err := Generate(p, 3).Graph.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCommunityAssignmentCoversAllNodes(t *testing.T) {
	net := Generate(GooglePlus(), 4)
	if len(net.Community) != net.Graph.NumNodes() {
		t.Fatalf("community assign length %d, want %d", len(net.Community), net.Graph.NumNodes())
	}
	seen := map[int]int{}
	for _, c := range net.Community {
		if c < 0 || c >= net.Profile.Communities {
			t.Fatalf("community id %d out of range", c)
		}
		seen[c]++
	}
	if len(seen) != net.Profile.Communities {
		t.Fatalf("planted %d communities, want %d", len(seen), net.Profile.Communities)
	}
	for c, n := range seen {
		if n < 3 {
			t.Fatalf("community %d has only %d members", c, n)
		}
	}
}

func TestFeaturesPresent(t *testing.T) {
	net := Generate(Facebook(), 5)
	if len(net.Features) != net.Graph.NumNodes() {
		t.Fatal("feature list length mismatch")
	}
	for n, feats := range net.Features {
		if len(feats) == 0 {
			t.Fatalf("node %d has no features", n)
		}
		for i, f := range feats {
			if f < 0 || f >= net.Profile.FeatureKinds {
				t.Fatalf("node %d feature %d out of range", n, f)
			}
			if i > 0 && feats[i-1] >= f {
				t.Fatalf("node %d features not strictly sorted: %v", n, feats)
			}
		}
	}
}

// TestCalibrationAgainstTable1 checks that the generated networks land near
// the paper's Table 1 statistics. The bounds are deliberately loose — the
// goal is preserving the regime (dense, clustered, modular, small-world),
// not decimal-exact replication of SNAP extracts we cannot ship.
func TestCalibrationAgainstTable1(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			net := Generate(p, 1)
			st := ComputeStats(net.Graph, 1)
			want := p.Paper
			if st.Nodes != want.Nodes || st.Edges != want.Edges {
				t.Errorf("counts: got %d/%d want %d/%d", st.Nodes, st.Edges, want.Nodes, want.Edges)
			}
			if math.Abs(st.AvgDegree-want.AvgDegree) > 0.1 {
				t.Errorf("avg degree: got %.2f want %.2f", st.AvgDegree, want.AvgDegree)
			}
			if math.Abs(st.AvgClustering-want.AvgClustering) > 0.15 {
				t.Errorf("clustering: got %.2f want %.2f±0.15", st.AvgClustering, want.AvgClustering)
			}
			if math.Abs(st.Modularity-want.Modularity) > 0.18 {
				t.Errorf("modularity: got %.2f want %.2f±0.18", st.Modularity, want.Modularity)
			}
			if math.Abs(st.AvgPathLength-want.AvgPathLength) > 1.6 {
				t.Errorf("APL: got %.2f want %.2f±1.6", st.AvgPathLength, want.AvgPathLength)
			}
			if st.Diameter < 3 || st.Diameter > want.Diameter+5 {
				t.Errorf("diameter: got %d want around %d", st.Diameter, want.Diameter)
			}
			// Community count is the loosest target: reproducing clustering ~0.5
			// at average degree ~29 requires overlapping circles, which Louvain
			// partly merges. No experiment consumes the detected community count.
			if st.Communities < want.Communities/4 || st.Communities > want.Communities*3 {
				t.Errorf("communities: got %d want around %d", st.Communities, want.Communities)
			}
		})
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("twitter")
	if err != nil || p.Name != "twitter" {
		t.Fatalf("ProfileByName(twitter) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("myspace"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestLoadEdgeList(t *testing.T) {
	src := `# comment
0 1
1 2
2 0
2 2
3 0
`
	g, err := LoadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 { // self-loop dropped
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(graph.NodeID(3), 0) {
		t.Fatal("expected edges missing")
	}
}

func TestLoadEdgeListRelabels(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("100 200\n200 300\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	if _, err := LoadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, err := LoadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric ids accepted")
	}
}

func TestLoadEdgeListDuplicateEdges(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 0\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicates not merged: %d edges", g.NumEdges())
	}
}
