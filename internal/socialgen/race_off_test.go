//go:build !race

package socialgen

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
