package socialgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"

	"siot/internal/graph"
	"siot/internal/rng"
)

// This file is the large-N generation path. The calibrated small-profile
// path (generateCalibrated) leans on rejection sampling, whole-graph
// rewiring (tuneClustering), and repair passes that re-scan the edge list —
// fine at a few hundred nodes, hostile at 100k. The streaming path keeps
// the same macro-structure (skewed planted communities, friend-of-a-friend
// triangles, a peripheral chain, uniform core bridges, community-correlated
// features) but builds the graph as a flat list of packed u64 edge keys:
//
//   - connectivity is planted structurally (per-community spanning trees +
//     a spanning forest of community bridges), never repaired after the
//     fact;
//   - placement is degree-budgeted: random attachment rejects endpoints
//     already far above the profile's average degree, which keeps the
//     degree tail bounded without any trimming pass;
//   - dedup is batch-wise over sorted u64 keys (sort + compact + merge
//     scan against the sorted base) instead of per-pair HasEdge probes, so
//     reaching the exact edge count is O(E log E) total;
//   - the final graph is bulk-loaded from the sorted key list
//     (graph.NewFromSortedEdges), skipping per-insert adjacency shifting.
//
// The result is connected, simple, has exactly p.Nodes nodes and p.Edges
// edges, and is deterministic from seed. Clustering comes from the FoF
// process alone; the tuneClustering refinement (which needs whole-graph
// rescans) is deliberately not applied at this scale.

// streamingNodeThreshold is the node count at and above which Generate
// switches to the streaming path. The paper profiles (a few hundred nodes)
// and the historical 1k/10k benchmark networks stay on the calibrated
// path, so their graphs — and everything pinned to them (golden figures,
// BENCH.json trajectories) — are unchanged.
const streamingNodeThreshold = 20000

// packEdge encodes the undirected pair {u, v} as a canonical sortable key.
func packEdge(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// unpackEdge reverses packEdge.
func unpackEdge(k uint64) (u, v graph.NodeID) {
	return graph.NodeID(k >> 32), graph.NodeID(uint32(k))
}

// generateStreaming builds a large synthetic network for the profile,
// deterministically from seed.
func generateStreaming(p Profile, seed uint64) *Network {
	r := rng.New(seed, "socialgen-stream", p.Name)

	sizes := apportionSizes(p)
	assign := make([]int, p.Nodes)
	start := make([]int, len(sizes)+1)
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			assign[start[c]+i] = c
		}
		start[c+1] = start[c] + s
	}
	coreK := len(sizes) - p.ChainCommunities
	if coreK < 1 {
		coreK = len(sizes)
	}
	// The connectivity spine places up to this many edges before any budget
	// is spent; a profile without room for it cannot meet the exact-count
	// contract (the spine is never trimmed), so reject it up front.
	spineEdges := p.Nodes - len(sizes) + max(coreK-1, 0) + 2*(len(sizes)-coreK)
	if p.Edges < spineEdges {
		panic(fmt.Sprintf("socialgen: streaming profile %q wants %d edges but its connectivity spine needs up to %d (%d nodes, %d communities); raise Edges or lower Communities/ChainCommunities", p.Name, p.Edges, spineEdges, p.Nodes, len(sizes)))
	}

	deg := make([]int32, p.Nodes)
	// Degree budget: random attachment stops feeding nodes already far
	// above the average degree, bounding the tail without a trimming pass.
	degCap := int32(8 * (2*p.Edges/p.Nodes + 1))
	keys := make([]uint64, 0, p.Edges+p.Edges/8)
	addKey := func(u, v graph.NodeID) {
		keys = append(keys, packEdge(u, v))
		deg[u]++
		deg[v]++
	}

	// Connectivity spine: a spanning tree inside every community, a
	// spanning forest of bridges over the core communities, and the
	// peripheral chain. Spine edges are placed first and survive every
	// later pass untouched, so connectivity is structural, not repaired.
	for c, s := range sizes {
		base := graph.NodeID(start[c])
		for i := 1; i < s; i++ {
			addKey(base+graph.NodeID(i), base+graph.NodeID(r.IntN(i)))
		}
	}
	for c := 1; c < coreK; c++ {
		dst := r.IntN(c) // bridge to a random earlier core community
		addKey(randMember(r, start, c), randMember(r, start, dst))
	}
	prev := r.IntN(coreK) // chain anchor in a random core community
	for c := coreK; c < len(sizes); c++ {
		for links := 0; links < 2; links++ {
			addKey(randMember(r, start, prev), randMember(r, start, c))
		}
		prev = c
	}

	// Intra-community fill: budgets ∝ s^1.5 as on the calibrated path
	// (large communities denser absolutely, sparser relatively). A FoF
	// fraction closes triangles over a community-local adjacency; an
	// Overlap fraction reaches into a random other core community, which
	// stands in for the calibrated path's overlapping circle memberships.
	// The spine (mostly intra spanning-tree edges) counts against the intra
	// fraction, and the whole fill is capped by the remaining edge budget so
	// the accumulated keys can never exceed p.Edges even for near-tree
	// profiles — dedup only ever removes, and the top-up only refills.
	targetIntra := int(p.IntraFrac*float64(p.Edges)) - len(keys)
	if rem := p.Edges - len(keys); targetIntra > rem {
		targetIntra = rem
	}
	if targetIntra > 0 {
		weights := make([]float64, len(sizes))
		var total float64
		for c, s := range sizes {
			weights[c] = float64(s) * math.Sqrt(float64(s))
			total += weights[c]
		}
		budget := targetIntra
		for c, s := range sizes {
			if s < 2 || budget <= 0 {
				continue
			}
			share := int(math.Round(float64(targetIntra) * weights[c] / total))
			if share > budget {
				share = budget
			}
			if maxC := s * (s - 1) / 2; share > maxC {
				share = maxC
			}
			budget -= fillCommunityStreaming(r, p, start, c, coreK, share, deg, degCap, addKey)
		}
	}

	// Inter-community bridges up to the exact edge budget, batch-deduped
	// over sorted keys. Every round: sort + compact the accumulated keys,
	// then draw a batch of core-to-core candidates, drop the ones already
	// present (merge scan), shuffle the survivors, and keep just enough.
	slices.Sort(keys)
	keys = slices.Compact(keys)
	for round := 0; len(keys) < p.Edges; round++ {
		if round >= 64 {
			panic(fmt.Sprintf("socialgen: streaming placement for %q stalled at %d/%d edges", p.Name, len(keys), p.Edges))
		}
		deficit := p.Edges - len(keys)
		// Late rounds (or degenerate single-core profiles) relax the
		// structural preferences — different communities, degree budget —
		// so the exact count is always reachable; simplicity and node
		// bounds stay hard constraints.
		relax := coreK < 2 || round >= 8
		batch := make([]uint64, 0, deficit+deficit/4+16)
		for i := 0; i < cap(batch); i++ {
			var u, v graph.NodeID
			if relax {
				u, v = graph.NodeID(r.IntN(p.Nodes)), graph.NodeID(r.IntN(p.Nodes))
			} else {
				u, v = randMember(r, start, r.IntN(coreK)), randMember(r, start, r.IntN(coreK))
			}
			if u == v {
				continue
			}
			if !relax && (assign[u] == assign[v] || deg[u] >= degCap || deg[v] >= degCap) {
				continue
			}
			batch = append(batch, packEdge(u, v))
		}
		slices.Sort(batch)
		batch = slices.Compact(batch)
		fresh := rejectPresent(batch, keys)
		r.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
		if len(fresh) > deficit {
			fresh = fresh[:deficit]
		}
		for _, k := range fresh {
			u, v := unpackEdge(k)
			deg[u]++
			deg[v]++
		}
		keys = append(keys, fresh...)
		slices.Sort(keys)
	}

	pairs := make([][2]graph.NodeID, len(keys))
	for i, k := range keys {
		u, v := unpackEdge(k)
		pairs[i] = [2]graph.NodeID{u, v}
	}
	g, err := graph.NewFromSortedEdges(p.Nodes, pairs)
	if err != nil {
		panic("socialgen: streaming generator produced an invalid edge list: " + err.Error())
	}
	return &Network{
		Graph:     g,
		Community: assign,
		Features:  assignFeatures(p, assign, r),
		Profile:   p,
	}
}

// apportionSizes distributes p.Nodes over p.Communities with the same
// i^-SizeSkew weighting as the calibrated path, but by deterministic
// largest-remainder apportionment instead of O(N·K) roulette sampling.
// Every community gets at least 3 members; sizes are returned descending.
func apportionSizes(p Profile) []int {
	k := p.Communities
	if k < 1 {
		k = 1
	}
	if p.Nodes < 3*k {
		panic(fmt.Sprintf("socialgen: profile %q cannot seat %d communities of >= 3 in %d nodes", p.Name, k, p.Nodes))
	}
	weights := make([]float64, k)
	var total float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -p.SizeSkew)
		total += weights[i]
	}
	sizes := make([]int, k)
	spare := p.Nodes - 3*k
	type frac struct {
		rem float64
		idx int
	}
	fracs := make([]frac, k)
	given := 0
	for i, w := range weights {
		exact := float64(spare) * w / total
		sizes[i] = 3 + int(exact)
		given += int(exact)
		fracs[i] = frac{rem: exact - math.Trunc(exact), idx: i}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := 0; i < spare-given; i++ {
		sizes[fracs[i%k].idx]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// randMember returns a uniform random member of community c.
func randMember(r *rand.Rand, start []int, c int) graph.NodeID {
	return graph.NodeID(start[c] + r.IntN(start[c+1]-start[c]))
}

// fillCommunityStreaming places up to want intra edges for community c over
// a community-local adjacency (for FoF triangle closure) and a local dedup
// set, with bounded attempts. It reports how many edges were placed; any
// shortfall is absorbed by the global inter-community top-up, keeping the
// total exact.
func fillCommunityStreaming(r *rand.Rand, p Profile, start []int, c, coreK, want int, deg []int32, degCap int32, addKey func(u, v graph.NodeID)) int {
	s := start[c+1] - start[c]
	base := graph.NodeID(start[c])
	local := make([][]int32, s) // local-index adjacency over this fill's own edges, grown as they place
	seen := make(map[uint64]struct{}, want+s)
	link := func(u, v graph.NodeID) {
		li, lj := int32(u-base), int32(v-base)
		local[li] = append(local[li], lj)
		local[lj] = append(local[lj], li)
	}
	overlap := c < coreK && coreK >= 2 && p.Overlap > 0
	placed := 0
	for misses := 0; placed < want && misses < 20*want+100; {
		if overlap && r.Float64() < p.Overlap*0.5 {
			// Overlapping-circle stand-in: a member reaches into a random
			// other core community. Deduped by the global batch pass, so a
			// rare collision there just shifts one edge to the top-up.
			other := r.IntN(coreK)
			if other == c {
				misses++
				continue
			}
			u, v := base+graph.NodeID(r.IntN(s)), randMember(r, start, other)
			if deg[u] >= degCap || deg[v] >= degCap {
				misses++
				continue
			}
			addKey(u, v)
			placed++
			continue
		}
		var li, lj int32
		if placed > s && r.Float64() < p.FoF {
			// Friend-of-a-friend: u -- w -- v, close the triangle u -- v.
			w := local[r.IntN(s)]
			if len(w) < 2 {
				misses++
				continue
			}
			li, lj = w[r.IntN(len(w))], w[r.IntN(len(w))]
		} else {
			li, lj = int32(r.IntN(s)), int32(r.IntN(s))
		}
		u, v := base+graph.NodeID(li), base+graph.NodeID(lj)
		if li == lj || deg[u] >= degCap || deg[v] >= degCap {
			misses++
			continue
		}
		k := packEdge(u, v)
		if _, dup := seen[k]; dup {
			misses++
			continue
		}
		seen[k] = struct{}{}
		link(u, v)
		addKey(u, v)
		placed++
	}
	return placed
}

// rejectPresent returns the elements of sorted batch that are absent from
// sorted base, by a single merge scan.
func rejectPresent(batch, base []uint64) []uint64 {
	out := batch[:0]
	i := 0
	for _, k := range batch {
		for i < len(base) && base[i] < k {
			i++
		}
		if i < len(base) && base[i] == k {
			continue
		}
		out = append(out, k)
	}
	return out
}
