// Package socialgen builds the social-network substrate for the simulations.
//
// The paper uses sub-networks extracted from the SNAP ego-network datasets
// (Facebook, Google+, Twitter) whose connectivity characteristics are listed
// in its Table 1. Those datasets are not redistributable inside this offline
// repository, so this package provides two interchangeable sources:
//
//   - Generate: a synthetic generator calibrated per network profile to
//     reproduce Table 1's statistics (node and edge counts exactly; average
//     degree, path length, clustering, modularity, and community count
//     approximately). The generator plants a skewed community structure,
//     fills communities with a friend-of-a-friend process (which creates the
//     triangles behind the clustering coefficient), overlaps circle
//     memberships (high clustering at moderate modularity, as in ego
//     networks), wires core communities with uniform bridges (small-world
//     core), and hangs a thin chain of peripheral communities off the core
//     (long diameter).
//
//   - LoadEdgeList: a loader for the real SNAP edge lists when available.
//
// Every experiment consumes the graph only through its adjacency structure,
// so matching the connectivity statistics preserves the behavior the paper's
// evaluation exercises (discovery reach, path multiplicity, neighborhood
// overlap).
package socialgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"siot/internal/community"
	"siot/internal/graph"
	"siot/internal/rng"
)

// Profile parameterizes the synthetic generator for one of the paper's three
// sub-networks.
type Profile struct {
	// Name identifies the network ("facebook", "gplus", "twitter").
	Name string
	// Nodes and Edges are matched exactly.
	Nodes int
	Edges int
	// Communities is the number of planted communities.
	Communities int
	// IntraFrac is the fraction of edges placed inside communities.
	IntraFrac float64
	// FoF is the probability that an intra-community edge closes a triangle
	// (friend-of-a-friend attachment) instead of joining a random pair.
	FoF float64
	// Overlap is the fraction of extra "borrowed" members each core
	// community receives from other core communities. Ego-network circles
	// overlap heavily:
	// overlap is what lets the graph combine high clustering (dense shared
	// neighborhoods) with only moderate modularity (no partition separates
	// the overlapped groups cleanly), as in Table 1.
	Overlap float64
	// ChainCommunities is the number of smallest communities strung into a
	// peripheral chain. The chain reproduces the long diameter and elevated
	// average path length of the paper's extracts without disturbing the
	// dense core.
	ChainCommunities int
	// SizeSkew shapes the community-size distribution; larger values give a
	// heavier head (a few big communities and many small ones).
	SizeSkew float64
	// FeatureKinds is the number of distinct profile features (used as
	// real-world task characteristics in Table 2's experiment).
	FeatureKinds int
	// FeaturesPerNode is the mean number of features per node.
	FeaturesPerNode float64
	// Paper holds the statistics the paper reports for this sub-network
	// (Table 1), for side-by-side comparison in reports.
	Paper Stats
}

// Stats is one row of Table 1.
type Stats struct {
	Nodes         int
	Edges         int
	AvgDegree     float64
	Diameter      int
	AvgPathLength float64
	AvgClustering float64
	Modularity    float64
	Communities   int
}

// Facebook returns the generation profile calibrated to the paper's Facebook
// sub-network (347 nodes, 5038 edges, clustering 0.49, 29 communities).
func Facebook() Profile {
	return Profile{
		Name: "facebook", Nodes: 347, Edges: 5038,
		Communities: 29, IntraFrac: 0.82, FoF: 0.88, SizeSkew: 1.1,
		Overlap: 0.16, ChainCommunities: 5,
		FeatureKinds: 8, FeaturesPerNode: 2.6,
		Paper: Stats{347, 5038, 29.04, 11, 3.75, 0.49, 0.46, 29},
	}
}

// GooglePlus returns the profile for the Google+ sub-network
// (358 nodes, 4178 edges, clustering 0.39, 22 communities).
func GooglePlus() Profile {
	return Profile{
		Name: "gplus", Nodes: 358, Edges: 4178,
		Communities: 22, IntraFrac: 0.8, FoF: 0.7, SizeSkew: 1.1,
		Overlap: 0.2, ChainCommunities: 6,
		FeatureKinds: 8, FeaturesPerNode: 2.4,
		Paper: Stats{358, 4178, 23.34, 12, 3.9, 0.39, 0.45, 22},
	}
}

// Twitter returns the profile for the Twitter sub-network
// (244 nodes, 2478 edges, clustering 0.27, 16 communities).
func Twitter() Profile {
	return Profile{
		Name: "twitter", Nodes: 244, Edges: 2478,
		Communities: 16, IntraFrac: 0.72, FoF: 0.4, SizeSkew: 1.05,
		Overlap: 0.2, ChainCommunities: 3,
		FeatureKinds: 8, FeaturesPerNode: 2.2,
		Paper: Stats{244, 2478, 20.31, 8, 2.96, 0.27, 0.38, 16},
	}
}

// Profiles returns all three paper profiles in the order the paper reports
// them.
func Profiles() []Profile {
	return []Profile{Facebook(), GooglePlus(), Twitter()}
}

// ProfileByName returns the profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("socialgen: unknown network profile %q (want facebook, gplus, or twitter)", name)
}

// Network is a generated (or loaded) social network: the graph plus the node
// metadata the experiments need.
type Network struct {
	Graph *graph.Graph
	// Community is the planted community of each node (generator output;
	// Louvain runs its own detection for the Table 1 statistics).
	Community []int
	// Features lists the profile-feature IDs of each node. Feature
	// memberships are community-correlated, as in real ego networks.
	Features [][]int
	// Profile records the generation parameters.
	Profile Profile
}

// Generate builds a synthetic network for the profile, deterministically
// from seed. The returned graph is connected, simple, and has exactly
// p.Nodes nodes and p.Edges edges.
//
// Profiles of streamingNodeThreshold nodes or more take the streaming
// large-N path (see streaming.go): same macro-structure, built as a flat
// sorted edge-key list with structural (never repaired) connectivity.
// Smaller profiles — including the three calibrated paper networks — use
// the rejection-and-refinement path below, unchanged.
func Generate(p Profile, seed uint64) *Network {
	if p.Nodes < 2 {
		panic(fmt.Sprintf("socialgen: profile %q has %d nodes", p.Name, p.Nodes))
	}
	if p.Nodes >= streamingNodeThreshold {
		return generateStreaming(p, seed)
	}
	maxEdges := p.Nodes * (p.Nodes - 1) / 2
	if p.Edges > maxEdges {
		panic(fmt.Sprintf("socialgen: profile %q wants %d edges, max %d", p.Name, p.Edges, maxEdges))
	}
	r := rng.New(seed, "socialgen", p.Name)

	sizes := communitySizes(p, r)
	assign := make([]int, p.Nodes)
	node := 0
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			assign[node] = c
			node++
		}
	}
	members := make([][]graph.NodeID, len(sizes))
	for n, c := range assign {
		members[c] = append(members[c], graph.NodeID(n))
	}
	coreK := len(sizes) - p.ChainCommunities
	if coreK < 1 {
		coreK = len(sizes)
	}
	extended := overlapMembers(members, coreK, p, r)

	g := graph.New(p.Nodes)
	targetIntra := int(p.IntraFrac * float64(p.Edges))

	placeIntraEdges(g, extended, targetIntra, p.FoF, r)
	chainPeriphery(g, members, p.ChainCommunities, r)
	var core []graph.NodeID
	for c := 0; c < coreK; c++ {
		core = append(core, members[c]...)
	}
	placeInterEdges(g, assign, core, p.Edges-g.NumEdges(), r)
	repairConnectivity(g, r)
	trimToEdgeCount(g, assign, p.Edges, r)
	if p.Paper.AvgClustering > 0 {
		tuneClustering(g, assign, p.Paper.AvgClustering, 0.02, r)
	}
	reconnectBySwap(g, r)

	if err := g.Validate(); err != nil {
		panic("socialgen: generated invalid graph: " + err.Error())
	}
	return &Network{
		Graph:     g,
		Community: assign,
		Features:  assignFeatures(p, assign, r),
		Profile:   p,
	}
}

// communitySizes draws a skewed size distribution summing to p.Nodes with
// every community of size at least 3.
func communitySizes(p Profile, r *rand.Rand) []int {
	k := p.Communities
	if k < 1 {
		k = 1
	}
	weights := make([]float64, k)
	var total float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -p.SizeSkew)
		total += weights[i]
	}
	sizes := make([]int, k)
	assigned := 0
	for i := range sizes {
		sizes[i] = 3
		assigned += 3
	}
	// Distribute the remainder proportionally to the weights with random
	// rounding for variety.
	for assigned < p.Nodes {
		x := r.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				sizes[i]++
				assigned++
				break
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// placeIntraEdges fills communities with edges. A fraction fof of edges
// close triangles by connecting a node to a neighbor-of-a-neighbor; the rest
// join uniform random intra-community pairs. Budgets scale superlinearly
// with community size so that large communities are denser in absolute terms
// but sparser in relative density, as in ego networks.
func placeIntraEdges(g *graph.Graph, members [][]graph.NodeID, budget int, fof float64, r *rand.Rand) {
	if budget <= 0 {
		return
	}
	weights := make([]float64, len(members))
	var total float64
	for c, m := range members {
		s := float64(len(m))
		weights[c] = s * math.Sqrt(s) // ∝ s^1.5
		total += weights[c]
	}
	placed := 0
	for c, m := range members {
		if len(m) < 2 {
			continue
		}
		share := int(math.Round(float64(budget) * weights[c] / total))
		maxC := len(m) * (len(m) - 1) / 2
		if share > maxC {
			share = maxC
		}
		placed += fillCommunity(g, m, share, fof, r)
	}
	// Top up any rounding shortfall with random intra pairs in the largest
	// communities that still have room.
	for tries := 0; placed < budget && tries < budget*50; tries++ {
		m := members[r.IntN(len(members))]
		if len(m) < 2 {
			continue
		}
		u, v := m[r.IntN(len(m))], m[r.IntN(len(m))]
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
			placed++
		}
	}
}

// fillCommunity places want edges among members and returns how many were
// placed.
func fillCommunity(g *graph.Graph, members []graph.NodeID, want int, fof float64, r *rand.Rand) int {
	placed := 0
	misses := 0
	for placed < want && misses < 60*want+200 {
		var u, v graph.NodeID
		if placed > len(members) && r.Float64() < fof {
			// Friend-of-a-friend: u -- w -- v, close the triangle u -- v.
			w := members[r.IntN(len(members))]
			nbrs := g.Neighbors(w)
			if len(nbrs) < 2 {
				misses++
				continue
			}
			u = nbrs[r.IntN(len(nbrs))]
			v = nbrs[r.IntN(len(nbrs))]
		} else {
			u = members[r.IntN(len(members))]
			v = members[r.IntN(len(members))]
		}
		if u == v || g.HasEdge(u, v) {
			misses++
			continue
		}
		_ = g.AddEdge(u, v)
		placed++
	}
	return placed
}

// overlapMembers returns per-community membership lists extended with
// "borrowed" members from the ring-adjacent communities. Intra-community
// edges placed over the extended lists create the overlapping-circle
// structure of ego networks: nodes embedded in two dense groups at once.
func overlapMembers(members [][]graph.NodeID, coreK int, p Profile, r *rand.Rand) [][]graph.NodeID {
	k := len(members)
	out := make([][]graph.NodeID, k)
	for c := range members {
		out[c] = append([]graph.NodeID(nil), members[c]...)
	}
	if p.Overlap <= 0 || coreK < 2 {
		return out
	}
	// Only core communities overlap; the peripheral chain stays thin.
	// Donors are random core communities: spreading the overlap keeps any
	// single community pair weakly coupled, so Louvain can still separate
	// the dense homes.
	for c := 0; c < coreK; c++ {
		borrow := int(p.Overlap * float64(len(members[c])))
		for i := 0; i < borrow; i++ {
			src := r.IntN(coreK)
			if src == c {
				continue
			}
			donor := members[src]
			out[c] = append(out[c], donor[r.IntN(len(donor))])
		}
	}
	return out
}

// chainPeriphery strings the chainLen smallest communities into a path
// hanging off the core: core — c_{k-chainLen} — ... — c_{k-1}. Each link is
// a couple of edges. This reproduces the long diameter and elevated average
// path length of the paper's extracts without disturbing the dense core.
func chainPeriphery(g *graph.Graph, members [][]graph.NodeID, chainLen int, r *rand.Rand) {
	k := len(members)
	if chainLen < 1 || k < chainLen+1 {
		return
	}
	// members is sorted by decreasing size, so the chain uses the tail.
	prev := members[r.IntN(k-chainLen)] // anchor in a random core community
	for c := k - chainLen; c < k; c++ {
		cur := members[c]
		for links := 0; links < 2; links++ {
			u := prev[r.IntN(len(prev))]
			v := cur[r.IntN(len(cur))]
			_ = g.AddEdge(u, v)
		}
		prev = cur
	}
}

// placeInterEdges wires core communities together with uniform random
// bridges over the core node set. Uniform spreading keeps any single
// community pair weakly coupled, so the planted communities stay separable
// while the core becomes a small world. The peripheral chain is excluded so
// bridges do not shortcut its long paths.
func placeInterEdges(g *graph.Graph, assign []int, core []graph.NodeID, budget int, r *rand.Rand) {
	if len(core) < 2 {
		return
	}
	placed := 0
	misses := 0
	for placed < budget && misses < 80*budget+400 {
		u := core[r.IntN(len(core))]
		v := core[r.IntN(len(core))]
		if u == v || assign[u] == assign[v] || g.HasEdge(u, v) {
			misses++
			continue
		}
		_ = g.AddEdge(u, v)
		placed++
	}
	// Fall back to arbitrary core pairs if placement stalls.
	for placed < budget && misses < 160*budget+800 {
		u, v := core[r.IntN(len(core))], core[r.IntN(len(core))]
		if u == v || g.HasEdge(u, v) {
			misses++
			continue
		}
		_ = g.AddEdge(u, v)
		placed++
	}
}

// commonNeighbors counts the shared neighbors of u and v using the sorted
// adjacency lists.
func commonNeighbors(g *graph.Graph, u, v graph.NodeID) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// tuneClustering rewires the graph toward the target average clustering
// coefficient while preserving the exact edge count. Raising clustering
// swaps a low-triangle edge for a triangle-closing edge; lowering it does
// the reverse. The loop stops within tol of the target or after a bounded
// number of batches.
func tuneClustering(g *graph.Graph, assign []int, target, tol float64, r *rand.Rand) {
	n := g.NumNodes()
	const batch = 40
	for pass := 0; pass < 120; pass++ {
		cc := g.AvgClustering()
		if math.Abs(cc-target) <= tol {
			return
		}
		raise := cc < target
		// Each swap removes and adds an edge of the same planted class
		// (intra- or inter-community), so the intra/inter balance — and
		// with it modularity — is not disturbed by the adjustment.
		for i := 0; i < batch; i++ {
			if raise {
				// Add a triangle-closing edge...
				w := graph.NodeID(r.IntN(n))
				nbrs := g.Neighbors(w)
				if len(nbrs) < 2 {
					continue
				}
				u, v := nbrs[r.IntN(len(nbrs))], nbrs[r.IntN(len(nbrs))]
				if u == v || g.HasEdge(u, v) {
					continue
				}
				sameClass := func(a, b graph.NodeID) bool {
					return (assign[a] == assign[b]) == (assign[u] == assign[v])
				}
				// ...paid for by removing a low-triangle edge of the same class.
				if !removeEdgeBy(g, r, sameClass, func(a, b graph.NodeID) int { return -commonNeighbors(g, a, b) }) {
					continue
				}
				_ = g.AddEdge(u, v)
			} else {
				// Remove a high-triangle edge, add a same-class edge between
				// strangers.
				u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
				if u == v || g.HasEdge(u, v) || commonNeighbors(g, u, v) > 0 {
					continue
				}
				sameClass := func(a, b graph.NodeID) bool {
					return (assign[a] == assign[b]) == (assign[u] == assign[v])
				}
				if !removeEdgeBy(g, r, sameClass, func(a, b graph.NodeID) int { return commonNeighbors(g, a, b) }) {
					continue
				}
				_ = g.AddEdge(u, v)
			}
		}
	}
}

// removeEdgeBy samples a handful of edges passing the filter, scores them,
// and removes the highest-scoring one whose endpoints both keep degree >= 2.
// A nil filter accepts every edge. It reports whether an edge was removed.
func removeEdgeBy(g *graph.Graph, r *rand.Rand, filter func(u, v graph.NodeID) bool, score func(u, v graph.NodeID) int) bool {
	n := g.NumNodes()
	bestU, bestV := graph.NodeID(-1), graph.NodeID(-1)
	bestScore := 0
	found := false
	for tries := 0; tries < 32; tries++ {
		u := graph.NodeID(r.IntN(n))
		nbrs := g.Neighbors(u)
		if len(nbrs) == 0 {
			continue
		}
		v := nbrs[r.IntN(len(nbrs))]
		if g.Degree(u) <= 2 || g.Degree(v) <= 2 {
			continue
		}
		if filter != nil && !filter(u, v) {
			continue
		}
		s := score(u, v)
		if !found || s > bestScore {
			found, bestScore, bestU, bestV = true, s, u, v
		}
	}
	if !found {
		return false
	}
	return g.RemoveEdge(bestU, bestV)
}

// reconnectBySwap restores connectivity without changing the edge count:
// for every stray component it removes a removable edge inside the giant
// component and adds a bridge to the stray one.
func reconnectBySwap(g *graph.Graph, r *rand.Rand) {
	for guard := 0; guard < 64; guard++ {
		comps := g.ConnectedComponents()
		if len(comps) <= 1 {
			return
		}
		giant, stray := comps[0], comps[1]
		if !removeEdgeBy(g, r, nil, func(a, b graph.NodeID) int { return commonNeighbors(g, a, b) }) {
			// Cannot free an edge safely; add one (edge count grows by one,
			// which trimToEdgeCount-level exactness tests would catch — in
			// practice dense profiles never hit this branch).
			_ = g.AddEdge(giant[r.IntN(len(giant))], stray[r.IntN(len(stray))])
			continue
		}
		_ = g.AddEdge(giant[r.IntN(len(giant))], stray[r.IntN(len(stray))])
	}
}

// repairConnectivity joins all components to the largest one so that path
// statistics (diameter, APL) are well defined across the whole graph.
func repairConnectivity(g *graph.Graph, r *rand.Rand) {
	comps := g.ConnectedComponents()
	if len(comps) <= 1 {
		return
	}
	giant := comps[0]
	for _, comp := range comps[1:] {
		u := comp[r.IntN(len(comp))]
		v := giant[r.IntN(len(giant))]
		_ = g.AddEdge(u, v)
	}
}

// trimToEdgeCount adjusts the graph to exactly want edges. Removal prefers
// intra-community edges of well-connected nodes so connectivity is
// preserved; additions are uniform random non-edges.
func trimToEdgeCount(g *graph.Graph, assign []int, want int, r *rand.Rand) {
	n := g.NumNodes()
	for g.NumEdges() < want {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	if g.NumEdges() <= want {
		return
	}
	edges := g.EdgeList()
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if g.NumEdges() <= want {
			break
		}
		u, v := e[0], e[1]
		// Keep bridges that would disconnect low-degree nodes.
		if g.Degree(u) <= 1 || g.Degree(v) <= 1 {
			continue
		}
		if assign[u] != assign[v] {
			continue // prefer trimming intra-community edges
		}
		g.RemoveEdge(u, v)
	}
	// If still above target (everything left is inter-community or a
	// bridge), trim any removable edge.
	for _, e := range edges {
		if g.NumEdges() <= want {
			break
		}
		if g.Degree(e[0]) > 1 && g.Degree(e[1]) > 1 && g.HasEdge(e[0], e[1]) {
			g.RemoveEdge(e[0], e[1])
		}
	}
}

// assignFeatures gives each node a community-correlated feature set: every
// community has a few "home" features its members carry with high
// probability, plus uniform background features.
func assignFeatures(p Profile, assign []int, r *rand.Rand) [][]int {
	if p.FeatureKinds <= 0 {
		return make([][]int, len(assign))
	}
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	home := make([][]int, k)
	for c := range home {
		// Two home features per community.
		a := r.IntN(p.FeatureKinds)
		b := r.IntN(p.FeatureKinds)
		home[c] = []int{a, b}
	}
	out := make([][]int, len(assign))
	for n, c := range assign {
		set := map[int]bool{}
		for _, f := range home[c] {
			if r.Float64() < 0.7 {
				set[f] = true
			}
		}
		// Background features to reach the mean.
		for len(set) < 1 || r.Float64() < (p.FeaturesPerNode-float64(len(set)))/p.FeaturesPerNode {
			set[r.IntN(p.FeatureKinds)] = true
			if len(set) >= p.FeatureKinds {
				break
			}
		}
		feats := make([]int, 0, len(set))
		for f := range set {
			feats = append(feats, f)
		}
		sort.Ints(feats)
		out[n] = feats
	}
	return out
}

// ComputeStats measures the Table 1 row of a graph: exact counts and path
// statistics, plus Louvain modularity and community count.
func ComputeStats(g *graph.Graph, seed uint64) Stats {
	paths := g.Paths()
	part, q := community.Detect(g, seed)
	return Stats{
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		AvgDegree:     g.AvgDegree(),
		Diameter:      paths.Diameter,
		AvgPathLength: paths.AvgPathLength,
		AvgClustering: g.AvgClustering(),
		Modularity:    q,
		Communities:   part.NumCommunities,
	}
}

// LoadEdgeList reads a whitespace-separated edge list (the SNAP format:
// one "u v" pair per line, '#' comments allowed) and returns the graph with
// node IDs densely relabeled in first-appearance order.
func LoadEdgeList(src io.Reader) (*graph.Graph, error) {
	type edge struct{ u, v int }
	var edges []edge
	ids := map[string]int{}
	intern := func(tok string) int {
		if id, ok := ids[tok]; ok {
			return id
		}
		id := len(ids)
		ids[tok] = id
		return id
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("socialgen: edge list line %d: want two fields, got %q", line, text)
		}
		if _, err := strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("socialgen: edge list line %d: bad node id %q: %w", line, fields[0], err)
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("socialgen: edge list line %d: bad node id %q: %w", line, fields[1], err)
		}
		edges = append(edges, edge{intern(fields[0]), intern(fields[1])})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("socialgen: reading edge list: %w", err)
	}
	g := graph.New(len(ids))
	for _, e := range edges {
		if e.u == e.v {
			continue // SNAP files occasionally contain self-loops; drop them
		}
		if err := g.AddEdge(graph.NodeID(e.u), graph.NodeID(e.v)); err != nil {
			return nil, err
		}
	}
	return g, nil
}
