package socialgen

import (
	"testing"
)

// largeTestProfile is a streaming-path profile shaped like the benchmark
// networks (community-structured, average degree 2·Edges/Nodes).
func largeTestProfile(nodes, edges int) Profile {
	communities := nodes / 80
	if communities < 4 {
		communities = 4
	}
	return Profile{
		Name: "proptest", Nodes: nodes, Edges: edges,
		Communities: communities, IntraFrac: 0.7, FoF: 0.5, SizeSkew: 1.0,
		Overlap: 0.2, ChainCommunities: 1, FeatureKinds: 6, FeaturesPerNode: 2,
	}
}

// checkGenerateProperties asserts the Generate contract at one scale:
// exactly p.Nodes nodes and p.Edges edges, simple (Validate), connected,
// deterministic across two runs with the same seed, and community
// assignments that cover every node with the planted community count.
func checkGenerateProperties(t *testing.T, p Profile, seed uint64) {
	t.Helper()
	net := Generate(p, seed)
	g := net.Graph
	if g.NumNodes() != p.Nodes {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), p.Nodes)
	}
	if g.NumEdges() != p.Edges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), p.Edges)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid graph: %v", err)
	}
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("%d components, want 1", len(comps))
	}
	// Community sizes sum to p.Nodes (every node assigned exactly once) and
	// every planted community is inhabited.
	if len(net.Community) != p.Nodes {
		t.Fatalf("community assignment covers %d nodes, want %d", len(net.Community), p.Nodes)
	}
	seen := make([]int, p.Communities)
	for n, c := range net.Community {
		if c < 0 || c >= p.Communities {
			t.Fatalf("node %d in community %d, want [0,%d)", n, c, p.Communities)
		}
		seen[c]++
	}
	sum := 0
	for c, n := range seen {
		if n < 3 {
			t.Errorf("community %d has %d members, want >= 3", c, n)
		}
		sum += n
	}
	if sum != p.Nodes {
		t.Errorf("community sizes sum to %d, want %d", sum, p.Nodes)
	}
	// Determinism: a second run with the same seed is edge-for-edge equal.
	again := Generate(p, seed)
	ea, eb := g.EdgeList(), again.Graph.EdgeList()
	if len(ea) != len(eb) {
		t.Fatalf("rerun edge count %d, want %d", len(eb), len(ea))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("rerun edge %d = %v, want %v", i, eb[i], ea[i])
		}
	}
}

// TestGenerateProperties10k exercises the 10k-node scale, which stays on
// the calibrated path (below streamingNodeThreshold).
func TestGenerateProperties10k(t *testing.T) {
	checkGenerateProperties(t, largeTestProfile(10000, 80000), 42)
}

// TestGenerateProperties100k exercises the streaming path at full scale.
func TestGenerateProperties100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node generation property sweep skipped in -short mode")
	}
	checkGenerateProperties(t, largeTestProfile(100000, 500000), 42)
}

// TestGenerateProperties1M exercises the streaming path at the million-node
// frontier: 1M nodes, 6M edges. The full property contract holds — exact
// counts, simplicity, connectivity, determinism across reruns — at the scale
// the sharded sweep serves. Slow (two full generations plus a connectivity
// scan) and memory-heavy, so it skips under -short and under the race
// detector.
func TestGenerateProperties1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-node generation property sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("1M-node generation property sweep skipped under -race")
	}
	checkGenerateProperties(t, largeTestProfile(1_000_000, 6_000_000), 42)
}

// TestGenerateStreamingThresholdBoundary pins the dispatch and the
// streaming contract right at the threshold, plus a near-tree edge budget
// (the tightest exact-count case: the connectivity spine alone nearly
// exhausts the budget).
func TestGenerateStreamingThresholdBoundary(t *testing.T) {
	p := largeTestProfile(streamingNodeThreshold, 4*streamingNodeThreshold)
	checkGenerateProperties(t, p, 7)
	sparse := largeTestProfile(streamingNodeThreshold, streamingNodeThreshold+50)
	checkGenerateProperties(t, sparse, 7)
}

// TestGenerateStreamingInfeasibleRejected pins the exact-count contract's
// guard: a budget with no room for the connectivity spine (intra spanning
// trees + bridges + chain links can exceed N for multi-link chains) must
// be rejected loudly, not met approximately.
func TestGenerateStreamingInfeasibleRejected(t *testing.T) {
	p := largeTestProfile(streamingNodeThreshold, streamingNodeThreshold)
	p.Communities = 250
	p.ChainCommunities = 3 // spine needs N - K + (coreK-1) + 6 > N edges
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible streaming profile accepted")
		}
	}()
	Generate(p, 1)
}

// TestGenerateStreamingSeedsDiffer mirrors TestGenerateSeedsDiffer on the
// streaming path.
func TestGenerateStreamingSeedsDiffer(t *testing.T) {
	p := largeTestProfile(streamingNodeThreshold, 3*streamingNodeThreshold)
	a, b := Generate(p, 1), Generate(p, 2)
	same := 0
	for _, e := range a.Graph.EdgeList() {
		if b.Graph.HasEdge(e[0], e[1]) {
			same++
		}
	}
	if same == a.Graph.NumEdges() {
		t.Fatal("different seeds produced identical graphs")
	}
}
