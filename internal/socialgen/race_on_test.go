//go:build race

package socialgen

// raceEnabled reports that the race detector is active: the million-node
// generation property sweep is memory- and time-hostile under -race, so it
// skips.
const raceEnabled = true
