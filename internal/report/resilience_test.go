package report

import (
	"strings"
	"testing"

	"siot/internal/stats"
)

func TestDetectionLatency(t *testing.T) {
	gap := stats.NewSeries("gap", []float64{-0.1, 0.0, 0.02, 0.05, 0.01, 0.2})
	if got := DetectionLatency(gap, 0.05); got != 3 {
		t.Fatalf("DetectionLatency = %d, want 3", got)
	}
	if got := DetectionLatency(gap, 0.5); got != -1 {
		t.Fatalf("undetectable: got %d, want -1", got)
	}
	if got := DetectionLatency(stats.NewSeries("empty", nil), 0.1); got != -1 {
		t.Fatalf("empty series: got %d, want -1", got)
	}
}

func TestNewResilience(t *testing.T) {
	gap := stats.NewSeries("gap", []float64{-0.2, 0.1, 0.3})
	r := NewResilience(gap, 0.25, 0.8, 0.65)
	if r.TrustGap != 0.3 {
		t.Errorf("TrustGap = %v", r.TrustGap)
	}
	if r.MinTrustGap != -0.2 {
		t.Errorf("MinTrustGap = %v", r.MinTrustGap)
	}
	if r.DetectionRound != 2 {
		t.Errorf("DetectionRound = %d", r.DetectionRound)
	}
	if got := r.SuccessDegradation; got < 0.15-1e-12 || got > 0.15+1e-12 {
		t.Errorf("SuccessDegradation = %v", got)
	}
}

func TestResilienceAddRows(t *testing.T) {
	tbl := &Table{Headers: []string{"Metric", "Value"}}
	Resilience{TrustGap: 0.1, MinTrustGap: -0.05, DetectionRound: -1, SuccessDegradation: 0.02}.AddRows(tbl)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"undetected", "trust gap (final)", "success degradation"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	tbl2 := &Table{Headers: []string{"Metric", "Value"}}
	Resilience{DetectionRound: 12}.AddRows(tbl2)
	var b2 strings.Builder
	if err := tbl2.Render(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "round 12") {
		t.Errorf("detection round not rendered:\n%s", b2.String())
	}
}
