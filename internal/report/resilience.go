package report

import (
	"fmt"

	"siot/internal/stats"
)

// This file defines the resilience metrics the attack experiments report:
// how far apart a population's perceived trust of honest and attacking
// trustees drifts (trust gap), how quickly the gap opens (detection
// latency), and how much delegation success the attack costs
// (success degradation).

// Resilience aggregates the attack-resilience metrics of one scenario.
type Resilience struct {
	// TrustGap is the final-round honest-minus-attacker perceived-trust
	// gap: positive once the population has learned to distrust the
	// attackers.
	TrustGap float64
	// MinTrustGap is the lowest gap over the run — negative when an attack
	// (bad-mouthing, ballot-stuffing) managed to make attackers look MORE
	// trustworthy than honest trustees at some point.
	MinTrustGap float64
	// DetectionRound is the first round at which the gap reached the
	// detection threshold, or -1 if it never did (whitewashing aims
	// exactly for that). A single early crossing counts: the metric
	// measures how fast a signal first appears, not whether it persists —
	// the TrustGap/MinTrustGap pair covers durability.
	DetectionRound int
	// SuccessDegradation is the baseline cumulative delegation-success rate
	// minus the attacked one: how much service quality the attack cost.
	SuccessDegradation float64
}

// DetectionLatency returns the first round index at which the trust-gap
// series reaches threshold, or -1 if it never does.
func DetectionLatency(gap stats.Series, threshold float64) int {
	for i, v := range gap.Y {
		if v >= threshold {
			return i
		}
	}
	return -1
}

// NewResilience computes the metrics from a per-round trust-gap series and
// the cumulative success rates of the baseline (no attack) and attacked
// runs.
func NewResilience(gap stats.Series, threshold, baselineSuccess, attackedSuccess float64) Resilience {
	res := Resilience{
		DetectionRound:     DetectionLatency(gap, threshold),
		SuccessDegradation: baselineSuccess - attackedSuccess,
	}
	if n := len(gap.Y); n > 0 {
		res.TrustGap = gap.Y[n-1]
		lo, _ := stats.MinMax(gap.Y)
		res.MinTrustGap = lo
	}
	return res
}

// AddRows appends the metrics to a two-column (metric, value) table.
func (r Resilience) AddRows(t *Table) {
	t.AddRow("trust gap (final)", fmt.Sprintf("%.3f", r.TrustGap))
	t.AddRow("trust gap (min)", fmt.Sprintf("%.3f", r.MinTrustGap))
	if r.DetectionRound < 0 {
		t.AddRow("detection latency", "undetected")
	} else {
		t.AddRow("detection latency", fmt.Sprintf("round %d", r.DetectionRound))
	}
	t.AddRow("success degradation", fmt.Sprintf("%.3f", r.SuccessDegradation))
}
