package report

import (
	"strings"
	"testing"

	"siot/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333") // short row padded
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "a") {
		t.Fatalf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"x", "y"}}
	tb.AddRow(`va"l`, "1,2")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"va""l"`) {
		t.Fatalf("quote escaping wrong: %s", out)
	}
	if !strings.Contains(out, `"1,2"`) {
		t.Fatalf("comma quoting wrong: %s", out)
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "fig",
		Width:  40,
		Height: 8,
		Series: []stats.Series{
			stats.NewSeries("up", []float64{0, 1, 2, 3}),
			stats.NewSeries("down", []float64{3, 2, 1, 0}),
		},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fig") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatal("legend missing")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "none"}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty chart message missing")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Constant y must not divide by zero.
	c := &Chart{Series: []stats.Series{stats.NewSeries("flat", []float64{2, 2, 2})}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b,
		stats.Series{Name: "s1", X: []float64{0, 1}, Y: []float64{5, 6}},
		stats.Series{Name: "s2", X: []float64{0}, Y: []float64{7}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "series,x,y\ns1,0,5\ns1,1,6\ns2,0,7\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}
