// Package report renders experiment results for the terminal and for files:
// aligned ASCII tables, simple ASCII line charts (so the figure shapes can
// be eyeballed without a plotting stack), and CSV export for external
// plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"siot/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as CSV (comma-separated, quotes where needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRec := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRec(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRec(row); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders one or more series as an ASCII line chart. Each series gets
// a distinct marker; overlapping points show the later series' marker.
type Chart struct {
	Title  string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 18)
	YLabel string
	XLabel string
	Series []stats.Series
}

// markers cycles across series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 18
	}
	if len(c.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	// Bounds.
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if s.X[i] < xlo {
				xlo = s.X[i]
			}
			if s.X[i] > xhi {
				xhi = s.X[i]
			}
			if s.Y[i] < ylo {
				ylo = s.Y[i]
			}
			if s.Y[i] > yhi {
				yhi = s.Y[i]
			}
		}
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		col := int((x - xlo) / (xhi - xlo) * float64(width-1))
		row := height - 1 - int((y-ylo)/(yhi-ylo)*float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = m
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			plot(s.X[i], s.Y[i], m)
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", yhi)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ylo)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 8), xlo,
		strings.Repeat(" ", maxInt(1, width-20)), xhi); err != nil {
		return err
	}
	// Legend.
	for si, s := range c.Series {
		if _, err := fmt.Fprintf(w, "          %c %s\n", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "          x: %s   y: %s\n", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	return nil
}

// SeriesCSV writes one or more series as long-format CSV
// (series,x,y per row).
func SeriesCSV(w io.Writer, series ...stats.Series) error {
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
