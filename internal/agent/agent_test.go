package agent

import (
	"math"
	"testing"

	"siot/internal/core"
	"siot/internal/rng"
	"siot/internal/task"
)

func TestCharCompetenceFallbackAndOverride(t *testing.T) {
	b := Behavior{
		BaseCompetence: 0.6,
		Competence:     map[task.Characteristic]float64{task.CharGPS: 0.9},
	}
	if got := b.CharCompetence(task.CharGPS); got != 0.9 {
		t.Fatalf("override = %v", got)
	}
	if got := b.CharCompetence(task.CharImage); got != 0.6 {
		t.Fatalf("fallback = %v", got)
	}
}

func TestCharCompetenceMalice(t *testing.T) {
	b := Behavior{
		BaseCompetence: 0.8,
		Malice:         MaliceCharacteristic,
		MaliceChars:    map[task.Characteristic]bool{task.CharImage: true},
	}
	if got := b.CharCompetence(task.CharGPS); got != 0.8 {
		t.Fatalf("unaffected characteristic degraded: %v", got)
	}
	if got := b.CharCompetence(task.CharImage); got > 0.2 {
		t.Fatalf("malicious characteristic competence = %v, want collapsed", got)
	}
}

func TestTaskCompetenceWeighted(t *testing.T) {
	b := Behavior{
		Competence: map[task.Characteristic]float64{
			task.CharGPS:   1.0,
			task.CharImage: 0.0,
		},
	}
	tk := task.MustNew(1, map[task.Characteristic]float64{
		task.CharGPS:   3,
		task.CharImage: 1,
	})
	if got := b.TaskCompetence(tk); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("task competence = %v, want 0.75", got)
	}
}

func TestUsesAbusivelyRate(t *testing.T) {
	b := Behavior{Responsibility: 0.8}
	r := rng.New(1, "abuse")
	abusive := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if b.UsesAbusively(r) {
			abusive++
		}
	}
	rate := float64(abusive) / n
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("abuse rate = %v, want ~0.2", rate)
	}
}

func TestAcceptsDelegationThreshold(t *testing.T) {
	a := New(1, KindTrustee, Behavior{}, core.DefaultUpdateConfig())
	a.Theta = 0.6
	// Unknown trustors are innocent until proven guilty.
	if !a.AcceptsDelegation(9) {
		t.Fatal("unknown trustor refused")
	}
	// A good usage history keeps acceptance.
	for i := 0; i < 10; i++ {
		a.Store.ObserveUsage(9, false)
	}
	if !a.AcceptsDelegation(9) {
		t.Fatal("responsible trustor refused")
	}
	// Abusive history drops below threshold again.
	for i := 0; i < 30; i++ {
		a.Store.ObserveUsage(9, true)
	}
	if a.AcceptsDelegation(9) {
		t.Fatal("abusive trustor accepted")
	}
	// Theta 0 accepts everyone (unilateral baseline).
	a.Theta = 0
	if !a.AcceptsDelegation(1234) {
		t.Fatal("theta=0 refused a trustor")
	}
}

func TestActSuccessRateTracksCompetenceAndEnv(t *testing.T) {
	a := New(1, KindTrustee, Behavior{BaseCompetence: 0.8}, core.DefaultUpdateConfig())
	tk := task.Uniform(1, task.CharGPS)
	r := rng.New(2, "act")
	cfg := DefaultActConfig()
	succ := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if a.Act(tk, 0.5, cfg, r).Success {
			succ++
		}
	}
	rate := float64(succ) / n
	if math.Abs(rate-0.4) > 0.02 { // 0.8 competence × 0.5 environment
		t.Fatalf("success rate = %v, want ~0.4", rate)
	}
}

func TestActOutcomeShape(t *testing.T) {
	a := New(1, KindTrustee, Behavior{BaseCompetence: 0.9}, core.DefaultUpdateConfig())
	tk := task.Uniform(1, task.CharGPS)
	r := rng.New(3, "shape")
	cfg := DefaultActConfig()
	for i := 0; i < 1000; i++ {
		o := a.Act(tk, 1, cfg, r)
		if o.Success && o.Damage != 0 {
			t.Fatal("success carries damage")
		}
		if !o.Success && o.Gain != 0 {
			t.Fatal("failure carries gain")
		}
		if o.Cost <= 0 {
			t.Fatal("interaction without cost")
		}
		for _, v := range [...]float64{o.Gain, o.Damage, o.Cost} {
			if v < 0 || v > 1 {
				t.Fatalf("outcome component out of range: %+v", o)
			}
		}
	}
}

func TestFragmentStallInflatesCost(t *testing.T) {
	honest := New(1, KindTrustee, Behavior{BaseCompetence: 0.9}, core.DefaultUpdateConfig())
	staller := New(2, KindDishonestTrustee, Behavior{
		BaseCompetence: 0.9,
		Malice:         MaliceFragmentStall,
		StallCost:      0.6,
	}, core.DefaultUpdateConfig())
	tk := task.Uniform(1, task.CharGPS)
	r := rng.New(4, "stall")
	cfg := DefaultActConfig()
	oh := honest.Act(tk, 1, cfg, r)
	os := staller.Act(tk, 1, cfg, r)
	if os.Cost <= oh.Cost {
		t.Fatalf("stall cost %v not above honest %v", os.Cost, oh.Cost)
	}
}

func TestOpportunistFailsMoreOften(t *testing.T) {
	honest := New(1, KindTrustee, Behavior{BaseCompetence: 0.9}, core.DefaultUpdateConfig())
	opp := New(2, KindDishonestTrustee, Behavior{
		BaseCompetence: 0.9,
		Malice:         MaliceOpportunist,
	}, core.DefaultUpdateConfig())
	tk := task.Uniform(1, task.CharGPS)
	cfg := DefaultActConfig()
	count := func(a *Agent, label string) int {
		r := rng.New(5, label)
		succ := 0
		for i := 0; i < 5000; i++ {
			if a.Act(tk, 1, cfg, r).Success {
				succ++
			}
		}
		return succ
	}
	if count(opp, "opp") >= count(honest, "honest") {
		t.Fatal("opportunist succeeded as often as honest agent")
	}
}

func TestEnergyDrains(t *testing.T) {
	a := New(1, KindTrustee, Behavior{BaseCompetence: 0.5}, core.DefaultUpdateConfig())
	tk := task.Uniform(1, task.CharGPS)
	r := rng.New(6, "drain")
	start := a.Energy
	a.Act(tk, 1, DefaultActConfig(), r)
	if a.Energy >= start {
		t.Fatal("energy did not drain")
	}
}

func TestSelfExpectation(t *testing.T) {
	a := New(1, KindTrustor, Behavior{BaseCompetence: 0.7}, core.DefaultUpdateConfig())
	tk := task.Uniform(1, task.CharGPS)
	e := a.SelfExpectation(tk, 0.3)
	if e.S != 0.7 || e.C != 0.3 {
		t.Fatalf("self expectation = %+v", e)
	}
	if math.Abs(e.D-0.3) > 1e-12 {
		t.Fatalf("self damage = %v", e.D)
	}
}

func TestKindAndMaliceStrings(t *testing.T) {
	if KindTrustor.String() != "trustor" || KindDishonestTrustee.String() != "dishonest-trustee" {
		t.Fatal("kind strings wrong")
	}
	if Kind(42).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
	if MaliceFragmentStall.String() != "fragment-stall" || Malice(42).String() != "unknown" {
		t.Fatal("malice strings wrong")
	}
}

func TestAgentString(t *testing.T) {
	a := New(7, KindTrustee, Behavior{}, core.DefaultUpdateConfig())
	if a.String() != "agent#7(trustee)" {
		t.Fatalf("String = %q", a.String())
	}
}
