// Package agent models the behavior of social IoT objects: their true
// per-characteristic competence, their conduct as trustors (responsible or
// abusive resource use), and the malicious trustee behaviors the paper's
// experiments inject — characteristic-specific poor performance (Fig. 8),
// fragment-packet stalling that inflates interaction cost (Fig. 14), and
// late-joining opportunists that hide behind environment changes (Fig. 16).
package agent

import (
	"fmt"
	"math/rand/v2"

	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/task"
)

// Kind is an agent's role in an experiment.
type Kind int

const (
	// KindBystander participates in the social network but neither requests
	// nor serves tasks.
	KindBystander Kind = iota
	// KindTrustor generates task delegation requests.
	KindTrustor
	// KindTrustee serves delegation requests honestly.
	KindTrustee
	// KindDishonestTrustee serves requests while carrying some Malice.
	KindDishonestTrustee
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBystander:
		return "bystander"
	case KindTrustor:
		return "trustor"
	case KindTrustee:
		return "trustee"
	case KindDishonestTrustee:
		return "dishonest-trustee"
	default:
		return "unknown"
	}
}

// Malice enumerates the dishonest-trustee behaviors used by the paper's
// experiments.
type Malice int

const (
	// MaliceNone is honest behavior.
	MaliceNone Malice = iota
	// MaliceCharacteristic performs poorly on specific characteristics
	// while looking normal on others (§5.4: "dishonest trustees have
	// performed maliciously with a particular characteristic").
	MaliceCharacteristic
	// MaliceFragmentStall completes tasks but pads the interaction with
	// fragment packets, inflating the trustor's active time and energy
	// cost (§5.6's experiment behind Fig. 14).
	MaliceFragmentStall
	// MaliceOpportunist serves only when conditions favor it and misbehaves
	// from time to time — the Fig. 16 adversary that outperforms honest
	// nodes struggling in the dark unless the environment is corrected.
	MaliceOpportunist
)

// String names the malice.
func (m Malice) String() string {
	switch m {
	case MaliceNone:
		return "none"
	case MaliceCharacteristic:
		return "characteristic"
	case MaliceFragmentStall:
		return "fragment-stall"
	case MaliceOpportunist:
		return "opportunist"
	default:
		return "unknown"
	}
}

// Behavior is the ground truth about an agent that the trust model tries to
// discover through delegations.
type Behavior struct {
	// BaseCompetence is the agent's competence-and-willingness on any
	// characteristic not listed in Competence, in [0, 1]. The paper assigns
	// this as "a random number in [0, 1] ... to indicate its actual
	// competence and willingness to accomplish the task".
	BaseCompetence float64
	// Competence overrides per characteristic.
	Competence map[task.Characteristic]float64
	// Responsibility is the trustor-side probability of using a trustee's
	// resources responsibly (1 − abuse probability), the hidden variable of
	// the Fig. 7 experiment.
	Responsibility float64
	// Malice is the trustee-side misbehavior, if any.
	Malice Malice
	// MaliceChars marks the characteristics affected by
	// MaliceCharacteristic.
	MaliceChars map[task.Characteristic]bool
	// StallCost is the extra normalized cost MaliceFragmentStall inflicts
	// per interaction.
	StallCost float64
}

// CharCompetence returns the agent's true competence on one characteristic,
// including characteristic-targeted malice.
func (b Behavior) CharCompetence(c task.Characteristic) float64 {
	v := b.BaseCompetence
	if o, ok := b.Competence[c]; ok {
		v = o
	}
	if b.Malice == MaliceCharacteristic && b.MaliceChars[c] {
		// Malicious on this characteristic: competence collapses.
		v *= 0.15
	}
	return clamp01(v)
}

// TaskCompetence returns the competence on a whole task: the task-weighted
// mean of the per-characteristic competences. ("If this task has two
// characteristics, this random number reveals the node's capability of
// handling each characteristic.")
func (b Behavior) TaskCompetence(t task.Task) float64 {
	var v float64
	for _, c := range t.Characteristics() {
		v += t.Weight(c) * b.CharCompetence(c)
	}
	return clamp01(v)
}

// UsesAbusively samples whether the agent, acting as trustor, abuses the
// granted resources this time.
func (b Behavior) UsesAbusively(r *rand.Rand) bool {
	return r.Float64() >= b.Responsibility
}

// Agent is one social IoT object: identity, role, ground-truth behavior,
// trust store (its state as trustor and its usage logs as trustee), and the
// reverse-evaluation threshold θ_y(τ) it applies to requesters.
type Agent struct {
	ID       core.AgentID
	Kind     Kind
	Behavior Behavior
	Store    *core.Store
	// Theta is the reverse-evaluation threshold θ_y(τ). The paper's Fig. 7
	// sweeps it over {0, 0.3, 0.6}; 0 disables the reverse evaluation.
	Theta float64
	// Energy is the remaining normalized battery; Act drains it by the
	// outcome's cost. Negative energy is clamped to 0.
	Energy float64
}

// New creates an agent with an empty trust store.
func New(id core.AgentID, kind Kind, b Behavior, cfg core.UpdateConfig) *Agent {
	return &Agent{ID: id, Kind: kind, Behavior: b, Store: core.NewStore(id, cfg), Energy: 1}
}

// String implements fmt.Stringer.
func (a *Agent) String() string {
	return fmt.Sprintf("agent#%d(%s)", a.ID, a.Kind)
}

// AcceptsDelegation runs the reverse evaluation of eq. 1: the agent, as
// potential trustee, accepts the trustor only if the reverse trustworthiness
// from its usage logs clears θ.
func (a *Agent) AcceptsDelegation(trustor core.AgentID) bool {
	if a.Theta <= 0 {
		return true
	}
	return a.Store.ReverseTW(trustor) >= a.Theta
}

// ActConfig tunes the outcome model of Act.
type ActConfig struct {
	// BaseCost is the normalized cost of a clean interaction.
	BaseCost float64
	// GainSpread adds uniform noise to the gain on success.
	GainSpread float64
}

// DefaultActConfig returns the outcome model used by the experiments.
func DefaultActConfig() ActConfig {
	return ActConfig{BaseCost: 0.15, GainSpread: 0.2}
}

// Act simulates the agent executing task t as trustee in environment e.
// Success probability is the task competence scaled by the environment
// (hostile conditions make every task harder, §4.5). On success the trustor
// gains proportionally to competence; on failure it suffers damage.
// Fragment-stall malice inflates cost; opportunists fail sporadically on
// purpose.
func (a *Agent) Act(t task.Task, e env.Environment, cfg ActConfig, r *rand.Rand) core.Outcome {
	out := a.ActOutcome(t, e, cfg, r)
	a.DrainEnergy(out.Cost)
	return out
}

// ActOutcome computes the outcome of executing t without mutating the agent
// — the read-only half of Act. The parallel simulation engine calls it from
// worker goroutines and applies the energy drain later, during the
// deterministic single-threaded merge.
func (a *Agent) ActOutcome(t task.Task, e env.Environment, cfg ActConfig, r *rand.Rand) core.Outcome {
	comp := a.Behavior.TaskCompetence(t)
	pSuccess := comp * float64(e.Clamp())
	if a.Behavior.Malice == MaliceOpportunist && r.Float64() < 0.25 {
		// Deliberate sporadic misbehavior.
		pSuccess *= 0.2
	}
	out := core.Outcome{Cost: cfg.BaseCost}
	if a.Behavior.Malice == MaliceFragmentStall {
		out.Cost = clamp01(cfg.BaseCost + a.Behavior.StallCost)
	}
	if r.Float64() < pSuccess {
		out.Success = true
		out.Gain = clamp01(comp * (1 - cfg.GainSpread/2 + cfg.GainSpread*r.Float64()))
	} else {
		out.Damage = clamp01((1 - comp) * (0.5 + 0.5*r.Float64()))
	}
	return out
}

// DrainEnergy applies the battery cost of one interaction, clamping at 0.
func (a *Agent) DrainEnergy(cost float64) {
	a.Energy -= cost * 0.01
	if a.Energy < 0 {
		a.Energy = 0
	}
}

// SelfExpectation returns the expectation a trustor holds about executing a
// task itself (the self-delegation candidate of eq. 24): it knows its own
// competence exactly, pays no delegation damage risk beyond failure, and
// bears its own cost.
func (a *Agent) SelfExpectation(t task.Task, selfCost float64) core.Expectation {
	comp := a.Behavior.TaskCompetence(t)
	return core.Expectation{S: comp, G: comp, D: 1 - comp, C: selfCost}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
