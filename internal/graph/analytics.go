package graph

import "math"

// This file holds the secondary network-analysis metrics used to
// characterize generated and loaded social networks beyond the Table 1 set.

// Density returns the fraction of possible edges present, 2E/(N(N−1)).
func (g *Graph) Density() float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	return 2 * float64(g.edges) / (float64(n) * float64(n-1))
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's degree assortativity coefficient). Social networks are
// typically assortative (high-degree nodes befriend each other); the
// coefficient is 0 when degrees are uncorrelated and undefined (returned as
// 0) when every node has the same degree.
func (g *Graph) DegreeAssortativity() float64 {
	var sx, sy, sxy, sx2, sy2 float64
	m := 0
	for u := 0; u < g.NumNodes(); u++ {
		du := float64(g.Degree(NodeID(u)))
		for _, v := range g.Neighbors(NodeID(u)) {
			// Each undirected edge contributes both (du, dv) and (dv, du),
			// which symmetrizes the correlation.
			dv := float64(g.Degree(v))
			sx += du
			sy += dv
			sxy += du * dv
			sx2 += du * du
			sy2 += dv * dv
			m++
		}
	}
	if m == 0 {
		return 0
	}
	fm := float64(m)
	num := sxy/fm - (sx/fm)*(sy/fm)
	den := math.Sqrt(sx2/fm-(sx/fm)*(sx/fm)) * math.Sqrt(sy2/fm-(sy/fm)*(sy/fm))
	if den == 0 {
		return 0
	}
	return num / den
}

// KCore returns the maximal subgraph node set in which every node has at
// least k neighbors within the set (the k-core), using the standard
// peeling algorithm.
func (g *Graph) KCore(k int) []NodeID {
	n := g.NumNodes()
	deg := make([]int, n)
	removed := make([]bool, n)
	queue := make([]NodeID, 0, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(NodeID(u))
		if deg[u] < k {
			removed[u] = true
			queue = append(queue, NodeID(u))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if removed[v] {
				continue
			}
			deg[v]--
			if deg[v] < k {
				removed[v] = true
				queue = append(queue, v)
			}
		}
	}
	var core []NodeID
	for u := 0; u < n; u++ {
		if !removed[u] {
			core = append(core, NodeID(u))
		}
	}
	return core
}

// Degeneracy returns the largest k for which the k-core is non-empty — a
// standard measure of how deeply nested the dense part of the network is.
func (g *Graph) Degeneracy() int {
	k := 0
	for len(g.KCore(k+1)) > 0 {
		k++
	}
	return k
}

// MedianDegree returns the median node degree (lower median for even
// counts).
func (g *Graph) MedianDegree() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	// Counting sort over degrees (bounded by n-1).
	counts := make([]int, n)
	for u := 0; u < n; u++ {
		counts[g.Degree(NodeID(u))]++
	}
	target := (n - 1) / 2
	seen := 0
	for d, c := range counts {
		seen += c
		if seen > target {
			return d
		}
	}
	return 0
}

// TriangleCount returns the number of triangles in the graph.
func (g *Graph) TriangleCount() int {
	count := 0
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Neighbors(NodeID(u))
		for i := 0; i < len(nbrs); i++ {
			if nbrs[i] <= NodeID(u) {
				continue
			}
			for j := i + 1; j < len(nbrs); j++ {
				if nbrs[j] > nbrs[i] && g.HasEdge(nbrs[i], nbrs[j]) {
					count++
				}
			}
		}
	}
	return count
}
