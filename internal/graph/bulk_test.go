package graph

import "testing"

// TestNewFromSortedEdges checks the bulk loader against the incremental
// path and its precondition rejections.
func TestNewFromSortedEdges(t *testing.T) {
	pairs := [][2]NodeID{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	g, err := NewFromSortedEdges(4, pairs)
	if err != nil {
		t.Fatal(err)
	}
	want := New(4)
	for _, e := range pairs {
		if err := want.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("bulk-loaded graph invalid: %v", err)
	}
	if g.NumEdges() != want.NumEdges() {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want.NumEdges())
	}
	for u := 0; u < 4; u++ {
		a, b := g.Neighbors(NodeID(u)), want.Neighbors(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("node %d: %v, want %v", u, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: %v, want %v", u, a, b)
			}
		}
	}

	for _, tc := range []struct {
		name  string
		n     int
		pairs [][2]NodeID
	}{
		{"out of range", 2, [][2]NodeID{{0, 2}}},
		{"not canonical", 3, [][2]NodeID{{1, 0}}},
		{"self-loop", 3, [][2]NodeID{{1, 1}}},
		{"duplicate", 3, [][2]NodeID{{0, 1}, {0, 1}}},
		{"out of order", 3, [][2]NodeID{{1, 2}, {0, 1}}},
	} {
		if _, err := NewFromSortedEdges(tc.n, tc.pairs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
