// Package graph implements the undirected-graph substrate underlying the
// social IoT simulations: adjacency storage, traversal, shortest paths, and
// the connectivity statistics reported in Table 1 of the paper (degree,
// diameter, average path length, clustering coefficient).
//
// Graphs are simple (no self-loops, no multi-edges) and node IDs are dense
// integers in [0, N). The sizes used by the paper (a few hundred nodes, a few
// thousand edges) make exact all-pairs BFS affordable, so all metrics here
// are exact rather than sampled.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are dense in [0, N).
type NodeID int32

// Graph is a simple undirected graph over dense integer node IDs.
// The zero value is an empty graph with no nodes; use New to create a graph
// with a fixed node count.
type Graph struct {
	adj   [][]NodeID
	edges int
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{adj: make([][]NodeID, n)}
}

// ErrNoSuchNode is returned by operations addressing a node outside [0, N).
var ErrNoSuchNode = errors.New("graph: node does not exist")

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// valid reports whether u is a node of g.
func (g *Graph) valid(u NodeID) bool { return u >= 0 && int(u) < len(g.adj) }

// AddEdge inserts the undirected edge {u, v}. It is a no-op if the edge
// already exists. Self-loops are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("%w: edge {%d,%d} on graph of %d nodes", ErrNoSuchNode, u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d rejected", u)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.edges++
	return nil
}

// NewFromSortedEdges bulk-loads a graph from a deduplicated edge list
// sorted by (u, v) with u < v for every pair. It is the streaming
// generator's fast path: degrees are counted in one pass, every adjacency
// slice is allocated at exact capacity, and both directions come out
// sorted without any per-insert shifting — O(N + E) total, where AddEdge
// in a loop is O(E·deg). The preconditions (sorted, unique, u < v, no
// self-loops, IDs in range) are checked and violations are rejected.
func NewFromSortedEdges(n int, edges [][2]NodeID) (*Graph, error) {
	g := New(n)
	deg := make([]int32, n)
	var prev [2]NodeID
	for i, e := range edges {
		u, v := e[0], e[1]
		if !g.valid(u) || !g.valid(v) {
			return nil, fmt.Errorf("%w: edge {%d,%d} on graph of %d nodes", ErrNoSuchNode, u, v, n)
		}
		if u >= v {
			return nil, fmt.Errorf("graph: edge %d {%d,%d} not in canonical u < v order", i, u, v)
		}
		if i > 0 && (u < prev[0] || (u == prev[0] && v <= prev[1])) {
			return nil, fmt.Errorf("graph: edge %d {%d,%d} out of order after {%d,%d}", i, u, v, prev[0], prev[1])
		}
		prev = e
		deg[u]++
		deg[v]++
	}
	for u := range g.adj {
		g.adj[u] = make([]NodeID, 0, deg[u])
	}
	// Appending in sorted-key order keeps both directions sorted: for fixed
	// u the v's ascend, and for fixed v the u's ascend as the outer u does.
	for _, e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	g.edges = len(edges)
	return g, nil
}

// insertSorted inserts v into the sorted slice s, keeping it sorted.
func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.valid(u) || !g.valid(v) || u == v {
		return false
	}
	// Search the shorter adjacency list.
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.edges--
	return true
}

func removeSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// Degree returns the number of neighbors of u, or 0 for an invalid node.
func (g *Graph) Degree(u NodeID) int {
	if !g.valid(u) {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors returns the sorted neighbor list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	if !g.valid(u) {
		return nil
	}
	return g.adj[u]
}

// EdgeList returns all edges as (u, v) pairs with u < v, sorted.
func (g *Graph) EdgeList() [][2]NodeID {
	out := make([][2]NodeID, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, [2]NodeID{NodeID(u), v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]NodeID, len(g.adj)), edges: g.edges}
	for i, a := range g.adj {
		c.adj[i] = append([]NodeID(nil), a...)
	}
	return c
}

// AvgDegree returns the mean node degree, 2E/N. It returns 0 for an empty
// graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// BFS runs a breadth-first traversal from src and returns the hop distance
// to every node; unreachable nodes get distance -1.
func (g *Graph) BFS(src NodeID) []int32 {
	dist := make([]int32, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if !g.valid(src) {
		return dist
	}
	dist[src] = 0
	queue := make([]NodeID, 0, len(g.adj))
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst (inclusive of both
// endpoints) or nil if dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID) []NodeID {
	if !g.valid(src) || !g.valid(dst) {
		return nil
	}
	if src == dst {
		return []NodeID{src}
	}
	parent := make([]NodeID, len(g.adj))
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] < 0 {
				parent[v] = u
				if v == dst {
					// Reconstruct.
					path := []NodeID{dst}
					for p := u; ; p = parent[p] {
						path = append(path, p)
						if p == src {
							break
						}
					}
					reverse(path)
					return path
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func reverse(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// ConnectedComponents returns the node sets of all connected components,
// largest first.
func (g *Graph) ConnectedComponents() [][]NodeID {
	seen := make([]bool, len(g.adj))
	var comps [][]NodeID
	for s := range g.adj {
		if seen[s] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{NodeID(s)}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// Subgraph returns the induced subgraph on nodes, together with the mapping
// from new IDs (dense, in input order) back to original IDs.
func (g *Graph) Subgraph(nodes []NodeID) (*Graph, []NodeID) {
	idx := make(map[NodeID]NodeID, len(nodes))
	orig := make([]NodeID, len(nodes))
	for i, n := range nodes {
		idx[n] = NodeID(i)
		orig[i] = n
	}
	sub := New(len(nodes))
	for i, n := range nodes {
		if !g.valid(n) {
			continue
		}
		for _, v := range g.adj[n] {
			if j, ok := idx[v]; ok && NodeID(i) < j {
				// Both endpoints are valid members of the subgraph.
				_ = sub.AddEdge(NodeID(i), j)
			}
		}
	}
	return sub, orig
}

// ClusteringCoefficient returns the local clustering coefficient of u: the
// fraction of pairs of u's neighbors that are themselves connected. Nodes of
// degree < 2 have coefficient 0 by convention.
func (g *Graph) ClusteringCoefficient(u NodeID) float64 {
	if !g.valid(u) {
		return 0
	}
	nbrs := g.adj[u]
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(k*(k-1))
}

// AvgClustering returns the mean local clustering coefficient over all
// nodes (the "average clustering coefficient" of Table 1).
func (g *Graph) AvgClustering() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	var sum float64
	for u := range g.adj {
		sum += g.ClusteringCoefficient(NodeID(u))
	}
	return sum / float64(len(g.adj))
}

// PathStats holds exact shortest-path statistics of a graph.
type PathStats struct {
	// Diameter is the largest shortest-path length between any connected
	// pair of nodes.
	Diameter int
	// AvgPathLength is the mean shortest-path length over all connected
	// ordered pairs of distinct nodes.
	AvgPathLength float64
	// ReachablePairs counts connected ordered pairs of distinct nodes.
	ReachablePairs int
}

// Paths computes exact diameter and average path length with all-pairs BFS.
// Unreachable pairs are excluded from the average, matching the convention
// of network-analysis tools such as Gephi used by the paper.
func (g *Graph) Paths() PathStats {
	var st PathStats
	var total int64
	for u := range g.adj {
		dist := g.BFS(NodeID(u))
		for v, d := range dist {
			if v == u || d < 0 {
				continue
			}
			total += int64(d)
			st.ReachablePairs++
			if int(d) > st.Diameter {
				st.Diameter = int(d)
			}
		}
	}
	if st.ReachablePairs > 0 {
		st.AvgPathLength = float64(total) / float64(st.ReachablePairs)
	}
	return st
}

// DegreeHistogram returns a map from degree to the number of nodes with that
// degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := range g.adj {
		h[len(g.adj[u])]++
	}
	return h
}

// Validate checks internal invariants (sorted adjacency, symmetry, edge
// count, no self-loops) and returns a descriptive error on the first
// violation. It is used by tests and the generators.
func (g *Graph) Validate() error {
	count := 0
	for u := range g.adj {
		prev := NodeID(-1)
		for _, v := range g.adj[u] {
			if v <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			prev = v
			if v == NodeID(u) {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if !g.valid(v) {
				return fmt.Errorf("graph: dangling neighbor %d of %d", v, u)
			}
			if !g.HasEdge(v, NodeID(u)) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", u, v)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency total %d", g.edges, count)
	}
	return nil
}
