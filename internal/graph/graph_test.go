package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			panic(err)
		}
	}
	return g
}

// complete returns K_n.
func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(NodeID(i), NodeID(j)); err != nil {
				panic(err)
			}
		}
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph has nodes or edges")
	}
	if g.AvgDegree() != 0 || g.AvgClustering() != 0 {
		t.Fatal("empty graph metrics nonzero")
	}
	st := g.Paths()
	if st.Diameter != 0 || st.AvgPathLength != 0 {
		t.Fatal("empty graph path stats nonzero")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	// Duplicate is a no-op.
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge counted: %d", g.NumEdges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := complete(4)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("existing edge not removed")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge still present after removal")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("second removal reported true")
	}
	if g.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := path(4)
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.Degree(99) != 0 {
		t.Fatal("invalid node degree not 0")
	}
	n := g.Neighbors(1)
	if len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("neighbors of 1 = %v", n)
	}
	if g.Neighbors(99) != nil {
		t.Fatal("invalid node has neighbors")
	}
}

func TestHandshakeLemma(t *testing.T) {
	// Sum of degrees equals 2E on random graphs.
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.IntN(50)
		g := New(n)
		for e := 0; e < 3*n; e++ {
			u, v := NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(NodeID(u))
		}
		if sum != 2*g.NumEdges() {
			t.Fatalf("handshake violated: sum=%d 2E=%d", sum, 2*g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := path(5)
	d := g.BFS(0)
	for i := 0; i < 5; i++ {
		if d[i] != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	d := g.BFS(0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatalf("unreachable nodes have distance %d %d", d[2], d[3])
	}
}

func TestShortestPath(t *testing.T) {
	g := New(6)
	// Two routes 0->5: 0-1-2-5 (3 hops) and 0-3-4-5 wait also 3; add shortcut 0-4.
	edges := [][2]NodeID{{0, 1}, {1, 2}, {2, 5}, {0, 3}, {3, 4}, {4, 5}, {0, 4}}
	for _, e := range edges {
		_ = g.AddEdge(e[0], e[1])
	}
	p := g.ShortestPath(0, 5)
	if len(p) != 3 || p[0] != 0 || p[2] != 5 {
		t.Fatalf("shortest path = %v, want length-3 path 0..5", p)
	}
	if !g.HasEdge(p[0], p[1]) || !g.HasEdge(p[1], p[2]) {
		t.Fatal("returned path has non-edges")
	}
	if got := g.ShortestPath(0, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("trivial path = %v", got)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	if p := g.ShortestPath(0, 2); p != nil {
		t.Fatalf("path to unreachable node: %v", p)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4)
	// 5, 6 isolated.
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(comps[0]))
	}
}

func TestSubgraph(t *testing.T) {
	g := complete(5)
	sub, orig := g.Subgraph([]NodeID{1, 3, 4})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("subgraph %d nodes %d edges, want 3/3", sub.NumNodes(), sub.NumEdges())
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 4 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringComplete(t *testing.T) {
	g := complete(5)
	for u := 0; u < 5; u++ {
		if c := g.ClusteringCoefficient(NodeID(u)); c != 1 {
			t.Fatalf("K5 clustering(%d) = %v, want 1", u, c)
		}
	}
	if g.AvgClustering() != 1 {
		t.Fatal("K5 average clustering != 1")
	}
}

func TestClusteringPath(t *testing.T) {
	g := path(5)
	if g.AvgClustering() != 0 {
		t.Fatal("path graph clustering != 0")
	}
	if g.ClusteringCoefficient(0) != 0 {
		t.Fatal("degree-1 node clustering != 0")
	}
}

func TestClusteringTriangleWithTail(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(2, 3)
	// Node 2 has neighbors {0,1,3}; only pair (0,1) connected: C = 1/3.
	if c := g.ClusteringCoefficient(2); c < 0.333 || c > 0.334 {
		t.Fatalf("clustering = %v, want 1/3", c)
	}
}

func TestPathsOnPathGraph(t *testing.T) {
	g := path(4)
	st := g.Paths()
	if st.Diameter != 3 {
		t.Fatalf("diameter = %d, want 3", st.Diameter)
	}
	// Ordered pairs distances: sum over pairs = 2*(1+2+3 + 1+2 + 1) = 20; pairs = 12.
	want := 20.0 / 12.0
	if st.AvgPathLength < want-1e-9 || st.AvgPathLength > want+1e-9 {
		t.Fatalf("APL = %v, want %v", st.AvgPathLength, want)
	}
}

func TestPathsComplete(t *testing.T) {
	st := complete(6).Paths()
	if st.Diameter != 1 || st.AvgPathLength != 1 {
		t.Fatalf("K6 paths = %+v", st)
	}
}

func TestEdgeList(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(2, 0)
	_ = g.AddEdge(1, 2)
	el := g.EdgeList()
	if len(el) != 2 {
		t.Fatalf("edge list %v", el)
	}
	for _, e := range el {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not canonical", e)
		}
	}
}

func TestClone(t *testing.T) {
	g := complete(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("clone shares storage with original")
	}
	if c.NumEdges() != g.NumEdges()-1 {
		t.Fatal("clone edge counts wrong")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(4)
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestQuickClusteringBounds(t *testing.T) {
	// Local clustering is always within [0,1] on arbitrary random graphs.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		r := rand.New(rand.NewPCG(seed, 7))
		g := New(n)
		for e := 0; e < 4*n; e++ {
			u, v := NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		for u := 0; u < n; u++ {
			c := g.ClusteringCoefficient(NodeID(u))
			if c < 0 || c > 1 {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickBFSTriangleInequality(t *testing.T) {
	// d(s,v) <= d(s,u) + 1 for every edge (u,v).
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		n := 30
		g := New(n)
		for e := 0; e < 60; e++ {
			u, v := NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		d := g.BFS(0)
		for _, e := range g.EdgeList() {
			du, dv := d[e[0]], d[e[1]]
			if du >= 0 && dv >= 0 {
				diff := du - dv
				if diff < -1 || diff > 1 {
					return false
				}
			}
			if (du < 0) != (dv < 0) {
				return false // adjacent nodes must be in the same component
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
