package graph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDensity(t *testing.T) {
	if complete(5).Density() != 1 {
		t.Fatal("K5 density != 1")
	}
	if New(3).Density() != 0 {
		t.Fatal("edgeless density != 0")
	}
	if New(1).Density() != 0 {
		t.Fatal("single-node density != 0")
	}
	g := path(4) // 3 edges of 6 possible
	if math.Abs(g.Density()-0.5) > 1e-12 {
		t.Fatalf("path density = %v", g.Density())
	}
}

func TestDegreeAssortativityRegular(t *testing.T) {
	// All degrees equal: correlation undefined, reported as 0.
	if got := complete(5).DegreeAssortativity(); got != 0 {
		t.Fatalf("K5 assortativity = %v", got)
	}
	if got := New(4).DegreeAssortativity(); got != 0 {
		t.Fatalf("edgeless assortativity = %v", got)
	}
}

func TestDegreeAssortativityStar(t *testing.T) {
	// A star is maximally disassortative: hubs connect only to leaves.
	g := New(6)
	for i := 1; i < 6; i++ {
		_ = g.AddEdge(0, NodeID(i))
	}
	if got := g.DegreeAssortativity(); got >= 0 {
		t.Fatalf("star assortativity = %v, want negative", got)
	}
}

func TestDegreeAssortativityBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		g := New(20)
		for e := 0; e < 40; e++ {
			u, v := NodeID(r.IntN(20)), NodeID(r.IntN(20))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		a := g.DegreeAssortativity()
		return a >= -1-1e-9 && a <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKCore(t *testing.T) {
	// Triangle with a pendant: 2-core is the triangle.
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(2, 3)
	core := g.KCore(2)
	if len(core) != 3 {
		t.Fatalf("2-core = %v", core)
	}
	for _, u := range core {
		if u == 3 {
			t.Fatal("pendant survived the 2-core")
		}
	}
	if len(g.KCore(3)) != 0 {
		t.Fatal("3-core of a triangle-with-tail should be empty")
	}
	if len(g.KCore(0)) != 4 {
		t.Fatal("0-core must include everything")
	}
}

func TestKCoreCascade(t *testing.T) {
	// A chain collapses entirely under k=2: removals must cascade.
	g := path(6)
	if len(g.KCore(2)) != 0 {
		t.Fatal("path has a non-empty 2-core")
	}
}

func TestDegeneracy(t *testing.T) {
	if got := complete(5).Degeneracy(); got != 4 {
		t.Fatalf("K5 degeneracy = %d", got)
	}
	if got := path(5).Degeneracy(); got != 1 {
		t.Fatalf("path degeneracy = %d", got)
	}
	if got := New(3).Degeneracy(); got != 0 {
		t.Fatalf("edgeless degeneracy = %d", got)
	}
}

func TestMedianDegree(t *testing.T) {
	g := New(5)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(0, 3)
	// Degrees: 3,1,1,1,0 → sorted 0,1,1,1,3 → median 1.
	if got := g.MedianDegree(); got != 1 {
		t.Fatalf("median degree = %d", got)
	}
	if New(0).MedianDegree() != 0 {
		t.Fatal("empty median degree != 0")
	}
}

func TestTriangleCount(t *testing.T) {
	if got := complete(4).TriangleCount(); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	if got := path(5).TriangleCount(); got != 0 {
		t.Fatalf("path triangles = %d", got)
	}
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(2, 3)
	if got := g.TriangleCount(); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
}

func TestQuickTriangleVsClustering(t *testing.T) {
	// A graph has triangles iff some node has nonzero clustering.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		g := New(15)
		for e := 0; e < 25; e++ {
			u, v := NodeID(r.IntN(15)), NodeID(r.IntN(15))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		hasTriangles := g.TriangleCount() > 0
		hasClustering := false
		for u := 0; u < 15; u++ {
			if g.ClusteringCoefficient(NodeID(u)) > 0 {
				hasClustering = true
				break
			}
		}
		return hasTriangles == hasClustering
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
