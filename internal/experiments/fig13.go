package experiments

import (
	"fmt"

	"siot/internal/report"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
)

// Fig13Config parameterizes the net-profit learning experiment (§5.6).
type Fig13Config struct {
	Seed uint64
	// Iterations of continuous task delegations (the paper plots 3000).
	Iterations int
	// Smooth applies a trailing moving average to the plotted series (the
	// paper's curves are visibly smoothed); <= 1 disables.
	Smooth int
	// Parallelism is the engine worker-pool width (0 = GOMAXPROCS,
	// 1 = serial). Results are bit-identical across all values.
	Parallelism int
}

// DefaultFig13Config mirrors the paper.
func DefaultFig13Config(seed uint64) Fig13Config {
	return Fig13Config{Seed: seed, Iterations: 3000, Smooth: 50}
}

// Fig13Result reproduces Fig. 13, "Comparison of the net profits with
// iterative trustworthiness updates": average net profit per iteration for
// each network under the success-rate-only strategy and the full net-profit
// strategy.
type Fig13Result struct {
	Series []stats.Series
	// Converged holds the mean profit over the last third of the run per
	// curve, for the table and shape checks.
	Converged map[string]float64
}

// RunFig13 runs both strategies over the three networks on the parallel
// engine; cfg.Parallelism only changes wall-clock time, never the curves.
func RunFig13(cfg Fig13Config) Fig13Result {
	res := Fig13Result{Converged: map[string]float64{}}
	for _, profile := range Networks() {
		net := socialgen.Generate(profile, cfg.Seed)
		for _, strategy := range []sim.Strategy{sim.StrategyNetProfit, sim.StrategySuccessRate} {
			pcfg := sim.DefaultPopulationConfig(cfg.Seed)
			pcfg.Parallelism = cfg.Parallelism
			p := sim.NewPopulation(net, pcfg)
			series := sim.NewEngine(p, "fig13").NetProfitRun(cfg.Iterations, strategy, cfg.Seed)
			name := fmt.Sprintf("%s (%s)", profile.Name, strategy)
			tail := series[len(series)*2/3:]
			res.Converged[name] = stats.Mean(tail)
			if cfg.Smooth > 1 {
				series = stats.MovingAvg(series, cfg.Smooth)
			}
			res.Series = append(res.Series, stats.NewSeries(name, series))
		}
	}
	return res
}

// Table summarizes converged profits.
func (r Fig13Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 13: converged average net profit (last third of iterations)",
		Headers: []string{"Curve", "Net profit"},
	}
	for _, s := range r.Series {
		t.AddRow(s.Name, fmt.Sprintf("%.3f", r.Converged[s.Name]))
	}
	return t
}

// ShapeCheck verifies Fig. 13's claims: per network the second strategy's
// converged profit beats the first strategy's, and the first strategy goes
// negative on at least one network (the paper observes Facebook and
// Twitter below zero).
func (r Fig13Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "fig13"}
	negatives := 0
	for _, profile := range Networks() {
		second := r.Converged[fmt.Sprintf("%s (%s)", profile.Name, sim.StrategyNetProfit)]
		first := r.Converged[fmt.Sprintf("%s (%s)", profile.Name, sim.StrategySuccessRate)]
		c.expect(second > first,
			"%s: second strategy %.3f did not beat first strategy %.3f", profile.Name, second, first)
		c.expect(second > 0, "%s: second strategy converged non-positive (%.3f)", profile.Name, second)
		if first < 0 {
			negatives++
		}
	}
	c.expect(negatives >= 1, "no network drove the first strategy negative")
	return c.errs
}
