package experiments

import (
	"fmt"

	"siot/internal/adversary"
	"siot/internal/core"
	"siot/internal/report"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
	"siot/internal/task"
)

// model-matrix is the cross-model resilience matrix the ROADMAP's
// trust-model-zoo flagship calls for: every registered TrustModel — the
// paper's three policies plus the related-work models (hellinger-mf,
// feature-weighted) — evaluated against every PR 2 attack family, in one
// experiment. Per attack, the delegation rounds are replayed once (the
// round dynamics never consult the transitivity model, so one attacked run
// serves every model) while a per-round probe epoch scores all models over
// the same snapshot (sim.PerceivedTrustModels): each model sees the
// network through its own single-edge lens, so the matrix answers the
// flagship's question — which models detect bad-mouthing fastest, which
// survive whitewashing — with the trust gap, detection latency, and
// success degradation of every (model, attack) cell.

// ModelMatrixConfig parameterizes the cross-model resilience matrix.
type ModelMatrixConfig struct {
	Seed uint64
	// Network selects the social network profile (default "facebook").
	Network string
	// Rounds is the number of delegation rounds per run (default 60 —
	// enough for detection latencies to spread; the matrix runs one
	// baseline plus one run per attack, each with per-round multi-model
	// probes, so it is deliberately shorter than the single-attack
	// scenarios' 150).
	Rounds int
	// Attackers is the ring size (default 30, as in the attack scenarios).
	Attackers int
	// Theta keeps the mutuality defense out of the way (default 0).
	Theta float64
	// DetectionGap is the trust-gap detection threshold (default 0.03).
	DetectionGap float64
	// Parallelism is the engine worker width; results are bit-identical
	// across all values.
	Parallelism int
	// Models are the trust models to evaluate; nil means every registered
	// model, in sorted-name order.
	Models []core.TrustModel
}

// DefaultModelMatrixConfig returns the standard matrix configuration.
func DefaultModelMatrixConfig(seed uint64) ModelMatrixConfig {
	return ModelMatrixConfig{
		Seed:         seed,
		Network:      "facebook",
		Rounds:       60,
		Attackers:    30,
		DetectionGap: 0.03,
	}
}

// matrixAttacks is the fixed attack battery of the matrix: every PR 2
// attack family (bad-mouthing, ballot-stuffing, on-off, whitewashing, and
// a coordinated collusion ring).
func matrixAttacks() []adversary.Attack {
	return []adversary.Attack{
		adversary.BadMouthing{},
		adversary.BallotStuffing{},
		adversary.OnOff{Period: 20, Duty: 0.5},
		adversary.Whitewashing{},
		adversary.Collusion{Of: adversary.BadMouthing{}},
	}
}

// ModelMatrixCell is one (model, attack) entry of the matrix.
type ModelMatrixCell struct {
	Model  string
	Attack string
	// Gap is the per-round honest-minus-attacker perceived-trust gap seen
	// through this model's lens during the attacked run.
	Gap stats.Series
	// Resilience aggregates the cell's metrics. SuccessDegradation is a
	// property of the attack, not the model (the rounds do not consult the
	// transitivity model), so it repeats across a column.
	Resilience report.Resilience
}

// ModelMatrixResult is the full cross-model resilience matrix.
type ModelMatrixResult struct {
	Network   string
	Attackers int
	Rounds    int
	// Models and Attacks give the matrix axes in evaluation order.
	Models  []string
	Attacks []string
	// Cells holds one entry per (attack, model), attack-major.
	Cells []ModelMatrixCell
	// BaselineSuccess is the honest-ring cumulative success rate every
	// degradation is measured against.
	BaselineSuccess float64
	// AttackedSuccess is the attacked cumulative success rate per attack,
	// indexed like Attacks.
	AttackedSuccess []float64
}

// RunModelMatrix plays the matrix: one honest-ring baseline run, then one
// attacked run per attack with every model probed per round over a shared
// epoch. All runs share the network, seed, and engine label, so a cell
// differs from its neighbors only through the attack (rows) or the model's
// lens (columns).
func RunModelMatrix(cfg ModelMatrixConfig) ModelMatrixResult {
	profile, err := socialgen.ProfileByName(cfg.Network)
	if err != nil {
		panic(err)
	}
	net := socialgen.Generate(profile, cfg.Seed)
	tk := task.Uniform(1, task.CharCompute)
	models := cfg.Models
	if models == nil {
		for _, name := range core.ModelNames() {
			m, err := core.ParseModel(name)
			if err != nil {
				panic(err)
			}
			models = append(models, m)
		}
	}

	run := func(atk sim.AttackConfig, probe bool) (success float64, gaps [][]float64) {
		pcfg := sim.DefaultPopulationConfig(cfg.Seed)
		pcfg.Theta = cfg.Theta
		pcfg.Parallelism = cfg.Parallelism
		pcfg.Attack = atk
		p := sim.NewPopulation(net, pcfg)
		eng := sim.NewEngine(p, "model-matrix")
		if probe {
			gaps = make([][]float64, len(models))
			for mi := range gaps {
				gaps[mi] = make([]float64, cfg.Rounds)
			}
		}
		var c sim.MutualityCounters
		for round := 0; round < cfg.Rounds; round++ {
			eng.MutualityRound(round, tk, &c)
			if probe {
				perceived := eng.PerceivedTrustModels(round, tk, models)
				for mi, pv := range perceived {
					gaps[mi][round] = pv.Honest - pv.Attacker
				}
			}
		}
		return c.SuccessRate(), gaps
	}

	res := ModelMatrixResult{
		Network:   cfg.Network,
		Attackers: cfg.Attackers,
		Rounds:    cfg.Rounds,
	}
	for _, m := range models {
		res.Models = append(res.Models, m.Name())
	}
	// The baseline ring runs the null attack (same marked ring, no malice),
	// exactly like the single-attack scenarios.
	baseline, _ := run(sim.AttackConfig{Model: adversary.Honest{}, Attackers: cfg.Attackers}, false)
	res.BaselineSuccess = baseline
	for _, atk := range matrixAttacks() {
		attacked, gaps := run(sim.AttackConfig{Model: atk, Attackers: cfg.Attackers}, true)
		res.Attacks = append(res.Attacks, atk.Name())
		res.AttackedSuccess = append(res.AttackedSuccess, attacked)
		for mi, m := range models {
			gap := stats.NewSeries(m.Name(), gaps[mi])
			res.Cells = append(res.Cells, ModelMatrixCell{
				Model:      m.Name(),
				Attack:     atk.Name(),
				Gap:        gap,
				Resilience: report.NewResilience(gap, cfg.DetectionGap, baseline, attacked),
			})
		}
	}
	return res
}

// Table renders the matrix, one row per (attack, model) cell.
func (r ModelMatrixResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Cross-model resilience matrix (%d attackers, %s network, %d rounds; baseline success %.3f)",
			r.Attackers, r.Network, r.Rounds, r.BaselineSuccess),
		Headers: []string{"Attack", "Model", "Gap (final)", "Gap (min)", "Detection", "Degradation"},
	}
	for _, c := range r.Cells {
		detection := "undetected"
		if c.Resilience.DetectionRound >= 0 {
			detection = fmt.Sprintf("round %d", c.Resilience.DetectionRound)
		}
		t.AddRow(c.Attack, c.Model,
			fmt.Sprintf("%.3f", c.Resilience.TrustGap),
			fmt.Sprintf("%.3f", c.Resilience.MinTrustGap),
			detection,
			fmt.Sprintf("%.3f", c.Resilience.SuccessDegradation))
	}
	return t
}

// Charts renders one trust-gap chart per attack, overlaying every model's
// gap curve — the matrix read horizontally.
func (r ModelMatrixResult) Charts() []report.Chart {
	var charts []report.Chart
	for ai, attack := range r.Attacks {
		var series []stats.Series
		for mi := range r.Models {
			series = append(series, r.Cells[ai*len(r.Models)+mi].Gap)
		}
		charts = append(charts, report.Chart{
			Title:  fmt.Sprintf("Trust gap under %s, per model", attack),
			Series: series,
			XLabel: "round", YLabel: "honest TW − attacker TW",
		})
	}
	return charts
}

// ShapeCheck verifies the matrix is well-formed and the probes produced
// plausible trust values: every cell series validates, every gap stays in
// [-1, 1], success rates stay in [0, 1], and at least one model shows a
// resilience signal under the straight defamation attack (bad-mouthing
// honest trustees must move SOME lens, else the probes are broken).
func (r ModelMatrixResult) ShapeCheck() []error {
	c := &shapeCheck{experiment: "model-matrix"}
	c.expect(len(r.Cells) == len(r.Models)*len(r.Attacks),
		"matrix has %d cells, want %d", len(r.Cells), len(r.Models)*len(r.Attacks))
	c.expect(r.BaselineSuccess >= 0 && r.BaselineSuccess <= 1,
		"baseline success %v outside [0,1]", r.BaselineSuccess)
	for _, s := range r.AttackedSuccess {
		c.expect(s >= 0 && s <= 1, "attacked success %v outside [0,1]", s)
	}
	for _, cell := range r.Cells {
		if err := cell.Gap.Validate(); err != nil {
			c.expect(false, "cell %s/%s series invalid: %v", cell.Attack, cell.Model, err)
		}
		for _, v := range cell.Gap.Y {
			c.expect(v >= -1 && v <= 1, "cell %s/%s gap %v outside [-1,1]", cell.Attack, cell.Model, v)
		}
	}
	signal := false
	for _, cell := range r.Cells {
		if cell.Attack == (adversary.BadMouthing{}).Name() &&
			(cell.Resilience.TrustGap > 0.02 || cell.Resilience.MinTrustGap < -0.02) {
			signal = true
		}
	}
	c.expect(signal, "no model registered any trust-gap signal under bad-mouthing")
	return c.errs
}
