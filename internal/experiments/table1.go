package experiments

import (
	"fmt"

	"siot/internal/report"
	"siot/internal/socialgen"
)

// Table1Row pairs the measured connectivity statistics of one generated
// network with the values the paper reports.
type Table1Row struct {
	Network string
	Got     socialgen.Stats
	Paper   socialgen.Stats
}

// Table1Result reproduces Table 1, "Connectivity characteristics of the
// three sub-networks of social networks".
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 generates the three evaluation networks and measures their
// connectivity characteristics.
func RunTable1(seed uint64) Table1Result {
	var res Table1Result
	for _, p := range Networks() {
		net := socialgen.Generate(p, seed)
		res.Rows = append(res.Rows, Table1Row{
			Network: p.Name,
			Got:     socialgen.ComputeStats(net.Graph, seed),
			Paper:   p.Paper,
		})
	}
	return res
}

// Table renders the result in the paper's row order, with measured and
// paper values side by side.
func (r Table1Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table 1: Connectivity characteristics of the three sub-networks",
		Headers: []string{"Metric"},
	}
	for _, row := range r.Rows {
		t.Headers = append(t.Headers, row.Network, row.Network+" (paper)")
	}
	metric := func(name string, got func(socialgen.Stats) string) {
		cells := []string{name}
		for _, row := range r.Rows {
			cells = append(cells, got(row.Got), got(row.Paper))
		}
		t.AddRow(cells...)
	}
	metric("Number of Nodes", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Nodes) })
	metric("Number of Edges", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Edges) })
	metric("Average Degree", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgDegree) })
	metric("Diameter", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Diameter) })
	metric("Average Path Length", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgPathLength) })
	metric("Average Clustering Coefficient", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.AvgClustering) })
	metric("Modularity", func(s socialgen.Stats) string { return fmt.Sprintf("%.2f", s.Modularity) })
	metric("Number of Communities", func(s socialgen.Stats) string { return fmt.Sprintf("%d", s.Communities) })
	return t
}

// ShapeCheck verifies the substrate matches the paper where the experiments
// depend on it: exact node/edge counts, clustering in the right band, and
// the cross-network ordering of density (Facebook > Google+ > Twitter in
// average degree, as in the paper).
func (r Table1Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "table1"}
	for _, row := range r.Rows {
		c.expect(row.Got.Nodes == row.Paper.Nodes, "%s: nodes %d != %d", row.Network, row.Got.Nodes, row.Paper.Nodes)
		c.expect(row.Got.Edges == row.Paper.Edges, "%s: edges %d != %d", row.Network, row.Got.Edges, row.Paper.Edges)
		diff := row.Got.AvgClustering - row.Paper.AvgClustering
		if diff < 0 {
			diff = -diff
		}
		c.expect(diff < 0.15, "%s: clustering %.2f far from %.2f", row.Network, row.Got.AvgClustering, row.Paper.AvgClustering)
	}
	if len(r.Rows) == 3 {
		c.expect(r.Rows[0].Got.AvgDegree > r.Rows[1].Got.AvgDegree,
			"facebook not denser than gplus")
		c.expect(r.Rows[1].Got.AvgDegree > r.Rows[2].Got.AvgDegree,
			"gplus not denser than twitter")
	}
	return c.errs
}
