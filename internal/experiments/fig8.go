package experiments

import (
	"fmt"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/report"
	"siot/internal/rng"
	"siot/internal/stats"
	"siot/internal/task"
	"siot/internal/zigbee"
)

// Fig8Config parameterizes the inference experiment on the IoT testbed
// (§5.4).
type Fig8Config struct {
	Seed uint64
	// Experiments is the number of independent runs (the paper runs 50).
	Experiments int
	// WarmupPerTask is how many previous delegations of each prior task
	// every trustor has with every group trustee.
	WarmupPerTask int
}

// DefaultFig8Config mirrors the paper.
func DefaultFig8Config(seed uint64) Fig8Config {
	return Fig8Config{Seed: seed, Experiments: 50, WarmupPerTask: 2}
}

// Fig8Result reproduces Fig. 8, "Comparison of the percentages of honest
// devices": per experiment run, the percentage of trustors that selected an
// honest device as trustee, with and without characteristic inference.
type Fig8Result struct {
	WithModel    stats.Series
	WithoutModel stats.Series
}

// RunFig8 runs the experiment on the simulated CC2530 testbed. Each trustor
// requests a task with two characteristics it has never delegated as a
// whole; the characteristics appeared separately in two previous tasks, on
// one of which the dishonest trustees performed maliciously. With the
// proposed model the trustor infers trustworthiness from those analogous
// tasks; without it, the task is treated as completely new and the choice
// is uninformed.
func RunFig8(cfg Fig8Config) Fig8Result {
	// Previous tasks: GPS sampling and image capture; the new task needs
	// both (the paper's real-time-traffic example).
	prior1 := task.Uniform(1, task.CharGPS)
	prior2 := task.Uniform(2, task.CharImage)
	probe := task.Uniform(3, task.CharGPS, task.CharImage)

	with := make([]float64, cfg.Experiments)
	without := make([]float64, cfg.Experiments)
	for e := 0; e < cfg.Experiments; e++ {
		expSeed := rng.Mix(cfg.Seed, "fig8", fmt.Sprint(e))
		tbCfg := zigbee.DefaultTestbedConfig(expSeed)
		tbCfg.Malice = agent.MaliceCharacteristic
		tbCfg.MaliceChars = map[task.Characteristic]bool{task.CharImage: true}
		tb := zigbee.BuildTestbed(tbCfg)
		r := rng.New(expSeed, "select")

		// Warmup: the previous tasks build per-characteristic experience
		// over the air.
		for _, trustor := range tb.Trustors {
			for _, trustee := range tb.GroupTrustees(tb.Group[trustor.Addr]) {
				for _, prior := range []task.Task{prior1, prior2} {
					for w := 0; w < cfg.WarmupPerTask; w++ {
						res := tb.Net.Delegate(trustor.Addr, trustee.Addr, prior, zigbee.ExchangeConfig{
							Light: 1, Act: agent.DefaultActConfig(),
						})
						trustor.Agent.Store.Observe(core.AgentID(trustee.Addr), prior, res.Outcome, core.PerfectEnv())
					}
				}
			}
		}

		// Measurement: each trustor selects a trustee for the probe task
		// and reports the choice to the coordinator.
		honestWith, honestWithout := 0, 0
		for _, trustor := range tb.Trustors {
			group := tb.GroupTrustees(tb.Group[trustor.Addr])

			// With the proposed model: infer from analogous tasks.
			cands := make([]core.Candidate, 0, len(group))
			for _, trustee := range group {
				tw, ok := trustor.Agent.Store.InferTW(core.AgentID(trustee.Addr), probe)
				if !ok {
					tw = 0.5
				}
				cands = append(cands, core.Candidate{ID: core.AgentID(trustee.Addr), TW: tw})
			}
			chosen, _ := core.SelectMutual(cands, nil)
			if tb.IsHonest(zigbee.DeviceAddr(chosen.ID)) {
				honestWith++
			}
			tb.Net.SendReport(trustor.Addr, zigbee.ReportPayload{
				TrusteeAddr: zigbee.DeviceAddr(chosen.ID),
				Honest:      tb.IsHonest(zigbee.DeviceAddr(chosen.ID)),
			})

			// Without the model: the task is completely new — uninformed
			// uniform choice.
			pick := group[r.IntN(len(group))]
			if tb.IsHonest(pick.Addr) {
				honestWithout++
			}
		}
		// The coordinator's collected reports drive the statistic, as in
		// the hardware experiment.
		reports := tb.Net.CollectReports()
		honestReported := 0
		for _, rep := range reports {
			if rep.Payload.Honest {
				honestReported++
			}
		}
		if len(reports) > 0 {
			with[e] = 100 * float64(honestReported) / float64(len(reports))
		} else {
			with[e] = 100 * float64(honestWith) / float64(len(tb.Trustors))
		}
		without[e] = 100 * float64(honestWithout) / float64(len(tb.Trustors))
	}
	return Fig8Result{
		WithModel:    stats.NewSeries("with proposed model", with),
		WithoutModel: stats.NewSeries("without proposed model", without),
	}
}

// Table summarizes the two curves.
func (r Fig8Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 8: percentage of trustors selecting honest devices",
		Headers: []string{"Method", "Mean %", "Min %", "Max %"},
	}
	for _, s := range []stats.Series{r.WithModel, r.WithoutModel} {
		lo, hi := stats.MinMax(s.Y)
		t.AddRow(s.Name, fmt.Sprintf("%.1f", stats.Mean(s.Y)), fmt.Sprintf("%.1f", lo), fmt.Sprintf("%.1f", hi))
	}
	return t
}

// ShapeCheck verifies Fig. 8's claim: the with-model percentage is clearly
// higher on average (the paper shows ~90–100% vs ~40–60%).
func (r Fig8Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "fig8"}
	mWith := stats.Mean(r.WithModel.Y)
	mWithout := stats.Mean(r.WithoutModel.Y)
	c.expect(mWith > mWithout+15,
		"with-model mean %.1f%% not clearly above without-model %.1f%%", mWith, mWithout)
	c.expect(mWith > 75, "with-model mean %.1f%% below 75%%", mWith)
	c.expect(mWithout < 75, "without-model mean %.1f%% suspiciously high", mWithout)
	return c.errs
}
