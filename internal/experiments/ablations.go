package experiments

import (
	"fmt"
	"math"

	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/report"
	"siot/internal/rng"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
)

// This file holds the ablations DESIGN.md calls out: controlled experiments
// isolating individual design choices of the trust model. They are not
// figures of the paper, but they quantify the pieces the paper argues for.

// AblationEq7Config parameterizes the eq. 7 mistrust-term ablation.
type AblationEq7Config struct {
	Seed uint64
	// Pairs is the number of random recommendation chains evaluated.
	Pairs int
	// Depth is the chain length.
	Depth int
}

// DefaultAblationEq7Config returns the default ablation scale.
func DefaultAblationEq7Config(seed uint64) AblationEq7Config {
	return AblationEq7Config{Seed: seed, Pairs: 20000, Depth: 2}
}

// AblationEq7Result compares eq. 7's combination (with the mistrust-product
// term) against the plain product of eq. 5 as estimators of end-to-end
// delegation success over random chains.
type AblationEq7Result struct {
	// RMSEEq7 and RMSEProduct are the root-mean-square errors of the two
	// combiners against the true end-to-end success probability.
	RMSEEq7     float64
	RMSEProduct float64
	// HighTrustBias are the mean signed errors over chains whose hops all
	// exceed 0.5 (the regime the ω thresholds admit).
	HighTrustBiasEq7     float64
	HighTrustBiasProduct float64
}

// RunAblationEq7 samples chains of hop reliabilities, computes the true
// probability that a delegation through the chain ends well (every hop's
// judgment is correct, or every hop errs in a way that cancels — the
// even-error parity model that motivates eq. 7), and measures how well each
// combiner predicts it.
func RunAblationEq7(cfg AblationEq7Config) AblationEq7Result {
	r := rng.New(cfg.Seed, "ablation-eq7")
	var seSum7, seSumP float64
	var hiBias7, hiBiasP float64
	hiCount := 0
	for i := 0; i < cfg.Pairs; i++ {
		hops := make([]float64, cfg.Depth)
		allHigh := true
		for j := range hops {
			hops[j] = r.Float64()
			if hops[j] < 0.5 {
				allHigh = false
			}
		}
		// Ground truth: probability that an even number of hops err.
		// For independent hops this is the parity recursion
		// p_k = p_{k-1}·h_k + (1−p_{k-1})·(1−h_k) — exactly eq. 7's fold.
		truth := 1.0
		for _, h := range hops {
			truth = truth*h + (1-truth)*(1-h)
		}
		e7 := core.CombineSerial(hops...)
		ep := core.ProductSerial(hops...)
		seSum7 += (e7 - truth) * (e7 - truth)
		seSumP += (ep - truth) * (ep - truth)
		if allHigh {
			hiBias7 += e7 - truth
			hiBiasP += ep - truth
			hiCount++
		}
	}
	res := AblationEq7Result{
		RMSEEq7:     math.Sqrt(seSum7 / float64(cfg.Pairs)),
		RMSEProduct: math.Sqrt(seSumP / float64(cfg.Pairs)),
	}
	if hiCount > 0 {
		res.HighTrustBiasEq7 = hiBias7 / float64(hiCount)
		res.HighTrustBiasProduct = hiBiasP / float64(hiCount)
	}
	return res
}

// Table renders the comparison.
func (r AblationEq7Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation: eq. 7 combination vs eq. 5 product over recommendation chains",
		Headers: []string{"Combiner", "RMSE vs parity truth", "Bias (hops > 0.5)"},
	}
	t.AddRow("eq. 7 (with mistrust term)", fmt.Sprintf("%.4f", r.RMSEEq7), fmt.Sprintf("%+.4f", r.HighTrustBiasEq7))
	t.AddRow("eq. 5 (plain product)", fmt.Sprintf("%.4f", r.RMSEProduct), fmt.Sprintf("%+.4f", r.HighTrustBiasProduct))
	return t
}

// ShapeCheck asserts eq. 7 is the exact parity estimator (zero error) while
// the plain product systematically underestimates.
func (r AblationEq7Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "ablation-eq7"}
	c.expect(r.RMSEEq7 < 1e-9, "eq. 7 is not exact against the parity model (RMSE %.4g)", r.RMSEEq7)
	c.expect(r.RMSEProduct > 0.01, "plain product unexpectedly accurate (RMSE %.4g)", r.RMSEProduct)
	c.expect(r.HighTrustBiasProduct < -0.01,
		"plain product does not underestimate in the high-trust regime (bias %+.4f)", r.HighTrustBiasProduct)
	return c.errs
}

// AblationCannikinConfig parameterizes the min-vs-mean environment
// combination ablation (Fig. 15 rerun with the mean).
type AblationCannikinConfig struct {
	Seed uint64
	Runs int
}

// DefaultAblationCannikinConfig returns the default scale.
func DefaultAblationCannikinConfig(seed uint64) AblationCannikinConfig {
	return AblationCannikinConfig{Seed: seed, Runs: 60}
}

// AblationCannikinResult compares correcting by the Cannikin minimum
// against correcting by the mean environment when one side of the exchange
// is hostile and the other perfect.
type AblationCannikinResult struct {
	// TrackErrMin and TrackErrMean are the absolute biases of the
	// time-averaged tracked success rate against the true competence.
	TrackErrMin  float64
	TrackErrMean float64
}

// RunAblationCannikin reruns the Fig. 15 tracking task with a bottleneck
// environment: the trustee sits at E = 0.4 while the trustor and an
// intermediate are perfect. The Cannikin minimum (0.4) matches the actual
// degradation; the mean (0.8) under-corrects.
func RunAblationCannikin(cfg AblationCannikinConfig) AblationCannikinResult {
	const actual = 0.8
	const hostile = env.Environment(0.4)
	iters := 200
	baseCfg := core.DefaultUpdateConfig()

	var sumMin, sumMean float64
	n := 0
	for run := 0; run < cfg.Runs; run++ {
		r := rng.Split(cfg.Seed, "ablation-cannikin", run)
		eMin := core.Expectation{S: 1}
		eMean := core.Expectation{S: 1}
		for i := 0; i < iters; i++ {
			// The bottleneck degrades the outcome by min(E) = 0.4.
			obs := core.Outcome{Success: r.Float64() < actual*float64(hostile)}
			// Proper correction via the EnvContext minimum.
			cfgMin := baseCfg
			cfgMin.EnvCorrection = true
			eMin = core.Update(eMin, obs, core.EnvContext{Trustor: 1, Trustee: hostile, Intermediates: []env.Environment{1}}, cfgMin)
			// Mean correction: divide by the mean environment by hand.
			mean := env.CombineMean(1, hostile, 1)
			sVal := 0.0
			if obs.Success {
				sVal = 1 / float64(mean)
			}
			eMean.S = 0.9*eMean.S + 0.1*sVal
			if i > iters/2 {
				sumMin += eMin.S
				sumMean += eMean.S
				n++
			}
		}
	}
	// Compare the *bias* of the time-averaged estimates: the trackers are
	// noisy by construction (Bernoulli observations amplified by 1/E), but
	// an unbiased corrector's time average recovers the true competence.
	return AblationCannikinResult{
		TrackErrMin:  math.Abs(sumMin/float64(n) - actual),
		TrackErrMean: math.Abs(sumMean/float64(n) - actual),
	}
}

// Table renders the comparison.
func (r AblationCannikinResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation: Cannikin minimum vs mean environment in r(·)",
		Headers: []string{"Combination", "Tracking error vs true competence"},
	}
	t.AddRow("minimum (Cannikin law, eq. 29)", fmt.Sprintf("%.4f", r.TrackErrMin))
	t.AddRow("mean of participants", fmt.Sprintf("%.4f", r.TrackErrMean))
	return t
}

// ShapeCheck asserts the minimum tracks the truth and the mean
// under-corrects, as the paper's Wooden Bucket argument claims.
func (r AblationCannikinResult) ShapeCheck() []error {
	c := &shapeCheck{experiment: "ablation-cannikin"}
	c.expect(r.TrackErrMin < 0.05, "Cannikin correction bias %.4f too large", r.TrackErrMin)
	c.expect(r.TrackErrMean > 2*r.TrackErrMin,
		"mean correction (err %.4f) not clearly worse than Cannikin (err %.4f)",
		r.TrackErrMean, r.TrackErrMin)
	return c.errs
}

// AblationSelfDelegationConfig parameterizes the eq. 24 ablation.
type AblationSelfDelegationConfig struct {
	Seed       uint64
	Iterations int
}

// DefaultAblationSelfDelegationConfig returns the default scale.
func DefaultAblationSelfDelegationConfig(seed uint64) AblationSelfDelegationConfig {
	return AblationSelfDelegationConfig{Seed: seed, Iterations: 800}
}

// AblationSelfDelegationResult compares net profit with and without the
// trustor itself as a candidate (eq. 24) on the Twitter network, where
// trustee neighborhoods are smallest and self-execution matters most.
type AblationSelfDelegationResult struct {
	WithSelf    float64
	WithoutSelf float64
}

// RunAblationSelfDelegation measures converged net profit when trustors may
// keep tasks whose expected profit beats every candidate's.
func RunAblationSelfDelegation(cfg AblationSelfDelegationConfig) AblationSelfDelegationResult {
	net := socialgen.Generate(socialgen.Twitter(), cfg.Seed)
	run := func(withSelf bool) float64 {
		p := sim.NewPopulation(net, sim.DefaultPopulationConfig(cfg.Seed))
		series := sim.NetProfitRunSelf(p, cfg.Iterations, withSelf, cfg.Seed)
		return stats.Mean(series[len(series)*2/3:])
	}
	return AblationSelfDelegationResult{
		WithSelf:    run(true),
		WithoutSelf: run(false),
	}
}

// Table renders the comparison.
func (r AblationSelfDelegationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation: self-delegation (eq. 24) on the Twitter network",
		Headers: []string{"Decision rule", "Converged net profit"},
	}
	t.AddRow("delegate-or-self (eq. 24)", fmt.Sprintf("%.3f", r.WithSelf))
	t.AddRow("always delegate", fmt.Sprintf("%.3f", r.WithoutSelf))
	return t
}

// ShapeCheck asserts the option to self-execute never hurts and helps when
// neighborhoods are poor.
func (r AblationSelfDelegationResult) ShapeCheck() []error {
	c := &shapeCheck{experiment: "ablation-self"}
	c.expect(r.WithSelf >= r.WithoutSelf-0.005,
		"self-delegation hurt profit (%.3f vs %.3f)", r.WithSelf, r.WithoutSelf)
	return c.errs
}
