package experiments

import "testing"

// These tests pin the engine's determinism contract at the figure level:
// the worker-pool width must never change a figure's numbers.

func TestFig7ParallelismInvariant(t *testing.T) {
	run := func(parallelism int) Fig7Result {
		return RunFig7(Fig7Config{
			Seed: 5, Thetas: []float64{0, 0.6}, Rounds: 15, Parallelism: parallelism,
		})
	}
	a, b := run(1), run(8)
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs between P=1 and P=8:\nP=1: %+v\nP=8: %+v",
				i, a.Cells[i], b.Cells[i])
		}
	}
}

func TestFig13ParallelismInvariant(t *testing.T) {
	run := func(parallelism int) Fig13Result {
		return RunFig13(Fig13Config{Seed: 5, Iterations: 150, Smooth: 10, Parallelism: parallelism})
	}
	a, b := run(1), run(8)
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series counts differ: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i].Name != b.Series[i].Name {
			t.Fatalf("series %d name differs: %q vs %q", i, a.Series[i].Name, b.Series[i].Name)
		}
		for j := range a.Series[i].Y {
			if a.Series[i].Y[j] != b.Series[i].Y[j] {
				t.Fatalf("series %q point %d differs between P=1 and P=8: %v vs %v",
					a.Series[i].Name, j, a.Series[i].Y[j], b.Series[i].Y[j])
			}
		}
	}
	for name, v := range a.Converged {
		if b.Converged[name] != v {
			t.Fatalf("converged profit %q differs: %v vs %v", name, v, b.Converged[name])
		}
	}
}

func TestTransitivitySweepParallelismInvariant(t *testing.T) {
	run := func(parallelism int) TransitivityResult {
		return RunTransitivitySweep(TransitivityConfig{
			Seed: 3, CharCounts: []int{5}, Repeats: 1, MaxDepth: 2, Parallelism: parallelism,
		})
	}
	a, b := run(1), run(8)
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs between P=1 and P=8:\nP=1: %+v\nP=8: %+v",
				i, a.Cells[i], b.Cells[i])
		}
	}
}
