package experiments

import (
	"errors"
	"fmt"
	"sort"

	"siot/internal/adversary"
	"siot/internal/core"
	"siot/internal/report"
	"siot/internal/stats"
)

// ErrUnknownExperiment is returned (wrapped) by Run and RunOpts when the
// named experiment is not registered. Callers match it with errors.Is.
var ErrUnknownExperiment = errors.New("unknown experiment")

// Result is the common surface of every experiment result: a summary table
// and the qualitative shape checks against the paper's claims.
type Result interface {
	Table() *report.Table
	ShapeCheck() []error
}

// Charter is implemented by results that can render figure curves.
type Charter interface {
	Charts() []report.Chart
}

// Charts implements Charter for the sweep results.
func (r TransitivityResult) Charts() []report.Chart {
	return []report.Chart{
		{Title: "Fig. 9: success rate vs number of characteristics", Series: r.SuccessSeries(),
			XLabel: "characteristics in the network", YLabel: "success rate"},
		{Title: "Fig. 10: unavailable rate vs number of characteristics", Series: r.UnavailableSeries(),
			XLabel: "characteristics in the network", YLabel: "unavailable rate"},
		{Title: "Fig. 11: average number of potential trustees", Series: r.PotentialSeries(),
			XLabel: "characteristics in the network", YLabel: "potential trustees"},
	}
}

// Charts implements Charter.
func (r Fig12Result) Charts() []report.Chart {
	return []report.Chart{{
		Title:  "Fig. 12: number of inquired nodes per (sorted) trustor",
		Series: r.Series(), XLabel: "(sorted) trustor index", YLabel: "inquired nodes",
	}}
}

// Charts implements Charter.
func (r Fig13Result) Charts() []report.Chart {
	return []report.Chart{{
		Title:  "Fig. 13: average net profit vs iterations",
		Series: r.Series, XLabel: "iteration", YLabel: "net profit",
	}}
}

// Charts implements Charter.
func (r Fig15Result) Charts() []report.Chart {
	return []report.Chart{{
		Title:  "Fig. 15: tracked success rate under a changing environment",
		Series: r.AllSeries(), XLabel: "iteration", YLabel: "expected success rate",
	}}
}

// Charts implements Charter.
func (r Fig8Result) Charts() []report.Chart {
	return []report.Chart{{
		Title:  "Fig. 8: percentage selecting honest devices per experiment",
		Series: []stats.Series{r.WithModel, r.WithoutModel},
		XLabel: "experiment index", YLabel: "% honest selections",
	}}
}

// Charts implements Charter.
func (r Fig14Result) Charts() []report.Chart {
	return []report.Chart{{
		Title:  "Fig. 14: trustor active time per task index",
		Series: []stats.Series{r.WithModel, r.WithoutModel},
		XLabel: "experiment index", YLabel: "active time (ms)",
	}}
}

// Charts implements Charter.
func (r Fig16Result) Charts() []report.Chart {
	return []report.Chart{{
		Title:  "Fig. 16: net profit across the light schedule",
		Series: []stats.Series{r.WithModel, r.WithoutModel},
		XLabel: "experiment index", YLabel: "net profit",
	}}
}

// Fig7Result renders its rate triples as one chart per metric-free view;
// bars do not translate to line charts, so it offers the table only.

// Options tunes an experiment run beyond its default configuration.
type Options struct {
	// Seed drives every random choice of the run.
	Seed uint64
	// Parallelism is the simulation engine's worker-pool width for the
	// experiments that run delegation rounds or transitivity searches
	// (0 = GOMAXPROCS, 1 = serial). Experiment outputs are bit-identical
	// across all values; only wall-clock time changes.
	Parallelism int
	// Attack overrides the adversary model of the attack-* experiments
	// (see adversary.Parse for the names); "" keeps each experiment's
	// default. Non-attack experiments ignore it.
	Attack string
	// Attackers overrides the attack ring size (0 keeps the default).
	Attackers int
	// Collude wraps the attack-* experiments' model in a coordinated
	// collusion ring (mutual promotion among the attackers).
	Collude bool
	// Model restricts the model-matrix experiment to one registered trust
	// model (see core.ParseModel for the names); "" evaluates every
	// registered model. Other experiments ignore it.
	Model string
}

// attackOverrides applies the attack-related option overrides to a
// scenario config. o.Attack has been validated by RunOpts.
func (o Options) attackOverrides(cfg AttackScenarioConfig) AttackScenarioConfig {
	cfg.Parallelism = o.Parallelism
	if o.Attack != "" {
		if m, err := adversary.Parse(o.Attack); err == nil && m != nil {
			cfg.Model = m
		}
	}
	if o.Attackers > 0 {
		cfg.Attackers = o.Attackers
	}
	if o.Collude {
		cfg.Model = adversary.Collusion{Of: cfg.Model}
	}
	return cfg
}

// runners maps experiment IDs to their default-configuration runners.
var runners = map[string]func(o Options) Result{
	"table1": func(o Options) Result { return RunTable1(o.Seed) },
	"fig7": func(o Options) Result {
		cfg := DefaultFig7Config(o.Seed)
		cfg.Parallelism = o.Parallelism
		return RunFig7(cfg)
	},
	"fig8": func(o Options) Result { return RunFig8(DefaultFig8Config(o.Seed)) },
	"figs9-11": func(o Options) Result {
		cfg := DefaultTransitivityConfig(o.Seed)
		cfg.Parallelism = o.Parallelism
		return RunTransitivitySweep(cfg)
	},
	"fig12": func(o Options) Result {
		cfg := DefaultFig12Config(o.Seed)
		cfg.Parallelism = o.Parallelism
		return RunFig12(cfg)
	},
	"table2": func(o Options) Result {
		cfg := DefaultTable2Config(o.Seed)
		cfg.Parallelism = o.Parallelism
		return RunTable2(cfg)
	},
	"fig13": func(o Options) Result {
		cfg := DefaultFig13Config(o.Seed)
		cfg.Parallelism = o.Parallelism
		return RunFig13(cfg)
	},
	"fig14": func(o Options) Result { return RunFig14(DefaultFig14Config(o.Seed)) },
	"fig15": func(o Options) Result { return RunFig15(DefaultFig15Config(o.Seed)) },
	"fig16": func(o Options) Result { return RunFig16(DefaultFig16Config(o.Seed)) },
	"ablation-eq7": func(o Options) Result {
		return RunAblationEq7(DefaultAblationEq7Config(o.Seed))
	},
	"ablation-cannikin": func(o Options) Result {
		return RunAblationCannikin(DefaultAblationCannikinConfig(o.Seed))
	},
	"ablation-self": func(o Options) Result {
		return RunAblationSelfDelegation(DefaultAblationSelfDelegationConfig(o.Seed))
	},
	"attack-badmouth": func(o Options) Result {
		return RunAttack(o.attackOverrides(DefaultAttackConfig(o.Seed, adversary.BadMouthing{})))
	},
	"attack-onoff": func(o Options) Result {
		return RunAttack(o.attackOverrides(DefaultAttackConfig(o.Seed, adversary.OnOff{Period: 20, Duty: 0.5})))
	},
	"attack-whitewash": func(o Options) Result {
		return RunAttack(o.attackOverrides(DefaultAttackConfig(o.Seed, adversary.Whitewashing{})))
	},
	"attack-collusion": func(o Options) Result {
		return RunAttack(o.attackOverrides(DefaultAttackConfig(o.Seed,
			adversary.Collusion{Of: adversary.BadMouthing{}})))
	},
	"model-matrix": func(o Options) Result {
		cfg := DefaultModelMatrixConfig(o.Seed)
		cfg.Parallelism = o.Parallelism
		if o.Attackers > 0 {
			cfg.Attackers = o.Attackers
		}
		if o.Model != "" {
			// o.Model has been validated by RunOpts.
			if m, err := core.ParseModel(o.Model); err == nil {
				cfg.Models = []core.TrustModel{m}
			}
		}
		return RunModelMatrix(cfg)
	},
}

// Names lists the registered experiment IDs in sorted order.
func Names() []string {
	out := make([]string, 0, len(runners))
	for name := range runners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment with its paper-scale default
// configuration.
func Run(name string, seed uint64) (Result, error) {
	return RunOpts(name, Options{Seed: seed})
}

// RunOpts executes the named experiment with its paper-scale default
// configuration under the given options.
func RunOpts(name string, o Options) (Result, error) {
	r, ok := runners[name]
	if !ok {
		return nil, fmt.Errorf("experiments: %w %q (known: %v)", ErrUnknownExperiment, name, Names())
	}
	if _, err := adversary.Parse(o.Attack); err != nil {
		return nil, err
	}
	if o.Model != "" {
		if _, err := core.ParseModel(o.Model); err != nil {
			return nil, err
		}
	}
	return r(o), nil
}
