package experiments

import (
	"fmt"
	"math"

	"siot/internal/adversary"
	"siot/internal/report"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
	"siot/internal/task"
)

// AttackScenarioConfig parameterizes one trust-attack resilience scenario:
// the paper's mutuality delegation rounds replayed with a ring of trustees
// running an adversary model, against a no-attack baseline of the same
// population.
type AttackScenarioConfig struct {
	Seed uint64
	// Model is the attack the ring runs (required).
	Model adversary.Attack
	// Network selects the social network profile (default "facebook").
	Network string
	// Rounds is the number of delegation rounds (default 150).
	Rounds int
	// Attackers is the ring size (default 30 — roughly a fifth of the
	// facebook profile's trustees).
	Attackers int
	// Theta is the reverse-evaluation threshold installed on trustees
	// (default 0: keep the mutuality defense out of the way so the trust
	// model itself does the detecting).
	Theta float64
	// DetectionGap is the honest-minus-attacker trust gap that counts as
	// "the population has detected the attack" (default 0.03 — under the
	// honest-ring baseline the gap hovers around zero, so a persistent
	// 0.03 is already a clear signal across a whole network's averages).
	DetectionGap float64
	// Parallelism is the engine worker-pool width (0 = GOMAXPROCS,
	// 1 = serial). Results are bit-identical across all values.
	Parallelism int
}

// DefaultAttackConfig returns the standard scenario for one attack model.
func DefaultAttackConfig(seed uint64, model adversary.Attack) AttackScenarioConfig {
	return AttackScenarioConfig{
		Seed:         seed,
		Model:        model,
		Network:      "facebook",
		Rounds:       150,
		Attackers:    30,
		DetectionGap: 0.03,
	}
}

// AttackResult reports how the trust model withstood one attack scenario.
type AttackResult struct {
	Model     string
	Network   string
	Attackers int
	// TrustGap is the per-round honest-minus-attacker perceived-trust gap
	// of the attacked run.
	TrustGap stats.Series
	// BaselineSuccess and AttackedSuccess are the per-round cumulative
	// delegation-success rates without and with the attack.
	BaselineSuccess stats.Series
	AttackedSuccess stats.Series
	// AttackerShare is the per-round cumulative share of accepted
	// delegations that landed on attackers.
	AttackerShare stats.Series
	// Resilience aggregates the final metrics.
	Resilience report.Resilience
}

// RunAttack plays the scenario twice — once without the attack (baseline),
// once with it — and measures the resilience metrics. Both runs share the
// network, the seed, and the engine label, so every difference is the
// attack's doing.
func RunAttack(cfg AttackScenarioConfig) AttackResult {
	if cfg.Model == nil {
		panic("experiments: attack scenario needs a model")
	}
	profile, err := socialgen.ProfileByName(cfg.Network)
	if err != nil {
		panic(err)
	}
	net := socialgen.Generate(profile, cfg.Seed)
	tk := task.Uniform(1, task.CharCompute)

	run := func(atk sim.AttackConfig) (success, share, gap []float64) {
		pcfg := sim.DefaultPopulationConfig(cfg.Seed)
		pcfg.Theta = cfg.Theta
		pcfg.Parallelism = cfg.Parallelism
		pcfg.Attack = atk
		p := sim.NewPopulation(net, pcfg)
		eng := sim.NewEngine(p, "attack-scenario")
		success = make([]float64, cfg.Rounds)
		share = make([]float64, cfg.Rounds)
		if atk.Enabled() {
			gap = make([]float64, cfg.Rounds)
		}
		var c sim.MutualityCounters
		for round := 0; round < cfg.Rounds; round++ {
			eng.MutualityRound(round, tk, &c)
			success[round] = c.SuccessRate()
			if c.Requests > c.Unavailable {
				share[round] = float64(c.AttackerDelegations) / float64(c.Requests-c.Unavailable)
			}
			if atk.Enabled() {
				honest, attacker := eng.PerceivedTrust(round, tk)
				gap[round] = honest - attacker
			}
		}
		return success, share, gap
	}

	// The baseline ring runs the null attack: same population, same marked
	// ring, same recommendation machinery — only the malice is missing, so
	// the baseline-vs-attacked difference is exactly the attack's effect.
	baseline, _, _ := run(sim.AttackConfig{Model: adversary.Honest{}, Attackers: cfg.Attackers})
	attacked, share, gap := run(sim.AttackConfig{Model: cfg.Model, Attackers: cfg.Attackers})

	res := AttackResult{
		Model:           cfg.Model.Name(),
		Network:         cfg.Network,
		Attackers:       cfg.Attackers,
		TrustGap:        stats.NewSeries("trust gap (honest − attacker)", gap),
		BaselineSuccess: stats.NewSeries("baseline (no attack)", baseline),
		AttackedSuccess: stats.NewSeries("under "+cfg.Model.Name(), attacked),
		AttackerShare:   stats.NewSeries("share of delegations to attackers", share),
	}
	res.Resilience = report.NewResilience(res.TrustGap, cfg.DetectionGap,
		baseline[len(baseline)-1], attacked[len(attacked)-1])
	return res
}

// Table summarizes the scenario's resilience metrics.
func (r AttackResult) Table() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Attack resilience: %s (%d attackers, %s network)", r.Model, r.Attackers, r.Network),
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("baseline success rate", fmt.Sprintf("%.3f", last(r.BaselineSuccess.Y)))
	t.AddRow("attacked success rate", fmt.Sprintf("%.3f", last(r.AttackedSuccess.Y)))
	t.AddRow("attacker delegation share", fmt.Sprintf("%.3f", last(r.AttackerShare.Y)))
	r.Resilience.AddRows(t)
	return t
}

// Charts renders the resilience curves.
func (r AttackResult) Charts() []report.Chart {
	return []report.Chart{
		{
			Title:  fmt.Sprintf("Trust gap under %s", r.Model),
			Series: []stats.Series{r.TrustGap},
			XLabel: "round", YLabel: "honest TW − attacker TW",
		},
		{
			Title:  fmt.Sprintf("Delegation success under %s", r.Model),
			Series: []stats.Series{r.BaselineSuccess, r.AttackedSuccess},
			XLabel: "round", YLabel: "cumulative success rate",
		},
	}
}

// ShapeCheck verifies the scenario behaved like a real attack and the model
// reacted: the run produced finite metrics and at least one resilience
// signal (a perceptible trust gap or a success-rate cost) is nonzero.
func (r AttackResult) ShapeCheck() []error {
	c := &shapeCheck{experiment: "attack-" + r.Model}
	for _, s := range []stats.Series{r.TrustGap, r.BaselineSuccess, r.AttackedSuccess, r.AttackerShare} {
		if err := s.Validate(); err != nil {
			c.expect(false, "series %q invalid: %v", s.Name, err)
		}
	}
	for _, v := range append(append([]float64{}, r.BaselineSuccess.Y...), r.AttackedSuccess.Y...) {
		c.expect(v >= 0 && v <= 1, "success rate %v outside [0,1]", v)
	}
	gapSignal := math.Abs(r.Resilience.TrustGap) > 0.02 || math.Abs(r.Resilience.MinTrustGap) > 0.02
	degradation := r.Resilience.SuccessDegradation > 0.005
	c.expect(gapSignal || degradation,
		"no resilience signal: final gap %.4f, min gap %.4f, degradation %.4f",
		r.Resilience.TrustGap, r.Resilience.MinTrustGap, r.Resilience.SuccessDegradation)
	return c.errs
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
