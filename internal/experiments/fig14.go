package experiments

import (
	"fmt"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/report"
	"siot/internal/rng"
	"siot/internal/stats"
	"siot/internal/task"
	"siot/internal/zigbee"
)

// Fig14Config parameterizes the fragment-stall experiment (§5.6, hardware
// part).
type Fig14Config struct {
	Seed uint64
	// TasksPerTrustor is the number of task requests each trustor issues
	// (50 in the paper).
	TasksPerTrustor int
}

// DefaultFig14Config mirrors the paper.
func DefaultFig14Config(seed uint64) Fig14Config {
	return Fig14Config{Seed: seed, TasksPerTrustor: 50}
}

// Fig14Result reproduces Fig. 14, "Comparison of the active time": the
// trustors' average radio-active time per task index, when trustees are
// chosen with the full gain-and-cost evaluation versus gain alone.
type Fig14Result struct {
	WithModel    stats.Series
	WithoutModel stats.Series
}

// RunFig14 runs the experiment twice on identically seeded testbeds: once
// selecting trustees by expected net profit (cost-aware, the proposed
// model) and once by expected gain only. Dishonest trustees send fragment
// packages to prolong the interaction; their inflated cost is visible only
// to the cost-aware trustors.
func RunFig14(cfg Fig14Config) Fig14Result {
	return Fig14Result{
		WithModel:    stats.NewSeries("with proposed model", fig14Run(cfg, true)),
		WithoutModel: stats.NewSeries("without proposed model", fig14Run(cfg, false)),
	}
}

func fig14Run(cfg Fig14Config, costAware bool) []float64 {
	tbCfg := zigbee.DefaultTestbedConfig(cfg.Seed)
	tbCfg.Malice = agent.MaliceFragmentStall
	tb := zigbee.BuildTestbed(tbCfg)
	// The stallers bait gain-seeking trustors with top-grade results.
	r := rng.New(cfg.Seed, "fig14", fmt.Sprint(costAware))
	for _, d := range tb.Dishonest {
		d.Agent.Behavior.BaseCompetence = 0.93 + 0.05*r.Float64()
	}

	tk := task.Uniform(1, task.CharGPS)
	series := make([]float64, cfg.TasksPerTrustor)
	for i := 0; i < cfg.TasksPerTrustor; i++ {
		var total zigbee.Ms
		for _, trustor := range tb.Trustors {
			group := tb.GroupTrustees(tb.Group[trustor.Addr])
			var trustee *zigbee.Device
			if i < len(group) {
				// Bootstrap: try every group trustee once.
				trustee = group[i%len(group)]
			} else {
				cands := make([]core.ExpCandidate, 0, len(group))
				for _, d := range group {
					rec, ok := trustor.Agent.Store.Record(core.AgentID(d.Addr), tk.Type())
					exp := trustor.Agent.Store.Config().Init
					if ok {
						exp = rec.Exp
					}
					if !costAware {
						// Gain-only evaluation: blind to damage and cost.
						exp.D = 0
						exp.C = 0
					}
					cands = append(cands, core.ExpCandidate{ID: core.AgentID(d.Addr), Exp: exp})
				}
				best, ok := core.BestByNetProfit(cands)
				if !ok {
					continue
				}
				for _, d := range group {
					if core.AgentID(d.Addr) == best.ID {
						trustee = d
					}
				}
			}
			res := tb.Net.Delegate(trustor.Addr, trustee.Addr, tk, zigbee.ExchangeConfig{
				Light: 1, Act: agent.DefaultActConfig(),
			})
			trustor.Agent.Store.Observe(core.AgentID(trustee.Addr), tk, res.Outcome, core.PerfectEnv())
			total += res.TrustorActiveMs
		}
		series[i] = total / zigbee.Ms(len(tb.Trustors))
	}
	return series
}

// Table summarizes early vs late active time.
func (r Fig14Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 14: trustor average active time (ms) per task index",
		Headers: []string{"Method", "First 10 tasks", "Last 10 tasks"},
	}
	seg := func(y []float64, fromEnd bool) float64 {
		n := 10
		if n > len(y) {
			n = len(y)
		}
		if fromEnd {
			return stats.Mean(y[len(y)-n:])
		}
		return stats.Mean(y[:n])
	}
	for _, s := range []stats.Series{r.WithModel, r.WithoutModel} {
		t.AddRow(s.Name, fmt.Sprintf("%.1f", seg(s.Y, false)), fmt.Sprintf("%.1f", seg(s.Y, true)))
	}
	return t
}

// ShapeCheck verifies Fig. 14's claims: with the proposed model the active
// time shortens once the stallers are detected; without it, the late active
// time stays clearly above the cost-aware level.
func (r Fig14Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "fig14"}
	n := len(r.WithModel.Y)
	if n < 12 {
		c.expect(false, "series too short (%d)", n)
		return c.errs
	}
	lastN := n / 3
	withLate := stats.Mean(r.WithModel.Y[n-lastN:])
	withoutLate := stats.Mean(r.WithoutModel.Y[n-lastN:])
	withEarly := stats.Mean(r.WithModel.Y[:6])
	c.expect(withLate < withEarly,
		"with-model active time did not shorten (early %.1f → late %.1f)", withEarly, withLate)
	c.expect(withoutLate > 1.3*withLate,
		"without-model late active time %.1f not clearly above with-model %.1f", withoutLate, withLate)
	return c.errs
}
