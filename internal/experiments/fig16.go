package experiments

import (
	"fmt"

	"siot/internal/agent"
	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/report"
	"siot/internal/stats"
	"siot/internal/task"
	"siot/internal/zigbee"
)

// Fig16Config parameterizes the light-schedule experiment (§5.7, hardware
// part).
type Fig16Config struct {
	Seed uint64
	// Experiments is the number of task indices (50 in the paper, split
	// into light / dark / light thirds).
	Experiments int
	// ProfitScale multiplies the plotted normalized profit (the paper's
	// y-axis is in arbitrary units around 0–1100).
	ProfitScale float64
}

// DefaultFig16Config mirrors the paper.
func DefaultFig16Config(seed uint64) Fig16Config {
	return Fig16Config{Seed: seed, Experiments: 50, ProfitScale: 1000}
}

// Fig16Result reproduces Fig. 16, "Comparison of the net profits when the
// light condition changes and the dishonest trustees do not accept requests
// initially".
type Fig16Result struct {
	WithModel    stats.Series
	WithoutModel stats.Series
	// Schedule records the light level per experiment index.
	Schedule stats.Series
}

// RunFig16 runs the optical-sensor experiment twice on identically seeded
// testbeds: with the environment-corrected updates of eqs. 25–29 and
// without. Honest trustees serve the whole period and degrade in the dark;
// the malicious trustees serve only during the final light period and
// misbehave from time to time. Without correction, honest nodes' dark-phase
// history drags their evaluations below the latecomers'; with correction
// the trustors re-select honest nodes immediately when light returns.
func RunFig16(cfg Fig16Config) Fig16Result {
	sched := env.DefaultLightSchedule(cfg.Experiments)
	schedY := make([]float64, cfg.Experiments)
	for i := range schedY {
		schedY[i] = float64(sched.At(i))
	}
	return Fig16Result{
		WithModel:    stats.NewSeries("with proposed model", fig16Run(cfg, sched, true)),
		WithoutModel: stats.NewSeries("without proposed model", fig16Run(cfg, sched, false)),
		Schedule:     stats.NewSeries("light level", schedY),
	}
}

func fig16Run(cfg Fig16Config, sched env.LightSchedule, corrected bool) []float64 {
	update := core.DefaultUpdateConfig()
	update.EnvCorrection = corrected
	// Newcomers get the benefit of the doubt: the optimistic prior is what
	// lets the late-joining malicious trustees collect "better evaluations"
	// than the dark-phase-degraded honest nodes, as the paper describes.
	update.Init = core.Expectation{S: 0.7, G: 0.7, D: 0.3, C: 0.15}
	tbCfg := zigbee.DefaultTestbedConfig(cfg.Seed)
	tbCfg.Malice = agent.MaliceOpportunist
	tbCfg.Update = update
	tb := zigbee.BuildTestbed(tbCfg)

	tk := task.Uniform(1, task.CharImage) // image acquisition, light-dependent
	finalPhase := func(i int) bool { return i >= sched.LightLen+sched.DarkLen }

	series := make([]float64, cfg.Experiments)
	for i := 0; i < cfg.Experiments; i++ {
		light := sched.At(i)
		var total float64
		count := 0
		for _, trustor := range tb.Trustors {
			group := tb.GroupTrustees(tb.Group[trustor.Addr])
			// The dishonest trustees do not accept requests until the
			// final light period.
			var avail []*zigbee.Device
			for _, d := range group {
				if d.Agent.Behavior.Malice == agent.MaliceOpportunist && !finalPhase(i) {
					continue
				}
				avail = append(avail, d)
			}
			if len(avail) == 0 {
				continue
			}
			var trustee *zigbee.Device
			if i < 2 {
				// Bootstrap over the honest candidates.
				trustee = avail[i%len(avail)]
			} else {
				cands := make([]core.ExpCandidate, 0, len(avail))
				for _, d := range avail {
					rec, ok := trustor.Agent.Store.Record(core.AgentID(d.Addr), tk.Type())
					exp := update.Init
					if ok {
						exp = rec.Exp
					}
					cands = append(cands, core.ExpCandidate{ID: core.AgentID(d.Addr), Exp: exp})
				}
				best, ok := core.BestByNetProfit(cands)
				if !ok {
					continue
				}
				for _, d := range avail {
					if core.AgentID(d.Addr) == best.ID {
						trustee = d
					}
				}
			}
			res := tb.Net.Delegate(trustor.Addr, trustee.Addr, tk, zigbee.ExchangeConfig{
				Light: light, UseOptical: true, Act: agent.DefaultActConfig(),
			})
			// Post-evaluation with the measured ambient light as the
			// trustee-side environment (eqs. 25–28 when corrected).
			ectx := core.EnvContext{Trustor: 1, Trustee: light}
			trustor.Agent.Store.Observe(core.AgentID(trustee.Addr), tk, res.Outcome, ectx)

			profit := -res.Outcome.Damage - res.Outcome.Cost
			if res.Outcome.Success {
				profit = res.Outcome.Gain - res.Outcome.Cost
			}
			total += profit
			count++
		}
		if count > 0 {
			series[i] = cfg.ProfitScale * total / float64(count)
		}
	}
	return series
}

// Table summarizes per-phase profits.
func (r Fig16Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 16: mean net profit per light phase",
		Headers: []string{"Method", "light", "dark", "light again"},
	}
	n := len(r.WithModel.Y)
	third := n / 3
	phase := func(y []float64, p int) string {
		lo, hi := p*third, (p+1)*third
		if p == 2 {
			hi = n
		}
		return fmt.Sprintf("%.0f", stats.Mean(y[lo:hi]))
	}
	for _, s := range []stats.Series{r.WithModel, r.WithoutModel} {
		t.AddRow(s.Name, phase(s.Y, 0), phase(s.Y, 1), phase(s.Y, 2))
	}
	return t
}

// ShapeCheck verifies Fig. 16's claims: both methods dip in the dark; with
// the proposed model the profit returns to a high level in the final light
// phase and ends clearly above the uncorrected run.
func (r Fig16Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "fig16"}
	n := len(r.WithModel.Y)
	if n < 9 {
		c.expect(false, "series too short (%d)", n)
		return c.errs
	}
	third := n / 3
	seg := func(y []float64, p int) float64 {
		lo, hi := p*third, (p+1)*third
		if p == 2 {
			hi = n
		}
		// Skip the first indices of the segment (transient).
		lo += third / 4
		return stats.Mean(y[lo:hi])
	}
	withLight1, withDark, withLight2 := seg(r.WithModel.Y, 0), seg(r.WithModel.Y, 1), seg(r.WithModel.Y, 2)
	woLight2 := seg(r.WithoutModel.Y, 2)
	woDark := seg(r.WithoutModel.Y, 1)
	c.expect(withDark < withLight1, "with-model profit did not dip in the dark (%.0f vs %.0f)", withDark, withLight1)
	c.expect(woDark < withLight1, "without-model profit did not dip in the dark")
	c.expect(withLight2 > withDark, "with-model profit did not recover after the dark phase")
	c.expect(withLight2 > woLight2,
		"with-model final-phase profit %.0f not above without-model %.0f", withLight2, woLight2)
	return c.errs
}
