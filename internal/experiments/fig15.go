package experiments

import (
	"fmt"
	"math"

	"siot/internal/core"
	"siot/internal/env"
	"siot/internal/report"
	"siot/internal/rng"
	"siot/internal/stats"
)

// Fig15Config parameterizes the dynamic-environment tracking experiment
// (§5.7, simulation part).
type Fig15Config struct {
	Seed uint64
	// Runs to average (the paper averages 100 independent runs).
	Runs int
	// ActualS is the trustee's true competence-and-willingness (0.8 in the
	// paper).
	ActualS float64
	// HistoryWeight is the forgetting factor applied to history (see
	// core.Betas for the β convention note).
	HistoryWeight float64
	// Schedule is the environment trajectory; nil uses the paper's
	// 1 → 0.4 → 0.7 three-phase schedule over 300 iterations.
	Schedule env.Schedule
	// Iterations; 0 derives from the schedule (300 for the default).
	Iterations int
}

// DefaultFig15Config mirrors the paper.
func DefaultFig15Config(seed uint64) Fig15Config {
	return Fig15Config{Seed: seed, Runs: 100, ActualS: 0.8, HistoryWeight: 0.9}
}

// Fig15Result reproduces Fig. 15, "Comparison of the success rates with
// non-ideal and changing environments": the tracked expected success rate
// under three update rules.
type Fig15Result struct {
	// NoEnv is the reference: outcomes unaffected by the environment.
	NoEnv stats.Series
	// Traditional updates from environment-degraded outcomes without
	// correction (error and delay at the steps).
	Traditional stats.Series
	// Proposed applies the removal function r(·) of eq. 29.
	Proposed stats.Series
	// Env is the environment trajectory, for plotting context.
	Env stats.Series
}

// RunFig15 tracks the expected success rate across the environment steps.
func RunFig15(cfg Fig15Config) Fig15Result {
	sched := cfg.Schedule
	if sched == nil {
		sched = env.Fig15Schedule()
	}
	iters := cfg.Iterations
	if iters == 0 {
		if ps, ok := sched.(*env.PhaseSchedule); ok {
			iters = ps.TotalLen()
		} else {
			iters = 300
		}
	}
	noEnv := make([]float64, iters)
	trad := make([]float64, iters)
	prop := make([]float64, iters)
	envSeries := make([]float64, iters)
	for i := 0; i < iters; i++ {
		envSeries[i] = float64(sched.At(i))
	}

	baseCfg := core.DefaultUpdateConfig()
	baseCfg.Betas = core.UniformBetas(cfg.HistoryWeight)
	propCfg := baseCfg
	propCfg.EnvCorrection = true

	for run := 0; run < cfg.Runs; run++ {
		r := rng.Split(cfg.Seed, "fig15", run)
		// The trustor initializes the expected success rate as 1.
		eNo := core.Expectation{S: 1}
		eTrad := core.Expectation{S: 1}
		eProp := core.Expectation{S: 1}
		for i := 0; i < iters; i++ {
			e := sched.At(i)
			ectx := core.EnvContext{Trustor: e, Trustee: e}
			// Reference: environment never degrades the outcome.
			draw := r.Float64()
			obsNo := core.Outcome{Success: draw < cfg.ActualS}
			// Degraded: P(success) = S_actual · min(E). The same uniform
			// draw couples the three curves, reducing comparison variance.
			obsDeg := core.Outcome{Success: draw < cfg.ActualS*float64(ectx.Min())}
			eNo = core.Update(eNo, obsNo, core.PerfectEnv(), baseCfg)
			eTrad = core.Update(eTrad, obsDeg, ectx, baseCfg)
			eProp = core.Update(eProp, obsDeg, ectx, propCfg)
			noEnv[i] += eNo.S
			trad[i] += eTrad.S
			prop[i] += eProp.S
		}
	}
	scale := 1 / float64(cfg.Runs)
	for i := 0; i < iters; i++ {
		noEnv[i] *= scale
		trad[i] *= scale
		prop[i] *= scale
	}
	return Fig15Result{
		NoEnv:       stats.NewSeries("without environment influence", noEnv),
		Traditional: stats.NewSeries("affected by environment - traditional method", trad),
		Proposed:    stats.NewSeries("affected by environment - proposed method", prop),
		Env:         stats.NewSeries("environment", envSeries),
	}
}

// AllSeries returns the three tracked curves.
func (r Fig15Result) AllSeries() []stats.Series {
	return []stats.Series{r.NoEnv, r.Traditional, r.Proposed}
}

// Table summarizes per-phase means of each curve.
func (r Fig15Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 15: mean tracked success rate per environment phase",
		Headers: []string{"Curve", "phase1 (E=1)", "phase2 (E=0.4)", "phase3 (E=0.7)"},
	}
	third := len(r.NoEnv.Y) / 3
	phaseMean := func(y []float64, p int) string {
		if third == 0 {
			return "-"
		}
		seg := y[p*third : (p+1)*third]
		// Skip the first fifth of the phase (transient).
		return fmt.Sprintf("%.3f", stats.Mean(seg[len(seg)/5:]))
	}
	for _, s := range r.AllSeries() {
		t.AddRow(s.Name, phaseMean(s.Y, 0), phaseMean(s.Y, 1), phaseMean(s.Y, 2))
	}
	return t
}

// ShapeCheck verifies Fig. 15's claims: the reference converges to the
// actual competence; the traditional method tracks the degraded rate
// S·min(E) in each phase (error relative to the truth); the proposed method
// recovers the environment-free rate in every phase; and at the 100 → 101
// step the proposed method re-converges faster than the traditional one.
func (r Fig15Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "fig15"}
	n := len(r.NoEnv.Y)
	if n < 300 {
		c.expect(false, "series too short (%d) for the default schedule", n)
		return c.errs
	}
	tailMean := func(y []float64, lo, hi int) float64 {
		return stats.Mean(y[lo:hi])
	}
	actual := 0.8
	near := func(v, want, tol float64) bool { return math.Abs(v-want) <= tol }

	// Phase tails (last 40 iterations of each 100-iteration phase).
	c.expect(near(tailMean(r.NoEnv.Y, 60, 100), actual, 0.06), "reference not near %.1f in phase 1", actual)
	c.expect(near(tailMean(r.Traditional.Y, 160, 200), actual*0.4, 0.06),
		"traditional not near %.2f in phase 2 (got %.3f)", actual*0.4, tailMean(r.Traditional.Y, 160, 200))
	c.expect(near(tailMean(r.Traditional.Y, 260, 300), actual*0.7, 0.06),
		"traditional not near %.2f in phase 3", actual*0.7)
	c.expect(near(tailMean(r.Proposed.Y, 160, 200), actual, 0.08),
		"proposed did not recover %.1f in phase 2 (got %.3f)", actual, tailMean(r.Proposed.Y, 160, 200))
	c.expect(near(tailMean(r.Proposed.Y, 260, 300), actual, 0.08),
		"proposed did not recover %.1f in phase 3", actual)

	// Step response: right after the drop at iteration 100, the proposed
	// curve must stay closer to the truth than the traditional curve.
	tradErr := math.Abs(tailMean(r.Traditional.Y, 105, 125) - actual)
	propErr := math.Abs(tailMean(r.Proposed.Y, 105, 125) - actual)
	c.expect(propErr < tradErr,
		"proposed step error %.3f not below traditional %.3f", propErr, tradErr)
	return c.errs
}
