package experiments

import (
	"fmt"
	"sort"

	"siot/internal/core"
	"siot/internal/report"
	"siot/internal/rng"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/stats"
)

// policies lists the three trust-transfer methods in figure order.
var policies = []core.Policy{core.PolicyAggressive, core.PolicyConservative, core.PolicyTraditional}

// TransitivityConfig parameterizes the §5.5 sweep behind Figs. 9–11.
type TransitivityConfig struct {
	Seed uint64
	// CharCounts is the sweep over "the total number of different
	// characteristics of the tasks in the network" (4–7 in the paper).
	CharCounts []int
	// Repeats averages each cell over fresh seedings.
	Repeats int
	// MaxDepth bounds recommendation chains.
	MaxDepth int
	// Parallelism is the engine worker-pool width for the per-trustor
	// searches (0 = GOMAXPROCS, 1 = serial); results are bit-identical
	// across all values.
	Parallelism int
}

// DefaultTransitivityConfig returns the paper's sweep.
func DefaultTransitivityConfig(seed uint64) TransitivityConfig {
	return TransitivityConfig{Seed: seed, CharCounts: []int{4, 5, 6, 7}, Repeats: 5, MaxDepth: 3}
}

// TransitivityCell is one (network, policy, alphabet-size) measurement.
type TransitivityCell struct {
	Network      string
	Policy       core.Policy
	NumChars     int
	Success      float64
	Unavailable  float64
	AvgPotential float64
}

// TransitivityResult backs Figs. 9 (success rate), 10 (unavailable rate),
// and 11 (average number of potential trustees).
type TransitivityResult struct {
	Cells []TransitivityCell
}

// RunTransitivitySweep measures the three trust-transfer methods over the
// three networks and the characteristic-count sweep.
func RunTransitivitySweep(cfg TransitivityConfig) TransitivityResult {
	var res TransitivityResult
	for _, profile := range Networks() {
		net := socialgen.Generate(profile, cfg.Seed)
		for _, numChars := range cfg.CharCounts {
			agg := map[core.Policy]*sim.TransitivityStats{}
			for _, pol := range policies {
				agg[pol] = &sim.TransitivityStats{}
			}
			for rep := 0; rep < cfg.Repeats; rep++ {
				repSeed := rng.Mix(cfg.Seed, "transitivity", profile.Name, fmt.Sprint(numChars), fmt.Sprint(rep))
				pcfg := sim.DefaultPopulationConfig(repSeed)
				pcfg.Parallelism = cfg.Parallelism
				p := sim.NewPopulation(net, pcfg)
				r := rng.New(repSeed, "setup")
				setup := sim.DefaultTransitivitySetup(numChars, r)
				setup.MaxDepth = cfg.MaxDepth
				sim.SeedExperience(p, setup, repSeed)
				eng := sim.NewEngine(p, "figs9-11")
				// One frozen-epoch capture serves all three policies: the
				// searches are pure, so the stores cannot change between
				// runs within a rep. Releasing the epoch recycles its
				// arenas into the next repetition's capture.
				ep := eng.TransitivityEpoch(setup)
				for _, pol := range policies {
					st := ep.Run(pol, repSeed)
					merge(agg[pol], st)
				}
				ep.Release()
			}
			for _, pol := range policies {
				st := agg[pol]
				res.Cells = append(res.Cells, TransitivityCell{
					Network: profile.Name, Policy: pol, NumChars: numChars,
					Success:      st.SuccessRate(),
					Unavailable:  st.UnavailableRate(),
					AvgPotential: st.AvgPotentialTrustees(),
				})
			}
		}
	}
	return res
}

func merge(dst *sim.TransitivityStats, src sim.TransitivityStats) {
	dst.Requests += src.Requests
	dst.Successes += src.Successes
	dst.Unavailable += src.Unavailable
	dst.PotentialTrustees += src.PotentialTrustees
	dst.InquiredPerTrustor = append(dst.InquiredPerTrustor, src.InquiredPerTrustor...)
}

// series extracts one curve per (network, policy).
func (r TransitivityResult) series(metric func(TransitivityCell) float64) []stats.Series {
	type key struct {
		network string
		policy  core.Policy
	}
	byKey := map[key]*stats.Series{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Network, c.Policy}
		s, ok := byKey[k]
		if !ok {
			s = &stats.Series{Name: fmt.Sprintf("%s %s", c.Network, c.Policy)}
			byKey[k] = s
			order = append(order, k)
		}
		s.X = append(s.X, float64(c.NumChars))
		s.Y = append(s.Y, metric(c))
	}
	out := make([]stats.Series, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// SuccessSeries returns Fig. 9's curves.
func (r TransitivityResult) SuccessSeries() []stats.Series {
	return r.series(func(c TransitivityCell) float64 { return c.Success })
}

// UnavailableSeries returns Fig. 10's curves.
func (r TransitivityResult) UnavailableSeries() []stats.Series {
	return r.series(func(c TransitivityCell) float64 { return c.Unavailable })
}

// PotentialSeries returns Fig. 11's curves.
func (r TransitivityResult) PotentialSeries() []stats.Series {
	return r.series(func(c TransitivityCell) float64 { return c.AvgPotential })
}

// Table renders all cells.
func (r TransitivityResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Figs. 9-11: transitivity methods vs number of characteristics",
		Headers: []string{"Network", "Method", "Chars", "Success", "Unavailable", "AvgPotentialTrustees"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Network, c.Policy.String(), fmt.Sprint(c.NumChars),
			fmt.Sprintf("%.3f", c.Success), fmt.Sprintf("%.3f", c.Unavailable),
			fmt.Sprintf("%.2f", c.AvgPotential))
	}
	return t
}

// ShapeCheck verifies the §5.5 claims: for every network and alphabet size,
// aggressive ≥ conservative > traditional on success rate and potential
// trustees, the reverse on unavailable rate; and success falls (while
// unavailability rises) as the alphabet grows, per network and method,
// comparing the sweep endpoints.
func (r TransitivityResult) ShapeCheck() []error {
	c := &shapeCheck{experiment: "figs9-11"}
	cells := map[string]TransitivityCell{}
	keyOf := func(n string, p core.Policy, k int) string { return fmt.Sprintf("%s/%s/%d", n, p, k) }
	charSet := map[int]bool{}
	for _, cell := range r.Cells {
		cells[keyOf(cell.Network, cell.Policy, cell.NumChars)] = cell
		charSet[cell.NumChars] = true
	}
	var chars []int
	for k := range charSet {
		chars = append(chars, k)
	}
	sort.Ints(chars)
	for _, p := range Networks() {
		for _, k := range chars {
			aggr := cells[keyOf(p.Name, core.PolicyAggressive, k)]
			cons := cells[keyOf(p.Name, core.PolicyConservative, k)]
			trad := cells[keyOf(p.Name, core.PolicyTraditional, k)]
			c.expect(aggr.Success >= cons.Success-0.03,
				"%s chars=%d: aggressive success %.3f below conservative %.3f", p.Name, k, aggr.Success, cons.Success)
			c.expect(cons.Success > trad.Success,
				"%s chars=%d: conservative success %.3f not above traditional %.3f", p.Name, k, cons.Success, trad.Success)
			c.expect(aggr.Unavailable <= cons.Unavailable+0.03,
				"%s chars=%d: aggressive unavailability %.3f above conservative %.3f", p.Name, k, aggr.Unavailable, cons.Unavailable)
			c.expect(cons.Unavailable < trad.Unavailable,
				"%s chars=%d: conservative unavailability %.3f not below traditional %.3f", p.Name, k, cons.Unavailable, trad.Unavailable)
			c.expect(aggr.AvgPotential >= cons.AvgPotential-1e-9,
				"%s chars=%d: aggressive potential %.2f below conservative %.2f", p.Name, k, aggr.AvgPotential, cons.AvgPotential)
			c.expect(cons.AvgPotential > trad.AvgPotential,
				"%s chars=%d: conservative potential %.2f not above traditional %.2f", p.Name, k, cons.AvgPotential, trad.AvgPotential)
		}
		if len(chars) >= 2 {
			first, last := chars[0], chars[len(chars)-1]
			for _, pol := range policies {
				a := cells[keyOf(p.Name, pol, first)]
				b := cells[keyOf(p.Name, pol, last)]
				c.expect(b.Success <= a.Success+0.03,
					"%s %s: success did not fall across the sweep (%.3f → %.3f)", p.Name, pol, a.Success, b.Success)
				c.expect(b.Unavailable >= a.Unavailable-0.03,
					"%s %s: unavailability did not rise across the sweep (%.3f → %.3f)", p.Name, pol, a.Unavailable, b.Unavailable)
			}
		}
	}
	return c.errs
}

// Fig12Config parameterizes the search-overhead measurement.
type Fig12Config struct {
	Seed uint64
	// Network selects the sub-network (the paper uses Facebook).
	Network string
	// NumChars is the characteristic-alphabet size.
	NumChars int
	// MaxDepth bounds recommendation chains.
	MaxDepth int
	// Parallelism is the engine worker-pool width (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultFig12Config mirrors the paper (Facebook subnetwork).
func DefaultFig12Config(seed uint64) Fig12Config {
	return Fig12Config{Seed: seed, Network: "facebook", NumChars: 5, MaxDepth: 3}
}

// Fig12Result reproduces Fig. 12, "Comparison of the numbers of inquired
// nodes with different trust transitivity methods": the per-trustor count
// of interrogated nodes, sorted ascending per method.
type Fig12Result struct {
	// Sorted per-trustor inquired-node counts, by policy.
	PerPolicy map[core.Policy][]int
}

// RunFig12 measures search overhead per trustor.
func RunFig12(cfg Fig12Config) Fig12Result {
	profile, err := socialgen.ProfileByName(cfg.Network)
	if err != nil {
		panic(err)
	}
	net := socialgen.Generate(profile, cfg.Seed)
	pcfg := sim.DefaultPopulationConfig(cfg.Seed)
	pcfg.Parallelism = cfg.Parallelism
	p := sim.NewPopulation(net, pcfg)
	r := rng.New(cfg.Seed, "fig12-setup")
	setup := sim.DefaultTransitivitySetup(cfg.NumChars, r)
	setup.MaxDepth = cfg.MaxDepth
	sim.SeedExperience(p, setup, cfg.Seed)

	eng := sim.NewEngine(p, "fig12")
	ep := eng.TransitivityEpoch(setup)
	defer ep.Release()
	res := Fig12Result{PerPolicy: map[core.Policy][]int{}}
	for _, pol := range policies {
		st := ep.Run(pol, cfg.Seed)
		counts := append([]int(nil), st.InquiredPerTrustor...)
		sort.Ints(counts)
		res.PerPolicy[pol] = counts
	}
	return res
}

// Table summarizes the search-overhead distribution per method.
func (r Fig12Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 12: inquired nodes per trustor (distribution)",
		Headers: []string{"Method", "Median", "p90", "Max", "Total"},
	}
	for _, pol := range policies {
		counts := r.PerPolicy[pol]
		y := make([]float64, len(counts))
		total := 0
		for i, v := range counts {
			y[i] = float64(v)
			total += v
		}
		_, hi := stats.MinMax(y)
		t.AddRow(pol.String(),
			fmt.Sprintf("%.0f", stats.Quantile(y, 0.5)),
			fmt.Sprintf("%.0f", stats.Quantile(y, 0.9)),
			fmt.Sprintf("%.0f", hi),
			fmt.Sprintf("%d", total))
	}
	return t
}

// Series returns one sorted curve per policy (x = sorted trustor index).
func (r Fig12Result) Series() []stats.Series {
	var out []stats.Series
	for _, pol := range policies {
		counts := r.PerPolicy[pol]
		y := make([]float64, len(counts))
		for i, v := range counts {
			y[i] = float64(v)
		}
		out = append(out, stats.NewSeries(pol.String(), y))
	}
	return out
}

// ShapeCheck verifies Fig. 12's claim: aggressive interrogates the most
// nodes, traditional the fewest, comparing totals.
func (r Fig12Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "fig12"}
	total := func(p core.Policy) int {
		sum := 0
		for _, v := range r.PerPolicy[p] {
			sum += v
		}
		return sum
	}
	aggr, cons, trad := total(core.PolicyAggressive), total(core.PolicyConservative), total(core.PolicyTraditional)
	c.expect(aggr >= cons, "aggressive total %d below conservative %d", aggr, cons)
	c.expect(cons > trad, "conservative total %d not above traditional %d", cons, trad)
	return c.errs
}

// Table2Config parameterizes the real-node-property variant.
type Table2Config struct {
	Seed uint64
	// Repeats averages each network over fresh seedings.
	Repeats  int
	MaxDepth int
	// Parallelism is the engine worker-pool width (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultTable2Config mirrors the paper.
func DefaultTable2Config(seed uint64) Table2Config {
	return Table2Config{Seed: seed, Repeats: 5, MaxDepth: 3}
}

// Table2Cell is one (network, method) row of Table 2.
type Table2Cell struct {
	Network      string
	Policy       core.Policy
	Success      float64
	Unavailable  float64
	AvgPotential float64
}

// Table2Result reproduces Table 2, "Comparison of success rates,
// unavailable rates, and average numbers of potential trustees with
// real-world network node properties".
type Table2Result struct {
	Cells []Table2Cell
}

// RunTable2 runs the transitivity comparison with node profile features as
// task characteristics.
func RunTable2(cfg Table2Config) Table2Result {
	var res Table2Result
	for _, profile := range Networks() {
		net := socialgen.Generate(profile, cfg.Seed)
		agg := map[core.Policy]*sim.TransitivityStats{}
		for _, pol := range policies {
			agg[pol] = &sim.TransitivityStats{}
		}
		for rep := 0; rep < cfg.Repeats; rep++ {
			repSeed := rng.Mix(cfg.Seed, "table2", profile.Name, fmt.Sprint(rep))
			pcfg := sim.DefaultPopulationConfig(repSeed)
			pcfg.Parallelism = cfg.Parallelism
			p := sim.NewPopulation(net, pcfg)
			r := rng.New(repSeed, "setup")
			setup := sim.DefaultTransitivitySetup(profile.FeatureKinds, r)
			setup.MaxDepth = cfg.MaxDepth
			sim.SeedExperienceFromFeatures(p, setup, repSeed)
			eng := sim.NewEngine(p, "table2")
			ep := eng.TransitivityEpoch(setup)
			for _, pol := range policies {
				st := ep.Run(pol, repSeed)
				merge(agg[pol], st)
			}
			ep.Release()
		}
		for _, pol := range policies {
			st := agg[pol]
			res.Cells = append(res.Cells, Table2Cell{
				Network: profile.Name, Policy: pol,
				Success:      st.SuccessRate(),
				Unavailable:  st.UnavailableRate(),
				AvgPotential: st.AvgPotentialTrustees(),
			})
		}
	}
	return res
}

// Table renders Table 2 in the paper's layout (method-major rows).
func (r Table2Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table 2: transitivity with real-world node properties as characteristics",
		Headers: []string{"Method", "Metric", "facebook", "gplus", "twitter"},
	}
	byKey := map[string]Table2Cell{}
	for _, c := range r.Cells {
		byKey[c.Network+"/"+c.Policy.String()] = c
	}
	for _, pol := range []core.Policy{core.PolicyTraditional, core.PolicyConservative, core.PolicyAggressive} {
		rows := []struct {
			name string
			get  func(Table2Cell) string
		}{
			{"Success rate", func(c Table2Cell) string { return fmt.Sprintf("%.2f%%", 100*c.Success) }},
			{"Unavailable rate", func(c Table2Cell) string { return fmt.Sprintf("%.2f%%", 100*c.Unavailable) }},
			{"Num. potential trustees", func(c Table2Cell) string { return fmt.Sprintf("%.2f", c.AvgPotential) }},
		}
		for _, row := range rows {
			cells := []string{pol.String(), row.name}
			for _, p := range Networks() {
				cells = append(cells, row.get(byKey[p.Name+"/"+pol.String()]))
			}
			t.AddRow(cells...)
		}
	}
	return t
}

// ShapeCheck verifies Table 2's ordering: per network, success and
// potential trustees rank aggressive ≥ conservative > traditional, and
// unavailability ranks the other way.
func (r Table2Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "table2"}
	byKey := map[string]Table2Cell{}
	for _, cell := range r.Cells {
		byKey[cell.Network+"/"+cell.Policy.String()] = cell
	}
	for _, p := range Networks() {
		aggr := byKey[p.Name+"/aggressive"]
		cons := byKey[p.Name+"/conservative"]
		trad := byKey[p.Name+"/traditional"]
		c.expect(aggr.Success >= cons.Success-0.03, "%s: aggressive success %.3f below conservative %.3f", p.Name, aggr.Success, cons.Success)
		c.expect(cons.Success > trad.Success, "%s: conservative success %.3f not above traditional %.3f", p.Name, cons.Success, trad.Success)
		c.expect(aggr.Unavailable <= cons.Unavailable+0.03, "%s: aggressive unavailability above conservative", p.Name)
		c.expect(cons.Unavailable < trad.Unavailable, "%s: conservative unavailability not below traditional", p.Name)
		c.expect(aggr.AvgPotential >= cons.AvgPotential-1e-9, "%s: aggressive potential below conservative", p.Name)
		c.expect(cons.AvgPotential > trad.AvgPotential, "%s: conservative potential not above traditional", p.Name)
	}
	return c.errs
}
