package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-figure harness locks every registered experiment's numbers —
// the Fig. 7/8/12–16 curves, Table 1/2, the ablations, and the attack
// scenarios — against drift: each experiment runs at a fixed seed and its
// canonical serialization (summary table plus every figure series) must
// match the committed snapshot byte for byte, at worker-pool widths 1 AND 8.
// A scale refactor that silently changes a figure, or a parallelism change
// that breaks the engine's determinism contract, fails here.
//
// Regenerate intentionally with:
//
//	go test ./internal/experiments -run TestGoldenFigures -update

var updateGolden = flag.Bool("update", false, "rewrite the golden-figure snapshots instead of comparing")

// goldenSeed is the fixed seed all snapshots are taken at.
const goldenSeed = 42

// goldenDoc is the canonical serialized form of one experiment result.
type goldenDoc struct {
	Experiment string        `json:"experiment"`
	Seed       uint64        `json:"seed"`
	Table      goldenTable   `json:"table"`
	Charts     []goldenChart `json:"charts,omitempty"`
}

type goldenTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type goldenChart struct {
	Title  string         `json:"title"`
	Series []goldenSeries `json:"series"`
}

type goldenSeries struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// goldenEncode serializes a result. Go's JSON encoder emits the shortest
// float representation that round-trips, so equal bytes ⇔ equal numbers.
func goldenEncode(name string, res Result) ([]byte, error) {
	tbl := res.Table()
	doc := goldenDoc{
		Experiment: name,
		Seed:       goldenSeed,
		Table:      goldenTable{Title: tbl.Title, Headers: tbl.Headers, Rows: tbl.Rows},
	}
	if doc.Table.Rows == nil {
		doc.Table.Rows = [][]string{}
	}
	if c, ok := res.(Charter); ok {
		for _, chart := range c.Charts() {
			gc := goldenChart{Title: chart.Title}
			for _, s := range chart.Series {
				gc.Series = append(gc.Series, goldenSeries{Name: s.Name, X: s.X, Y: s.Y})
			}
			doc.Charts = append(doc.Charts, gc)
		}
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// goldenPath returns the snapshot file for one experiment.
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func TestGoldenFigures(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			path := goldenPath(name)
			// P=1 and P=8 must serialize to the very same bytes: the
			// engine's determinism contract, checked end to end.
			var byPar [2][]byte
			for i, par := range []int{1, 8} {
				res, err := RunOpts(name, Options{Seed: goldenSeed, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				byPar[i], err = goldenEncode(name, res)
				if err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(byPar[0], byPar[1]) {
				t.Fatalf("parallelism changed the result: P=1 and P=8 serializations differ\n%s",
					firstDiff(byPar[0], byPar[1]))
			}
			got := byPar[0]
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot for %q (regenerate with -update): %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("result drifted from golden snapshot %s (regenerate intentionally with -update)\n%s",
					path, firstDiff(want, got))
			}
		})
	}
}

// TestGoldenRegenerationIdentity turns the one-time golden regeneration
// into a standing invariant: what `-update` would write must not depend on
// when or how often it runs. TestGoldenFigures already proves one P=1 and
// one P=8 run serialize identically; this test replays the full registry a
// further time — after every experiment has already run twice in this
// process — and requires the bytes to still match the committed snapshots.
// Cross-run state that could poison a regeneration (shared arena pools,
// sync.Pool scratch, lazily grown store maps, a stray package-level rng)
// fails here, so `go test -update` is safe to run at any parallelism and
// any point in a session.
func TestGoldenRegenerationIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("third full registry pass skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("byte-determinism guard, skipped under -race (TestGoldenFigures covers the code paths there)")
	}
	if *updateGolden {
		t.Skip("snapshots are being rewritten; TestGoldenFigures validates the update pass")
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			res, err := RunOpts(name, Options{Seed: goldenSeed, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			got, err := goldenEncode(name, res)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("missing golden snapshot for %q (regenerate with -update): %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("repeated regeneration of %q drifted from the committed snapshot — process state leaks into the experiments\n%s",
					name, firstDiff(want, got))
			}
		})
	}
}

// TestGoldenNoStrays ensures every committed snapshot still corresponds to a
// registered experiment, so renames cannot leave dead goldens behind.
func TestGoldenNoStrays(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Skipf("no golden directory yet: %v", err)
	}
	known := map[string]bool{}
	for _, name := range Names() {
		known[name+".json"] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("stray golden snapshot %s has no registered experiment", e.Name())
		}
	}
}

// firstDiff renders the first byte-level divergence with a little context.
func firstDiff(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	if i == n && len(want) == len(got) {
		return "(no byte difference?)"
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) string {
		hi := i + 80
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return ""
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("first difference at byte %d:\nwant: …%s…\ngot:  …%s…", i, clip(want), clip(got))
}
