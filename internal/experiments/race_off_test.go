//go:build !race

package experiments

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
