package experiments

import (
	"strings"
	"testing"
)

// These tests run every experiment at reduced scale and assert the paper's
// qualitative claims (the ShapeChecks) hold. The full-scale runs live in
// the bench harness and cmd/siot-bench.

func noShapeErrors(t *testing.T, errs []error) {
	t.Helper()
	for _, e := range errs {
		t.Error(e)
	}
}

func TestTable1Shape(t *testing.T) {
	res := RunTable1(1)
	noShapeErrors(t, res.ShapeCheck())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var b strings.Builder
	if err := res.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"facebook", "gplus", "twitter", "Modularity"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res := RunFig7(DefaultFig7Config(1))
	noShapeErrors(t, res.ShapeCheck())
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(res.Cells))
	}
}

func TestTransitivityShape(t *testing.T) {
	cfg := DefaultTransitivityConfig(1)
	cfg.CharCounts = []int{4, 7}
	// 3 repeats, not 2: the aggressive-vs-conservative success gap the
	// ShapeCheck tolerates (±0.03) is an averaged, full-scale claim —
	// two-repeat samples dip below it on many seeds (the full Repeats=5
	// sweep passes on every seed tried).
	cfg.Repeats = 3
	res := RunTransitivitySweep(cfg)
	noShapeErrors(t, res.ShapeCheck())
	if len(res.Cells) != 3*2*3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, s := range res.SuccessSeries() {
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
	}
	if len(res.UnavailableSeries()) != 9 || len(res.PotentialSeries()) != 9 {
		t.Fatal("series count wrong")
	}
}

func TestFig12Shape(t *testing.T) {
	res := RunFig12(DefaultFig12Config(1))
	noShapeErrors(t, res.ShapeCheck())
	series := res.Series()
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	// Sorted ascending per policy.
	for _, s := range series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s not sorted at %d", s.Name, i)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := DefaultTable2Config(1)
	cfg.Repeats = 2
	res := RunTable2(cfg)
	noShapeErrors(t, res.ShapeCheck())
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
}

func TestFig13Shape(t *testing.T) {
	cfg := DefaultFig13Config(1)
	cfg.Iterations = 900
	res := RunFig13(cfg)
	noShapeErrors(t, res.ShapeCheck())
	if len(res.Series) != 6 {
		t.Fatalf("series = %d", len(res.Series))
	}
}

func TestFig15Shape(t *testing.T) {
	cfg := DefaultFig15Config(1)
	cfg.Runs = 40
	res := RunFig15(cfg)
	noShapeErrors(t, res.ShapeCheck())
	if len(res.NoEnv.Y) != 300 {
		t.Fatalf("series length = %d", len(res.NoEnv.Y))
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := DefaultFig8Config(1)
	cfg.Experiments = 8
	res := RunFig8(cfg)
	noShapeErrors(t, res.ShapeCheck())
	if len(res.WithModel.Y) != 8 || len(res.WithoutModel.Y) != 8 {
		t.Fatal("series lengths wrong")
	}
	for _, v := range res.WithModel.Y {
		if v < 0 || v > 100 {
			t.Fatalf("percentage out of range: %v", v)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	cfg := DefaultFig14Config(1)
	cfg.TasksPerTrustor = 30
	res := RunFig14(cfg)
	noShapeErrors(t, res.ShapeCheck())
	if len(res.WithModel.Y) != 30 {
		t.Fatal("series length wrong")
	}
}

func TestFig16Shape(t *testing.T) {
	res := RunFig16(DefaultFig16Config(1))
	noShapeErrors(t, res.ShapeCheck())
	if len(res.WithModel.Y) != 50 {
		t.Fatal("series length wrong")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a := RunFig7(Fig7Config{Seed: 5, Thetas: []float64{0, 0.6}, Rounds: 5})
	b := RunFig7(Fig7Config{Seed: 5, Thetas: []float64{0, 0.6}, Rounds: 5})
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs across identical runs", i)
		}
	}
}

func TestAblationEq7Shape(t *testing.T) {
	cfg := DefaultAblationEq7Config(1)
	cfg.Pairs = 4000
	res := RunAblationEq7(cfg)
	noShapeErrors(t, res.ShapeCheck())
	// Deeper chains too: eq. 7's fold stays exact at depth 4.
	cfg.Depth = 4
	res = RunAblationEq7(cfg)
	noShapeErrors(t, res.ShapeCheck())
}

func TestAblationCannikinShape(t *testing.T) {
	cfg := DefaultAblationCannikinConfig(1)
	cfg.Runs = 20
	res := RunAblationCannikin(cfg)
	noShapeErrors(t, res.ShapeCheck())
}

func TestAblationSelfDelegationShape(t *testing.T) {
	cfg := DefaultAblationSelfDelegationConfig(1)
	cfg.Iterations = 300
	res := RunAblationSelfDelegation(cfg)
	noShapeErrors(t, res.ShapeCheck())
}

func TestRegistryRunsEverything(t *testing.T) {
	if len(Names()) < 13 {
		t.Fatalf("registry has %d entries: %v", len(Names()), Names())
	}
	// The cheap entries actually run through the registry.
	for _, name := range []string{"fig15", "ablation-eq7"} {
		res, err := Run(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table() == nil {
			t.Fatalf("%s produced no table", name)
		}
	}
}

func TestShapeErrorMessage(t *testing.T) {
	e := ShapeError{Experiment: "figX", Detail: "wrong"}
	if e.Error() != "figX: wrong" {
		t.Fatalf("error = %q", e.Error())
	}
}
