// Package experiments defines one runner per table and figure of the
// paper's evaluation (§5). Every runner is deterministic in its seed,
// returns a typed result that can render itself as a table, ASCII chart, or
// CSV, and exposes a ShapeCheck that verifies the paper's qualitative
// claims hold on the reproduction (who wins, in which direction rates move).
//
// Default configurations use the paper's full-size parameters; the bench
// harness scales them down via the Scale helpers to keep iterations cheap.
package experiments

import (
	"fmt"

	"siot/internal/socialgen"
)

// Networks returns the three evaluation networks in paper order.
func Networks() []socialgen.Profile { return socialgen.Profiles() }

// ShapeError describes one violated qualitative expectation.
type ShapeError struct {
	Experiment string
	Detail     string
}

// Error implements error.
func (e ShapeError) Error() string {
	return fmt.Sprintf("%s: %s", e.Experiment, e.Detail)
}

// shapeCheck collects violations.
type shapeCheck struct {
	experiment string
	errs       []error
}

func (c *shapeCheck) expect(ok bool, format string, args ...interface{}) {
	if !ok {
		c.errs = append(c.errs, ShapeError{Experiment: c.experiment, Detail: fmt.Sprintf(format, args...)})
	}
}
