//go:build race

package experiments

// raceEnabled reports that the race detector is active. The
// regeneration-identity pass skips under -race: it is a byte-determinism
// guard, not a concurrency one — TestGoldenFigures already runs every
// experiment at P=1 and P=8 under the detector — and a third full registry
// pass pushes the race job past the go test timeout.
const raceEnabled = true
