package experiments

import (
	"fmt"

	"siot/internal/report"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/task"
)

// Fig7Config parameterizes the mutuality experiment (§5.3).
type Fig7Config struct {
	Seed uint64
	// Thetas are the reverse-evaluation thresholds swept; the paper uses
	// {0, 0.3, 0.6} where 0 reproduces unilateral evaluation.
	Thetas []float64
	// Rounds is the number of delegation rounds per (network, θ) cell;
	// rates are measured over all rounds.
	Rounds int
	// Parallelism is the engine worker-pool width (0 = GOMAXPROCS,
	// 1 = serial). Results are bit-identical across all values.
	Parallelism int
}

// DefaultFig7Config returns the paper's sweep.
func DefaultFig7Config(seed uint64) Fig7Config {
	return Fig7Config{Seed: seed, Thetas: []float64{0, 0.3, 0.6}, Rounds: 150}
}

// Fig7Cell is one bar triple of Fig. 7.
type Fig7Cell struct {
	Network     string
	Theta       float64
	Success     float64
	Unavailable float64
	Abuse       float64
}

// Fig7Result reproduces Fig. 7, "Comparison of success rates, unavailable
// rates, and abuse rates of task delegations with different threshold value
// θ_y(τ) in the reverse evaluations".
type Fig7Result struct {
	Cells []Fig7Cell
}

// RunFig7 sweeps the reverse-evaluation threshold over the three networks.
// The delegation rounds run on the parallel engine, so cfg.Parallelism only
// changes wall-clock time, never the cells.
func RunFig7(cfg Fig7Config) Fig7Result {
	var res Fig7Result
	tk := task.Uniform(1, task.CharCompute)
	for _, profile := range Networks() {
		net := socialgen.Generate(profile, cfg.Seed)
		for _, theta := range cfg.Thetas {
			pcfg := sim.DefaultPopulationConfig(cfg.Seed)
			pcfg.Theta = theta
			pcfg.Parallelism = cfg.Parallelism
			p := sim.NewPopulation(net, pcfg)
			eng := sim.NewEngine(p, fmt.Sprintf("fig7-theta-%v", theta))
			var c sim.MutualityCounters
			for round := 0; round < cfg.Rounds; round++ {
				eng.MutualityRound(round, tk, &c)
			}
			res.Cells = append(res.Cells, Fig7Cell{
				Network:     profile.Name,
				Theta:       theta,
				Success:     c.SuccessRate(),
				Unavailable: c.UnavailableRate(),
				Abuse:       c.AbuseRate(),
			})
		}
	}
	return res
}

// Table renders the figure's bars as rows.
func (r Fig7Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 7: success / unavailable / abuse rates vs reverse-evaluation threshold",
		Headers: []string{"Network", "theta", "Success", "Unavailable", "Abuse"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Network, fmt.Sprintf("%.1f", c.Theta),
			fmt.Sprintf("%.3f", c.Success), fmt.Sprintf("%.3f", c.Unavailable),
			fmt.Sprintf("%.3f", c.Abuse))
	}
	return t
}

// cellsByNetwork groups cells preserving theta order.
func (r Fig7Result) cellsByNetwork() map[string][]Fig7Cell {
	m := map[string][]Fig7Cell{}
	for _, c := range r.Cells {
		m[c.Network] = append(m[c.Network], c)
	}
	return m
}

// ShapeCheck verifies Fig. 7's claims: with θ = 0 the abuse rate exceeds
// 0.4 and nothing is unavailable; as θ grows, abuse falls and
// unavailability rises, across all three networks.
func (r Fig7Result) ShapeCheck() []error {
	c := &shapeCheck{experiment: "fig7"}
	for network, cells := range r.cellsByNetwork() {
		for i, cell := range cells {
			if cell.Theta == 0 {
				c.expect(cell.Abuse > 0.3, "%s θ=0: abuse %.3f not > 0.3", network, cell.Abuse)
				c.expect(cell.Unavailable == 0, "%s θ=0: unavailable %.3f != 0", network, cell.Unavailable)
			}
			if cell.Theta > 0 {
				c.expect(cell.Unavailable < 1, "%s θ=%.1f: service deadlocked (unavailable = 1)", network, cell.Theta)
				c.expect(cell.Success > 0, "%s θ=%.1f: no successful delegations", network, cell.Theta)
			}
			if i > 0 {
				prev := cells[i-1]
				c.expect(cell.Abuse <= prev.Abuse+0.02,
					"%s: abuse did not fall from θ=%.1f to θ=%.1f (%.3f → %.3f)",
					network, prev.Theta, cell.Theta, prev.Abuse, cell.Abuse)
				c.expect(cell.Unavailable >= prev.Unavailable-0.02,
					"%s: unavailability did not rise from θ=%.1f to θ=%.1f (%.3f → %.3f)",
					network, prev.Theta, cell.Theta, prev.Unavailable, cell.Unavailable)
			}
		}
	}
	return c.errs
}
