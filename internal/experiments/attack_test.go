package experiments

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"siot/internal/adversary"
)

// scaledAttackConfig shrinks the default scenario for test speed.
func scaledAttackConfig(model adversary.Attack) AttackScenarioConfig {
	cfg := DefaultAttackConfig(7, model)
	cfg.Network = "twitter" // smallest evaluation network
	cfg.Rounds = 60
	cfg.Attackers = 20
	return cfg
}

func TestAttackScenarioShapes(t *testing.T) {
	for _, model := range []adversary.Attack{
		adversary.BadMouthing{},
		adversary.BallotStuffing{},
		adversary.SelfPromotion{},
		adversary.OnOff{Period: 16, Duty: 0.5},
		adversary.Whitewashing{RejoinEvery: 20},
		adversary.Collusion{Of: adversary.BadMouthing{}},
	} {
		t.Run(model.Name(), func(t *testing.T) {
			res := RunAttack(scaledAttackConfig(model))
			noShapeErrors(t, res.ShapeCheck())
			if len(res.TrustGap.Y) != 60 || len(res.BaselineSuccess.Y) != 60 {
				t.Fatalf("series lengths %d/%d, want 60", len(res.TrustGap.Y), len(res.BaselineSuccess.Y))
			}
			if len(res.Charts()) != 2 {
				t.Fatalf("charts = %d, want 2", len(res.Charts()))
			}
		})
	}
}

// TestAttackRegistryEntries runs the four registered attack experiments at
// default scale and requires the acceptance property: every one shows a
// nonzero resilience metric (trust gap or success degradation).
func TestAttackRegistryEntries(t *testing.T) {
	for _, name := range []string{"attack-badmouth", "attack-onoff", "attack-whitewash", "attack-collusion"} {
		t.Run(name, func(t *testing.T) {
			res, err := Run(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			ar, ok := res.(AttackResult)
			if !ok {
				t.Fatalf("%s returned %T, want AttackResult", name, res)
			}
			noShapeErrors(t, ar.ShapeCheck())
			if ar.Resilience.TrustGap == 0 && ar.Resilience.MinTrustGap == 0 && ar.Resilience.SuccessDegradation == 0 {
				t.Fatalf("%s: all resilience metrics are zero: %+v", name, ar.Resilience)
			}
		})
	}
}

// TestAttackOptionsOverride checks the end-to-end knob: Options can swap
// the model, resize the ring, and wrap it in a collusion.
func TestAttackOptionsOverride(t *testing.T) {
	res, err := RunOpts("attack-onoff", Options{Seed: 7, Attack: "whitewash", Attackers: 10, Collude: true})
	if err != nil {
		t.Fatal(err)
	}
	ar := res.(AttackResult)
	if ar.Model != "collusion(whitewashing)" {
		t.Fatalf("model = %q, want collusion(whitewashing)", ar.Model)
	}
	if ar.Attackers != 10 {
		t.Fatalf("attackers = %d, want 10", ar.Attackers)
	}
	if _, err := RunOpts("attack-onoff", Options{Seed: 7, Attack: "sybil"}); err == nil {
		t.Fatal("unknown attack model did not error")
	}
}

func TestRunUnknownExperimentSentinel(t *testing.T) {
	_, err := Run("no-such-experiment", 1)
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("error %v does not wrap ErrUnknownExperiment", err)
	}
	if !strings.Contains(err.Error(), "no-such-experiment") {
		t.Fatalf("error %v does not name the experiment", err)
	}
}

func TestNamesSortedAndCollisionFree(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Fatalf("duplicate experiment name %q", names[i])
		}
	}
	for _, name := range []string{"attack-badmouth", "attack-onoff", "attack-whitewash", "attack-collusion"} {
		i := sort.SearchStrings(names, name)
		if i >= len(names) || names[i] != name {
			t.Fatalf("registry missing %q: %v", name, names)
		}
	}
}
