// Package faultfs provides injectable journal backing stores for
// crash-safety tests. File is an in-memory WriteSyncer that models what a
// real disk does under failure: it separates durable bytes (covered by a
// completed Sync) from volatile ones (written but unsynced), fails or
// short-writes at a scripted byte offset, fails or stalls at a scripted
// Sync call, and produces "crash images" — the byte prefixes a real file
// could still hold after a SIGKILL or power cut. Image is the read side: a
// RecoverFile over a crash image that recovery code can scan, truncate, and
// append to.
//
// The package lets table-driven tests prove the serving layer's two crash
// invariants without touching a real filesystem: no acknowledged event is
// ever lost (acknowledged implies synced implies in every crash image), and
// no unacknowledged tail corrupts replay (recovery truncates it).
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrInjected is the default error returned by scripted write and sync
// faults.
var ErrInjected = errors.New("faultfs: injected fault")

// File is an in-memory journal file with fault injection. The zero value is
// not usable; call NewFile. All methods are safe for concurrent use.
type File struct {
	mu       sync.Mutex
	durable  []byte // survives any crash: covered by a completed, honest Sync
	volatile []byte // written but not yet synced; a crash may keep any prefix

	off    int // sequential read offset over durable+volatile
	writes int
	syncs  int

	failWriteAt int64 // total byte offset at which writes start failing; -1 = never
	writeErr    error
	failSyncAt  int // 1-based Sync call that fails; 0 = never
	syncErr     error
	dropSyncs   bool          // Sync reports success but promotes nothing (lying disk)
	syncGate    chan struct{} // when non-nil, Sync blocks until this closes
}

// NewFile returns a File whose durable prefix is initialized to contents
// (typically a previous crash image; pass nil for an empty file).
func NewFile(contents []byte) *File {
	return &File{
		durable:     append([]byte(nil), contents...),
		failWriteAt: -1,
	}
}

// FailWriteAt arms a short-write fault: the write that would carry the
// file's total size past offset stores only the bytes up to it and returns
// err (ErrInjected when err is nil), as a disk running out of space or a
// kernel interrupting a write does. Subsequent writes keep failing with a
// zero-byte short write.
func (f *File) FailWriteAt(offset int64, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAt = offset
	f.writeErr = err
}

// FailSyncAt arms a sync fault: the nth Sync call (1-based) and every later
// one return err (ErrInjected when err is nil) without promoting volatile
// bytes — an EIO from fsync means the data may not be on disk.
func (f *File) FailSyncAt(nth int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncAt = nth
	f.syncErr = err
}

// DropSyncs makes Sync lie: it reports success but promotes nothing, so a
// later Crash loses everything written since the last honest sync.
func (f *File) DropSyncs(drop bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropSyncs = drop
}

// StallSyncs makes every Sync block until the returned release function is
// called — a hung disk. Syncs that were blocked complete normally (and
// promote) once released.
func (f *File) StallSyncs() (release func()) {
	gate := make(chan struct{})
	f.mu.Lock()
	f.syncGate = gate
	f.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			f.mu.Lock()
			f.syncGate = nil
			f.mu.Unlock()
			close(gate)
		})
	}
}

// Read reads sequentially over the full (durable + volatile) contents, so a
// File pre-loaded with a crash image doubles as the recovery input
// (serve.RecoverFile) for the session that then keeps journaling into it.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := len(f.durable) + len(f.volatile)
	if f.off >= total {
		return 0, io.EOF
	}
	n := 0
	if f.off < len(f.durable) {
		n = copy(p, f.durable[f.off:])
	} else {
		n = copy(p, f.volatile[f.off-len(f.durable):])
	}
	f.off += n
	return n, nil
}

// Truncate clips the file to size bytes (volatile tail first), clamping the
// read offset — what recovery's torn-tail rule does to a crashed journal.
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := int64(len(f.durable) + len(f.volatile))
	if size < 0 || size > total {
		return fmt.Errorf("faultfs: truncate %d out of range [0, %d]", size, total)
	}
	if size <= int64(len(f.durable)) {
		f.durable = f.durable[:size]
		f.volatile = f.volatile[:0]
	} else {
		f.volatile = f.volatile[:size-int64(len(f.durable))]
	}
	if int64(f.off) > size {
		f.off = int(size)
	}
	return nil
}

// Write appends p, honoring an armed short-write fault.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	size := int64(len(f.durable) + len(f.volatile))
	if f.failWriteAt >= 0 && size+int64(len(p)) > f.failWriteAt {
		keep := f.failWriteAt - size
		if keep < 0 {
			keep = 0
		}
		f.volatile = append(f.volatile, p[:keep]...)
		return int(keep), f.writeErr
	}
	f.volatile = append(f.volatile, p...)
	return len(p), nil
}

// Sync promotes volatile bytes to durable, honoring armed sync faults and
// stalls. A failing or lying sync promotes nothing.
func (f *File) Sync() error {
	f.mu.Lock()
	gate := f.syncGate
	f.mu.Unlock()
	if gate != nil {
		<-gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncAt > 0 && f.syncs >= f.failSyncAt {
		return f.syncErr
	}
	if f.dropSyncs {
		return nil
	}
	f.durable = append(f.durable, f.volatile...)
	f.volatile = f.volatile[:0]
	return nil
}

// Syncs reports how many Sync calls completed (including failed ones).
func (f *File) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// Size reports the file's total (durable + volatile) length.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.durable) + len(f.volatile))
}

// DurableSize reports how many bytes every crash image is guaranteed to
// keep.
func (f *File) DurableSize() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.durable))
}

// Crash simulates a SIGKILL or power cut: it returns the surviving file
// contents — every durable byte plus the first extraVolatile bytes of the
// unsynced tail (the kernel may have written back any prefix of the page
// cache, so callers sweep extraVolatile across [0, unsynced] to cover every
// possible torn tail). The File itself is left unchanged, so one session
// can be crashed at many points.
func (f *File) Crash(extraVolatile int) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	if extraVolatile > len(f.volatile) {
		extraVolatile = len(f.volatile)
	}
	img := make([]byte, 0, len(f.durable)+extraVolatile)
	img = append(img, f.durable...)
	img = append(img, f.volatile[:extraVolatile]...)
	return img
}

// Bytes returns the full current contents (durable + volatile) — what a
// clean shutdown would leave on disk.
func (f *File) Bytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]byte, 0, len(f.durable)+len(f.volatile))
	out = append(out, f.durable...)
	out = append(out, f.volatile...)
	return out
}

// Image is an in-memory crash image implementing the read/truncate/append
// surface recovery code needs (serve.RecoverFile) plus Sync, so a recovered
// engine can keep journaling into it with full durability accounting left
// to the test.
type Image struct {
	mu   sync.Mutex
	data []byte
	off  int
}

// NewImage wraps a crash image (the contents are copied).
func NewImage(contents []byte) *Image {
	return &Image{data: append([]byte(nil), contents...)}
}

// Read reads sequentially from the current offset.
func (im *Image) Read(p []byte) (int, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.off >= len(im.data) {
		return 0, io.EOF
	}
	n := copy(p, im.data[im.off:])
	im.off += n
	return n, nil
}

// Write appends, as an O_APPEND file does regardless of the read offset.
func (im *Image) Write(p []byte) (int, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.data = append(im.data, p...)
	return len(p), nil
}

// Truncate clips the image to size bytes, clamping the read offset.
func (im *Image) Truncate(size int64) error {
	im.mu.Lock()
	defer im.mu.Unlock()
	if size < 0 || size > int64(len(im.data)) {
		return fmt.Errorf("faultfs: truncate %d out of range [0, %d]", size, len(im.data))
	}
	im.data = im.data[:size]
	if im.off > len(im.data) {
		im.off = len(im.data)
	}
	return nil
}

// Sync is a no-op: an Image models bytes that already survived a crash.
func (im *Image) Sync() error { return nil }

// Bytes returns the image's current contents.
func (im *Image) Bytes() []byte {
	im.mu.Lock()
	defer im.mu.Unlock()
	return append([]byte(nil), im.data...)
}
