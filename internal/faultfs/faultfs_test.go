package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// TestDurabilityModel pins the write/sync/crash semantics the serve-layer
// crash tests lean on: written bytes are volatile until a completed Sync,
// and a crash keeps exactly the durable prefix plus the requested slice of
// the volatile tail.
func TestDurabilityModel(t *testing.T) {
	f := NewFile(nil)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if got := f.DurableSize(); got != 0 {
		t.Fatalf("durable before sync = %d", got)
	}
	if img := f.Crash(0); len(img) != 0 {
		t.Fatalf("crash before sync kept %q", img)
	}
	if img := f.Crash(2); string(img) != "aa" {
		t.Fatalf("torn crash image %q, want aa", img)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := f.DurableSize(); got != 4 {
		t.Fatalf("durable after sync = %d", got)
	}
	f.Write([]byte("bbbb"))
	if img := f.Crash(1); string(img) != "aaaab" {
		t.Fatalf("crash image %q, want aaaab", img)
	}
	// Crash is non-destructive: the live file still holds everything.
	if got := f.Bytes(); string(got) != "aaaabbbb" {
		t.Fatalf("file contents %q", got)
	}
	// extraVolatile beyond the unsynced tail is clamped.
	if img := f.Crash(99); string(img) != "aaaabbbb" {
		t.Fatalf("clamped crash image %q", img)
	}
}

// TestWriteFault pins the short-write script: the write crossing the armed
// offset stores only the prefix and fails, like a full disk.
func TestWriteFault(t *testing.T) {
	f := NewFile(nil)
	f.FailWriteAt(6, nil)
	n, err := f.Write([]byte("aaaa"))
	if n != 4 || err != nil {
		t.Fatalf("write before fault: %d, %v", n, err)
	}
	n, err = f.Write([]byte("bbbb"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write = %d, %v; want 2, ErrInjected", n, err)
	}
	n, err = f.Write([]byte("cc"))
	if n != 0 || err == nil {
		t.Fatalf("write after fault = %d, %v", n, err)
	}
	if got := f.Bytes(); string(got) != "aaaabb" {
		t.Fatalf("contents %q, want aaaabb", got)
	}
}

// TestSyncFaults pins the failing and lying sync scripts.
func TestSyncFaults(t *testing.T) {
	f := NewFile(nil)
	f.FailSyncAt(2, nil)
	f.Write([]byte("aa"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	f.Write([]byte("bb"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 = %v, want ErrInjected", err)
	}
	if got := f.DurableSize(); got != 2 {
		t.Fatalf("failed sync promoted bytes: durable = %d", got)
	}
	if got := f.Syncs(); got != 2 {
		t.Fatalf("syncs = %d", got)
	}

	lying := NewFile(nil)
	lying.DropSyncs(true)
	lying.Write([]byte("xx"))
	if err := lying.Sync(); err != nil {
		t.Fatalf("lying sync errored: %v", err)
	}
	if got := lying.DurableSize(); got != 0 {
		t.Fatalf("lying sync promoted bytes: durable = %d", got)
	}
}

// TestStallSyncs pins the hung-disk script: Sync blocks until released,
// then completes and promotes.
func TestStallSyncs(t *testing.T) {
	f := NewFile(nil)
	release := f.StallSyncs()
	f.Write([]byte("aa"))
	done := make(chan error, 1)
	go func() { done <- f.Sync() }()
	select {
	case err := <-done:
		t.Fatalf("stalled sync returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	release() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released sync: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sync never unstuck")
	}
	if got := f.DurableSize(); got != 2 {
		t.Fatalf("durable after released sync = %d", got)
	}
}

// TestFileReadTruncate pins the RecoverFile surface of File: sequential
// reads over the full contents, truncation clipping the volatile tail
// first, and appends landing at the (possibly truncated) end.
func TestFileReadTruncate(t *testing.T) {
	f := NewFile([]byte("durable:"))
	f.Write([]byte("volatile"))
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "durable:volatile" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if got := f.Bytes(); string(got) != "durable:vo" {
		t.Fatalf("after truncate: %q", got)
	}
	if got := f.DurableSize(); got != 8 {
		t.Fatalf("truncate ate durable bytes: %d", got)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := f.Bytes(); string(got) != "dura" {
		t.Fatalf("after deep truncate: %q", got)
	}
	if err := f.Truncate(99); err == nil {
		t.Fatal("truncate past the end succeeded")
	}
	f.Write([]byte("X"))
	if got := f.Bytes(); string(got) != "duraX" {
		t.Fatalf("append after truncate: %q", got)
	}
}

// TestImage pins the in-memory crash image: sequential read, O_APPEND-style
// write, truncate with offset clamping.
func TestImage(t *testing.T) {
	im := NewImage([]byte("hello\n"))
	got, err := io.ReadAll(im)
	if err != nil || !bytes.Equal(got, []byte("hello\n")) {
		t.Fatalf("read = %q, %v", got, err)
	}
	if _, err := im.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := im.Truncate(7); err != nil {
		t.Fatal(err)
	}
	if string(im.Bytes()) != "hello\nt" {
		t.Fatalf("after truncate: %q", im.Bytes())
	}
	if err := im.Truncate(-1); err == nil {
		t.Fatal("negative truncate succeeded")
	}
	if err := im.Sync(); err != nil {
		t.Fatal(err)
	}
}
