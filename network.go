package siot

import (
	"io"

	"siot/internal/adversary"
	"siot/internal/experiments"
	"siot/internal/graph"
	"siot/internal/report"
	"siot/internal/sim"
	"siot/internal/socialgen"
	"siot/internal/zigbee"
)

// ---- Social-network substrate (internal/graph, internal/socialgen) ----

// Graph is a simple undirected social graph over dense integer node IDs.
type Graph = graph.Graph

// NodeID identifies a node within a Graph.
type NodeID = graph.NodeID

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// SocialProfile parameterizes the synthetic network generator for one of
// the paper's three evaluation networks.
type SocialProfile = socialgen.Profile

// NetworkStats is one row of the paper's Table 1.
type NetworkStats = socialgen.Stats

// SocialNetwork is a generated or loaded social network with node metadata.
type SocialNetwork = socialgen.Network

// FacebookProfile returns the generation profile calibrated to the paper's
// Facebook sub-network.
func FacebookProfile() SocialProfile { return socialgen.Facebook() }

// GooglePlusProfile returns the Google+ sub-network profile.
func GooglePlusProfile() SocialProfile { return socialgen.GooglePlus() }

// TwitterProfile returns the Twitter sub-network profile.
func TwitterProfile() SocialProfile { return socialgen.Twitter() }

// NetworkProfiles returns the three paper profiles in evaluation order.
func NetworkProfiles() []SocialProfile { return socialgen.Profiles() }

// GenerateNetwork builds a synthetic social network for the profile,
// deterministically from seed.
func GenerateNetwork(p SocialProfile, seed uint64) *SocialNetwork {
	return socialgen.Generate(p, seed)
}

// LoadEdgeList reads a SNAP-format edge list.
func LoadEdgeList(src io.Reader) (*Graph, error) { return socialgen.LoadEdgeList(src) }

// ComputeNetworkStats measures the Table 1 connectivity characteristics of
// a graph.
func ComputeNetworkStats(g *Graph, seed uint64) NetworkStats {
	return socialgen.ComputeStats(g, seed)
}

// ---- Population simulation (internal/sim) ----

// Population is a social network whose nodes are live agents.
type Population = sim.Population

// PopulationConfig controls role assignment and behavior generation.
type PopulationConfig = sim.PopulationConfig

// MutualityCounters aggregates the Fig. 7 metrics.
type MutualityCounters = sim.MutualityCounters

// TransitivitySetup configures the §5.5 transitivity experiments.
type TransitivitySetup = sim.TransitivitySetup

// TransitivityStats aggregates a transitivity run.
type TransitivityStats = sim.TransitivityStats

// Strategy selects the trustee-choice rule of the Fig. 13 experiment.
type Strategy = sim.Strategy

// Trustee-choice strategies.
const (
	// StrategySuccessRate picks by expected success rate alone.
	StrategySuccessRate = sim.StrategySuccessRate
	// StrategyNetProfit picks by eq. 23's expected net profit.
	StrategyNetProfit = sim.StrategyNetProfit
)

// Engine is the parallel delegation-round runner: it shards trustors over a
// worker pool with per-trustor random sub-streams and merges effects in
// ascending trustor-ID order, so results are bit-identical at every
// parallelism level (P=1 and P=8 with the same seed produce the same
// bytes).
type Engine = sim.Engine

// DefaultPopulationConfig mirrors the paper's simulation setup (40%
// trustors, 40% trustees).
func DefaultPopulationConfig(seed uint64) PopulationConfig {
	return sim.DefaultPopulationConfig(seed)
}

// NewPopulation assigns roles and behaviors over a social network.
func NewPopulation(net *SocialNetwork, cfg PopulationConfig) *Population {
	return sim.NewPopulation(net, cfg)
}

// NewEngine returns a parallel round runner over the population. The label
// separates its random streams from other phases run on the same
// population.
func NewEngine(p *Population, label string) *Engine { return sim.NewEngine(p, label) }

// SeedExperience prepares the transitivity ground truth and experience
// records over a population: per-characteristic capabilities, experienced
// task types, and neighbor-held records. Randomness derives from seed
// through per-node sub-streams sharded over the population's worker pool;
// the result is bit-identical at every parallelism. Returns the per-node
// experienced task list.
func SeedExperience(p *Population, setup TransitivitySetup, seed uint64) [][]Task {
	return sim.SeedExperience(p, setup, seed)
}

// SeedExperienceFromFeatures is the SeedExperience variant that maps node
// profile features to task characteristics (the paper's Table 2 setup).
func SeedExperienceFromFeatures(p *Population, setup TransitivitySetup, seed uint64) [][]Task {
	return sim.SeedExperienceFromFeatures(p, setup, seed)
}

// ---- Adversary subsystem (internal/adversary) ----

// Attack is one trust-attack model: bad-mouthing, ballot-stuffing,
// self-promotion, on-off, whitewashing, or a collusion ring coordinating
// any of them. Configure it on a population through AttackConfig.
type Attack = adversary.Attack

// AttackConfig injects a trust-attack scenario into a population
// (PopulationConfig.Attack): Attackers trustees run Model against the
// delegation rounds. The zero value disables the adversary subsystem.
type AttackConfig = sim.AttackConfig

// Concrete attack models; their zero values apply sensible defaults.
type (
	// BadMouthingAttack forges minimal-trust recommendations about honest
	// trustees.
	BadMouthingAttack = adversary.BadMouthing
	// BallotStuffingAttack forges maximal-trust recommendations about ring
	// members.
	BallotStuffingAttack = adversary.BallotStuffing
	// SelfPromotionAttack forges maximal-trust claims about itself.
	SelfPromotionAttack = adversary.SelfPromotion
	// OnOffAttack alternates honest and sabotaging service phases.
	OnOffAttack = adversary.OnOff
	// WhitewashingAttack sabotages and periodically rejoins under a fresh
	// identity.
	WhitewashingAttack = adversary.Whitewashing
	// CollusionAttack coordinates a ring running any underlying attack
	// with mutual promotion.
	CollusionAttack = adversary.Collusion
)

// ParseAttack maps a CLI-friendly model name ("badmouth", "ballot",
// "selfpromo", "onoff", "whitewash") to a default-parameter Attack; "" and
// "none" return nil.
func ParseAttack(name string) (Attack, error) { return adversary.Parse(name) }

// AttackNames lists the attack-model names ParseAttack accepts.
func AttackNames() []string { return adversary.Names() }

// Resilience aggregates the attack-resilience metrics of one scenario:
// trust gap, detection latency, and delegation-success degradation.
type Resilience = report.Resilience

// ---- ZigBee testbed simulator (internal/zigbee) ----

// Testbed is the simulated experimental IoT network of §5.2 (coordinator
// plus five groups of trustors, honest trustees, and dishonest trustees).
type Testbed = zigbee.Testbed

// TestbedConfig describes the experimental network.
type TestbedConfig = zigbee.TestbedConfig

// DeviceAddr is a 16-bit ZigBee network short address.
type DeviceAddr = zigbee.DeviceAddr

// Device is one node of the experimental network.
type Device = zigbee.Device

// DefaultTestbedConfig mirrors the paper's setup.
func DefaultTestbedConfig(seed uint64) TestbedConfig { return zigbee.DefaultTestbedConfig(seed) }

// BuildTestbed creates and forms the experimental network.
func BuildTestbed(cfg TestbedConfig) *Testbed { return zigbee.BuildTestbed(cfg) }

// ---- Experiments (internal/experiments) ----

// ExperimentResult is the common surface of a reproduced table or figure.
type ExperimentResult = experiments.Result

// ResultTable is the renderable table type experiment results produce.
type ResultTable = report.Table

// ExperimentOptions tunes a registry experiment run (seed, engine
// parallelism).
type ExperimentOptions = experiments.Options

// ExperimentNames lists the reproducible tables and figures.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment executes a named experiment at the paper's default scale.
func RunExperiment(name string, seed uint64) (ExperimentResult, error) {
	return experiments.Run(name, seed)
}

// RunExperimentOpts executes a named experiment at the paper's default
// scale under the given options. Parallelism never changes the result, only
// the wall-clock time.
func RunExperimentOpts(name string, o ExperimentOptions) (ExperimentResult, error) {
	return experiments.RunOpts(name, o)
}
